#include "common/rng.h"

#include <gtest/gtest.h>

namespace zerobak {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Exponential(5.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, BoundsAndSkew) {
  const double theta = GetParam();
  Rng rng(23);
  const uint64_t n = 100;
  std::vector<int> counts(n, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    const uint64_t v = rng.Zipf(n, theta);
    ASSERT_LT(v, n);
    ++counts[v];
  }
  // Rank 0 must be the most popular, and strictly more popular than the
  // tail average for any positive skew.
  double tail_avg = 0;
  for (uint64_t i = n / 2; i < n; ++i) tail_avg += counts[i];
  tail_avg /= static_cast<double>(n - n / 2);
  EXPECT_GT(counts[0], tail_avg * 2) << "theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfTest,
                         ::testing::Values(0.5, 0.7, 0.9, 0.99));

}  // namespace
}  // namespace zerobak
