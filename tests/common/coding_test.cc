#include "common/coding.h"

#include <gtest/gtest.h>

#include "common/time.h"

namespace zerobak {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 1);
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed32(&buf, 0xffffffff);
  EXPECT_EQ(buf.size(), 16u);
  std::string_view in(buf);
  uint32_t v;
  ASSERT_TRUE(GetFixed32(&in, &v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(GetFixed32(&in, &v));
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(GetFixed32(&in, &v));
  EXPECT_EQ(v, 0xdeadbeefu);
  ASSERT_TRUE(GetFixed32(&in, &v));
  EXPECT_EQ(v, 0xffffffffu);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789abcdefULL);
  std::string_view in(buf);
  uint64_t v;
  ASSERT_TRUE(GetFixed64(&in, &v));
  EXPECT_EQ(v, 0x0123456789abcdefULL);
}

TEST(CodingTest, UnderflowReturnsFalse) {
  std::string buf = "abc";  // 3 bytes: too short for either width.
  std::string_view in(buf);
  uint32_t v32;
  uint64_t v64;
  EXPECT_FALSE(GetFixed32(&in, &v32));
  EXPECT_FALSE(GetFixed64(&in, &v64));
  EXPECT_EQ(in.size(), 3u);  // Cursor untouched on failure.
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, "hello");
  std::string binary("\x00\x01\x02", 3);
  PutLengthPrefixed(&buf, binary);
  std::string_view in(buf);
  std::string a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a, "");
  EXPECT_EQ(b, "hello");
  EXPECT_EQ(c, binary);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, LengthPrefixedTruncatedPayloadFails) {
  std::string buf;
  PutFixed32(&buf, 100);  // Claims 100 bytes...
  buf += "short";         // ...but only 5 follow.
  std::string_view in(buf);
  std::string_view out;
  EXPECT_FALSE(GetLengthPrefixed(&in, &out));
}

TEST(CodingTest, EncodeDecodeInPlace) {
  char buf[8];
  EncodeFixed32(buf, 77);
  EXPECT_EQ(DecodeFixed32(buf), 77u);
  EncodeFixed64(buf, 1ull << 40);
  EXPECT_EQ(DecodeFixed64(buf), 1ull << 40);
}

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(Milliseconds(1), 1000 * Microseconds(1));
  EXPECT_EQ(Seconds(1), 1000 * Milliseconds(1));
  EXPECT_DOUBLE_EQ(ToMilliseconds(Milliseconds(5)), 5.0);
  EXPECT_DOUBLE_EQ(ToSeconds(Milliseconds(1500)), 1.5);
}

TEST(TimeTest, FormatDurationAdaptsUnits) {
  EXPECT_EQ(FormatDuration(Nanoseconds(730)), "730ns");
  EXPECT_EQ(FormatDuration(Microseconds(2) + Nanoseconds(500)), "2.50us");
  EXPECT_EQ(FormatDuration(Milliseconds(1) + Microseconds(500)), "1.50ms");
  EXPECT_EQ(FormatDuration(Seconds(2)), "2.000s");
}

}  // namespace
}  // namespace zerobak
