#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace zerobak {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.Mean(), 1000.0);
  EXPECT_EQ(h.Percentile(50), 1000.0);
}

TEST(HistogramTest, ExactStatsAreExact) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v * 10);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.Mean(), 505.0);
}

TEST(HistogramTest, PercentilesApproximateUniform) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    h.Add(rng.Uniform(1000000));
  }
  // Exponential buckets guarantee percentiles within a factor of ~1.5.
  EXPECT_NEAR(h.Percentile(50), 500000, 250000);
  EXPECT_GT(h.Percentile(99), h.Percentile(50));
  EXPECT_GE(h.Percentile(100), h.Percentile(99));
  EXPECT_LE(h.Percentile(100), static_cast<double>(h.max()));
}

TEST(HistogramTest, PercentilesMonotonic) {
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) h.Add(rng.Uniform(1 << 20));
  double prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(HistogramTest, MergeEqualsCombined) {
  Histogram a, b, combined;
  Rng rng(8);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.Uniform(100000);
    if (i % 2 == 0) {
      a.Add(v);
    } else {
      b.Add(v);
    }
    combined.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.Mean(), combined.Mean());
  EXPECT_DOUBLE_EQ(a.Percentile(95), combined.Percentile(95));
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(5);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, ToStringMentionsCount) {
  Histogram h;
  h.Add(100);
  h.Add(200);
  EXPECT_NE(h.ToString().find("count=2"), std::string::npos);
}

TEST(MeanVarTest, KnownSequence) {
  MeanVar mv;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) mv.Add(x);
  EXPECT_EQ(mv.count(), 8u);
  EXPECT_DOUBLE_EQ(mv.mean(), 5.0);
  EXPECT_NEAR(mv.stddev(), 2.138, 0.001);  // Sample stddev.
}

TEST(MeanVarTest, SingleValueHasZeroVariance) {
  MeanVar mv;
  mv.Add(3.0);
  EXPECT_DOUBLE_EQ(mv.variance(), 0.0);
}

}  // namespace
}  // namespace zerobak
