#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace zerobak {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.Mean(), 1000.0);
  EXPECT_EQ(h.Percentile(50), 1000.0);
}

TEST(HistogramTest, ExactStatsAreExact) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v * 10);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.Mean(), 505.0);
}

TEST(HistogramTest, PercentilesApproximateUniform) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    h.Add(rng.Uniform(1000000));
  }
  // Exponential buckets guarantee percentiles within a factor of ~1.5.
  EXPECT_NEAR(h.Percentile(50), 500000, 250000);
  EXPECT_GT(h.Percentile(99), h.Percentile(50));
  EXPECT_GE(h.Percentile(100), h.Percentile(99));
  EXPECT_LE(h.Percentile(100), static_cast<double>(h.max()));
}

TEST(HistogramTest, PercentilesMonotonic) {
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) h.Add(rng.Uniform(1 << 20));
  double prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(HistogramTest, MergeEqualsCombined) {
  Histogram a, b, combined;
  Rng rng(8);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.Uniform(100000);
    if (i % 2 == 0) {
      a.Add(v);
    } else {
      b.Add(v);
    }
    combined.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.Mean(), combined.Mean());
  EXPECT_DOUBLE_EQ(a.Percentile(95), combined.Percentile(95));
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(5);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, ToStringMentionsCount) {
  Histogram h;
  h.Add(100);
  h.Add(200);
  EXPECT_NE(h.ToString().find("count=2"), std::string::npos);
}

TEST(HistogramTest, BucketLimitIsStrictlyMonotonic) {
  uint64_t prev = Histogram::BucketLimit(0);
  for (int b = 1; b < Histogram::kNumBuckets; ++b) {
    const uint64_t limit = Histogram::BucketLimit(b);
    // The top bucket's limit wraps to UINT64_MAX by design; every other
    // boundary must strictly increase (the sub / 2 bug collapsed adjacent
    // sub-buckets onto one limit).
    ASSERT_GT(limit, prev) << "bucket " << b;
    prev = limit;
  }
  EXPECT_EQ(Histogram::BucketLimit(Histogram::kNumBuckets - 1), UINT64_MAX);
}

TEST(HistogramTest, BucketForAndBucketLimitRoundTrip) {
  // Every value must land in the bucket whose [BucketLimit(b-1)+1,
  // BucketLimit(b)] range contains it. Sweep all four sub-bucket
  // boundaries of every power of two up to 2^40.
  auto check = [](uint64_t value) {
    const int b = Histogram::BucketFor(value);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, Histogram::kNumBuckets);
    ASSERT_LE(value, Histogram::BucketLimit(b)) << "value " << value;
    if (b > 0) {
      ASSERT_GT(value, Histogram::BucketLimit(b - 1)) << "value " << value;
    }
  };
  for (uint64_t v = 0; v < 64; ++v) check(v);
  for (int log2 = 6; log2 <= 40; ++log2) {
    const uint64_t base = 1ULL << log2;
    const uint64_t quarter = base / 4;
    for (int sub = 0; sub < 4; ++sub) {
      const uint64_t lo = base + static_cast<uint64_t>(sub) * quarter;
      check(lo);          // First value of the sub-bucket.
      check(lo + quarter - 1);  // Last value.
    }
  }
}

TEST(HistogramTest, FourWaySubBucketsBoundRelativeError) {
  // The promise: every power-of-two range splits into four equal
  // sub-buckets, so a bucket's width is at most 1/4 of its lower bound —
  // i.e. Percentile() can be off by at most 25%, not the 50% the
  // collapsed 2-way buckets gave.
  for (int log2 = 4; log2 <= 40; ++log2) {
    const uint64_t base = 1ULL << log2;
    for (uint64_t probe : {base, base + base / 2, 2 * base - 1}) {
      const int b = Histogram::BucketFor(probe);
      const uint64_t lo = Histogram::BucketLimit(b - 1) + 1;
      const uint64_t hi = Histogram::BucketLimit(b);
      ASSERT_LE(hi - lo + 1, base / 4)
          << "bucket " << b << " wider than a quarter of 2^" << log2;
    }
  }
  // And distinct quarters of one power-of-two range get distinct buckets.
  EXPECT_NE(Histogram::BucketFor(1024), Histogram::BucketFor(1280));
  EXPECT_NE(Histogram::BucketFor(1280), Histogram::BucketFor(1536));
  EXPECT_NE(Histogram::BucketFor(1536), Histogram::BucketFor(1792));
  EXPECT_EQ(Histogram::BucketFor(1792), Histogram::BucketFor(2047));
}

TEST(MeanVarTest, KnownSequence) {
  MeanVar mv;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) mv.Add(x);
  EXPECT_EQ(mv.count(), 8u);
  EXPECT_DOUBLE_EQ(mv.mean(), 5.0);
  EXPECT_NEAR(mv.stddev(), 2.138, 0.001);  // Sample stddev.
}

TEST(MeanVarTest, SingleValueHasZeroVariance) {
  MeanVar mv;
  mv.Add(3.0);
  EXPECT_DOUBLE_EQ(mv.variance(), 0.0);
}

}  // namespace
}  // namespace zerobak
