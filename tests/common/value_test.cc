#include "common/value.h"

#include <gtest/gtest.h>

namespace zerobak {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToJson(), "null");
}

TEST(ValueTest, Scalars) {
  EXPECT_EQ(Value(true).ToJson(), "true");
  EXPECT_EQ(Value(false).ToJson(), "false");
  EXPECT_EQ(Value(42).ToJson(), "42");
  EXPECT_EQ(Value(int64_t{-7}).ToJson(), "-7");
  EXPECT_EQ(Value("hi").ToJson(), "\"hi\"");
  EXPECT_TRUE(Value(1.5).is_double());
}

TEST(ValueTest, IntPromotesToDoubleAccessor) {
  Value v(10);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 10.0);
}

TEST(ValueTest, ObjectBuildingIsFluent) {
  Value v;
  v["a"] = 1;
  v["b"]["c"] = "deep";
  EXPECT_TRUE(v.is_object());
  EXPECT_EQ(v.GetInt("a"), 1);
  EXPECT_EQ(v.Find("b")->GetString("c"), "deep");
  EXPECT_EQ(v.ToJson(), R"({"a":1,"b":{"c":"deep"}})");
}

TEST(ValueTest, ArrayBuilding) {
  Value v;
  v.Append(1);
  v.Append("two");
  v.Append(Value::MakeObject());
  EXPECT_TRUE(v.is_array());
  EXPECT_EQ(v.AsArray().size(), 3u);
  EXPECT_EQ(v.ToJson(), R"([1,"two",{}])");
}

TEST(ValueTest, LookupDefaults) {
  Value v = Value::MakeObject();
  v["present"] = "yes";
  v["num"] = 9;
  EXPECT_EQ(v.GetString("present"), "yes");
  EXPECT_EQ(v.GetString("missing", "fallback"), "fallback");
  EXPECT_EQ(v.GetInt("num"), 9);
  EXPECT_EQ(v.GetInt("missing", -1), -1);
  EXPECT_EQ(v.GetBool("missing", true), true);
  // Wrong type falls back too.
  EXPECT_EQ(v.GetInt("present", 5), 5);
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(ValueTest, StringEscaping) {
  Value v(std::string("line\nquote\"back\\slash\ttab"));
  const std::string json = v.ToJson();
  auto back = Value::FromJson(json);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->AsString(), "line\nquote\"back\\slash\ttab");
}

TEST(ValueTest, ControlCharactersRoundTrip) {
  std::string s = "a";
  s.push_back('\x01');
  s += "b";
  auto back = Value::FromJson(Value(s).ToJson());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->AsString(), s);
}

class JsonRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTripTest, ParseSerializeFixpoint) {
  auto v = Value::FromJson(GetParam());
  ASSERT_TRUE(v.ok()) << v.status();
  const std::string json = v->ToJson();
  auto v2 = Value::FromJson(json);
  ASSERT_TRUE(v2.ok()) << v2.status();
  EXPECT_EQ(*v, *v2);
  EXPECT_EQ(v2->ToJson(), json);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, JsonRoundTripTest,
    ::testing::Values(
        "null", "true", "false", "0", "-12", "3.25", "\"\"", "\"abc\"",
        "[]", "[1,2,3]", "{}", R"({"k":"v"})",
        R"({"nested":{"arr":[1,{"deep":true},null]},"n":-4})",
        R"([[[[1]]]])", R"({"a":1.5,"b":[true,false,null]})",
        R"({"volumeHandles":["G370-MAIN:1","G370-MAIN:2"]})"));

class JsonErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonErrorTest, MalformedInputsRejected) {
  auto v = Value::FromJson(GetParam());
  EXPECT_FALSE(v.ok()) << "accepted: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, JsonErrorTest,
    ::testing::Values("", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru",
                      "\"unterminated", "[1 2]", "{\"a\":1} extra",
                      "{'single':1}", "\"bad\\u00zz\"", "nul"));

TEST(ValueTest, ParseNumbers) {
  auto i = Value::FromJson("123");
  ASSERT_TRUE(i.ok());
  EXPECT_TRUE(i->is_int());
  EXPECT_EQ(i->AsInt(), 123);

  auto d = Value::FromJson("-1.5e2");
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->is_double());
  EXPECT_DOUBLE_EQ(d->AsDouble(), -150.0);
}

TEST(ValueTest, WhitespaceTolerated) {
  auto v = Value::FromJson("  { \"a\" : [ 1 , 2 ] }  ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("a")->AsArray().size(), 2u);
}

TEST(ValueTest, EqualityIsDeep) {
  Value a, b;
  a["x"]["y"] = 1;
  b["x"]["y"] = 1;
  EXPECT_TRUE(a == b);
  b["x"]["y"] = 2;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace zerobak
