#include "common/compress.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace zerobak {
namespace {

std::string RoundTrip(const std::string& input) {
  std::string frame;
  Compress(input, &frame);
  EXPECT_LE(frame.size(), CompressBound(input.size()));
  auto size = DecompressedSize(frame);
  EXPECT_TRUE(size.ok()) << size.status();
  if (size.ok()) {
    EXPECT_EQ(*size, input.size());
  }
  std::string out;
  Status s = Decompress(frame, &out);
  EXPECT_TRUE(s.ok()) << s;
  return out;
}

TEST(CompressTest, EmptyAndTinyInputs) {
  for (const std::string& input :
       {std::string(), std::string("a"), std::string("abcabc"),
        std::string(15, 'x')}) {
    EXPECT_EQ(RoundTrip(input), input);
  }
}

TEST(CompressTest, HighlyRedundantInputShrinks) {
  const std::string input(64 * 1024, 'z');
  std::string frame;
  Compress(input, &frame);
  EXPECT_LT(frame.size(), input.size() / 50);
  std::string out;
  ASSERT_TRUE(Decompress(frame, &out).ok());
  EXPECT_EQ(out, input);
}

// Structured payloads shaped like the actual replicated blocks: KV pages
// with repeated key prefixes and ecommerce-ish rows with shared field
// names. These must both round-trip and actually compress.
TEST(CompressTest, StructuredPayloadsRoundTripAndShrink) {
  Rng rng(7);
  std::string kv;
  for (int i = 0; i < 800; ++i) {
    kv += "user." + std::to_string(rng.Uniform(500)) +
          ".cart.items=" + std::to_string(rng.Uniform(100)) + ";";
  }
  std::string rows;
  for (int i = 0; i < 400; ++i) {
    rows += "{\"order_id\":" + std::to_string(100000 + i) +
            ",\"sku\":\"SKU-" + std::to_string(rng.Uniform(64)) +
            "\",\"qty\":" + std::to_string(1 + rng.Uniform(9)) +
            ",\"status\":\"confirmed\"}";
  }
  for (const std::string& input : {kv, rows}) {
    EXPECT_EQ(RoundTrip(input), input);
    std::string frame;
    Compress(input, &frame);
    EXPECT_LT(frame.size(), input.size() * 6 / 10)
        << "structured payload should compress below 0.6x";
  }
}

TEST(CompressTest, RandomBuffersRoundTrip) {
  Rng rng(99);
  for (size_t len : {size_t{1}, size_t{17}, size_t{4096}, size_t{70000}}) {
    // Mix of pure-random and random-with-repeats to exercise both the
    // stored escape and real match emission.
    std::string random(len, '\0');
    for (char& c : random) c = static_cast<char>(rng.Uniform(256));
    EXPECT_EQ(RoundTrip(random), random);

    std::string repeats;
    while (repeats.size() < len) {
      const size_t run = 1 + rng.Uniform(32);
      repeats.append(run, static_cast<char>('a' + rng.Uniform(4)));
    }
    EXPECT_EQ(RoundTrip(repeats), repeats);
  }
}

TEST(CompressTest, IncompressibleInputUsesStoredEscape) {
  Rng rng(3);
  std::string noise(8192, '\0');
  for (char& c : noise) c = static_cast<char>(rng.Uniform(256));
  std::string frame;
  Compress(noise, &frame);
  // Stored escape: method byte + varint size + verbatim bytes. Never more
  // than the documented bound, and round-trips exactly.
  EXPECT_LE(frame.size(), noise.size() + 16);
  EXPECT_GE(frame.size(), noise.size());
  std::string out;
  ASSERT_TRUE(Decompress(frame, &out).ok());
  EXPECT_EQ(out, noise);
}

TEST(CompressTest, DecompressAppendsToExistingOutput) {
  std::string frame;
  Compress("world", &frame);
  std::string out = "hello ";
  ASSERT_TRUE(Decompress(frame, &out).ok());
  EXPECT_EQ(out, "hello world");
}

TEST(CompressFuzzTest, TruncatedFramesReturnErrorNotCrash) {
  const std::string input =
      "the quick brown fox jumps over the lazy dog, the quick brown fox "
      "jumps over the lazy dog, the quick brown fox";
  std::string frame;
  Compress(input, &frame);
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    std::string out;
    Status s = Decompress(std::string_view(frame).substr(0, cut), &out);
    EXPECT_FALSE(s.ok()) << "truncation at " << cut << " accepted";
  }
}

TEST(CompressFuzzTest, BitFlippedFramesNeverCrash) {
  Rng rng(1234);
  std::string input;
  for (int i = 0; i < 200; ++i) {
    input += "record-" + std::to_string(i % 17) + "-payload ";
  }
  std::string frame;
  Compress(input, &frame);
  // Every single-byte mutation must either decode to *something* or fail
  // cleanly; under ASan/UBSan this doubles as a memory-safety fuzz.
  for (size_t i = 0; i < frame.size(); ++i) {
    std::string mutated = frame;
    mutated[i] ^= static_cast<char>(1 + rng.Uniform(255));
    std::string out;
    Status s = Decompress(mutated, &out);
    (void)s;  // Either outcome is acceptable; crashing is not.
  }
}

TEST(CompressFuzzTest, RandomGarbageReturnsErrorNotCrash) {
  Rng rng(555);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage(1 + rng.Uniform(512), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Uniform(256));
    std::string out;
    Status s = Decompress(garbage, &out);
    (void)s;  // Must simply not crash or overrun.
  }
}

TEST(CompressFuzzTest, ImplausibleRawSizeRejected) {
  // method=LZ, varint raw_size = 2^40 — must be rejected before any
  // allocation is attempted.
  std::string frame;
  frame.push_back(1);
  uint64_t huge = uint64_t{1} << 40;
  while (huge >= 0x80) {
    frame.push_back(static_cast<char>(huge | 0x80));
    huge >>= 7;
  }
  frame.push_back(static_cast<char>(huge));
  frame += "xxxx";
  std::string out;
  EXPECT_FALSE(Decompress(frame, &out).ok());
}

}  // namespace
}  // namespace zerobak
