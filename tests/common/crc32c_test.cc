#include "common/crc32c.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace zerobak {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / standard CRC-32C test vectors.
  EXPECT_EQ(Crc32c("", 0), 0u);
  const std::string digits = "123456789";
  EXPECT_EQ(Crc32c(digits.data(), digits.size()), 0xe3069283u);

  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8a9136aau);

  std::string ffs(32, '\xff');
  EXPECT_EQ(Crc32c(ffs.data(), ffs.size()), 0x62a8ab43u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "hello world, this is a journal record";
  const uint32_t whole = Crc32c(data.data(), data.size());
  uint32_t crc = 0;
  crc = Crc32cExtend(crc, data.data(), 10);
  crc = Crc32cExtend(crc, data.data() + 10, data.size() - 10);
  EXPECT_EQ(crc, whole);
}

TEST(Crc32cTest, DifferentInputsDiffer) {
  const std::string a = "payload-a";
  const std::string b = "payload-b";
  EXPECT_NE(Crc32c(a.data(), a.size()), Crc32c(b.data(), b.size()));
}

TEST(Crc32cTest, MaskRoundTrips) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu, 0xe3069283u}) {
    EXPECT_EQ(Crc32cUnmask(Crc32cMask(crc)), crc);
    EXPECT_NE(Crc32cMask(crc), crc);  // Masking must change the value.
  }
}

// The dispatched implementation and both software kernels must agree on
// the RFC 3720 vectors; the hardware kernel joins where the host has it.
TEST(Crc32cKernelTest, AllKernelsMatchKnownVectors) {
  struct Vector {
    std::string data;
    uint32_t crc;
  };
  const std::vector<Vector> vectors = {
      {"", 0u},
      {"123456789", 0xe3069283u},
      {std::string(32, '\0'), 0x8a9136aau},
      {std::string(32, '\xff'), 0x62a8ab43u},
  };
  for (const Vector& v : vectors) {
    EXPECT_EQ(Crc32c(v.data.data(), v.data.size()), v.crc);
    EXPECT_EQ(internal::Crc32cPortable(0, v.data.data(), v.data.size()),
              v.crc);
    EXPECT_EQ(internal::Crc32cSlice8(0, v.data.data(), v.data.size()), v.crc);
    if (internal::Crc32cHardwareSupported()) {
      EXPECT_EQ(internal::Crc32cHardware(0, v.data.data(), v.data.size()),
                v.crc);
    }
  }
}

// Awkward lengths hit every alignment prologue/epilogue combination of the
// 8-byte kernels: empty, sub-word, word-straddling, and page-ish ± 1.
TEST(Crc32cKernelTest, KernelsAgreeOnAwkwardLengthsAndOffsets) {
  Rng rng(0xc32c);
  std::string buf(1u << 20, '\0');
  for (char& c : buf) c = static_cast<char>(rng.Uniform(256));
  const size_t lengths[] = {0, 1, 7, 8, 9, 4095, 4097};
  for (size_t len : lengths) {
    // Offsets 0..8 cover every starting alignment of the data pointer.
    for (size_t off = 0; off <= 8; ++off) {
      const char* p = buf.data() + off;
      const uint32_t want = internal::Crc32cPortable(0, p, len);
      EXPECT_EQ(internal::Crc32cSlice8(0, p, len), want)
          << "slice8 len " << len << " off " << off;
      if (internal::Crc32cHardwareSupported()) {
        EXPECT_EQ(internal::Crc32cHardware(0, p, len), want)
            << "sse4.2 len " << len << " off " << off;
      }
      EXPECT_EQ(Crc32c(p, len), want) << "dispatch len " << len;
    }
  }
}

// Streaming (Extend) must agree across kernels at arbitrary split points,
// with a non-zero running crc feeding the prologue paths.
TEST(Crc32cKernelTest, KernelsAgreeWhenExtending) {
  Rng rng(0x5eed);
  std::string data(4097, '\0');
  for (char& c : data) c = static_cast<char>(rng.Uniform(256));
  const uint32_t whole = internal::Crc32cPortable(0, data.data(), data.size());
  for (size_t split : {size_t{1}, size_t{7}, size_t{9}, size_t{4095}}) {
    uint32_t sliced = internal::Crc32cSlice8(0, data.data(), split);
    sliced = internal::Crc32cSlice8(sliced, data.data() + split,
                                    data.size() - split);
    EXPECT_EQ(sliced, whole) << "slice8 split " << split;
    if (internal::Crc32cHardwareSupported()) {
      uint32_t hw = internal::Crc32cHardware(0, data.data(), split);
      hw = internal::Crc32cHardware(hw, data.data() + split,
                                    data.size() - split);
      EXPECT_EQ(hw, whole) << "sse4.2 split " << split;
    }
  }
}

// Lengths bracketing the 3-lane interleaved kernel's 3 * 1360 = 4080
// threshold and its chunk repeats, with running CRCs feeding in — the
// lane-combine stitching must be invisible at every boundary.
TEST(Crc32cKernelTest, KernelsAgreeAroundInterleaveBoundaries) {
  Rng rng(0x3a9e);
  std::string buf(3 * 4080 + 64, '\0');
  for (char& c : buf) c = static_cast<char>(rng.Uniform(256));
  for (size_t len : {size_t{4079}, size_t{4080}, size_t{4081}, size_t{8159},
                     size_t{8160}, size_t{8161}, size_t{12240}}) {
    for (uint32_t seed : {0u, 0xdeadbeefu}) {
      const uint32_t want = internal::Crc32cSlice8(seed, buf.data(), len);
      if (internal::Crc32cHardwareSupported()) {
        EXPECT_EQ(internal::Crc32cHardware(seed, buf.data(), len), want)
            << "sse4.2 len " << len << " seed " << seed;
        // Offset 1: the lanes start misaligned.
        EXPECT_EQ(internal::Crc32cHardware(seed, buf.data() + 1, len),
                  internal::Crc32cSlice8(seed, buf.data() + 1, len))
            << "sse4.2 unaligned len " << len;
      }
      EXPECT_EQ(Crc32cExtend(seed, buf.data(), len), want);
    }
  }
}

TEST(Crc32cKernelTest, ImplementationNameIsKnown) {
  const std::string name = internal::Crc32cImplementation();
  EXPECT_TRUE(name == "sse4.2" || name == "slice8" || name == "portable")
      << name;
}

// Crc32cCombine folds two independently computed CRCs into the CRC of the
// concatenation — the primitive behind chunk-parallel frame checksums.
TEST(Crc32cCombineTest, PinnedVectors) {
  // Split the RFC 3720 vector "123456789" and recombine: the result must
  // be the well-known whole-string CRC regardless of the split point.
  const std::string digits = "123456789";
  for (size_t split = 0; split <= digits.size(); ++split) {
    const uint32_t a = Crc32c(digits.data(), split);
    const uint32_t b = Crc32c(digits.data() + split, digits.size() - split);
    EXPECT_EQ(Crc32cCombine(a, b, digits.size() - split), 0xe3069283u)
        << "split " << split;
  }
  // 64 zeros = two combined 32-zero halves, against the pinned 32-zero CRC.
  std::string zeros(64, '\0');
  EXPECT_EQ(Crc32cCombine(0x8a9136aau, 0x8a9136aau, 32),
            Crc32c(zeros.data(), zeros.size()));
}

TEST(Crc32cCombineTest, ZeroLengthSecondPartIsIdentity) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu}) {
    // Appending nothing changes nothing, whatever crc2 holds.
    EXPECT_EQ(Crc32cCombine(crc, 0u, 0), crc);
    EXPECT_EQ(Crc32cCombine(crc, 0x12345678u, 0), crc);
  }
}

TEST(Crc32cCombineTest, MatchesExtendAtRandomSplits) {
  Rng rng(0xc0813);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t len = 1 + rng.Uniform(100000);
    std::string data(len, '\0');
    for (char& c : data) c = static_cast<char>(rng.Uniform(256));
    const uint32_t whole = Crc32c(data.data(), data.size());
    const size_t split = rng.Uniform(static_cast<uint32_t>(len + 1));
    const uint32_t a = Crc32c(data.data(), split);
    const uint32_t b = Crc32c(data.data() + split, len - split);
    EXPECT_EQ(Crc32cCombine(a, b, len - split), whole)
        << "len " << len << " split " << split;
  }
}

TEST(Crc32cCombineTest, FoldsManyChunksLikeOnePass) {
  // The wire path's exact usage: CRC fixed-size chunks independently, then
  // left-fold with Combine. Chunk size chosen to leave a ragged tail.
  Rng rng(0xfeed);
  std::string data(300000, '\0');
  for (char& c : data) c = static_cast<char>(rng.Uniform(256));
  constexpr size_t kChunk = 65536;
  uint32_t folded = 0;
  bool first = true;
  for (size_t off = 0; off < data.size(); off += kChunk) {
    const size_t n = std::min(kChunk, data.size() - off);
    const uint32_t part = Crc32c(data.data() + off, n);
    folded = first ? part : Crc32cCombine(folded, part, n);
    first = false;
  }
  EXPECT_EQ(folded, Crc32c(data.data(), data.size()));
}

TEST(Crc32cCombineTest, PrecompiledOpMatchesGeneralCombine) {
  Rng rng(0x0b5e55);
  for (size_t len2 : {size_t{0}, size_t{1}, size_t{9}, size_t{4096},
                      size_t{65536}, size_t{65537}, size_t{300000}}) {
    const Crc32cCombineOp op(len2);
    EXPECT_EQ(op.len2(), len2);
    for (int trial = 0; trial < 10; ++trial) {
      const uint32_t a = rng.Uniform(0xffffffffu);
      const uint32_t b = rng.Uniform(0xffffffffu);
      EXPECT_EQ(op.Combine(a, b), Crc32cCombine(a, b, len2))
          << "len2 " << len2 << " a " << a << " b " << b;
    }
  }
}

TEST(Crc32cCombineTest, PrecompiledOpFoldsRealData) {
  // End-to-end: fold real per-chunk CRCs with the op, as the wire path
  // does, and land on the single-pass CRC.
  Rng rng(0x0b5e56);
  std::string data(5 * 65536 + 123, '\0');
  for (char& c : data) c = static_cast<char>(rng.Uniform(256));
  const Crc32cCombineOp op(65536);
  uint32_t folded = Crc32c(data.data(), 65536);
  size_t off = 65536;
  while (off < data.size()) {
    const size_t n = std::min<size_t>(65536, data.size() - off);
    const uint32_t part = Crc32c(data.data() + off, n);
    folded = n == 65536 ? op.Combine(folded, part)
                        : Crc32cCombine(folded, part, n);
    off += n;
  }
  EXPECT_EQ(folded, Crc32c(data.data(), data.size()));
}

TEST(Crc32cTest, SingleBitFlipDetected) {
  std::string data(128, 'x');
  const uint32_t base = Crc32c(data.data(), data.size());
  for (size_t i = 0; i < data.size(); i += 17) {
    std::string mutated = data;
    mutated[i] ^= 0x4;
    EXPECT_NE(Crc32c(mutated.data(), mutated.size()), base)
        << "flip at " << i << " undetected";
  }
}

}  // namespace
}  // namespace zerobak
