#include "common/crc32c.h"

#include <string>

#include <gtest/gtest.h>

namespace zerobak {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / standard CRC-32C test vectors.
  EXPECT_EQ(Crc32c("", 0), 0u);
  const std::string digits = "123456789";
  EXPECT_EQ(Crc32c(digits.data(), digits.size()), 0xe3069283u);

  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8a9136aau);

  std::string ffs(32, '\xff');
  EXPECT_EQ(Crc32c(ffs.data(), ffs.size()), 0x62a8ab43u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "hello world, this is a journal record";
  const uint32_t whole = Crc32c(data.data(), data.size());
  uint32_t crc = 0;
  crc = Crc32cExtend(crc, data.data(), 10);
  crc = Crc32cExtend(crc, data.data() + 10, data.size() - 10);
  EXPECT_EQ(crc, whole);
}

TEST(Crc32cTest, DifferentInputsDiffer) {
  const std::string a = "payload-a";
  const std::string b = "payload-b";
  EXPECT_NE(Crc32c(a.data(), a.size()), Crc32c(b.data(), b.size()));
}

TEST(Crc32cTest, MaskRoundTrips) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu, 0xe3069283u}) {
    EXPECT_EQ(Crc32cUnmask(Crc32cMask(crc)), crc);
    EXPECT_NE(Crc32cMask(crc), crc);  // Masking must change the value.
  }
}

TEST(Crc32cTest, SingleBitFlipDetected) {
  std::string data(128, 'x');
  const uint32_t base = Crc32c(data.data(), data.size());
  for (size_t i = 0; i < data.size(); i += 17) {
    std::string mutated = data;
    mutated[i] ^= 0x4;
    EXPECT_NE(Crc32c(mutated.data(), mutated.size()), base)
        << "flip at " << i << " undetected";
  }
}

}  // namespace
}  // namespace zerobak
