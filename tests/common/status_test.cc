#include "common/status.h"

#include <gtest/gtest.h>

namespace zerobak {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("volume 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "volume 42");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: volume 42");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFoundError("x"), NotFoundError("x"));
  EXPECT_FALSE(NotFoundError("x") == NotFoundError("y"));
  EXPECT_FALSE(NotFoundError("x") == InternalError("x"));
  EXPECT_EQ(OkStatus(), Status());
}

struct CodeNameCase {
  Status status;
  StatusCode code;
  const char* name;
};

class StatusCodeNameTest : public ::testing::TestWithParam<CodeNameCase> {};

TEST_P(StatusCodeNameTest, EveryConstructorMapsToItsCode) {
  const CodeNameCase& c = GetParam();
  EXPECT_EQ(c.status.code(), c.code);
  EXPECT_STREQ(StatusCodeName(c.status.code()), c.name);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodes, StatusCodeNameTest,
    ::testing::Values(
        CodeNameCase{InvalidArgumentError("m"), StatusCode::kInvalidArgument,
                     "INVALID_ARGUMENT"},
        CodeNameCase{NotFoundError("m"), StatusCode::kNotFound, "NOT_FOUND"},
        CodeNameCase{AlreadyExistsError("m"), StatusCode::kAlreadyExists,
                     "ALREADY_EXISTS"},
        CodeNameCase{FailedPreconditionError("m"),
                     StatusCode::kFailedPrecondition, "FAILED_PRECONDITION"},
        CodeNameCase{ResourceExhaustedError("m"),
                     StatusCode::kResourceExhausted, "RESOURCE_EXHAUSTED"},
        CodeNameCase{UnavailableError("m"), StatusCode::kUnavailable,
                     "UNAVAILABLE"},
        CodeNameCase{AbortedError("m"), StatusCode::kAborted, "ABORTED"},
        CodeNameCase{OutOfRangeError("m"), StatusCode::kOutOfRange,
                     "OUT_OF_RANGE"},
        CodeNameCase{DataLossError("m"), StatusCode::kDataLoss, "DATA_LOSS"},
        CodeNameCase{InternalError("m"), StatusCode::kInternal, "INTERNAL"},
        CodeNameCase{UnimplementedError("m"), StatusCode::kUnimplemented,
                     "UNIMPLEMENTED"}));

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

Status FailsWhenNegative(int x) {
  if (x < 0) return InvalidArgumentError("negative");
  return OkStatus();
}

Status Chained(int x) {
  ZB_RETURN_IF_ERROR(FailsWhenNegative(x));
  return OkStatus();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return OutOfRangeError("not positive");
  return x;
}

Status UsesAssign(int x, int* out) {
  ZB_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return OkStatus();
}

TEST(StatusMacrosTest, AssignOrReturn) {
  int out = 0;
  ASSERT_TRUE(UsesAssign(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_EQ(UsesAssign(0, &out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(out, 42);  // Untouched on error.
}

}  // namespace
}  // namespace zerobak
