#include "block/file_volume.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/minidb.h"

namespace zerobak::block {
namespace {

std::string TempPath(const std::string& tag) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "zb_" + info->name() + "_" + tag + ".vol";
}

std::string BlockOf(char c) {
  return std::string(kDefaultBlockSize, c);
}

TEST(FileVolumeTest, CreateWriteReadRoundTrip) {
  const std::string path = TempPath("rw");
  auto vol = FileVolume::Create(path, 16);
  ASSERT_TRUE(vol.ok()) << vol.status();
  EXPECT_EQ((*vol)->block_count(), 16u);
  ASSERT_TRUE((*vol)->Write(3, 1, BlockOf('x')).ok());
  ASSERT_TRUE((*vol)->Sync().ok());
  std::string out;
  ASSERT_TRUE((*vol)->Read(3, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('x'));
  // Unwritten blocks read as zeros (sparse file).
  ASSERT_TRUE((*vol)->Read(0, 1, &out).ok());
  EXPECT_EQ(out, std::string(kDefaultBlockSize, '\0'));
  std::remove(path.c_str());
}

TEST(FileVolumeTest, PersistsAcrossReopen) {
  const std::string path = TempPath("persist");
  {
    auto vol = FileVolume::Create(path, 8);
    ASSERT_TRUE(vol.ok());
    ASSERT_TRUE((*vol)->Write(5, 1, BlockOf('p')).ok());
  }
  auto vol = FileVolume::Open(path);
  ASSERT_TRUE(vol.ok()) << vol.status();
  EXPECT_EQ((*vol)->block_count(), 8u);
  std::string out;
  ASSERT_TRUE((*vol)->Read(5, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('p'));
  std::remove(path.c_str());
}

TEST(FileVolumeTest, OpenMissingFileIsNotFound) {
  EXPECT_EQ(FileVolume::Open("/nonexistent/nope.vol").status().code(),
            StatusCode::kNotFound);
}

TEST(FileVolumeTest, MisalignedFileRejected) {
  const std::string path = TempPath("misaligned");
  {
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not a multiple of 4096", f);
    std::fclose(f);
  }
  EXPECT_EQ(FileVolume::Open(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(FileVolumeTest, RangeChecks) {
  const std::string path = TempPath("range");
  auto vol = FileVolume::Create(path, 4);
  ASSERT_TRUE(vol.ok());
  std::string out;
  EXPECT_EQ((*vol)->Read(4, 1, &out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ((*vol)->Write(0, 1, "short").code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(FileVolumeTest, MultiBlockIo) {
  const std::string path = TempPath("multi");
  auto vol = FileVolume::Create(path, 16);
  ASSERT_TRUE(vol.ok());
  ASSERT_TRUE(
      (*vol)->Write(2, 3, BlockOf('a') + BlockOf('b') + BlockOf('c')).ok());
  std::string out;
  ASSERT_TRUE((*vol)->Read(3, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('b'));
  std::remove(path.c_str());
}

TEST(FileVolumeTest, DatabasePersistsOnDisk) {
  // The integration the device exists for: a MiniDb surviving "process
  // restarts" on a real file.
  const std::string path = TempPath("db");
  db::DbOptions opts;
  opts.checkpoint_blocks = 16;
  opts.wal_blocks = 32;
  {
    auto vol = FileVolume::Create(path, 1 + 2 * 16 + 32);
    ASSERT_TRUE(vol.ok());
    ASSERT_TRUE(db::MiniDb::Format(vol->get(), opts).ok());
    auto db = db::MiniDb::Open(vol->get(), opts);
    ASSERT_TRUE(db.ok());
    db::Transaction txn = (*db)->Begin();
    txn.Put("t", "durable", "yes");
    ASSERT_TRUE((*db)->Commit(std::move(txn)).ok());
    ASSERT_TRUE((*vol)->Sync().ok());
  }
  auto vol = FileVolume::Open(path);
  ASSERT_TRUE(vol.ok());
  auto db = db::MiniDb::Open(vol->get(), opts);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->Get("t", "durable").value(), "yes");
  std::remove(path.c_str());
}

TEST(FileVolumeTest, MediaGateFailsIoDeterministically) {
  const std::string path = TempPath("media");
  auto vol = FileVolume::Create(path, 64);
  ASSERT_TRUE(vol.ok());
  for (Lba lba = 0; lba < 64; ++lba) {
    ASSERT_TRUE((*vol)->Write(lba, 1, BlockOf('m')).ok());
  }
  (*vol)->SetMediaError(0.25, 7);
  EXPECT_TRUE((*vol)->media_error_armed());
  std::string out;
  std::vector<Lba> bad;
  for (Lba lba = 0; lba < 64; ++lba) {
    if (!(*vol)->Read(lba, 1, &out).ok()) bad.push_back(lba);
  }
  ASSERT_FALSE(bad.empty());
  EXPECT_LT(bad.size(), 64u);
  EXPECT_EQ((*vol)->media_errors(), bad.size());
  // Same seed on a second pass hits exactly the same sectors, and writes
  // go through the same gate as reads.
  for (Lba lba : bad) {
    EXPECT_EQ((*vol)->Read(lba, 1, &out).code(), StatusCode::kDataLoss);
    EXPECT_EQ((*vol)->Write(lba, 1, BlockOf('w')).code(),
              StatusCode::kDataLoss);
  }
  // Healing restores every sector.
  (*vol)->SetMediaError(0.0, 0);
  EXPECT_FALSE((*vol)->media_error_armed());
  for (Lba lba = 0; lba < 64; ++lba) {
    EXPECT_TRUE((*vol)->Read(lba, 1, &out).ok());
  }
  std::remove(path.c_str());
}

TEST(FileVolumeTest, FlipBitRotsBackingFile) {
  const std::string path = TempPath("rot");
  auto vol = FileVolume::Create(path, 8);
  ASSERT_TRUE(vol.ok());
  ASSERT_TRUE((*vol)->Write(2, 1, BlockOf('r')).ok());
  ASSERT_TRUE((*vol)->FlipBit(2, 5));
  EXPECT_EQ((*vol)->bit_flips(), 1u);
  EXPECT_FALSE((*vol)->FlipBit(8, 0)) << "out of range";
  std::string out;
  ASSERT_TRUE((*vol)->Read(2, 1, &out).ok());
  std::string expect = BlockOf('r');
  expect[0] = static_cast<char>(expect[0] ^ (1u << 5));
  EXPECT_EQ(out, expect);
  // The rot is on the media, not in a cache: it survives reopen.
  vol->reset();
  auto reopened = FileVolume::Open(path);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE((*reopened)->Read(2, 1, &out).ok());
  EXPECT_EQ(out, expect);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace zerobak::block
