#include "block/mem_volume.h"

#include <gtest/gtest.h>

namespace zerobak::block {
namespace {

std::string BlockOf(char c, uint32_t size = kDefaultBlockSize) {
  return std::string(size, c);
}

TEST(MemVolumeTest, Geometry) {
  MemVolume v(100, 512);
  EXPECT_EQ(v.block_size(), 512u);
  EXPECT_EQ(v.block_count(), 100u);
  EXPECT_EQ(v.size_bytes(), 51200u);
}

TEST(MemVolumeTest, UnwrittenBlocksReadAsZeros) {
  MemVolume v(10);
  std::string out;
  ASSERT_TRUE(v.Read(3, 2, &out).ok());
  EXPECT_EQ(out, std::string(2 * kDefaultBlockSize, '\0'));
  EXPECT_EQ(v.allocated_blocks(), 0u);
}

TEST(MemVolumeTest, WriteReadRoundTrip) {
  MemVolume v(10);
  ASSERT_TRUE(v.Write(2, 1, BlockOf('x')).ok());
  std::string out;
  ASSERT_TRUE(v.Read(2, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('x'));
  EXPECT_EQ(v.allocated_blocks(), 1u);
}

TEST(MemVolumeTest, MultiBlockWrite) {
  MemVolume v(10);
  ASSERT_TRUE(v.Write(1, 3, BlockOf('a') + BlockOf('b') + BlockOf('c')).ok());
  std::string out;
  ASSERT_TRUE(v.Read(2, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('b'));
  ASSERT_TRUE(v.Read(1, 3, &out).ok());
  EXPECT_EQ(out.size(), 3u * kDefaultBlockSize);
}

TEST(MemVolumeTest, RangeChecks) {
  MemVolume v(10);
  std::string out;
  EXPECT_EQ(v.Read(10, 1, &out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(v.Read(9, 2, &out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(v.Write(10, 1, BlockOf('x')).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(v.Read(0, 0, &out).code(), StatusCode::kInvalidArgument);
}

TEST(MemVolumeTest, PayloadSizeValidated) {
  MemVolume v(10);
  EXPECT_EQ(v.Write(0, 2, BlockOf('x')).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(v.Write(0, 1, "short").code(), StatusCode::kInvalidArgument);
}

TEST(MemVolumeTest, CloneFromCopiesContent) {
  MemVolume a(10), b(10);
  ASSERT_TRUE(a.Write(0, 1, BlockOf('p')).ok());
  ASSERT_TRUE(a.Write(7, 1, BlockOf('q')).ok());
  ASSERT_TRUE(b.CloneFrom(a).ok());
  EXPECT_TRUE(a.ContentEquals(b));
  // Clone is a snapshot: further writes to `a` do not affect `b`.
  ASSERT_TRUE(a.Write(0, 1, BlockOf('z')).ok());
  EXPECT_FALSE(a.ContentEquals(b));
}

TEST(MemVolumeTest, CloneGeometryMismatchRejected) {
  MemVolume a(10), b(20);
  EXPECT_EQ(b.CloneFrom(a).code(), StatusCode::kInvalidArgument);
}

TEST(MemVolumeTest, ContentEqualsTreatsZeroBlocksAsHoles) {
  MemVolume a(10), b(10);
  // a has an explicit zero block; b has a hole there.
  ASSERT_TRUE(a.Write(4, 1, std::string(kDefaultBlockSize, '\0')).ok());
  EXPECT_TRUE(a.ContentEquals(b));
  EXPECT_TRUE(b.ContentEquals(a));
}

TEST(MemVolumeTest, ResetDropsEverything) {
  MemVolume v(10);
  ASSERT_TRUE(v.Write(1, 1, BlockOf('x')).ok());
  v.Reset();
  EXPECT_EQ(v.allocated_blocks(), 0u);
  std::string out;
  ASSERT_TRUE(v.Read(1, 1, &out).ok());
  EXPECT_EQ(out, std::string(kDefaultBlockSize, '\0'));
}

TEST(MemVolumeTest, ReadBlockConvenience) {
  MemVolume v(10);
  EXPECT_EQ(v.ReadBlock(5), std::string(kDefaultBlockSize, '\0'));
  ASSERT_TRUE(v.Write(5, 1, BlockOf('k')).ok());
  EXPECT_EQ(v.ReadBlock(5), BlockOf('k'));
}

TEST(MemVolumeTest, ReadBlockViewTracksContent) {
  MemVolume v(10);
  EXPECT_EQ(v.ReadBlockView(3), std::string_view(BlockOf('\0')));
  ASSERT_TRUE(v.Write(3, 1, BlockOf('v')).ok());
  const std::string_view view = v.ReadBlockView(3);
  EXPECT_EQ(view.size(), static_cast<size_t>(kDefaultBlockSize));
  EXPECT_EQ(view, std::string_view(BlockOf('v')));
}

// Slab-specific behavior: writes far apart land in distinct chunks, and
// the sparse-footprint accounting stays per-block, not per-chunk.
TEST(MemVolumeSlabTest, SparseWritesAcrossChunks) {
  MemVolume v(MemVolume::kBlocksPerChunk * 4, 512);
  const Lba far = MemVolume::kBlocksPerChunk * 3 + 17;
  ASSERT_TRUE(v.Write(0, 1, BlockOf('a', 512)).ok());
  ASSERT_TRUE(v.Write(far, 1, BlockOf('b', 512)).ok());
  EXPECT_EQ(v.allocated_blocks(), 2u);
  EXPECT_TRUE(v.IsAllocated(0));
  EXPECT_TRUE(v.IsAllocated(far));
  EXPECT_FALSE(v.IsAllocated(1));
  EXPECT_FALSE(v.IsAllocated(far - 1));
  EXPECT_EQ(v.ReadBlock(far), BlockOf('b', 512));
  // A block in a touched chunk but never written still reads as zeros.
  EXPECT_EQ(v.ReadBlock(far - 1), BlockOf('\0', 512));
}

TEST(MemVolumeSlabTest, WriteSpanningChunkBoundary) {
  MemVolume v(MemVolume::kBlocksPerChunk * 2, 512);
  const Lba edge = MemVolume::kBlocksPerChunk - 1;
  ASSERT_TRUE(
      v.Write(edge, 2, BlockOf('x', 512) + BlockOf('y', 512)).ok());
  EXPECT_EQ(v.allocated_blocks(), 2u);
  std::string out;
  ASSERT_TRUE(v.Read(edge, 2, &out).ok());
  EXPECT_EQ(out, BlockOf('x', 512) + BlockOf('y', 512));
}

TEST(MemVolumeSlabTest, PartialTailChunk) {
  // Block count not a multiple of the chunk size: the tail chunk is short.
  MemVolume v(MemVolume::kBlocksPerChunk + 5, 512);
  const Lba last = v.block_count() - 1;
  ASSERT_TRUE(v.Write(last, 1, BlockOf('t', 512)).ok());
  EXPECT_EQ(v.ReadBlock(last), BlockOf('t', 512));
  std::string out;
  EXPECT_EQ(v.Read(last, 2, &out).code(), StatusCode::kOutOfRange);
}

TEST(MemVolumeSlabTest, OverwriteDoesNotDoubleCountAllocation) {
  MemVolume v(10);
  ASSERT_TRUE(v.Write(4, 1, BlockOf('a')).ok());
  ASSERT_TRUE(v.Write(4, 1, BlockOf('b')).ok());
  EXPECT_EQ(v.allocated_blocks(), 1u);
  EXPECT_EQ(v.ReadBlock(4), BlockOf('b'));
}

TEST(MemVolumeSlabTest, CloneFromReplacesExistingContent) {
  MemVolume a(10), b(10);
  ASSERT_TRUE(b.Write(9, 1, BlockOf('o')).ok());
  ASSERT_TRUE(a.Write(2, 1, BlockOf('n')).ok());
  ASSERT_TRUE(b.CloneFrom(a).ok());
  EXPECT_TRUE(a.ContentEquals(b));
  EXPECT_EQ(b.allocated_blocks(), 1u);
  EXPECT_EQ(b.ReadBlock(9), BlockOf('\0'));
}

}  // namespace
}  // namespace zerobak::block
