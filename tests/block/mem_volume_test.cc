#include "block/mem_volume.h"

#include <gtest/gtest.h>

namespace zerobak::block {
namespace {

std::string BlockOf(char c, uint32_t size = kDefaultBlockSize) {
  return std::string(size, c);
}

TEST(MemVolumeTest, Geometry) {
  MemVolume v(100, 512);
  EXPECT_EQ(v.block_size(), 512u);
  EXPECT_EQ(v.block_count(), 100u);
  EXPECT_EQ(v.size_bytes(), 51200u);
}

TEST(MemVolumeTest, UnwrittenBlocksReadAsZeros) {
  MemVolume v(10);
  std::string out;
  ASSERT_TRUE(v.Read(3, 2, &out).ok());
  EXPECT_EQ(out, std::string(2 * kDefaultBlockSize, '\0'));
  EXPECT_EQ(v.allocated_blocks(), 0u);
}

TEST(MemVolumeTest, WriteReadRoundTrip) {
  MemVolume v(10);
  ASSERT_TRUE(v.Write(2, 1, BlockOf('x')).ok());
  std::string out;
  ASSERT_TRUE(v.Read(2, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('x'));
  EXPECT_EQ(v.allocated_blocks(), 1u);
}

TEST(MemVolumeTest, MultiBlockWrite) {
  MemVolume v(10);
  ASSERT_TRUE(v.Write(1, 3, BlockOf('a') + BlockOf('b') + BlockOf('c')).ok());
  std::string out;
  ASSERT_TRUE(v.Read(2, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('b'));
  ASSERT_TRUE(v.Read(1, 3, &out).ok());
  EXPECT_EQ(out.size(), 3u * kDefaultBlockSize);
}

TEST(MemVolumeTest, RangeChecks) {
  MemVolume v(10);
  std::string out;
  EXPECT_EQ(v.Read(10, 1, &out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(v.Read(9, 2, &out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(v.Write(10, 1, BlockOf('x')).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(v.Read(0, 0, &out).code(), StatusCode::kInvalidArgument);
}

TEST(MemVolumeTest, PayloadSizeValidated) {
  MemVolume v(10);
  EXPECT_EQ(v.Write(0, 2, BlockOf('x')).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(v.Write(0, 1, "short").code(), StatusCode::kInvalidArgument);
}

TEST(MemVolumeTest, CloneFromCopiesContent) {
  MemVolume a(10), b(10);
  ASSERT_TRUE(a.Write(0, 1, BlockOf('p')).ok());
  ASSERT_TRUE(a.Write(7, 1, BlockOf('q')).ok());
  ASSERT_TRUE(b.CloneFrom(a).ok());
  EXPECT_TRUE(a.ContentEquals(b));
  // Clone is a snapshot: further writes to `a` do not affect `b`.
  ASSERT_TRUE(a.Write(0, 1, BlockOf('z')).ok());
  EXPECT_FALSE(a.ContentEquals(b));
}

TEST(MemVolumeTest, CloneGeometryMismatchRejected) {
  MemVolume a(10), b(20);
  EXPECT_EQ(b.CloneFrom(a).code(), StatusCode::kInvalidArgument);
}

TEST(MemVolumeTest, ContentEqualsTreatsZeroBlocksAsHoles) {
  MemVolume a(10), b(10);
  // a has an explicit zero block; b has a hole there.
  ASSERT_TRUE(a.Write(4, 1, std::string(kDefaultBlockSize, '\0')).ok());
  EXPECT_TRUE(a.ContentEquals(b));
  EXPECT_TRUE(b.ContentEquals(a));
}

TEST(MemVolumeTest, ResetDropsEverything) {
  MemVolume v(10);
  ASSERT_TRUE(v.Write(1, 1, BlockOf('x')).ok());
  v.Reset();
  EXPECT_EQ(v.allocated_blocks(), 0u);
  std::string out;
  ASSERT_TRUE(v.Read(1, 1, &out).ok());
  EXPECT_EQ(out, std::string(kDefaultBlockSize, '\0'));
}

TEST(MemVolumeTest, ReadBlockConvenience) {
  MemVolume v(10);
  EXPECT_EQ(v.ReadBlock(5), std::string(kDefaultBlockSize, '\0'));
  ASSERT_TRUE(v.Write(5, 1, BlockOf('k')).ok());
  EXPECT_EQ(v.ReadBlock(5), BlockOf('k'));
}

TEST(MemVolumeTest, ReadBlockViewTracksContent) {
  MemVolume v(10);
  EXPECT_EQ(v.ReadBlockView(3), std::string_view(BlockOf('\0')));
  ASSERT_TRUE(v.Write(3, 1, BlockOf('v')).ok());
  const std::string_view view = v.ReadBlockView(3);
  EXPECT_EQ(view.size(), static_cast<size_t>(kDefaultBlockSize));
  EXPECT_EQ(view, std::string_view(BlockOf('v')));
}

// Slab-specific behavior: writes far apart land in distinct chunks, and
// the sparse-footprint accounting stays per-block, not per-chunk.
TEST(MemVolumeSlabTest, SparseWritesAcrossChunks) {
  MemVolume v(MemVolume::kBlocksPerChunk * 4, 512);
  const Lba far = MemVolume::kBlocksPerChunk * 3 + 17;
  ASSERT_TRUE(v.Write(0, 1, BlockOf('a', 512)).ok());
  ASSERT_TRUE(v.Write(far, 1, BlockOf('b', 512)).ok());
  EXPECT_EQ(v.allocated_blocks(), 2u);
  EXPECT_TRUE(v.IsAllocated(0));
  EXPECT_TRUE(v.IsAllocated(far));
  EXPECT_FALSE(v.IsAllocated(1));
  EXPECT_FALSE(v.IsAllocated(far - 1));
  EXPECT_EQ(v.ReadBlock(far), BlockOf('b', 512));
  // A block in a touched chunk but never written still reads as zeros.
  EXPECT_EQ(v.ReadBlock(far - 1), BlockOf('\0', 512));
}

TEST(MemVolumeSlabTest, WriteSpanningChunkBoundary) {
  MemVolume v(MemVolume::kBlocksPerChunk * 2, 512);
  const Lba edge = MemVolume::kBlocksPerChunk - 1;
  ASSERT_TRUE(
      v.Write(edge, 2, BlockOf('x', 512) + BlockOf('y', 512)).ok());
  EXPECT_EQ(v.allocated_blocks(), 2u);
  std::string out;
  ASSERT_TRUE(v.Read(edge, 2, &out).ok());
  EXPECT_EQ(out, BlockOf('x', 512) + BlockOf('y', 512));
}

TEST(MemVolumeSlabTest, PartialTailChunk) {
  // Block count not a multiple of the chunk size: the tail chunk is short.
  MemVolume v(MemVolume::kBlocksPerChunk + 5, 512);
  const Lba last = v.block_count() - 1;
  ASSERT_TRUE(v.Write(last, 1, BlockOf('t', 512)).ok());
  EXPECT_EQ(v.ReadBlock(last), BlockOf('t', 512));
  std::string out;
  EXPECT_EQ(v.Read(last, 2, &out).code(), StatusCode::kOutOfRange);
}

TEST(MemVolumeSlabTest, OverwriteDoesNotDoubleCountAllocation) {
  MemVolume v(10);
  ASSERT_TRUE(v.Write(4, 1, BlockOf('a')).ok());
  ASSERT_TRUE(v.Write(4, 1, BlockOf('b')).ok());
  EXPECT_EQ(v.allocated_blocks(), 1u);
  EXPECT_EQ(v.ReadBlock(4), BlockOf('b'));
}

TEST(MemVolumeSlabTest, CloneFromReplacesExistingContent) {
  MemVolume a(10), b(10);
  ASSERT_TRUE(b.Write(9, 1, BlockOf('o')).ok());
  ASSERT_TRUE(a.Write(2, 1, BlockOf('n')).ok());
  ASSERT_TRUE(b.CloneFrom(a).ok());
  EXPECT_TRUE(a.ContentEquals(b));
  EXPECT_EQ(b.allocated_blocks(), 1u);
  EXPECT_EQ(b.ReadBlock(9), BlockOf('\0'));
}

TEST(MemVolumeIntegrityTest, ChecksumCatchesSilentFlip) {
  MemVolume v(10);
  v.EnableChecksums();
  ASSERT_TRUE(v.Write(3, 1, BlockOf('x')).ok());
  std::string out;
  ASSERT_TRUE(v.Read(3, 1, &out).ok());

  ASSERT_TRUE(v.FlipBit(3, 17));
  EXPECT_EQ(v.bit_flips(), 1u);
  Status s = v.Read(3, 1, &out);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss) << s;
  EXPECT_GE(v.checksum_failures(), 1u);
  // Overwriting refreshes the sidecar: the block is trustworthy again.
  ASSERT_TRUE(v.Write(3, 1, BlockOf('y')).ok());
  ASSERT_TRUE(v.Read(3, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('y'));
}

TEST(MemVolumeIntegrityTest, EnableChecksumsBackfillsExistingBlocks) {
  MemVolume v(10);
  ASSERT_TRUE(v.Write(2, 1, BlockOf('a')).ok());
  v.EnableChecksums();
  // Pre-existing content was fingerprinted at enable time.
  ASSERT_TRUE(v.FlipBit(2, 3));
  std::string out;
  EXPECT_EQ(v.Read(2, 1, &out).code(), StatusCode::kDataLoss);
}

TEST(MemVolumeIntegrityTest, FlipBitRefusesHoles) {
  MemVolume v(10);
  v.EnableChecksums();
  EXPECT_FALSE(v.FlipBit(5, 0)) << "a hole has no media to rot";
  EXPECT_EQ(v.bit_flips(), 0u);
}

TEST(MemVolumeIntegrityTest, VerifyExtentClassifiesHealth) {
  MemVolume v(64);
  v.EnableChecksums();
  ASSERT_TRUE(v.Write(10, 1, BlockOf('q')).ok());
  EXPECT_EQ(v.VerifyExtent(0, 64), MemVolume::ExtentHealth::kClean);
  EXPECT_GE(v.blocks_verified(), 64u);

  ASSERT_TRUE(v.FlipBit(10, 100));
  Lba bad = 0;
  EXPECT_EQ(v.VerifyExtent(0, 64, &bad),
            MemVolume::ExtentHealth::kChecksumMismatch);
  EXPECT_EQ(bad, 10u);

  // An armed media gate outranks the checksum scan.
  v.SetMediaError(1.0, 42);
  EXPECT_EQ(v.VerifyExtent(0, 64, &bad),
            MemVolume::ExtentHealth::kMediaError);
  v.SetMediaError(0.0, 0);
  EXPECT_EQ(v.VerifyExtent(0, 64, &bad),
            MemVolume::ExtentHealth::kChecksumMismatch);
}

TEST(MemVolumeIntegrityTest, MediaGateIsDeterministicPerSeed) {
  MemVolume a(256), b(256);
  a.SetMediaError(0.2, 99);
  b.SetMediaError(0.2, 99);
  std::string out;
  int failures = 0;
  for (Lba lba = 0; lba < 256; ++lba) {
    const bool a_bad = !a.Read(lba, 1, &out).ok();
    const bool b_bad = !b.Read(lba, 1, &out).ok();
    EXPECT_EQ(a_bad, b_bad) << "lba " << lba;
    failures += a_bad ? 1 : 0;
  }
  EXPECT_GT(failures, 0);
  EXPECT_LT(failures, 256);
  EXPECT_EQ(a.media_errors(), static_cast<uint64_t>(failures));
  // Writes hit the same per-LBA gate.
  Lba bad_lba = 0;
  for (Lba lba = 0; lba < 256; ++lba) {
    if (!a.Read(lba, 1, &out).ok()) {
      bad_lba = lba;
      break;
    }
  }
  EXPECT_EQ(b.Write(bad_lba, 1, BlockOf('w')).code(),
            StatusCode::kDataLoss);
  // Healing the gate restores full access.
  a.SetMediaError(0.0, 0);
  for (Lba lba = 0; lba < 256; ++lba) {
    EXPECT_TRUE(a.Read(lba, 1, &out).ok());
  }
}

TEST(MemVolumeIntegrityTest, ExtentFingerprintTracksContent) {
  MemVolume a(64), b(64);
  a.EnableChecksums();
  b.EnableChecksums();
  // Holes fingerprint equal (both all-zero), allocated-zero too.
  EXPECT_EQ(a.ExtentFingerprint(0, 64), b.ExtentFingerprint(0, 64));
  ASSERT_TRUE(a.Write(7, 1, BlockOf('\0')).ok());
  EXPECT_EQ(a.ExtentFingerprint(0, 64), b.ExtentFingerprint(0, 64));
  // Diverging content diverges the fingerprint; matching it re-converges.
  ASSERT_TRUE(a.Write(9, 1, BlockOf('f')).ok());
  EXPECT_NE(a.ExtentFingerprint(0, 64), b.ExtentFingerprint(0, 64));
  EXPECT_EQ(b.ExtentFingerprint(0, 64), b.ExtentFingerprint(0, 64));
  ASSERT_TRUE(b.Write(9, 1, BlockOf('f')).ok());
  EXPECT_EQ(a.ExtentFingerprint(0, 64), b.ExtentFingerprint(0, 64));
  // Position matters: the same block at a different LBA differs.
  MemVolume c(64);
  c.EnableChecksums();
  ASSERT_TRUE(c.Write(10, 1, BlockOf('f')).ok());
  EXPECT_NE(a.ExtentFingerprint(0, 64), c.ExtentFingerprint(0, 64));
}

TEST(MemVolumeIntegrityTest, CloneFromPreservesLatentRot) {
  MemVolume a(10), b(10);
  a.EnableChecksums();
  b.EnableChecksums();
  ASSERT_TRUE(a.Write(4, 1, BlockOf('r')).ok());
  ASSERT_TRUE(a.FlipBit(4, 9));
  ASSERT_TRUE(b.CloneFrom(a).ok());
  // The clone carries the stale sidecar, so the rot stays detectable
  // instead of being laundered by a recompute.
  std::string out;
  EXPECT_EQ(b.Read(4, 1, &out).code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace zerobak::block
