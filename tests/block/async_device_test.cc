#include "block/async_device.h"

#include <gtest/gtest.h>

#include "block/mem_volume.h"

namespace zerobak::block {
namespace {

DeviceLatencyModel FixedModel(SimDuration read, SimDuration write) {
  DeviceLatencyModel m;
  m.read_latency = read;
  m.write_latency = write;
  m.per_block = 0;
  m.jitter = 0;
  return m;
}

TEST(AsyncBlockDeviceTest, WriteCompletesAfterModelLatency) {
  sim::SimEnvironment env;
  MemVolume backing(16);
  AsyncBlockDevice dev(&env, &backing,
                       FixedModel(Microseconds(100), Microseconds(250)));
  SimTime completed = -1;
  dev.Submit(IoRequest{IoType::kWrite, 0, 1,
                       std::string(kDefaultBlockSize, 'w'),
                       [&](IoResult r) {
                         ASSERT_TRUE(r.status.ok());
                         completed = env.now();
                       }});
  env.RunUntilIdle();
  EXPECT_EQ(completed, Microseconds(250));
}

TEST(AsyncBlockDeviceTest, UnackedWriteIsNotDurable) {
  sim::SimEnvironment env;
  MemVolume backing(16);
  AsyncBlockDevice dev(&env, &backing,
                       FixedModel(Microseconds(100), Microseconds(250)));
  dev.Submit(IoRequest{IoType::kWrite, 0, 1,
                       std::string(kDefaultBlockSize, 'w'), nullptr});
  // Before the completion event, the backing store must be untouched —
  // this is the ack-ordering property the paper's recovery relies on.
  env.RunUntil(Microseconds(200));
  EXPECT_EQ(backing.allocated_blocks(), 0u);
  env.RunUntilIdle();
  EXPECT_EQ(backing.allocated_blocks(), 1u);
}

TEST(AsyncBlockDeviceTest, ReadReturnsData) {
  sim::SimEnvironment env;
  MemVolume backing(16);
  ASSERT_TRUE(backing.Write(3, 1, std::string(kDefaultBlockSize, 'r')).ok());
  AsyncBlockDevice dev(&env, &backing, FixedModel(Microseconds(50), 0));
  std::string data;
  dev.Submit(IoRequest{IoType::kRead, 3, 1, "", [&](IoResult r) {
                         ASSERT_TRUE(r.status.ok());
                         data = std::move(r.data);
                       }});
  env.RunUntilIdle();
  EXPECT_EQ(data, std::string(kDefaultBlockSize, 'r'));
}

TEST(AsyncBlockDeviceTest, ErrorsPropagateThroughCallback) {
  sim::SimEnvironment env;
  MemVolume backing(4);
  AsyncBlockDevice dev(&env, &backing, FixedModel(1, 1));
  Status seen = OkStatus();
  dev.Submit(IoRequest{IoType::kRead, 100, 1, "", [&](IoResult r) {
                         seen = r.status;
                       }});
  env.RunUntilIdle();
  EXPECT_EQ(seen.code(), StatusCode::kOutOfRange);
}

TEST(AsyncBlockDeviceTest, PerBlockCostScalesWithSize) {
  sim::SimEnvironment env;
  MemVolume backing(64);
  DeviceLatencyModel m;
  m.read_latency = 0;
  m.write_latency = Microseconds(100);
  m.per_block = Microseconds(10);
  m.jitter = 0;
  AsyncBlockDevice dev(&env, &backing, m);
  SimTime one = -1, eight = -1;
  dev.Submit(IoRequest{IoType::kWrite, 0, 1,
                       std::string(kDefaultBlockSize, 'a'),
                       [&](IoResult) { one = env.now(); }});
  env.RunUntilIdle();
  const SimTime base = env.now();
  dev.Submit(IoRequest{IoType::kWrite, 8, 8,
                       std::string(8 * kDefaultBlockSize, 'b'),
                       [&](IoResult) { eight = env.now(); }});
  env.RunUntilIdle();
  EXPECT_EQ(one, Microseconds(110));
  EXPECT_EQ(eight - base, Microseconds(180));
}

TEST(AsyncBlockDeviceTest, StatsTrackLatencies) {
  sim::SimEnvironment env;
  MemVolume backing(16);
  AsyncBlockDevice dev(&env, &backing,
                       FixedModel(Microseconds(10), Microseconds(20)));
  for (int i = 0; i < 5; ++i) {
    dev.Submit(IoRequest{IoType::kWrite, 0, 1,
                         std::string(kDefaultBlockSize, 'x'), nullptr});
    dev.Submit(IoRequest{IoType::kRead, 0, 1, "", nullptr});
  }
  env.RunUntilIdle();
  EXPECT_EQ(dev.stats().writes, 5u);
  EXPECT_EQ(dev.stats().reads, 5u);
  EXPECT_EQ(dev.stats().write_latency_ns.count(), 5u);
  EXPECT_EQ(dev.stats().write_latency_ns.max(),
            static_cast<uint64_t>(Microseconds(20)));
}

TEST(DeviceLatencyModelTest, JitterWithinBounds) {
  DeviceLatencyModel m;
  m.read_latency = Microseconds(100);
  m.per_block = 0;
  m.jitter = Microseconds(50);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const SimDuration c = m.Cost(IoType::kRead, 1, &rng);
    EXPECT_GE(c, Microseconds(100));
    EXPECT_LT(c, Microseconds(150));
  }
}

}  // namespace
}  // namespace zerobak::block
