#include "csi/provisioner.h"

#include <gtest/gtest.h>

#include "container/cluster.h"

namespace zerobak::csi {
namespace {

using container::kKindPersistentVolume;
using container::kKindPersistentVolumeClaim;
using container::kKindStorageClass;
using container::Resource;

storage::ArrayConfig ZeroLatency() {
  storage::ArrayConfig cfg;
  cfg.serial = "ARR";
  cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  return cfg;
}

class ProvisionerTest : public ::testing::Test {
 protected:
  ProvisionerTest() : array_(&env_, ZeroLatency()), cluster_(&env_, "c") {
    cluster_.controllers()->Register(std::make_unique<Provisioner>(&array_));
    Resource sc;
    sc.kind = kKindStorageClass;
    sc.name = "fast";
    sc.spec["provisioner"] = kProvisionerName;
    sc.spec["arraySerial"] = array_.serial();
    EXPECT_TRUE(cluster_.api()->Create(std::move(sc)).ok());
  }

  Status CreateClaim(const std::string& name, int64_t bytes,
                     const std::string& sc = "fast") {
    Resource pvc;
    pvc.kind = kKindPersistentVolumeClaim;
    pvc.ns = "shop";
    pvc.name = name;
    pvc.spec["storageClassName"] = sc;
    pvc.spec["capacityBytes"] = bytes;
    auto created = cluster_.api()->Create(std::move(pvc));
    return created.ok() ? OkStatus() : created.status();
  }

  sim::SimEnvironment env_;
  storage::StorageArray array_;
  container::Cluster cluster_;
};

TEST_F(ProvisionerTest, ProvisionsAndBindsClaim) {
  ASSERT_TRUE(CreateClaim("sales-db", 1 << 20).ok());
  env_.RunUntilIdle();

  auto pvc = cluster_.api()->Get(kKindPersistentVolumeClaim, "shop",
                                 "sales-db");
  ASSERT_TRUE(pvc.ok());
  EXPECT_EQ(pvc->StatusPhase(), "Bound");
  const std::string pv_name = pvc->spec.GetString("volumeName");
  EXPECT_EQ(pv_name, "pvc-shop-sales-db");

  auto pv = cluster_.api()->Get(kKindPersistentVolume, "", pv_name);
  ASSERT_TRUE(pv.ok());
  EXPECT_EQ(pv->spec.Find("claimRef")->GetString("namespace"), "shop");
  EXPECT_EQ(pv->spec.Find("claimRef")->GetString("name"), "sales-db");

  // The array volume exists with the right geometry.
  auto parsed = storage::StorageArray::ParseVolumeHandle(
      pv->spec.GetString("volumeHandle"));
  ASSERT_TRUE(parsed.ok());
  storage::Volume* vol = array_.GetVolume(parsed->second);
  ASSERT_NE(vol, nullptr);
  EXPECT_EQ(vol->block_count() * vol->block_size(), 1u << 20);
}

TEST_F(ProvisionerTest, IgnoresForeignStorageClass) {
  Resource sc;
  sc.kind = kKindStorageClass;
  sc.name = "other-vendor";
  sc.spec["provisioner"] = "csi.other.io";
  sc.spec["arraySerial"] = "X";
  ASSERT_TRUE(cluster_.api()->Create(std::move(sc)).ok());
  ASSERT_TRUE(CreateClaim("foreign", 4096, "other-vendor").ok());
  env_.RunUntilIdle();
  auto pvc = cluster_.api()->Get(kKindPersistentVolumeClaim, "shop",
                                 "foreign");
  EXPECT_NE(pvc->StatusPhase(), "Bound");
  EXPECT_EQ(array_.volume_count(), 0u);
}

TEST_F(ProvisionerTest, MissingStorageClassRetriesViaResync) {
  ASSERT_TRUE(CreateClaim("early", 4096, "late-class").ok());
  env_.RunUntilIdle();
  EXPECT_EQ(array_.volume_count(), 0u);

  Resource sc;
  sc.kind = kKindStorageClass;
  sc.name = "late-class";
  sc.spec["provisioner"] = kProvisionerName;
  sc.spec["arraySerial"] = array_.serial();
  ASSERT_TRUE(cluster_.api()->Create(std::move(sc)).ok());
  cluster_.controllers()->EnableResync(Milliseconds(10));
  env_.RunFor(Milliseconds(50));
  auto pvc = cluster_.api()->Get(kKindPersistentVolumeClaim, "shop",
                                 "early");
  EXPECT_EQ(pvc->StatusPhase(), "Bound");
}

TEST_F(ProvisionerTest, ReconcileIsIdempotent) {
  ASSERT_TRUE(CreateClaim("sales-db", 1 << 20).ok());
  cluster_.controllers()->EnableResync(Milliseconds(10));
  env_.RunFor(Milliseconds(200));
  auto* prov = static_cast<Provisioner*>(
      cluster_.controllers()->Find("csi-provisioner"));
  EXPECT_EQ(prov->provisioned_volumes(), 1u);
  EXPECT_EQ(array_.volume_count(), 1u);
}

TEST_F(ProvisionerTest, DeleteReleasesVolume) {
  ASSERT_TRUE(CreateClaim("tmp", 1 << 20).ok());
  env_.RunUntilIdle();
  EXPECT_EQ(array_.volume_count(), 1u);
  ASSERT_TRUE(cluster_.api()
                  ->Delete(kKindPersistentVolumeClaim, "shop", "tmp")
                  .ok());
  env_.RunUntilIdle();
  EXPECT_EQ(array_.volume_count(), 0u);
  EXPECT_FALSE(cluster_.api()->Exists(kKindPersistentVolume, "",
                                      "pvc-shop-tmp"));
}

TEST_F(ProvisionerTest, ZeroCapacityClaimIgnored) {
  ASSERT_TRUE(CreateClaim("bad", 0).ok());
  env_.RunUntilIdle();
  EXPECT_EQ(array_.volume_count(), 0u);
}

}  // namespace
}  // namespace zerobak::csi
