#include "csi/schedule_controller.h"

#include <gtest/gtest.h>

#include "container/cluster.h"
#include "core/demo_system.h"
#include "snapshot/snapshot.h"

namespace zerobak::csi {
namespace {

using container::kKindSnapshotSchedule;
using container::kKindVolumeSnapshotGroup;
using container::Resource;

// End-to-end fixture: schedules run on a full DemoSystem backup cluster
// so that the created VolumeSnapshotGroup CRs are actually realized as
// array snapshot groups by the snapshot plugin.
class ScheduleTest : public ::testing::Test {
 protected:
  ScheduleTest() {
    core::DemoSystemConfig config;
    config.main_array.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
    config.backup_array.media = block::DeviceLatencyModel{0, 0, 0, 0, 2};
    config.link.base_latency = Milliseconds(1);
    system_ = std::make_unique<core::DemoSystem>(&env_, config);
    EXPECT_TRUE(system_->CreateBusinessNamespace("shop").ok());
    EXPECT_TRUE(system_->CreatePvc("shop", "db", 1 << 20).ok());
    env_.RunFor(Milliseconds(10));
    EXPECT_TRUE(system_->TagNamespaceForBackup("shop").ok());
    EXPECT_TRUE(system_->WaitForBackupConfigured("shop").ok());
  }

  size_t GroupCrCount() {
    return system_->backup_site()
        ->api()
        ->List(kKindVolumeSnapshotGroup, "shop")
        .size();
  }

  sim::SimEnvironment env_;
  std::unique_ptr<core::DemoSystem> system_;
};

TEST_F(ScheduleTest, FiresAtIntervalAndCreatesRealSnapshots) {
  ASSERT_TRUE(system_
                  ->CreateSnapshotSchedule("shop", "nightly",
                                           Milliseconds(100), /*retain=*/10)
                  .ok());
  env_.RunFor(Milliseconds(350));
  // Fired at 100, 200, 300 ms.
  EXPECT_EQ(GroupCrCount(), 3u);
  // The groups are realized on the array.
  EXPECT_EQ(system_->backup_site()->snapshots()->ListGroups().size(), 3u);

  auto schedule = system_->backup_site()->api()->Get(
      kKindSnapshotSchedule, "shop", "nightly");
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->StatusPhase(), "Active");
  EXPECT_EQ(schedule->status.GetInt("generations"), 3);
  EXPECT_EQ(schedule->status.GetString("lastGroup"), "nightly-g3");
}

TEST_F(ScheduleTest, RetentionPrunesOldestGenerations) {
  ASSERT_TRUE(system_
                  ->CreateSnapshotSchedule("shop", "freq",
                                           Milliseconds(50), /*retain=*/2)
                  .ok());
  env_.RunFor(Milliseconds(420));  // 8 firings, retain 2.
  EXPECT_EQ(GroupCrCount(), 2u);
  // Array snapshots pruned along with the CRs.
  EXPECT_EQ(system_->backup_site()->snapshots()->ListGroups().size(), 2u);
  // The survivors are the newest generations.
  bool saw_g7 = false, saw_g8 = false;
  for (const Resource& vsg : system_->backup_site()->api()->List(
           kKindVolumeSnapshotGroup, "shop")) {
    saw_g7 |= vsg.name == "freq-g7";
    saw_g8 |= vsg.name == "freq-g8";
  }
  EXPECT_TRUE(saw_g7);
  EXPECT_TRUE(saw_g8);
}

TEST_F(ScheduleTest, DeletingScheduleStopsFiring) {
  ASSERT_TRUE(system_
                  ->CreateSnapshotSchedule("shop", "tmp", Milliseconds(50),
                                           /*retain=*/5)
                  .ok());
  env_.RunFor(Milliseconds(120));
  const size_t count = GroupCrCount();
  EXPECT_GE(count, 2u);
  ASSERT_TRUE(system_->backup_site()
                  ->api()
                  ->Delete(kKindSnapshotSchedule, "shop", "tmp")
                  .ok());
  env_.RunFor(Milliseconds(300));
  EXPECT_EQ(GroupCrCount(), count);  // No new groups.
}

TEST_F(ScheduleTest, IntervalChangeRearmsTask) {
  ASSERT_TRUE(system_
                  ->CreateSnapshotSchedule("shop", "tune", Milliseconds(200),
                                           /*retain=*/10)
                  .ok());
  env_.RunFor(Milliseconds(450));  // 2 firings at 200 ms cadence.
  EXPECT_EQ(GroupCrCount(), 2u);
  ASSERT_TRUE(system_->backup_site()->api()->Mutate(
      kKindSnapshotSchedule, "shop", "tune", [](Resource* r) {
        r->spec["intervalMs"] = 50;
      }).ok());
  env_.RunFor(Milliseconds(250));  // ~5 firings at 50 ms cadence.
  EXPECT_GE(GroupCrCount(), 6u);
}

TEST_F(ScheduleTest, ZeroIntervalIgnored) {
  ASSERT_TRUE(system_
                  ->CreateSnapshotSchedule("shop", "broken",
                                           SimDuration{0}, /*retain=*/2)
                  .ok());
  env_.RunFor(Milliseconds(300));
  EXPECT_EQ(GroupCrCount(), 0u);
}

}  // namespace
}  // namespace zerobak::csi
