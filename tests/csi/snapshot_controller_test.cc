// Snapshot plugin tests: group CRs, standalone VolumeSnapshot CRs and
// handle parsing.
#include "csi/snapshot_controller.h"

#include <gtest/gtest.h>

#include "container/cluster.h"

namespace zerobak::csi {
namespace {

using container::kKindVolumeSnapshot;
using container::kKindVolumeSnapshotGroup;
using container::Resource;

class SnapshotControllerTest : public ::testing::Test {
 protected:
  SnapshotControllerTest()
      : array_(&env_, Config()), snapshots_(&array_), cluster_(&env_, "b") {
    cluster_.controllers()->Register(
        std::make_unique<SnapshotGroupController>(&snapshots_, &array_));
    auto a = array_.CreateVolume("vol-a", 64);
    auto b = array_.CreateVolume("vol-b", 64);
    EXPECT_TRUE(a.ok() && b.ok());
    vol_a_ = *a;
    vol_b_ = *b;
  }

  static storage::ArrayConfig Config() {
    storage::ArrayConfig cfg;
    cfg.serial = "SNAPARR";
    cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
    return cfg;
  }

  sim::SimEnvironment env_;
  storage::StorageArray array_;
  snapshot::SnapshotManager snapshots_;
  container::Cluster cluster_;
  storage::VolumeId vol_a_ = 0;
  storage::VolumeId vol_b_ = 0;
};

TEST_F(SnapshotControllerTest, HandleRoundTrip) {
  const std::string handle =
      SnapshotGroupController::SnapshotHandle("SNAPARR", 42);
  EXPECT_EQ(handle, "SNAPARR:snap:42");
  auto parsed =
      SnapshotGroupController::ParseSnapshotHandle("SNAPARR", handle);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, 42u);
  EXPECT_FALSE(SnapshotGroupController::ParseSnapshotHandle(
                   "OTHER", handle)
                   .ok());
  EXPECT_FALSE(SnapshotGroupController::ParseSnapshotHandle(
                   "SNAPARR", "SNAPARR:snap:abc")
                   .ok());
}

TEST_F(SnapshotControllerTest, GroupCrByHandles) {
  Resource vsg;
  vsg.kind = kKindVolumeSnapshotGroup;
  vsg.ns = "apps";
  vsg.name = "pair-snap";
  Value handles = Value::MakeArray();
  handles.Append(array_.VolumeHandle(vol_a_));
  handles.Append(array_.VolumeHandle(vol_b_));
  vsg.spec["volumeHandles"] = handles;
  ASSERT_TRUE(cluster_.api()->Create(std::move(vsg)).ok());
  env_.RunUntilIdle();

  auto stored = cluster_.api()->Get(kKindVolumeSnapshotGroup, "apps",
                                    "pair-snap");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->StatusPhase(), "Ready");
  EXPECT_EQ(snapshots_.snapshot_count(), 2u);
  EXPECT_EQ(cluster_.api()->List(kKindVolumeSnapshot, "apps").size(), 2u);
}

TEST_F(SnapshotControllerTest, StandaloneVolumeSnapshot) {
  Resource vs;
  vs.kind = kKindVolumeSnapshot;
  vs.ns = "apps";
  vs.name = "manual-snap";
  vs.spec["sourceHandle"] = array_.VolumeHandle(vol_a_);
  ASSERT_TRUE(cluster_.api()->Create(std::move(vs)).ok());
  env_.RunUntilIdle();

  auto stored = cluster_.api()->Get(kKindVolumeSnapshot, "apps",
                                    "manual-snap");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->StatusPhase(), "Ready");
  const std::string handle = stored->status.GetString("snapshotHandle");
  auto sid =
      SnapshotGroupController::ParseSnapshotHandle("SNAPARR", handle);
  ASSERT_TRUE(sid.ok());
  EXPECT_NE(snapshots_.GetSnapshot(*sid), nullptr);

  // Deleting the CR removes the array snapshot.
  ASSERT_TRUE(cluster_.api()
                  ->Delete(kKindVolumeSnapshot, "apps", "manual-snap")
                  .ok());
  env_.RunUntilIdle();
  EXPECT_EQ(snapshots_.GetSnapshot(*sid), nullptr);
}

TEST_F(SnapshotControllerTest, StandaloneForeignHandleIgnored) {
  Resource vs;
  vs.kind = kKindVolumeSnapshot;
  vs.ns = "apps";
  vs.name = "alien";
  vs.spec["sourceHandle"] = "OTHER:9";
  ASSERT_TRUE(cluster_.api()->Create(std::move(vs)).ok());
  env_.RunUntilIdle();
  auto stored = cluster_.api()->Get(kKindVolumeSnapshot, "apps", "alien");
  EXPECT_NE(stored->StatusPhase(), "Ready");
  EXPECT_EQ(snapshots_.snapshot_count(), 0u);
}

TEST_F(SnapshotControllerTest, GroupMembersNotDoubleManaged) {
  // A group's member VolumeSnapshot objects (spec.groupName set) must not
  // trigger additional standalone snapshots.
  Resource vsg;
  vsg.kind = kKindVolumeSnapshotGroup;
  vsg.ns = "apps";
  vsg.name = "g";
  Value handles = Value::MakeArray();
  handles.Append(array_.VolumeHandle(vol_a_));
  vsg.spec["volumeHandles"] = handles;
  ASSERT_TRUE(cluster_.api()->Create(std::move(vsg)).ok());
  env_.RunUntilIdle();
  EXPECT_EQ(snapshots_.snapshot_count(), 1u);
  // Resync replays everything; still exactly one snapshot.
  cluster_.controllers()->EnableResync(Milliseconds(5));
  env_.RunFor(Milliseconds(30));
  EXPECT_EQ(snapshots_.snapshot_count(), 1u);
}

TEST_F(SnapshotControllerTest, GroupDeletionRemovesSnapshotsAndMembers) {
  Resource vsg;
  vsg.kind = kKindVolumeSnapshotGroup;
  vsg.ns = "apps";
  vsg.name = "g";
  Value handles = Value::MakeArray();
  handles.Append(array_.VolumeHandle(vol_a_));
  handles.Append(array_.VolumeHandle(vol_b_));
  vsg.spec["volumeHandles"] = handles;
  ASSERT_TRUE(cluster_.api()->Create(std::move(vsg)).ok());
  env_.RunUntilIdle();
  EXPECT_EQ(snapshots_.snapshot_count(), 2u);

  ASSERT_TRUE(
      cluster_.api()->Delete(kKindVolumeSnapshotGroup, "apps", "g").ok());
  env_.RunUntilIdle();
  EXPECT_EQ(snapshots_.snapshot_count(), 0u);
  EXPECT_TRUE(cluster_.api()->List(kKindVolumeSnapshot, "apps").empty());
}

}  // namespace
}  // namespace zerobak::csi
