// Failure-injection tests for the replication plugin: the controller must
// converge to the declared state across backup-site outages, partial
// reconciles and re-creation — the level-triggered guarantee operators
// rely on.
#include "csi/replication_controller.h"

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "core/demo_system.h"

namespace zerobak::csi {
namespace {

using container::kKindPersistentVolumeClaim;
using container::kKindVolumeReplicationGroup;
using container::Resource;

class ReplicationControllerTest : public ::testing::Test {
 protected:
  ReplicationControllerTest() {
    core::DemoSystemConfig config = bench::FunctionalConfig();
    config.link.base_latency = Milliseconds(1);
    system_ = std::make_unique<core::DemoSystem>(&env_, config);
    EXPECT_TRUE(system_->CreateBusinessNamespace("shop").ok());
    EXPECT_TRUE(system_->CreatePvc("shop", "sales-db", 4 << 20).ok());
    EXPECT_TRUE(system_->CreatePvc("shop", "stock-db", 4 << 20).ok());
    env_.RunFor(Milliseconds(10));
  }

  sim::SimEnvironment env_;
  std::unique_ptr<core::DemoSystem> system_;
};

TEST_F(ReplicationControllerTest, ConfiguresFromManuallyCreatedVrg) {
  // The CR route without the namespace operator: a user (or GitOps)
  // creates the VolumeReplicationGroup directly.
  auto pv_handle = [&](const std::string& pvc) {
    auto vol = system_->ResolveMainVolume("shop", pvc);
    EXPECT_TRUE(vol.ok());
    return system_->main_site()->array()->VolumeHandle(*vol);
  };
  Resource vrg;
  vrg.kind = kKindVolumeReplicationGroup;
  vrg.ns = "shop";
  vrg.name = "manual";
  vrg.spec["sourceNamespace"] = "shop";
  Value volumes = Value::MakeArray();
  Value entry = Value::MakeObject();
  entry["handle"] = pv_handle("sales-db");
  entry["pvcName"] = "sales-db";
  entry["capacityBytes"] = 4 << 20;
  volumes.Append(std::move(entry));
  vrg.spec["volumes"] = volumes;
  ASSERT_TRUE(system_->main_site()->api()->Create(std::move(vrg)).ok());
  env_.RunFor(Milliseconds(50));

  auto stored = system_->main_site()->api()->Get(
      kKindVolumeReplicationGroup, "shop", "manual");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->StatusPhase(), "Replicating");
  EXPECT_EQ(system_->replication()->ListPairs().size(), 1u);
}

TEST_F(ReplicationControllerTest, BackupOutageDuringConfigureConverges) {
  // The backup array is down when the user tags the namespace; the
  // controller must keep retrying (resync) and converge once the array
  // returns.
  system_->backup_site()->array()->SetFailed(true);
  ASSERT_TRUE(system_->TagNamespaceForBackup("shop").ok());
  env_.RunFor(Milliseconds(200));
  EXPECT_FALSE(system_->BackupConfigured("shop"));

  system_->backup_site()->array()->SetFailed(false);
  ASSERT_TRUE(system_->WaitForBackupConfigured("shop").ok());
  EXPECT_EQ(system_->replication()->ListPairs().size(), 2u);
}

TEST_F(ReplicationControllerTest, ForeignHandlesAreSkippedNotFatal) {
  Resource vrg;
  vrg.kind = kKindVolumeReplicationGroup;
  vrg.ns = "shop";
  vrg.name = "mixed";
  vrg.spec["sourceNamespace"] = "shop";
  Value volumes = Value::MakeArray();
  Value foreign = Value::MakeObject();
  foreign["handle"] = "OTHER-ARRAY:99";
  foreign["pvcName"] = "alien";
  volumes.Append(std::move(foreign));
  auto vol = system_->ResolveMainVolume("shop", "sales-db");
  ASSERT_TRUE(vol.ok());
  Value ours = Value::MakeObject();
  ours["handle"] = system_->main_site()->array()->VolumeHandle(*vol);
  ours["pvcName"] = "sales-db";
  ours["capacityBytes"] = 4 << 20;
  volumes.Append(std::move(ours));
  vrg.spec["volumes"] = volumes;
  ASSERT_TRUE(system_->main_site()->api()->Create(std::move(vrg)).ok());
  env_.RunFor(Milliseconds(50));

  // The local volume is protected; the foreign one simply skipped.
  EXPECT_EQ(system_->replication()->ListPairs().size(), 1u);
}

TEST_F(ReplicationControllerTest, RetagAfterUntagRebuildsProtection) {
  ASSERT_TRUE(system_->TagNamespaceForBackup("shop").ok());
  ASSERT_TRUE(system_->WaitForBackupConfigured("shop").ok());
  ASSERT_TRUE(system_->UntagNamespace("shop").ok());
  env_.RunFor(Milliseconds(100));
  EXPECT_TRUE(system_->replication()->ListPairs().empty());

  // Protect again: backup volumes are reused, fresh pairs and group.
  ASSERT_TRUE(system_->TagNamespaceForBackup("shop").ok());
  ASSERT_TRUE(system_->WaitForBackupConfigured("shop").ok());
  EXPECT_EQ(system_->replication()->ListPairs().size(), 2u);
  // Data still flows end to end after the rebuild.
  auto vol = system_->ResolveMainVolume("shop", "sales-db");
  ASSERT_TRUE(vol.ok());
  ASSERT_TRUE(system_->main_site()
                  ->array()
                  ->WriteSync(*vol, 0,
                              std::string(block::kDefaultBlockSize, 'r'))
                  .ok());
  env_.RunFor(Milliseconds(50));
  auto backup_vol = system_->ResolveBackupVolume("shop", "sales-db");
  ASSERT_TRUE(backup_vol.ok());
  EXPECT_EQ(system_->backup_site()
                ->array()
                ->GetVolume(*backup_vol)
                ->store()
                .ReadBlock(0),
            std::string(block::kDefaultBlockSize, 'r'));
}

TEST_F(ReplicationControllerTest, StatusCarriesPairTopology) {
  ASSERT_TRUE(system_->TagNamespaceForBackup("shop").ok());
  ASSERT_TRUE(system_->WaitForBackupConfigured("shop").ok());
  auto vrg = system_->main_site()->api()->Get(
      kKindVolumeReplicationGroup, "shop", "vrg-shop");
  ASSERT_TRUE(vrg.ok());
  const Value* pairs = vrg->status.Find("pairs");
  ASSERT_NE(pairs, nullptr);
  EXPECT_EQ(pairs->AsObject().size(), 2u);
  for (const auto& [handle, rec] : pairs->AsObject()) {
    EXPECT_GT(rec.GetInt("pairId"), 0);
    EXPECT_FALSE(rec.GetString("backupHandle").empty());
    EXPECT_GT(rec.GetInt("group"), 0);
  }
  const Value* groups = vrg->status.Find("groups");
  ASSERT_NE(groups, nullptr);
  EXPECT_EQ(groups->AsArray().size(), 1u);  // One shared CG.
}

}  // namespace
}  // namespace zerobak::csi
