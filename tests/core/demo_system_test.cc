// End-to-end integration tests: the three demonstration steps of Section
// IV (backup configuration, snapshot development, data analytics) plus a
// disaster-recovery drill, run against the fully wired two-site system.
#include "core/demo_system.h"

#include <gtest/gtest.h>

#include "db/minidb.h"
#include "storage/array_device.h"
#include "workload/analytics.h"
#include "workload/ecommerce.h"
#include "workload/invariants.h"

namespace zerobak::core {
namespace {

class DemoSystemTest : public ::testing::Test {
 protected:
  DemoSystemTest() {
    DemoSystemConfig config;
    // Functional tests: zero media latency so DB writes ack inline.
    config.main_array.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
    config.backup_array.media = block::DeviceLatencyModel{0, 0, 0, 0, 2};
    config.link.base_latency = Milliseconds(5);
    config.link.jitter = 0;
    system_ = std::make_unique<DemoSystem>(&env_, config);
  }

  // Deploys the business process: a namespace with two database PVCs.
  void DeployBusinessProcess() {
    ASSERT_TRUE(system_->CreateBusinessNamespace("shop").ok());
    ASSERT_TRUE(system_->CreatePvc("shop", "sales-db", 8 << 20).ok());
    ASSERT_TRUE(system_->CreatePvc("shop", "stock-db", 8 << 20).ok());
    env_.RunFor(Milliseconds(10));  // Provisioner binds.
  }

  db::DbOptions DbOpts() {
    db::DbOptions opts;
    opts.checkpoint_blocks = 256;
    opts.wal_blocks = 1024;
    return opts;
  }

  // Opens (formatting first) the two databases on the main site.
  void OpenMainDatabases() {
    auto sales_vol = system_->ResolveMainVolume("shop", "sales-db");
    auto stock_vol = system_->ResolveMainVolume("shop", "stock-db");
    ASSERT_TRUE(sales_vol.ok()) << sales_vol.status();
    ASSERT_TRUE(stock_vol.ok()) << stock_vol.status();
    sales_dev_ = std::make_unique<storage::ArrayVolumeDevice>(
        system_->main_site()->array(), *sales_vol);
    stock_dev_ = std::make_unique<storage::ArrayVolumeDevice>(
        system_->main_site()->array(), *stock_vol);
    ASSERT_TRUE(db::MiniDb::Format(sales_dev_.get(), DbOpts()).ok());
    ASSERT_TRUE(db::MiniDb::Format(stock_dev_.get(), DbOpts()).ok());
    auto sales = db::MiniDb::Open(sales_dev_.get(), DbOpts());
    auto stock = db::MiniDb::Open(stock_dev_.get(), DbOpts());
    ASSERT_TRUE(sales.ok() && stock.ok());
    sales_db_ = std::move(sales).value();
    stock_db_ = std::move(stock).value();
    app_ = std::make_unique<workload::EcommerceApp>(sales_db_.get(),
                                                    stock_db_.get());
    ASSERT_TRUE(app_->InitializeCatalog().ok());
  }

  sim::SimEnvironment env_;
  std::unique_ptr<DemoSystem> system_;
  std::unique_ptr<storage::ArrayVolumeDevice> sales_dev_;
  std::unique_ptr<storage::ArrayVolumeDevice> stock_dev_;
  std::unique_ptr<db::MiniDb> sales_db_;
  std::unique_ptr<db::MiniDb> stock_db_;
  std::unique_ptr<workload::EcommerceApp> app_;
};

TEST_F(DemoSystemTest, ProvisionerBindsBusinessPvcs) {
  DeployBusinessProcess();
  auto pvc = system_->main_site()->api()->Get(
      container::kKindPersistentVolumeClaim, "shop", "sales-db");
  ASSERT_TRUE(pvc.ok());
  EXPECT_EQ(pvc->StatusPhase(), "Bound");
  EXPECT_TRUE(system_->ResolveMainVolume("shop", "sales-db").ok());
}

TEST_F(DemoSystemTest, BackupConfigurationStep) {
  DeployBusinessProcess();
  // Before tagging: no PVs in the backup site (Fig. 3).
  EXPECT_EQ(system_->backup_site()
                ->api()
                ->List(container::kKindPersistentVolume)
                .size(),
            0u);
  EXPECT_FALSE(system_->BackupConfigured("shop"));

  // The single user action.
  ASSERT_TRUE(system_->TagNamespaceForBackup("shop").ok());
  ASSERT_TRUE(system_->WaitForBackupConfigured("shop").ok());

  // After tagging: PVs and PVCs appear in the backup site (Fig. 4).
  EXPECT_EQ(system_->backup_site()
                ->api()
                ->List(container::kKindPersistentVolume)
                .size(),
            2u);
  auto backup_pvcs = system_->backup_site()->api()->List(
      container::kKindPersistentVolumeClaim, "shop");
  EXPECT_EQ(backup_pvcs.size(), 2u);
  for (const auto& pvc : backup_pvcs) {
    EXPECT_EQ(pvc.StatusPhase(), "Bound");
  }

  // One consistency group with two pairs exists on the arrays.
  auto group = system_->ReplicationGroupOf("shop");
  ASSERT_TRUE(group.ok());
  EXPECT_EQ(system_->replication()->ListGroupPairs(*group).size(), 2u);
}

TEST_F(DemoSystemTest, ReplicationConvergesUnderLoad) {
  DeployBusinessProcess();
  OpenMainDatabases();
  ASSERT_TRUE(system_->TagNamespaceForBackup("shop").ok());
  ASSERT_TRUE(system_->WaitForBackupConfigured("shop").ok());

  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(app_->PlaceOrder().ok());
    env_.RunFor(Microseconds(200));
  }
  env_.RunFor(Milliseconds(100));  // Drain the journal.

  // The backup volumes are byte-identical to the main volumes.
  auto main_sales = system_->ResolveMainVolume("shop", "sales-db");
  auto backup_sales = system_->ResolveBackupVolume("shop", "sales-db");
  ASSERT_TRUE(main_sales.ok() && backup_sales.ok());
  EXPECT_TRUE(system_->main_site()
                  ->array()
                  ->GetVolume(*main_sales)
                  ->ContentEquals(*system_->backup_site()->array()->GetVolume(
                      *backup_sales)));

  // A database opened on the backup volume recovers all orders.
  storage::ArrayVolumeDevice backup_dev(system_->backup_site()->array(),
                                        *backup_sales);
  db::DbOptions ro = DbOpts();
  ro.read_only = true;
  auto recovered = db::MiniDb::Open(&backup_dev, ro);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)->RowCount(workload::kOrderTable), 50u);
}

TEST_F(DemoSystemTest, SnapshotDevelopmentStep) {
  DeployBusinessProcess();
  OpenMainDatabases();
  ASSERT_TRUE(system_->TagNamespaceForBackup("shop").ok());
  ASSERT_TRUE(system_->WaitForBackupConfigured("shop").ok());
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(app_->PlaceOrder().ok());
  env_.RunFor(Milliseconds(100));

  ASSERT_TRUE(system_->CreateSnapshotGroupCr("shop", "analytics").ok());
  ASSERT_TRUE(system_->WaitForSnapshotGroup("shop", "analytics").ok());

  // VolumeSnapshot objects exist for both databases (Fig. 5).
  EXPECT_EQ(system_->backup_site()
                ->api()
                ->List(container::kKindVolumeSnapshot, "shop")
                .size(),
            2u);
  EXPECT_TRUE(
      system_->ResolveSnapshot("shop", "analytics", "sales-db").ok());
  EXPECT_TRUE(
      system_->ResolveSnapshot("shop", "analytics", "stock-db").ok());
}

TEST_F(DemoSystemTest, AnalyticsOnSnapshotWhileReplicationContinues) {
  DeployBusinessProcess();
  OpenMainDatabases();
  ASSERT_TRUE(system_->TagNamespaceForBackup("shop").ok());
  ASSERT_TRUE(system_->WaitForBackupConfigured("shop").ok());
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(app_->PlaceOrder().ok());
  env_.RunFor(Milliseconds(100));

  ASSERT_TRUE(system_->CreateSnapshotGroupCr("shop", "analytics").ok());
  ASSERT_TRUE(system_->WaitForSnapshotGroup("shop", "analytics").ok());
  auto sales_snap = system_->ResolveSnapshot("shop", "analytics",
                                             "sales-db");
  auto stock_snap = system_->ResolveSnapshot("shop", "analytics",
                                             "stock-db");
  ASSERT_TRUE(sales_snap.ok() && stock_snap.ok());

  // Business keeps running while analytics reads the snapshot.
  for (int i = 0; i < 25; ++i) ASSERT_TRUE(app_->PlaceOrder().ok());
  env_.RunFor(Milliseconds(100));

  auto sales_ro = db::MiniDb::Open(*sales_snap, DbOpts());
  auto stock_ro = db::MiniDb::Open(*stock_snap, DbOpts());
  ASSERT_TRUE(sales_ro.ok() && stock_ro.ok());

  // The snapshot froze at 30 orders; the new 25 are invisible to it.
  auto summary = workload::SummarizeSales(sales_ro->get());
  EXPECT_EQ(summary.order_count, 30u);
  EXPECT_GT(summary.revenue_cents, 0);

  // Cross-database consistency of the snapshot group (Fig. 6 relies on
  // it): every order has its stock movement.
  auto report =
      workload::CheckConsistency(sales_ro->get(), stock_ro->get());
  EXPECT_FALSE(report.collapsed()) << report.ToString();
  EXPECT_TRUE(report.internally_consistent()) << report.ToString();

  // Replication kept flowing during the scan: the backup volume itself
  // contains all 55 orders.
  auto backup_sales = system_->ResolveBackupVolume("shop", "sales-db");
  storage::ArrayVolumeDevice backup_dev(system_->backup_site()->array(),
                                        *backup_sales);
  db::DbOptions ro = DbOpts();
  ro.read_only = true;
  auto live = db::MiniDb::Open(&backup_dev, ro);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ((*live)->RowCount(workload::kOrderTable), 55u);
}

TEST_F(DemoSystemTest, DisasterRecoveryDrill) {
  DeployBusinessProcess();
  OpenMainDatabases();
  ASSERT_TRUE(system_->TagNamespaceForBackup("shop").ok());
  ASSERT_TRUE(system_->WaitForBackupConfigured("shop").ok());

  // 40 orders fully replicated, then 10 more that may be in flight.
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(app_->PlaceOrder().ok());
  env_.RunFor(Milliseconds(100));
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(app_->PlaceOrder().ok());

  system_->FailMainSite();
  auto report = system_->Failover("shop");
  ASSERT_TRUE(report.ok()) << report.status();

  // Open the promoted backup volumes and run recovery.
  auto sales_vol = system_->ResolveBackupVolume("shop", "sales-db");
  auto stock_vol = system_->ResolveBackupVolume("shop", "stock-db");
  ASSERT_TRUE(sales_vol.ok() && stock_vol.ok());
  storage::ArrayVolumeDevice sales_dev(system_->backup_site()->array(),
                                       *sales_vol);
  storage::ArrayVolumeDevice stock_dev(system_->backup_site()->array(),
                                       *stock_vol);
  auto sales = db::MiniDb::Open(&sales_dev, DbOpts());
  auto stock = db::MiniDb::Open(&stock_dev, DbOpts());
  ASSERT_TRUE(sales.ok() && stock.ok());

  // Bounded loss: at least the 40 drained orders survive, at most 50.
  const size_t orders = (*sales)->RowCount(workload::kOrderTable);
  EXPECT_GE(orders, 40u);
  EXPECT_LE(orders, 50u);

  // And — the paper's core claim — the recovered state is consistent:
  // no sales order without its stock movement.
  auto consistency =
      workload::CheckConsistency(sales->get(), stock->get());
  EXPECT_FALSE(consistency.collapsed()) << consistency.ToString();
  EXPECT_TRUE(consistency.internally_consistent())
      << consistency.ToString();

  // The business can resume on the backup site: volumes are writable.
  workload::EcommerceApp resumed(sales->get(), stock->get());
  EXPECT_TRUE(resumed.InitializeCatalog().ok());
}

TEST_F(DemoSystemTest, UntaggingTearsDownReplication) {
  DeployBusinessProcess();
  ASSERT_TRUE(system_->TagNamespaceForBackup("shop").ok());
  ASSERT_TRUE(system_->WaitForBackupConfigured("shop").ok());
  EXPECT_EQ(system_->replication()->ListPairs().size(), 2u);

  ASSERT_TRUE(system_->UntagNamespace("shop").ok());
  env_.RunFor(Milliseconds(100));
  EXPECT_TRUE(system_->replication()->ListPairs().empty());
  EXPECT_TRUE(system_->replication()->ListGroups().empty());
}

TEST_F(DemoSystemTest, SecondNamespaceGetsItsOwnGroup) {
  DeployBusinessProcess();
  ASSERT_TRUE(system_->CreateBusinessNamespace("billing").ok());
  ASSERT_TRUE(system_->CreatePvc("billing", "ledger-db", 4 << 20).ok());
  env_.RunFor(Milliseconds(10));

  ASSERT_TRUE(system_->TagNamespaceForBackup("shop").ok());
  ASSERT_TRUE(system_->TagNamespaceForBackup("billing").ok());
  ASSERT_TRUE(system_->WaitForBackupConfigured("shop").ok());
  ASSERT_TRUE(system_->WaitForBackupConfigured("billing").ok());

  auto g1 = system_->ReplicationGroupOf("shop");
  auto g2 = system_->ReplicationGroupOf("billing");
  ASSERT_TRUE(g1.ok() && g2.ok());
  EXPECT_NE(*g1, *g2);
  EXPECT_EQ(system_->replication()->ListGroupPairs(*g1).size(), 2u);
  EXPECT_EQ(system_->replication()->ListGroupPairs(*g2).size(), 1u);
}

}  // namespace
}  // namespace zerobak::core
