#include "core/verify.h"

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "workload/ecommerce.h"

namespace zerobak::core {
namespace {

class VerifyTest : public ::testing::Test {
 protected:
  VerifyTest() {
    DemoSystemConfig config = bench::FunctionalConfig();
    config.link.base_latency = Milliseconds(2);
    system_ = std::make_unique<DemoSystem>(&env_, config);
    bp_ = bench::DeployBusinessProcess(system_.get(), "shop");
    EXPECT_TRUE(system_->TagNamespaceForBackup("shop").ok());
    EXPECT_TRUE(system_->WaitForBackupConfigured("shop").ok());
  }

  void PlaceOrders(int n) {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(bp_.app->PlaceOrder().ok());
      env_.RunFor(Microseconds(100));
    }
    env_.RunFor(Milliseconds(50));  // Drain.
  }

  sim::SimEnvironment env_;
  std::unique_ptr<DemoSystem> system_;
  bench::BusinessProcess bp_;
};

TEST_F(VerifyTest, HealthyBackupPasses) {
  PlaceOrders(40);
  ASSERT_TRUE(system_->CreateSnapshotGroupCr("shop", "check").ok());
  ASSERT_TRUE(system_->WaitForSnapshotGroup("shop", "check").ok());

  auto report = VerifySnapshotGroup(system_.get(), "shop", "check");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->passed()) << report->ToString();
  EXPECT_TRUE(report->databases_recovered);
  EXPECT_EQ(report->orders, 40u);
  EXPECT_EQ(report->stock_movements, 40u);
  EXPECT_NE(report->ToString().find("PASS"), std::string::npos);
}

TEST_F(VerifyTest, MissingGroupIsNotFound) {
  auto report = VerifySnapshotGroup(system_.get(), "shop", "nope");
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
}

TEST_F(VerifyTest, VerificationDoesNotDisturbTheSnapshot) {
  PlaceOrders(10);
  ASSERT_TRUE(system_->CreateSnapshotGroupCr("shop", "check").ok());
  ASSERT_TRUE(system_->WaitForSnapshotGroup("shop", "check").ok());
  auto first = VerifySnapshotGroup(system_.get(), "shop", "check");
  ASSERT_TRUE(first.ok());
  // Verify twice: identical results, and no snapshot-delta writes.
  auto second = VerifySnapshotGroup(system_.get(), "shop", "check");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->orders, second->orders);
  auto snap = system_->ResolveSnapshot("shop", "check", "sales-db");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ((*snap)->delta_blocks(), 0u);
}

TEST_F(VerifyTest, LatestScheduledPicksNewestGeneration) {
  PlaceOrders(5);
  ASSERT_TRUE(system_
                  ->CreateSnapshotSchedule("shop", "nightly",
                                           Milliseconds(40), /*retain=*/3)
                  .ok());
  env_.RunFor(Milliseconds(100));  // g1, g2 fired.
  PlaceOrders(15);                 // 20 orders total before g3+.
  env_.RunFor(Milliseconds(60));

  auto report = VerifyLatestScheduled(system_.get(), "shop", "nightly");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->passed()) << report->ToString();
  // The newest generation saw all 20 orders.
  EXPECT_EQ(report->orders, 20u);
}

TEST_F(VerifyTest, NoScheduledGroupsIsNotFound) {
  auto report = VerifyLatestScheduled(system_.get(), "shop", "ghost");
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
}

TEST_F(VerifyTest, ScheduledVerificationUnderContinuousLoad) {
  ASSERT_TRUE(system_
                  ->CreateSnapshotSchedule("shop", "cont", Milliseconds(20),
                                           /*retain=*/4)
                  .ok());
  // Run business and verify the newest backup repeatedly, while pruning
  // churns old generations underneath.
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(bp_.app->PlaceOrder().ok());
      env_.RunFor(Microseconds(500));
    }
    env_.RunFor(Milliseconds(25));
    auto report = VerifyLatestScheduled(system_.get(), "shop", "cont");
    ASSERT_TRUE(report.ok()) << "round " << round << ": "
                             << report.status();
    EXPECT_TRUE(report->passed())
        << "round " << round << ": " << report->ToString();
  }
}

}  // namespace
}  // namespace zerobak::core
