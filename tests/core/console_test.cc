#include "core/console.h"

#include <sstream>

#include <gtest/gtest.h>

#include "bench/bench_util.h"

namespace zerobak::core {
namespace {

class ConsoleTest : public ::testing::Test {
 protected:
  ConsoleTest() {
    DemoSystemConfig config = bench::FunctionalConfig();
    config.link.base_latency = Milliseconds(2);
    system_ = std::make_unique<DemoSystem>(&env_, config);
    console_ = std::make_unique<Console>(system_.get(), &out_);
  }

  std::string Output() { return out_.str(); }

  sim::SimEnvironment env_;
  std::unique_ptr<DemoSystem> system_;
  std::ostringstream out_;
  std::unique_ptr<Console> console_;
};

TEST_F(ConsoleTest, TokenizeSplitsOnWhitespace) {
  EXPECT_EQ(Console::Tokenize("a  b\tc"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(Console::Tokenize("").empty());
  EXPECT_TRUE(Console::Tokenize("   ").empty());
}

TEST_F(ConsoleTest, UnknownCommandRejected) {
  EXPECT_EQ(console_->Execute("frobnicate").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ConsoleTest, MissingArgumentsRejected) {
  EXPECT_EQ(console_->Execute("deploy").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(console_->Execute("order shop").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(console_->Execute("run -5").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ConsoleTest, HelpListsCommands) {
  ASSERT_TRUE(console_->Execute("help").ok());
  EXPECT_NE(Output().find("failover"), std::string::npos);
  EXPECT_NE(Output().find("snapshot"), std::string::npos);
}

TEST_F(ConsoleTest, DeployOrderStatusFlow) {
  ASSERT_TRUE(console_->Execute("deploy shop").ok());
  EXPECT_EQ(console_->Execute("deploy shop").code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(console_->Execute("order shop 10").ok());
  EXPECT_EQ(console_->Execute("order ghost 1").code(),
            StatusCode::kNotFound);

  ASSERT_TRUE(console_->Execute("status shop").ok());
  EXPECT_NE(Output().find("not protected"), std::string::npos);

  ASSERT_TRUE(console_->Execute("tag shop").ok());
  ASSERT_TRUE(console_->Execute("run 100").ok());
  out_.str("");
  ASSERT_TRUE(console_->Execute("status shop").ok());
  EXPECT_NE(Output().find("applied="), std::string::npos);
  EXPECT_NE(Output().find("[PAIR]"), std::string::npos);
}

TEST_F(ConsoleTest, FullDemoScript) {
  const char* script = R"(
# The ICDE demo, as a script.
deploy shop
order shop 20
tag shop
run 100
snapshot shop analytics
analytics shop analytics
verify shop analytics
check shop
)";
  Status st = console_->ExecuteScript(script);
  EXPECT_TRUE(st.ok()) << st << "\noutput:\n" << Output();
  EXPECT_NE(Output().find("PASS"), std::string::npos);
  EXPECT_NE(Output().find("consistent"), std::string::npos);
}

TEST_F(ConsoleTest, DisasterRecoveryScript) {
  const char* script = R"(
deploy shop
tag shop
order shop 30
run 100
fail-main
failover shop
check shop
repair-main
failback shop
run 100
status shop
)";
  Status st = console_->ExecuteScript(script);
  EXPECT_TRUE(st.ok()) << st << "\noutput:\n" << Output();
  EXPECT_NE(Output().find("failover complete"), std::string::npos);
  EXPECT_NE(Output().find("failback complete"), std::string::npos);
}

TEST_F(ConsoleTest, ScheduleAndVerifyLatest) {
  ASSERT_TRUE(console_->ExecuteScript(R"(
deploy shop
tag shop
order shop 10
run 50
schedule shop nightly 40 2
run 200
verify-latest shop nightly
)").ok()) << Output();
  EXPECT_NE(Output().find("PASS"), std::string::npos);
}

TEST_F(ConsoleTest, ScriptStopsAtFirstFailure) {
  Status st = console_->ExecuteScript(R"(
deploy shop
bogus-command
order shop 5
)");
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // The order command never ran.
  EXPECT_EQ(Output().find("5 orders"), std::string::npos);
}

TEST_F(ConsoleTest, CommentsAndBlankLinesIgnored) {
  ASSERT_TRUE(console_->ExecuteScript("\n  # only comments\n\n").ok());
  EXPECT_EQ(console_->commands_executed(), 0u);
}

}  // namespace
}  // namespace zerobak::core
