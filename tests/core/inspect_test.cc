#include "core/inspect.h"

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "core/console.h"

namespace zerobak::core {
namespace {

TEST(InspectTest, DescribesFullyConfiguredSystem) {
  sim::SimEnvironment env;
  DemoSystemConfig config = bench::FunctionalConfig();
  config.link.base_latency = Milliseconds(2);
  DemoSystem system(&env, config);
  bench::BusinessProcess bp =
      bench::DeployBusinessProcess(&system, "shop");
  ASSERT_TRUE(system.TagNamespaceForBackup("shop").ok());
  ASSERT_TRUE(system.WaitForBackupConfigured("shop").ok());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(bp.app->PlaceOrder().ok());
  env.RunFor(Milliseconds(50));
  ASSERT_TRUE(system.CreateSnapshotGroupCr("shop", "g").ok());
  ASSERT_TRUE(system.WaitForSnapshotGroup("shop", "g").ok());

  const std::string report = DescribeSystem(&system);
  // Sites, arrays and volumes appear.
  EXPECT_NE(report.find("site main"), std::string::npos);
  EXPECT_NE(report.find("site backup"), std::string::npos);
  EXPECT_NE(report.find("pvc-shop-sales-db"), std::string::npos);
  EXPECT_NE(report.find("[replicated]"), std::string::npos);
  // Replication health.
  EXPECT_NE(report.find("replication: 1 groups, 2 pairs"),
            std::string::npos);
  EXPECT_NE(report.find("[PAIR]"), std::string::npos);
  // Snapshots and links.
  EXPECT_NE(report.find("snapshots: 2 in 1 groups"), std::string::npos);
  EXPECT_NE(report.find("links: main->backup up"), std::string::npos);
  // Cluster object counts.
  EXPECT_NE(report.find("VolumeReplicationGroup"), std::string::npos);
}

TEST(InspectTest, ShowsFailureStates) {
  sim::SimEnvironment env;
  DemoSystemConfig config = bench::FunctionalConfig();
  DemoSystem system(&env, config);
  bench::BusinessProcess bp =
      bench::DeployBusinessProcess(&system, "shop");
  ASSERT_TRUE(system.TagNamespaceForBackup("shop").ok());
  ASSERT_TRUE(system.WaitForBackupConfigured("shop").ok());
  system.FailMainSite();
  ASSERT_TRUE(system.Failover("shop").ok());

  const std::string report = DescribeSystem(&system);
  EXPECT_NE(report.find("[FAILED]"), std::string::npos);
  EXPECT_NE(report.find("DOWN"), std::string::npos);
  EXPECT_NE(report.find("[SSWS]"), std::string::npos);
}

TEST(InspectTest, ConsoleInspectCommand) {
  sim::SimEnvironment env;
  DemoSystem system(&env, bench::FunctionalConfig());
  std::ostringstream out;
  Console console(&system, &out);
  ASSERT_TRUE(console.Execute("inspect").ok());
  EXPECT_NE(out.str().find("demo system"), std::string::npos);
}

}  // namespace
}  // namespace zerobak::core
