// Point-in-time restore: the ransomware scenario. Logical damage on the
// main site replicates faithfully to the backup, so the last good
// scheduled snapshot — not the live replica — is what saves the business.
#include "core/restore.h"

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "core/verify.h"
#include "workload/ecommerce.h"

namespace zerobak::core {
namespace {

class RestoreTest : public ::testing::Test {
 protected:
  RestoreTest() {
    DemoSystemConfig config = bench::FunctionalConfig();
    config.link.base_latency = Milliseconds(2);
    system_ = std::make_unique<DemoSystem>(&env_, config);
    bp_ = bench::DeployBusinessProcess(system_.get(), "shop");
    EXPECT_TRUE(system_->TagNamespaceForBackup("shop").ok());
    EXPECT_TRUE(system_->WaitForBackupConfigured("shop").ok());
  }

  void PlaceOrders(int n) {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(bp_.app->PlaceOrder().ok());
      env_.RunFor(Microseconds(100));
    }
    env_.RunFor(Milliseconds(50));
  }

  // Ransomware: scribbles over the main sales volume, including the
  // superblock — and the damage replicates to the backup.
  void Ransomware() {
    auto vol = system_->ResolveMainVolume("shop", "sales-db");
    ASSERT_TRUE(vol.ok());
    const std::string garbage(block::kDefaultBlockSize, '!');
    for (block::Lba lba = 0; lba < 8; ++lba) {
      ASSERT_TRUE(system_->main_site()
                      ->array()
                      ->WriteSync(*vol, lba, garbage)
                      .ok());
    }
    env_.RunFor(Milliseconds(50));  // The damage replicates too.
  }

  sim::SimEnvironment env_;
  std::unique_ptr<DemoSystem> system_;
  bench::BusinessProcess bp_;
};

TEST_F(RestoreTest, RequiresFailoverFirst) {
  PlaceOrders(10);
  ASSERT_TRUE(system_->CreateSnapshotGroupCr("shop", "good").ok());
  ASSERT_TRUE(system_->WaitForSnapshotGroup("shop", "good").ok());
  auto report = RestoreNamespaceFromGroup(system_.get(), "shop", "good");
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(RestoreTest, RansomwareRecoveryViaSnapshotRewind) {
  PlaceOrders(30);
  // The last good backup.
  ASSERT_TRUE(system_->CreateSnapshotGroupCr("shop", "good").ok());
  ASSERT_TRUE(system_->WaitForSnapshotGroup("shop", "good").ok());

  PlaceOrders(10);  // A few more legitimate orders...
  Ransomware();     // ...then the attack, which replicates.

  system_->FailMainSite();
  ASSERT_TRUE(system_->Failover("shop").ok());

  // The live replica is damaged: the database cannot open.
  bench::RecoveryOutcome broken =
      bench::RecoverOnBackup(system_.get(), "shop");
  EXPECT_FALSE(broken.recovered);

  // Rewind to the last good snapshot group.
  auto report = RestoreNamespaceFromGroup(system_.get(), "shop", "good");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->volumes_restored, 2u);
  EXPECT_GT(report->blocks_rewritten, 0u);

  // The business state at snapshot time is back.
  bench::RecoveryOutcome outcome =
      bench::RecoverOnBackup(system_.get(), "shop");
  ASSERT_TRUE(outcome.recovered);
  EXPECT_EQ(outcome.orders, 30u);
  EXPECT_FALSE(outcome.report.collapsed()) << outcome.report.ToString();
}

TEST_F(RestoreTest, MissingGroupIsNotFound) {
  PlaceOrders(5);
  system_->FailMainSite();
  ASSERT_TRUE(system_->Failover("shop").ok());
  auto report = RestoreNamespaceFromGroup(system_.get(), "shop", "ghost");
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
}

TEST_F(RestoreTest, RestoreIsIdempotent) {
  PlaceOrders(10);
  ASSERT_TRUE(system_->CreateSnapshotGroupCr("shop", "good").ok());
  ASSERT_TRUE(system_->WaitForSnapshotGroup("shop", "good").ok());
  PlaceOrders(10);
  system_->FailMainSite();
  ASSERT_TRUE(system_->Failover("shop").ok());

  auto first = RestoreNamespaceFromGroup(system_.get(), "shop", "good");
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->blocks_rewritten, 0u);
  auto second = RestoreNamespaceFromGroup(system_.get(), "shop", "good");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->blocks_rewritten, 0u);  // Already at the image.
  bench::RecoveryOutcome outcome =
      bench::RecoverOnBackup(system_.get(), "shop");
  ASSERT_TRUE(outcome.recovered);
  EXPECT_EQ(outcome.orders, 10u);
}

}  // namespace
}  // namespace zerobak::core
