// ThreadPool correctness: full index coverage, determinism of results
// across lane counts, inline fallbacks, nested sections, and the join
// barrier's memory visibility. These tests are the primary TSan target
// for the compute layer (see the tsan preset in CMakePresets.json).
#include "exec/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace zerobak::exec {
namespace {

// Fills out[i] = f(i) through the pool and returns the vector; the
// caller compares against a serial reference to prove both coverage
// (every index written) and result determinism (values independent of
// which lane ran which block).
std::vector<uint64_t> FillThroughPool(ThreadPool* pool, size_t n,
                                      size_t grain) {
  std::vector<uint64_t> out(n, ~0ull);
  auto body = [&out](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out[i] = i * 2654435761u + 12345;
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(n, grain, body);
  } else {
    body(0, n);
  }
  return out;
}

TEST(ThreadPoolTest, LaneCountsNormalize) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.lanes(), 1u);  // 0 means "inline", i.e. one lane.
  ThreadPool four(4);
  EXPECT_EQ(four.lanes(), 4u);
  EXPECT_GE(ThreadPool::HardwareLanes(), 1u);
}

TEST(ThreadPoolTest, SingleLaneRunsInline) {
  ThreadPool pool(1);
  const auto got = FillThroughPool(&pool, 1000, 64);
  EXPECT_EQ(got, FillThroughPool(nullptr, 1000, 64));
  const ThreadPool::Stats s = pool.stats();
  EXPECT_EQ(s.sections, 0u);         // Never dispatched to the queues.
  EXPECT_EQ(s.inline_sections, 1u);  // No workers exist to offload to.
  EXPECT_EQ(s.steals, 0u);
}

TEST(ThreadPoolTest, ResultsIdenticalAcrossLaneCounts) {
  const auto want = FillThroughPool(nullptr, 100000, 1);
  for (unsigned lanes : {2u, 3u, 4u, 8u}) {
    ThreadPool pool(lanes);
    for (size_t grain : {size_t{1}, size_t{7}, size_t{1024}}) {
      EXPECT_EQ(FillThroughPool(&pool, 100000, grain), want)
          << "lanes=" << lanes << " grain=" << grain;
    }
  }
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 50000;
  std::vector<std::atomic<uint32_t>> hits(kN);
  pool.ParallelFor(kN, 13, [&hits](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1u) << "index " << i;
  }
}

TEST(ThreadPoolTest, EdgeCases) {
  ThreadPool pool(4);
  // n == 0: no body invocation at all.
  pool.ParallelFor(0, 16, [](size_t, size_t) { FAIL() << "body ran"; });
  // n == 1 and n <= grain: a single block runs inline on the caller.
  EXPECT_EQ(FillThroughPool(&pool, 1, 16), FillThroughPool(nullptr, 1, 16));
  EXPECT_EQ(FillThroughPool(&pool, 10, 16),
            FillThroughPool(nullptr, 10, 16));
  // grain == 0 is treated as 1.
  EXPECT_EQ(FillThroughPool(&pool, 100, 0), FillThroughPool(nullptr, 100, 0));
}

TEST(ThreadPoolTest, JoinBarrierPublishesWorkerWrites) {
  // After ParallelFor returns, plain (non-atomic) reads of everything the
  // workers wrote must be safe — the engine depends on this to consume
  // per-chunk results on the sim thread. Run many small sections so TSan
  // gets repeated acquire/release pairs to check.
  ThreadPool pool(4);
  std::vector<uint64_t> buf(4096);
  uint64_t expect = 0;
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(buf.size(), 64, [&buf, round](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) buf[i] = i + round;
    });
    const uint64_t sum = std::accumulate(buf.begin(), buf.end(), 0ull);
    expect = buf.size() * (buf.size() - 1) / 2 +
             static_cast<uint64_t>(round) * buf.size();
    ASSERT_EQ(sum, expect) << "round " << round;
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<uint64_t> out(64 * 64, 0);
  pool.ParallelFor(64, 1, [&](size_t begin, size_t end) {
    for (size_t row = begin; row < end; ++row) {
      // A nested section from a worker (or the caller mid-section) must
      // degrade to an inline loop instead of deadlocking on the queues.
      pool.ParallelFor(64, 8, [&out, row](size_t b, size_t e) {
        for (size_t col = b; col < e; ++col) {
          out[row * 64 + col] = row * 1000 + col;
        }
      });
    }
  });
  for (size_t row = 0; row < 64; ++row) {
    for (size_t col = 0; col < 64; ++col) {
      ASSERT_EQ(out[row * 64 + col], row * 1000 + col);
    }
  }
}

TEST(ThreadPoolTest, StatsAccumulate) {
  ThreadPool pool(2);
  const ThreadPool::Stats before = pool.stats();
  for (int i = 0; i < 10; ++i) {
    pool.ParallelFor(1000, 10, [](size_t, size_t) {});
  }
  const ThreadPool::Stats after = pool.stats();
  EXPECT_EQ(after.sections - before.sections, 10u);
  // 1000 indices at grain 10 = 100 blocks per section.
  EXPECT_EQ(after.tasks - before.tasks, 1000u);
  EXPECT_GT(after.max_queue_depth, 0u);
}

TEST(ThreadPoolTest, ManySectionsStress) {
  // Rapid-fire tiny sections interleaved with large ones: exercises the
  // wake/sleep path and work stealing under contention (TSan coverage).
  ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 300; ++round) {
    const size_t n = (round % 7 == 0) ? 10000 : 17;
    pool.ParallelFor(n, 3, [&total](size_t b, size_t e) {
      total.fetch_add(e - b, std::memory_order_relaxed);
    });
  }
  uint64_t want = 0;
  for (int round = 0; round < 300; ++round) {
    want += (round % 7 == 0) ? 10000 : 17;
  }
  EXPECT_EQ(total.load(), want);
}

}  // namespace
}  // namespace zerobak::exec
