// Tests for the zero-copy journal data path: PayloadBuffer sharing
// semantics, PeekViews pointer stability, and the ScanFrom cursor.
#include <gtest/gtest.h>

#include "journal/journal.h"

namespace zerobak::journal {
namespace {

JournalRecord Rec(uint64_t lba, PayloadBuffer payload) {
  JournalRecord r;
  r.volume_id = 1;
  r.lba = lba;
  r.block_count = 1;
  r.payload = std::move(payload);
  return r;
}

TEST(PayloadBufferTest, CopyAllocatesOnceAndViewsShare) {
  const uint64_t before = PayloadBuffer::TotalAllocations();
  PayloadBuffer buf = PayloadBuffer::Copy("hello world");
  EXPECT_EQ(PayloadBuffer::TotalAllocations(), before + 1);
  EXPECT_EQ(buf.view(), "hello world");
  EXPECT_EQ(buf.size(), 11u);
  EXPECT_EQ(buf.use_count(), 1);

  PayloadBuffer copy = buf;  // Refcount bump, no allocation.
  EXPECT_EQ(PayloadBuffer::TotalAllocations(), before + 1);
  EXPECT_EQ(buf.use_count(), 2);
  EXPECT_EQ(copy.view().data(), buf.view().data());  // Same backing bytes.
}

TEST(PayloadBufferTest, WrapTakesOwnershipWithoutCopy) {
  std::string data(64, 'x');
  const char* raw = data.data();
  PayloadBuffer buf = PayloadBuffer::Wrap(std::move(data));
  EXPECT_EQ(buf.view().data(), raw);
  EXPECT_EQ(buf.size(), 64u);
}

TEST(PayloadBufferTest, SliceSharesBacking) {
  const uint64_t before = PayloadBuffer::TotalAllocations();
  PayloadBuffer buf = PayloadBuffer::Copy("abcdefgh");
  PayloadBuffer mid = buf.Slice(2, 4);
  EXPECT_EQ(mid.view(), "cdef");
  EXPECT_EQ(buf.use_count(), 2);
  EXPECT_EQ(PayloadBuffer::TotalAllocations(), before + 1);
  // A slice of a slice still points into the original buffer.
  EXPECT_EQ(mid.Slice(1, 2).view(), "de");
}

TEST(PayloadBufferTest, EmptyBufferIsSafe) {
  PayloadBuffer buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.view(), std::string_view());
  EXPECT_EQ(buf.use_count(), 0);
}

// The core zero-copy lifetime rule: trimming the primary journal must not
// invalidate a shipped batch that shares the payload buffers.
TEST(PayloadBufferTest, JournalTrimDoesNotInvalidateInFlightBatch) {
  JournalVolume j(1 << 20);
  PayloadBuffer payload = PayloadBuffer::Copy(std::string(4096, 'p'));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(j.Append(Rec(i, payload)).ok());
  }
  // Journal records + our local handle all share one backing buffer.
  EXPECT_EQ(payload.use_count(), 9);

  // "Ship" a batch: copy the records (headers), sharing the payloads.
  std::vector<const JournalRecord*> views;
  ASSERT_EQ(j.PeekViews(0, UINT64_MAX, &views), 8u);
  std::vector<JournalRecord> batch;
  for (const JournalRecord* rec : views) batch.push_back(*rec);
  EXPECT_EQ(payload.use_count(), 17);

  // Trim everything from the journal; the batch keeps the bytes alive.
  ASSERT_TRUE(j.TrimThrough(8).ok());
  EXPECT_EQ(j.record_count(), 0u);
  EXPECT_EQ(payload.use_count(), 9);
  for (const JournalRecord& rec : batch) {
    EXPECT_EQ(rec.data(), std::string_view(payload.view()));
  }
}

TEST(PayloadBufferTest, LastViewDropFreesBacking) {
  PayloadBuffer outer;
  {
    PayloadBuffer inner = PayloadBuffer::Copy("data");
    outer = inner.Slice(0, 4);
    EXPECT_EQ(outer.use_count(), 2);
  }
  EXPECT_EQ(outer.use_count(), 1);
  EXPECT_EQ(outer.view(), "data");
}

TEST(PeekViewsTest, PointersStayValidAcrossAppends) {
  JournalVolume j(1 << 20);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        j.Append(Rec(i, PayloadBuffer::Copy(std::string(128, 'a')))).ok());
  }
  std::vector<const JournalRecord*> early;
  ASSERT_EQ(j.PeekViews(0, UINT64_MAX, &early), 4u);

  // Deque-backed store: appending never reallocates existing records.
  for (int i = 4; i < 2048; ++i) {
    ASSERT_TRUE(
        j.Append(Rec(i, PayloadBuffer::Copy(std::string(128, 'b')))).ok());
  }
  for (size_t i = 0; i < early.size(); ++i) {
    EXPECT_EQ(early[i]->sequence, i + 1);
    EXPECT_EQ(early[i]->lba, i);
    EXPECT_EQ(early[i]->data(), std::string(128, 'a'));
  }
}

TEST(PeekViewsTest, TrimAndResetInvalidateOnlyTrimmedRange) {
  JournalVolume j(1 << 20);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(j.Append(Rec(i, PayloadBuffer::Copy("x"))).ok());
  }
  ASSERT_TRUE(j.TrimThrough(4).ok());
  // Views of the surviving range are re-obtainable and consistent.
  std::vector<const JournalRecord*> batch;
  ASSERT_EQ(j.PeekViews(4, UINT64_MAX, &batch), 6u);
  EXPECT_EQ(batch.front()->sequence, 5u);
  EXPECT_EQ(batch.front(), j.Find(5));
  // After Reset nothing is peekable.
  j.Reset();
  EXPECT_EQ(j.PeekViews(0, UINT64_MAX, &batch), 0u);
}

TEST(ScanFromTest, CursorSweepsLiveRecordsInOrder) {
  JournalVolume j(1 << 20);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(j.Append(Rec(100 + i, PayloadBuffer::Copy("d"))).ok());
  }
  ASSERT_TRUE(j.TrimThrough(2).ok());

  JournalVolume::Cursor cursor = j.ScanFrom(3);
  for (SequenceNumber seq = 3; seq <= 6; ++seq) {
    const JournalRecord* rec = cursor.Next();
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->sequence, seq);
    EXPECT_EQ(rec->lba, 100 + seq - 1);
  }
  EXPECT_EQ(cursor.Next(), nullptr);

  // A cursor past the end yields nothing.
  EXPECT_EQ(j.ScanFrom(7).Next(), nullptr);
  // A cursor before the live range clamps to the first live record.
  EXPECT_EQ(j.ScanFrom(1).Next()->sequence, 3u);
}

TEST(ScanFromTest, EmptyJournalYieldsNothing) {
  JournalVolume j(1 << 20);
  EXPECT_EQ(j.ScanFrom(1).Next(), nullptr);
}

}  // namespace
}  // namespace zerobak::journal
