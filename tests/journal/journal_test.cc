#include "journal/journal.h"

#include <gtest/gtest.h>

namespace zerobak::journal {
namespace {

JournalRecord Rec(uint64_t volume, uint64_t lba, size_t data_bytes = 64) {
  JournalRecord r;
  r.volume_id = volume;
  r.lba = lba;
  r.block_count = 1;
  r.payload = PayloadBuffer::Wrap(std::string(data_bytes, 'd'));
  return r;
}

TEST(JournalTest, AppendAssignsDenseSequences) {
  JournalVolume j(1 << 20);
  for (uint64_t i = 1; i <= 5; ++i) {
    auto seq = j.Append(Rec(1, i));
    ASSERT_TRUE(seq.ok());
    EXPECT_EQ(*seq, i);
  }
  EXPECT_EQ(j.written(), 5u);
  EXPECT_EQ(j.record_count(), 5u);
  EXPECT_EQ(j.appends(), 5u);
}

TEST(JournalTest, UsedBytesTracksRecordSizes) {
  JournalVolume j(1 << 20);
  ASSERT_TRUE(j.Append(Rec(1, 0, 100)).ok());
  EXPECT_EQ(j.used_bytes(), JournalRecord::kHeaderSize + 100);
  ASSERT_TRUE(j.Append(Rec(1, 1, 50)).ok());
  EXPECT_EQ(j.used_bytes(), 2 * JournalRecord::kHeaderSize + 150);
  EXPECT_GT(j.utilization(), 0.0);
}

TEST(JournalTest, OverflowRejectsAndCounts) {
  JournalVolume j(200);  // Tiny journal.
  ASSERT_TRUE(j.Append(Rec(1, 0, 64)).ok());  // 112 bytes.
  auto second = j.Append(Rec(1, 1, 64));      // Would exceed 200.
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(j.overflows(), 1u);
  EXPECT_EQ(j.written(), 1u);  // Sequence not consumed by the failure.
}

TEST(JournalTest, PeekViewsReturnsRecordsAfterWatermark) {
  JournalVolume j(1 << 20);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(j.Append(Rec(1, i)).ok());
  std::vector<const JournalRecord*> batch;
  EXPECT_EQ(j.PeekViews(0, UINT64_MAX, &batch), 10u);
  EXPECT_EQ(batch.front()->sequence, 1u);
  EXPECT_EQ(batch.back()->sequence, 10u);

  EXPECT_EQ(j.PeekViews(7, UINT64_MAX, &batch), 3u);
  EXPECT_EQ(batch.front()->sequence, 8u);

  EXPECT_EQ(j.PeekViews(10, UINT64_MAX, &batch), 0u);
}

TEST(JournalTest, PeekViewsRespectsByteBudgetButReturnsAtLeastOne) {
  JournalVolume j(1 << 20);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(j.Append(Rec(1, i, 100)).ok());
  std::vector<const JournalRecord*> batch;
  // Budget fits exactly two records.
  const uint64_t two = 2 * (JournalRecord::kHeaderSize + 100);
  EXPECT_EQ(j.PeekViews(0, two, &batch), 2u);
  // Budget smaller than one record still returns one (progress guarantee).
  EXPECT_EQ(j.PeekViews(0, 1, &batch), 1u);
}

TEST(JournalTest, TrimReleasesSpace) {
  JournalVolume j(1 << 20);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(j.Append(Rec(1, i)).ok());
  const uint64_t before = j.used_bytes();
  ASSERT_TRUE(j.TrimThrough(4).ok());
  EXPECT_EQ(j.applied(), 4u);
  EXPECT_EQ(j.record_count(), 6u);
  EXPECT_LT(j.used_bytes(), before);
  // Peek after trim starts at the right place.
  std::vector<const JournalRecord*> batch;
  EXPECT_EQ(j.PeekViews(4, UINT64_MAX, &batch), 6u);
  EXPECT_EQ(batch.front()->sequence, 5u);
}

TEST(JournalTest, TrimBeyondWrittenRejected) {
  JournalVolume j(1 << 20);
  ASSERT_TRUE(j.Append(Rec(1, 0)).ok());
  EXPECT_EQ(j.TrimThrough(5).code(), StatusCode::kInvalidArgument);
}

TEST(JournalTest, FindLocatesLiveRecords) {
  JournalVolume j(1 << 20);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(j.Append(Rec(1, 100 + i)).ok());
  ASSERT_TRUE(j.TrimThrough(2).ok());
  EXPECT_EQ(j.Find(2), nullptr);   // Trimmed.
  ASSERT_NE(j.Find(3), nullptr);
  EXPECT_EQ(j.Find(3)->lba, 102u);
  EXPECT_EQ(j.Find(6), nullptr);   // Not yet written.
}

TEST(JournalTest, MarkShippedIsMonotonicAndClamped) {
  JournalVolume j(1 << 20);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(j.Append(Rec(1, i)).ok());
  j.MarkShipped(2);
  EXPECT_EQ(j.shipped(), 2u);
  j.MarkShipped(1);  // Never moves backwards.
  EXPECT_EQ(j.shipped(), 2u);
  j.MarkShipped(100);  // Clamped to written.
  EXPECT_EQ(j.shipped(), 3u);
}

TEST(JournalTest, AppendWithSequenceEnforcesContiguity) {
  JournalVolume j(1 << 20);
  JournalRecord r = Rec(1, 0);
  r.sequence = 1;
  ASSERT_TRUE(j.AppendWithSequence(r).ok());
  r.sequence = 3;  // Gap.
  EXPECT_EQ(j.AppendWithSequence(r).code(), StatusCode::kDataLoss);
  r.sequence = 2;
  ASSERT_TRUE(j.AppendWithSequence(r).ok());
  EXPECT_EQ(j.written(), 2u);
}

TEST(JournalTest, FastForwardRequiresEmptyJournal) {
  JournalVolume j(1 << 20);
  ASSERT_TRUE(j.Append(Rec(1, 0)).ok());
  EXPECT_EQ(j.FastForward(10).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(j.TrimThrough(1).ok());
  ASSERT_TRUE(j.FastForward(10).ok());
  EXPECT_EQ(j.written(), 10u);
  EXPECT_EQ(j.applied(), 10u);
  // Next receive must carry sequence 11.
  JournalRecord r = Rec(1, 5);
  r.sequence = 11;
  EXPECT_TRUE(j.AppendWithSequence(r).ok());
}

TEST(JournalTest, FastForwardBackwardsRejected) {
  JournalVolume j(1 << 20);
  ASSERT_TRUE(j.Append(Rec(1, 0)).ok());
  ASSERT_TRUE(j.TrimThrough(1).ok());
  EXPECT_EQ(j.FastForward(0).code(), StatusCode::kInvalidArgument);
}

TEST(JournalTest, ResetClearsEverything) {
  JournalVolume j(1 << 20);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(j.Append(Rec(1, i)).ok());
  j.Reset();
  EXPECT_EQ(j.written(), 0u);
  EXPECT_EQ(j.used_bytes(), 0u);
  EXPECT_EQ(j.record_count(), 0u);
  auto seq = j.Append(Rec(1, 9));
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 1u);  // Sequences restart.
}

TEST(JournalTest, PeakUsageIsSticky) {
  JournalVolume j(1 << 20);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(j.Append(Rec(1, i, 100)).ok());
  const uint64_t peak = j.peak_used_bytes();
  ASSERT_TRUE(j.TrimThrough(8).ok());
  EXPECT_EQ(j.used_bytes(), 0u);
  EXPECT_EQ(j.peak_used_bytes(), peak);
}

TEST(JournalTest, FoldPayloadFreesBytesAndMarksTombstone) {
  JournalVolume j(1 << 20);
  ASSERT_TRUE(j.Append(Rec(1, 0, 100)).ok());
  ASSERT_TRUE(j.Append(Rec(1, 0, 100)).ok());
  const uint64_t before = j.used_bytes();
  EXPECT_EQ(j.FoldPayload(1), 100u);
  EXPECT_EQ(j.used_bytes(), before - 100);
  const JournalRecord* rec = j.Find(1);
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->folded);
  EXPECT_TRUE(rec->payload.empty());
  EXPECT_EQ(rec->EncodedSize(), JournalRecord::kHeaderSize);
  // The sequence space stays dense: the tombstone still occupies seq 1.
  EXPECT_EQ(j.record_count(), 2u);
  EXPECT_EQ(j.folded_records(), 1u);
  EXPECT_EQ(j.folded_bytes(), 100u);
}

TEST(JournalTest, FoldPayloadIsIdempotentAndRangeChecked) {
  JournalVolume j(1 << 20);
  ASSERT_TRUE(j.Append(Rec(1, 0, 100)).ok());
  EXPECT_EQ(j.FoldPayload(1), 100u);
  EXPECT_EQ(j.FoldPayload(1), 0u);  // Already folded.
  EXPECT_EQ(j.FoldPayload(0), 0u);  // kNoSequence.
  EXPECT_EQ(j.FoldPayload(7), 0u);  // Never written.
  ASSERT_TRUE(j.TrimThrough(1).ok());
  EXPECT_EQ(j.FoldPayload(1), 0u);  // Trimmed away.
  EXPECT_EQ(j.folded_records(), 1u);
}

TEST(JournalTest, FoldedCapacityIsReusable) {
  // Two 1000-byte payloads fill the journal; folding one must make room
  // for the next append.
  JournalVolume j(2 * (JournalRecord::kHeaderSize + 1000));
  ASSERT_TRUE(j.Append(Rec(1, 0, 1000)).ok());
  ASSERT_TRUE(j.Append(Rec(1, 0, 1000)).ok());
  EXPECT_FALSE(j.Append(Rec(1, 0, 1000)).ok());
  EXPECT_EQ(j.FoldPayload(1), 1000u);
  // 1000 bytes freed: a header + 900-byte record now fits.
  EXPECT_TRUE(j.Append(Rec(1, 0, 900)).ok());
}

}  // namespace
}  // namespace zerobak::journal
