#include "snapshot/snapshot.h"

#include <gtest/gtest.h>

#include "storage/array.h"

namespace zerobak::snapshot {
namespace {

std::string BlockOf(char c) {
  return std::string(block::kDefaultBlockSize, c);
}

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() : array_(&env_, Config()), snapshots_(&array_) {}

  static storage::ArrayConfig Config() {
    storage::ArrayConfig cfg;
    cfg.serial = "SNAP-T";
    cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
    return cfg;
  }

  storage::VolumeId MakeVolume(const std::string& name,
                               uint64_t blocks = 32) {
    auto id = array_.CreateVolume(name, blocks);
    EXPECT_TRUE(id.ok());
    return *id;
  }

  sim::SimEnvironment env_;
  storage::StorageArray array_;
  SnapshotManager snapshots_;
};

TEST_F(SnapshotTest, SnapshotSeesPointInTimeContent) {
  storage::VolumeId v = MakeVolume("v");
  ASSERT_TRUE(array_.WriteSync(v, 0, BlockOf('a')).ok());
  auto snap = snapshots_.CreateSnapshot(v, "s1");
  ASSERT_TRUE(snap.ok());
  // Overwrite after the snapshot.
  ASSERT_TRUE(array_.WriteSync(v, 0, BlockOf('b')).ok());

  CowSnapshot* s = snapshots_.GetSnapshot(*snap);
  ASSERT_NE(s, nullptr);
  std::string out;
  ASSERT_TRUE(s->Read(0, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('a'));  // Snapshot: old content.
  ASSERT_TRUE(array_.ReadSync(v, 0, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('b'));  // Source: new content.
  EXPECT_EQ(s->preserved_blocks(), 1u);
}

TEST_F(SnapshotTest, UntouchedBlocksReadThrough) {
  storage::VolumeId v = MakeVolume("v");
  ASSERT_TRUE(array_.WriteSync(v, 5, BlockOf('u')).ok());
  auto snap = snapshots_.CreateSnapshot(v, "s1");
  ASSERT_TRUE(snap.ok());
  CowSnapshot* s = snapshots_.GetSnapshot(*snap);
  std::string out;
  ASSERT_TRUE(s->Read(5, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('u'));
  EXPECT_EQ(s->preserved_blocks(), 0u);  // No COW needed yet.
}

TEST_F(SnapshotTest, CreationIsMetadataOnly) {
  storage::VolumeId v = MakeVolume("v", 1 << 16);  // 256 MiB volume.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(array_.WriteSync(v, i, BlockOf('d')).ok());
  }
  auto snap = snapshots_.CreateSnapshot(v, "big");
  ASSERT_TRUE(snap.ok());
  // No blocks were copied at creation.
  EXPECT_EQ(snapshots_.GetSnapshot(*snap)->preserved_blocks(), 0u);
}

TEST_F(SnapshotTest, OnlyFirstOverwritePreserves) {
  storage::VolumeId v = MakeVolume("v");
  ASSERT_TRUE(array_.WriteSync(v, 0, BlockOf('1')).ok());
  auto snap = snapshots_.CreateSnapshot(v, "s");
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(array_.WriteSync(v, 0, BlockOf('2')).ok());
  ASSERT_TRUE(array_.WriteSync(v, 0, BlockOf('3')).ok());
  CowSnapshot* s = snapshots_.GetSnapshot(*snap);
  EXPECT_EQ(s->preserved_blocks(), 1u);
  std::string out;
  ASSERT_TRUE(s->Read(0, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('1'));  // Creation-time content, not '2'.
}

TEST_F(SnapshotTest, MultipleSnapshotsIndependent) {
  storage::VolumeId v = MakeVolume("v");
  ASSERT_TRUE(array_.WriteSync(v, 0, BlockOf('a')).ok());
  auto s1 = snapshots_.CreateSnapshot(v, "s1");
  ASSERT_TRUE(array_.WriteSync(v, 0, BlockOf('b')).ok());
  auto s2 = snapshots_.CreateSnapshot(v, "s2");
  ASSERT_TRUE(array_.WriteSync(v, 0, BlockOf('c')).ok());

  std::string out;
  ASSERT_TRUE(snapshots_.GetSnapshot(*s1)->Read(0, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('a'));
  ASSERT_TRUE(snapshots_.GetSnapshot(*s2)->Read(0, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('b'));
}

TEST_F(SnapshotTest, SnapshotWritesRedirectToDelta) {
  storage::VolumeId v = MakeVolume("v");
  ASSERT_TRUE(array_.WriteSync(v, 0, BlockOf('a')).ok());
  auto snap = snapshots_.CreateSnapshot(v, "s");
  CowSnapshot* s = snapshots_.GetSnapshot(*snap);
  ASSERT_TRUE(s->Write(0, 1, BlockOf('w')).ok());
  EXPECT_EQ(s->delta_blocks(), 1u);

  std::string out;
  ASSERT_TRUE(s->Read(0, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('w'));  // Snapshot sees its own write...
  ASSERT_TRUE(array_.ReadSync(v, 0, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('a'));  // ...the source does not.
}

TEST_F(SnapshotTest, DeleteSnapshotDetachesHook) {
  storage::VolumeId v = MakeVolume("v");
  auto snap = snapshots_.CreateSnapshot(v, "s");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(array_.GetVolume(v)->pre_overwrite_hook_count(), 1u);
  ASSERT_TRUE(snapshots_.DeleteSnapshot(*snap).ok());
  EXPECT_EQ(array_.GetVolume(v)->pre_overwrite_hook_count(), 0u);
  EXPECT_EQ(snapshots_.GetSnapshot(*snap), nullptr);
}

TEST_F(SnapshotTest, VolumeWithSnapshotCannotBeDeleted) {
  storage::VolumeId v = MakeVolume("v");
  auto snap = snapshots_.CreateSnapshot(v, "s");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(array_.DeleteVolume(v).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(snapshots_.DeleteSnapshot(*snap).ok());
  EXPECT_TRUE(array_.DeleteVolume(v).ok());
}

TEST_F(SnapshotTest, GroupIsAtomicAndAllOrNothing) {
  storage::VolumeId a = MakeVolume("a");
  storage::VolumeId b = MakeVolume("b");
  // All-or-nothing: a bogus member fails the whole group.
  auto bad = snapshots_.CreateSnapshotGroup({a, b, 999}, "g");
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(snapshots_.snapshot_count(), 0u);

  auto good = snapshots_.CreateSnapshotGroup({a, b}, "g");
  ASSERT_TRUE(good.ok());
  auto info = snapshots_.GetGroup(*good);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->members.size(), 2u);
  EXPECT_EQ(info->name, "g");
  // Both snapshots exist and carry the same creation instant.
  CowSnapshot* sa = snapshots_.GetSnapshot(info->members[0]);
  CowSnapshot* sb = snapshots_.GetSnapshot(info->members[1]);
  ASSERT_NE(sa, nullptr);
  ASSERT_NE(sb, nullptr);
  EXPECT_EQ(sa->created_at(), sb->created_at());
}

TEST_F(SnapshotTest, EmptyGroupRejected) {
  EXPECT_EQ(snapshots_.CreateSnapshotGroup({}, "g").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, DeleteGroupRemovesMembers) {
  storage::VolumeId a = MakeVolume("a");
  storage::VolumeId b = MakeVolume("b");
  auto g = snapshots_.CreateSnapshotGroup({a, b}, "g");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(snapshots_.snapshot_count(), 2u);
  ASSERT_TRUE(snapshots_.DeleteSnapshotGroup(*g).ok());
  EXPECT_EQ(snapshots_.snapshot_count(), 0u);
  EXPECT_EQ(snapshots_.DeleteSnapshotGroup(*g).code(),
            StatusCode::kNotFound);
}

TEST_F(SnapshotTest, RestoreRollsSourceBack) {
  storage::VolumeId v = MakeVolume("v");
  ASSERT_TRUE(array_.WriteSync(v, 0, BlockOf('a')).ok());
  ASSERT_TRUE(array_.WriteSync(v, 1, BlockOf('b')).ok());
  auto snap = snapshots_.CreateSnapshot(v, "pre-upgrade");
  ASSERT_TRUE(snap.ok());
  // "Ransomware" scribbles over the volume.
  ASSERT_TRUE(array_.WriteSync(v, 0, BlockOf('X')).ok());
  ASSERT_TRUE(array_.WriteSync(v, 1, BlockOf('X')).ok());
  ASSERT_TRUE(array_.WriteSync(v, 2, BlockOf('X')).ok());

  ASSERT_TRUE(snapshots_.RestoreVolume(*snap).ok());
  std::string out;
  ASSERT_TRUE(array_.ReadSync(v, 0, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('a'));
  ASSERT_TRUE(array_.ReadSync(v, 1, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('b'));
  ASSERT_TRUE(array_.ReadSync(v, 2, 1, &out).ok());
  EXPECT_EQ(out, std::string(block::kDefaultBlockSize, '\0'));
}

TEST_F(SnapshotTest, RestoreIncludesSnapshotLocalWrites) {
  storage::VolumeId v = MakeVolume("v");
  ASSERT_TRUE(array_.WriteSync(v, 0, BlockOf('a')).ok());
  auto snap = snapshots_.CreateSnapshot(v, "s");
  CowSnapshot* s = snapshots_.GetSnapshot(*snap);
  ASSERT_TRUE(s->Write(3, 1, BlockOf('d')).ok());
  ASSERT_TRUE(snapshots_.RestoreVolume(*snap).ok());
  std::string out;
  ASSERT_TRUE(array_.ReadSync(v, 3, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('d'));
}

TEST_F(SnapshotTest, ListSnapshotsOfVolumeNewestFirst) {
  storage::VolumeId v = MakeVolume("v");
  storage::VolumeId w = MakeVolume("w");
  auto s1 = snapshots_.CreateSnapshot(v, "s1");
  auto s2 = snapshots_.CreateSnapshot(v, "s2");
  auto sw = snapshots_.CreateSnapshot(w, "sw");
  ASSERT_TRUE(s1.ok() && s2.ok() && sw.ok());
  auto list = snapshots_.ListSnapshotsOfVolume(v);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0], *s2);
  EXPECT_EQ(list[1], *s1);
}

TEST_F(SnapshotTest, FailedArrayRejectsSnapshotCreation) {
  storage::VolumeId v = MakeVolume("v");
  array_.SetFailed(true);
  EXPECT_EQ(snapshots_.CreateSnapshot(v, "s").status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(snapshots_.CreateSnapshotGroup({v}, "g").status().code(),
            StatusCode::kUnavailable);
}

TEST_F(SnapshotTest, SnapshotAsBlockDeviceGeometry) {
  storage::VolumeId v = MakeVolume("v", 48);
  auto snap = snapshots_.CreateSnapshot(v, "s");
  CowSnapshot* s = snapshots_.GetSnapshot(*snap);
  EXPECT_EQ(s->block_count(), 48u);
  EXPECT_EQ(s->block_size(), block::kDefaultBlockSize);
  std::string out;
  EXPECT_EQ(s->Read(48, 1, &out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(s->Write(0, 1, "short").code(), StatusCode::kInvalidArgument);
}

// COW interaction with the slab-backed store: the pre-overwrite hook now
// receives a view into the slab, and the preserved copy must be taken
// before the slab block is rewritten in place — including for blocks in
// chunks the source never touched (zero blocks) and across chunk
// boundaries.
TEST_F(SnapshotTest, CowPreservesSlabContentAcrossChunks) {
  const uint64_t blocks = block::MemVolume::kBlocksPerChunk * 2;
  storage::VolumeId v = MakeVolume("v", blocks);
  const block::Lba far = block::MemVolume::kBlocksPerChunk + 3;
  ASSERT_TRUE(array_.WriteSync(v, far, BlockOf('a')).ok());
  auto snap = snapshots_.CreateSnapshot(v, "s");
  ASSERT_TRUE(snap.ok());
  CowSnapshot* s = snapshots_.GetSnapshot(*snap);

  // Overwrite a block in a far chunk, and write a block that was a hole.
  ASSERT_TRUE(array_.WriteSync(v, far, BlockOf('b')).ok());
  ASSERT_TRUE(array_.WriteSync(v, 0, BlockOf('c')).ok());
  // Overwriting twice must keep the first preserved copy.
  ASSERT_TRUE(array_.WriteSync(v, far, BlockOf('d')).ok());

  std::string out;
  ASSERT_TRUE(s->Read(far, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('a'));
  ASSERT_TRUE(s->Read(0, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('\0'));  // Hole at snapshot time reads as zeros.
  ASSERT_TRUE(array_.ReadSync(v, far, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('d'));
}

}  // namespace
}  // namespace zerobak::snapshot
