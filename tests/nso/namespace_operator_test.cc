#include "nso/namespace_operator.h"

#include <set>

#include <gtest/gtest.h>

#include "container/cluster.h"

namespace zerobak::nso {
namespace {

using container::kKindNamespace;
using container::kKindPersistentVolume;
using container::kKindPersistentVolumeClaim;
using container::kKindVolumeReplicationGroup;
using container::Resource;

class NamespaceOperatorTest : public ::testing::Test {
 protected:
  NamespaceOperatorTest() : cluster_(&env_, "main") {
    cluster_.controllers()->Register(std::make_unique<NamespaceOperator>());
  }

  void MakeNamespace(const std::string& name) {
    Resource ns;
    ns.kind = kKindNamespace;
    ns.name = name;
    ASSERT_TRUE(cluster_.api()->Create(std::move(ns)).ok());
  }

  // A bound PVC backed by a PV with a volume handle, as the provisioner
  // would have left it.
  void MakeBoundPvc(const std::string& ns, const std::string& name,
                    const std::string& handle) {
    Resource pv;
    pv.kind = kKindPersistentVolume;
    pv.name = "pv-" + ns + "-" + name;
    pv.spec["volumeHandle"] = handle;
    pv.spec["capacityBytes"] = 1 << 20;
    ASSERT_TRUE(cluster_.api()->Create(std::move(pv)).ok());
    Resource pvc;
    pvc.kind = kKindPersistentVolumeClaim;
    pvc.ns = ns;
    pvc.name = name;
    pvc.spec["volumeName"] = "pv-" + ns + "-" + name;
    pvc.status["phase"] = "Bound";
    ASSERT_TRUE(cluster_.api()->Create(std::move(pvc)).ok());
  }

  void Tag(const std::string& ns) {
    ASSERT_TRUE(cluster_.api()
                    ->Mutate(kKindNamespace, "", ns,
                             [](Resource* r) {
                               r->annotations[kPolicyAnnotation] =
                                   kConsistentCopyToCloud;
                             })
                    .ok());
  }

  sim::SimEnvironment env_;
  container::Cluster cluster_;
};

TEST_F(NamespaceOperatorTest, TaggingCreatesVrgCoveringAllVolumes) {
  MakeNamespace("shop");
  MakeBoundPvc("shop", "sales-db", "ARR:1");
  MakeBoundPvc("shop", "stock-db", "ARR:2");
  env_.RunUntilIdle();
  EXPECT_FALSE(cluster_.api()->Exists(kKindVolumeReplicationGroup, "shop",
                                      "vrg-shop"));

  Tag("shop");
  env_.RunUntilIdle();

  auto vrg = cluster_.api()->Get(kKindVolumeReplicationGroup, "shop",
                                 "vrg-shop");
  ASSERT_TRUE(vrg.ok());
  EXPECT_EQ(vrg->spec.GetString("sourceNamespace"), "shop");
  EXPECT_FALSE(vrg->spec.GetBool("perVolume"));
  const Value* volumes = vrg->spec.Find("volumes");
  ASSERT_NE(volumes, nullptr);
  ASSERT_EQ(volumes->AsArray().size(), 2u);
  // The single user action (tagging) captured both volumes with their
  // PVC names — the automation claim of Section III-B-1.
  std::set<std::string> handles, pvcs;
  for (const Value& v : volumes->AsArray()) {
    handles.insert(v.GetString("handle"));
    pvcs.insert(v.GetString("pvcName"));
  }
  EXPECT_TRUE(handles.contains("ARR:1"));
  EXPECT_TRUE(handles.contains("ARR:2"));
  EXPECT_TRUE(pvcs.contains("sales-db"));
  EXPECT_TRUE(pvcs.contains("stock-db"));
}

TEST_F(NamespaceOperatorTest, WrongTagValueIgnored) {
  MakeNamespace("shop");
  MakeBoundPvc("shop", "db", "ARR:1");
  ASSERT_TRUE(cluster_.api()
                  ->Mutate(kKindNamespace, "", "shop",
                           [](Resource* r) {
                             r->annotations[kPolicyAnnotation] =
                                 "SomethingElse";
                           })
                  .ok());
  env_.RunUntilIdle();
  EXPECT_FALSE(cluster_.api()->Exists(kKindVolumeReplicationGroup, "shop",
                                      "vrg-shop"));
}

TEST_F(NamespaceOperatorTest, UnboundPvcsAreSkipped) {
  MakeNamespace("shop");
  Resource pvc;
  pvc.kind = kKindPersistentVolumeClaim;
  pvc.ns = "shop";
  pvc.name = "pending";
  ASSERT_TRUE(cluster_.api()->Create(std::move(pvc)).ok());
  Tag("shop");
  env_.RunUntilIdle();
  // Nothing bound -> nothing to protect -> no VRG yet.
  EXPECT_FALSE(cluster_.api()->Exists(kKindVolumeReplicationGroup, "shop",
                                      "vrg-shop"));
}

TEST_F(NamespaceOperatorTest, NewPvcJoinsExistingVrg) {
  MakeNamespace("shop");
  MakeBoundPvc("shop", "sales-db", "ARR:1");
  Tag("shop");
  env_.RunUntilIdle();

  MakeBoundPvc("shop", "stock-db", "ARR:2");
  env_.RunUntilIdle();
  auto vrg = cluster_.api()->Get(kKindVolumeReplicationGroup, "shop",
                                 "vrg-shop");
  ASSERT_TRUE(vrg.ok());
  EXPECT_EQ(vrg->spec.Find("volumes")->AsArray().size(), 2u);
}

TEST_F(NamespaceOperatorTest, UntaggingRemovesVrg) {
  MakeNamespace("shop");
  MakeBoundPvc("shop", "db", "ARR:1");
  Tag("shop");
  env_.RunUntilIdle();
  ASSERT_TRUE(cluster_.api()->Exists(kKindVolumeReplicationGroup, "shop",
                                     "vrg-shop"));
  ASSERT_TRUE(cluster_.api()
                  ->Mutate(kKindNamespace, "", "shop",
                           [](Resource* r) {
                             r->annotations.erase(kPolicyAnnotation);
                           })
                  .ok());
  env_.RunUntilIdle();
  EXPECT_FALSE(cluster_.api()->Exists(kKindVolumeReplicationGroup, "shop",
                                      "vrg-shop"));
}

TEST_F(NamespaceOperatorTest, OtherNamespacesUnaffected) {
  MakeNamespace("shop");
  MakeNamespace("bystander");
  MakeBoundPvc("shop", "db", "ARR:1");
  MakeBoundPvc("bystander", "db", "ARR:2");
  Tag("shop");
  env_.RunUntilIdle();
  EXPECT_TRUE(cluster_.api()->Exists(kKindVolumeReplicationGroup, "shop",
                                     "vrg-shop"));
  EXPECT_FALSE(cluster_.api()->Exists(kKindVolumeReplicationGroup,
                                      "bystander", "vrg-bystander"));
}

TEST_F(NamespaceOperatorTest, PerVolumeConfigPropagates) {
  sim::SimEnvironment env;
  container::Cluster cluster(&env, "ablate");
  NamespaceOperatorConfig cfg;
  cfg.per_volume = true;
  cfg.journal_capacity_bytes = 12345678;
  cluster.controllers()->Register(
      std::make_unique<NamespaceOperator>(cfg));

  Resource ns;
  ns.kind = kKindNamespace;
  ns.name = "shop";
  ns.annotations[kPolicyAnnotation] = kConsistentCopyToCloud;
  ASSERT_TRUE(cluster.api()->Create(std::move(ns)).ok());
  Resource pv;
  pv.kind = kKindPersistentVolume;
  pv.name = "pv-a";
  pv.spec["volumeHandle"] = "ARR:9";
  pv.spec["capacityBytes"] = 4096;
  ASSERT_TRUE(cluster.api()->Create(std::move(pv)).ok());
  Resource pvc;
  pvc.kind = kKindPersistentVolumeClaim;
  pvc.ns = "shop";
  pvc.name = "a";
  pvc.spec["volumeName"] = "pv-a";
  ASSERT_TRUE(cluster.api()->Create(std::move(pvc)).ok());
  env.RunUntilIdle();

  auto vrg = cluster.api()->Get(kKindVolumeReplicationGroup, "shop",
                                "vrg-shop");
  ASSERT_TRUE(vrg.ok());
  EXPECT_TRUE(vrg->spec.GetBool("perVolume"));
  EXPECT_EQ(vrg->spec.GetInt("journalCapacityBytes"), 12345678);
}

}  // namespace
}  // namespace zerobak::nso
