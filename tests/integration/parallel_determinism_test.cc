// Bit-determinism of the parallel compute layer: the number of compute
// lanes (EngineOptions::compute_threads) is a pure throughput knob. A
// seeded run must produce identical simulated histories — metrics, trace
// rings, secondary volume contents — at 1, 2 and 8 lanes, because all
// parallelism lives inside individual sim events behind a join barrier
// and results are merged in canonical order.
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "common/crc32c.h"
#include "common/rng.h"
#include "core/demo_system.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "replication/replication.h"
#include "sim/environment.h"
#include "sim/network.h"
#include "storage/array.h"

namespace zerobak::core {
namespace {

// CRC of a volume's full content, block by block (holes read as zeros).
uint32_t VolumeCrc(const storage::Volume& vol) {
  uint32_t crc = 0;
  const block::MemVolume& store = vol.store();
  for (uint64_t lba = 0; lba < store.block_count(); ++lba) {
    const std::string_view block = store.ReadBlockView(lba);
    crc = Crc32cExtend(crc, block.data(), block.size());
  }
  return crc;
}

std::vector<std::pair<uint64_t, uint32_t>> ArrayCrcs(
    const storage::StorageArray& array) {
  std::vector<std::pair<uint64_t, uint32_t>> out;
  for (storage::VolumeId id : array.ListVolumes()) {
    out.emplace_back(id, VolumeCrc(*array.GetVolume(id)));
  }
  return out;
}

// Metric samples as comparable tuples. Samples whose name starts with
// "exec." are host-side pool telemetry (task/steal counts depend on OS
// scheduling) and are the ONE sanctioned lane-count-dependent surface;
// everything else must match exactly.
std::vector<std::tuple<std::string, double, uint64_t, double, double,
                       uint64_t>>
SimMetrics(obs::MetricRegistry* metrics) {
  std::vector<std::tuple<std::string, double, uint64_t, double, double,
                         uint64_t>>
      out;
  for (const obs::MetricSample& s : metrics->Snapshot()) {
    if (s.name.rfind("exec.", 0) == 0) continue;
    out.emplace_back(s.name, s.value, s.count, s.p50, s.p99, s.max);
  }
  return out;
}

std::vector<std::tuple<SimTime, int, uint64_t, uint64_t, uint64_t>>
TraceEvents(obs::TraceRing* trace) {
  std::vector<std::tuple<SimTime, int, uint64_t, uint64_t, uint64_t>> out;
  for (const obs::TraceRecord& r : trace->Events()) {
    out.emplace_back(r.time, static_cast<int>(r.event), r.subject, r.arg0,
                     r.arg1);
  }
  return out;
}

// ---------------------------------------------------------------------
// Full-system scenario: the demo stack end to end (DB workload, operator,
// failover drill), fingerprinted down to metrics, traces and volumes.
// ---------------------------------------------------------------------

struct SystemFingerprint {
  uint64_t orders = 0;
  uint64_t events = 0;
  SimTime end_time = 0;
  uint64_t link_bytes = 0;
  std::vector<std::tuple<std::string, double, uint64_t, double, double,
                         uint64_t>>
      metrics;
  std::vector<std::tuple<SimTime, int, uint64_t, uint64_t, uint64_t>> trace;
  std::vector<std::pair<uint64_t, uint32_t>> backup_crcs;

  bool operator==(const SystemFingerprint& o) const {
    return orders == o.orders && events == o.events &&
           end_time == o.end_time && link_bytes == o.link_bytes &&
           metrics == o.metrics && trace == o.trace &&
           backup_crcs == o.backup_crcs;
  }
};

SystemFingerprint RunSystemOnce(uint64_t seed, unsigned compute_threads) {
  sim::SimEnvironment env;
  DemoSystemConfig config = bench::FunctionalConfig();
  config.link.base_latency = Milliseconds(2);
  config.link.jitter = Milliseconds(5);
  config.link.seed = seed;
  config.engine.compute_threads = compute_threads;
  DemoSystem system(&env, config);
  bench::BusinessProcess bp =
      bench::DeployBusinessProcess(&system, "shop", seed);
  ZB_CHECK(system.TagNamespaceForBackup("shop").ok());
  ZB_CHECK(system.WaitForBackupConfigured("shop").ok());
  Rng rng(seed);
  for (int i = 0; i < 60; ++i) {
    ZB_CHECK(bp.app->PlaceOrder().ok());
    env.RunFor(static_cast<SimDuration>(rng.Uniform(Microseconds(300))));
  }
  system.FailMainSite();
  ZB_CHECK(system.Failover("shop").ok());
  bench::RecoveryOutcome outcome = bench::RecoverOnBackup(&system, "shop");

  SystemFingerprint fp;
  fp.orders = outcome.orders;
  fp.events = env.executed_events();
  fp.end_time = env.now();
  fp.link_bytes = system.link_to_backup()->bytes_sent();
  fp.metrics = SimMetrics(system.metrics());
  fp.trace = TraceEvents(system.trace());
  fp.backup_crcs = ArrayCrcs(*system.backup_site()->array());
  return fp;
}

class ParallelSystemDeterminismTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelSystemDeterminismTest, LaneCountInvisibleInHistory) {
  const uint64_t seed = GetParam();
  const SystemFingerprint one = RunSystemOnce(seed, 1);
  for (unsigned threads : {2u, 8u}) {
    const SystemFingerprint many = RunSystemOnce(seed, threads);
    EXPECT_TRUE(one == many)
        << "seed " << seed << " threads " << threads << ": events "
        << one.events << " vs " << many.events << ", link bytes "
        << one.link_bytes << " vs " << many.link_bytes << ", trace "
        << one.trace.size() << " vs " << many.trace.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelSystemDeterminismTest,
                         ::testing::Values(1u, 7u, 42u));

// ---------------------------------------------------------------------
// Engine-level scenario sized to actually ENGAGE the parallel paths:
// multi-block extents large enough for chunked wire frames and
// multi-run batch applies, plus a partition to force an extent resync
// through the parallel capture/verify path.
// ---------------------------------------------------------------------

struct EngineFingerprint {
  uint64_t written = 0;
  uint64_t applied = 0;
  uint64_t resync_extents = 0;
  uint64_t events = 0;
  SimTime end_time = 0;
  uint64_t link_bytes = 0;
  std::vector<std::pair<uint64_t, uint32_t>> backup_crcs;
  bool converged = false;

  bool operator==(const EngineFingerprint& o) const {
    return written == o.written && applied == o.applied &&
           resync_extents == o.resync_extents && events == o.events &&
           end_time == o.end_time && link_bytes == o.link_bytes &&
           backup_crcs == o.backup_crcs && converged == o.converged;
  }
};

EngineFingerprint RunEngineOnce(uint64_t seed, unsigned compute_threads) {
  sim::SimEnvironment env;
  storage::ArrayConfig acfg;
  acfg.serial = "MAIN";
  acfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  storage::StorageArray main(&env, acfg);
  acfg.serial = "BKUP";
  storage::StorageArray backup(&env, acfg);
  sim::NetworkLinkConfig lcfg;
  lcfg.base_latency = Milliseconds(3);
  lcfg.jitter = Milliseconds(1);
  lcfg.bandwidth_bytes_per_sec = 400u << 20;
  lcfg.seed = seed;
  sim::NetworkLink fwd(&env, lcfg, "fwd");
  lcfg.seed = seed + 1;
  sim::NetworkLink rev(&env, lcfg, "rev");
  replication::EngineOptions opts;
  opts.compute_threads = compute_threads;
  replication::ReplicationEngine engine(&env, &main, &backup, &fwd, &rev,
                                        opts);

  constexpr uint64_t kBlocks = 2048;
  std::vector<std::pair<storage::VolumeId, storage::VolumeId>> vols;
  replication::ConsistencyGroupConfig gcfg;
  gcfg.name = "cg";
  gcfg.journal_capacity_bytes = 64ull << 20;
  auto g = engine.CreateConsistencyGroup(gcfg);
  ZB_CHECK(g.ok());
  for (int v = 0; v < 3; ++v) {
    auto p = main.CreateVolume("p" + std::to_string(v), kBlocks);
    auto s = backup.CreateVolume("s" + std::to_string(v), kBlocks);
    ZB_CHECK(p.ok() && s.ok());
    replication::PairConfig pcfg;
    pcfg.name = "pair" + std::to_string(v);
    pcfg.primary = *p;
    pcfg.secondary = *s;
    pcfg.mode = replication::ReplicationMode::kAsynchronous;
    pcfg.group = *g;
    ZB_CHECK(engine.CreatePair(pcfg).ok());
    vols.emplace_back(*p, *s);
  }

  // Multi-block extents, mixed compressible/incompressible, fat enough
  // that shipped batches exceed wire::kChunkBytes (chunked frames) and
  // carry many runs (parallel apply).
  Rng rng(seed * 2654435761u + 17);
  const uint32_t block = main.GetVolume(vols[0].first)->block_size();
  auto write_burst = [&](int extents) {
    for (int e = 0; e < extents; ++e) {
      const auto& [p, s] = vols[rng.Uniform(3)];
      const uint32_t count = 4 + rng.Uniform(13);  // 4..16 blocks.
      const uint64_t lba = rng.Uniform(kBlocks - count);
      std::string data(static_cast<size_t>(count) * block, '\0');
      if (e % 3 == 0) {
        for (char& c : data) c = static_cast<char>(rng.Uniform(256));
      } else {
        data.assign(data.size(), static_cast<char>('A' + e % 23));
      }
      ZB_CHECK(main.WriteSync(p, lba, data).ok());
    }
  };
  for (int round = 0; round < 12; ++round) {
    write_burst(24);
    env.RunFor(Milliseconds(1 + rng.Uniform(9)));
  }
  // Flap the link with fat batches in flight: the lost batches trip the
  // ack deadline, which suspends the group and dirty-marks the gap;
  // writes during the suspension widen the delta, and auto-resync then
  // ships extent records through the parallel capture/verify path.
  write_burst(48);
  env.RunFor(Milliseconds(2));  // Shipped, unacked, in flight.
  fwd.SetConnected(false);
  env.RunFor(Milliseconds(2));
  fwd.SetConnected(true);
  write_burst(64);
  env.RunFor(Seconds(3));  // Ack timeout + backoff + resync + drain.

  EngineFingerprint fp;
  auto stats = engine.GetGroupStats(*g);
  ZB_CHECK(stats.ok());
  fp.written = stats->written;
  fp.applied = stats->applied;
  fp.resync_extents = stats->resync_extents;
  fp.events = env.executed_events();
  fp.end_time = env.now();
  fp.link_bytes = fwd.bytes_sent();
  fp.backup_crcs = ArrayCrcs(backup);
  fp.converged = true;
  for (const auto& [p, s] : vols) {
    fp.converged = fp.converged &&
                   main.GetVolume(p)->ContentEquals(*backup.GetVolume(s));
  }
  return fp;
}

class ParallelEngineDeterminismTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelEngineDeterminismTest, HeavyPipelineIsLaneCountInvariant) {
  const uint64_t seed = GetParam();
  const EngineFingerprint one = RunEngineOnce(seed, 1);
  EXPECT_TRUE(one.converged) << "seed " << seed << " did not converge";
  EXPECT_GT(one.resync_extents, 0u)
      << "scenario no longer exercises the resync path";
  for (unsigned threads : {2u, 8u}) {
    const EngineFingerprint many = RunEngineOnce(seed, threads);
    EXPECT_TRUE(one == many)
        << "seed " << seed << " threads " << threads << ": events "
        << one.events << " vs " << many.events << ", applied "
        << one.applied << " vs " << many.applied << ", link bytes "
        << one.link_bytes << " vs " << many.link_bytes;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelEngineDeterminismTest,
                         ::testing::Values(3u, 11u));

}  // namespace
}  // namespace zerobak::core
