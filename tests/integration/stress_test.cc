// Multi-namespace stress: three business processes protected
// concurrently, with schedules, verification, a disaster and a full
// failback, all in one simulation. Exercises the cross-feature
// interactions no unit test sees.
#include <memory>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/demo_system.h"
#include "core/verify.h"

namespace zerobak::core {
namespace {

TEST(StressTest, ThreeNamespacesFullLifecycle) {
  sim::SimEnvironment env;
  DemoSystemConfig config = bench::FunctionalConfig();
  config.link.base_latency = Milliseconds(2);
  config.link.jitter = Milliseconds(1);
  DemoSystem system(&env, config);

  const std::vector<std::string> namespaces = {"shop", "billing", "crm"};
  std::map<std::string, bench::BusinessProcess> businesses;
  for (size_t i = 0; i < namespaces.size(); ++i) {
    businesses.emplace(namespaces[i],
                       bench::DeployBusinessProcess(&system, namespaces[i],
                                                    100 + i));
    ASSERT_TRUE(system.TagNamespaceForBackup(namespaces[i]).ok());
  }
  for (const auto& ns : namespaces) {
    ASSERT_TRUE(system.WaitForBackupConfigured(ns).ok()) << ns;
    ASSERT_TRUE(system
                    .CreateSnapshotSchedule(ns, "auto", Milliseconds(30),
                                            /*retain=*/2)
                    .ok());
  }

  // Interleaved business across all namespaces.
  Rng rng(11);
  for (int round = 0; round < 20; ++round) {
    for (const auto& ns : namespaces) {
      for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(businesses.at(ns).app->PlaceOrder().ok());
      }
    }
    env.RunFor(static_cast<SimDuration>(rng.Uniform(Milliseconds(5)) + 1));
  }
  env.RunFor(Milliseconds(100));

  // Every namespace's newest scheduled backup verifies.
  for (const auto& ns : namespaces) {
    auto report = VerifyLatestScheduled(&system, ns, "auto");
    ASSERT_TRUE(report.ok()) << ns << ": " << report.status();
    EXPECT_TRUE(report->passed()) << ns << ": " << report->ToString();
    EXPECT_EQ(report->orders, 100u) << ns;
  }

  // Retention held for all of them (2 groups per schedule).
  EXPECT_LE(system.backup_site()->snapshots()->ListGroups().size(),
            namespaces.size() * 2);

  // Disaster hits everything; each namespace fails over independently.
  system.FailMainSite();
  for (const auto& ns : namespaces) {
    ASSERT_TRUE(system.Failover(ns).ok()) << ns;
    bench::RecoveryOutcome outcome = bench::RecoverOnBackup(&system, ns);
    ASSERT_TRUE(outcome.recovered) << ns;
    EXPECT_FALSE(outcome.report.collapsed())
        << ns << ": " << outcome.report.ToString();
  }

  // Repair and fail back all namespaces; forward protection resumes.
  system.RepairMainSite();
  for (const auto& ns : namespaces) {
    ASSERT_TRUE(system.Failback(ns).ok()) << ns;
  }
  env.RunFor(Milliseconds(100));
  for (const auto& ns : namespaces) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(businesses.at(ns).app->PlaceOrder().ok()) << ns;
    }
  }
  env.RunFor(Milliseconds(100));
  for (const auto& ns : namespaces) {
    auto main_vol = system.ResolveMainVolume(ns, "sales-db");
    auto backup_vol = system.ResolveBackupVolume(ns, "sales-db");
    ASSERT_TRUE(main_vol.ok() && backup_vol.ok()) << ns;
    EXPECT_TRUE(
        system.main_site()->array()->GetVolume(*main_vol)->ContentEquals(
            *system.backup_site()->array()->GetVolume(*backup_vol)))
        << ns << " did not reconverge after failback";
  }
}

TEST(StressTest, SchedulesSurviveDisasterAndKeepFiring) {
  sim::SimEnvironment env;
  DemoSystemConfig config = bench::FunctionalConfig();
  config.link.base_latency = Milliseconds(2);
  DemoSystem system(&env, config);
  bench::BusinessProcess bp =
      bench::DeployBusinessProcess(&system, "shop");
  ASSERT_TRUE(system.TagNamespaceForBackup("shop").ok());
  ASSERT_TRUE(system.WaitForBackupConfigured("shop").ok());
  ASSERT_TRUE(system
                  .CreateSnapshotSchedule("shop", "auto", Milliseconds(20),
                                          /*retain=*/3)
                  .ok());
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(bp.app->PlaceOrder().ok());
  env.RunFor(Milliseconds(100));

  system.FailMainSite();
  ASSERT_TRUE(system.Failover("shop").ok());
  // The backup site (and its snapshots) keep operating through the
  // main-site outage: new generations appear.
  const auto groups_at_failover =
      system.backup_site()->snapshots()->ListGroups().size();
  env.RunFor(Milliseconds(100));
  EXPECT_GE(system.backup_site()->snapshots()->ListGroups().size(),
            groups_at_failover);
  auto report = VerifyLatestScheduled(&system, "shop", "auto");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->passed()) << report->ToString();
}

}  // namespace
}  // namespace zerobak::core
