// The three-resource business process (Section I names "inventory and
// payment databases"): orders touch the stock, payments and sales
// databases in a strict happens-before chain across THREE volumes. The
// consistency group must hold the whole chain together; per-volume ADC
// has two independent seams to tear at.
#include <memory>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/demo_system.h"
#include "workload/ecommerce.h"
#include "workload/invariants.h"

namespace zerobak::core {
namespace {

struct ThreeDbBusiness {
  std::unique_ptr<storage::ArrayVolumeDevice> sales_dev;
  std::unique_ptr<storage::ArrayVolumeDevice> stock_dev;
  std::unique_ptr<storage::ArrayVolumeDevice> payments_dev;
  std::unique_ptr<db::MiniDb> sales_db;
  std::unique_ptr<db::MiniDb> stock_db;
  std::unique_ptr<db::MiniDb> payments_db;
  std::unique_ptr<workload::EcommerceApp> app;
};

ThreeDbBusiness DeployThreeDb(DemoSystem* system, uint64_t seed) {
  ThreeDbBusiness biz;
  ZB_CHECK(system->CreateBusinessNamespace("shop").ok());
  for (const char* pvc : {"sales-db", "stock-db", "payments-db"}) {
    ZB_CHECK(system->CreatePvc("shop", pvc, 8 << 20).ok());
  }
  system->env()->RunFor(Milliseconds(10));
  auto open = [&](const char* pvc,
                  std::unique_ptr<storage::ArrayVolumeDevice>* dev) {
    auto vol = system->ResolveMainVolume("shop", pvc);
    ZB_CHECK(vol.ok());
    *dev = std::make_unique<storage::ArrayVolumeDevice>(
        system->main_site()->array(), *vol);
    ZB_CHECK(db::MiniDb::Format(dev->get(), bench::BenchDbOptions()).ok());
    return std::move(
               db::MiniDb::Open(dev->get(), bench::BenchDbOptions()))
        .value();
  };
  biz.sales_db = open("sales-db", &biz.sales_dev);
  biz.stock_db = open("stock-db", &biz.stock_dev);
  biz.payments_db = open("payments-db", &biz.payments_dev);
  workload::EcommerceConfig cfg;
  cfg.seed = seed;
  biz.app = std::make_unique<workload::EcommerceApp>(
      biz.sales_db.get(), biz.stock_db.get(), biz.payments_db.get(), cfg);
  ZB_CHECK(biz.app->InitializeCatalog().ok());
  return biz;
}

// Recovers all three DBs on the backup site and checks the invariants.
workload::CollapseReport RecoverAndCheck(DemoSystem* system) {
  db::DbOptions ro = bench::BenchDbOptions();
  ro.read_only = true;
  auto open = [&](const char* pvc) {
    auto vol = system->ResolveBackupVolume("shop", pvc);
    ZB_CHECK(vol.ok());
    auto dev = std::make_unique<storage::ArrayVolumeDevice>(
        system->backup_site()->array(), *vol);
    auto db = db::MiniDb::Open(dev.get(), ro);
    ZB_CHECK(db.ok());
    return std::make_pair(std::move(dev), std::move(db).value());
  };
  auto [sales_dev, sales] = open("sales-db");
  auto [stock_dev, stock] = open("stock-db");
  auto [pay_dev, payments] = open("payments-db");
  return workload::CheckConsistency(sales.get(), stock.get(),
                                    payments.get());
}

TEST(ThreeResourceTest, OrderTouchesAllThreeDatabases) {
  sim::SimEnvironment env;
  DemoSystem system(&env, bench::FunctionalConfig());
  ThreeDbBusiness biz = DeployThreeDb(&system, 1);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(biz.app->PlaceOrder().ok());
  EXPECT_EQ(biz.sales_db->RowCount(workload::kOrderTable), 10u);
  EXPECT_EQ(biz.stock_db->RowCount(workload::kMovementTable), 10u);
  EXPECT_EQ(biz.payments_db->RowCount(workload::kPaymentTable), 10u);

  auto report = workload::CheckConsistency(
      biz.sales_db.get(), biz.stock_db.get(), biz.payments_db.get());
  EXPECT_FALSE(report.collapsed()) << report.ToString();
  EXPECT_EQ(report.payments, 10u);
  EXPECT_EQ(report.orders_without_payment, 0u);
}

TEST(ThreeResourceTest, MissingPaymentIsACollapse) {
  sim::SimEnvironment env;
  DemoSystem system(&env, bench::FunctionalConfig());
  ThreeDbBusiness biz = DeployThreeDb(&system, 2);
  ASSERT_TRUE(biz.app->PlaceOrder().ok());
  // Fabricate an order whose payment never happened.
  db::Transaction txn = biz.sales_db->Begin();
  Value order = Value::MakeObject();
  order["item"] = workload::ItemKey(0);
  order["quantity"] = 1;
  order["amountCents"] = 1;
  txn.Put(workload::kOrderTable, workload::OrderKey(500), order.ToJson());
  // It needs a movement so only the payment check fires.
  db::Transaction mv = biz.stock_db->Begin();
  Value movement = Value::MakeObject();
  movement["orderId"] = 500;
  movement["item"] = workload::ItemKey(0);
  movement["quantity"] = 0;
  mv.Put(workload::kMovementTable, workload::MovementKey(500),
         movement.ToJson());
  ASSERT_TRUE(biz.stock_db->Commit(std::move(mv)).ok());
  ASSERT_TRUE(biz.sales_db->Commit(std::move(txn)).ok());

  auto report = workload::CheckConsistency(
      biz.sales_db.get(), biz.stock_db.get(), biz.payments_db.get());
  EXPECT_TRUE(report.collapsed());
  EXPECT_EQ(report.orders_without_payment, 1u);
  EXPECT_NE(report.ToString().find("unpaid_orders=1"), std::string::npos);
}

TEST(ThreeResourceTest, ConsistencyGroupProtectsTheWholeChain) {
  // Disaster drills over the 3-volume group: never collapsed.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    sim::SimEnvironment env;
    DemoSystemConfig config = bench::FunctionalConfig();
    config.link.base_latency = Milliseconds(2);
    config.link.jitter = Milliseconds(6);
    config.link.seed = seed;
    DemoSystem system(&env, config);
    ThreeDbBusiness biz = DeployThreeDb(&system, seed);
    ASSERT_TRUE(system.TagNamespaceForBackup("shop").ok());
    ASSERT_TRUE(system.WaitForBackupConfigured("shop").ok());
    // Three pairs, one shared group.
    auto group = system.ReplicationGroupOf("shop");
    ASSERT_TRUE(group.ok());
    EXPECT_EQ(system.replication()->ListGroupPairs(*group).size(), 3u);

    Rng rng(seed);
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(biz.app->PlaceOrder().ok());
      env.RunFor(static_cast<SimDuration>(rng.Uniform(Microseconds(300))));
    }
    system.FailMainSite();
    ASSERT_TRUE(system.Failover("shop").ok());
    auto report = RecoverAndCheck(&system);
    EXPECT_FALSE(report.collapsed())
        << "seed " << seed << ": " << report.ToString();
  }
}

TEST(ThreeResourceTest, PerVolumeAdcTearsTheChain) {
  int collapsed = 0;
  for (uint64_t seed = 1; seed <= 10 && collapsed == 0; ++seed) {
    sim::SimEnvironment env;
    DemoSystemConfig config = bench::FunctionalConfig();
    config.link.base_latency = Milliseconds(2);
    config.link.jitter = Milliseconds(6);
    config.link.seed = seed;
    config.nso.per_volume = true;
    DemoSystem system(&env, config);
    ThreeDbBusiness biz = DeployThreeDb(&system, seed);
    ZB_CHECK(system.TagNamespaceForBackup("shop").ok());
    ZB_CHECK(system.WaitForBackupConfigured("shop").ok());
    Rng rng(seed);
    for (int i = 0; i < 100; ++i) {
      ZB_CHECK(biz.app->PlaceOrder().ok());
      env.RunFor(static_cast<SimDuration>(rng.Uniform(Microseconds(300))));
    }
    system.FailMainSite();
    ZB_CHECK(system.Failover("shop").ok());
    if (RecoverAndCheck(&system).collapsed()) ++collapsed;
  }
  EXPECT_GT(collapsed, 0)
      << "three independent per-volume streams never tore the chain";
}

}  // namespace
}  // namespace zerobak::core
