// The paper's central correctness claim, as a property test (E2):
//
//   * Per-volume asynchronous copy can COLLAPSE the backup — the sales
//     database contains orders whose stock movement never arrived
//     (Section I's e-commerce example).
//   * Consistency-group ADC NEVER collapses: the shared journal preserves
//     the cross-volume total order, so every crash point recovers to a
//     prefix-consistent business state.
//
// Both modes run the identical workload, crash schedule and network; the
// only difference is the journal topology — exactly the paper's ablation.
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/demo_system.h"
#include "db/minidb.h"
#include "storage/array_device.h"
#include "workload/ecommerce.h"
#include "workload/invariants.h"

namespace zerobak::core {
namespace {

struct DrillResult {
  workload::CollapseReport report;
  uint64_t orders_placed = 0;
  uint64_t orders_recovered = 0;
};

db::DbOptions DbOpts() {
  db::DbOptions opts;
  opts.checkpoint_blocks = 256;
  opts.wal_blocks = 1024;
  return opts;
}

// Runs one full drill: deploy -> protect -> run business -> crash mid-
// replication -> fail over -> recover databases -> check consistency.
DrillResult RunDrill(bool per_volume, uint64_t seed) {
  sim::SimEnvironment env;
  DemoSystemConfig config;
  config.main_array.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  config.backup_array.media = block::DeviceLatencyModel{0, 0, 0, 0, 2};
  // Jittery link: independent channels (per-volume journals) reorder.
  config.link.base_latency = Milliseconds(2);
  config.link.jitter = Milliseconds(6);
  config.link.seed = seed * 31 + 1;
  config.nso.per_volume = per_volume;
  DemoSystem system(&env, config);

  EXPECT_TRUE(system.CreateBusinessNamespace("shop").ok());
  EXPECT_TRUE(system.CreatePvc("shop", "sales-db", 8 << 20).ok());
  EXPECT_TRUE(system.CreatePvc("shop", "stock-db", 8 << 20).ok());
  env.RunFor(Milliseconds(10));

  auto sales_vol = system.ResolveMainVolume("shop", "sales-db");
  auto stock_vol = system.ResolveMainVolume("shop", "stock-db");
  EXPECT_TRUE(sales_vol.ok() && stock_vol.ok());
  storage::ArrayVolumeDevice sales_dev(system.main_site()->array(),
                                       *sales_vol);
  storage::ArrayVolumeDevice stock_dev(system.main_site()->array(),
                                       *stock_vol);
  EXPECT_TRUE(db::MiniDb::Format(&sales_dev, DbOpts()).ok());
  EXPECT_TRUE(db::MiniDb::Format(&stock_dev, DbOpts()).ok());
  auto sales = db::MiniDb::Open(&sales_dev, DbOpts());
  auto stock = db::MiniDb::Open(&stock_dev, DbOpts());
  EXPECT_TRUE(sales.ok() && stock.ok());
  workload::EcommerceConfig app_cfg;
  app_cfg.seed = seed;
  workload::EcommerceApp app(sales->get(), stock->get(), app_cfg);
  EXPECT_TRUE(app.InitializeCatalog().ok());

  EXPECT_TRUE(system.TagNamespaceForBackup("shop").ok());
  EXPECT_TRUE(system.WaitForBackupConfigured("shop").ok());

  // Business processing with replication racing behind.
  Rng rng(seed);
  const int orders = 120;
  for (int i = 0; i < orders; ++i) {
    EXPECT_TRUE(app.PlaceOrder().ok());
    env.RunFor(static_cast<SimDuration>(rng.Uniform(Microseconds(400))));
  }

  // Disaster strikes mid-replication.
  system.FailMainSite();
  EXPECT_TRUE(system.Failover("shop").ok());

  // Recover the business databases on the backup site.
  auto b_sales_vol = system.ResolveBackupVolume("shop", "sales-db");
  auto b_stock_vol = system.ResolveBackupVolume("shop", "stock-db");
  EXPECT_TRUE(b_sales_vol.ok() && b_stock_vol.ok());
  storage::ArrayVolumeDevice b_sales_dev(system.backup_site()->array(),
                                         *b_sales_vol);
  storage::ArrayVolumeDevice b_stock_dev(system.backup_site()->array(),
                                         *b_stock_vol);
  auto rec_sales = db::MiniDb::Open(&b_sales_dev, DbOpts());
  auto rec_stock = db::MiniDb::Open(&b_stock_dev, DbOpts());
  DrillResult result;
  result.orders_placed = app.orders_placed();
  // Each volume is per-stream prefix-consistent in BOTH modes, so the
  // databases individually always recover.
  EXPECT_TRUE(rec_sales.ok()) << rec_sales.status();
  EXPECT_TRUE(rec_stock.ok()) << rec_stock.status();
  if (!rec_sales.ok() || !rec_stock.ok()) return result;
  result.orders_recovered =
      (*rec_sales)->RowCount(workload::kOrderTable);
  result.report =
      workload::CheckConsistency(rec_sales->get(), rec_stock->get());
  return result;
}

TEST(CollapseTest, ConsistencyGroupNeverCollapses) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    DrillResult r = RunDrill(/*per_volume=*/false, seed);
    EXPECT_FALSE(r.report.collapsed())
        << "seed " << seed << ": " << r.report.ToString();
    EXPECT_TRUE(r.report.internally_consistent())
        << "seed " << seed << ": " << r.report.ToString();
    EXPECT_LE(r.orders_recovered, r.orders_placed);
  }
}

TEST(CollapseTest, PerVolumeAdcCollapsesUnderTheSameConditions) {
  int collapsed = 0;
  int trials = 0;
  for (uint64_t seed = 1; seed <= 14; ++seed) {
    DrillResult r = RunDrill(/*per_volume=*/true, seed);
    ++trials;
    if (r.report.collapsed()) ++collapsed;
  }
  // The identical workload/crash schedule that the consistency group
  // survives must corrupt the per-volume configuration at least once —
  // this is the paper's motivating failure mode.
  EXPECT_GT(collapsed, 0) << "per-volume ADC never collapsed in " << trials
                          << " trials; the ablation lost its teeth";
}

TEST(CollapseTest, RecoveredPrefixGrowsWithDrainTime) {
  // Sanity: letting the journal drain before the disaster reduces loss.
  sim::SimEnvironment env;
  DemoSystemConfig config;
  config.main_array.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  config.backup_array.media = block::DeviceLatencyModel{0, 0, 0, 0, 2};
  config.link.base_latency = Milliseconds(2);
  config.link.jitter = 0;
  DemoSystem system(&env, config);
  ASSERT_TRUE(system.CreateBusinessNamespace("shop").ok());
  ASSERT_TRUE(system.CreatePvc("shop", "sales-db", 8 << 20).ok());
  ASSERT_TRUE(system.CreatePvc("shop", "stock-db", 8 << 20).ok());
  env.RunFor(Milliseconds(10));
  ASSERT_TRUE(system.TagNamespaceForBackup("shop").ok());
  ASSERT_TRUE(system.WaitForBackupConfigured("shop").ok());

  auto group = system.ReplicationGroupOf("shop");
  ASSERT_TRUE(group.ok());
  auto sales_vol = system.ResolveMainVolume("shop", "sales-db");
  ASSERT_TRUE(sales_vol.ok());
  // Write 20 blocks with no drain time at all.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(system.main_site()
                    ->array()
                    ->WriteSync(*sales_vol, i,
                                std::string(block::kDefaultBlockSize, 'x'))
                    .ok());
  }
  auto stats0 = system.replication()->GetGroupStats(*group);
  ASSERT_TRUE(stats0.ok());
  const auto applied_before = stats0->applied;
  env.RunFor(Milliseconds(50));
  auto stats1 = system.replication()->GetGroupStats(*group);
  ASSERT_TRUE(stats1.ok());
  EXPECT_GT(stats1->applied, applied_before);
  EXPECT_EQ(stats1->applied, stats1->written);
}

}  // namespace
}  // namespace zerobak::core
