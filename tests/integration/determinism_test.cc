// Determinism: the whole point of building the system on a discrete-event
// simulator is exact reproducibility — same seed, same history, bit-equal
// outcomes. Every experiment in EXPERIMENTS.md relies on this.
#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/demo_system.h"

namespace zerobak::core {
namespace {

struct DrillFingerprint {
  uint64_t orders_recovered = 0;
  uint64_t orphans = 0;
  uint64_t events_executed = 0;
  SimTime end_time = 0;
  uint64_t link_bytes = 0;

  bool operator==(const DrillFingerprint& other) const {
    return orders_recovered == other.orders_recovered &&
           orphans == other.orphans &&
           events_executed == other.events_executed &&
           end_time == other.end_time && link_bytes == other.link_bytes;
  }
};

DrillFingerprint RunOnce(uint64_t seed, bool per_volume) {
  sim::SimEnvironment env;
  DemoSystemConfig config = bench::FunctionalConfig();
  config.link.base_latency = Milliseconds(2);
  config.link.jitter = Milliseconds(5);
  config.link.seed = seed;
  config.nso.per_volume = per_volume;
  DemoSystem system(&env, config);
  bench::BusinessProcess bp =
      bench::DeployBusinessProcess(&system, "shop", seed);
  ZB_CHECK(system.TagNamespaceForBackup("shop").ok());
  ZB_CHECK(system.WaitForBackupConfigured("shop").ok());
  Rng rng(seed);
  for (int i = 0; i < 80; ++i) {
    ZB_CHECK(bp.app->PlaceOrder().ok());
    env.RunFor(static_cast<SimDuration>(rng.Uniform(Microseconds(300))));
  }
  system.FailMainSite();
  ZB_CHECK(system.Failover("shop").ok());
  bench::RecoveryOutcome outcome = bench::RecoverOnBackup(&system, "shop");

  DrillFingerprint fp;
  fp.orders_recovered = outcome.orders;
  fp.orphans = outcome.report.orphan_orders;
  fp.events_executed = env.executed_events();
  fp.end_time = env.now();
  fp.link_bytes = system.link_to_backup()->bytes_sent();
  return fp;
}

class DeterminismTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(DeterminismTest, IdenticalRunsProduceIdenticalHistories) {
  const auto [seed, per_volume] = GetParam();
  const DrillFingerprint a = RunOnce(seed, per_volume);
  const DrillFingerprint b = RunOnce(seed, per_volume);
  EXPECT_TRUE(a == b) << "seed " << seed
                      << " per_volume=" << per_volume
                      << ": events " << a.events_executed << " vs "
                      << b.events_executed << ", bytes " << a.link_bytes
                      << " vs " << b.link_bytes;
}

TEST_P(DeterminismTest, DifferentSeedsDiverge) {
  const auto [seed, per_volume] = GetParam();
  const DrillFingerprint a = RunOnce(seed, per_volume);
  const DrillFingerprint b = RunOnce(seed + 1000, per_volume);
  // Histories with different seeds should differ somewhere observable.
  EXPECT_FALSE(a == b);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DeterminismTest,
    ::testing::Combine(::testing::Values(1u, 7u, 42u),
                       ::testing::Bool()));

}  // namespace
}  // namespace zerobak::core
