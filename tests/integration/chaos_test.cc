// Chaos drill for the paper's "no backup-data collapse" property (E2,
// hardened): a multi-volume consistency group runs a tagged-block workload
// while a seeded FaultSchedule flaps the inter-site links, spikes their
// latency, randomly drops messages and flips bits in in-flight wire
// frames (caught by the batch CRC). The group must (a) auto-recover to
// kPaired and full convergence once the faults clear — journal overflows
// included — and (b) after a failover at a random instant mid-chaos, leave
// backup images that equal the primary write-order history truncated at
// ONE single instant. The prefix property is checked mechanically from
// per-block tags, not via the database layer.
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/coding.h"
#include "common/rng.h"
#include "db/minidb.h"
#include "fault/fault_schedule.h"
#include "journal/journal.h"
#include "replication/replication.h"
#include "replication/scrubber.h"
#include "storage/array.h"
#include "storage/array_device.h"
#include "workload/kv_workload.h"

namespace zerobak::replication {
namespace {

constexpr int kVolumes = 3;
constexpr uint64_t kBlocks = 96;

storage::ArrayConfig ZeroLatency(const std::string& serial) {
  storage::ArrayConfig cfg;
  cfg.serial = serial;
  cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  return cfg;
}

sim::NetworkLinkConfig ChaosLink(uint64_t seed) {
  sim::NetworkLinkConfig cfg;
  cfg.base_latency = Milliseconds(1);
  cfg.jitter = Microseconds(300);
  cfg.bandwidth_bytes_per_sec = 0;
  cfg.seed = seed;
  return cfg;
}

// One write of the totally ordered primary history: the block's first 8
// bytes carry a unique tag so the backup image can be decoded back into
// "which prefix of the history is this".
struct WriteEvent {
  int vol = 0;
  uint64_t lba = 0;
  uint64_t tag = 0;
};

class ChaosRun {
 public:
  // `coalesce` toggles the whole transfer-pipeline optimization bundle
  // (write-folding, sorted apply, extent resync, adaptive batching, wire
  // compression): the prefix invariant must hold identically with it on
  // and off.
  // `scrub` turns on the background at-rest integrity scrubber (the
  // repair arm of the media-fault drill).
  explicit ChaosRun(uint64_t seed, bool coalesce = true, bool scrub = false)
      : main_(&env_, ZeroLatency("MAIN")),
        backup_(&env_, ZeroLatency("BKUP")),
        to_backup_(&env_, ChaosLink(seed * 31 + 1), "fwd"),
        to_main_(&env_, ChaosLink(seed * 31 + 2), "rev"),
        engine_(&env_, &main_, &backup_, &to_backup_, &to_main_),
        rng_(seed) {
    ConsistencyGroupConfig cfg;
    cfg.name = "chaos";
    // Small journal so mid-outage backlogs genuinely overflow.
    cfg.journal_capacity_bytes = 64 << 10;
    cfg.transfer_interval = Milliseconds(1);
    cfg.ack_timeout = Milliseconds(10);
    cfg.resync_backoff_initial = Milliseconds(2);
    cfg.resync_backoff_max = Milliseconds(20);
    cfg.enable_write_folding = coalesce;
    cfg.enable_sorted_apply = coalesce;
    cfg.enable_extent_resync = coalesce;
    cfg.enable_adaptive_batching = coalesce;
    cfg.compress_transfers = coalesce;
    auto g = engine_.CreateConsistencyGroup(cfg);
    EXPECT_TRUE(g.ok());
    group_ = *g;
    for (int v = 0; v < kVolumes; ++v) {
      auto p = main_.CreateVolume("vol" + std::to_string(v), kBlocks);
      auto s = backup_.CreateVolume("r-vol" + std::to_string(v), kBlocks);
      EXPECT_TRUE(p.ok() && s.ok());
      pvols_.push_back(*p);
      svols_.push_back(*s);
      PairConfig pc;
      pc.name = "pair" + std::to_string(v);
      pc.primary = *p;
      pc.secondary = *s;
      pc.mode = ReplicationMode::kAsynchronous;
      pc.group = group_;
      auto pair = engine_.CreatePair(pc);
      EXPECT_TRUE(pair.ok());
      pairs_.push_back(*pair);
    }
    if (scrub) {
      ScrubConfig scfg;
      scfg.extent_blocks = 16;
      scfg.max_extents_per_step = 32;
      scfg.step_interval = Milliseconds(1);
      scfg.cycle_interval = Milliseconds(5);
      EXPECT_TRUE(engine_.EnableScrubbing(scfg).ok());
    }
    env_.RunFor(Milliseconds(5));
  }

  void ArmChaos(uint64_t fault_seed, SimDuration horizon) {
    fault::FaultScheduleConfig fcfg;
    fcfg.seed = fault_seed;
    fcfg.horizon = horizon;
    fcfg.mean_flap_interval = Milliseconds(12);
    fcfg.min_outage = Milliseconds(2);
    fcfg.max_outage = Milliseconds(8);
    fcfg.mean_spike_interval = Milliseconds(30);
    fcfg.spike_latency = Milliseconds(4);
    fcfg.min_spike = Milliseconds(2);
    fcfg.max_spike = Milliseconds(10);
    // Corruption episodes: delivered batches get bit-flipped and must be
    // caught by the wire CRC and recovered like drops.
    fcfg.mean_corrupt_interval = Milliseconds(25);
    fcfg.corrupt_probability = 0.3;
    fcfg.min_corrupt = Milliseconds(2);
    fcfg.max_corrupt = Milliseconds(8);
    schedule_ = std::make_unique<fault::FaultSchedule>(&env_, fcfg);
    schedule_->AddLink(&to_backup_);
    schedule_->AddLink(&to_main_);
    schedule_->AddCorruptionTarget([this](double p) {
      engine_.SetFaultOptions({.wire_corrupt_probability = p});
    });
    schedule_->Arm();
    to_backup_.set_drop_probability(0.02);
    to_main_.set_drop_probability(0.02);
  }

  void HealChaos() {
    schedule_->Heal();
    to_backup_.set_drop_probability(0.0);
    to_main_.set_drop_probability(0.0);
  }

  // The at-rest media lane: seeded error episodes on the primary journal
  // LDEV (every append fails -> kMediaError suspension) and silent bit
  // rot on the S-VOL stores. Two schedules because the lanes target
  // different hardware: the journal gets all-or-nothing episodes, the
  // data volumes get per-block flips.
  void ArmMediaChaos(uint64_t fault_seed, SimDuration horizon) {
    fault::FaultScheduleConfig jcfg;
    jcfg.seed = fault_seed;
    jcfg.horizon = horizon;
    jcfg.mean_media_interval = Milliseconds(20);
    jcfg.min_media = Milliseconds(2);
    jcfg.max_media = Milliseconds(6);
    media_schedule_ = std::make_unique<fault::FaultSchedule>(&env_, jcfg);
    media_schedule_->AddMediaTarget(engine_.primary_journal(group_));
    media_schedule_->Arm();

    fault::FaultScheduleConfig rcfg;
    rcfg.seed = fault_seed * 17 + 3;
    rcfg.horizon = horizon;
    rcfg.mean_rot_interval = Milliseconds(5);
    rot_schedule_ = std::make_unique<fault::FaultSchedule>(&env_, rcfg);
    for (int v = 0; v < kVolumes; ++v) {
      rot_schedule_->AddMediaTarget(
          &backup_.GetVolume(svols_[static_cast<size_t>(v)])->store());
    }
    rot_schedule_->Arm();
  }

  // Heals the injectors only: bits already flipped stay flipped (that is
  // the scrubber's job, or the ablation's evidence).
  void HealMediaChaos() {
    media_schedule_->Heal();
    rot_schedule_->Heal();
  }

  uint64_t BitFlips() {
    uint64_t n = 0;
    for (int v = 0; v < kVolumes; ++v) {
      n += backup_.GetVolume(svols_[static_cast<size_t>(v)])
               ->store()
               .bit_flips();
    }
    return n;
  }

  // Application-visible sweep: reads every backup block through the
  // checksum-verified path, returning how many failed with kDataLoss.
  // Any other failure aborts the test.
  uint64_t CountBadReads() {
    uint64_t bad = 0;
    std::string out;
    for (int v = 0; v < kVolumes; ++v) {
      for (uint64_t lba = 0; lba < kBlocks; ++lba) {
        Status s = backup_.GetVolume(svols_[static_cast<size_t>(v)])
                       ->Read(lba, 1, &out);
        if (s.code() == StatusCode::kDataLoss) {
          ++bad;
        } else {
          EXPECT_TRUE(s.ok()) << s;
        }
      }
    }
    return bad;
  }

  void WriteTagged() {
    const int vol = static_cast<int>(rng_.Uniform(kVolumes));
    const uint64_t lba = rng_.Zipf(kBlocks, 0.8);  // Hot blocks rewrite.
    const uint64_t tag = ++next_tag_;
    std::string data(block::kDefaultBlockSize,
                     static_cast<char>('A' + vol));
    EncodeFixed64(data.data(), tag);
    ASSERT_TRUE(main_.WriteSync(pvols_[static_cast<size_t>(vol)], lba, data)
                    .ok())
        << "host writes must never fail, tag " << tag;
    history_.push_back(WriteEvent{vol, lba, tag});
  }

  void RunWrites(int n) {
    for (int i = 0; i < n; ++i) {
      WriteTagged();
      env_.RunFor(static_cast<SimDuration>(
          rng_.Uniform(Microseconds(300)) + Microseconds(50)));
    }
  }

  // After HealChaos: the recovery machinery alone (no operator resync!)
  // must bring every pair back to kPaired with identical content.
  ::testing::AssertionResult DrainToConverged() {
    for (int round = 0; round < 150; ++round) {
      env_.RunFor(Milliseconds(10));
      auto stats = engine_.GetGroupStats(group_);
      if (!stats.ok()) return ::testing::AssertionFailure() << stats.status();
      if (stats->suspended || stats->applied != stats->written) continue;
      bool paired = true;
      bool equal = true;
      for (int v = 0; v < kVolumes; ++v) {
        paired &= engine_.GetPair(pairs_[static_cast<size_t>(v)])->state() ==
                  PairState::kPaired;
        equal &= main_.GetVolume(pvols_[static_cast<size_t>(v)])
                     ->ContentEquals(
                         *backup_.GetVolume(svols_[static_cast<size_t>(v)]));
      }
      if (paired && equal) return ::testing::AssertionSuccess();
    }
    auto stats = engine_.GetGroupStats(group_);
    return ::testing::AssertionFailure()
           << "never reconverged: suspended="
           << (stats.ok() ? stats->suspended : true) << " reason="
           << (stats.ok() ? SuspendReasonName(stats->suspend_reason) : "?");
  }

  FailoverReport Failover() {
    main_.SetFailed(true);
    to_backup_.SetConnected(false);
    to_main_.SetConnected(false);
    auto report = engine_.FailoverGroup(group_);
    EXPECT_TRUE(report.ok());
    return report.ok() ? *report : FailoverReport{};
  }

  // Mechanical prefix check: there must exist a single cut 0 <= k <=
  // history.size() such that every backup block equals the content after
  // exactly the first k writes. Each block's tag constrains k to an
  // interval; the intersection must be non-empty.
  ::testing::AssertionResult BackupIsWriteOrderPrefix() {
    std::map<std::pair<int, uint64_t>,
             std::vector<std::pair<uint64_t, size_t>>>
        per_block;  // (vol, lba) -> [(tag, history index)] in order.
    for (size_t i = 0; i < history_.size(); ++i) {
      per_block[{history_[i].vol, history_[i].lba}].emplace_back(
          history_[i].tag, i);
    }
    size_t lo = 0;           // k >= lo.
    size_t hi = SIZE_MAX;    // k < hi.
    for (int v = 0; v < kVolumes; ++v) {
      for (uint64_t lba = 0; lba < kBlocks; ++lba) {
        const std::string blk =
            backup_.GetVolume(svols_[static_cast<size_t>(v)])
                ->store()
                .ReadBlock(lba);
        const uint64_t tag = DecodeFixed64(blk.data());
        auto it = per_block.find({v, lba});
        if (it == per_block.end()) {
          if (tag != 0) {
            return ::testing::AssertionFailure()
                   << "vol " << v << " lba " << lba
                   << " has tag " << tag << " but was never written";
          }
          continue;
        }
        const auto& writes = it->second;
        if (tag == 0) {
          // No write to this block applied: k precedes the first one.
          hi = std::min(hi, writes.front().second + 1);
          continue;
        }
        size_t j = writes.size();
        for (size_t w = 0; w < writes.size(); ++w) {
          if (writes[w].first == tag) {
            j = w;
            break;
          }
        }
        if (j == writes.size()) {
          return ::testing::AssertionFailure()
                 << "vol " << v << " lba " << lba << " has tag " << tag
                 << " which no write to that block ever produced";
        }
        lo = std::max(lo, writes[j].second + 1);
        if (j + 1 < writes.size()) {
          hi = std::min(hi, writes[j + 1].second + 1);
        }
      }
    }
    if (lo >= hi) {
      return ::testing::AssertionFailure()
             << "no single cut satisfies all blocks (lo " << lo << " >= hi "
             << hi << "): the backup mixes two instants — collapsed";
    }
    return ::testing::AssertionSuccess();
  }

  // Tags of every backup block, for determinism comparison.
  std::vector<uint64_t> BackupFingerprint() {
    std::vector<uint64_t> out;
    for (int v = 0; v < kVolumes; ++v) {
      for (uint64_t lba = 0; lba < kBlocks; ++lba) {
        out.push_back(DecodeFixed64(
            backup_.GetVolume(svols_[static_cast<size_t>(v)])
                ->store()
                .ReadBlock(lba)
                .data()));
      }
    }
    return out;
  }

  uint64_t Overflows() {
    auto stats = engine_.GetGroupStats(group_);
    return stats.ok() ? stats->journal_overflows : 0;
  }

  uint64_t FaultsFired() const {
    return schedule_ == nullptr ? 0 : schedule_->faults_fired();
  }

  sim::SimEnvironment env_;
  storage::StorageArray main_;
  storage::StorageArray backup_;
  sim::NetworkLink to_backup_;
  sim::NetworkLink to_main_;
  ReplicationEngine engine_;
  Rng rng_;
  GroupId group_ = 0;
  std::vector<storage::VolumeId> pvols_;
  std::vector<storage::VolumeId> svols_;
  std::vector<PairId> pairs_;
  std::unique_ptr<fault::FaultSchedule> schedule_;
  std::unique_ptr<fault::FaultSchedule> media_schedule_;
  std::unique_ptr<fault::FaultSchedule> rot_schedule_;
  std::vector<WriteEvent> history_;
  uint64_t next_tag_ = 0;
};

// One full scenario: chaos -> heal -> auto-recovery -> more chaos -> fail
// over at a random instant -> mechanical prefix check.
struct ScenarioResult {
  uint64_t overflows = 0;
  uint64_t faults = 0;
  journal::SequenceNumber recovery_point = 0;
  std::vector<uint64_t> fingerprint;
};

ScenarioResult RunScenario(uint64_t seed, bool coalesce = true) {
  ChaosRun run(seed, coalesce);
  ScenarioResult result;

  // Phase 1: sustained chaos, then heal and demand full auto-recovery.
  run.ArmChaos(seed * 101 + 1, Milliseconds(150));
  run.RunWrites(350);
  result.faults = run.FaultsFired();
  run.HealChaos();
  EXPECT_TRUE(run.DrainToConverged()) << "seed " << seed;

  // Phase 2: chaos again; disaster strikes at a random write instant.
  run.ArmChaos(seed * 101 + 7, Milliseconds(200));
  run.RunWrites(30 + static_cast<int>(run.rng_.Uniform(150)));
  result.overflows = run.Overflows();
  FailoverReport report = run.Failover();
  result.recovery_point = report.recovery_point;
  EXPECT_TRUE(run.BackupIsWriteOrderPrefix()) << "seed " << seed;
  result.fingerprint = run.BackupFingerprint();
  return result;
}

// Media-lane scenario: journal media episodes + silent S-VOL bit rot
// under write load, then heal the injectors and let the recovery
// machinery (and, in the repair arm, the scrubber) do its work.
struct MediaScenarioResult {
  uint64_t flips = 0;
  uint64_t journal_media_errors = 0;
  uint64_t mismatches_found = 0;
  uint64_t repairs = 0;
  uint64_t bad_reads = 0;
  bool converged = false;
  std::vector<uint64_t> fingerprint;
};

MediaScenarioResult RunMediaScenario(uint64_t seed, bool scrub) {
  ChaosRun run(seed, /*coalesce=*/true, scrub);
  run.ArmMediaChaos(seed * 211 + 1, Milliseconds(150));
  run.RunWrites(250);
  run.HealMediaChaos();

  MediaScenarioResult r;
  r.converged = static_cast<bool>(run.DrainToConverged());
  r.flips = run.BitFlips();
  r.journal_media_errors =
      run.engine_.primary_journal(run.group_)->media_errors();
  if (const Scrubber* s = run.engine_.scrubber()) {
    r.mismatches_found = s->stats().checksum_mismatches;
    r.repairs = s->stats().repairs_scheduled + s->stats().primary_restores;
  }
  r.bad_reads = run.CountBadReads();

  if (scrub) {
    // Repaired state must still be a write-order prefix (the full one:
    // the group reconverged, so the cut is "all of history").
    EXPECT_TRUE(run.BackupIsWriteOrderPrefix()) << "seed " << seed;
    r.fingerprint = run.BackupFingerprint();
  }
  return r;
}

// The repair arm: every seeded silent flip is caught by the CRC sidecar
// and healed — the application sees zero bad reads and the backup equals
// the primary history. The ablation arm (scrub off) proves the flips were
// real and that without repair they surface only as typed kDataLoss.
TEST(ChaosTest, MediaFaultLaneScrubRepairsAllRotAcrossSeeds) {
  uint64_t total_flips = 0;
  uint64_t total_journal_errors = 0;
  uint64_t total_repairs = 0;
  uint64_t ablation_bad_reads = 0;
  uint64_t ablation_flips = 0;
  for (uint64_t seed : {11, 12, 13, 14, 15, 16, 17, 18}) {
    MediaScenarioResult on = RunMediaScenario(seed, /*scrub=*/true);
    EXPECT_TRUE(on.converged) << "seed " << seed;
    EXPECT_EQ(on.bad_reads, 0u)
        << "seed " << seed << ": scrub left unrepaired rot visible";
    total_flips += on.flips;
    total_journal_errors += on.journal_media_errors;
    total_repairs += on.repairs;

    MediaScenarioResult off = RunMediaScenario(seed, /*scrub=*/false);
    ablation_flips += off.flips;
    ablation_bad_reads += off.bad_reads;
    EXPECT_EQ(off.mismatches_found, 0u);
  }
  // The drill must actually have exercised both media lanes.
  EXPECT_GT(total_flips, 0u) << "no bit rot landed; raise the rot rate";
  EXPECT_GT(total_journal_errors, 0u)
      << "no journal media episode hit an append; raise the episode rate";
  EXPECT_GT(total_repairs, 0u);
  // Ablation: the same rot without repair is detected, never silent.
  EXPECT_GT(ablation_flips, 0u);
  EXPECT_GE(ablation_bad_reads, 1u)
      << "rot without scrub must surface as kDataLoss reads";
}

TEST(ChaosTest, MediaFaultScenarioIsDeterministic) {
  MediaScenarioResult a = RunMediaScenario(14, /*scrub=*/true);
  MediaScenarioResult b = RunMediaScenario(14, /*scrub=*/true);
  EXPECT_EQ(a.flips, b.flips);
  EXPECT_EQ(a.journal_media_errors, b.journal_media_errors);
  EXPECT_EQ(a.mismatches_found, b.mismatches_found);
  EXPECT_EQ(a.repairs, b.repairs);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(ChaosTest, BackupIsWriteOrderPrefixAcrossSeeds) {
  for (bool coalesce : {true, false}) {
    uint64_t total_overflows = 0;
    uint64_t total_faults = 0;
    for (uint64_t seed : {11, 12, 13, 14, 15, 16, 17, 18}) {
      ScenarioResult r = RunScenario(seed, coalesce);
      total_overflows += r.overflows;
      total_faults += r.faults;
    }
    // The drill must actually have exercised the failure paths: injected
    // faults fired and at least one journal overflow occurred somewhere.
    EXPECT_GT(total_faults, 0u) << "coalesce=" << coalesce;
    EXPECT_GE(total_overflows, 1u)
        << "coalesce=" << coalesce
        << ": no seed overflowed the journal; shrink it or lengthen outages";
  }
}

TEST(ChaosTest, ScenarioIsDeterministic) {
  for (bool coalesce : {true, false}) {
    ScenarioResult a = RunScenario(13, coalesce);
    ScenarioResult b = RunScenario(13, coalesce);
    EXPECT_EQ(a.recovery_point, b.recovery_point) << coalesce;
    EXPECT_EQ(a.fingerprint, b.fingerprint) << coalesce;
    EXPECT_EQ(a.overflows, b.overflows) << coalesce;
    EXPECT_EQ(a.faults, b.faults) << coalesce;
  }
}

// The same chaos drill through the database layer: two MiniDb volumes in
// one consistency group under the YCSB-style KV workload; after a mid-
// chaos failover both backup databases must open (WAL recovery on a
// write-order prefix image never sees a torn state).
TEST(ChaosTest, KvWorkloadSurvivesChaosFailover) {
  for (uint64_t seed : {3, 4}) {
    sim::SimEnvironment env;
    storage::StorageArray main(&env, ZeroLatency("MAIN"));
    storage::StorageArray backup(&env, ZeroLatency("BKUP"));
    sim::NetworkLink to_backup(&env, ChaosLink(seed * 7 + 1), "fwd");
    sim::NetworkLink to_main(&env, ChaosLink(seed * 7 + 2), "rev");
    ReplicationEngine engine(&env, &main, &backup, &to_backup, &to_main);

    ConsistencyGroupConfig gcfg;
    gcfg.name = "kv";
    gcfg.journal_capacity_bytes = 1 << 20;
    gcfg.transfer_interval = Milliseconds(1);
    gcfg.ack_timeout = Milliseconds(10);
    gcfg.resync_backoff_initial = Milliseconds(2);
    gcfg.resync_backoff_max = Milliseconds(20);
    auto g = engine.CreateConsistencyGroup(gcfg);
    ASSERT_TRUE(g.ok());

    db::DbOptions opts;
    opts.checkpoint_blocks = 256;
    opts.wal_blocks = 1024;

    std::vector<storage::VolumeId> pvols, svols;
    std::vector<std::unique_ptr<storage::ArrayVolumeDevice>> devices;
    std::vector<std::unique_ptr<db::MiniDb>> dbs;
    for (int v = 0; v < 2; ++v) {
      auto p = main.CreateVolume("kv" + std::to_string(v), 2048);
      auto s = backup.CreateVolume("r-kv" + std::to_string(v), 2048);
      ASSERT_TRUE(p.ok() && s.ok());
      pvols.push_back(*p);
      svols.push_back(*s);
      storage::ArrayVolumeDevice dev(&main, *p);
      ASSERT_TRUE(db::MiniDb::Format(&dev, opts).ok());
    }
    for (int v = 0; v < 2; ++v) {
      auto dev = std::make_unique<storage::ArrayVolumeDevice>(&main,
                                                              pvols[v]);
      auto opened = db::MiniDb::Open(dev.get(), opts);
      ASSERT_TRUE(opened.ok());
      devices.push_back(std::move(dev));
      dbs.push_back(std::move(*opened));
    }

    std::vector<std::unique_ptr<workload::KvWorkload>> loads;
    for (int v = 0; v < 2; ++v) {
      workload::KvWorkloadConfig kcfg;
      kcfg.record_count = 200;
      kcfg.zipf_theta = 0.7;
      kcfg.seed = seed * 13 + static_cast<uint64_t>(v);
      loads.push_back(
          std::make_unique<workload::KvWorkload>(dbs[v].get(), kcfg));
      ASSERT_TRUE(loads[v]->Load().ok());
    }

    // Protect both volumes, ship the base images.
    for (int v = 0; v < 2; ++v) {
      PairConfig pc;
      pc.name = "kvpair" + std::to_string(v);
      pc.primary = pvols[v];
      pc.secondary = svols[v];
      pc.mode = ReplicationMode::kAsynchronous;
      pc.group = *g;
      ASSERT_TRUE(engine.CreatePair(pc).ok());
    }
    env.RunFor(Milliseconds(50));
    ASSERT_TRUE(engine.GroupInitialCopyDone(*g));

    // KV traffic under chaos.
    fault::FaultScheduleConfig fcfg;
    fcfg.seed = seed * 101 + 5;
    fcfg.horizon = Milliseconds(120);
    fcfg.mean_flap_interval = Milliseconds(15);
    fcfg.min_outage = Milliseconds(2);
    fcfg.max_outage = Milliseconds(8);
    fault::FaultSchedule schedule(&env, fcfg);
    schedule.AddLink(&to_backup);
    schedule.AddLink(&to_main);
    schedule.Arm();
    to_backup.set_drop_probability(0.02);
    to_main.set_drop_probability(0.02);

    Rng pace(seed);
    for (int slice = 0; slice < 30; ++slice) {
      for (int v = 0; v < 2; ++v) ASSERT_TRUE(loads[v]->Run(8).ok());
      env.RunFor(static_cast<SimDuration>(
          pace.Uniform(Milliseconds(3)) + Microseconds(200)));
    }

    // Disaster mid-chaos.
    main.SetFailed(true);
    to_backup.SetConnected(false);
    to_main.SetConnected(false);
    ASSERT_TRUE(engine.FailoverGroup(*g).ok());

    for (int v = 0; v < 2; ++v) {
      storage::ArrayVolumeDevice bdev(&backup, svols[v]);
      auto recovered = db::MiniDb::Open(&bdev, opts);
      ASSERT_TRUE(recovered.ok())
          << "seed " << seed << " volume " << v
          << ": backup image failed DB recovery: " << recovered.status();
      EXPECT_LE((*recovered)->RowCount("usertable"),
                loads[v]->key_count())
          << "seed " << seed << " volume " << v;
    }
  }
}

}  // namespace
}  // namespace zerobak::replication
