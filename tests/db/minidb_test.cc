#include "db/minidb.h"

#include <gtest/gtest.h>

#include "block/mem_volume.h"

namespace zerobak::db {
namespace {

DbOptions SmallOptions() {
  DbOptions opts;
  opts.checkpoint_blocks = 64;
  opts.wal_blocks = 128;
  return opts;
}

constexpr uint64_t kDeviceBlocks = 1 + 2 * 64 + 128;

class MiniDbTest : public ::testing::Test {
 protected:
  MiniDbTest() : device_(kDeviceBlocks) {
    EXPECT_TRUE(MiniDb::Format(&device_, SmallOptions()).ok());
  }

  std::unique_ptr<MiniDb> OpenDb() {
    auto db = MiniDb::Open(&device_, SmallOptions());
    EXPECT_TRUE(db.ok()) << db.status();
    return std::move(db).value();
  }

  block::MemVolume device_;
};

TEST_F(MiniDbTest, FormatRequiresEnoughSpace) {
  block::MemVolume tiny(10);
  EXPECT_EQ(MiniDb::Format(&tiny, SmallOptions()).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(MiniDbTest, OpenUnformattedDeviceFails) {
  block::MemVolume raw(kDeviceBlocks);
  EXPECT_EQ(MiniDb::Open(&raw, SmallOptions()).status().code(),
            StatusCode::kDataLoss);
}

TEST_F(MiniDbTest, CommitAndRead) {
  auto db = OpenDb();
  Transaction txn = db->Begin();
  txn.Put("users", "alice", "admin");
  txn.Put("users", "bob", "viewer");
  ASSERT_TRUE(db->Commit(std::move(txn)).ok());

  auto v = db->Get("users", "alice");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "admin");
  EXPECT_TRUE(db->Exists("users", "bob"));
  EXPECT_FALSE(db->Exists("users", "carol"));
  EXPECT_EQ(db->RowCount("users"), 2u);
  EXPECT_EQ(db->committed_txns(), 1u);
  EXPECT_EQ(db->last_lsn(), 1u);
}

TEST_F(MiniDbTest, GetMissingIsNotFound) {
  auto db = OpenDb();
  EXPECT_EQ(db->Get("none", "k").status().code(), StatusCode::kNotFound);
  Transaction txn = db->Begin();
  txn.Put("t", "a", "1");
  ASSERT_TRUE(db->Commit(std::move(txn)).ok());
  EXPECT_EQ(db->Get("t", "missing").status().code(), StatusCode::kNotFound);
}

TEST_F(MiniDbTest, DeleteRemovesRow) {
  auto db = OpenDb();
  Transaction t1 = db->Begin();
  t1.Put("t", "k", "v");
  ASSERT_TRUE(db->Commit(std::move(t1)).ok());
  Transaction t2 = db->Begin();
  t2.Delete("t", "k");
  ASSERT_TRUE(db->Commit(std::move(t2)).ok());
  EXPECT_FALSE(db->Exists("t", "k"));
}

TEST_F(MiniDbTest, EmptyTransactionIsNoop) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Commit(db->Begin()).ok());
  EXPECT_EQ(db->committed_txns(), 0u);
  EXPECT_EQ(db->last_lsn(), 0u);
}

TEST_F(MiniDbTest, TransactionIsAtomicAcrossReopen) {
  {
    auto db = OpenDb();
    Transaction txn = db->Begin();
    txn.Put("a", "k1", "v1");
    txn.Put("b", "k2", "v2");
    ASSERT_TRUE(db->Commit(std::move(txn)).ok());
  }
  auto db = OpenDb();  // Recovery replays the WAL.
  EXPECT_EQ(db->Get("a", "k1").value(), "v1");
  EXPECT_EQ(db->Get("b", "k2").value(), "v2");
  EXPECT_EQ(db->recovered_txns(), 1u);
}

TEST_F(MiniDbTest, ScanReturnsAllRowsSorted) {
  auto db = OpenDb();
  Transaction txn = db->Begin();
  txn.Put("t", "c", "3");
  txn.Put("t", "a", "1");
  txn.Put("t", "b", "2");
  ASSERT_TRUE(db->Commit(std::move(txn)).ok());
  const auto& rows = db->Scan("t");
  ASSERT_EQ(rows.size(), 3u);
  auto it = rows.begin();
  EXPECT_EQ(it->first, "a");
  EXPECT_EQ((++it)->first, "b");
  EXPECT_EQ(db->Scan("missing").size(), 0u);
}

TEST_F(MiniDbTest, ScanPrefix) {
  auto db = OpenDb();
  Transaction txn = db->Begin();
  txn.Put("t", "order-001", "a");
  txn.Put("t", "order-002", "b");
  txn.Put("t", "order-010", "c");
  txn.Put("t", "payment-001", "d");
  txn.Put("t", "mv-001", "e");
  ASSERT_TRUE(db->Commit(std::move(txn)).ok());

  auto orders = db->ScanPrefix("t", "order-");
  ASSERT_EQ(orders.size(), 3u);
  EXPECT_EQ(orders[0].first, "order-001");
  EXPECT_EQ(orders[2].first, "order-010");
  EXPECT_EQ(db->ScanPrefix("t", "order-00").size(), 2u);
  EXPECT_TRUE(db->ScanPrefix("t", "zzz").empty());
  EXPECT_TRUE(db->ScanPrefix("missing", "x").empty());
  // Empty prefix = full scan.
  EXPECT_EQ(db->ScanPrefix("t", "").size(), 5u);
}

TEST_F(MiniDbTest, ListTables) {
  auto db = OpenDb();
  Transaction txn = db->Begin();
  txn.Put("orders", "k", "v");
  txn.Put("stock", "k", "v");
  ASSERT_TRUE(db->Commit(std::move(txn)).ok());
  auto tables = db->ListTables();
  ASSERT_EQ(tables.size(), 2u);
  EXPECT_EQ(tables[0], "orders");
  EXPECT_EQ(tables[1], "stock");
}

TEST_F(MiniDbTest, CheckpointPreservesStateAcrossReopen) {
  {
    auto db = OpenDb();
    for (int i = 0; i < 20; ++i) {
      Transaction txn = db->Begin();
      txn.Put("t", "k" + std::to_string(i), "v" + std::to_string(i));
      ASSERT_TRUE(db->Commit(std::move(txn)).ok());
    }
    ASSERT_TRUE(db->Checkpoint().ok());
    EXPECT_EQ(db->wal_bytes_used(), 0u);
    EXPECT_EQ(db->generation(), 2u);
    // More commits after the checkpoint land in the new WAL generation.
    Transaction txn = db->Begin();
    txn.Put("t", "post", "checkpoint");
    ASSERT_TRUE(db->Commit(std::move(txn)).ok());
  }
  auto db = OpenDb();
  EXPECT_EQ(db->RowCount("t"), 21u);
  EXPECT_EQ(db->Get("t", "post").value(), "checkpoint");
  EXPECT_EQ(db->recovered_txns(), 1u);  // Only the post-checkpoint txn.
}

TEST_F(MiniDbTest, WalFullTriggersAutoCheckpoint) {
  auto db = OpenDb();
  // 128 WAL blocks * 4 KiB = 512 KiB; write until it must have wrapped.
  const std::string value(1000, 'v');
  for (int i = 0; i < 1000; ++i) {
    Transaction txn = db->Begin();
    txn.Put("t", "k" + std::to_string(i % 50), value);
    ASSERT_TRUE(db->Commit(std::move(txn)).ok());
  }
  EXPECT_GT(db->generation(), 1u);  // Auto-checkpoint happened.
  EXPECT_EQ(db->RowCount("t"), 50u);

  // And everything is still recoverable.
  auto reopened = MiniDb::Open(&device_, SmallOptions());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->RowCount("t"), 50u);
}

TEST_F(MiniDbTest, AutoCheckpointDisabledReturnsExhausted) {
  DbOptions opts = SmallOptions();
  opts.auto_checkpoint = false;
  ASSERT_TRUE(MiniDb::Format(&device_, opts).ok());
  auto db = MiniDb::Open(&device_, opts);
  ASSERT_TRUE(db.ok());
  const std::string value(4000, 'v');
  Status last = OkStatus();
  for (int i = 0; i < 1000 && last.ok(); ++i) {
    Transaction txn = (*db)->Begin();
    txn.Put("t", "k" + std::to_string(i), value);
    last = (*db)->Commit(std::move(txn));
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
}

TEST_F(MiniDbTest, ReadOnlyRejectsWrites) {
  {
    auto db = OpenDb();
    Transaction txn = db->Begin();
    txn.Put("t", "k", "v");
    ASSERT_TRUE(db->Commit(std::move(txn)).ok());
  }
  DbOptions opts = SmallOptions();
  opts.read_only = true;
  auto db = MiniDb::Open(&device_, opts);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->Get("t", "k").value(), "v");
  Transaction txn = (*db)->Begin();
  txn.Put("t", "k2", "v2");
  EXPECT_EQ((*db)->Commit(std::move(txn)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*db)->Checkpoint().code(), StatusCode::kFailedPrecondition);
}

TEST_F(MiniDbTest, OverwriteKeepsLatestValue) {
  auto db = OpenDb();
  for (int i = 0; i < 5; ++i) {
    Transaction txn = db->Begin();
    txn.Put("t", "k", "v" + std::to_string(i));
    ASSERT_TRUE(db->Commit(std::move(txn)).ok());
  }
  EXPECT_EQ(db->Get("t", "k").value(), "v4");
  auto reopened = MiniDb::Open(&device_, SmallOptions());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Get("t", "k").value(), "v4");
}

TEST_F(MiniDbTest, LargeValuesSpanBlocks) {
  auto db = OpenDb();
  const std::string big(3 * block::kDefaultBlockSize, 'B');
  Transaction txn = db->Begin();
  txn.Put("t", "big", big);
  ASSERT_TRUE(db->Commit(std::move(txn)).ok());
  EXPECT_EQ(db->Get("t", "big").value(), big);
  auto reopened = MiniDb::Open(&device_, SmallOptions());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Get("t", "big").value(), big);
}

}  // namespace
}  // namespace zerobak::db
