#include "db/format.h"

#include <gtest/gtest.h>

#include "block/block_device.h"

namespace zerobak::db {
namespace {

TEST(SuperblockTest, EncodeDecodeRoundTrip) {
  Superblock sb;
  sb.checkpoint_blocks = 128;
  sb.wal_blocks = 512;
  sb.generation = 7;
  sb.active_slot = 1;
  sb.checkpoint_lsn = 999;
  sb.checkpoint_length = 12345;
  sb.checkpoint_crc = 0xabcdef01;
  const std::string block = sb.Encode(block::kDefaultBlockSize);
  EXPECT_EQ(block.size(), block::kDefaultBlockSize);

  auto decoded = Superblock::Decode(block);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->checkpoint_blocks, 128u);
  EXPECT_EQ(decoded->wal_blocks, 512u);
  EXPECT_EQ(decoded->generation, 7u);
  EXPECT_EQ(decoded->active_slot, 1u);
  EXPECT_EQ(decoded->checkpoint_lsn, 999u);
  EXPECT_EQ(decoded->checkpoint_length, 12345u);
  EXPECT_EQ(decoded->checkpoint_crc, 0xabcdef01u);
}

TEST(SuperblockTest, CorruptionDetected) {
  Superblock sb;
  std::string block = sb.Encode(block::kDefaultBlockSize);
  block[10] ^= 0x1;
  EXPECT_EQ(Superblock::Decode(block).status().code(),
            StatusCode::kDataLoss);
}

TEST(SuperblockTest, ZeroBlockIsNotASuperblock) {
  std::string zeros(block::kDefaultBlockSize, '\0');
  EXPECT_FALSE(Superblock::Decode(zeros).ok());
}

WalRecord SampleRecord() {
  WalRecord rec;
  rec.lsn = 42;
  rec.txn_id = 7;
  rec.generation = 3;
  rec.ops.push_back(Op{OpType::kPut, "orders", "o-1", "{\"x\":1}"});
  rec.ops.push_back(Op{OpType::kDelete, "stock", "item-2", ""});
  return rec;
}

TEST(WalRecordTest, EncodeDecodeRoundTrip) {
  const std::string bytes = SampleRecord().Encode();
  std::string_view in(bytes);
  auto decoded = WalRecord::Decode(&in);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(decoded->lsn, 42u);
  EXPECT_EQ(decoded->txn_id, 7u);
  EXPECT_EQ(decoded->generation, 3u);
  ASSERT_EQ(decoded->ops.size(), 2u);
  EXPECT_EQ(decoded->ops[0].type, OpType::kPut);
  EXPECT_EQ(decoded->ops[0].table, "orders");
  EXPECT_EQ(decoded->ops[0].value, "{\"x\":1}");
  EXPECT_EQ(decoded->ops[1].type, OpType::kDelete);
}

TEST(WalRecordTest, SequentialRecordsParse) {
  std::string log;
  for (int i = 1; i <= 5; ++i) {
    WalRecord rec = SampleRecord();
    rec.lsn = static_cast<uint64_t>(i);
    log += rec.Encode();
  }
  std::string_view in(log);
  for (int i = 1; i <= 5; ++i) {
    auto rec = WalRecord::Decode(&in);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->lsn, static_cast<uint64_t>(i));
  }
  EXPECT_FALSE(WalRecord::Decode(&in).ok());
}

TEST(WalRecordTest, ZeroedTailIsCleanEnd) {
  std::string log = SampleRecord().Encode();
  log += std::string(64, '\0');
  std::string_view in(log);
  ASSERT_TRUE(WalRecord::Decode(&in).ok());
  auto end = WalRecord::Decode(&in);
  EXPECT_EQ(end.status().code(), StatusCode::kNotFound);  // Clean end.
}

TEST(WalRecordTest, TornRecordIsDataLoss) {
  const std::string bytes = SampleRecord().Encode();
  // Cut the record in half — simulating a crash mid-write.
  std::string torn = bytes.substr(0, bytes.size() / 2);
  torn += std::string(64, '\0');
  std::string_view in(torn);
  EXPECT_EQ(WalRecord::Decode(&in).status().code(), StatusCode::kDataLoss);
}

TEST(WalRecordTest, BitFlipIsDataLoss) {
  std::string bytes = SampleRecord().Encode();
  bytes[bytes.size() - 1] ^= 0x10;
  std::string_view in(bytes);
  EXPECT_EQ(WalRecord::Decode(&in).status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointTest, RoundTrip) {
  TableData tables;
  tables["orders"]["o-1"] = "v1";
  tables["orders"]["o-2"] = "v2";
  tables["stock"]["item-1"] = "{\"q\":5}";
  tables["empty"] = {};
  const std::string image = EncodeCheckpoint(tables);
  auto decoded = DecodeCheckpoint(image);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, tables);
}

TEST(CheckpointTest, EmptyDatabase) {
  auto decoded = DecodeCheckpoint(EncodeCheckpoint(TableData{}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(CheckpointTest, TruncationDetected) {
  TableData tables;
  tables["t"]["k"] = "value";
  std::string image = EncodeCheckpoint(tables);
  image.resize(image.size() - 3);
  EXPECT_EQ(DecodeCheckpoint(image).status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace zerobak::db
