// Edge cases and adversarial scenarios for the mini database: stale-log
// resurrection, torn multi-block records, oversized transactions, and
// image-level corruption.
#include <gtest/gtest.h>

#include "block/mem_volume.h"
#include "common/crc32c.h"
#include "db/minidb.h"

namespace zerobak::db {
namespace {

DbOptions Opts() {
  DbOptions o;
  o.checkpoint_blocks = 32;
  o.wal_blocks = 64;
  return o;
}

constexpr uint64_t kBlocks = 1 + 2 * 32 + 64;

class MiniDbEdgeTest : public ::testing::Test {
 protected:
  MiniDbEdgeTest() : device_(kBlocks) {
    EXPECT_TRUE(MiniDb::Format(&device_, Opts()).ok());
  }
  block::MemVolume device_;
};

TEST_F(MiniDbEdgeTest, StaleGenerationRecordsCannotResurrect) {
  {
    auto db = std::move(MiniDb::Open(&device_, Opts())).value();
    // Generation 1: write a secret, then delete it.
    Transaction t1 = db->Begin();
    t1.Put("t", "secret", "v");
    ASSERT_TRUE(db->Commit(std::move(t1)).ok());
    // Checkpoint captures the state WITH the secret; then delete it and
    // checkpoint again: the delete is in the image, the old "put secret"
    // record bytes may still sit in the WAL region.
    ASSERT_TRUE(db->Checkpoint().ok());
    Transaction t2 = db->Begin();
    t2.Delete("t", "secret");
    ASSERT_TRUE(db->Commit(std::move(t2)).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  auto db = MiniDb::Open(&device_, Opts());
  ASSERT_TRUE(db.ok());
  // The stale generation-1/2 WAL leftovers must not replay.
  EXPECT_FALSE((*db)->Exists("t", "secret"));
  EXPECT_EQ((*db)->recovered_txns(), 0u);
}

TEST_F(MiniDbEdgeTest, TornMultiBlockRecordRecoversPrefix) {
  uint64_t committed_before = 0;
  {
    auto db = std::move(MiniDb::Open(&device_, Opts())).value();
    Transaction t1 = db->Begin();
    t1.Put("t", "small", "x");
    ASSERT_TRUE(db->Commit(std::move(t1)).ok());
    committed_before = db->last_lsn();
    // A record spanning several blocks.
    Transaction t2 = db->Begin();
    t2.Put("t", "big", std::string(3 * block::kDefaultBlockSize, 'B'));
    ASSERT_TRUE(db->Commit(std::move(t2)).ok());
  }
  // Tear the big record: zero its last WAL block (as if the final block
  // write never reached the media).
  const uint64_t wal_start = 1 + 2 * 32;
  // Find the last allocated WAL block and zero it.
  uint64_t last = wal_start;
  for (uint64_t b = wal_start; b < wal_start + 64; ++b) {
    if (device_.IsAllocated(b)) last = b;
  }
  ASSERT_TRUE(device_
                  .Write(last, 1,
                         std::string(block::kDefaultBlockSize, '\0'))
                  .ok());

  auto db = MiniDb::Open(&device_, Opts());
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db)->Exists("t", "small"));
  EXPECT_FALSE((*db)->Exists("t", "big"));  // Torn txn rolled away.
  EXPECT_EQ((*db)->last_lsn(), committed_before);

  // And the database keeps working: the WAL tail is reusable.
  Transaction t3 = (*db)->Begin();
  t3.Put("t", "after", "y");
  EXPECT_TRUE((*db)->Commit(std::move(t3)).ok());
}

TEST_F(MiniDbEdgeTest, TransactionLargerThanWalRejected) {
  auto db = std::move(MiniDb::Open(&device_, Opts())).value();
  Transaction txn = db->Begin();
  // 64 WAL blocks = 256 KiB; this value alone exceeds it.
  txn.Put("t", "huge", std::string(300 * 1024, 'H'));
  EXPECT_EQ(db->Commit(std::move(txn)).code(),
            StatusCode::kResourceExhausted);
  // State unchanged and usable.
  EXPECT_FALSE(db->Exists("t", "huge"));
  Transaction ok = db->Begin();
  ok.Put("t", "k", "v");
  EXPECT_TRUE(db->Commit(std::move(ok)).ok());
}

TEST_F(MiniDbEdgeTest, CorruptCheckpointImageDetected) {
  {
    auto db = std::move(MiniDb::Open(&device_, Opts())).value();
    Transaction txn = db->Begin();
    txn.Put("t", "k", "v");
    ASSERT_TRUE(db->Commit(std::move(txn)).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  // Flip a bit in the active checkpoint slot (slot 1 after the first
  // checkpoint, starting at block 1 + 32) — inside the image itself,
  // whose first bytes are the table count and table name.
  std::string block;
  ASSERT_TRUE(device_.Read(1 + 32, 1, &block).ok());
  block[2] ^= 0x1;
  ASSERT_TRUE(device_.Write(1 + 32, 1, block).ok());
  auto db = MiniDb::Open(&device_, Opts());
  EXPECT_EQ(db.status().code(), StatusCode::kDataLoss);
}

TEST_F(MiniDbEdgeTest, EmptyDatabaseCheckpointAndReopen) {
  {
    auto db = std::move(MiniDb::Open(&device_, Opts())).value();
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  auto db = MiniDb::Open(&device_, Opts());
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db)->ListTables().empty());
}

TEST_F(MiniDbEdgeTest, ManyReopensAreIdempotent) {
  {
    auto db = std::move(MiniDb::Open(&device_, Opts())).value();
    Transaction txn = db->Begin();
    txn.Put("t", "k", "v");
    ASSERT_TRUE(db->Commit(std::move(txn)).ok());
  }
  for (int i = 0; i < 5; ++i) {
    auto db = MiniDb::Open(&device_, Opts());
    ASSERT_TRUE(db.ok()) << "reopen " << i;
    EXPECT_EQ((*db)->Get("t", "k").value(), "v");
    EXPECT_EQ((*db)->RowCount("t"), 1u);
  }
}

TEST_F(MiniDbEdgeTest, DeleteOfMissingKeyIsHarmless) {
  auto db = std::move(MiniDb::Open(&device_, Opts())).value();
  Transaction txn = db->Begin();
  txn.Delete("ghost-table", "ghost-key");
  EXPECT_TRUE(db->Commit(std::move(txn)).ok());
  EXPECT_EQ(db->RowCount("ghost-table"), 0u);
}

TEST_F(MiniDbEdgeTest, BinaryKeysAndValuesSurvive) {
  std::string key("k\0ey", 4);
  std::string value;
  for (int i = 0; i < 256; ++i) value.push_back(static_cast<char>(i));
  {
    auto db = std::move(MiniDb::Open(&device_, Opts())).value();
    Transaction txn = db->Begin();
    txn.Put("bin", key, value);
    ASSERT_TRUE(db->Commit(std::move(txn)).ok());
  }
  auto db = MiniDb::Open(&device_, Opts());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->Get("bin", key).value(), value);
}

class WalSizeTest : public ::testing::TestWithParam<uint64_t> {};

// Property sweep: the WAL-full/auto-checkpoint machinery works at any
// WAL size that fits a record.
TEST_P(WalSizeTest, SustainedWritesAtAnyWalSize) {
  DbOptions opts;
  opts.checkpoint_blocks = 32;
  opts.wal_blocks = GetParam();
  block::MemVolume device(1 + 2 * 32 + GetParam());
  ASSERT_TRUE(MiniDb::Format(&device, opts).ok());
  auto db = std::move(MiniDb::Open(&device, opts)).value();
  for (int i = 0; i < 300; ++i) {
    Transaction txn = db->Begin();
    txn.Put("t", "k" + std::to_string(i % 20), std::string(500, 'v'));
    ASSERT_TRUE(db->Commit(std::move(txn)).ok()) << "i=" << i;
  }
  EXPECT_EQ(db->RowCount("t"), 20u);
  auto reopened = MiniDb::Open(&device, opts);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->RowCount("t"), 20u);
}

INSTANTIATE_TEST_SUITE_P(WalSizes, WalSizeTest,
                         ::testing::Values(2, 4, 16, 64, 256));

}  // namespace
}  // namespace zerobak::db
