// Crash-recovery property tests: the database must recover a
// transaction-consistent state from EVERY write-prefix image of its
// volume. This is the single-volume version of the paper's ack-ordering
// argument (Section I): storage that preserves the order of acknowledged
// writes always presents a recoverable image.
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "block/mem_volume.h"
#include "common/logging.h"
#include "db/minidb.h"

namespace zerobak::db {
namespace {

// Wraps a MemVolume and logs every block write so the test can rebuild
// the exact device image after any prefix of writes — i.e. simulate a
// crash between any two acknowledged writes.
class WriteLogDevice : public block::BlockDevice {
 public:
  explicit WriteLogDevice(uint64_t blocks)
      : store_(blocks), base_(blocks) {}

  uint32_t block_size() const override { return store_.block_size(); }
  uint64_t block_count() const override { return store_.block_count(); }

  Status Read(block::Lba lba, uint32_t count, std::string* out) override {
    return store_.Read(lba, count, out);
  }

  Status Write(block::Lba lba, uint32_t count,
               std::string_view data) override {
    ZB_RETURN_IF_ERROR(store_.Write(lba, count, data));
    if (logging_) log_.emplace_back(lba, std::string(data));
    return OkStatus();
  }

  void StartLogging() {
    ZB_CHECK(base_.CloneFrom(store_).ok());
    logging_ = true;
  }

  size_t write_count() const { return log_.size(); }

  // Device image after the first `prefix` logged writes.
  std::unique_ptr<block::MemVolume> ImageAfter(size_t prefix) const {
    auto img = std::make_unique<block::MemVolume>(store_.block_count(),
                                                  store_.block_size());
    ZB_CHECK(img->CloneFrom(base_).ok());
    for (size_t i = 0; i < prefix && i < log_.size(); ++i) {
      const auto& [lba, data] = log_[i];
      ZB_CHECK(img->Write(lba,
                          static_cast<uint32_t>(data.size() /
                                                store_.block_size()),
                          data)
                   .ok());
    }
    return img;
  }

 private:
  block::MemVolume store_;
  block::MemVolume base_;
  bool logging_ = false;
  std::vector<std::pair<block::Lba, std::string>> log_;
};

DbOptions Opts() {
  DbOptions o;
  o.checkpoint_blocks = 32;
  o.wal_blocks = 64;
  return o;
}

constexpr uint64_t kBlocks = 1 + 2 * 32 + 64;

TEST(CrashRecoveryTest, EveryWritePrefixRecoversExactCommittedSet) {
  WriteLogDevice dev(kBlocks);
  ASSERT_TRUE(MiniDb::Format(&dev, Opts()).ok());
  dev.StartLogging();

  // committed_at[w] = number of committed txns after the first w writes.
  std::map<size_t, int> committed_at;
  committed_at[0] = 0;
  {
    auto db = MiniDb::Open(&dev, Opts());
    ASSERT_TRUE(db.ok());
    for (int i = 1; i <= 40; ++i) {
      Transaction txn = (*db)->Begin();
      txn.Put("t", "k" + std::to_string(i), "value-" + std::to_string(i));
      ASSERT_TRUE((*db)->Commit(std::move(txn)).ok());
      committed_at[dev.write_count()] = i;
    }
  }

  // Crash after EVERY single acknowledged write.
  int last_committed = 0;
  for (size_t w = 0; w <= dev.write_count(); ++w) {
    if (committed_at.contains(w)) last_committed = committed_at[w];
    auto image = dev.ImageAfter(w);
    auto recovered = MiniDb::Open(image.get(), Opts());
    ASSERT_TRUE(recovered.ok())
        << "prefix " << w << " unrecoverable: " << recovered.status();
    const size_t rows = (*recovered)->RowCount("t");
    EXPECT_EQ(rows, static_cast<size_t>(last_committed))
        << "prefix " << w << ": durability mismatch";
    // The recovered rows must be exactly the first `rows` keys.
    for (int i = 1; i <= static_cast<int>(rows); ++i) {
      EXPECT_TRUE((*recovered)->Exists("t", "k" + std::to_string(i)))
          << "prefix " << w << " lost txn " << i;
    }
  }
}

TEST(CrashRecoveryTest, CrashDuringCheckpointRecoversFromEitherSide) {
  WriteLogDevice dev(kBlocks);
  ASSERT_TRUE(MiniDb::Format(&dev, Opts()).ok());
  dev.StartLogging();

  size_t checkpoint_start = 0;
  size_t checkpoint_end = 0;
  {
    auto db = MiniDb::Open(&dev, Opts());
    ASSERT_TRUE(db.ok());
    for (int i = 1; i <= 10; ++i) {
      Transaction txn = (*db)->Begin();
      txn.Put("t", "k" + std::to_string(i), "v");
      ASSERT_TRUE((*db)->Commit(std::move(txn)).ok());
    }
    checkpoint_start = dev.write_count();
    ASSERT_TRUE((*db)->Checkpoint().ok());
    checkpoint_end = dev.write_count();
  }

  // A crash anywhere inside the checkpoint window must still recover all
  // ten transactions (from the old image+WAL or from the new image).
  for (size_t w = checkpoint_start; w <= checkpoint_end; ++w) {
    auto image = dev.ImageAfter(w);
    auto recovered = MiniDb::Open(image.get(), Opts());
    ASSERT_TRUE(recovered.ok()) << "mid-checkpoint prefix " << w;
    EXPECT_EQ((*recovered)->RowCount("t"), 10u)
        << "mid-checkpoint prefix " << w;
  }
}

TEST(CrashRecoveryTest, MixedPutsAndDeletesRecoverConsistently) {
  WriteLogDevice dev(kBlocks);
  ASSERT_TRUE(MiniDb::Format(&dev, Opts()).ok());
  dev.StartLogging();

  // Model: replay the logical ops alongside, and compare at crash points.
  std::map<size_t, std::map<std::string, std::string>> model_at;
  {
    auto db = MiniDb::Open(&dev, Opts());
    ASSERT_TRUE(db.ok());
    std::map<std::string, std::string> model;
    for (int i = 0; i < 30; ++i) {
      Transaction txn = (*db)->Begin();
      const std::string key = "k" + std::to_string(i % 7);
      if (i % 3 == 2) {
        txn.Delete("t", key);
        model.erase(key);
      } else {
        txn.Put("t", key, "v" + std::to_string(i));
        model[key] = "v" + std::to_string(i);
      }
      ASSERT_TRUE((*db)->Commit(std::move(txn)).ok());
      model_at[dev.write_count()] = model;
    }
  }

  for (const auto& [w, model] : model_at) {
    auto image = dev.ImageAfter(w);
    auto recovered = MiniDb::Open(image.get(), Opts());
    ASSERT_TRUE(recovered.ok());
    const auto& rows = (*recovered)->Scan("t");
    EXPECT_EQ(rows, model) << "at write " << w;
  }
}

}  // namespace
}  // namespace zerobak::db
