// At-rest integrity scrubber: detect -> dirty-mark -> resync -> re-verify
// for secondary rot, direct restore for primary rot, deferral while
// un-replicated writes exist, and the journal media-error suspension path.
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "replication/replication.h"
#include "replication/scrubber.h"
#include "storage/array.h"

namespace zerobak::replication {
namespace {

std::string BlockOf(char c) {
  return std::string(block::kDefaultBlockSize, c);
}

storage::ArrayConfig ZeroLatency(const std::string& serial) {
  storage::ArrayConfig cfg;
  cfg.serial = serial;
  cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  return cfg;
}

class ScrubberTest : public ::testing::Test {
 protected:
  ScrubberTest()
      : main_(&env_, ZeroLatency("MAIN")),
        backup_(&env_, ZeroLatency("BKUP")),
        to_backup_(&env_, LinkConfig(1), "fwd"),
        to_main_(&env_, LinkConfig(2), "rev"),
        engine_(&env_, &main_, &backup_, &to_backup_, &to_main_) {}

  static sim::NetworkLinkConfig LinkConfig(uint64_t seed) {
    sim::NetworkLinkConfig cfg;
    cfg.base_latency = Milliseconds(5);
    cfg.jitter = 0;
    cfg.bandwidth_bytes_per_sec = 0;
    cfg.seed = seed;
    return cfg;
  }

  // Tight pacing so a full pass over the tiny test volumes completes in a
  // few simulated milliseconds.
  static ScrubConfig FastScrub(bool repair = true) {
    ScrubConfig cfg;
    cfg.extent_blocks = 16;
    cfg.max_extents_per_step = 64;
    cfg.step_interval = Milliseconds(1);
    cfg.cycle_interval = Milliseconds(5);
    cfg.repair = repair;
    return cfg;
  }

  std::pair<storage::VolumeId, storage::VolumeId> MakeVolumes(
      const std::string& name, uint64_t blocks = 64) {
    auto p = main_.CreateVolume(name, blocks);
    auto s = backup_.CreateVolume("r-" + name, blocks);
    EXPECT_TRUE(p.ok() && s.ok());
    return {*p, *s};
  }

  GroupId MakeGroup() {
    ConsistencyGroupConfig cfg;
    cfg.name = "cg";
    cfg.journal_capacity_bytes = 16 << 20;
    cfg.ack_timeout = Milliseconds(20);
    cfg.resync_backoff_initial = Milliseconds(5);
    cfg.resync_backoff_max = Milliseconds(50);
    auto g = engine_.CreateConsistencyGroup(cfg);
    EXPECT_TRUE(g.ok());
    return *g;
  }

  PairId MakeAsyncPair(storage::VolumeId p, storage::VolumeId s,
                       GroupId group) {
    PairConfig cfg;
    cfg.name = "pair";
    cfg.primary = p;
    cfg.secondary = s;
    cfg.mode = ReplicationMode::kAsynchronous;
    cfg.group = group;
    auto id = engine_.CreatePair(cfg);
    EXPECT_TRUE(id.ok()) << id.status();
    return id.ok() ? *id : 0;
  }

  // Converged pair with a few replicated blocks, scrubbing not yet on.
  struct Rig {
    storage::VolumeId p;
    storage::VolumeId s;
    GroupId group;
    PairId pair;
  };
  Rig ConvergedRig() {
    Rig rig;
    std::tie(rig.p, rig.s) = MakeVolumes("v");
    rig.group = MakeGroup();
    rig.pair = MakeAsyncPair(rig.p, rig.s, rig.group);
    for (uint64_t lba = 0; lba < 8; ++lba) {
      EXPECT_TRUE(
          main_.WriteSync(rig.p, lba, BlockOf(char('a' + lba))).ok());
    }
    env_.RunFor(Milliseconds(50));
    EXPECT_TRUE(Converged(rig.p, rig.s));
    return rig;
  }

  bool Converged(storage::VolumeId p, storage::VolumeId s) {
    return main_.GetVolume(p)->ContentEquals(*backup_.GetVolume(s));
  }

  sim::SimEnvironment env_;
  storage::StorageArray main_;
  storage::StorageArray backup_;
  sim::NetworkLink to_backup_;
  sim::NetworkLink to_main_;
  ReplicationEngine engine_;
};

TEST_F(ScrubberTest, EnableScrubbingIsIdempotentlyRejected) {
  EXPECT_EQ(engine_.scrubber(), nullptr);
  ASSERT_TRUE(engine_.EnableScrubbing(FastScrub()).ok());
  ASSERT_NE(engine_.scrubber(), nullptr);
  EXPECT_EQ(engine_.EnableScrubbing(FastScrub()).code(),
            StatusCode::kFailedPrecondition);
}

// Silent bit rot on the S-VOL: the CRC sidecar catches it, the extent is
// dirty-marked, the group suspends with kScrubRepair, auto-resync ships
// the clean primary copy, and the secondary reads clean again.
TEST_F(ScrubberTest, SecondaryRotIsDetectedAndRepaired) {
  Rig rig = ConvergedRig();
  ASSERT_TRUE(backup_.GetVolume(rig.s)->store().FlipBit(3, 12345));
  // The rot is silent until looked at: a verified read now fails.
  std::string out;
  EXPECT_EQ(backup_.GetVolume(rig.s)->Read(3, 1, &out).code(),
            StatusCode::kDataLoss);

  ASSERT_TRUE(engine_.EnableScrubbing(FastScrub()).ok());
  env_.RunFor(Milliseconds(300));

  const ScrubStats& st = engine_.scrubber()->stats();
  EXPECT_GE(st.cycles_completed, 1u);
  EXPECT_GE(st.checksum_mismatches, 1u);
  EXPECT_GE(st.repairs_scheduled, 1u);
  EXPECT_TRUE(Converged(rig.p, rig.s));
  EXPECT_TRUE(backup_.GetVolume(rig.s)->Read(3, 1, &out).ok());
  // Healed and re-paired, not left suspended.
  auto stats = engine_.GetGroupStats(rig.group);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->suspended);
  EXPECT_EQ(engine_.GetPair(rig.pair)->state(), PairState::kPaired);
}

// Rot on the P-VOL with a clean replica: the scrubber restores the extent
// from the secondary directly (resync would have shipped the rot).
TEST_F(ScrubberTest, PrimaryRotIsRestoredFromCleanSecondary) {
  Rig rig = ConvergedRig();
  ASSERT_TRUE(main_.GetVolume(rig.p)->store().FlipBit(5, 999));
  std::string out;
  EXPECT_EQ(main_.GetVolume(rig.p)->Read(5, 1, &out).code(),
            StatusCode::kDataLoss);

  ASSERT_TRUE(engine_.EnableScrubbing(FastScrub()).ok());
  env_.RunFor(Milliseconds(300));

  const ScrubStats& st = engine_.scrubber()->stats();
  EXPECT_GE(st.checksum_mismatches, 1u);
  EXPECT_GE(st.primary_restores, 1u);
  EXPECT_TRUE(main_.GetVolume(rig.p)->Read(5, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('f'));
  EXPECT_TRUE(Converged(rig.p, rig.s));
}

// Rot on both copies of the same extent: nothing trustworthy remains, the
// scrubber counts it and must not "repair" by propagating bad bytes.
TEST_F(ScrubberTest, RotOnBothSidesIsUnrecoverable) {
  Rig rig = ConvergedRig();
  ASSERT_TRUE(main_.GetVolume(rig.p)->store().FlipBit(2, 7));
  ASSERT_TRUE(backup_.GetVolume(rig.s)->store().FlipBit(2, 7000));

  ASSERT_TRUE(engine_.EnableScrubbing(FastScrub()).ok());
  env_.RunFor(Milliseconds(300));

  const ScrubStats& st = engine_.scrubber()->stats();
  EXPECT_GE(st.unrecoverable_extents, 1u);
  EXPECT_EQ(st.repairs_scheduled, 0u);
  EXPECT_EQ(st.primary_restores, 0u);
  std::string out;
  EXPECT_EQ(main_.GetVolume(rig.p)->Read(2, 1, &out).code(),
            StatusCode::kDataLoss);
}

// The E15 ablation arm: repair=false detects and counts but changes no
// state — the rot stays, the pair stays paired, nothing is dirty-marked.
TEST_F(ScrubberTest, DetectOnlyModeCountsWithoutRepairing) {
  Rig rig = ConvergedRig();
  ASSERT_TRUE(backup_.GetVolume(rig.s)->store().FlipBit(1, 42));

  ASSERT_TRUE(engine_.EnableScrubbing(FastScrub(/*repair=*/false)).ok());
  env_.RunFor(Milliseconds(300));

  const ScrubStats& st = engine_.scrubber()->stats();
  EXPECT_GE(st.cycles_completed, 2u);
  EXPECT_GE(st.checksum_mismatches, 2u) << "re-detected every cycle";
  EXPECT_EQ(st.repairs_scheduled, 0u);
  EXPECT_EQ(engine_.GetPair(rig.pair)->dirty_blocks(), 0u);
  std::string out;
  EXPECT_EQ(backup_.GetVolume(rig.s)->Read(1, 1, &out).code(),
            StatusCode::kDataLoss);
}

// A primary restore must never clobber data the journal has not shipped:
// while the group is suspended with writes pending, the repair is
// deferred, and it completes on a later cycle once the group is quiescent.
TEST_F(ScrubberTest, PrimaryRestoreDeferredUntilQuiescent) {
  Rig rig = ConvergedRig();
  ASSERT_TRUE(engine_.SuspendGroup(rig.group).ok());
  ASSERT_TRUE(main_.WriteSync(rig.p, 20, BlockOf('n')).ok());
  ASSERT_TRUE(main_.GetVolume(rig.p)->store().FlipBit(5, 999));

  ASSERT_TRUE(engine_.EnableScrubbing(FastScrub()).ok());
  env_.RunFor(Milliseconds(50));
  EXPECT_GE(engine_.scrubber()->stats().deferred_repairs, 1u);
  EXPECT_EQ(engine_.scrubber()->stats().primary_restores, 0u);

  // Operator resyncs; the group drains and the next cycle restores.
  ASSERT_TRUE(engine_.ResyncGroup(rig.group).ok());
  env_.RunFor(Milliseconds(300));
  EXPECT_GE(engine_.scrubber()->stats().primary_restores, 1u);
  std::string out;
  EXPECT_TRUE(main_.GetVolume(rig.p)->Read(5, 1, &out).ok());
  EXPECT_TRUE(Converged(rig.p, rig.s));
}

// Journal media failure: the next append fails with kDataLoss, the group
// suspends with kMediaError, writes keep landing on the primary (host IO
// is never failed), and once the media heals auto-resync reconverges.
TEST_F(ScrubberTest, JournalMediaErrorSuspendsAndHeals) {
  Rig rig = ConvergedRig();
  journal::JournalVolume* jnl = engine_.primary_journal(rig.group);
  ASSERT_NE(jnl, nullptr);

  jnl->SetMediaError(true);
  ASSERT_TRUE(main_.WriteSync(rig.p, 30, BlockOf('m')).ok())
      << "host write must survive a journal media error";
  env_.RunFor(Milliseconds(10));

  auto stats = engine_.GetGroupStats(rig.group);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->suspended);
  EXPECT_EQ(stats->suspend_reason, SuspendReason::kMediaError);
  EXPECT_GE(jnl->media_errors(), 1u);
  EXPECT_FALSE(Converged(rig.p, rig.s));

  // While the media is bad every auto-resync attempt re-suspends; after
  // healing, the dirty-marked delta ships and the pair re-pairs.
  jnl->SetMediaError(false);
  env_.RunFor(Milliseconds(500));
  stats = engine_.GetGroupStats(rig.group);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->suspended);
  EXPECT_EQ(engine_.GetPair(rig.pair)->state(), PairState::kPaired);
  EXPECT_TRUE(Converged(rig.p, rig.s));
}

// Media-error episodes on a data volume: reads fail while armed, the
// scrubber counts them, and after the episode ends a pass reports clean.
TEST_F(ScrubberTest, DataVolumeMediaEpisodeIsCountedAndClears) {
  Rig rig = ConvergedRig();
  ASSERT_TRUE(engine_.EnableScrubbing(FastScrub()).ok());
  env_.RunFor(Milliseconds(50));
  ASSERT_EQ(engine_.scrubber()->stats().media_errors, 0u);

  backup_.GetVolume(rig.s)->store().SetMediaError(1.0, 77);
  env_.RunFor(Milliseconds(50));
  EXPECT_GE(engine_.scrubber()->stats().media_errors, 1u);

  backup_.GetVolume(rig.s)->store().SetMediaError(0.0, 0);
  env_.RunFor(Milliseconds(300));
  // Once healed the data underneath was never damaged (the gate fails
  // reads, it does not scribble), so the system converges back.
  EXPECT_TRUE(Converged(rig.p, rig.s));
  auto stats = engine_.GetGroupStats(rig.group);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->suspended);
}

// Determinism: identical runs produce identical scrub stats.
TEST_F(ScrubberTest, ScrubRunIsDeterministic) {
  auto run = [](uint64_t /*unused*/) {
    sim::SimEnvironment env;
    storage::StorageArray main(&env, ZeroLatency("MAIN"));
    storage::StorageArray backup(&env, ZeroLatency("BKUP"));
    sim::NetworkLink fwd(&env, LinkConfig(1), "fwd");
    sim::NetworkLink rev(&env, LinkConfig(2), "rev");
    ReplicationEngine engine(&env, &main, &backup, &fwd, &rev);
    auto p = main.CreateVolume("v", 64);
    auto s = backup.CreateVolume("r-v", 64);
    ConsistencyGroupConfig gcfg;
    gcfg.name = "cg";
    gcfg.journal_capacity_bytes = 16 << 20;
    auto g = engine.CreateConsistencyGroup(gcfg);
    PairConfig pcfg;
    pcfg.name = "pair";
    pcfg.primary = *p;
    pcfg.secondary = *s;
    pcfg.mode = ReplicationMode::kAsynchronous;
    pcfg.group = *g;
    (void)engine.CreatePair(pcfg);
    for (uint64_t lba = 0; lba < 8; ++lba) {
      (void)main.WriteSync(*p, lba, BlockOf(char('a' + lba)));
    }
    env.RunFor(Milliseconds(50));
    backup.GetVolume(*s)->store().FlipBit(3, 12345);
    (void)engine.EnableScrubbing(FastScrub());
    env.RunFor(Milliseconds(300));
    const ScrubStats& st = engine.scrubber()->stats();
    return std::make_tuple(st.cycles_completed, st.extents_scanned,
                           st.blocks_scanned, st.checksum_mismatches,
                           st.repairs_scheduled);
  };
  EXPECT_EQ(run(0), run(1));
}

}  // namespace
}  // namespace zerobak::replication
