// Control-plane error paths: every mistaken or stale operator action —
// deleting twice, addressing an unknown id, pairing into a deleted group,
// driving group verbs at a standalone sync pair — must come back with a
// pinned StatusCode, not a crash, a silent no-op, or a code that shifts
// between releases. Consoles and the CSI controller branch on these codes.
#include <gtest/gtest.h>

#include "replication/replication.h"
#include "storage/array.h"

namespace zerobak::replication {
namespace {

storage::ArrayConfig ZeroLatency(const std::string& serial) {
  storage::ArrayConfig cfg;
  cfg.serial = serial;
  cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  return cfg;
}

class ControlPlaneTest : public ::testing::Test {
 protected:
  ControlPlaneTest()
      : main_(&env_, ZeroLatency("MAIN")),
        backup_(&env_, ZeroLatency("BKUP")),
        to_backup_(&env_, LinkConfig(1), "fwd"),
        to_main_(&env_, LinkConfig(2), "rev"),
        engine_(&env_, &main_, &backup_, &to_backup_, &to_main_) {}

  static sim::NetworkLinkConfig LinkConfig(uint64_t seed) {
    sim::NetworkLinkConfig cfg;
    cfg.base_latency = Milliseconds(1);
    cfg.jitter = 0;
    cfg.bandwidth_bytes_per_sec = 0;
    cfg.seed = seed;
    return cfg;
  }

  std::pair<storage::VolumeId, storage::VolumeId> MakeVolumes(
      const std::string& name, uint64_t blocks = 64) {
    auto p = main_.CreateVolume(name, blocks);
    auto s = backup_.CreateVolume("r-" + name, blocks);
    EXPECT_TRUE(p.ok() && s.ok());
    return {*p, *s};
  }

  GroupId MakeGroup(const std::string& name = "cg") {
    auto g = engine_.CreateConsistencyGroup({.name = name});
    EXPECT_TRUE(g.ok());
    return *g;
  }

  PairId MakePair(storage::VolumeId p, storage::VolumeId s, GroupId group) {
    PairConfig cfg;
    cfg.primary = p;
    cfg.secondary = s;
    cfg.mode = group == 0 ? ReplicationMode::kSynchronous
                          : ReplicationMode::kAsynchronous;
    cfg.group = group;
    auto id = engine_.CreatePair(cfg);
    EXPECT_TRUE(id.ok()) << id.status();
    return id.ok() ? *id : 0;
  }

  sim::SimEnvironment env_;
  storage::StorageArray main_;
  storage::StorageArray backup_;
  sim::NetworkLink to_backup_;
  sim::NetworkLink to_main_;
  ReplicationEngine engine_;
};

constexpr GroupId kNoSuchGroup = 777;
constexpr PairId kNoSuchPair = 777;

TEST_F(ControlPlaneTest, CreatePairModeGroupRulesArePinned) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();

  // An async pair without a group has no journal to ride on.
  PairConfig async_no_group;
  async_no_group.primary = p;
  async_no_group.secondary = s;
  async_no_group.mode = ReplicationMode::kAsynchronous;
  EXPECT_EQ(engine_.CreatePair(async_no_group).status().code(),
            StatusCode::kInvalidArgument);

  // A sync pair with a group is a contradiction: sync pairs are standalone.
  PairConfig sync_with_group;
  sync_with_group.primary = p;
  sync_with_group.secondary = s;
  sync_with_group.mode = ReplicationMode::kSynchronous;
  sync_with_group.group = g;
  EXPECT_EQ(engine_.CreatePair(sync_with_group).status().code(),
            StatusCode::kInvalidArgument);

  // Neither rejection consumed the volumes.
  EXPECT_NE(MakePair(p, s, g), 0u);
}

TEST_F(ControlPlaneTest, UnknownGroupIdIsNotFoundEverywhere) {
  EXPECT_EQ(engine_.DeleteConsistencyGroup(kNoSuchGroup).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine_.GetGroupStats(kNoSuchGroup).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine_.SuspendGroup(kNoSuchGroup).code(), StatusCode::kNotFound);
  EXPECT_EQ(engine_.ResyncGroup(kNoSuchGroup).code(), StatusCode::kNotFound);
  EXPECT_EQ(engine_.FailoverGroup(kNoSuchGroup).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine_.FailbackGroup(kNoSuchGroup).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ControlPlaneTest, UnknownPairIdIsNotFoundEverywhere) {
  EXPECT_EQ(engine_.DeletePair(kNoSuchPair).code(), StatusCode::kNotFound);
  EXPECT_EQ(engine_.SuspendSyncPair(kNoSuchPair).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine_.ResyncSyncPair(kNoSuchPair).code(),
            StatusCode::kNotFound);
}

TEST_F(ControlPlaneTest, DeleteTwiceSecondIsNotFound) {
  GroupId g = MakeGroup();
  EXPECT_TRUE(engine_.DeleteConsistencyGroup(g).ok());
  EXPECT_EQ(engine_.DeleteConsistencyGroup(g).code(), StatusCode::kNotFound);

  auto [p, s] = MakeVolumes("v");
  PairId pair = MakePair(p, s, /*group=*/0);
  env_.RunFor(Milliseconds(10));
  EXPECT_TRUE(engine_.DeletePair(pair).ok());
  EXPECT_EQ(engine_.DeletePair(pair).code(), StatusCode::kNotFound);
}

TEST_F(ControlPlaneTest, PairIntoDeletedGroupIsNotFound) {
  GroupId g = MakeGroup();
  ASSERT_TRUE(engine_.DeleteConsistencyGroup(g).ok());
  auto [p, s] = MakeVolumes("v");
  PairConfig cfg;
  cfg.primary = p;
  cfg.secondary = s;
  cfg.mode = ReplicationMode::kAsynchronous;
  cfg.group = g;
  EXPECT_EQ(engine_.CreatePair(cfg).status().code(), StatusCode::kNotFound);
}

TEST_F(ControlPlaneTest, GroupWithPairsRefusesDeletion) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  PairId pair = MakePair(p, s, g);
  env_.RunFor(Milliseconds(10));
  EXPECT_EQ(engine_.DeleteConsistencyGroup(g).code(),
            StatusCode::kFailedPrecondition);
  // Draining the pairs makes the deletion legal again.
  ASSERT_TRUE(engine_.DeletePair(pair).ok());
  EXPECT_TRUE(engine_.DeleteConsistencyGroup(g).ok());
}

TEST_F(ControlPlaneTest, SyncPairVerbsRejectAsyncPairs) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  PairId async_pair = MakePair(p, s, g);
  env_.RunFor(Milliseconds(10));
  EXPECT_EQ(engine_.SuspendSyncPair(async_pair).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine_.ResyncSyncPair(async_pair).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ControlPlaneTest, ResyncOfHealthySyncPairIsFailedPrecondition) {
  auto [p, s] = MakeVolumes("v");
  PairId pair = MakePair(p, s, /*group=*/0);
  env_.RunFor(Milliseconds(10));
  ASSERT_EQ(engine_.GetPair(pair)->state(), PairState::kPaired);
  EXPECT_EQ(engine_.ResyncSyncPair(pair).code(),
            StatusCode::kFailedPrecondition);
  // Suspend -> resync is the legal sequence.
  ASSERT_TRUE(engine_.SuspendSyncPair(pair).ok());
  EXPECT_TRUE(engine_.ResyncSyncPair(pair).ok());
}

TEST_F(ControlPlaneTest, FailedOverGroupRejectsForwardVerbs) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  MakePair(p, s, g);
  env_.RunFor(Milliseconds(10));
  ASSERT_TRUE(engine_.FailoverGroup(g).ok());

  EXPECT_EQ(engine_.SuspendGroup(g).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine_.ResyncGroup(g).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine_.FailoverGroup(g).status().code(),
            StatusCode::kFailedPrecondition);
  // New pairs cannot join a failed-over group either.
  auto [p2, s2] = MakeVolumes("w");
  PairConfig cfg;
  cfg.primary = p2;
  cfg.secondary = s2;
  cfg.mode = ReplicationMode::kAsynchronous;
  cfg.group = g;
  EXPECT_EQ(engine_.CreatePair(cfg).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ControlPlaneTest, FailbackOfForwardGroupIsFailedPrecondition) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  MakePair(p, s, g);
  env_.RunFor(Milliseconds(10));
  EXPECT_EQ(engine_.FailbackGroup(g).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ControlPlaneTest, GroupConfigValidationIsPinned) {
  // Each knob violation maps to kInvalidArgument at creation time; the
  // runtime clamp (Normalized) no longer masks operator typos.
  ConsistencyGroupConfig bad;
  bad.name = "bad";
  bad.transfer_interval = 0;
  EXPECT_EQ(engine_.CreateConsistencyGroup(bad).status().code(),
            StatusCode::kInvalidArgument);

  bad = {};
  bad.name = "bad";
  bad.journal_capacity_bytes = 0;
  EXPECT_EQ(engine_.CreateConsistencyGroup(bad).status().code(),
            StatusCode::kInvalidArgument);

  bad = {};
  bad.name = "bad";
  bad.enable_adaptive_batching = true;
  bad.transfer_batch_min_bytes = 1 << 20;
  bad.transfer_batch_max_bytes = 1 << 10;  // max < min
  EXPECT_EQ(engine_.CreateConsistencyGroup(bad).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace zerobak::replication
