// Failback (giveback) tests: after a disaster-recovery takeover, the
// business runs on the backup site; once the main site is repaired, the
// delta ships back and forward replication resumes.
#include <gtest/gtest.h>

#include "replication/replication.h"
#include "storage/array.h"

namespace zerobak::replication {
namespace {

std::string BlockOf(char c) {
  return std::string(block::kDefaultBlockSize, c);
}

storage::ArrayConfig ZeroLatency(const std::string& serial) {
  storage::ArrayConfig cfg;
  cfg.serial = serial;
  cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  return cfg;
}

class FailbackTest : public ::testing::Test {
 protected:
  FailbackTest()
      : main_(&env_, ZeroLatency("MAIN")),
        backup_(&env_, ZeroLatency("BKUP")),
        to_backup_(&env_, LinkConfig(), "fwd"),
        to_main_(&env_, LinkConfig(), "rev"),
        engine_(&env_, &main_, &backup_, &to_backup_, &to_main_) {
    auto p = main_.CreateVolume("v", 64);
    auto s = backup_.CreateVolume("r-v", 64);
    EXPECT_TRUE(p.ok() && s.ok());
    pvol_ = *p;
    svol_ = *s;
    auto g = engine_.CreateConsistencyGroup({.name = "cg"});
    EXPECT_TRUE(g.ok());
    group_ = *g;
    PairConfig pc;
    pc.name = "pair";
    pc.primary = pvol_;
    pc.secondary = svol_;
    pc.mode = ReplicationMode::kAsynchronous;
    pc.group = group_;
    auto pair = engine_.CreatePair(pc);
    EXPECT_TRUE(pair.ok());
    pair_ = *pair;
  }

  static sim::NetworkLinkConfig LinkConfig() {
    sim::NetworkLinkConfig cfg;
    cfg.base_latency = Milliseconds(5);
    cfg.jitter = 0;
    cfg.bandwidth_bytes_per_sec = 0;
    return cfg;
  }

  void Disaster() {
    main_.SetFailed(true);
    to_backup_.SetConnected(false);
    to_main_.SetConnected(false);
    auto report = engine_.FailoverGroup(group_);
    ASSERT_TRUE(report.ok());
  }

  void Repair() {
    main_.SetFailed(false);
    to_backup_.SetConnected(true);
    to_main_.SetConnected(true);
  }

  bool Converged() {
    return main_.GetVolume(pvol_)->ContentEquals(*backup_.GetVolume(svol_));
  }

  sim::SimEnvironment env_;
  storage::StorageArray main_;
  storage::StorageArray backup_;
  sim::NetworkLink to_backup_;
  sim::NetworkLink to_main_;
  ReplicationEngine engine_;
  storage::VolumeId pvol_ = 0;
  storage::VolumeId svol_ = 0;
  GroupId group_ = 0;
  PairId pair_ = 0;
};

TEST_F(FailbackTest, RequiresFailedOverGroup) {
  EXPECT_EQ(engine_.FailbackGroup(group_).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(FailbackTest, RequiresHealthyMainAndLinks) {
  Disaster();
  // Main array still dead.
  EXPECT_EQ(engine_.FailbackGroup(group_).status().code(),
            StatusCode::kFailedPrecondition);
  main_.SetFailed(false);
  // Links still down.
  EXPECT_EQ(engine_.FailbackGroup(group_).status().code(),
            StatusCode::kUnavailable);
}

TEST_F(FailbackTest, ShipsBackupDeltaAndResumesReplication) {
  ASSERT_TRUE(main_.WriteSync(pvol_, 0, BlockOf('a')).ok());
  env_.RunFor(Milliseconds(50));
  ASSERT_TRUE(Converged());
  Disaster();

  // The business runs on the backup site during the outage.
  ASSERT_TRUE(backup_.WriteSync(svol_, 1, BlockOf('b')).ok());
  ASSERT_TRUE(backup_.WriteSync(svol_, 2, BlockOf('c')).ok());
  EXPECT_EQ(engine_.GetPair(pair_)->reverse_dirty_blocks(), 2u);

  Repair();
  auto report = engine_.FailbackGroup(group_);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->blocks_shipped, 2u);
  EXPECT_EQ(report->conflicts_overwritten, 0u);

  env_.RunFor(Milliseconds(50));
  // The main volume received the outage writes.
  EXPECT_EQ(main_.GetVolume(pvol_)->store().ReadBlock(1), BlockOf('b'));
  EXPECT_EQ(main_.GetVolume(pvol_)->store().ReadBlock(2), BlockOf('c'));
  EXPECT_TRUE(Converged());
  EXPECT_EQ(engine_.GetPair(pair_)->state(), PairState::kPaired);

  // The backup volume is write-protected again.
  EXPECT_EQ(backup_.WriteSync(svol_, 0, BlockOf('x')).code(),
            StatusCode::kFailedPrecondition);

  // Forward replication flows with the fresh journals.
  ASSERT_TRUE(main_.WriteSync(pvol_, 5, BlockOf('n')).ok());
  env_.RunFor(Milliseconds(50));
  EXPECT_TRUE(Converged());
}

TEST_F(FailbackTest, SplitBrainRejectedWithoutForce) {
  env_.RunFor(Milliseconds(20));
  // A network partition (not an array death): the backup site takes over
  // while the main site survives and keeps writing — the split brain.
  to_backup_.SetConnected(false);
  to_main_.SetConnected(false);
  ASSERT_TRUE(engine_.FailoverGroup(group_).ok());
  ASSERT_TRUE(main_.WriteSync(pvol_, 3, BlockOf('m')).ok());
  ASSERT_TRUE(backup_.WriteSync(svol_, 3, BlockOf('s')).ok());
  Repair();
  auto rejected = engine_.FailbackGroup(group_);
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);

  // Force: the backup side wins the conflict.
  auto forced = engine_.FailbackGroup(group_, /*force=*/true);
  ASSERT_TRUE(forced.ok());
  EXPECT_EQ(forced->conflicts_overwritten, 1u);
  env_.RunFor(Milliseconds(50));
  EXPECT_EQ(main_.GetVolume(pvol_)->store().ReadBlock(3), BlockOf('s'));
  EXPECT_TRUE(Converged());
}

TEST_F(FailbackTest, MainWritesDuringGivebackWin) {
  env_.RunFor(Milliseconds(20));
  Disaster();
  ASSERT_TRUE(backup_.WriteSync(svol_, 7, BlockOf('o')).ok());
  Repair();
  ASSERT_TRUE(engine_.FailbackGroup(group_).ok());
  // Replication already resumed: a main write to the same block while the
  // giveback batch is still on the wire must not be clobbered.
  ASSERT_TRUE(main_.WriteSync(pvol_, 7, BlockOf('N')).ok());
  env_.RunFor(Milliseconds(50));
  EXPECT_EQ(main_.GetVolume(pvol_)->store().ReadBlock(7), BlockOf('N'));
  EXPECT_TRUE(Converged());
}

TEST_F(FailbackTest, DoubleFailbackRejected) {
  env_.RunFor(Milliseconds(20));
  Disaster();
  Repair();
  ASSERT_TRUE(engine_.FailbackGroup(group_).ok());
  EXPECT_EQ(engine_.FailbackGroup(group_).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(FailbackTest, FullCycleFailoverFailbackFailover) {
  // The system survives repeated disasters.
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_TRUE(main_
                    .WriteSync(pvol_, static_cast<uint64_t>(cycle),
                               BlockOf(static_cast<char>('a' + cycle)))
                    .ok());
    env_.RunFor(Milliseconds(50));
    ASSERT_TRUE(Converged()) << "cycle " << cycle;
    Disaster();
    ASSERT_TRUE(backup_
                    .WriteSync(svol_, 10 + static_cast<uint64_t>(cycle),
                               BlockOf('z'))
                    .ok());
    Repair();
    ASSERT_TRUE(engine_.FailbackGroup(group_).ok()) << "cycle " << cycle;
    env_.RunFor(Milliseconds(50));
    ASSERT_TRUE(Converged()) << "cycle " << cycle;
    ASSERT_EQ(engine_.GetPair(pair_)->state(), PairState::kPaired);
  }
}

}  // namespace
}  // namespace zerobak::replication
