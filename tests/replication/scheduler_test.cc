// Event-driven transfer scheduling. The contract under test: an idle
// group costs (almost) no simulator events — journal appends, apply
// acks, link recovery and resync completions arm a group, one dispatch
// loop pumps the armed set, and deficit-round-robin keeps groups sharing
// a link within a fair share of the wire. The legacy per-group timers
// stay available behind EngineOptions for A/B comparison and must
// produce the same replicated bytes.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "replication/group_scheduler.h"
#include "replication/replication.h"
#include "storage/array.h"

namespace zerobak::replication {
namespace {

std::string BlockOf(char c) {
  return std::string(block::kDefaultBlockSize, c);
}

storage::ArrayConfig ZeroLatency(const std::string& serial) {
  storage::ArrayConfig cfg;
  cfg.serial = serial;
  cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  return cfg;
}

sim::NetworkLinkConfig QuietLink(uint64_t seed,
                                 uint64_t bandwidth_bytes_per_sec = 0) {
  sim::NetworkLinkConfig cfg;
  cfg.base_latency = Milliseconds(1);
  cfg.jitter = 0;
  cfg.bandwidth_bytes_per_sec = bandwidth_bytes_per_sec;
  cfg.seed = seed;
  return cfg;
}

// --- GroupScheduler unit tests (synthetic pump) ----------------------------

class SchedulerUnitTest : public ::testing::Test {
 protected:
  SchedulerUnitTest()
      : link_(&env_, QuietLink(7), "wire"),
        sched_(&env_, &link_, /*heartbeat_interval=*/Milliseconds(50),
               [this](GroupSchedulerId id, uint64_t max_bytes) {
                 return Pump(id, max_bytes);
               },
               [this] {
                 ++heartbeat_scans_;
                 return uint64_t{0};
               }) {}

  PumpOutcome Pump(GroupSchedulerId id, uint64_t max_bytes) {
    pumps_.push_back({id, env_.now(), max_bytes});
    PumpOutcome out;
    auto& backlog = backlog_[id];
    if (backlog == 0) return out;  // Nothing to send: scheduler disarms.
    const uint64_t sent = std::min(backlog, std::min(max_bytes, quantum_));
    backlog -= sent;
    out.sent = true;
    out.wire_bytes = sent;
    out.backlog = backlog > 0;
    out.quantum = quantum_;
    return out;
  }

  struct PumpCall {
    GroupSchedulerId id;
    SimTime at;
    uint64_t max_bytes;
  };

  sim::SimEnvironment env_;
  sim::NetworkLink link_;
  GroupScheduler sched_;
  std::map<GroupSchedulerId, uint64_t> backlog_;
  uint64_t quantum_ = 1024;
  std::vector<PumpCall> pumps_;
  int heartbeat_scans_ = 0;
};

TEST_F(SchedulerUnitTest, UnarmedGroupsScheduleNothingButTheHeartbeat) {
  sched_.Register(1, Milliseconds(2), quantum_);
  sched_.Register(2, Milliseconds(2), quantum_);
  const uint64_t before = env_.executed_events();
  env_.RunFor(Seconds(1));
  const uint64_t events = env_.executed_events() - before;
  EXPECT_TRUE(pumps_.empty());
  // 1 s / 50 ms heartbeat = 20 events, regardless of group count.
  EXPECT_LE(events, 25u);
  EXPECT_EQ(heartbeat_scans_, 20);
  EXPECT_EQ(sched_.stats().dispatches, 0u);
}

TEST_F(SchedulerUnitTest, ArmDispatchesOnTheGroupsOwnTickBoundary) {
  sched_.Register(1, Milliseconds(2), quantum_);
  env_.RunFor(Milliseconds(5));  // Registration origin = t0; now t=5ms.
  backlog_[1] = 512;
  sched_.Arm(1);
  EXPECT_TRUE(sched_.armed(1));
  env_.RunFor(Milliseconds(3));
  ASSERT_EQ(pumps_.size(), 1u);
  // Ticks land on the 2 ms grid anchored at registration: 6 ms, not 5.
  EXPECT_EQ(pumps_[0].at, Milliseconds(6));
  EXPECT_FALSE(sched_.armed(1));  // Backlog drained: disarmed.
  EXPECT_EQ(sched_.stats().arms, 1u);
  EXPECT_EQ(sched_.stats().dispatches, 1u);
}

TEST_F(SchedulerUnitTest, ArmingIsIdempotentWhileArmed) {
  sched_.Register(1, Milliseconds(2), quantum_);
  backlog_[1] = 100;
  sched_.Arm(1);
  sched_.Arm(1);
  sched_.Arm(1);
  EXPECT_EQ(sched_.stats().arms, 1u);
  env_.RunFor(Milliseconds(5));
  EXPECT_EQ(pumps_.size(), 1u);
}

TEST_F(SchedulerUnitTest, BacklogKeepsTheGroupArmedUntilDrained) {
  sched_.Register(1, Milliseconds(2), quantum_);
  backlog_[1] = quantum_ * 3;  // Three pump rounds' worth.
  sched_.Arm(1);
  env_.RunFor(Milliseconds(20));
  EXPECT_GE(pumps_.size(), 3u);
  EXPECT_EQ(backlog_[1], 0u);
  EXPECT_FALSE(sched_.armed(1));
}

TEST_F(SchedulerUnitTest, DeficitRoundRobinSharesTheWire) {
  // Two groups, same quantum, both with deep backlogs: pump calls must
  // alternate rather than letting one group monopolize the rounds.
  sched_.Register(1, Milliseconds(2), quantum_);
  sched_.Register(2, Milliseconds(2), quantum_);
  backlog_[1] = quantum_ * 8;
  backlog_[2] = quantum_ * 8;
  sched_.Arm(1);
  sched_.Arm(2);
  env_.RunFor(Milliseconds(100));
  EXPECT_EQ(backlog_[1], 0u);
  EXPECT_EQ(backlog_[2], 0u);
  uint64_t sent1 = 0;
  uint64_t sent2 = 0;
  for (size_t i = 0; i + 1 < pumps_.size(); i += 2) {
    // Within every dispatch round the two armed groups each get a turn.
    EXPECT_NE(pumps_[i].id, pumps_[i + 1].id) << "round " << i / 2;
  }
  for (const auto& call : pumps_) {
    (call.id == 1 ? sent1 : sent2) += quantum_;
  }
  EXPECT_EQ(sent1, sent2);
}

TEST_F(SchedulerUnitTest, UnregisterForgetsTheGroup) {
  sched_.Register(1, Milliseconds(2), quantum_);
  backlog_[1] = quantum_;
  sched_.Arm(1);
  sched_.Unregister(1);
  EXPECT_FALSE(sched_.armed(1));
  env_.RunFor(Milliseconds(10));
  EXPECT_TRUE(pumps_.empty());
  sched_.Arm(1);  // Arming an unknown id is a no-op, not a crash.
  EXPECT_FALSE(sched_.armed(1));
  // The heartbeat stops with the last group: a fully torn-down scheduler
  // leaves the simulator idle.
  const uint64_t before = env_.executed_events();
  env_.RunFor(Seconds(1));
  EXPECT_EQ(env_.executed_events() - before, 0u);
}

// --- Engine integration ----------------------------------------------------

class SchedulerEngineTest : public ::testing::Test {
 protected:
  explicit SchedulerEngineTest(EngineOptions options = {})
      : main_(&env_, ZeroLatency("MAIN")),
        backup_(&env_, ZeroLatency("BKUP")),
        to_backup_(&env_, QuietLink(1), "fwd"),
        to_main_(&env_, QuietLink(2), "rev"),
        engine_(&env_, &main_, &backup_, &to_backup_, &to_main_, options) {}

  GroupId MakeGroupWithPair(const std::string& name) {
    auto g = engine_.CreateConsistencyGroup({.name = name});
    EXPECT_TRUE(g.ok());
    auto p = main_.CreateVolume(name, 64);
    auto s = backup_.CreateVolume("r-" + name, 64);
    EXPECT_TRUE(p.ok() && s.ok());
    PairConfig pc;
    pc.primary = *p;
    pc.secondary = *s;
    pc.mode = ReplicationMode::kAsynchronous;
    pc.group = *g;
    EXPECT_TRUE(engine_.CreatePair(pc).ok());
    pvols_.push_back(*p);
    svols_.push_back(*s);
    return *g;
  }

  bool Converged(size_t i) {
    return main_.GetVolume(pvols_[i])->ContentEquals(
        *backup_.GetVolume(svols_[i]));
  }

  sim::SimEnvironment env_;
  storage::StorageArray main_;
  storage::StorageArray backup_;
  sim::NetworkLink to_backup_;
  sim::NetworkLink to_main_;
  ReplicationEngine engine_;
  std::vector<storage::VolumeId> pvols_;
  std::vector<storage::VolumeId> svols_;
};

TEST_F(SchedulerEngineTest, IdleGroupsCostNoPerGroupEvents) {
  for (int i = 0; i < 32; ++i) {
    MakeGroupWithPair("g" + std::to_string(i));
  }
  env_.RunFor(Milliseconds(20));  // Initial copies settle.
  const uint64_t before = env_.executed_events();
  env_.RunFor(Seconds(1));
  const uint64_t idle_events = env_.executed_events() - before;
  // Event-driven: only the 50 ms heartbeat ticks — far below the
  // 32 groups x 500 timer fires/s the legacy engine would burn.
  EXPECT_LE(idle_events, 30u);
  EXPECT_TRUE(engine_.event_driven());
  EXPECT_EQ(engine_.scheduler_stats().registered_groups, 32u);
  EXPECT_EQ(engine_.scheduler_stats().armed_groups, 0u);
}

TEST_F(SchedulerEngineTest, WritesArmShipAndDisarm) {
  MakeGroupWithPair("g");
  env_.RunFor(Milliseconds(20));
  ASSERT_TRUE(main_.WriteSync(pvols_[0], 3, BlockOf('x')).ok());
  env_.RunFor(Milliseconds(50));
  EXPECT_TRUE(Converged(0));
  const auto stats = engine_.scheduler_stats();
  EXPECT_GE(stats.arms, 1u);
  EXPECT_GE(stats.dispatches, 1u);
  EXPECT_EQ(stats.armed_groups, 0u);  // Quiesced again.
}

TEST_F(SchedulerEngineTest, LinkRecoveryRearmsPendingGroups) {
  MakeGroupWithPair("g");
  env_.RunFor(Milliseconds(20));
  to_backup_.SetConnected(false);
  ASSERT_TRUE(main_.WriteSync(pvols_[0], 5, BlockOf('y')).ok());
  env_.RunFor(Milliseconds(30));
  EXPECT_FALSE(Converged(0));
  to_backup_.SetConnected(true);  // Ready callback re-arms the group.
  env_.RunFor(Milliseconds(200));
  auto gstats = engine_.GetGroupStats(1);
  ASSERT_TRUE(gstats.ok());
  EXPECT_EQ(gstats->applied, gstats->written);
}

class LegacySchedulerEngineTest : public SchedulerEngineTest {
 protected:
  LegacySchedulerEngineTest()
      : SchedulerEngineTest(EngineOptions{.event_driven_scheduler = false}) {}
};

TEST_F(LegacySchedulerEngineTest, LegacyTimersStillReplicate) {
  MakeGroupWithPair("g");
  env_.RunFor(Milliseconds(20));
  EXPECT_FALSE(engine_.event_driven());
  EXPECT_EQ(engine_.scheduler_stats().registered_groups, 0u);
  ASSERT_TRUE(main_.WriteSync(pvols_[0], 3, BlockOf('x')).ok());
  env_.RunFor(Milliseconds(50));
  EXPECT_TRUE(Converged(0));
}

TEST_F(LegacySchedulerEngineTest, LegacyModeBurnsIdleTimerEvents) {
  // The A/B motivation pinned as a test: the legacy engine polls every
  // group every transfer_interval even with nothing to ship.
  for (int i = 0; i < 8; ++i) {
    MakeGroupWithPair("g" + std::to_string(i));
  }
  env_.RunFor(Milliseconds(20));
  const uint64_t before = env_.executed_events();
  env_.RunFor(Seconds(1));
  const uint64_t idle_events = env_.executed_events() - before;
  // 8 groups / 2 ms interval = ~4000 fires; leave slack either way.
  EXPECT_GE(idle_events, 3000u);
}

}  // namespace
}  // namespace zerobak::replication
