// Unit tests for the two-level hierarchical dirty bitmap that backs pair
// dirty tracking and extent resync.
#include "replication/dirty_bitmap.h"

#include <vector>

#include <gtest/gtest.h>

namespace zerobak::replication {
namespace {

TEST(DirtyBitmapTest, SetClearTestAndCount) {
  DirtyBitmap bm(256);
  EXPECT_TRUE(bm.empty());
  EXPECT_EQ(bm.block_count(), 256u);

  EXPECT_TRUE(bm.Set(7));
  EXPECT_FALSE(bm.Set(7));  // Already dirty.
  EXPECT_TRUE(bm.Test(7));
  EXPECT_FALSE(bm.Test(8));
  EXPECT_EQ(bm.count(), 1u);

  EXPECT_TRUE(bm.Clear(7));
  EXPECT_FALSE(bm.Clear(7));  // Already clean.
  EXPECT_FALSE(bm.Test(7));
  EXPECT_TRUE(bm.empty());
}

TEST(DirtyBitmapTest, TestAndClearOutOfRangeAreSafe) {
  DirtyBitmap bm(64);
  EXPECT_FALSE(bm.Test(64));
  EXPECT_FALSE(bm.Test(1 << 20));
  EXPECT_FALSE(bm.Clear(64));
}

TEST(DirtyBitmapTest, NextDirtyCrossesLeafAndSummaryBoundaries) {
  // 3 summary words' worth of blocks: a leaf word covers 64 blocks, a
  // summary word covers 64 leaf words = 4096 blocks.
  DirtyBitmap bm(3 * 4096);
  ASSERT_TRUE(bm.Set(0));
  ASSERT_TRUE(bm.Set(63));     // Same leaf word.
  ASSERT_TRUE(bm.Set(64));     // Next leaf word.
  ASSERT_TRUE(bm.Set(4095));   // Last block of summary word 0.
  ASSERT_TRUE(bm.Set(4096));   // First block of summary word 1.
  ASSERT_TRUE(bm.Set(10000));  // Deep inside summary word 2.

  EXPECT_EQ(bm.NextDirty(0), 0u);
  EXPECT_EQ(bm.NextDirty(1), 63u);
  EXPECT_EQ(bm.NextDirty(64), 64u);
  EXPECT_EQ(bm.NextDirty(65), 4095u);
  EXPECT_EQ(bm.NextDirty(4096), 4096u);
  EXPECT_EQ(bm.NextDirty(4097), 10000u);
  EXPECT_EQ(bm.NextDirty(10001), DirtyBitmap::kNone);
  EXPECT_EQ(bm.NextDirty(3 * 4096), DirtyBitmap::kNone);
  EXPECT_EQ(bm.count(), 6u);
}

TEST(DirtyBitmapTest, RangesAndRunMerging) {
  DirtyBitmap bm(8192);
  bm.SetRange(10, 5);      // [10, 15)
  bm.SetRange(15, 3);      // Adjacent: extends to [10, 18)
  bm.SetRange(100, 200);   // [100, 300) — crosses leaf words.
  bm.Set(4095);
  bm.Set(4096);            // Run across a summary boundary.

  std::vector<DirtyBitmap::Run> runs;
  bm.ForEachRun([&](DirtyBitmap::Run run) { runs.push_back(run); });
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].lba, 10u);
  EXPECT_EQ(runs[0].count, 8u);
  EXPECT_EQ(runs[1].lba, 100u);
  EXPECT_EQ(runs[1].count, 200u);
  EXPECT_EQ(runs[2].lba, 4095u);
  EXPECT_EQ(runs[2].count, 2u);
  EXPECT_EQ(bm.count(), 8u + 200u + 2u);

  bm.ClearRange(100, 200);
  runs.clear();
  bm.ForEachRun([&](DirtyBitmap::Run run) { runs.push_back(run); });
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[1].lba, 4095u);
}

TEST(DirtyBitmapTest, ForEachRunSplitsAtMaxLen) {
  DirtyBitmap bm(1024);
  bm.SetRange(0, 300);
  std::vector<DirtyBitmap::Run> runs;
  bm.ForEachRun([&](DirtyBitmap::Run run) { runs.push_back(run); },
                /*max_len=*/128);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].lba, 0u);
  EXPECT_EQ(runs[0].count, 128u);
  EXPECT_EQ(runs[1].lba, 128u);
  EXPECT_EQ(runs[1].count, 128u);
  EXPECT_EQ(runs[2].lba, 256u);
  EXPECT_EQ(runs[2].count, 44u);
}

TEST(DirtyBitmapTest, FullBitmapIsOneRun) {
  DirtyBitmap bm(4160);  // Not a multiple of 4096: ragged tail.
  bm.SetRange(0, 4160);
  EXPECT_EQ(bm.count(), 4160u);
  std::vector<DirtyBitmap::Run> runs;
  bm.ForEachRun([&](DirtyBitmap::Run run) { runs.push_back(run); });
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].lba, 0u);
  EXPECT_EQ(runs[0].count, 4160u);
}

TEST(DirtyBitmapTest, ClearAllKeepsGeometry) {
  DirtyBitmap bm(512);
  bm.SetRange(0, 512);
  bm.ClearAll();
  EXPECT_TRUE(bm.empty());
  EXPECT_EQ(bm.block_count(), 512u);
  EXPECT_EQ(bm.NextDirty(0), DirtyBitmap::kNone);
  EXPECT_TRUE(bm.Set(31));  // Still usable after the wipe.
}

TEST(DirtyBitmapTest, UnionWithRecountsOverlap) {
  DirtyBitmap a(256);
  DirtyBitmap b(256);
  a.SetRange(0, 10);
  b.SetRange(5, 10);  // Overlaps [5, 10).
  b.Set(200);
  a.UnionWith(b);
  EXPECT_EQ(a.count(), 16u);  // [0, 15) plus 200 — overlap not double-counted.
  EXPECT_TRUE(a.Test(0));
  EXPECT_TRUE(a.Test(14));
  EXPECT_FALSE(a.Test(15));
  EXPECT_TRUE(a.Test(200));
}

TEST(DirtyBitmapTest, ResetResizesAndClears) {
  DirtyBitmap bm(64);
  bm.SetRange(0, 64);
  bm.Reset(8192);
  EXPECT_TRUE(bm.empty());
  EXPECT_EQ(bm.block_count(), 8192u);
  EXPECT_TRUE(bm.Set(8191));
  EXPECT_EQ(bm.NextDirty(0), 8191u);
}

}  // namespace
}  // namespace zerobak::replication
