#include "replication/replication.h"

#include <gtest/gtest.h>

#include "storage/array.h"

namespace zerobak::replication {
namespace {

std::string BlockOf(char c) {
  return std::string(block::kDefaultBlockSize, c);
}

storage::ArrayConfig ZeroLatency(const std::string& serial) {
  storage::ArrayConfig cfg;
  cfg.serial = serial;
  cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  return cfg;
}

class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest()
      : main_(&env_, ZeroLatency("MAIN")),
        backup_(&env_, ZeroLatency("BKUP")),
        to_backup_(&env_, LinkConfig(1), "fwd"),
        to_main_(&env_, LinkConfig(2), "rev"),
        engine_(&env_, &main_, &backup_, &to_backup_, &to_main_) {}

  static sim::NetworkLinkConfig LinkConfig(uint64_t seed) {
    sim::NetworkLinkConfig cfg;
    cfg.base_latency = Milliseconds(5);
    cfg.jitter = 0;
    cfg.bandwidth_bytes_per_sec = 0;
    cfg.seed = seed;
    return cfg;
  }

  // Creates same-geometry volumes on both arrays.
  std::pair<storage::VolumeId, storage::VolumeId> MakeVolumes(
      const std::string& name, uint64_t blocks = 64) {
    auto p = main_.CreateVolume(name, blocks);
    auto s = backup_.CreateVolume("r-" + name, blocks);
    EXPECT_TRUE(p.ok() && s.ok());
    return {*p, *s};
  }

  GroupId MakeGroup(uint64_t capacity = 16 << 20) {
    ConsistencyGroupConfig cfg;
    cfg.name = "cg";
    cfg.journal_capacity_bytes = capacity;
    auto g = engine_.CreateConsistencyGroup(cfg);
    EXPECT_TRUE(g.ok());
    return *g;
  }

  PairId MakeAsyncPair(storage::VolumeId p, storage::VolumeId s,
                       GroupId group) {
    PairConfig cfg;
    cfg.name = "pair";
    cfg.primary = p;
    cfg.secondary = s;
    cfg.mode = ReplicationMode::kAsynchronous;
    cfg.group = group;
    auto id = engine_.CreatePair(cfg);
    EXPECT_TRUE(id.ok()) << id.status();
    return id.ok() ? *id : 0;
  }

  bool Converged(storage::VolumeId p, storage::VolumeId s) {
    return main_.GetVolume(p)->ContentEquals(*backup_.GetVolume(s));
  }

  sim::SimEnvironment env_;
  storage::StorageArray main_;
  storage::StorageArray backup_;
  sim::NetworkLink to_backup_;
  sim::NetworkLink to_main_;
  ReplicationEngine engine_;
};

TEST_F(ReplicationTest, EmptyPairIsImmediatelyPaired) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  PairId pair = MakeAsyncPair(p, s, g);
  EXPECT_EQ(engine_.GetPair(pair)->state(), PairState::kPaired);
  EXPECT_TRUE(engine_.GroupInitialCopyDone(g));
}

TEST_F(ReplicationTest, InitialCopyTransfersExistingData) {
  auto [p, s] = MakeVolumes("v");
  ASSERT_TRUE(main_.WriteSync(p, 0, BlockOf('a')).ok());
  ASSERT_TRUE(main_.WriteSync(p, 9, BlockOf('b')).ok());
  GroupId g = MakeGroup();
  PairId pair = MakeAsyncPair(p, s, g);
  EXPECT_EQ(engine_.GetPair(pair)->state(), PairState::kCopy);
  EXPECT_FALSE(Converged(p, s));
  env_.RunFor(Milliseconds(20));
  EXPECT_EQ(engine_.GetPair(pair)->state(), PairState::kPaired);
  EXPECT_TRUE(Converged(p, s));
}

TEST_F(ReplicationTest, AdcAcksImmediatelyAndShipsInBackground) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  MakeAsyncPair(p, s, g);

  // ADC: the sync (functional) write path must ack inline.
  ASSERT_TRUE(main_.WriteSync(p, 3, BlockOf('x')).ok());
  EXPECT_FALSE(Converged(p, s));  // Not yet shipped.

  env_.RunFor(Milliseconds(20));
  EXPECT_TRUE(Converged(p, s));

  auto stats = engine_.GetGroupStats(g);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->written, 1u);
  EXPECT_EQ(stats->applied, 1u);
}

TEST_F(ReplicationTest, JournalTrimsAfterRemoteAck) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  MakeAsyncPair(p, s, g);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(main_.WriteSync(p, i, BlockOf('x')).ok());
  }
  EXPECT_GT(engine_.primary_journal(g)->used_bytes(), 0u);
  env_.RunFor(Milliseconds(50));
  EXPECT_EQ(engine_.primary_journal(g)->used_bytes(), 0u);
  EXPECT_EQ(engine_.primary_journal(g)->applied(), 10u);
}

TEST_F(ReplicationTest, CrossVolumeOrderPreservedInGroup) {
  auto [pa, sa] = MakeVolumes("a");
  auto [pb, sb] = MakeVolumes("b");
  GroupId g = MakeGroup();
  MakeAsyncPair(pa, sa, g);
  MakeAsyncPair(pb, sb, g);

  // Alternate writes across the two volumes; counters encode the order.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        main_.WriteSync(pa, 0, BlockOf(static_cast<char>('0' + i))).ok());
    ASSERT_TRUE(
        main_.WriteSync(pb, 0, BlockOf(static_cast<char>('0' + i))).ok());
  }
  // At ANY point during the drain, volume b's counter must never be ahead
  // of volume a's on the backup array (b was always written second).
  for (int step = 0; step < 100; ++step) {
    env_.RunFor(Microseconds(500));
    const char a = backup_.GetVolume(sa)->store().ReadBlock(0)[0];
    const char b = backup_.GetVolume(sb)->store().ReadBlock(0)[0];
    EXPECT_LE(b, a) << "backup reordered across volumes at step " << step;
  }
  EXPECT_TRUE(Converged(pa, sa));
  EXPECT_TRUE(Converged(pb, sb));
}

TEST_F(ReplicationTest, SecondaryVolumeIsWriteProtected) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  MakeAsyncPair(p, s, g);
  EXPECT_EQ(backup_.WriteSync(s, 0, BlockOf('h')).code(),
            StatusCode::kFailedPrecondition);
  // Reads are fine.
  std::string out;
  EXPECT_TRUE(backup_.ReadSync(s, 0, 1, &out).ok());
}

TEST_F(ReplicationTest, DeletePairReleasesVolumes) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  PairId pair = MakeAsyncPair(p, s, g);
  ASSERT_TRUE(engine_.DeletePair(pair).ok());
  EXPECT_FALSE(main_.HasInterceptor(p));
  EXPECT_TRUE(backup_.WriteSync(s, 0, BlockOf('w')).ok());
  EXPECT_EQ(engine_.GetPair(pair), nullptr);
  // Group can now be deleted.
  ASSERT_TRUE(engine_.DeleteConsistencyGroup(g).ok());
}

TEST_F(ReplicationTest, GroupWithPairsCannotBeDeleted) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  MakeAsyncPair(p, s, g);
  EXPECT_EQ(engine_.DeleteConsistencyGroup(g).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ReplicationTest, GeometryMismatchRejected) {
  auto p = main_.CreateVolume("v", 64);
  auto s = backup_.CreateVolume("r-v", 128);
  ASSERT_TRUE(p.ok() && s.ok());
  GroupId g = MakeGroup();
  PairConfig cfg;
  cfg.primary = *p;
  cfg.secondary = *s;
  cfg.mode = ReplicationMode::kAsynchronous;
  cfg.group = g;
  EXPECT_EQ(engine_.CreatePair(cfg).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ReplicationTest, DoubleProtectionRejected) {
  auto [p, s] = MakeVolumes("v");
  auto s2 = backup_.CreateVolume("r-v2", 64);
  ASSERT_TRUE(s2.ok());
  GroupId g = MakeGroup();
  MakeAsyncPair(p, s, g);
  PairConfig cfg;
  cfg.primary = p;
  cfg.secondary = *s2;
  cfg.mode = ReplicationMode::kAsynchronous;
  cfg.group = g;
  EXPECT_EQ(engine_.CreatePair(cfg).status().code(),
            StatusCode::kAlreadyExists);
}

// --- Synchronous pairs -------------------------------------------------------

TEST_F(ReplicationTest, SyncPairAckWaitsForRoundTrip) {
  auto [p, s] = MakeVolumes("v");
  PairConfig cfg;
  cfg.name = "sync";
  cfg.primary = p;
  cfg.secondary = s;
  cfg.mode = ReplicationMode::kSynchronous;
  auto pair = engine_.CreatePair(cfg);
  ASSERT_TRUE(pair.ok());
  env_.RunFor(Milliseconds(10));  // Initial copy (empty -> instant-ish).

  const SimTime start = env_.now();
  SimTime acked = -1;
  main_.SubmitHostWrite(p, 0, BlockOf('s'), [&](block::IoResult r) {
    ASSERT_TRUE(r.status.ok());
    acked = env_.now();
  });
  env_.RunUntilIdle();
  // 5 ms forward + 5 ms back (zero media latency on both arrays).
  EXPECT_EQ(acked - start, Milliseconds(10));
  EXPECT_TRUE(Converged(p, s));
}

TEST_F(ReplicationTest, SyncPairSuspendsWhenLinkDies) {
  auto [p, s] = MakeVolumes("v");
  PairConfig cfg;
  cfg.primary = p;
  cfg.secondary = s;
  cfg.mode = ReplicationMode::kSynchronous;
  auto pair = engine_.CreatePair(cfg);
  ASSERT_TRUE(pair.ok());
  env_.RunFor(Milliseconds(10));

  to_backup_.SetConnected(false);
  Status acked = InternalError("no ack");
  main_.SubmitHostWrite(p, 2, BlockOf('d'),
                        [&](block::IoResult r) { acked = r.status; });
  env_.RunUntilIdle();
  // Fence level "never": the host still gets its ack, the pair suspends.
  EXPECT_TRUE(acked.ok());
  EXPECT_EQ(engine_.GetPair(*pair)->state(), PairState::kSuspended);
  EXPECT_EQ(engine_.GetPair(*pair)->dirty_blocks(), 1u);

  // Resync after the link returns.
  to_backup_.SetConnected(true);
  ASSERT_TRUE(engine_.ResyncSyncPair(*pair).ok());
  env_.RunUntilIdle();
  EXPECT_EQ(engine_.GetPair(*pair)->state(), PairState::kPaired);
  EXPECT_TRUE(Converged(p, s));
}

// --- Suspension, overflow and resync ----------------------------------------

TEST_F(ReplicationTest, JournalOverflowSuspendsGroupButNotTheHost) {
  auto [p, s] = MakeVolumes("v");
  // A journal that fits only a couple of records.
  GroupId g = MakeGroup(10000);
  MakeAsyncPair(p, s, g);
  to_backup_.SetConnected(false);  // Nothing drains.

  // Blocks are 4 KiB, journal 10 KB: the third write overflows.
  Status st;
  for (int i = 0; i < 5; ++i) {
    st = main_.WriteSync(p, i, BlockOf('o'));
    EXPECT_TRUE(st.ok()) << "host write must never fail: " << st;
  }
  auto stats = engine_.GetGroupStats(g);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->journal_overflows, 1u);
  EXPECT_EQ(engine_.GetPair(engine_.ListGroupPairs(g)[0])->state(),
            PairState::kSuspended);
  EXPECT_GT(engine_.GetPair(engine_.ListGroupPairs(g)[0])->dirty_blocks(),
            0u);
}

TEST_F(ReplicationTest, ResyncAfterOverflowConverges) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup(10000);
  MakeAsyncPair(p, s, g);
  to_backup_.SetConnected(false);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(main_.WriteSync(p, i, BlockOf(static_cast<char>('a' + i)))
                    .ok());
  }
  to_backup_.SetConnected(true);
  ASSERT_TRUE(engine_.ResyncGroup(g).ok());
  env_.RunFor(Milliseconds(50));
  EXPECT_EQ(engine_.GetPair(engine_.ListGroupPairs(g)[0])->state(),
            PairState::kPaired);
  EXPECT_TRUE(Converged(p, s));

  // Replication keeps working after the resync.
  ASSERT_TRUE(main_.WriteSync(p, 20, BlockOf('z')).ok());
  env_.RunFor(Milliseconds(50));
  EXPECT_TRUE(Converged(p, s));
}

TEST_F(ReplicationTest, OperatorSuspendAndResync) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  MakeAsyncPair(p, s, g);
  ASSERT_TRUE(engine_.SuspendGroup(g).ok());
  ASSERT_TRUE(main_.WriteSync(p, 1, BlockOf('q')).ok());
  env_.RunFor(Milliseconds(50));
  EXPECT_FALSE(Converged(p, s));  // Suspended: nothing flows.
  ASSERT_TRUE(engine_.ResyncGroup(g).ok());
  env_.RunFor(Milliseconds(50));
  EXPECT_TRUE(Converged(p, s));
}

// --- Failover -----------------------------------------------------------------

TEST_F(ReplicationTest, FailoverAppliesReceivedAndReportsLoss) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  MakeAsyncPair(p, s, g);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(main_.WriteSync(p, i, BlockOf('x')).ok());
  }
  env_.RunFor(Milliseconds(50));  // All 10 replicated.
  for (int i = 10; i < 15; ++i) {
    ASSERT_TRUE(main_.WriteSync(p, i, BlockOf('y')).ok());
  }
  // Disaster strikes before the last 5 ship.
  main_.SetFailed(true);
  to_backup_.SetConnected(false);
  to_main_.SetConnected(false);

  auto report = engine_.FailoverGroup(g);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->recovery_point, 10u);
  EXPECT_EQ(report->lost_records, 5u);

  // The S-VOL is now writable.
  EXPECT_TRUE(backup_.WriteSync(s, 0, BlockOf('n')).ok());
  EXPECT_EQ(engine_.GetPair(engine_.ListGroupPairs(g)[0])->state(),
            PairState::kSwapped);

  // Double failover is rejected.
  EXPECT_EQ(engine_.FailoverGroup(g).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ReplicationTest, FailoverDrainsRecordsAlreadyReceived) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  MakeAsyncPair(p, s, g);
  ASSERT_TRUE(main_.WriteSync(p, 0, BlockOf('k')).ok());
  // Let the batch arrive at the backup journal but do not give the apply
  // ack a chance to travel back.
  env_.RunFor(Milliseconds(8));
  auto report = engine_.FailoverGroup(g);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->recovery_point, 1u);
  EXPECT_EQ(backup_.GetVolume(s)->store().ReadBlock(0),
            BlockOf('k'));
}

TEST_F(ReplicationTest, WritesAfterFailoverStayLocal) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  MakeAsyncPair(p, s, g);
  env_.RunFor(Milliseconds(10));
  ASSERT_TRUE(engine_.FailoverGroup(g).ok());
  // A surviving main site keeps serving IO without copying anywhere.
  ASSERT_TRUE(main_.WriteSync(p, 5, BlockOf('m')).ok());
  env_.RunFor(Milliseconds(50));
  EXPECT_NE(backup_.GetVolume(s)->store().ReadBlock(5), BlockOf('m'));
}

TEST_F(ReplicationTest, GroupStatsReportLag) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  MakeAsyncPair(p, s, g);
  ASSERT_TRUE(main_.WriteSync(p, 0, BlockOf('l')).ok());
  auto before = engine_.GetGroupStats(g);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->written, 1u);
  EXPECT_EQ(before->applied, 0u);
  env_.RunFor(Milliseconds(50));
  auto after = engine_.GetGroupStats(g);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->applied, 1u);
}

// Regression: an idle, fully caught-up group must report apply_lag == 0
// no matter how much simulated time passes. The old formula (now -
// last_applied_ack_time) grew without bound on a quiescent group, so a
// perfectly healthy system looked like it was losing an hour of data per
// idle hour.
TEST_F(ReplicationTest, IdleGroupReportsZeroLag) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  MakeAsyncPair(p, s, g);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(main_.WriteSync(p, i, BlockOf('x')).ok());
  }
  env_.RunFor(Milliseconds(100));
  auto stats = engine_.GetGroupStats(g);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->acked, stats->written);

  // A whole simulated hour of quiescence.
  env_.RunFor(Seconds(3600));
  stats = engine_.GetGroupStats(g);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->apply_lag, 0) << "idle group must not age";
  auto rpo = engine_.GroupRpo(g);
  ASSERT_TRUE(rpo.ok());
  EXPECT_EQ(*rpo, 0);
}

// While a backlog exists the RPO is the age of the oldest unacked write,
// not the time since the last apply.
TEST_F(ReplicationTest, RpoIsAgeOfOldestUnackedWrite) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  MakeAsyncPair(p, s, g);
  env_.RunFor(Milliseconds(20));

  to_backup_.SetConnected(false);
  const SimTime first_write = env_.now();
  ASSERT_TRUE(main_.WriteSync(p, 0, BlockOf('a')).ok());
  env_.RunFor(Milliseconds(30));
  ASSERT_TRUE(main_.WriteSync(p, 1, BlockOf('b')).ok());
  env_.RunFor(Milliseconds(10));

  auto rpo = engine_.GroupRpo(g);
  ASSERT_TRUE(rpo.ok());
  // The OLDEST backlogged write dates the RPO, not the newest.
  EXPECT_EQ(*rpo, env_.now() - first_write);

  // Reconnect; once everything is acked the RPO collapses back to zero.
  to_backup_.SetConnected(true);
  env_.RunFor(Milliseconds(200));
  rpo = engine_.GroupRpo(g);
  ASSERT_TRUE(rpo.ok());
  EXPECT_EQ(*rpo, 0);
}

// A suspension converts the journal backlog into dirty blocks; the RPO
// must keep aging from the oldest lost write, and only return to zero
// after the resync delta lands.
TEST_F(ReplicationTest, RpoSurvivesSuspension) {
  auto [p, s] = MakeVolumes("v");
  ConsistencyGroupConfig cfg;
  cfg.name = "cg";
  cfg.journal_capacity_bytes = 16 << 20;
  cfg.transfer_interval = Milliseconds(1);
  cfg.ack_timeout = Milliseconds(15);
  cfg.auto_resync = false;  // Manual resync keeps the timeline controlled.
  auto created = engine_.CreateConsistencyGroup(cfg);
  ASSERT_TRUE(created.ok());
  GroupId g = *created;
  MakeAsyncPair(p, s, g);
  env_.RunFor(Milliseconds(20));

  // Write while the link is up so the batch ships and arms its ack
  // deadline, then cut the link while the batch is in flight (5ms base
  // latency). The deadline fires and suspends the group.
  const SimTime lost_write = env_.now();
  ASSERT_TRUE(main_.WriteSync(p, 0, BlockOf('z')).ok());
  env_.RunFor(Milliseconds(2));
  to_backup_.SetConnected(false);
  env_.RunFor(Milliseconds(100));
  auto stats = engine_.GetGroupStats(g);
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->suspended);
  EXPECT_EQ(stats->apply_lag, env_.now() - lost_write)
      << "suspension must not reset the RPO clock";

  to_backup_.SetConnected(true);
  ASSERT_TRUE(engine_.ResyncGroup(g).ok());
  env_.RunFor(Milliseconds(100));
  stats = engine_.GetGroupStats(g);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->suspended);
  EXPECT_EQ(stats->apply_lag, 0);
}

// The windowed compression ratio reacts to a config change immediately,
// while the cumulative ratio only drifts.
TEST_F(ReplicationTest, WindowedCompressionRatioTracksToggle) {
  auto [p, s] = MakeVolumes("v", 256);
  ConsistencyGroupConfig cfg;
  cfg.name = "cg";
  cfg.journal_capacity_bytes = 16 << 20;
  cfg.compress_transfers = true;
  auto created = engine_.CreateConsistencyGroup(cfg);
  ASSERT_TRUE(created.ok());
  GroupId g = *created;
  MakeAsyncPair(p, s, g);

  // Highly compressible traffic: the ratio climbs well above 1.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(main_.WriteSync(p, i % 200, BlockOf('c')).ok());
    env_.RunFor(Milliseconds(2));
  }
  env_.RunFor(Milliseconds(50));
  auto stats = engine_.GetGroupStats(g);
  ASSERT_TRUE(stats.ok());
  ASSERT_GT(stats->compression_ratio, 1.5);
  ASSERT_GT(stats->compression_ratio_window, 1.5);
  ASSERT_GT(stats->compression_window_batches, 0u);
  const double cumulative_before = stats->compression_ratio;

  // Turn compression off and ship enough batches to fill the window.
  ASSERT_TRUE(engine_.SetGroupCompression(g, false).ok());
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(main_.WriteSync(p, i % 200, BlockOf('c')).ok());
    env_.RunFor(Milliseconds(2));
  }
  env_.RunFor(Milliseconds(50));
  stats = engine_.GetGroupStats(g);
  ASSERT_TRUE(stats.ok());
  // The window sees only uncompressed batches: ratio collapses to 1.
  EXPECT_NEAR(stats->compression_ratio_window, 1.0, 0.01);
  // The cumulative ratio still remembers the compressed era.
  EXPECT_GT(stats->compression_ratio, stats->compression_ratio_window);
  EXPECT_LT(stats->compression_ratio, cumulative_before);
  EXPECT_LE(stats->compression_window_batches, 64u);
}

TEST_F(ReplicationTest, StateNamesAreStable) {
  EXPECT_STREQ(PairStateName(PairState::kCopy), "COPY");
  EXPECT_STREQ(PairStateName(PairState::kPaired), "PAIR");
  EXPECT_STREQ(PairStateName(PairState::kSuspended), "PSUS");
  EXPECT_STREQ(PairStateName(PairState::kSwapped), "SSWS");
  EXPECT_STREQ(ReplicationModeName(ReplicationMode::kSynchronous), "sync");
  EXPECT_STREQ(ReplicationModeName(ReplicationMode::kAsynchronous),
               "async");
}

}  // namespace
}  // namespace zerobak::replication
