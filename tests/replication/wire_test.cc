// Wire-format round-trip, integrity and zero-copy-decode tests for the
// shipped-batch encoder in replication/wire.{h,cc}.
#include "replication/wire.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "common/rng.h"
#include "exec/thread_pool.h"
#include "journal/journal.h"

namespace zerobak::replication::wire {
namespace {

using journal::JournalRecord;
using journal::PayloadBuffer;

std::vector<JournalRecord> MakeBatch() {
  std::vector<JournalRecord> batch;
  const journal::SequenceNumber last = 103;
  for (int i = 0; i < 4; ++i) {
    JournalRecord rec;
    rec.sequence = 100 + i;
    rec.volume_id = 7 + (i % 2);
    rec.lba = 4096 + i * 8;
    rec.block_count = 1;
    rec.ack_time = 1000000 + i * 250;
    rec.atomic_through = last;
    rec.payload = PayloadBuffer::Copy(std::string(4096, 'a' + i));
    batch.push_back(std::move(rec));
  }
  // Record 101 folds: header-only tombstone, no payload.
  batch[1].folded = true;
  batch[1].payload = PayloadBuffer();
  return batch;
}

void ExpectBatchEquals(const std::vector<JournalRecord>& got,
                       const std::vector<JournalRecord>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].sequence, want[i].sequence) << i;
    EXPECT_EQ(got[i].volume_id, want[i].volume_id) << i;
    EXPECT_EQ(got[i].lba, want[i].lba) << i;
    EXPECT_EQ(got[i].block_count, want[i].block_count) << i;
    EXPECT_EQ(got[i].ack_time, want[i].ack_time) << i;
    EXPECT_EQ(got[i].atomic_through, want[i].atomic_through) << i;
    EXPECT_EQ(got[i].folded, want[i].folded) << i;
    EXPECT_EQ(got[i].payload.view(), want[i].payload.view()) << i;
  }
}

TEST(WireTest, RoundTripCompressed) {
  const auto batch = MakeBatch();
  EncodedBatch enc = EncodeBatch(batch, /*compress=*/true);
  // Three identical-byte 4 KiB payloads: compression must bite hard.
  EXPECT_TRUE(enc.compressed);
  EXPECT_LT(enc.frame.size(), enc.logical_bytes / 2);
  uint64_t logical = 0;
  for (const auto& rec : batch) logical += rec.EncodedSize();
  EXPECT_EQ(enc.logical_bytes, logical);

  auto decoded = DecodeBatch(enc.frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ExpectBatchEquals(*decoded, batch);
}

TEST(WireTest, RoundTripUncompressed) {
  const auto batch = MakeBatch();
  EncodedBatch enc = EncodeBatch(batch, /*compress=*/false);
  EXPECT_FALSE(enc.compressed);
  auto decoded = DecodeBatch(enc.frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ExpectBatchEquals(*decoded, batch);
}

TEST(WireTest, IncompressiblePayloadStillFramesCorrectly) {
  Rng rng(17);
  std::vector<JournalRecord> batch;
  JournalRecord rec;
  rec.sequence = 1;
  rec.volume_id = 1;
  rec.block_count = 2;
  rec.atomic_through = 1;
  std::string noise(8192, '\0');
  for (char& c : noise) c = static_cast<char>(rng.Uniform(256));
  rec.payload = PayloadBuffer::Copy(noise);
  batch.push_back(std::move(rec));

  EncodedBatch enc = EncodeBatch(batch, /*compress=*/true);
  // The compressor's stored escape fired; the frame is never much larger
  // than the logical bytes.
  EXPECT_FALSE(enc.compressed);
  EXPECT_LE(enc.frame.size(), enc.logical_bytes + 64);
  auto decoded = DecodeBatch(enc.frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ((*decoded)[0].payload.view(), noise);
}

TEST(WireTest, EmptyBatchRoundTrips) {
  EncodedBatch enc = EncodeBatch({}, /*compress=*/true);
  auto decoded = DecodeBatch(enc.frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->empty());
}

TEST(WireTest, DecodeAllocatesOnePayloadBufferPerBatch) {
  const auto batch = MakeBatch();
  EncodedBatch enc = EncodeBatch(batch, /*compress=*/true);
  const uint64_t before = PayloadBuffer::TotalAllocations();
  auto decoded = DecodeBatch(enc.frame);
  const uint64_t after = PayloadBuffer::TotalAllocations();
  ASSERT_TRUE(decoded.ok());
  // All record payloads are slices of one Wrap of the decoded body.
  EXPECT_EQ(after - before, 1u);
}

TEST(WireTest, EveryBitFlipIsRejected) {
  const auto batch = MakeBatch();
  for (bool compress : {true, false}) {
    EncodedBatch enc = EncodeBatch(batch, compress);
    // Flip one bit at a spread of positions covering the header, the
    // record table and the payload section.
    for (size_t pos = 0; pos < enc.frame.size();
         pos += 1 + enc.frame.size() / 97) {
      std::string corrupt = enc.frame;
      corrupt[pos] ^= 0x10;
      auto decoded = DecodeBatch(corrupt);
      EXPECT_FALSE(decoded.ok())
          << "bit flip at byte " << pos << " (compress=" << compress
          << ") was not caught";
    }
  }
}

TEST(WireTest, TruncatedFramesAreRejected) {
  const auto batch = MakeBatch();
  EncodedBatch enc = EncodeBatch(batch, /*compress=*/true);
  for (size_t len : {size_t{0}, size_t{3}, size_t{4}, size_t{12},
                     enc.frame.size() / 2, enc.frame.size() - 1}) {
    auto decoded = DecodeBatch(std::string_view(enc.frame).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "truncation to " << len << " accepted";
  }
}

// ----- Chunked frames (bodies > kChunkBytes) and the compute pool -----

// A batch whose plain body comfortably exceeds kChunkBytes, mixing
// compressible and incompressible payloads so some chunks shrink a lot
// and others hit the stored escape.
std::vector<JournalRecord> MakeLargeBatch(uint64_t seed = 99) {
  Rng rng(seed);
  std::vector<JournalRecord> batch;
  const journal::SequenceNumber last = 240;
  for (int i = 0; i < 40; ++i) {
    JournalRecord rec;
    rec.sequence = 200 + i;
    rec.volume_id = 1 + (i % 3);
    rec.lba = i * 16;
    rec.block_count = 2;
    rec.ack_time = 5000000 + i * 111;
    rec.atomic_through = last;
    std::string payload(8192, '\0');
    if (i % 2 == 0) {
      payload.assign(8192, static_cast<char>('a' + i % 26));
    } else {
      for (char& c : payload) c = static_cast<char>(rng.Uniform(256));
    }
    rec.payload = PayloadBuffer::Copy(payload);
    batch.push_back(std::move(rec));
  }
  return batch;
}

TEST(WireChunkedTest, LargeBodyRoundTrips) {
  const auto batch = MakeLargeBatch();
  EncodedBatch enc = EncodeBatch(batch, /*compress=*/true);
  EXPECT_TRUE(enc.compressed);
  EXPECT_GT(enc.logical_bytes, kChunkBytes);  // Chunked path engaged.
  auto decoded = DecodeBatch(enc.frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ExpectBatchEquals(*decoded, batch);
}

TEST(WireChunkedTest, FramesIdenticalWithAndWithoutPool) {
  // The frame is a wire artifact shared between sites: its bytes must not
  // depend on whether (or how wide) a compute pool encoded it.
  const auto batch = MakeLargeBatch();
  const EncodedBatch inline_enc = EncodeBatch(batch, /*compress=*/true);
  for (unsigned lanes : {2u, 4u, 8u}) {
    exec::ThreadPool pool(lanes);
    const EncodedBatch pooled = EncodeBatch(batch, /*compress=*/true, &pool);
    EXPECT_EQ(pooled.frame, inline_enc.frame) << "lanes=" << lanes;
    EXPECT_EQ(pooled.logical_bytes, inline_enc.logical_bytes);
    EXPECT_EQ(pooled.compressed, inline_enc.compressed);
  }
  // Small batches must also be invariant (they take the legacy path).
  const auto small = MakeBatch();
  exec::ThreadPool pool(4);
  EXPECT_EQ(EncodeBatch(small, true, &pool).frame,
            EncodeBatch(small, true).frame);
}

TEST(WireChunkedTest, PooledDecodeMatchesInlineDecode) {
  const auto batch = MakeLargeBatch();
  EncodedBatch enc = EncodeBatch(batch, /*compress=*/true);
  exec::ThreadPool pool(4);
  auto pooled = DecodeBatch(enc.frame, &pool);
  ASSERT_TRUE(pooled.ok()) << pooled.status();
  ExpectBatchEquals(*pooled, batch);
}

TEST(WireChunkedTest, DecodeAllocatesOnePayloadBufferPerBatch) {
  // The zero-copy property must survive chunking: every payload is still
  // a slice of a single decoded-body buffer.
  const auto batch = MakeLargeBatch();
  EncodedBatch enc = EncodeBatch(batch, /*compress=*/true);
  exec::ThreadPool pool(4);
  for (exec::ThreadPool* p : {static_cast<exec::ThreadPool*>(nullptr),
                              &pool}) {
    const uint64_t before = PayloadBuffer::TotalAllocations();
    auto decoded = DecodeBatch(enc.frame, p);
    const uint64_t after = PayloadBuffer::TotalAllocations();
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(after - before, 1u);
  }
}

TEST(WireChunkedTest, ParallelCrc32cMatchesSinglePass) {
  Rng rng(31337);
  exec::ThreadPool pool(4);
  for (size_t len : {size_t{0}, size_t{1}, kChunkBytes - 1, kChunkBytes,
                     kChunkBytes + 1, 5 * kChunkBytes + 1234}) {
    std::string data(len, '\0');
    for (char& c : data) c = static_cast<char>(rng.Uniform(256));
    const uint32_t want = Crc32c(data.data(), data.size());
    EXPECT_EQ(ParallelCrc32c(data, nullptr), want) << "inline len " << len;
    EXPECT_EQ(ParallelCrc32c(data, &pool), want) << "pooled len " << len;
  }
}

TEST(WireChunkedTest, BitFlipsInChunkedFrameAreRejected) {
  const auto batch = MakeLargeBatch();
  EncodedBatch enc = EncodeBatch(batch, /*compress=*/true);
  exec::ThreadPool pool(4);
  // Sparser stride than the small-frame test (the frame is ~200 KiB), but
  // still covering header, chunk table and chunk data.
  for (size_t pos = 0; pos < enc.frame.size();
       pos += 1 + enc.frame.size() / 61) {
    std::string corrupt = enc.frame;
    corrupt[pos] ^= 0x10;
    EXPECT_FALSE(DecodeBatch(corrupt).ok())
        << "inline decode accepted flip at " << pos;
    EXPECT_FALSE(DecodeBatch(corrupt, &pool).ok())
        << "pooled decode accepted flip at " << pos;
  }
}

TEST(WireChunkedTest, TruncatedChunkedFramesAreRejected) {
  const auto batch = MakeLargeBatch();
  EncodedBatch enc = EncodeBatch(batch, /*compress=*/true);
  for (size_t len : {size_t{12}, size_t{13}, size_t{64},
                     enc.frame.size() / 2, enc.frame.size() - 1}) {
    auto decoded = DecodeBatch(std::string_view(enc.frame).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "truncation to " << len << " accepted";
  }
}

TEST(WireTest, GarbageNeverCrashes) {
  Rng rng(4242);
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage(rng.Uniform(256), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Uniform(256));
    auto decoded = DecodeBatch(garbage);
    // Random input virtually never carries a valid magic + CRC; the
    // contract under test is simply "no crash, no overrun".
    (void)decoded;
  }
}

}  // namespace
}  // namespace zerobak::replication::wire
