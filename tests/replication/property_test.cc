// Randomized property and failure-injection tests for the replication
// engine. These are the invariants the whole paper rests on:
//
//   P1  (consistency group) at EVERY instant, the backup volumes form a
//       prefix of the cross-volume write order;
//   P2  (per-volume ADC) that prefix property is genuinely violable —
//       otherwise our P1 result would be vacuous;
//   P3  whatever sequence of link failures, suspensions, overflows and
//       resyncs occurs, a final resync + drain converges the backup to
//       the main content, and replication still works afterwards.
#include <gtest/gtest.h>

#include "common/coding.h"
#include "common/rng.h"
#include "replication/replication.h"
#include "storage/array.h"

namespace zerobak::replication {
namespace {

storage::ArrayConfig ZeroLatency(const std::string& serial) {
  storage::ArrayConfig cfg;
  cfg.serial = serial;
  cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  return cfg;
}

// A block payload carrying a 64-bit counter (readable back for ordering
// checks).
std::string CounterBlock(uint64_t counter) {
  std::string data(block::kDefaultBlockSize, '\0');
  EncodeFixed64(data.data(), counter);
  return data;
}

uint64_t CounterOf(const std::string& data) {
  return data.size() >= 8 ? DecodeFixed64(data.data()) : 0;
}

class PropertyRig {
 public:
  explicit PropertyRig(uint64_t seed, SimDuration jitter = Milliseconds(4))
      : main_(&env_, ZeroLatency("MAIN")),
        backup_(&env_, ZeroLatency("BKUP")),
        to_backup_(&env_, LinkCfg(seed, jitter), "fwd"),
        to_main_(&env_, LinkCfg(seed + 1, jitter), "rev"),
        engine_(&env_, &main_, &backup_, &to_backup_, &to_main_) {}

  static sim::NetworkLinkConfig LinkCfg(uint64_t seed, SimDuration jitter) {
    sim::NetworkLinkConfig cfg;
    cfg.base_latency = Milliseconds(2);
    cfg.jitter = jitter;
    cfg.bandwidth_bytes_per_sec = 0;
    cfg.seed = seed;
    return cfg;
  }

  // Creates `n` volume pairs; `shared_group` controls the topology.
  void CreatePairs(int n, bool shared_group,
                   uint64_t journal_capacity = 64ull << 20) {
    GroupId shared = 0;
    if (shared_group) {
      ConsistencyGroupConfig cfg;
      cfg.journal_capacity_bytes = journal_capacity;
      shared = *engine_.CreateConsistencyGroup(cfg);
      groups_.push_back(shared);
    }
    for (int i = 0; i < n; ++i) {
      auto p = main_.CreateVolume("p" + std::to_string(i), 256);
      auto s = backup_.CreateVolume("s" + std::to_string(i), 256);
      ASSERT_TRUE(p.ok() && s.ok());
      GroupId group = shared;
      if (!shared_group) {
        ConsistencyGroupConfig cfg;
        cfg.journal_capacity_bytes = journal_capacity;
        group = *engine_.CreateConsistencyGroup(cfg);
        groups_.push_back(group);
      }
      PairConfig pc;
      pc.name = "pair" + std::to_string(i);
      pc.primary = *p;
      pc.secondary = *s;
      pc.mode = ReplicationMode::kAsynchronous;
      pc.group = group;
      auto pair = engine_.CreatePair(pc);
      ASSERT_TRUE(pair.ok());
      pvols_.push_back(*p);
      svols_.push_back(*s);
      pairs_.push_back(*pair);
    }
    env_.RunFor(Milliseconds(20));
  }

  // Writes the same monotonically increasing counter round-robin across
  // all volumes at block 0: v0 then v1 then ... (strictly ordered by
  // host acks).
  void WriteRoundRobin(uint64_t counter) {
    for (storage::VolumeId v : pvols_) {
      ASSERT_TRUE(main_.WriteSync(v, 0, CounterBlock(counter)).ok());
    }
  }

  // The prefix property: counters at the backup must be non-increasing
  // along the write order, and adjacent volumes differ by at most 1.
  bool BackupIsPrefixConsistent() const {
    uint64_t prev = UINT64_MAX;
    for (size_t i = 0; i < svols_.size(); ++i) {
      const uint64_t c = CounterOf(
          backup_.GetVolume(svols_[i])->store().ReadBlock(0));
      if (c > prev) return false;  // A later volume ran ahead.
      prev = c;
    }
    const uint64_t first =
        CounterOf(backup_.GetVolume(svols_[0])->store().ReadBlock(0));
    const uint64_t last = CounterOf(
        backup_.GetVolume(svols_.back())->store().ReadBlock(0));
    return first - last <= 1;
  }

  bool AllConverged() {
    for (size_t i = 0; i < pvols_.size(); ++i) {
      if (!main_.GetVolume(pvols_[i])
               ->ContentEquals(*backup_.GetVolume(svols_[i]))) {
        return false;
      }
    }
    return true;
  }

  sim::SimEnvironment env_;
  storage::StorageArray main_;
  storage::StorageArray backup_;
  sim::NetworkLink to_backup_;
  sim::NetworkLink to_main_;
  ReplicationEngine engine_;
  std::vector<storage::VolumeId> pvols_;
  std::vector<storage::VolumeId> svols_;
  std::vector<PairId> pairs_;
  std::vector<GroupId> groups_;
};

class SeededPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// P1: the consistency group preserves the cross-volume prefix property at
// every observation instant, for every seed.
TEST_P(SeededPropertyTest, ConsistencyGroupPrefixAlwaysHolds) {
  PropertyRig rig(GetParam());
  rig.CreatePairs(4, /*shared_group=*/true);
  Rng rng(GetParam());
  uint64_t counter = 0;
  for (int step = 0; step < 400; ++step) {
    if (rng.Bernoulli(0.6)) {
      rig.WriteRoundRobin(++counter);
    }
    rig.env_.RunFor(static_cast<SimDuration>(
        rng.Uniform(Microseconds(800)) + 1));
    ASSERT_TRUE(rig.BackupIsPrefixConsistent())
        << "seed " << GetParam() << " step " << step;
  }
  rig.env_.RunFor(Milliseconds(100));
  EXPECT_TRUE(rig.AllConverged());
}

// P3: arbitrary interleavings of suspend/resync/link-flap converge after
// a final repair, and replication keeps working.
TEST_P(SeededPropertyTest, ChaosThenResyncConverges) {
  PropertyRig rig(GetParam());
  rig.CreatePairs(3, /*shared_group=*/true, /*journal=*/1 << 20);
  Rng rng(GetParam() * 7 + 1);
  const GroupId group = rig.groups_[0];
  uint64_t counter = 0;
  bool link_up = true;
  for (int step = 0; step < 300; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.55) {
      rig.WriteRoundRobin(++counter);
    } else if (dice < 0.65) {
      link_up = !link_up;
      rig.to_backup_.SetConnected(link_up);
    } else if (dice < 0.72) {
      (void)rig.engine_.SuspendGroup(group);
    } else if (dice < 0.85 && link_up) {
      (void)rig.engine_.ResyncGroup(group);
    }
    rig.env_.RunFor(static_cast<SimDuration>(
        rng.Uniform(Microseconds(500)) + 1));
  }
  // Final repair: link up, resync, drain.
  rig.to_backup_.SetConnected(true);
  rig.to_main_.SetConnected(true);
  rig.env_.RunFor(Milliseconds(50));
  (void)rig.engine_.ResyncGroup(group);
  rig.env_.RunFor(Milliseconds(200));
  ASSERT_TRUE(rig.AllConverged()) << "seed " << GetParam();

  // And the pipe still works.
  rig.WriteRoundRobin(++counter);
  rig.env_.RunFor(Milliseconds(100));
  EXPECT_TRUE(rig.AllConverged()) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// P2: without the shared journal, the prefix property is violated for at
// least one seed/instant — the collapse mechanism is real.
TEST(PerVolumePropertyTest, PrefixViolationsObservable) {
  int violations = 0;
  for (uint64_t seed : {1, 2, 3, 5, 8, 13, 21, 34}) {
    PropertyRig rig(seed);
    rig.CreatePairs(4, /*shared_group=*/false);
    Rng rng(seed);
    uint64_t counter = 0;
    for (int step = 0; step < 200 && violations == 0; ++step) {
      if (rng.Bernoulli(0.6)) rig.WriteRoundRobin(++counter);
      rig.env_.RunFor(static_cast<SimDuration>(
          rng.Uniform(Microseconds(800)) + 1));
      if (!rig.BackupIsPrefixConsistent()) ++violations;
    }
    if (violations > 0) break;
  }
  EXPECT_GT(violations, 0)
      << "per-volume ADC never violated the prefix property; the "
         "consistency-group comparison would be vacuous";
}

// Failure injection: the backup array dies while the initial copy is on
// the wire; the pair suspends instead of pairing, and a later resync
// completes the copy.
TEST(FailureInjectionTest, BackupDiesDuringInitialCopy) {
  PropertyRig rig(42, /*jitter=*/0);
  auto p = rig.main_.CreateVolume("p", 256);
  auto s = rig.backup_.CreateVolume("s", 256);
  ASSERT_TRUE(p.ok() && s.ok());
  // Populate so there is a real base image to ship.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(rig.main_.WriteSync(*p, i, CounterBlock(1)).ok());
  }
  auto group = rig.engine_.CreateConsistencyGroup({.name = "g"});
  ASSERT_TRUE(group.ok());
  PairConfig pc;
  pc.primary = *p;
  pc.secondary = *s;
  pc.mode = ReplicationMode::kAsynchronous;
  pc.group = *group;
  auto pair = rig.engine_.CreatePair(pc);
  ASSERT_TRUE(pair.ok());
  ASSERT_EQ(rig.engine_.GetPair(*pair)->state(), PairState::kCopy);

  // The backup array fails before the base image lands.
  rig.backup_.SetFailed(true);
  rig.env_.RunFor(Milliseconds(50));
  EXPECT_EQ(rig.engine_.GetPair(*pair)->state(), PairState::kSuspended);

  // Repair and resync: since the suspension happened before any sync,
  // the engine must re-ship everything.
  rig.backup_.SetFailed(false);
  // Mark everything dirty via suspend bookkeeping + group resync.
  ASSERT_TRUE(rig.engine_.SuspendGroup(*group).ok());
  // Touch all blocks so the dirty set covers the volume.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(rig.main_.WriteSync(*p, i, CounterBlock(2)).ok());
  }
  ASSERT_TRUE(rig.engine_.ResyncGroup(*group).ok());
  rig.env_.RunFor(Milliseconds(100));
  EXPECT_EQ(rig.engine_.GetPair(*pair)->state(), PairState::kPaired);
  EXPECT_TRUE(rig.main_.GetVolume(*p)->ContentEquals(
      *rig.backup_.GetVolume(*s)));
}

// Failure injection: overflow happens again during the post-resync catch
// up; the group just suspends again and a second resync completes.
TEST(FailureInjectionTest, RepeatedOverflowResyncCycles) {
  PropertyRig rig(7, /*jitter=*/0);
  rig.CreatePairs(1, /*shared_group=*/true, /*journal=*/20000);
  const GroupId group = rig.groups_[0];
  Rng rng(7);
  for (int cycle = 0; cycle < 4; ++cycle) {
    rig.to_backup_.SetConnected(false);
    // Enough writes to overflow the 20 KB journal several times over.
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(rig.main_
                      .WriteSync(rig.pvols_[0],
                                 rng.Uniform(256),
                                 CounterBlock(static_cast<uint64_t>(
                                     cycle * 100 + i)))
                      .ok());
    }
    auto stats = rig.engine_.GetGroupStats(group);
    ASSERT_TRUE(stats.ok());
    EXPECT_GT(stats->journal_overflows, 0u) << "cycle " << cycle;
    rig.to_backup_.SetConnected(true);
    ASSERT_TRUE(rig.engine_.ResyncGroup(group).ok());
    rig.env_.RunFor(Milliseconds(100));
    ASSERT_TRUE(rig.AllConverged()) << "cycle " << cycle;
  }
}

// Failure injection: a mid-stream partition without overflow; when the
// link returns, the journal drains by itself (no resync needed).
TEST(FailureInjectionTest, ShortPartitionDrainsWithoutResync) {
  PropertyRig rig(9, /*jitter=*/0);
  rig.CreatePairs(2, /*shared_group=*/true);
  const GroupId group = rig.groups_[0];
  rig.to_backup_.SetConnected(false);
  for (uint64_t c = 1; c <= 20; ++c) rig.WriteRoundRobin(c);
  rig.env_.RunFor(Milliseconds(30));
  EXPECT_FALSE(rig.AllConverged());
  auto stats = rig.engine_.GetGroupStats(group);
  EXPECT_EQ(stats->journal_overflows, 0u);

  rig.to_backup_.SetConnected(true);
  rig.env_.RunFor(Milliseconds(100));
  EXPECT_TRUE(rig.AllConverged());
  EXPECT_EQ(rig.engine_.GetPair(rig.pairs_[0])->state(),
            PairState::kPaired);
}

}  // namespace
}  // namespace zerobak::replication
