// Verifies the zero-copy property of the ADC data path: one PayloadBuffer
// allocation per replicated host write, from host ack to S-VOL apply, and
// correct sharing between the primary journal, the ship batch and the
// secondary journal.
#include <gtest/gtest.h>

#include "journal/journal.h"
#include "replication/replication.h"
#include "storage/array.h"

namespace zerobak::replication {
namespace {

std::string BlockOf(char c) {
  return std::string(block::kDefaultBlockSize, c);
}

storage::ArrayConfig ZeroLatency(const std::string& serial) {
  storage::ArrayConfig cfg;
  cfg.serial = serial;
  cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  return cfg;
}

class ZeroCopyTest : public ::testing::Test {
 protected:
  ZeroCopyTest()
      : main_(&env_, ZeroLatency("MAIN")),
        backup_(&env_, ZeroLatency("BKUP")),
        to_backup_(&env_, LinkConfig(1), "fwd"),
        to_main_(&env_, LinkConfig(2), "rev"),
        engine_(&env_, &main_, &backup_, &to_backup_, &to_main_) {}

  static sim::NetworkLinkConfig LinkConfig(uint64_t seed) {
    sim::NetworkLinkConfig cfg;
    cfg.base_latency = Milliseconds(5);
    cfg.jitter = 0;
    cfg.bandwidth_bytes_per_sec = 0;
    cfg.seed = seed;
    return cfg;
  }

  sim::SimEnvironment env_;
  storage::StorageArray main_;
  storage::StorageArray backup_;
  sim::NetworkLink to_backup_;
  sim::NetworkLink to_main_;
  ReplicationEngine engine_;
};

TEST_F(ZeroCopyTest, AdcPathAllocatesPayloadExactlyOncePerWrite) {
  auto p = main_.CreateVolume("v", 64);
  auto s = backup_.CreateVolume("r-v", 64);
  ASSERT_TRUE(p.ok() && s.ok());
  ConsistencyGroupConfig gcfg;
  gcfg.name = "cg";
  auto g = engine_.CreateConsistencyGroup(gcfg);
  ASSERT_TRUE(g.ok());
  PairConfig pcfg;
  pcfg.name = "pair";
  pcfg.primary = *p;
  pcfg.secondary = *s;
  pcfg.mode = ReplicationMode::kAsynchronous;
  pcfg.group = *g;
  ASSERT_TRUE(engine_.CreatePair(pcfg).ok());
  env_.RunFor(Milliseconds(20));  // Initial copy (empty) settles.

  constexpr int kWrites = 32;
  const uint64_t before = journal::PayloadBuffer::TotalAllocations();
  const uint64_t batches_before = to_backup_.messages_sent();
  for (int i = 0; i < kWrites; ++i) {
    ASSERT_TRUE(main_.WriteSync(*p, i % 64, BlockOf('a' + (i % 26))).ok());
  }
  // Drive ship + apply + trim-ack to completion.
  env_.RunFor(Milliseconds(100));
  const uint64_t after = journal::PayloadBuffer::TotalAllocations();
  const uint64_t batches = to_backup_.messages_sent() - batches_before;

  // Send side: interceptor, primary journal and ship batch allocated each
  // payload exactly once. Receive side: decoding a wire frame wraps the
  // whole batch in ONE backing buffer that the secondary journal and the
  // S-VOL apply share — one extra allocation per delivered batch, not per
  // record.
  ASSERT_GE(batches, 1u);
  EXPECT_EQ(after - before, static_cast<uint64_t>(kWrites) + batches);

  // And the data really landed.
  EXPECT_TRUE(
      main_.GetVolume(*p)->ContentEquals(*backup_.GetVolume(*s)));
  auto stats = engine_.GetGroupStats(*g);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->applied, static_cast<uint64_t>(kWrites));
}

TEST_F(ZeroCopyTest, ShippedBatchSurvivesPrimaryJournalReset) {
  auto p = main_.CreateVolume("v", 64);
  auto s = backup_.CreateVolume("r-v", 64);
  ASSERT_TRUE(p.ok() && s.ok());
  ConsistencyGroupConfig gcfg;
  gcfg.name = "cg";
  // Long transfer interval so the batch is shipped in one pump.
  gcfg.transfer_interval = Milliseconds(2);
  auto g = engine_.CreateConsistencyGroup(gcfg);
  ASSERT_TRUE(g.ok());
  PairConfig pcfg;
  pcfg.name = "pair";
  pcfg.primary = *p;
  pcfg.secondary = *s;
  pcfg.mode = ReplicationMode::kAsynchronous;
  pcfg.group = *g;
  ASSERT_TRUE(engine_.CreatePair(pcfg).ok());
  env_.RunFor(Milliseconds(20));

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(main_.WriteSync(*p, i, BlockOf('a' + i)).ok());
  }
  // Let the pump ship the batch onto the (5 ms) link, then destroy the
  // primary journal contents while the batch is still in flight. The
  // shared payload buffers must keep the shipped bytes alive.
  env_.RunFor(Milliseconds(3));
  engine_.primary_journal(*g)->Reset();
  env_.RunFor(Milliseconds(100));

  EXPECT_TRUE(
      main_.GetVolume(*p)->ContentEquals(*backup_.GetVolume(*s)));
}

}  // namespace
}  // namespace zerobak::replication
