// Tests for the coalescing transfer pipeline: write-folding in shipped
// batches (header-only tombstones + atomic batch apply), sorted batch
// apply through WriteRun, extent-merging bitmap resync with a canonical
// sorted order, and adaptive batch sizing.
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "journal/journal.h"
#include "replication/replication.h"
#include "storage/array.h"

namespace zerobak::replication {
namespace {

std::string BlockOf(char c) {
  return std::string(block::kDefaultBlockSize, c);
}

storage::ArrayConfig ZeroLatency(const std::string& serial) {
  storage::ArrayConfig cfg;
  cfg.serial = serial;
  cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  return cfg;
}

class CoalesceTest : public ::testing::Test {
 protected:
  CoalesceTest()
      : main_(&env_, ZeroLatency("MAIN")),
        backup_(&env_, ZeroLatency("BKUP")),
        to_backup_(&env_, LinkConfig(1), "fwd"),
        to_main_(&env_, LinkConfig(2), "rev"),
        engine_(&env_, &main_, &backup_, &to_backup_, &to_main_) {}

  static sim::NetworkLinkConfig LinkConfig(uint64_t seed) {
    sim::NetworkLinkConfig cfg;
    cfg.base_latency = Milliseconds(5);
    cfg.jitter = 0;
    cfg.bandwidth_bytes_per_sec = 0;
    cfg.seed = seed;
    return cfg;
  }

  std::pair<storage::VolumeId, storage::VolumeId> MakeVolumes(
      const std::string& name, uint64_t blocks = 64) {
    auto p = main_.CreateVolume(name, blocks);
    auto s = backup_.CreateVolume("r-" + name, blocks);
    EXPECT_TRUE(p.ok() && s.ok());
    return {*p, *s};
  }

  GroupId MakeGroup(ConsistencyGroupConfig cfg = {}) {
    if (cfg.name.empty()) cfg.name = "cg";
    auto g = engine_.CreateConsistencyGroup(cfg);
    EXPECT_TRUE(g.ok());
    return *g;
  }

  PairId MakeAsyncPair(storage::VolumeId p, storage::VolumeId s,
                       GroupId group) {
    PairConfig cfg;
    cfg.name = "pair";
    cfg.primary = p;
    cfg.secondary = s;
    cfg.mode = ReplicationMode::kAsynchronous;
    cfg.group = group;
    auto id = engine_.CreatePair(cfg);
    EXPECT_TRUE(id.ok()) << id.status();
    return id.ok() ? *id : 0;
  }

  bool Converged(storage::VolumeId p, storage::VolumeId s) {
    return main_.GetVolume(p)->ContentEquals(*backup_.GetVolume(s));
  }

  GroupStats Stats(GroupId g) {
    auto stats = engine_.GetGroupStats(g);
    EXPECT_TRUE(stats.ok());
    return stats.ok() ? *stats : GroupStats{};
  }

  sim::SimEnvironment env_;
  storage::StorageArray main_;
  storage::StorageArray backup_;
  sim::NetworkLink to_backup_;
  sim::NetworkLink to_main_;
  ReplicationEngine engine_;
};

TEST_F(CoalesceTest, FoldingTombstonesSupersededWrites) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  MakeAsyncPair(p, s, g);

  // Three rewrites of the same block before the first pump: the batch
  // ships one payload and two header-only tombstones.
  ASSERT_TRUE(main_.WriteSync(p, 3, BlockOf('a')).ok());
  ASSERT_TRUE(main_.WriteSync(p, 3, BlockOf('b')).ok());
  ASSERT_TRUE(main_.WriteSync(p, 3, BlockOf('c')).ok());
  env_.RunFor(Milliseconds(40));

  GroupStats st = Stats(g);
  EXPECT_EQ(st.applied, 3u);  // Sequence density preserved.
  EXPECT_EQ(st.records_folded, 2u);
  EXPECT_EQ(st.folded_bytes_saved, 2ull * block::kDefaultBlockSize);
  EXPECT_TRUE(Converged(p, s));
  EXPECT_EQ(backup_.GetVolume(s)->store().ReadBlock(3), BlockOf('c'));
}

TEST_F(CoalesceTest, FoldingPreservesInterleavedVolumes) {
  auto [pa, sa] = MakeVolumes("a");
  auto [pb, sb] = MakeVolumes("b");
  GroupId g = MakeGroup();
  MakeAsyncPair(pa, sa, g);
  MakeAsyncPair(pb, sb, g);

  // The classic fold hazard: A=1, B=2, A=3. Only A's first write folds;
  // B's record on the other volume must not be confused with A's blocks.
  ASSERT_TRUE(main_.WriteSync(pa, 0, BlockOf('1')).ok());
  ASSERT_TRUE(main_.WriteSync(pb, 0, BlockOf('2')).ok());
  ASSERT_TRUE(main_.WriteSync(pa, 0, BlockOf('3')).ok());
  env_.RunFor(Milliseconds(40));

  EXPECT_EQ(Stats(g).records_folded, 1u);
  EXPECT_EQ(backup_.GetVolume(sa)->store().ReadBlock(0), BlockOf('3'));
  EXPECT_EQ(backup_.GetVolume(sb)->store().ReadBlock(0), BlockOf('2'));
}

TEST_F(CoalesceTest, ReDirtyAfterFoldShipsNewContent) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  MakeAsyncPair(p, s, g);

  ASSERT_TRUE(main_.WriteSync(p, 7, BlockOf('x')).ok());
  ASSERT_TRUE(main_.WriteSync(p, 7, BlockOf('y')).ok());
  env_.RunFor(Milliseconds(40));
  ASSERT_EQ(Stats(g).records_folded, 1u);
  ASSERT_EQ(backup_.GetVolume(s)->store().ReadBlock(7), BlockOf('y'));

  // The block is written again after its older record was folded: the new
  // record ships normally in a later batch.
  ASSERT_TRUE(main_.WriteSync(p, 7, BlockOf('z')).ok());
  env_.RunFor(Milliseconds(40));
  EXPECT_EQ(backup_.GetVolume(s)->store().ReadBlock(7), BlockOf('z'));
  EXPECT_TRUE(Converged(p, s));
}

TEST_F(CoalesceTest, FoldingFreesPrimaryJournalCapacity) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  MakeAsyncPair(p, s, g);

  ASSERT_TRUE(main_.WriteSync(p, 1, BlockOf('a')).ok());
  ASSERT_TRUE(main_.WriteSync(p, 1, BlockOf('b')).ok());
  auto* pj = engine_.primary_journal(g);
  ASSERT_NE(pj, nullptr);
  const uint64_t before = pj->used_bytes();
  // Run just past one pump (2 ms) but well short of the 10 ms apply-ack
  // round trip, so nothing has been trimmed yet: the drop in used bytes is
  // the folded payload alone.
  env_.RunFor(Milliseconds(4));
  EXPECT_EQ(pj->used_bytes(), before - block::kDefaultBlockSize);
  EXPECT_EQ(pj->folded_records(), 1u);
  env_.RunFor(Milliseconds(40));
  EXPECT_TRUE(Converged(p, s));
}

TEST_F(CoalesceTest, FoldingDisabledShipsEveryPayload) {
  auto [p, s] = MakeVolumes("v");
  ConsistencyGroupConfig cfg;
  cfg.enable_write_folding = false;
  GroupId g = MakeGroup(cfg);
  MakeAsyncPair(p, s, g);

  ASSERT_TRUE(main_.WriteSync(p, 3, BlockOf('a')).ok());
  ASSERT_TRUE(main_.WriteSync(p, 3, BlockOf('b')).ok());
  ASSERT_TRUE(main_.WriteSync(p, 3, BlockOf('c')).ok());
  env_.RunFor(Milliseconds(40));

  GroupStats st = Stats(g);
  EXPECT_EQ(st.records_folded, 0u);
  EXPECT_EQ(st.folded_bytes_saved, 0u);
  EXPECT_EQ(st.applied, 3u);
  EXPECT_TRUE(Converged(p, s));
}

TEST_F(CoalesceTest, DuplicateLbasWithoutFoldingApplyInWriteOrder) {
  // With folding off, two same-LBA records survive into one batch; the
  // sorted apply must detect the overlap and fall back to sequence order,
  // or the older write would win.
  auto [p, s] = MakeVolumes("v");
  ConsistencyGroupConfig cfg;
  cfg.enable_write_folding = false;
  GroupId g = MakeGroup(cfg);
  MakeAsyncPair(p, s, g);

  ASSERT_TRUE(main_.WriteSync(p, 9, BlockOf('o')).ok());
  ASSERT_TRUE(main_.WriteSync(p, 2, BlockOf('m')).ok());
  ASSERT_TRUE(main_.WriteSync(p, 9, BlockOf('n')).ok());
  env_.RunFor(Milliseconds(40));
  EXPECT_EQ(backup_.GetVolume(s)->store().ReadBlock(9), BlockOf('n'));
  EXPECT_TRUE(Converged(p, s));
}

// A partially-received folded batch must not apply at all: a tombstone's
// cover could be in the missing tail, so applying the prefix would leave
// the backup on an image that never existed (A=1 folded, B=2 applied,
// A=3 missing => A=0, B=2). The apply watermark may only move in whole
// atomic batches — checked here by injecting a truncated batch directly
// into the secondary journal and failing over.
TEST_F(CoalesceTest, FailoverIgnoresPartiallyReceivedFoldedBatch) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  MakeAsyncPair(p, s, g);
  env_.RunFor(Milliseconds(20));  // Initial copy done; journals empty.

  auto* sj = engine_.secondary_journal(g);
  ASSERT_NE(sj, nullptr);
  // Simulated truncated arrival of a 3-record folded batch [1, 3]: the
  // tombstone (seq 1) and an unrelated write (seq 2) landed, the
  // tombstone's cover (seq 3) did not.
  journal::JournalRecord t;
  t.sequence = 1;
  t.volume_id = p;
  t.lba = 0;
  t.block_count = 1;
  t.atomic_through = 3;
  t.folded = true;
  ASSERT_TRUE(sj->AppendWithSequence(std::move(t)).ok());
  journal::JournalRecord b;
  b.sequence = 2;
  b.volume_id = p;
  b.lba = 1;
  b.block_count = 1;
  b.payload = journal::PayloadBuffer::Copy(BlockOf('2'));
  b.atomic_through = 3;
  ASSERT_TRUE(sj->AppendWithSequence(std::move(b)).ok());

  auto report = engine_.FailoverGroup(g);
  ASSERT_TRUE(report.ok());
  // Nothing from the torn batch reached the S-VOL; the recovery point is
  // the previous batch boundary.
  EXPECT_EQ(report->recovery_point, 0u);
  EXPECT_EQ(backup_.GetVolume(s)->store().ReadBlock(0),
            std::string(block::kDefaultBlockSize, '\0'));
  EXPECT_EQ(backup_.GetVolume(s)->store().ReadBlock(1),
            std::string(block::kDefaultBlockSize, '\0'));
}

// Captures the order in which resync content lands on the S-VOL. The
// pre-overwrite hooks fire per block immediately before each write.
std::vector<uint64_t> ApplyOrderOfResync(ReplicationEngine* engine,
                                         sim::SimEnvironment* env,
                                         storage::StorageArray* main,
                                         storage::StorageArray* backup,
                                         storage::VolumeId p,
                                         storage::VolumeId s, GroupId g) {
  std::vector<uint64_t> order;
  const uint64_t token = backup->GetVolume(s)->AddPreOverwriteHook(
      [&order](block::Lba lba, std::string_view) { order.push_back(lba); });
  EXPECT_TRUE(engine->SuspendGroup(g).ok());
  // Scattered dirty blocks written in a deliberately non-sorted order.
  for (uint64_t lba : {41u, 7u, 40u, 20u, 8u, 42u}) {
    EXPECT_TRUE(main->WriteSync(p, lba, BlockOf('d')).ok());
  }
  EXPECT_TRUE(engine->ResyncGroup(g).ok());
  env->RunFor(Milliseconds(40));
  backup->GetVolume(s)->RemovePreOverwriteHook(token);
  return order;
}

TEST_F(CoalesceTest, ResyncShipsSortedExtents) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  PairId pair = MakeAsyncPair(p, s, g);
  env_.RunFor(Milliseconds(20));

  std::vector<uint64_t> order = ApplyOrderOfResync(&engine_, &env_, &main_,
                                                   &backup_, p, s, g);
  // Canonical ascending-LBA order regardless of write order, and the
  // adjacent blocks {7,8}, {40,41,42} merged into extents.
  EXPECT_EQ(order, (std::vector<uint64_t>{7, 8, 20, 40, 41, 42}));
  GroupStats st = Stats(g);
  EXPECT_EQ(st.resync_extents, 3u);
  EXPECT_EQ(st.resync_blocks, 6u);
  EXPECT_EQ(engine_.GetPair(pair)->state(), PairState::kPaired);
  EXPECT_TRUE(Converged(p, s));
}

TEST_F(CoalesceTest, ResyncOrderIsStableAcrossRuns) {
  // Two independent engine stacks running the identical scenario must
  // apply the resync delta in the identical (sorted) block order — the
  // old hash-set walk made this order an accident of the stdlib.
  auto run = [] {
    sim::SimEnvironment env;
    storage::StorageArray main(&env, ZeroLatency("MAIN"));
    storage::StorageArray backup(&env, ZeroLatency("BKUP"));
    sim::NetworkLink fwd(&env, CoalesceTest::LinkConfig(1), "fwd");
    sim::NetworkLink rev(&env, CoalesceTest::LinkConfig(2), "rev");
    ReplicationEngine engine(&env, &main, &backup, &fwd, &rev);
    auto p = main.CreateVolume("v", 64);
    auto s = backup.CreateVolume("r-v", 64);
    EXPECT_TRUE(p.ok() && s.ok());
    ConsistencyGroupConfig gcfg;
    gcfg.name = "cg";
    auto g = engine.CreateConsistencyGroup(gcfg);
    EXPECT_TRUE(g.ok());
    PairConfig pc;
    pc.name = "pair";
    pc.primary = *p;
    pc.secondary = *s;
    pc.mode = ReplicationMode::kAsynchronous;
    pc.group = *g;
    EXPECT_TRUE(engine.CreatePair(pc).ok());
    env.RunFor(Milliseconds(20));
    return ApplyOrderOfResync(&engine, &env, &main, &backup, *p, *s, *g);
  };
  std::vector<uint64_t> first = run();
  std::vector<uint64_t> second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST_F(CoalesceTest, PerBlockResyncWhenExtentsDisabled) {
  auto [p, s] = MakeVolumes("v");
  ConsistencyGroupConfig cfg;
  cfg.enable_extent_resync = false;
  GroupId g = MakeGroup(cfg);
  MakeAsyncPair(p, s, g);
  env_.RunFor(Milliseconds(20));

  ASSERT_TRUE(engine_.SuspendGroup(g).ok());
  for (uint64_t lba : {10u, 11u, 12u}) {
    ASSERT_TRUE(main_.WriteSync(p, lba, BlockOf('e')).ok());
  }
  ASSERT_TRUE(engine_.ResyncGroup(g).ok());
  env_.RunFor(Milliseconds(40));
  GroupStats st = Stats(g);
  EXPECT_EQ(st.resync_extents, 3u);  // One single-block extent each.
  EXPECT_EQ(st.resync_blocks, 3u);
  EXPECT_TRUE(Converged(p, s));
}

TEST_F(CoalesceTest, ResyncCaptureIsStableUnderInFlightOverwrites) {
  // Resync captures extents as zero-copy slab views; a host write into a
  // captured range while the batch is on the wire must see the batch
  // deliver the *captured* image (copy-on-write), with the newer write
  // arriving afterwards through the journal.
  auto [p, s] = MakeVolumes("v");
  ConsistencyGroupConfig cfg;
  cfg.transfer_interval = Milliseconds(64);  // Journal ships late.
  GroupId g = MakeGroup(cfg);
  MakeAsyncPair(p, s, g);
  ASSERT_TRUE(main_.WriteSync(p, 5, BlockOf('a')).ok());
  env_.RunFor(Milliseconds(80));
  ASSERT_TRUE(Converged(p, s));

  ASSERT_TRUE(engine_.SuspendGroup(g).ok());
  ASSERT_TRUE(main_.WriteSync(p, 5, BlockOf('o')).ok());
  ASSERT_TRUE(engine_.ResyncGroup(g).ok());
  // Journaling has resumed; this overwrite lands while the resync batch
  // is still in flight and must not leak into it.
  ASSERT_TRUE(main_.WriteSync(p, 5, BlockOf('n')).ok());

  // Resync delivers after the 5 ms link latency; the journaled 'n' waits
  // for the next 64 ms pump. In between, the backup must hold the
  // captured 'o' — not 'n' — or a failover here would see a write that
  // never existed at suspension time.
  env_.RunFor(Milliseconds(20));
  EXPECT_EQ(backup_.GetVolume(s)->store().ReadBlock(5), BlockOf('o'));

  env_.RunFor(Milliseconds(80));
  EXPECT_EQ(backup_.GetVolume(s)->store().ReadBlock(5), BlockOf('n'));
  EXPECT_TRUE(Converged(p, s));
}

TEST_F(CoalesceTest, AdaptiveBatchGrowsUnderJournalBacklog) {
  auto [p, s] = MakeVolumes("v", /*blocks=*/4096);
  ConsistencyGroupConfig cfg;
  cfg.journal_capacity_bytes = 1 << 20;  // 1 MiB.
  cfg.transfer_batch_bytes = 64 << 10;
  cfg.transfer_batch_min_bytes = 64 << 10;
  cfg.transfer_batch_max_bytes = 16 << 20;
  GroupId g = MakeGroup(cfg);
  MakeAsyncPair(p, s, g);
  env_.RunFor(Milliseconds(20));
  ASSERT_EQ(Stats(g).transfer_batch_bytes_now, 64u << 10);

  // ~85 distinct-block records = ~350 KiB > a quarter of the journal: the
  // controller must scale the batch up until the backlog drains.
  for (uint64_t lba = 0; lba < 85; ++lba) {
    ASSERT_TRUE(main_.WriteSync(p, lba, BlockOf('w')).ok());
  }
  env_.RunFor(Milliseconds(4));
  EXPECT_GT(Stats(g).transfer_batch_bytes_now, 64u << 10);
  env_.RunFor(Milliseconds(60));
  EXPECT_TRUE(Converged(p, s));
}

TEST_F(CoalesceTest, AdaptiveBatchShrinksUnderLinkBacklog) {
  // A 1 MB/s link serializes a 64 KiB batch in ~64 ms >> 4 transfer
  // intervals: the controller must halve down to the floor.
  sim::SimEnvironment env;
  storage::StorageArray main(&env, ZeroLatency("MAIN"));
  storage::StorageArray backup(&env, ZeroLatency("BKUP"));
  sim::NetworkLinkConfig slow = LinkConfig(1);
  slow.bandwidth_bytes_per_sec = 1e6;
  sim::NetworkLink fwd(&env, slow, "fwd");
  sim::NetworkLink rev(&env, LinkConfig(2), "rev");
  ReplicationEngine engine(&env, &main, &backup, &fwd, &rev);
  auto p = main.CreateVolume("v", 4096);
  auto s = backup.CreateVolume("r-v", 4096);
  ASSERT_TRUE(p.ok() && s.ok());
  ConsistencyGroupConfig cfg;
  cfg.name = "cg";
  cfg.ack_timeout = 0;  // The slow link is not a failure here.
  // The backlog only builds if the batches actually occupy the wire at
  // their journal size; compression would shrink these constant-byte
  // payloads to almost nothing and starve the controller of pressure.
  cfg.compress_transfers = false;
  GroupId g;
  {
    auto gid = engine.CreateConsistencyGroup(cfg);
    ASSERT_TRUE(gid.ok());
    g = *gid;
  }
  PairConfig pc;
  pc.name = "pair";
  pc.primary = *p;
  pc.secondary = *s;
  pc.mode = ReplicationMode::kAsynchronous;
  pc.group = g;
  ASSERT_TRUE(engine.CreatePair(pc).ok());
  env.RunFor(Milliseconds(20));

  for (uint64_t lba = 0; lba < 64; ++lba) {
    ASSERT_TRUE(main.WriteSync(*p, lba, BlockOf('s')).ok());
  }
  env.RunFor(Milliseconds(30));
  auto stats = engine.GetGroupStats(g);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->transfer_batch_bytes_now,
            ConsistencyGroupConfig{}.transfer_batch_min_bytes);
}

TEST_F(CoalesceTest, ZeroBatchKnobsAreRejectedNotRewritten) {
  // All-zero batch knobs used to be silently rewritten by Normalized();
  // the control plane now refuses them outright so a misconfigured sweep
  // fails loudly at creation instead of running with invented values.
  ConsistencyGroupConfig cfg;
  cfg.transfer_batch_bytes = 0;
  cfg.transfer_batch_min_bytes = 0;
  cfg.transfer_batch_max_bytes = 0;
  auto gid = engine_.CreateConsistencyGroup(cfg);
  ASSERT_FALSE(gid.ok());
  EXPECT_EQ(gid.status().code(), StatusCode::kInvalidArgument);

  // A tiny-but-nonzero fixed batch is legal: the journal's one-record
  // progress guarantee keeps the group converging anyway.
  ConsistencyGroupConfig tiny;
  tiny.enable_adaptive_batching = false;
  tiny.transfer_batch_bytes = 1;
  auto tid = engine_.CreateConsistencyGroup(tiny);
  ASSERT_TRUE(tid.ok());
  auto [p, s] = MakeVolumes("v");
  MakeAsyncPair(p, s, *tid);
  ASSERT_TRUE(main_.WriteSync(p, 0, BlockOf('k')).ok());
  env_.RunFor(Milliseconds(40));
  EXPECT_TRUE(Converged(p, s));
}

TEST(ConsistencyGroupConfigTest, NormalizedBoundsTheBatchKnobs) {
  ConsistencyGroupConfig cfg;
  cfg.transfer_batch_bytes = 0;
  cfg.transfer_batch_min_bytes = 0;
  cfg.transfer_batch_max_bytes = 0;
  cfg.resync_max_extent_blocks = 0;
  ConsistencyGroupConfig n = cfg.Normalized();
  EXPECT_GT(n.transfer_batch_bytes, 0u);
  EXPECT_GT(n.transfer_batch_min_bytes, 0u);
  EXPECT_GE(n.transfer_batch_max_bytes, n.transfer_batch_min_bytes);
  EXPECT_GE(n.transfer_batch_bytes, n.transfer_batch_min_bytes);
  EXPECT_LE(n.transfer_batch_bytes, n.transfer_batch_max_bytes);
  EXPECT_EQ(n.resync_max_extent_blocks, 1u);

  // Inverted bounds: max is lifted to min, and the starting batch size is
  // clamped inside.
  ConsistencyGroupConfig inv;
  inv.transfer_batch_min_bytes = 8 << 20;
  inv.transfer_batch_max_bytes = 1 << 20;
  inv.transfer_batch_bytes = 32 << 20;
  ConsistencyGroupConfig ni = inv.Normalized();
  EXPECT_EQ(ni.transfer_batch_max_bytes, ni.transfer_batch_min_bytes);
  EXPECT_EQ(ni.transfer_batch_bytes, ni.transfer_batch_min_bytes);
}

}  // namespace
}  // namespace zerobak::replication
