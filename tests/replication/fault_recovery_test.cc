// Regression tests for the recovery-path bugs exposed by real partition
// semantics (in-flight drops), plus the ack-deadline / auto-resync
// machinery that reacts to them.
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "replication/replication.h"
#include "storage/array.h"

namespace zerobak::replication {
namespace {

std::string BlockOf(char c) {
  return std::string(block::kDefaultBlockSize, c);
}

storage::ArrayConfig ZeroLatency(const std::string& serial) {
  storage::ArrayConfig cfg;
  cfg.serial = serial;
  cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  return cfg;
}

class FaultRecoveryTest : public ::testing::Test {
 protected:
  FaultRecoveryTest()
      : main_(&env_, ZeroLatency("MAIN")),
        backup_(&env_, ZeroLatency("BKUP")),
        to_backup_(&env_, LinkConfig(1), "fwd"),
        to_main_(&env_, LinkConfig(2), "rev"),
        engine_(&env_, &main_, &backup_, &to_backup_, &to_main_) {}

  static sim::NetworkLinkConfig LinkConfig(uint64_t seed) {
    sim::NetworkLinkConfig cfg;
    cfg.base_latency = Milliseconds(5);
    cfg.jitter = 0;
    cfg.bandwidth_bytes_per_sec = 0;
    cfg.seed = seed;
    return cfg;
  }

  std::pair<storage::VolumeId, storage::VolumeId> MakeVolumes(
      const std::string& name, uint64_t blocks = 64) {
    auto p = main_.CreateVolume(name, blocks);
    auto s = backup_.CreateVolume("r-" + name, blocks);
    EXPECT_TRUE(p.ok() && s.ok());
    return {*p, *s};
  }

  // A group with fast failure detection so the tests stay short.
  GroupId MakeGroup() {
    ConsistencyGroupConfig cfg;
    cfg.name = "cg";
    cfg.journal_capacity_bytes = 16 << 20;
    cfg.ack_timeout = Milliseconds(20);
    cfg.resync_backoff_initial = Milliseconds(5);
    cfg.resync_backoff_max = Milliseconds(50);
    auto g = engine_.CreateConsistencyGroup(cfg);
    EXPECT_TRUE(g.ok());
    return *g;
  }

  PairId MakeAsyncPair(storage::VolumeId p, storage::VolumeId s,
                       GroupId group) {
    PairConfig cfg;
    cfg.name = "pair";
    cfg.primary = p;
    cfg.secondary = s;
    cfg.mode = ReplicationMode::kAsynchronous;
    cfg.group = group;
    auto id = engine_.CreatePair(cfg);
    EXPECT_TRUE(id.ok()) << id.status();
    return id.ok() ? *id : 0;
  }

  bool Converged(storage::VolumeId p, storage::VolumeId s) {
    return main_.GetVolume(p)->ContentEquals(*backup_.GetVolume(s));
  }

  sim::SimEnvironment env_;
  storage::StorageArray main_;
  storage::StorageArray backup_;
  sim::NetworkLink to_backup_;
  sim::NetworkLink to_main_;
  ReplicationEngine engine_;
};

// Satellite bugfix regression: MarkGroupSuspended must dirty-mark from the
// *acked* watermark. Records handed to the link ("shipped") but dropped by
// a partition were previously skipped and silently lost.
TEST_F(FaultRecoveryTest, SuspensionDirtyMarksFromAckedWatermark) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  PairId pair = MakeAsyncPair(p, s, g);

  ASSERT_TRUE(main_.WriteSync(p, 0, BlockOf('a')).ok());
  ASSERT_TRUE(main_.WriteSync(p, 1, BlockOf('b')).ok());
  ASSERT_TRUE(main_.WriteSync(p, 2, BlockOf('c')).ok());
  // Let the pump hand the batch to the link but not long enough for the
  // apply-ack round trip: shipped == 3, acked == 0, batch in flight.
  env_.RunFor(Milliseconds(3));
  auto stats = engine_.GetGroupStats(g);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->shipped, 3u);
  ASSERT_EQ(stats->acked, 0u);

  // The partition kills the in-flight batch.
  to_backup_.SetConnected(false);
  ASSERT_TRUE(engine_.SuspendGroup(g).ok());
  // All three records sit in (acked, shipped] and must be dirty-marked;
  // the old shipped()-based scan would find none of them.
  EXPECT_EQ(engine_.GetPair(pair)->dirty_blocks(), 3u);

  to_backup_.SetConnected(true);
  ASSERT_TRUE(engine_.ResyncGroup(g).ok());
  env_.RunFor(Milliseconds(50));
  EXPECT_EQ(engine_.GetPair(pair)->state(), PairState::kPaired);
  EXPECT_TRUE(Converged(p, s));
}

// Satellite bugfix regression: a failed resync send must not discard the
// captured delta. Previously the dirty bitmaps were cleared before the
// send result was known.
TEST_F(FaultRecoveryTest, ResyncSendFailurePreservesDirtyBitmap) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  PairId pair = MakeAsyncPair(p, s, g);

  ASSERT_TRUE(engine_.SuspendGroup(g).ok());
  ASSERT_TRUE(main_.WriteSync(p, 4, BlockOf('d')).ok());
  ASSERT_TRUE(main_.WriteSync(p, 5, BlockOf('e')).ok());
  ASSERT_EQ(engine_.GetPair(pair)->dirty_blocks(), 2u);

  to_backup_.SetConnected(false);
  Status rs = engine_.ResyncGroup(g);
  EXPECT_EQ(rs.code(), StatusCode::kUnavailable);
  EXPECT_EQ(engine_.GetPair(pair)->dirty_blocks(), 2u)
      << "failed resync must not lose the delta";
  auto stats = engine_.GetGroupStats(g);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->suspended);

  to_backup_.SetConnected(true);
  ASSERT_TRUE(engine_.ResyncGroup(g).ok());
  env_.RunFor(Milliseconds(50));
  EXPECT_EQ(engine_.GetPair(pair)->dirty_blocks(), 0u);
  EXPECT_TRUE(Converged(p, s));
}

// Tentpole behavior: a batch dropped in flight stalls no watermark forever;
// the missed ack deadline suspends the group and auto-resync heals it.
TEST_F(FaultRecoveryTest, AckTimeoutSuspendsAndAutoResyncConverges) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  PairId pair = MakeAsyncPair(p, s, g);

  ASSERT_TRUE(main_.WriteSync(p, 7, BlockOf('x')).ok());
  env_.RunFor(Milliseconds(3));  // Batch shipped, in flight.
  // Quick flap: the link is healthy again long before the deadline, but
  // the batch is gone.
  to_backup_.SetConnected(false);
  env_.RunFor(Milliseconds(1));
  to_backup_.SetConnected(true);

  env_.RunFor(Milliseconds(40));  // Past the 20 ms ack deadline.
  auto stats = engine_.GetGroupStats(g);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->ack_timeouts, 1u);
  EXPECT_GE(stats->auto_resync_attempts, 1u);

  env_.RunFor(Milliseconds(100));  // Backoff + resync + drain.
  EXPECT_EQ(engine_.GetPair(pair)->state(), PairState::kPaired);
  EXPECT_TRUE(Converged(p, s));
  stats = engine_.GetGroupStats(g);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->suspended);
  EXPECT_EQ(stats->suspend_reason, SuspendReason::kNone);
}

// The resync batch itself can be lost to a partition: the resync deadline
// restores the captured blocks into the dirty bitmaps and retries.
TEST_F(FaultRecoveryTest, ResyncBatchLostInFlightIsRetried) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  PairId pair = MakeAsyncPair(p, s, g);

  ASSERT_TRUE(engine_.SuspendGroup(g).ok());
  ASSERT_TRUE(main_.WriteSync(p, 9, BlockOf('r')).ok());
  ASSERT_EQ(engine_.GetPair(pair)->dirty_blocks(), 1u);

  ASSERT_TRUE(engine_.ResyncGroup(g).ok());
  // Flap while the resync batch is on the wire.
  env_.RunFor(Milliseconds(1));
  to_backup_.SetConnected(false);
  env_.RunFor(Milliseconds(1));
  to_backup_.SetConnected(true);

  env_.RunFor(Milliseconds(200));
  auto stats = engine_.GetGroupStats(g);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->resync_timeouts, 1u);
  EXPECT_EQ(engine_.GetPair(pair)->state(), PairState::kPaired);
  EXPECT_EQ(engine_.GetPair(pair)->dirty_blocks(), 0u);
  EXPECT_TRUE(Converged(p, s));
}

// An operator suspension is an explicit decision: auto-resync must not
// undo it, no matter how healthy the link is.
TEST_F(FaultRecoveryTest, OperatorSuspendNeverAutoResyncs) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  PairId pair = MakeAsyncPair(p, s, g);

  ASSERT_TRUE(engine_.SuspendGroup(g).ok());
  ASSERT_TRUE(main_.WriteSync(p, 3, BlockOf('o')).ok());
  env_.RunFor(Milliseconds(500));
  auto stats = engine_.GetGroupStats(g);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->suspended);
  EXPECT_EQ(stats->suspend_reason, SuspendReason::kOperator);
  EXPECT_EQ(stats->auto_resync_attempts, 0u);
  EXPECT_EQ(engine_.GetPair(pair)->state(), PairState::kSuspended);
  EXPECT_FALSE(Converged(p, s));

  ASSERT_TRUE(engine_.ResyncGroup(g).ok());
  env_.RunFor(Milliseconds(50));
  EXPECT_TRUE(Converged(p, s));
}

// A base image dropped in flight must not strand the pair in kCopy: the
// suspension treats every allocated P-VOL block as dirty so the resync
// re-creates the image.
TEST_F(FaultRecoveryTest, LostInitialCopyIsRecoveredByResync) {
  auto [p, s] = MakeVolumes("v");
  for (uint64_t lba = 0; lba < 5; ++lba) {
    ASSERT_TRUE(main_.WriteSync(p, lba,
                                BlockOf(static_cast<char>('a' + lba)))
                    .ok());
  }
  GroupId g = MakeGroup();
  PairId pair = MakeAsyncPair(p, s, g);
  ASSERT_EQ(engine_.GetPair(pair)->state(), PairState::kCopy);

  // The flap kills the in-flight base image.
  env_.RunFor(Milliseconds(1));
  to_backup_.SetConnected(false);
  env_.RunFor(Milliseconds(1));
  to_backup_.SetConnected(true);

  // Updates keep flowing into the journal; the applier stalls on the
  // missing base image, the ack deadline fires and the recovery machinery
  // rebuilds the pair from scratch.
  ASSERT_TRUE(main_.WriteSync(p, 10, BlockOf('z')).ok());
  env_.RunFor(Milliseconds(200));
  EXPECT_EQ(engine_.GetPair(pair)->state(), PairState::kPaired);
  EXPECT_TRUE(Converged(p, s));
}

// Satellite bugfix regression: per-channel FIFO state must not outlive its
// pair / group (previously last_arrival_ grew forever).
TEST_F(FaultRecoveryTest, DeletingPairsReleasesLinkChannelState) {
  // A sync pair uses a dedicated channel on both links.
  auto [p1, s1] = MakeVolumes("sync");
  PairConfig sync_cfg;
  sync_cfg.name = "sp";
  sync_cfg.primary = p1;
  sync_cfg.secondary = s1;
  sync_cfg.mode = ReplicationMode::kSynchronous;
  auto sync_pair = engine_.CreatePair(sync_cfg);
  ASSERT_TRUE(sync_pair.ok());
  env_.RunFor(Milliseconds(20));
  Status acked = InternalError("no ack");
  main_.SubmitHostWrite(p1, 0, BlockOf('s'),
                        [&](block::IoResult r) { acked = r.status; });
  env_.RunUntilIdle();
  ASSERT_TRUE(acked.ok());

  // An async group uses its group id as the channel on both links.
  auto [p2, s2] = MakeVolumes("async");
  GroupId g = MakeGroup();
  PairId async_pair = MakeAsyncPair(p2, s2, g);
  ASSERT_TRUE(main_.WriteSync(p2, 0, BlockOf('a')).ok());
  env_.RunFor(Milliseconds(50));

  EXPECT_GT(to_backup_.tracked_channels(), 0u);
  EXPECT_GT(to_main_.tracked_channels(), 0u);

  ASSERT_TRUE(engine_.DeletePair(*sync_pair).ok());
  ASSERT_TRUE(engine_.DeletePair(async_pair).ok());
  ASSERT_TRUE(engine_.DeleteConsistencyGroup(g).ok());
  EXPECT_EQ(to_backup_.tracked_channels(), 0u)
      << "forward-link channel state leaked";
  EXPECT_EQ(to_main_.tracked_channels(), 0u)
      << "reverse-link channel state leaked";
}

// Wire-integrity regression: a bit-flipped batch must be rejected by the
// frame CRC, must never reach the backup journal or volumes, and the
// group must reconverge through the nack -> suspend -> auto-resync path —
// corruption behaves exactly like a dropped message.
TEST_F(FaultRecoveryTest, CorruptBatchIsRejectedNeverAppliedAndResent) {
  auto [p, s] = MakeVolumes("v");
  GroupId g = MakeGroup();
  MakeAsyncPair(p, s, g);
  env_.RunFor(Milliseconds(4));  // Empty initial copy settles.

  // Flip a bit in every delivered frame while the first batch ships.
  engine_.SetFaultOptions({.wire_corrupt_probability = 1.0});
  ASSERT_TRUE(main_.WriteSync(p, 0, BlockOf('x')).ok());
  ASSERT_TRUE(main_.WriteSync(p, 1, BlockOf('y')).ok());
  // Pump (<= 2 ms) + frame delivery (5 ms) + nack trip (5 ms), but short
  // of the first auto-resync retry (5 ms backoff after the nack).
  env_.RunFor(Milliseconds(14));

  auto stats = engine_.GetGroupStats(g);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(engine_.wire_frames_corrupted(), 1u);
  EXPECT_GE(stats->checksum_rejects, 1u);
  // The corrupt batch was rejected wholesale: nothing was applied.
  EXPECT_EQ(stats->applied, 0u);
  EXPECT_FALSE(Converged(p, s));
  // The nack suspended the group so the resync machinery reships it.
  EXPECT_TRUE(stats->suspended);
  EXPECT_EQ(stats->suspend_reason, SuspendReason::kWireReject);

  // Corruption clears; auto-resync reships the data and reconverges.
  engine_.SetFaultOptions({.wire_corrupt_probability = 0.0});
  env_.RunFor(Milliseconds(200));
  stats = engine_.GetGroupStats(g);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->suspended);
  EXPECT_TRUE(Converged(p, s));

  // Steady state afterwards: new writes flow through verified frames.
  ASSERT_TRUE(main_.WriteSync(p, 2, BlockOf('z')).ok());
  env_.RunFor(Milliseconds(50));
  EXPECT_TRUE(Converged(p, s));
}

}  // namespace
}  // namespace zerobak::replication
