// Thin-provisioning pool tests, including the replication interplay: a
// backup pool filling up is a real production incident this library can
// reproduce.
#include "storage/pool.h"

#include <gtest/gtest.h>

#include "common/logging.h"
#include "replication/replication.h"
#include "storage/array.h"

namespace zerobak::storage {
namespace {

std::string BlockOf(char c) {
  return std::string(block::kDefaultBlockSize, c);
}

ArrayConfig ZeroLatency(const std::string& serial = "POOL-T") {
  ArrayConfig cfg;
  cfg.serial = serial;
  cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  return cfg;
}

TEST(StoragePoolTest, AllocationAccounting) {
  StoragePool pool(1, "p", 10);
  EXPECT_TRUE(pool.TryAllocate(4));
  EXPECT_EQ(pool.used_blocks(), 4u);
  EXPECT_EQ(pool.free_blocks(), 6u);
  EXPECT_TRUE(pool.TryAllocate(6));
  EXPECT_FALSE(pool.TryAllocate(1));
  EXPECT_EQ(pool.allocation_failures(), 1u);
  pool.Release(5);
  EXPECT_TRUE(pool.TryAllocate(5));
  EXPECT_DOUBLE_EQ(pool.utilization(), 1.0);
}

TEST(StoragePoolTest, ReleaseClampsAtZero) {
  StoragePool pool(1, "p", 10);
  ASSERT_TRUE(pool.TryAllocate(3));
  pool.Release(100);
  EXPECT_EQ(pool.used_blocks(), 0u);
}

class PooledArrayTest : public ::testing::Test {
 protected:
  sim::SimEnvironment env_;
  StorageArray array_{&env_, ZeroLatency()};
};

TEST_F(PooledArrayTest, ThinVolumeConsumesOnFirstWrite) {
  auto pool = array_.CreatePool("thin", 8);
  ASSERT_TRUE(pool.ok());
  // Logical size 100 blocks >> physical 8: thin provisioning.
  auto vol = array_.CreateVolumeInPool("v", 100, *pool);
  ASSERT_TRUE(vol.ok());
  EXPECT_EQ(array_.GetPool(*pool)->used_blocks(), 0u);

  ASSERT_TRUE(array_.WriteSync(*vol, 0, BlockOf('a')).ok());
  EXPECT_EQ(array_.GetPool(*pool)->used_blocks(), 1u);
  // Overwrite: no new allocation.
  ASSERT_TRUE(array_.WriteSync(*vol, 0, BlockOf('b')).ok());
  EXPECT_EQ(array_.GetPool(*pool)->used_blocks(), 1u);
}

TEST_F(PooledArrayTest, ExhaustedPoolRejectsWritesAtomically) {
  auto pool = array_.CreatePool("tiny", 4);
  ASSERT_TRUE(pool.ok());
  auto vol = array_.CreateVolumeInPool("v", 100, *pool);
  ASSERT_TRUE(vol.ok());
  for (block::Lba lba = 0; lba < 4; ++lba) {
    ASSERT_TRUE(array_.WriteSync(*vol, lba, BlockOf('x')).ok());
  }
  // The fifth distinct block fails...
  EXPECT_EQ(array_.WriteSync(*vol, 10, BlockOf('y')).code(),
            StatusCode::kResourceExhausted);
  // ...but rewriting existing blocks still works.
  EXPECT_TRUE(array_.WriteSync(*vol, 2, BlockOf('z')).ok());
  EXPECT_EQ(array_.GetPool(*pool)->allocation_failures(), 1u);
}

TEST_F(PooledArrayTest, MultiBlockWriteAllOrNothing) {
  auto pool = array_.CreatePool("p", 2);
  ASSERT_TRUE(pool.ok());
  auto vol = array_.CreateVolumeInPool("v", 100, *pool);
  ASSERT_TRUE(vol.ok());
  // A 3-block write cannot fit: nothing must be allocated or written.
  EXPECT_EQ(array_
                .WriteSync(*vol, 0,
                           BlockOf('a') + BlockOf('b') + BlockOf('c'))
                .code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(array_.GetPool(*pool)->used_blocks(), 0u);
  EXPECT_EQ(array_.GetVolume(*vol)->store().allocated_blocks(), 0u);
}

TEST_F(PooledArrayTest, DeleteVolumeReturnsCapacity) {
  auto pool = array_.CreatePool("p", 4);
  ASSERT_TRUE(pool.ok());
  auto vol = array_.CreateVolumeInPool("v", 100, *pool);
  ASSERT_TRUE(vol.ok());
  for (block::Lba lba = 0; lba < 4; ++lba) {
    ASSERT_TRUE(array_.WriteSync(*vol, lba, BlockOf('x')).ok());
  }
  ASSERT_TRUE(array_.DeleteVolume(*vol).ok());
  EXPECT_EQ(array_.GetPool(*pool)->used_blocks(), 0u);
}

TEST_F(PooledArrayTest, MissingPoolRejected) {
  EXPECT_EQ(array_.CreateVolumeInPool("v", 10, 999).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(array_.CreatePool("p", 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PooledReplicationTest, BackupPoolExhaustionStallsApplyNotHost) {
  // The incident: an undersized backup pool. The main site keeps running
  // (ADC acks locally); the backup volume silently stops converging —
  // visible only through pool monitoring. This test pins that behaviour.
  sim::SimEnvironment env;
  StorageArray main(&env, ZeroLatency("MAIN"));
  StorageArray backup(&env, ZeroLatency("BKUP"));
  sim::NetworkLinkConfig link_cfg;
  link_cfg.base_latency = Milliseconds(2);
  link_cfg.jitter = 0;
  link_cfg.bandwidth_bytes_per_sec = 0;
  sim::NetworkLink fwd(&env, link_cfg, "f");
  sim::NetworkLink rev(&env, link_cfg, "r");
  replication::ReplicationEngine engine(&env, &main, &backup, &fwd, &rev);

  auto p = main.CreateVolume("p", 64);
  auto bpool = backup.CreatePool("undersized", 4);
  ASSERT_TRUE(p.ok() && bpool.ok());
  auto s = backup.CreateVolumeInPool("s", 64, *bpool);
  ASSERT_TRUE(s.ok());
  auto group = engine.CreateConsistencyGroup({.name = "g"});
  ASSERT_TRUE(group.ok());
  replication::PairConfig pc;
  pc.primary = *p;
  pc.secondary = *s;
  pc.mode = replication::ReplicationMode::kAsynchronous;
  pc.group = *group;
  ASSERT_TRUE(engine.CreatePair(pc).ok());
  env.RunFor(Milliseconds(10));

  zerobak::SetLogLevel(zerobak::LogLevel::kError);  // The applier warns; keep quiet.
  for (block::Lba lba = 0; lba < 10; ++lba) {
    // The host never sees the backup pool problem.
    ASSERT_TRUE(main.WriteSync(*p, lba, BlockOf('d')).ok());
  }
  env.RunFor(Milliseconds(50));
  zerobak::SetLogLevel(zerobak::LogLevel::kWarning);

  // Only 4 blocks made it to the backup; the pool reports the incident.
  EXPECT_EQ(backup.GetVolume(*s)->store().allocated_blocks(), 4u);
  EXPECT_GT(backup.GetPool(*bpool)->allocation_failures(), 0u);
  EXPECT_FALSE(main.GetVolume(*p)->ContentEquals(*backup.GetVolume(*s)));
}

}  // namespace
}  // namespace zerobak::storage
