#include "storage/array.h"

#include <gtest/gtest.h>

#include "storage/array_device.h"
#include "storage/volume.h"

namespace zerobak::storage {
namespace {

ArrayConfig ZeroLatency(const std::string& serial = "G370-T") {
  ArrayConfig cfg;
  cfg.serial = serial;
  cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  return cfg;
}

std::string BlockOf(char c) {
  return std::string(block::kDefaultBlockSize, c);
}

class ArrayTest : public ::testing::Test {
 protected:
  sim::SimEnvironment env_;
  StorageArray array_{&env_, ZeroLatency()};
};

TEST_F(ArrayTest, CreateAndLookupVolumes) {
  auto id = array_.CreateVolume("sales", 100);
  ASSERT_TRUE(id.ok());
  EXPECT_NE(array_.GetVolume(*id), nullptr);
  EXPECT_EQ(array_.GetVolume(*id)->name(), "sales");
  EXPECT_EQ(array_.FindVolumeByName("sales")->id(), *id);
  EXPECT_EQ(array_.FindVolumeByName("nope"), nullptr);
  EXPECT_EQ(array_.volume_count(), 1u);
}

TEST_F(ArrayTest, DuplicateNameRejected) {
  ASSERT_TRUE(array_.CreateVolume("v", 10).ok());
  EXPECT_EQ(array_.CreateVolume("v", 10).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ArrayTest, ZeroSizedVolumeRejected) {
  EXPECT_EQ(array_.CreateVolume("v", 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ArrayTest, DeleteVolume) {
  auto id = array_.CreateVolume("v", 10);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(array_.DeleteVolume(*id).ok());
  EXPECT_EQ(array_.GetVolume(*id), nullptr);
  EXPECT_EQ(array_.DeleteVolume(*id).code(), StatusCode::kNotFound);
}

TEST_F(ArrayTest, VolumeHandleRoundTrip) {
  auto id = array_.CreateVolume("v", 10);
  ASSERT_TRUE(id.ok());
  const std::string handle = array_.VolumeHandle(*id);
  EXPECT_EQ(handle, "G370-T:" + std::to_string(*id));
  auto parsed = StorageArray::ParseVolumeHandle(handle);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->first, "G370-T");
  EXPECT_EQ(parsed->second, *id);
}

TEST_F(ArrayTest, MalformedHandlesRejected) {
  for (const char* bad : {"", "nocolon", ":5", "serial:", "serial:12x"}) {
    EXPECT_FALSE(StorageArray::ParseVolumeHandle(bad).ok()) << bad;
  }
}

TEST_F(ArrayTest, SyncWriteReadRoundTrip) {
  auto id = array_.CreateVolume("v", 10);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(array_.WriteSync(*id, 3, BlockOf('z')).ok());
  std::string out;
  ASSERT_TRUE(array_.ReadSync(*id, 3, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('z'));
  EXPECT_EQ(array_.host_writes(), 1u);
  EXPECT_EQ(array_.host_reads(), 1u);
}

TEST_F(ArrayTest, UnalignedSyncWriteRejected) {
  auto id = array_.CreateVolume("v", 10);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(array_.WriteSync(*id, 0, "small").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(array_.WriteSync(*id, 0, "").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ArrayTest, FailedArrayRejectsEverything) {
  auto id = array_.CreateVolume("v", 10);
  ASSERT_TRUE(id.ok());
  array_.SetFailed(true);
  EXPECT_EQ(array_.WriteSync(*id, 0, BlockOf('x')).code(),
            StatusCode::kUnavailable);
  std::string out;
  EXPECT_EQ(array_.ReadSync(*id, 0, 1, &out).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(array_.CreateVolume("w", 5).status().code(),
            StatusCode::kUnavailable);
  Status async_status = OkStatus();
  array_.SubmitHostWrite(*id, 0, BlockOf('x'), [&](block::IoResult r) {
    async_status = r.status;
  });
  env_.RunUntilIdle();
  EXPECT_EQ(async_status.code(), StatusCode::kUnavailable);

  array_.SetFailed(false);
  EXPECT_TRUE(array_.WriteSync(*id, 0, BlockOf('x')).ok());
}

TEST_F(ArrayTest, JournalLifecycle) {
  auto j = array_.CreateJournal(1 << 20);
  ASSERT_TRUE(j.ok());
  EXPECT_NE(array_.GetJournal(*j), nullptr);
  EXPECT_EQ(array_.ListJournals().size(), 1u);
  ASSERT_TRUE(array_.DeleteJournal(*j).ok());
  EXPECT_EQ(array_.GetJournal(*j), nullptr);
  EXPECT_EQ(array_.CreateJournal(0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ArrayLatencyTest, HostWriteLatencyFollowsMediaModel) {
  sim::SimEnvironment env;
  ArrayConfig cfg;
  cfg.media = block::DeviceLatencyModel{Microseconds(100),
                                        Microseconds(200), 0, 0, 1};
  StorageArray array(&env, cfg);
  auto id = array.CreateVolume("v", 10);
  ASSERT_TRUE(id.ok());
  SimTime done = -1;
  array.SubmitHostWrite(*id, 0, BlockOf('x'), [&](block::IoResult r) {
    ASSERT_TRUE(r.status.ok());
    done = env.now();
  });
  env.RunUntilIdle();
  EXPECT_EQ(done, Microseconds(200));
  EXPECT_EQ(array.host_write_latency().count(), 1u);
  EXPECT_EQ(array.host_write_latency().max(),
            static_cast<uint64_t>(Microseconds(200)));
}

// A write interceptor that delays every ack by a fixed amount.
class DelayingInterceptor : public WriteInterceptor {
 public:
  DelayingInterceptor(sim::SimEnvironment* env, SimDuration delay)
      : env_(env), delay_(delay) {}
  void OnHostWrite(Volume*, block::Lba, uint32_t, std::string_view,
                   AckFn ack) override {
    ++calls_;
    env_->Schedule(delay_, [ack] { ack(OkStatus()); });
  }
  int calls_ = 0;

 private:
  sim::SimEnvironment* env_;
  SimDuration delay_;
};

TEST(ArrayInterceptorTest, InterceptorControlsAckTiming) {
  sim::SimEnvironment env;
  StorageArray array(&env, ZeroLatency());
  auto id = array.CreateVolume("v", 10);
  ASSERT_TRUE(id.ok());
  DelayingInterceptor ic(&env, Milliseconds(7));
  ASSERT_TRUE(array.RegisterInterceptor(*id, &ic).ok());
  EXPECT_TRUE(array.HasInterceptor(*id));

  SimTime done = -1;
  array.SubmitHostWrite(*id, 0, BlockOf('x'), [&](block::IoResult r) {
    ASSERT_TRUE(r.status.ok());
    done = env.now();
  });
  env.RunUntilIdle();
  EXPECT_EQ(done, Milliseconds(7));
  EXPECT_EQ(ic.calls_, 1);

  // Interceptors fire once per host write, not for reads.
  std::string out;
  ASSERT_TRUE(array.ReadSync(*id, 0, 1, &out).ok());
  EXPECT_EQ(ic.calls_, 1);
}

TEST(ArrayInterceptorTest, DoubleRegistrationRejected) {
  sim::SimEnvironment env;
  StorageArray array(&env, ZeroLatency());
  auto id = array.CreateVolume("v", 10);
  ASSERT_TRUE(id.ok());
  DelayingInterceptor a(&env, 1), b(&env, 1);
  ASSERT_TRUE(array.RegisterInterceptor(*id, &a).ok());
  EXPECT_EQ(array.RegisterInterceptor(*id, &b).code(),
            StatusCode::kAlreadyExists);
  array.UnregisterInterceptor(*id);
  EXPECT_TRUE(array.RegisterInterceptor(*id, &b).ok());
}

TEST(ArrayInterceptorTest, ReplicatedVolumeCannotBeDeleted) {
  sim::SimEnvironment env;
  StorageArray array(&env, ZeroLatency());
  auto id = array.CreateVolume("v", 10);
  ASSERT_TRUE(id.ok());
  DelayingInterceptor ic(&env, 1);
  ASSERT_TRUE(array.RegisterInterceptor(*id, &ic).ok());
  EXPECT_EQ(array.DeleteVolume(*id).code(),
            StatusCode::kFailedPrecondition);
}

// PreCheck rejection must prevent the write from reaching the volume.
class RejectingInterceptor : public WriteInterceptor {
 public:
  Status PreCheck(Volume*, block::Lba, uint32_t) override {
    return FailedPreconditionError("write-protected");
  }
  void OnHostWrite(Volume*, block::Lba, uint32_t, std::string_view,
                   AckFn ack) override {
    ack(InternalError("should not be reached"));
  }
};

TEST(ArrayInterceptorTest, PreCheckBlocksWriteBeforeItApplies) {
  sim::SimEnvironment env;
  StorageArray array(&env, ZeroLatency());
  auto id = array.CreateVolume("v", 10);
  ASSERT_TRUE(id.ok());
  RejectingInterceptor guard;
  ASSERT_TRUE(array.RegisterInterceptor(*id, &guard).ok());

  EXPECT_EQ(array.WriteSync(*id, 0, BlockOf('x')).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(array.GetVolume(*id)->store().allocated_blocks(), 0u);

  Status async_status = OkStatus();
  array.SubmitHostWrite(*id, 0, BlockOf('x'), [&](block::IoResult r) {
    async_status = r.status;
  });
  env.RunUntilIdle();
  EXPECT_EQ(async_status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(array.GetVolume(*id)->store().allocated_blocks(), 0u);
}

TEST(VolumeHookTest, PreOverwriteHookSeesOldContent) {
  Volume v(1, "v", 10);
  std::vector<std::pair<block::Lba, char>> observed;
  const uint64_t token = v.AddPreOverwriteHook(
      [&](block::Lba lba, std::string_view old_block) {
        observed.emplace_back(lba, old_block[0]);
      });
  ASSERT_TRUE(v.Write(2, 1, BlockOf('a')).ok());  // Old content: zeros.
  ASSERT_TRUE(v.Write(2, 1, BlockOf('b')).ok());  // Old content: 'a'.
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0], std::make_pair(block::Lba{2}, '\0'));
  EXPECT_EQ(observed[1], std::make_pair(block::Lba{2}, 'a'));

  v.RemovePreOverwriteHook(token);
  ASSERT_TRUE(v.Write(2, 1, BlockOf('c')).ok());
  EXPECT_EQ(observed.size(), 2u);  // Hook removed.
}

TEST(ArrayDeviceTest, AdapterRoutesThroughArray) {
  sim::SimEnvironment env;
  StorageArray array(&env, ZeroLatency());
  auto id = array.CreateVolume("db", 64);
  ASSERT_TRUE(id.ok());
  ArrayVolumeDevice dev(&array, *id);
  EXPECT_EQ(dev.block_count(), 64u);
  EXPECT_EQ(dev.block_size(), block::kDefaultBlockSize);
  ASSERT_TRUE(dev.Write(5, 1, BlockOf('q')).ok());
  std::string out;
  ASSERT_TRUE(dev.Read(5, 1, &out).ok());
  EXPECT_EQ(out, BlockOf('q'));
  EXPECT_EQ(array.host_writes(), 1u);
}

}  // namespace
}  // namespace zerobak::storage
