// Front-end admission (queue-depth) tests: concurrency beyond the
// configured credits queues, latency reflects the wait, and — the E1
// corollary — a held slot during SDC's remote round trip throttles the
// whole array.
#include <gtest/gtest.h>

#include "replication/replication.h"
#include "storage/array.h"
#include "workload/latency_driver.h"

namespace zerobak::storage {
namespace {

std::string BlockOf(char c) {
  return std::string(block::kDefaultBlockSize, c);
}

ArrayConfig Limited(uint32_t qd, SimDuration write_latency) {
  ArrayConfig cfg;
  cfg.media = block::DeviceLatencyModel{Microseconds(50), write_latency,
                                        0, 0, 1};
  cfg.max_concurrent_ios = qd;
  return cfg;
}

TEST(QueueDepthTest, ExcessIosQueueAndCompleteInOrder) {
  sim::SimEnvironment env;
  StorageArray array(&env, Limited(1, Microseconds(100)));
  auto vol = array.CreateVolume("v", 64);
  ASSERT_TRUE(vol.ok());
  std::vector<SimTime> completions;
  for (int i = 0; i < 4; ++i) {
    array.SubmitHostWrite(*vol, static_cast<block::Lba>(i), BlockOf('q'),
                          [&](block::IoResult r) {
                            ASSERT_TRUE(r.status.ok());
                            completions.push_back(env.now());
                          });
  }
  EXPECT_EQ(array.queued_ios(), 3u);  // One admitted, three waiting.
  env.RunUntilIdle();
  ASSERT_EQ(completions.size(), 4u);
  // Serialized: completions at 100, 200, 300, 400 us.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(completions[i], Microseconds(100) * (i + 1));
  }
  EXPECT_EQ(array.peak_queued_ios(), 3u);
  EXPECT_EQ(array.queued_ios(), 0u);
}

TEST(QueueDepthTest, UnlimitedByDefault) {
  sim::SimEnvironment env;
  StorageArray array(&env, Limited(0, Microseconds(100)));
  auto vol = array.CreateVolume("v", 64);
  ASSERT_TRUE(vol.ok());
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    array.SubmitHostWrite(*vol, static_cast<block::Lba>(i), BlockOf('u'),
                          [&](block::IoResult) { ++done; });
  }
  EXPECT_EQ(array.queued_ios(), 0u);
  env.RunFor(Microseconds(100));
  EXPECT_EQ(done, 8);  // All in parallel.
}

TEST(QueueDepthTest, ReadsAndWritesShareTheCredits) {
  sim::SimEnvironment env;
  StorageArray array(&env, Limited(1, Microseconds(100)));
  auto vol = array.CreateVolume("v", 64);
  ASSERT_TRUE(vol.ok());
  std::vector<char> order;
  array.SubmitHostWrite(*vol, 0, BlockOf('w'),
                        [&](block::IoResult) { order.push_back('w'); });
  array.SubmitHostRead(*vol, 0, 1,
                       [&](block::IoResult) { order.push_back('r'); });
  EXPECT_EQ(array.queued_ios(), 1u);
  env.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<char>{'w', 'r'}));
}

TEST(QueueDepthTest, ClosedLoopThroughputCapsAtCredits) {
  sim::SimEnvironment env;
  StorageArray array(&env, Limited(2, Microseconds(100)));
  auto vol = array.CreateVolume("v", 1024);
  ASSERT_TRUE(vol.ok());
  workload::DriverConfig cfg;
  cfg.steps = {workload::TxnIoStep{*vol, 1}};
  cfg.clients = 8;  // 4x oversubscribed.
  workload::ClosedLoopDriver driver(&env, &array, cfg);
  driver.Start();
  env.RunFor(Seconds(1));
  driver.Stop();
  // 2 credits x 10k IO/s = 20k txn/s, regardless of the 8 clients.
  EXPECT_NEAR(driver.TxnPerSecond(), 20000.0, 500.0);
  // Each client sees ~4x the media latency (queueing delay).
  EXPECT_NEAR(driver.txn_latency().Mean(),
              static_cast<double>(Microseconds(400)),
              static_cast<double>(Microseconds(20)));
}

TEST(QueueDepthTest, SdcHoldsSlotsAcrossTheRoundTrip) {
  // With 2 front-end credits and a 5 ms one-way link, SDC caps the array
  // at 2 IOs per 10 ms — the amplification the paper's "system slowdown"
  // warns about.
  sim::SimEnvironment env;
  StorageArray main(&env, Limited(2, Microseconds(100)));
  StorageArray backup(&env, Limited(0, Microseconds(100)));
  sim::NetworkLinkConfig link_cfg;
  link_cfg.base_latency = Milliseconds(5);
  link_cfg.jitter = 0;
  link_cfg.bandwidth_bytes_per_sec = 0;
  sim::NetworkLink fwd(&env, link_cfg, "f");
  sim::NetworkLink rev(&env, link_cfg, "r");
  replication::ReplicationEngine engine(&env, &main, &backup, &fwd, &rev);
  auto p = main.CreateVolume("p", 1024);
  auto s = backup.CreateVolume("s", 1024);
  ASSERT_TRUE(p.ok() && s.ok());
  replication::PairConfig pc;
  pc.primary = *p;
  pc.secondary = *s;
  pc.mode = replication::ReplicationMode::kSynchronous;
  ASSERT_TRUE(engine.CreatePair(pc).ok());
  env.RunFor(Milliseconds(20));

  workload::DriverConfig cfg;
  cfg.steps = {workload::TxnIoStep{*p, 1}};
  cfg.clients = 8;
  workload::ClosedLoopDriver driver(&env, &main, cfg);
  driver.Start();
  env.RunFor(Seconds(1));
  driver.Stop();
  // ~2 slots / ~10.2 ms ack time ≈ 196 txn/s.
  EXPECT_LT(driver.TxnPerSecond(), 250.0);
  EXPECT_GT(driver.TxnPerSecond(), 150.0);
}

}  // namespace
}  // namespace zerobak::storage
