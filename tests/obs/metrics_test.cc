#include "obs/metrics.h"

#include <gtest/gtest.h>

namespace zerobak::obs {
namespace {

TEST(MetricRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("a.count");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(registry.GetCounter("a.count"), c);
  // Creating many more entries must not move the first one (node-based
  // storage is part of the contract: instrumented code caches the raw
  // pointer at attach time).
  for (int i = 0; i < 256; ++i) {
    registry.GetCounter("fill." + std::to_string(i));
  }
  EXPECT_EQ(registry.GetCounter("a.count"), c);
  c->Increment(3);
  EXPECT_EQ(c->value(), 3u);
}

TEST(MetricRegistryTest, KindMismatchReturnsNull) {
  MetricRegistry registry;
  ASSERT_NE(registry.GetCounter("x"), nullptr);
  EXPECT_EQ(registry.GetGauge("x"), nullptr);
  EXPECT_EQ(registry.GetHistogram("x"), nullptr);
  // The original binding survives the failed lookups.
  EXPECT_NE(registry.GetCounter("x"), nullptr);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricRegistryTest, GaugeGoesUpAndDown) {
  MetricRegistry registry;
  Gauge* g = registry.GetGauge("journal.used");
  g->Set(100);
  g->Add(-40);
  EXPECT_EQ(g->value(), 60);
  g->Set(-5);
  EXPECT_EQ(g->value(), -5);
}

TEST(MetricRegistryTest, SnapshotIsSortedAndTyped) {
  MetricRegistry registry;
  registry.GetCounter("b.counter")->Increment(7);
  registry.GetGauge("a.gauge")->Set(42);
  Histogram* h = registry.GetHistogram("c.hist");
  h->Add(10);
  h->Add(20);

  auto samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a.gauge");
  EXPECT_EQ(samples[0].kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(samples[0].value, 42.0);
  EXPECT_EQ(samples[1].name, "b.counter");
  EXPECT_EQ(samples[1].kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(samples[1].value, 7.0);
  EXPECT_EQ(samples[2].name, "c.hist");
  EXPECT_EQ(samples[2].kind, MetricKind::kHistogram);
  EXPECT_EQ(samples[2].count, 2u);
  EXPECT_DOUBLE_EQ(samples[2].value, 15.0);
  EXPECT_EQ(samples[2].max, 20u);
}

TEST(MetricRegistryTest, ResetZeroesButKeepsRegistrations) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("events");
  Gauge* g = registry.GetGauge("level");
  Histogram* h = registry.GetHistogram("lat");
  c->Increment(5);
  g->Set(9);
  h->Add(100);

  registry.Reset();
  EXPECT_EQ(registry.size(), 3u);
  // The cached pointers stay live and zeroed.
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0u);
  c->Increment();
  EXPECT_EQ(c->value(), 1u);
}

TEST(MetricRegistryTest, ToTableAndToJsonContainEveryMetric) {
  MetricRegistry registry;
  registry.GetCounter("replication.batches_shipped")->Increment(12);
  registry.GetGauge("journal.g1.main.used_bytes")->Set(4096);
  registry.GetHistogram("replication.batch_records")->Add(64);

  const std::string table = registry.ToTable();
  EXPECT_NE(table.find("replication.batches_shipped"), std::string::npos);
  EXPECT_NE(table.find("journal.g1.main.used_bytes"), std::string::npos);
  EXPECT_NE(table.find("12"), std::string::npos);

  const std::string json = registry.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"replication.batches_shipped\": 12"),
            std::string::npos);
  EXPECT_NE(json.find("\"journal.g1.main.used_bytes\": 4096"),
            std::string::npos);
  EXPECT_NE(json.find("\"replication.batch_records.count\": 1"),
            std::string::npos);
}

}  // namespace
}  // namespace zerobak::obs
