#include "obs/trace.h"

#include <gtest/gtest.h>

namespace zerobak::obs {
namespace {

TEST(TraceRingTest, RecordsInOrder) {
  TraceRing ring(8);
  ring.Record(10, TraceEvent::kBatchShipped, 1, 5, 4096);
  ring.Record(20, TraceEvent::kBatchAcked, 1, 5);
  ring.Record(30, TraceEvent::kSuspend, 2, 3);

  auto events = ring.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].time, 10);
  EXPECT_EQ(events[0].event, TraceEvent::kBatchShipped);
  EXPECT_EQ(events[0].subject, 1u);
  EXPECT_EQ(events[0].arg0, 5u);
  EXPECT_EQ(events[0].arg1, 4096u);
  EXPECT_EQ(events[2].event, TraceEvent::kSuspend);
  EXPECT_EQ(ring.total_recorded(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRingTest, OverwritesOldestWhenFull) {
  TraceRing ring(4);
  for (uint64_t i = 0; i < 10; ++i) {
    ring.Record(static_cast<SimTime>(i), TraceEvent::kBatchShipped, i);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.total_recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  auto events = ring.Events();
  ASSERT_EQ(events.size(), 4u);
  // The newest four survive, oldest first.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].subject, 6 + i);
  }
}

TEST(TraceRingTest, EventsForFiltersBySubject) {
  TraceRing ring(16);
  ring.Record(1, TraceEvent::kLinkDown, 7);
  ring.Record(2, TraceEvent::kSuspend, 3, 1);
  ring.Record(3, TraceEvent::kLinkUp, 7);
  auto link = ring.EventsFor(7);
  ASSERT_EQ(link.size(), 2u);
  EXPECT_EQ(link[0].event, TraceEvent::kLinkDown);
  EXPECT_EQ(link[1].event, TraceEvent::kLinkUp);
  EXPECT_TRUE(ring.EventsFor(99).empty());
}

TEST(TraceRingTest, ClearEmptiesEverything) {
  TraceRing ring(4);
  for (int i = 0; i < 6; ++i) {
    ring.Record(i, TraceEvent::kBatchAcked, 1, i);
  }
  ring.Clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.total_recorded(), 0u);
  EXPECT_TRUE(ring.Events().empty());
  ring.Record(100, TraceEvent::kFailover, 1, 42, 0);
  ASSERT_EQ(ring.Events().size(), 1u);
  EXPECT_EQ(ring.Events()[0].arg0, 42u);
}

TEST(TraceRingTest, ToStringNamesEvents) {
  TraceRing ring(8);
  ring.Record(Milliseconds(5), TraceEvent::kJournalOverflow, 1, 65536);
  ring.Record(Milliseconds(6), TraceEvent::kResyncStart, 1, 3, 17);
  const std::string dump = ring.ToString();
  EXPECT_NE(dump.find("journal-overflow"), std::string::npos);
  EXPECT_NE(dump.find("resync-start"), std::string::npos);
  // last_n limits the dump to the newest events.
  const std::string tail = ring.ToString(1);
  EXPECT_EQ(tail.find("journal-overflow"), std::string::npos);
  EXPECT_NE(tail.find("resync-start"), std::string::npos);
}

TEST(TraceRingTest, ZeroCapacityClampsToOne) {
  TraceRing ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.Record(1, TraceEvent::kLinkDown, 1);
  ring.Record(2, TraceEvent::kLinkUp, 1);
  ASSERT_EQ(ring.Events().size(), 1u);
  EXPECT_EQ(ring.Events()[0].event, TraceEvent::kLinkUp);
}

}  // namespace
}  // namespace zerobak::obs
