// Trace audit: a full disaster drill (link flaps -> suspension ->
// auto-resync -> failover -> failback -> reconvergence) must leave a
// well-formed narrative in the TraceRing for every seed — suspensions
// before the failover, the failover before the failback, every resync
// start matched by a completion, and monotonic simulated timestamps
// across the whole ring.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "replication/replication.h"
#include "sim/environment.h"
#include "sim/network.h"
#include "storage/array.h"

namespace zerobak::replication {
namespace {

constexpr int kVolumes = 2;
constexpr uint64_t kBlocks = 64;

storage::ArrayConfig ZeroLatency(const std::string& serial) {
  storage::ArrayConfig cfg;
  cfg.serial = serial;
  cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  return cfg;
}

sim::NetworkLinkConfig FastLink(uint64_t seed) {
  sim::NetworkLinkConfig cfg;
  cfg.base_latency = Milliseconds(1);
  cfg.bandwidth_bytes_per_sec = 0;
  cfg.seed = seed;
  return cfg;
}

class DrillRig {
 public:
  explicit DrillRig(uint64_t seed)
      : main_(&env_, ZeroLatency("MAIN")),
        backup_(&env_, ZeroLatency("BKUP")),
        to_backup_(&env_, FastLink(seed * 31 + 1), "fwd"),
        to_main_(&env_, FastLink(seed * 31 + 2), "rev"),
        engine_(&env_, &main_, &backup_, &to_backup_, &to_main_),
        rng_(seed) {
    engine_.AttachObservability(&registry_, &trace_);
    ConsistencyGroupConfig cfg;
    cfg.name = "drill";
    cfg.journal_capacity_bytes = 256 << 10;
    cfg.transfer_interval = Milliseconds(1);
    cfg.ack_timeout = Milliseconds(10);
    cfg.resync_backoff_initial = Milliseconds(2);
    cfg.resync_backoff_max = Milliseconds(20);
    auto g = engine_.CreateConsistencyGroup(cfg);
    EXPECT_TRUE(g.ok());
    group_ = *g;
    for (int v = 0; v < kVolumes; ++v) {
      auto p = main_.CreateVolume("vol" + std::to_string(v), kBlocks);
      auto s = backup_.CreateVolume("r-vol" + std::to_string(v), kBlocks);
      EXPECT_TRUE(p.ok() && s.ok());
      pvols_.push_back(*p);
      PairConfig pc;
      pc.name = "pair" + std::to_string(v);
      pc.primary = *p;
      pc.secondary = *s;
      pc.mode = ReplicationMode::kAsynchronous;
      pc.group = group_;
      auto pair = engine_.CreatePair(pc);
      EXPECT_TRUE(pair.ok());
      pairs_.push_back(*pair);
    }
    env_.RunFor(Milliseconds(5));
  }

  void RunWrites(int n) {
    for (int i = 0; i < n; ++i) {
      const auto vol = static_cast<size_t>(rng_.Uniform(kVolumes));
      const uint64_t lba = rng_.Uniform(kBlocks);
      std::string data(block::kDefaultBlockSize, static_cast<char>('a' + i));
      ASSERT_TRUE(main_.WriteSync(pvols_[vol], lba, data).ok());
      env_.RunFor(static_cast<SimDuration>(rng_.Uniform(Microseconds(400)) +
                                           Microseconds(100)));
    }
  }

  // A link outage long enough that the armed ack deadline fires and the
  // group suspends; writes continue throughout.
  void Outage() {
    to_backup_.SetConnected(false);
    RunWrites(20);
    env_.RunFor(Milliseconds(15));
    to_backup_.SetConnected(true);
  }

  ::testing::AssertionResult DrainToConverged() {
    for (int round = 0; round < 200; ++round) {
      env_.RunFor(Milliseconds(10));
      auto stats = engine_.GetGroupStats(group_);
      if (!stats.ok()) return ::testing::AssertionFailure() << stats.status();
      if (stats->suspended || stats->applied != stats->written) continue;
      bool paired = true;
      for (PairId pid : pairs_) {
        paired &= engine_.GetPair(pid)->state() == PairState::kPaired;
      }
      if (paired) return ::testing::AssertionSuccess();
    }
    return ::testing::AssertionFailure() << "never reconverged";
  }

  sim::SimEnvironment env_;
  obs::MetricRegistry registry_;
  obs::TraceRing trace_;
  storage::StorageArray main_;
  storage::StorageArray backup_;
  sim::NetworkLink to_backup_;
  sim::NetworkLink to_main_;
  ReplicationEngine engine_;
  Rng rng_;
  GroupId group_ = 0;
  std::vector<storage::VolumeId> pvols_;
  std::vector<PairId> pairs_;
};

TEST(TraceAuditTest, DisasterDrillLeavesWellFormedTrace) {
  for (uint64_t seed : {1, 2, 3, 4, 5}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    DrillRig rig(seed);

    // Suspension via a real outage, then auto-recovery.
    rig.RunWrites(30);
    rig.Outage();
    ASSERT_TRUE(rig.DrainToConverged());

    // Disaster -> takeover -> repair -> giveback -> reconvergence.
    rig.main_.SetFailed(true);
    rig.to_backup_.SetConnected(false);
    rig.to_main_.SetConnected(false);
    ASSERT_TRUE(rig.engine_.FailoverGroup(rig.group_).ok());
    rig.env_.RunFor(Milliseconds(20));
    rig.main_.SetFailed(false);
    rig.to_backup_.SetConnected(true);
    rig.to_main_.SetConnected(true);
    ASSERT_TRUE(rig.engine_.FailbackGroup(rig.group_).ok());
    rig.RunWrites(10);
    ASSERT_TRUE(rig.DrainToConverged());

    // Timestamps are monotonic across the whole ring (all subjects).
    const auto all = rig.trace_.Events();
    ASSERT_FALSE(all.empty());
    for (size_t i = 1; i < all.size(); ++i) {
      ASSERT_LE(all[i - 1].time, all[i].time) << "event " << i;
    }

    // The group's own narrative is well-formed.
    const auto events = rig.trace_.EventsFor(rig.group_);
    auto first_index = [&](obs::TraceEvent kind) -> ptrdiff_t {
      for (size_t i = 0; i < events.size(); ++i) {
        if (events[i].event == kind) return static_cast<ptrdiff_t>(i);
      }
      return -1;
    };
    const ptrdiff_t suspend = first_index(obs::TraceEvent::kSuspend);
    const ptrdiff_t resync_start =
        first_index(obs::TraceEvent::kResyncStart);
    const ptrdiff_t resync_done = first_index(obs::TraceEvent::kResyncDone);
    const ptrdiff_t failover = first_index(obs::TraceEvent::kFailover);
    const ptrdiff_t failback = first_index(obs::TraceEvent::kFailback);
    ASSERT_GE(suspend, 0);
    ASSERT_GE(resync_start, 0);
    ASSERT_GE(resync_done, 0);
    ASSERT_GE(failover, 0);
    ASSERT_GE(failback, 0);
    EXPECT_LT(suspend, resync_start);
    EXPECT_LT(resync_start, resync_done);
    EXPECT_LT(suspend, failover);
    EXPECT_LT(failover, failback);
    // Every resync start is eventually matched by a completion or a new
    // suspension (a superseded resync never just vanishes).
    size_t starts = 0;
    size_t closings = 0;
    for (const auto& e : events) {
      if (e.event == obs::TraceEvent::kResyncStart) ++starts;
      if (e.event == obs::TraceEvent::kResyncDone ||
          e.event == obs::TraceEvent::kSuspend) {
        ++closings;
      }
    }
    EXPECT_GE(closings, starts);

    // The metric registry agrees with the trace.
    EXPECT_GE(rig.registry_.GetCounter("replication.suspends")->value(), 1u);
    EXPECT_EQ(rig.registry_.GetCounter("replication.failovers")->value(), 1u);
    EXPECT_EQ(rig.registry_.GetCounter("replication.failbacks")->value(), 1u);
    EXPECT_GT(rig.registry_.GetCounter("replication.batches_shipped")->value(),
              0u);
  }
}

}  // namespace
}  // namespace zerobak::replication
