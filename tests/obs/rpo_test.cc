#include "obs/rpo.h"

#include <gtest/gtest.h>

#include "sim/environment.h"

namespace zerobak::obs {
namespace {

TEST(RpoTrackerTest, SamplesOnTimerAndBuildsSeries) {
  sim::SimEnvironment env;
  SimDuration current_rpo = 0;
  RpoTracker tracker(
      &env,
      [&] {
        return std::vector<RpoTracker::GroupSample>{{1, current_rpo}};
      },
      Milliseconds(10));
  tracker.Start();
  env.RunFor(Milliseconds(35));  // Samples at 10, 20, 30.
  current_rpo = Milliseconds(7);
  env.RunFor(Milliseconds(20));  // Samples at 40, 50.
  tracker.Stop();

  const GroupRpoSeries* s = tracker.series(1);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->samples, 5u);
  EXPECT_EQ(s->zero_samples, 3u);
  EXPECT_EQ(s->max_rpo, Milliseconds(7));
  ASSERT_EQ(s->points.size(), 5u);
  EXPECT_EQ(s->points[0].time, Milliseconds(10));
  EXPECT_EQ(s->points[0].rpo, 0);
  EXPECT_EQ(s->points[4].time, Milliseconds(50));
  EXPECT_EQ(s->points[4].rpo, Milliseconds(7));
}

TEST(RpoTrackerTest, AllZeroWhileCaughtUp) {
  sim::SimEnvironment env;
  RpoTracker tracker(
      &env,
      [] { return std::vector<RpoTracker::GroupSample>{{1, 0}}; },
      Milliseconds(5));
  tracker.Start();
  env.RunFor(Seconds(1));
  const GroupRpoSeries* s = tracker.series(1);
  ASSERT_NE(s, nullptr);
  EXPECT_GT(s->samples, 0u);
  EXPECT_EQ(s->zero_samples, s->samples);
  EXPECT_EQ(s->max_rpo, 0);
}

TEST(RpoTrackerTest, PointsCapacityRollsOffOldest) {
  sim::SimEnvironment env;
  RpoTracker tracker(
      &env,
      [&] {
        return std::vector<RpoTracker::GroupSample>{
            {1, static_cast<SimDuration>(env.now())}};
      },
      Milliseconds(1), /*points_capacity=*/10);
  tracker.Start();
  env.RunFor(Milliseconds(100));
  const GroupRpoSeries* s = tracker.series(1);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->points.size(), 10u);
  EXPECT_EQ(s->samples, 100u);
  // The histogram keeps the rolled-off history.
  EXPECT_EQ(s->histogram.count(), 100u);
  // Retained points are the newest ones.
  EXPECT_EQ(s->points.back().time, Milliseconds(100));
}

TEST(RpoTrackerTest, RtoBracketsOutage) {
  sim::SimEnvironment env;
  RpoTracker tracker(
      &env, [] { return std::vector<RpoTracker::GroupSample>{}; },
      Milliseconds(10));
  env.RunFor(Milliseconds(100));
  tracker.BeginOutage(1);
  env.RunFor(Milliseconds(250));
  tracker.CompleteRecovery(1);
  ASSERT_EQ(tracker.rtos(1).size(), 1u);
  EXPECT_EQ(tracker.rtos(1)[0], Milliseconds(250));
  // Unmatched recovery is a no-op, not a bogus entry.
  tracker.CompleteRecovery(1);
  EXPECT_EQ(tracker.rtos(1).size(), 1u);
  EXPECT_TRUE(tracker.rtos(99).empty());
}

TEST(RpoTrackerTest, ManualSampleWithoutTimer) {
  sim::SimEnvironment env;
  RpoTracker tracker(
      &env,
      [] {
        return std::vector<RpoTracker::GroupSample>{{1, Milliseconds(3)},
                                                    {2, 0}};
      },
      Milliseconds(10));
  EXPECT_FALSE(tracker.running());
  tracker.SampleOnce();
  EXPECT_EQ(tracker.Groups().size(), 2u);
  EXPECT_EQ(tracker.series(1)->samples, 1u);
  EXPECT_EQ(tracker.series(2)->zero_samples, 1u);
  EXPECT_EQ(tracker.series(3), nullptr);
}

}  // namespace
}  // namespace zerobak::obs
