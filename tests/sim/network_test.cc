#include "sim/network.h"

#include <vector>

#include <gtest/gtest.h>

namespace zerobak::sim {
namespace {

NetworkLinkConfig NoBandwidth(SimDuration latency, SimDuration jitter = 0) {
  NetworkLinkConfig cfg;
  cfg.base_latency = latency;
  cfg.jitter = jitter;
  cfg.bandwidth_bytes_per_sec = 0;  // Disable serialization delay.
  return cfg;
}

TEST(NetworkLinkTest, DeliversAfterBaseLatency) {
  SimEnvironment env;
  NetworkLink link(&env, NoBandwidth(Milliseconds(5)));
  SimTime delivered = -1;
  ASSERT_TRUE(link.Send(100, [&] { delivered = env.now(); }).ok());
  env.RunUntilIdle();
  EXPECT_EQ(delivered, Milliseconds(5));
}

TEST(NetworkLinkTest, BandwidthAddsSerializationDelay) {
  SimEnvironment env;
  NetworkLinkConfig cfg;
  cfg.base_latency = Milliseconds(1);
  cfg.jitter = 0;
  cfg.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s.
  NetworkLink link(&env, cfg);
  SimTime delivered = -1;
  // 1 MB at 1 MB/s = 1 s serialization + 1 ms propagation.
  ASSERT_TRUE(link.Send(1000000, [&] { delivered = env.now(); }).ok());
  env.RunUntilIdle();
  EXPECT_EQ(delivered, Seconds(1) + Milliseconds(1));
}

TEST(NetworkLinkTest, BackToBackMessagesQueueOnTheWire) {
  SimEnvironment env;
  NetworkLinkConfig cfg;
  cfg.base_latency = 0;
  cfg.jitter = 0;
  cfg.bandwidth_bytes_per_sec = 1e6;
  NetworkLink link(&env, cfg);
  std::vector<SimTime> deliveries;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        link.Send(1000000, [&] { deliveries.push_back(env.now()); }).ok());
  }
  env.RunUntilIdle();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0], Seconds(1));
  EXPECT_EQ(deliveries[1], Seconds(2));
  EXPECT_EQ(deliveries[2], Seconds(3));
}

TEST(NetworkLinkTest, FifoOrderDespiteJitter) {
  SimEnvironment env;
  NetworkLink link(&env, NoBandwidth(Milliseconds(2), Milliseconds(10)));
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(link.Send(64, [&order, i] { order.push_back(i); }).ok());
  }
  env.RunUntilIdle();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(NetworkLinkTest, DisconnectedSendFails) {
  SimEnvironment env;
  NetworkLink link(&env, NoBandwidth(Milliseconds(1)));
  link.SetConnected(false);
  bool delivered = false;
  Status s = link.Send(10, [&] { delivered = true; });
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  env.RunUntilIdle();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(link.send_failures(), 1u);

  link.SetConnected(true);
  EXPECT_TRUE(link.Send(10, [&] { delivered = true; }).ok());
  env.RunUntilIdle();
  EXPECT_TRUE(delivered);
}

TEST(NetworkLinkTest, StatsAccumulate) {
  SimEnvironment env;
  NetworkLink link(&env, NoBandwidth(Milliseconds(1)));
  ASSERT_TRUE(link.Send(100, [] {}).ok());
  ASSERT_TRUE(link.Send(200, [] {}).ok());
  EXPECT_EQ(link.messages_sent(), 2u);
  EXPECT_EQ(link.bytes_sent(), 300u);
  // Plain sends carry no compression: logical == wire.
  EXPECT_EQ(link.logical_bytes_sent(), 300u);
}

TEST(NetworkLinkTest, WireAndLogicalBytesTrackedSeparately) {
  SimEnvironment env;
  NetworkLinkConfig cfg;
  cfg.base_latency = Milliseconds(3);
  cfg.jitter = 0;
  cfg.bandwidth_bytes_per_sec = 1e6;
  NetworkLink link(&env, cfg);

  // A compressed sender ships 400 wire bytes standing in for 1000 logical
  // bytes: serialization time must be charged for the wire size only.
  const SimTime estimate = link.EstimateArrival(400);
  SimTime actual = -1;
  ASSERT_TRUE(
      link.SendOnChannel(0, 400, 1000, [&] { actual = env.now(); }).ok());
  env.RunUntilIdle();
  EXPECT_EQ(actual, estimate);
  EXPECT_EQ(link.bytes_sent(), 400u);
  EXPECT_EQ(link.logical_bytes_sent(), 1000u);
}

TEST(NetworkLinkTest, EstimateArrivalMatchesActual) {
  SimEnvironment env;
  NetworkLinkConfig cfg;
  cfg.base_latency = Milliseconds(3);
  cfg.jitter = 0;
  cfg.bandwidth_bytes_per_sec = 1e6;
  NetworkLink link(&env, cfg);
  const SimTime estimate = link.EstimateArrival(500000);
  SimTime actual = -1;
  ASSERT_TRUE(link.Send(500000, [&] { actual = env.now(); }).ok());
  env.RunUntilIdle();
  EXPECT_EQ(actual, estimate);
}

TEST(NetworkLinkTest, JitterIsBounded) {
  SimEnvironment env;
  const SimDuration base = Milliseconds(2);
  const SimDuration jitter = Milliseconds(1);
  NetworkLink link(&env, NoBandwidth(base, jitter));
  for (int i = 0; i < 100; ++i) {
    SimTime sent = env.now();
    SimTime arrived = -1;
    ASSERT_TRUE(link.Send(1, [&] { arrived = env.now(); }).ok());
    env.RunUntilIdle();
    const SimDuration delay = arrived - sent;
    EXPECT_GE(delay, base);
    EXPECT_LT(delay, base + jitter);
  }
}


TEST(NetworkLinkChannelTest, ChannelsAreIndependentlyOrdered) {
  sim::SimEnvironment env;
  NetworkLinkConfig cfg;
  cfg.base_latency = Milliseconds(1);
  cfg.jitter = Milliseconds(10);  // Heavy jitter.
  cfg.bandwidth_bytes_per_sec = 0;
  cfg.seed = 3;
  NetworkLink link(&env, cfg);
  std::vector<std::pair<uint64_t, int>> arrivals;  // (channel, index).
  // Interleave sends on two channels.
  for (int i = 0; i < 40; ++i) {
    const uint64_t channel = static_cast<uint64_t>(i % 2);
    ASSERT_TRUE(link.SendOnChannel(channel, 16, [&arrivals, channel, i] {
                      arrivals.emplace_back(channel, i);
                    })
                    .ok());
  }
  env.RunUntilIdle();
  ASSERT_EQ(arrivals.size(), 40u);
  // FIFO must hold within each channel...
  int last0 = -1, last1 = -1;
  bool cross_reordered = false;
  int seen = 0;
  for (const auto& [channel, index] : arrivals) {
    if (channel == 0) {
      EXPECT_GT(index, last0);
      last0 = index;
    } else {
      EXPECT_GT(index, last1);
      last1 = index;
    }
    // ...while the interleaving across channels may differ from the send
    // order (that is the point of channels).
    if (index != seen) cross_reordered = true;
    ++seen;
  }
  EXPECT_TRUE(cross_reordered)
      << "jittered channels never reordered against each other";
}

// --- Failure semantics -------------------------------------------------------

TEST(NetworkLinkFailureTest, PartitionDropsInFlightMessages) {
  SimEnvironment env;
  NetworkLink link(&env, NoBandwidth(Milliseconds(5)));
  bool delivered = false;
  ASSERT_TRUE(link.Send(100, [&] { delivered = true; }).ok());
  // Partition while the message is on the wire.
  env.RunFor(Milliseconds(1));
  link.SetConnected(false);
  env.RunUntilIdle();
  EXPECT_FALSE(delivered) << "a partition must kill in-flight traffic";
  EXPECT_EQ(link.messages_dropped(), 1u);
}

TEST(NetworkLinkFailureTest, FlapDropsEvenIfReconnectedBeforeArrival) {
  SimEnvironment env;
  NetworkLink link(&env, NoBandwidth(Milliseconds(10)));
  bool delivered = false;
  ASSERT_TRUE(link.Send(100, [&] { delivered = true; }).ok());
  // A quick flap well before the scheduled arrival: the frames in transit
  // are gone even though the link is healthy again by then.
  env.RunFor(Milliseconds(1));
  link.SetConnected(false);
  env.RunFor(Milliseconds(1));
  link.SetConnected(true);
  env.RunUntilIdle();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(link.messages_dropped(), 1u);

  // The healed link works normally for new traffic.
  ASSERT_TRUE(link.Send(100, [&] { delivered = true; }).ok());
  env.RunUntilIdle();
  EXPECT_TRUE(delivered);
}

TEST(NetworkLinkFailureTest, DelayPolicyHoldsAndRedeliversInOrder) {
  SimEnvironment env;
  NetworkLinkConfig cfg = NoBandwidth(Milliseconds(5));
  cfg.partition_policy = PartitionPolicy::kDelayInFlight;
  NetworkLink link(&env, cfg);
  std::vector<int> order;
  ASSERT_TRUE(link.Send(10, [&] { order.push_back(0); }).ok());
  ASSERT_TRUE(link.Send(10, [&] { order.push_back(1); }).ok());
  env.RunFor(Milliseconds(1));
  link.SetConnected(false);
  env.RunFor(Milliseconds(20));  // Outage outlives the original arrivals.
  EXPECT_TRUE(order.empty()) << "held messages must not leak mid-outage";
  link.SetConnected(true);
  env.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(link.messages_dropped(), 0u);
}

TEST(NetworkLinkFailureTest, DelayPolicyRedeliveryRespectsChannelFifo) {
  SimEnvironment env;
  NetworkLinkConfig cfg = NoBandwidth(Milliseconds(5));
  cfg.partition_policy = PartitionPolicy::kDelayInFlight;
  NetworkLink link(&env, cfg);
  std::vector<int> order;
  ASSERT_TRUE(link.SendOnChannel(1, 10, [&] { order.push_back(0); }).ok());
  // Flap instantly: the in-flight message survives the flap (delay policy)
  // and must still arrive before anything sent after the reconnect.
  link.SetConnected(false);
  link.SetConnected(true);
  ASSERT_TRUE(link.SendOnChannel(1, 10, [&] { order.push_back(1); }).ok());
  env.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(NetworkLinkFailureTest, DropProbabilityLosesMessagesSilently) {
  SimEnvironment env;
  NetworkLinkConfig cfg = NoBandwidth(Milliseconds(1));
  cfg.drop_probability = 0.5;
  cfg.seed = 11;
  NetworkLink link(&env, cfg);
  int delivered = 0;
  for (int i = 0; i < 200; ++i) {
    // The send itself always succeeds: the loss is silent.
    ASSERT_TRUE(link.Send(10, [&] { ++delivered; }).ok());
  }
  env.RunUntilIdle();
  EXPECT_EQ(static_cast<uint64_t>(delivered) + link.messages_dropped(),
            200u);
  // Loose bounds; the RNG is seeded, so this cannot flake.
  EXPECT_GT(delivered, 50);
  EXPECT_LT(delivered, 150);

  link.set_drop_probability(0.0);
  const int before = delivered;
  ASSERT_TRUE(link.Send(10, [&] { ++delivered; }).ok());
  env.RunUntilIdle();
  EXPECT_EQ(delivered, before + 1);
}

TEST(NetworkLinkFailureTest, EstimateArrivalUsesTheRequestedChannel) {
  SimEnvironment env;
  NetworkLink link(&env, NoBandwidth(Milliseconds(2), Milliseconds(10)));
  // A latency spike while channel 7 has traffic in flight pushes its FIFO
  // floor far past the healthy-link bound; the spike then ends.
  link.set_base_latency(Milliseconds(40));
  ASSERT_TRUE(link.SendOnChannel(7, 8, [] {}).ok());
  link.set_base_latency(Milliseconds(2));
  const SimTime est0 = link.EstimateArrival(8, 0);
  const SimTime est7 = link.EstimateArrival(8, 7);
  // Channel 0 is untouched, so its bound must not inherit channel 7's
  // backlog; channel 7's bound must reflect it.
  EXPECT_GT(est7, est0);
  SimTime actual = -1;
  ASSERT_TRUE(link.SendOnChannel(7, 8, [&] { actual = env.now(); }).ok());
  env.RunUntilIdle();
  EXPECT_LE(actual, est7) << "estimate must be an upper bound";
}

TEST(NetworkLinkFailureTest, EstimateArrivalBoundsJitter) {
  SimEnvironment env;
  NetworkLink link(&env, NoBandwidth(Milliseconds(2), Milliseconds(5)));
  for (int i = 0; i < 50; ++i) {
    const SimTime est = link.EstimateArrival(16);
    SimTime actual = -1;
    ASSERT_TRUE(link.Send(16, [&] { actual = env.now(); }).ok());
    env.RunUntilIdle();
    EXPECT_LE(actual, est);
  }
}

TEST(NetworkLinkFailureTest, ReleaseChannelForgetsFifoState) {
  SimEnvironment env;
  NetworkLink link(&env, NoBandwidth(Milliseconds(1)));
  for (uint64_t ch = 1; ch <= 16; ++ch) {
    ASSERT_TRUE(link.SendOnChannel(ch, 8, [] {}).ok());
  }
  env.RunUntilIdle();
  EXPECT_EQ(link.tracked_channels(), 16u);
  for (uint64_t ch = 1; ch <= 16; ++ch) link.ReleaseChannel(ch);
  EXPECT_EQ(link.tracked_channels(), 0u);
}

TEST(NetworkLinkChannelTest, DefaultSendIsChannelZero) {
  sim::SimEnvironment env;
  NetworkLink link(&env, NoBandwidth(Milliseconds(1), Milliseconds(20)));
  std::vector<int> order;
  ASSERT_TRUE(link.Send(8, [&] { order.push_back(0); }).ok());
  ASSERT_TRUE(link.SendOnChannel(0, 8, [&] { order.push_back(1); }).ok());
  ASSERT_TRUE(link.Send(8, [&] { order.push_back(2); }).ok());
  env.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));  // One FIFO stream.
}

}  // namespace
}  // namespace zerobak::sim
