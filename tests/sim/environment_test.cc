#include "sim/environment.h"

#include <vector>

#include <gtest/gtest.h>

namespace zerobak::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Push(30, [&] { order.push_back(3); });
  q.Push(10, [&] { order.push_back(1); });
  q.Push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.Pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.Pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  EventId a = q.Push(1, [&] { ++fired; });
  q.Push(2, [&] { ++fired; });
  EXPECT_TRUE(q.Cancel(a));
  EXPECT_FALSE(q.Cancel(a));  // Double-cancel is a no-op.
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.Pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  EventId a = q.Push(1, [] {});
  q.Push(9, [] {});
  q.Cancel(a);
  EXPECT_EQ(q.NextTime(), 9);
}

TEST(SimEnvironmentTest, ClockAdvancesWithEvents) {
  SimEnvironment env;
  EXPECT_EQ(env.now(), 0);
  SimTime seen = -1;
  env.Schedule(Milliseconds(5), [&] { seen = env.now(); });
  EXPECT_TRUE(env.RunOne());
  EXPECT_EQ(seen, Milliseconds(5));
  EXPECT_EQ(env.now(), Milliseconds(5));
}

TEST(SimEnvironmentTest, RunUntilAdvancesClockEvenWithoutEvents) {
  SimEnvironment env;
  EXPECT_EQ(env.RunUntil(Seconds(1)), 0u);
  EXPECT_EQ(env.now(), Seconds(1));
}

TEST(SimEnvironmentTest, RunUntilExecutesOnlyDueEvents) {
  SimEnvironment env;
  int early = 0, late = 0;
  env.Schedule(Milliseconds(1), [&] { ++early; });
  env.Schedule(Milliseconds(100), [&] { ++late; });
  env.RunUntil(Milliseconds(10));
  EXPECT_EQ(early, 1);
  EXPECT_EQ(late, 0);
  EXPECT_EQ(env.now(), Milliseconds(10));
  env.RunUntilIdle();
  EXPECT_EQ(late, 1);
}

TEST(SimEnvironmentTest, EventsCanScheduleEvents) {
  SimEnvironment env;
  std::vector<SimTime> times;
  env.Schedule(10, [&] {
    times.push_back(env.now());
    env.Schedule(10, [&] { times.push_back(env.now()); });
  });
  env.RunUntilIdle();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 20}));
}

TEST(SimEnvironmentTest, RunUntilIdleRespectsMaxEvents) {
  SimEnvironment env;
  // Self-perpetuating event chain.
  std::function<void()> loop = [&] { env.Schedule(1, loop); };
  env.Schedule(1, loop);
  EXPECT_EQ(env.RunUntilIdle(100), 100u);
}

TEST(SimEnvironmentTest, CancelScheduled) {
  SimEnvironment env;
  int fired = 0;
  EventId id = env.Schedule(5, [&] { ++fired; });
  EXPECT_TRUE(env.Cancel(id));
  env.RunUntilIdle();
  EXPECT_EQ(fired, 0);
}

TEST(PeriodicTaskTest, FiresAtInterval) {
  SimEnvironment env;
  std::vector<SimTime> fires;
  PeriodicTask task(&env, Milliseconds(10),
                    [&] { fires.push_back(env.now()); });
  task.Start();
  env.RunUntil(Milliseconds(35));
  EXPECT_EQ(fires, (std::vector<SimTime>{Milliseconds(10), Milliseconds(20),
                                         Milliseconds(30)}));
}

TEST(PeriodicTaskTest, StopHalts) {
  SimEnvironment env;
  int count = 0;
  PeriodicTask task(&env, Milliseconds(10), [&] { ++count; });
  task.Start();
  env.RunUntil(Milliseconds(25));
  task.Stop();
  env.RunUntil(Milliseconds(100));
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTaskTest, TaskMayStopItself) {
  SimEnvironment env;
  int count = 0;
  PeriodicTask* self = nullptr;
  PeriodicTask task(&env, Milliseconds(1), [&] {
    if (++count == 3) self->Stop();
  });
  self = &task;
  task.Start();
  env.RunUntil(Seconds(1));
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTaskTest, DoubleStartIsIdempotent) {
  SimEnvironment env;
  int count = 0;
  PeriodicTask task(&env, Milliseconds(10), [&] { ++count; });
  task.Start();
  task.Start();
  env.RunUntil(Milliseconds(10));
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace zerobak::sim
