#include "workload/latency_driver.h"

#include <gtest/gtest.h>

#include "replication/replication.h"

namespace zerobak::workload {
namespace {

storage::ArrayConfig MediaModel(SimDuration write_latency) {
  storage::ArrayConfig cfg;
  cfg.media = block::DeviceLatencyModel{Microseconds(100), write_latency,
                                        0, 0, 1};
  return cfg;
}

TEST(ClosedLoopDriverTest, MeasuresPerTxnLatency) {
  sim::SimEnvironment env;
  storage::StorageArray array(&env, MediaModel(Microseconds(200)));
  auto a = array.CreateVolume("a", 64);
  auto b = array.CreateVolume("b", 64);
  ASSERT_TRUE(a.ok() && b.ok());

  DriverConfig cfg;
  cfg.steps = {TxnIoStep{*a, 1}, TxnIoStep{*b, 1}};  // Two dependent IOs.
  cfg.clients = 1;
  ClosedLoopDriver driver(&env, &array, cfg);
  driver.Start();
  env.RunFor(Milliseconds(10));
  driver.Stop();
  env.RunUntilIdle();

  // Each transaction = 2 writes x 200 us = 400 us exactly.
  EXPECT_GT(driver.completed_txns(), 0u);
  EXPECT_EQ(driver.txn_latency().min(),
            static_cast<uint64_t>(Microseconds(400)));
  EXPECT_EQ(driver.txn_latency().max(),
            static_cast<uint64_t>(Microseconds(400)));
  EXPECT_EQ(driver.completed_txns(), driver.txn_latency().count());
  EXPECT_EQ(driver.failed_txns(), 0u);
}

TEST(ClosedLoopDriverTest, ClosedLoopThroughputMatchesLatency) {
  sim::SimEnvironment env;
  storage::StorageArray array(&env, MediaModel(Microseconds(100)));
  auto a = array.CreateVolume("a", 64);
  ASSERT_TRUE(a.ok());
  DriverConfig cfg;
  cfg.steps = {TxnIoStep{*a, 1}};
  cfg.clients = 4;
  ClosedLoopDriver driver(&env, &array, cfg);
  driver.Start();
  env.RunFor(Seconds(1));
  driver.Stop();
  // 4 clients x (1 / 100us) = 40k txn/s.
  EXPECT_NEAR(driver.TxnPerSecond(), 40000.0, 400.0);
}

TEST(ClosedLoopDriverTest, ThinkTimeSlowsClients) {
  sim::SimEnvironment env;
  storage::StorageArray array(&env, MediaModel(Microseconds(100)));
  auto a = array.CreateVolume("a", 64);
  ASSERT_TRUE(a.ok());
  DriverConfig cfg;
  cfg.steps = {TxnIoStep{*a, 1}};
  cfg.clients = 1;
  cfg.think_time = Microseconds(900);
  ClosedLoopDriver driver(&env, &array, cfg);
  driver.Start();
  env.RunFor(Milliseconds(100));
  driver.Stop();
  // Cycle = 100 us IO + 900 us think = 1 ms -> ~100 txns in 100 ms.
  EXPECT_NEAR(static_cast<double>(driver.completed_txns()), 100.0, 2.0);
}

TEST(ClosedLoopDriverTest, SlowdownVisibleUnderSyncReplication) {
  // The E1 experiment in miniature: the same driver measures a higher
  // transaction latency once SDC hangs a network round trip on every
  // write ack.
  sim::SimEnvironment env;
  storage::StorageArray main(&env, MediaModel(Microseconds(200)));
  storage::StorageArray backup(&env, MediaModel(Microseconds(200)));
  sim::NetworkLinkConfig link_cfg;
  link_cfg.base_latency = Milliseconds(5);
  link_cfg.jitter = 0;
  link_cfg.bandwidth_bytes_per_sec = 0;
  sim::NetworkLink fwd(&env, link_cfg, "f");
  sim::NetworkLink rev(&env, link_cfg, "r");
  replication::ReplicationEngine engine(&env, &main, &backup, &fwd, &rev);

  auto p = main.CreateVolume("p", 64);
  auto s = backup.CreateVolume("s", 64);
  ASSERT_TRUE(p.ok() && s.ok());

  DriverConfig cfg;
  cfg.steps = {TxnIoStep{*p, 1}};
  cfg.clients = 1;

  // Baseline: no replication.
  {
    ClosedLoopDriver driver(&env, &main, cfg);
    driver.Start();
    env.RunFor(Milliseconds(50));
    driver.Stop();
    env.RunUntilIdle();
    EXPECT_EQ(driver.txn_latency().max(),
              static_cast<uint64_t>(Microseconds(200)));
  }

  // With SDC: every ack pays 2 x 5 ms + the remote media write.
  replication::PairConfig pc;
  pc.primary = *p;
  pc.secondary = *s;
  pc.mode = replication::ReplicationMode::kSynchronous;
  ASSERT_TRUE(engine.CreatePair(pc).ok());
  env.RunFor(Milliseconds(20));
  {
    ClosedLoopDriver driver(&env, &main, cfg);
    driver.Start();
    env.RunFor(Milliseconds(200));
    driver.Stop();
    env.RunUntilIdle();
    EXPECT_GE(driver.txn_latency().min(),
              static_cast<uint64_t>(Milliseconds(10)));
  }
}

}  // namespace
}  // namespace zerobak::workload
