#include <memory>

#include <gtest/gtest.h>

#include "block/mem_volume.h"
#include "common/value.h"
#include "db/minidb.h"
#include "workload/analytics.h"
#include "workload/ecommerce.h"
#include "workload/invariants.h"

namespace zerobak::workload {
namespace {

db::DbOptions Opts() {
  db::DbOptions o;
  o.checkpoint_blocks = 128;
  o.wal_blocks = 512;
  return o;
}

constexpr uint64_t kBlocks = 1 + 2 * 128 + 512;

class EcommerceTest : public ::testing::Test {
 protected:
  EcommerceTest() : sales_vol_(kBlocks), stock_vol_(kBlocks) {
    EXPECT_TRUE(db::MiniDb::Format(&sales_vol_, Opts()).ok());
    EXPECT_TRUE(db::MiniDb::Format(&stock_vol_, Opts()).ok());
    sales_ = std::move(db::MiniDb::Open(&sales_vol_, Opts())).value();
    stock_ = std::move(db::MiniDb::Open(&stock_vol_, Opts())).value();
    EcommerceConfig cfg;
    cfg.num_items = 8;
    cfg.initial_stock_per_item = 1000;
    app_ = std::make_unique<EcommerceApp>(sales_.get(), stock_.get(), cfg);
    EXPECT_TRUE(app_->InitializeCatalog().ok());
  }

  block::MemVolume sales_vol_;
  block::MemVolume stock_vol_;
  std::unique_ptr<db::MiniDb> sales_;
  std::unique_ptr<db::MiniDb> stock_;
  std::unique_ptr<EcommerceApp> app_;
};

TEST_F(EcommerceTest, CatalogInitialization) {
  EXPECT_EQ(stock_->RowCount(kStockTable), 8u);
  auto row = Value::FromJson(stock_->Get(kStockTable, ItemKey(0)).value());
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->GetInt("quantity"), 1000);
  EXPECT_EQ(row->GetInt("initialQuantity"), 1000);

  // Idempotent: a second initialization keeps quantities.
  ASSERT_TRUE(app_->PlaceOrder().ok());
  ASSERT_TRUE(app_->InitializeCatalog().ok());
  auto summary = SummarizeStock(stock_.get());
  EXPECT_LT(summary.total_quantity, 8000);  // Not reset.
}

TEST_F(EcommerceTest, OrderTouchesBothDatabases) {
  auto result = app_->PlaceOrder();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->order_id, 1u);
  EXPECT_GT(result->quantity, 0);

  EXPECT_TRUE(sales_->Exists(kOrderTable, OrderKey(1)));
  EXPECT_TRUE(stock_->Exists(kMovementTable, MovementKey(1)));
  auto item = Value::FromJson(
      stock_->Get(kStockTable, result->item).value());
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(item->GetInt("quantity"), 1000 - result->quantity);
}

TEST_F(EcommerceTest, SequentialOrderIds) {
  for (uint64_t i = 1; i <= 5; ++i) {
    auto r = app_->PlaceOrder();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->order_id, i);
  }
  EXPECT_EQ(app_->orders_placed(), 5u);
  EXPECT_EQ(sales_->RowCount(kOrderTable), 5u);
  EXPECT_EQ(stock_->RowCount(kMovementTable), 5u);
}

TEST_F(EcommerceTest, ConsistentStateReportsClean) {
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(app_->PlaceOrder().ok());
  CollapseReport report = CheckConsistency(sales_.get(), stock_.get());
  EXPECT_EQ(report.sales_orders, 30u);
  EXPECT_EQ(report.stock_movements, 30u);
  EXPECT_EQ(report.orphan_orders, 0u);
  EXPECT_EQ(report.pending_movements, 0u);
  EXPECT_FALSE(report.collapsed());
  EXPECT_TRUE(report.internally_consistent());
  EXPECT_NE(report.ToString().find("consistent"), std::string::npos);
}

TEST_F(EcommerceTest, OrphanOrderDetected) {
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(app_->PlaceOrder().ok());
  // Fabricate the collapse: an order whose movement never made it.
  db::Transaction txn = sales_->Begin();
  Value order = Value::MakeObject();
  order["item"] = ItemKey(0);
  order["quantity"] = 1;
  order["amountCents"] = 100;
  txn.Put(kOrderTable, OrderKey(999), order.ToJson());
  ASSERT_TRUE(sales_->Commit(std::move(txn)).ok());

  CollapseReport report = CheckConsistency(sales_.get(), stock_.get());
  EXPECT_EQ(report.orphan_orders, 1u);
  EXPECT_TRUE(report.collapsed());
  EXPECT_NE(report.ToString().find("COLLAPSED"), std::string::npos);
}

TEST_F(EcommerceTest, PendingMovementIsNotCollapse) {
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(app_->PlaceOrder().ok());
  // A movement without its order: the legitimate in-flight case (stock
  // committed first, crash before the sales commit).
  db::Transaction txn = stock_->Begin();
  Value mv = Value::MakeObject();
  mv["orderId"] = 1000;
  mv["item"] = ItemKey(1);
  mv["quantity"] = 0;
  txn.Put(kMovementTable, MovementKey(1000), mv.ToJson());
  ASSERT_TRUE(stock_->Commit(std::move(txn)).ok());

  CollapseReport report = CheckConsistency(sales_.get(), stock_.get());
  EXPECT_FALSE(report.collapsed());
  EXPECT_EQ(report.pending_movements, 1u);
}

TEST_F(EcommerceTest, StockAccountingErrorDetected) {
  ASSERT_TRUE(app_->PlaceOrder().ok());
  // Corrupt a stock row outside the application protocol.
  db::Transaction txn = stock_->Begin();
  Value row = Value::MakeObject();
  row["quantity"] = 12345;
  row["initialQuantity"] = 1000;
  txn.Put(kStockTable, ItemKey(3), row.ToJson());
  ASSERT_TRUE(stock_->Commit(std::move(txn)).ok());

  CollapseReport report = CheckConsistency(sales_.get(), stock_.get());
  EXPECT_FALSE(report.internally_consistent());
  EXPECT_GT(report.stock_accounting_errors, 0u);
}

TEST_F(EcommerceTest, OutOfStockRejected) {
  EcommerceConfig cfg;
  cfg.num_items = 1;
  cfg.initial_stock_per_item = 2;
  block::MemVolume sv(kBlocks), tv(kBlocks);
  ASSERT_TRUE(db::MiniDb::Format(&sv, Opts()).ok());
  ASSERT_TRUE(db::MiniDb::Format(&tv, Opts()).ok());
  auto sales = std::move(db::MiniDb::Open(&sv, Opts())).value();
  auto stock = std::move(db::MiniDb::Open(&tv, Opts())).value();
  EcommerceApp app(sales.get(), stock.get(), cfg);
  ASSERT_TRUE(app.InitializeCatalog().ok());
  Status last = OkStatus();
  for (int i = 0; i < 10 && last.ok(); ++i) {
    auto r = app.PlaceOrder();
    last = r.ok() ? OkStatus() : r.status();
  }
  EXPECT_EQ(last.code(), StatusCode::kFailedPrecondition);
  // The failed order never reached the sales database.
  CollapseReport report = CheckConsistency(sales.get(), stock.get());
  EXPECT_FALSE(report.collapsed());
}

TEST_F(EcommerceTest, AnalyticsAggregations) {
  int64_t expected_revenue = 0;
  for (int i = 0; i < 40; ++i) {
    auto r = app_->PlaceOrder();
    ASSERT_TRUE(r.ok());
    expected_revenue += r->amount_cents;
  }
  SalesSummary summary = SummarizeSales(sales_.get());
  EXPECT_EQ(summary.order_count, 40u);
  EXPECT_EQ(summary.revenue_cents, expected_revenue);
  EXPECT_NEAR(summary.average_order_cents,
              static_cast<double>(expected_revenue) / 40.0, 0.01);

  auto top = TopItems(sales_.get(), 3);
  EXPECT_LE(top.size(), 3u);
  ASSERT_FALSE(top.empty());
  // Sorted descending by orders.
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].orders, top[i].orders);
  }

  StockSummary stock_summary = SummarizeStock(stock_.get());
  EXPECT_EQ(stock_summary.item_count, 8u);
  // Everything sold is accounted for.
  int64_t total_qty = 0;
  for (const auto& [key, json] : stock_->Scan(kMovementTable)) {
    auto row = Value::FromJson(json);
    total_qty += row->GetInt("quantity");
  }
  EXPECT_EQ(stock_summary.total_sold, total_qty);
  EXPECT_EQ(stock_summary.total_quantity, 8000 - total_qty);
}

TEST_F(EcommerceTest, ZipfSkewConcentratesOrders) {
  EcommerceConfig cfg;
  cfg.num_items = 16;
  cfg.zipf_theta = 0.9;
  cfg.seed = 5;
  block::MemVolume sv(kBlocks), tv(kBlocks);
  ASSERT_TRUE(db::MiniDb::Format(&sv, Opts()).ok());
  ASSERT_TRUE(db::MiniDb::Format(&tv, Opts()).ok());
  auto sales = std::move(db::MiniDb::Open(&sv, Opts())).value();
  auto stock = std::move(db::MiniDb::Open(&tv, Opts())).value();
  EcommerceApp app(sales.get(), stock.get(), cfg);
  ASSERT_TRUE(app.InitializeCatalog().ok());
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(app.PlaceOrder().ok());
  auto top = TopItems(sales.get(), 16);
  ASSERT_GE(top.size(), 2u);
  // Heavy skew: the hottest item dominates.
  EXPECT_GT(top[0].orders, 200u / 16u * 2);
}

}  // namespace
}  // namespace zerobak::workload
