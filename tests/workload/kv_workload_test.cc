#include "workload/kv_workload.h"

#include <gtest/gtest.h>

#include "block/mem_volume.h"
#include "replication/replication.h"
#include "storage/array.h"
#include "storage/array_device.h"

namespace zerobak::workload {
namespace {

db::DbOptions Opts() {
  db::DbOptions o;
  o.checkpoint_blocks = 128;
  o.wal_blocks = 512;
  return o;
}

constexpr uint64_t kBlocks = 1 + 2 * 128 + 512;

TEST(KvWorkloadTest, LoadInsertsExactRecordCount) {
  block::MemVolume device(kBlocks);
  ASSERT_TRUE(db::MiniDb::Format(&device, Opts()).ok());
  auto db = std::move(db::MiniDb::Open(&device, Opts())).value();
  KvWorkloadConfig cfg;
  cfg.record_count = 500;
  KvWorkload workload(db.get(), cfg);
  ASSERT_TRUE(workload.Load().ok());
  EXPECT_EQ(db->RowCount("usertable"), 500u);
  EXPECT_EQ(workload.key_count(), 500u);
  // Keys are the canonical YCSB shape.
  EXPECT_TRUE(db->Exists("usertable", KvWorkload::Key(0)));
  EXPECT_TRUE(db->Exists("usertable", KvWorkload::Key(499)));
  EXPECT_FALSE(db->Exists("usertable", KvWorkload::Key(500)));
}

TEST(KvWorkloadTest, MixMatchesConfiguredFractions) {
  block::MemVolume device(kBlocks);
  ASSERT_TRUE(db::MiniDb::Format(&device, Opts()).ok());
  auto db = std::move(db::MiniDb::Open(&device, Opts())).value();
  KvWorkloadConfig cfg;
  cfg.record_count = 200;
  cfg.read_fraction = 0.7;
  cfg.update_fraction = 0.2;
  cfg.insert_fraction = 0.1;
  KvWorkload workload(db.get(), cfg);
  ASSERT_TRUE(workload.Load().ok());
  ASSERT_TRUE(workload.Run(5000).ok());
  const auto& stats = workload.stats();
  EXPECT_EQ(stats.operations(), 5000u);
  EXPECT_NEAR(static_cast<double>(stats.reads) / 5000.0, 0.7, 0.03);
  EXPECT_NEAR(static_cast<double>(stats.updates) / 5000.0, 0.2, 0.03);
  EXPECT_NEAR(static_cast<double>(stats.inserts) / 5000.0, 0.1, 0.03);
  // Reads only target existing keys: no misses.
  EXPECT_EQ(stats.read_misses, 0u);
  EXPECT_EQ(db->RowCount("usertable"), 200u + stats.inserts);
}

TEST(KvWorkloadTest, SurvivesRecovery) {
  block::MemVolume device(kBlocks);
  ASSERT_TRUE(db::MiniDb::Format(&device, Opts()).ok());
  uint64_t keys = 0;
  {
    auto db = std::move(db::MiniDb::Open(&device, Opts())).value();
    KvWorkloadConfig cfg;
    cfg.record_count = 300;
    KvWorkload workload(db.get(), cfg);
    ASSERT_TRUE(workload.Load().ok());
    ASSERT_TRUE(workload.Run(1000).ok());
    keys = workload.key_count();
  }
  auto db = db::MiniDb::Open(&device, Opts());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->RowCount("usertable"), keys);
}

TEST(KvWorkloadTest, DrivesReplicationEndToEnd) {
  // A generic KV tenant on a replicated volume: the pipeline does not
  // care what application sits on top.
  sim::SimEnvironment env;
  storage::ArrayConfig zero;
  zero.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  storage::ArrayConfig main_cfg = zero;
  main_cfg.serial = "M";
  storage::ArrayConfig backup_cfg = zero;
  backup_cfg.serial = "B";
  storage::StorageArray main(&env, main_cfg);
  storage::StorageArray backup(&env, backup_cfg);
  sim::NetworkLinkConfig link_cfg;
  link_cfg.base_latency = Milliseconds(2);
  sim::NetworkLink fwd(&env, link_cfg, "f");
  sim::NetworkLink rev(&env, link_cfg, "r");
  replication::ReplicationEngine engine(&env, &main, &backup, &fwd, &rev);
  auto p = main.CreateVolume("kv", kBlocks);
  auto s = backup.CreateVolume("r-kv", kBlocks);
  ASSERT_TRUE(p.ok() && s.ok());
  auto group = engine.CreateConsistencyGroup({.name = "kv"});
  ASSERT_TRUE(group.ok());
  replication::PairConfig pc;
  pc.primary = *p;
  pc.secondary = *s;
  pc.mode = replication::ReplicationMode::kAsynchronous;
  pc.group = *group;
  ASSERT_TRUE(engine.CreatePair(pc).ok());
  env.RunFor(Milliseconds(10));

  storage::ArrayVolumeDevice device(&main, *p);
  ASSERT_TRUE(db::MiniDb::Format(&device, Opts()).ok());
  auto db = std::move(db::MiniDb::Open(&device, Opts())).value();
  KvWorkloadConfig cfg;
  cfg.record_count = 200;
  cfg.zipf_theta = 0.9;
  KvWorkload workload(db.get(), cfg);
  ASSERT_TRUE(workload.Load().ok());
  ASSERT_TRUE(workload.Run(500).ok());
  env.RunFor(Milliseconds(100));

  // The backup volume recovers to the identical key-value state.
  storage::ArrayVolumeDevice backup_device(&backup, *s);
  db::DbOptions ro = Opts();
  ro.read_only = true;
  auto recovered = db::MiniDb::Open(&backup_device, ro);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)->Scan("usertable"), db->Scan("usertable"));
}

}  // namespace
}  // namespace zerobak::workload
