// API machinery edge cases: conflict storms, watch reentrancy, status
// updates on missing objects, and delivery-after-stop races.
#include <gtest/gtest.h>

#include "container/api_server.h"
#include "container/resource.h"

namespace zerobak::container {
namespace {

Resource MakePod(const std::string& name) {
  Resource r;
  r.kind = kKindPod;
  r.ns = "ns";
  r.name = name;
  return r;
}

class ApiEdgeTest : public ::testing::Test {
 protected:
  sim::SimEnvironment env_;
  ApiServer api_{&env_, "edge"};
};

TEST_F(ApiEdgeTest, UpdateOfMissingObjectIsNotFound) {
  Resource r = MakePod("ghost");
  r.resource_version = 1;
  EXPECT_EQ(api_.Update(r).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(api_.UpdateStatus(r).status().code(), StatusCode::kNotFound);
}

TEST_F(ApiEdgeTest, ConflictStormResolvedByMutate) {
  ASSERT_TRUE(api_.Create(MakePod("p")).ok());
  // Two "controllers" racing through Mutate: both edits land.
  ASSERT_TRUE(api_.Mutate(kKindPod, "ns", "p", [](Resource* r) {
                    r->labels["a"] = "1";
                  })
                  .ok());
  ASSERT_TRUE(api_.Mutate(kKindPod, "ns", "p", [](Resource* r) {
                    r->labels["b"] = "2";
                  })
                  .ok());
  auto got = api_.Get(kKindPod, "ns", "p");
  EXPECT_EQ(got->GetLabel("a"), "1");
  EXPECT_EQ(got->GetLabel("b"), "2");
}

TEST_F(ApiEdgeTest, WatchHandlerMayWriteDuringDelivery) {
  // Reentrancy: a handler mutating the same object must not deadlock or
  // corrupt the store; its write produces a further event.
  int events = 0;
  api_.Watch(kKindPod, [&](const WatchEvent& e) {
    ++events;
    if (e.type == WatchEventType::kAdded) {
      (void)api_.Mutate(e.resource.kind, e.resource.ns, e.resource.name,
                        [](Resource* r) { r->labels["seen"] = "y"; });
    }
  });
  ASSERT_TRUE(api_.Create(MakePod("p")).ok());
  env_.RunUntilIdle();
  EXPECT_GE(events, 2);  // ADDED plus the MODIFIED it triggered.
  EXPECT_EQ(api_.Get(kKindPod, "ns", "p")->GetLabel("seen"), "y");
}

TEST_F(ApiEdgeTest, StopWatchDropsInFlightDeliveries) {
  int events = 0;
  const uint64_t id =
      api_.Watch(kKindPod, [&](const WatchEvent&) { ++events; });
  ASSERT_TRUE(api_.Create(MakePod("p")).ok());
  // The event is scheduled but not yet delivered; stopping now must
  // swallow it.
  api_.StopWatch(id);
  env_.RunUntilIdle();
  EXPECT_EQ(events, 0);
}

TEST_F(ApiEdgeTest, GenerationTracksSpecChangesOnly) {
  auto created = api_.Create(MakePod("p"));
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created->generation, 1u);

  // Label-only update: no spec change, no generation bump.
  Resource r = *created;
  r.labels["x"] = "y";
  auto updated = api_.Update(r);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->generation, 1u);

  // Spec change bumps it.
  r = *updated;
  r.spec["image"] = "v2";
  updated = api_.Update(r);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->generation, 2u);
}

TEST_F(ApiEdgeTest, ResourceVersionsAreMonotonic) {
  uint64_t last = 0;
  for (int i = 0; i < 5; ++i) {
    auto created = api_.Create(MakePod("p" + std::to_string(i)));
    ASSERT_TRUE(created.ok());
    EXPECT_GT(created->resource_version, last);
    last = created->resource_version;
  }
}

TEST_F(ApiEdgeTest, NamespaceIsolationInKeys) {
  Resource a = MakePod("same");
  Resource b = MakePod("same");
  b.ns = "other";
  ASSERT_TRUE(api_.Create(a).ok());
  ASSERT_TRUE(api_.Create(b).ok());  // Same name, different namespace.
  EXPECT_EQ(api_.List(kKindPod).size(), 2u);
  EXPECT_EQ(api_.List(kKindPod, "ns").size(), 1u);
  ASSERT_TRUE(api_.Delete(kKindPod, "other", "same").ok());
  EXPECT_TRUE(api_.Exists(kKindPod, "ns", "same"));
}

TEST_F(ApiEdgeTest, KindPrefixDoesNotBleedAcrossKinds) {
  // "Pod" must not match "PodTemplate" in the ordered-map prefix scan.
  Resource pod = MakePod("p");
  Resource tmpl;
  tmpl.kind = "PodTemplate";
  tmpl.ns = "ns";
  tmpl.name = "t";
  ASSERT_TRUE(api_.Create(pod).ok());
  ASSERT_TRUE(api_.Create(tmpl).ok());
  EXPECT_EQ(api_.List(kKindPod).size(), 1u);
  EXPECT_EQ(api_.List("PodTemplate").size(), 1u);
}

}  // namespace
}  // namespace zerobak::container
