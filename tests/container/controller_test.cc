#include "container/controller.h"

#include <gtest/gtest.h>

#include "container/cluster.h"
#include "container/resource.h"

namespace zerobak::container {
namespace {

// A controller that labels every Pod it sees.
class LabelingController : public Controller {
 public:
  std::string name() const override { return "labeler"; }
  std::vector<std::string> WatchedKinds() const override {
    return {kKindPod};
  }
  void Reconcile(const WatchEvent& event) override {
    if (event.type == WatchEventType::kDeleted) return;
    if (event.resource.GetLabel("seen") == "true") return;  // Converged.
    (void)api_->Mutate(event.resource.kind, event.resource.ns,
                       event.resource.name, [](Resource* r) {
                         r->labels["seen"] = "true";
                       });
  }
};

TEST(ControllerTest, ReconcileDrivenByWatch) {
  sim::SimEnvironment env;
  ApiServer api(&env, "c");
  ControllerManager mgr(&env, &api);
  mgr.Register(std::make_unique<LabelingController>());

  Resource pod;
  pod.kind = kKindPod;
  pod.ns = "ns";
  pod.name = "p";
  ASSERT_TRUE(api.Create(pod).ok());
  env.RunUntilIdle();

  auto got = api.Get(kKindPod, "ns", "p");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->GetLabel("seen"), "true");
  EXPECT_GE(mgr.Find("labeler")->reconcile_count(), 1u);
}

TEST(ControllerTest, LevelTriggeredConvergenceIsIdempotent) {
  sim::SimEnvironment env;
  ApiServer api(&env, "c");
  ControllerManager mgr(&env, &api);
  mgr.Register(std::make_unique<LabelingController>());

  Resource pod;
  pod.kind = kKindPod;
  pod.ns = "ns";
  pod.name = "p";
  ASSERT_TRUE(api.Create(pod).ok());
  env.RunUntilIdle();
  const uint64_t writes_after_convergence = api.writes();

  // Resync replays MODIFIED events; a converged controller must not write.
  mgr.EnableResync(Milliseconds(10));
  env.RunFor(Milliseconds(100));
  EXPECT_EQ(api.writes(), writes_after_convergence);
}

TEST(ControllerTest, FindLocatesControllers) {
  sim::SimEnvironment env;
  ApiServer api(&env, "c");
  ControllerManager mgr(&env, &api);
  mgr.Register(std::make_unique<LabelingController>());
  EXPECT_NE(mgr.Find("labeler"), nullptr);
  EXPECT_EQ(mgr.Find("missing"), nullptr);
  EXPECT_EQ(mgr.controller_count(), 1u);
}

TEST(ControllerTest, ClusterBundlesApiAndManager) {
  sim::SimEnvironment env;
  Cluster cluster(&env, "main");
  EXPECT_EQ(cluster.name(), "main");
  cluster.controllers()->Register(std::make_unique<LabelingController>());
  Resource pod;
  pod.kind = kKindPod;
  pod.ns = "ns";
  pod.name = "p";
  ASSERT_TRUE(cluster.api()->Create(pod).ok());
  env.RunUntilIdle();
  EXPECT_EQ(cluster.api()->Get(kKindPod, "ns", "p")->GetLabel("seen"),
            "true");
}

}  // namespace
}  // namespace zerobak::container
