#include "container/api_server.h"

#include <gtest/gtest.h>

#include "container/resource.h"

namespace zerobak::container {
namespace {

Resource MakePvc(const std::string& ns, const std::string& name) {
  Resource r;
  r.kind = kKindPersistentVolumeClaim;
  r.ns = ns;
  r.name = name;
  r.spec["capacityBytes"] = 1024;
  return r;
}

class ApiServerTest : public ::testing::Test {
 protected:
  sim::SimEnvironment env_;
  ApiServer api_{&env_, "test-cluster"};
};

TEST_F(ApiServerTest, CreateGetRoundTrip) {
  auto created = api_.Create(MakePvc("shop", "sales"));
  ASSERT_TRUE(created.ok());
  EXPECT_GT(created->resource_version, 0u);
  EXPECT_EQ(created->generation, 1u);

  auto got = api_.Get(kKindPersistentVolumeClaim, "shop", "sales");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->spec.GetInt("capacityBytes"), 1024);
  EXPECT_TRUE(api_.Exists(kKindPersistentVolumeClaim, "shop", "sales"));
}

TEST_F(ApiServerTest, DuplicateCreateRejected) {
  ASSERT_TRUE(api_.Create(MakePvc("shop", "sales")).ok());
  EXPECT_EQ(api_.Create(MakePvc("shop", "sales")).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ApiServerTest, MissingKindOrNameRejected) {
  Resource r;
  r.kind = "Pod";
  EXPECT_EQ(api_.Create(r).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ApiServerTest, GetMissingReturnsNotFound) {
  EXPECT_EQ(api_.Get("Pod", "ns", "nope").status().code(),
            StatusCode::kNotFound);
}

TEST_F(ApiServerTest, UpdateRequiresCurrentVersion) {
  auto created = api_.Create(MakePvc("shop", "sales"));
  ASSERT_TRUE(created.ok());
  Resource stale = *created;
  Resource fresh = *created;

  fresh.spec["capacityBytes"] = 2048;
  auto updated = api_.Update(fresh);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->generation, 2u);  // Spec changed.

  stale.spec["capacityBytes"] = 4096;
  EXPECT_EQ(api_.Update(stale).status().code(), StatusCode::kAborted);
}

TEST_F(ApiServerTest, StatusUpdateKeepsSpecAndGeneration) {
  auto created = api_.Create(MakePvc("shop", "sales"));
  ASSERT_TRUE(created.ok());
  Resource r = *created;
  r.spec["capacityBytes"] = 9999;  // Must be ignored by UpdateStatus.
  r.status["phase"] = "Bound";
  auto updated = api_.UpdateStatus(r);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->spec.GetInt("capacityBytes"), 1024);
  EXPECT_EQ(updated->status.GetString("phase"), "Bound");
  EXPECT_EQ(updated->generation, 1u);  // Status-only: no generation bump.
}

TEST_F(ApiServerTest, ListFiltersByKindAndNamespace) {
  ASSERT_TRUE(api_.Create(MakePvc("shop", "a")).ok());
  ASSERT_TRUE(api_.Create(MakePvc("shop", "b")).ok());
  ASSERT_TRUE(api_.Create(MakePvc("other", "c")).ok());
  Resource pod;
  pod.kind = kKindPod;
  pod.ns = "shop";
  pod.name = "p";
  ASSERT_TRUE(api_.Create(pod).ok());

  EXPECT_EQ(api_.List(kKindPersistentVolumeClaim).size(), 3u);
  EXPECT_EQ(api_.List(kKindPersistentVolumeClaim, "shop").size(), 2u);
  EXPECT_EQ(api_.List(kKindPod).size(), 1u);
  EXPECT_EQ(api_.List("StorageClass").size(), 0u);
}

TEST_F(ApiServerTest, ListWithLabel) {
  Resource a = MakePvc("shop", "a");
  a.labels["tier"] = "gold";
  Resource b = MakePvc("shop", "b");
  b.labels["tier"] = "bronze";
  ASSERT_TRUE(api_.Create(a).ok());
  ASSERT_TRUE(api_.Create(b).ok());
  auto gold = api_.ListWithLabel(kKindPersistentVolumeClaim, "tier", "gold");
  ASSERT_EQ(gold.size(), 1u);
  EXPECT_EQ(gold[0].name, "a");
}

TEST_F(ApiServerTest, DeleteRemoves) {
  ASSERT_TRUE(api_.Create(MakePvc("shop", "a")).ok());
  ASSERT_TRUE(api_.Delete(kKindPersistentVolumeClaim, "shop", "a").ok());
  EXPECT_FALSE(api_.Exists(kKindPersistentVolumeClaim, "shop", "a"));
  EXPECT_EQ(api_.Delete(kKindPersistentVolumeClaim, "shop", "a").code(),
            StatusCode::kNotFound);
}

TEST_F(ApiServerTest, WatchDeliversLifecycleEvents) {
  std::vector<std::pair<WatchEventType, std::string>> events;
  api_.Watch(kKindPersistentVolumeClaim, [&](const WatchEvent& e) {
    events.emplace_back(e.type, e.resource.name);
  });
  ASSERT_TRUE(api_.Create(MakePvc("shop", "a")).ok());
  auto got = api_.Get(kKindPersistentVolumeClaim, "shop", "a");
  Resource r = *got;
  r.spec["capacityBytes"] = 2;
  ASSERT_TRUE(api_.Update(r).ok());
  ASSERT_TRUE(api_.Delete(kKindPersistentVolumeClaim, "shop", "a").ok());

  EXPECT_TRUE(events.empty());  // Asynchronous delivery.
  env_.RunUntilIdle();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], std::make_pair(WatchEventType::kAdded,
                                      std::string("a")));
  EXPECT_EQ(events[1], std::make_pair(WatchEventType::kModified,
                                      std::string("a")));
  EXPECT_EQ(events[2], std::make_pair(WatchEventType::kDeleted,
                                      std::string("a")));
}

TEST_F(ApiServerTest, WatchReplaysExistingObjectsOnRegistration) {
  ASSERT_TRUE(api_.Create(MakePvc("shop", "pre1")).ok());
  ASSERT_TRUE(api_.Create(MakePvc("shop", "pre2")).ok());
  env_.RunUntilIdle();
  int added = 0;
  api_.Watch(kKindPersistentVolumeClaim, [&](const WatchEvent& e) {
    if (e.type == WatchEventType::kAdded) ++added;
  });
  env_.RunUntilIdle();
  EXPECT_EQ(added, 2);  // Informer-style initial list.
}

TEST_F(ApiServerTest, StoppedWatchReceivesNothing) {
  int events = 0;
  const uint64_t id = api_.Watch(
      kKindPersistentVolumeClaim,
      [&](const WatchEvent&) { ++events; });
  api_.StopWatch(id);
  ASSERT_TRUE(api_.Create(MakePvc("shop", "a")).ok());
  env_.RunUntilIdle();
  EXPECT_EQ(events, 0);
}

TEST_F(ApiServerTest, WatchOnlySeesItsKind) {
  int events = 0;
  api_.Watch(kKindPod, [&](const WatchEvent&) { ++events; });
  ASSERT_TRUE(api_.Create(MakePvc("shop", "a")).ok());
  env_.RunUntilIdle();
  EXPECT_EQ(events, 0);
}

TEST_F(ApiServerTest, MutateRetriesAndApplies) {
  ASSERT_TRUE(api_.Create(MakePvc("shop", "a")).ok());
  ASSERT_TRUE(api_.Mutate(kKindPersistentVolumeClaim, "shop", "a",
                          [](Resource* r) {
                            r->annotations["touched"] = "yes";
                          })
                  .ok());
  auto got = api_.Get(kKindPersistentVolumeClaim, "shop", "a");
  EXPECT_EQ(got->GetAnnotation("touched"), "yes");
  EXPECT_EQ(api_.Mutate(kKindPersistentVolumeClaim, "shop", "missing",
                        [](Resource*) {})
                .code(),
            StatusCode::kNotFound);
}

TEST_F(ApiServerTest, ResourceKeyHelpers) {
  Resource r = MakePvc("ns", "n");
  EXPECT_EQ(r.Key(), "PersistentVolumeClaim/ns/n");
  r.annotations["k"] = "v";
  EXPECT_EQ(r.GetAnnotation("k"), "v");
  EXPECT_EQ(r.GetAnnotation("missing", "d"), "d");
  r.labels["l"] = "w";
  EXPECT_EQ(r.GetLabel("l"), "w");
  r.status["phase"] = "Bound";
  EXPECT_EQ(r.StatusPhase(), "Bound");
}

}  // namespace
}  // namespace zerobak::container
