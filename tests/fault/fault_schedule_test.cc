#include "fault/fault_schedule.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/environment.h"
#include "sim/network.h"
#include "storage/array.h"

namespace zerobak::fault {
namespace {

sim::NetworkLinkConfig TestLink() {
  sim::NetworkLinkConfig cfg;
  cfg.base_latency = Milliseconds(2);
  cfg.jitter = 0;
  cfg.bandwidth_bytes_per_sec = 0;
  return cfg;
}

storage::ArrayConfig TestArray(const std::string& serial) {
  storage::ArrayConfig cfg;
  cfg.serial = serial;
  return cfg;
}

FaultScheduleConfig BusyConfig(uint64_t seed) {
  FaultScheduleConfig cfg;
  cfg.seed = seed;
  cfg.horizon = Milliseconds(500);
  cfg.mean_flap_interval = Milliseconds(30);
  cfg.min_outage = Milliseconds(2);
  cfg.max_outage = Milliseconds(10);
  cfg.mean_spike_interval = Milliseconds(60);
  cfg.spike_latency = Milliseconds(20);
  cfg.mean_crash_interval = Milliseconds(120);
  cfg.min_repair = Milliseconds(10);
  cfg.max_repair = Milliseconds(40);
  return cfg;
}

TEST(FaultScheduleTest, SameSeedProducesIdenticalTimeline) {
  std::vector<FaultEvent> first;
  for (int round = 0; round < 2; ++round) {
    sim::SimEnvironment env;
    sim::NetworkLink link(&env, TestLink(), "l");
    storage::StorageArray array(&env, TestArray("A"));
    FaultSchedule schedule(&env, BusyConfig(7));
    schedule.AddLink(&link);
    schedule.AddArray(&array);
    schedule.Arm();
    ASSERT_FALSE(schedule.events().empty());
    if (round == 0) {
      first = schedule.events();
      continue;
    }
    ASSERT_EQ(first.size(), schedule.events().size());
    for (size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i].at, schedule.events()[i].at) << i;
      EXPECT_EQ(first[i].kind, schedule.events()[i].kind) << i;
      EXPECT_EQ(first[i].target, schedule.events()[i].target) << i;
      EXPECT_EQ(first[i].latency, schedule.events()[i].latency) << i;
    }
  }
}

TEST(FaultScheduleTest, DifferentSeedsDiffer) {
  sim::SimEnvironment env;
  sim::NetworkLink link(&env, TestLink(), "l");
  FaultSchedule a(&env, BusyConfig(1));
  a.AddLink(&link);
  a.Arm();
  FaultSchedule b(&env, BusyConfig(2));
  // Note: b is never Armed against the same link (a already runs it); we
  // only compare the generated timelines, so give b its own link.
  sim::NetworkLink other(&env, TestLink(), "l2");
  b.AddLink(&other);
  b.Arm();
  bool identical = a.events().size() == b.events().size();
  if (identical) {
    for (size_t i = 0; i < a.events().size(); ++i) {
      identical &= a.events()[i].at == b.events()[i].at &&
                   a.events()[i].kind == b.events()[i].kind;
    }
  }
  EXPECT_FALSE(identical);
}

TEST(FaultScheduleTest, EventsDriveTargetsAndStayWithinLaneBounds) {
  sim::SimEnvironment env;
  sim::NetworkLink link(&env, TestLink(), "l");
  storage::StorageArray array(&env, TestArray("A"));
  FaultSchedule schedule(&env, BusyConfig(11));
  schedule.AddLink(&link);
  schedule.AddArray(&array);
  schedule.Arm();

  bool saw_disconnect = false;
  bool saw_spike = false;
  bool saw_crash = false;
  // Walk the timeline event by event and check the targets actually
  // transitioned.
  for (const FaultEvent& ev : schedule.events()) {
    env.RunUntil(ev.at);
    env.RunFor(0);  // Let same-instant events fire.
    switch (ev.kind) {
      case FaultKind::kLinkDown:
        saw_disconnect = true;
        EXPECT_FALSE(link.connected());
        break;
      case FaultKind::kLinkUp:
        EXPECT_TRUE(link.connected());
        break;
      case FaultKind::kLatencySpikeStart:
        saw_spike = true;
        EXPECT_EQ(link.config().base_latency, ev.latency);
        break;
      case FaultKind::kLatencySpikeEnd:
        EXPECT_EQ(link.config().base_latency, Milliseconds(2));
        break;
      case FaultKind::kArrayFail:
        saw_crash = true;
        EXPECT_TRUE(array.failed());
        break;
      case FaultKind::kArrayRepair:
        EXPECT_FALSE(array.failed());
        break;
      case FaultKind::kCorruptStart:
      case FaultKind::kCorruptEnd:
      case FaultKind::kMediaErrorStart:
      case FaultKind::kMediaErrorEnd:
      case FaultKind::kBitRot:
        // BusyConfig arms no corruption or media lane.
        ADD_FAILURE() << "unexpected " << FaultKindName(ev.kind);
        break;
    }
  }
  EXPECT_TRUE(saw_disconnect);
  EXPECT_TRUE(saw_spike);
  EXPECT_TRUE(saw_crash);
  EXPECT_EQ(schedule.faults_fired(), schedule.events().size());
  // After the full horizon every lane has closed: targets are healthy.
  env.RunUntilIdle();
  EXPECT_TRUE(link.connected());
  EXPECT_EQ(link.config().base_latency, Milliseconds(2));
  EXPECT_FALSE(array.failed());
}

TEST(FaultScheduleTest, HealRestoresTargetsMidOutage) {
  sim::SimEnvironment env;
  sim::NetworkLink link(&env, TestLink(), "l");
  storage::StorageArray array(&env, TestArray("A"));
  FaultSchedule schedule(&env, BusyConfig(3));
  schedule.AddLink(&link);
  schedule.AddArray(&array);
  schedule.Arm();

  // Stop in the middle of the horizon, whatever state that lands in.
  env.RunFor(Milliseconds(250));
  const uint64_t fired_at_heal = schedule.faults_fired();
  schedule.Heal();
  EXPECT_TRUE(link.connected());
  EXPECT_EQ(link.config().base_latency, Milliseconds(2));
  EXPECT_FALSE(array.failed());
  // Nothing else fires after Heal.
  env.RunUntilIdle();
  EXPECT_EQ(schedule.faults_fired(), fired_at_heal);
  EXPECT_TRUE(link.connected());
  EXPECT_FALSE(array.failed());
}

TEST(FaultScheduleTest, ZeroMeansDisablesAFaultClass) {
  sim::SimEnvironment env;
  sim::NetworkLink link(&env, TestLink(), "l");
  storage::StorageArray array(&env, TestArray("A"));
  FaultScheduleConfig cfg = BusyConfig(5);
  cfg.mean_spike_interval = 0;
  cfg.mean_crash_interval = 0;
  FaultSchedule schedule(&env, cfg);
  schedule.AddLink(&link);
  schedule.AddArray(&array);
  schedule.Arm();
  for (const FaultEvent& ev : schedule.events()) {
    EXPECT_TRUE(ev.kind == FaultKind::kLinkDown ||
                ev.kind == FaultKind::kLinkUp)
        << FaultKindName(ev.kind);
  }
}

TEST(FaultScheduleTest, CorruptionLaneDrivesRegisteredTarget) {
  sim::SimEnvironment env;
  FaultScheduleConfig cfg;
  cfg.seed = 11;
  cfg.horizon = Milliseconds(500);
  cfg.mean_flap_interval = 0;  // Corruption lane only.
  cfg.mean_corrupt_interval = Milliseconds(40);
  cfg.corrupt_probability = 0.25;
  cfg.min_corrupt = Milliseconds(2);
  cfg.max_corrupt = Milliseconds(10);
  FaultSchedule schedule(&env, cfg);

  double probability = 0.0;
  int starts = 0, ends = 0;
  schedule.AddCorruptionTarget([&](double p) {
    probability = p;
    if (p > 0) {
      ++starts;
    } else {
      ++ends;
    }
  });
  schedule.Arm();

  size_t corrupt_events = 0;
  for (const FaultEvent& event : schedule.events()) {
    ASSERT_TRUE(event.kind == FaultKind::kCorruptStart ||
                event.kind == FaultKind::kCorruptEnd);
    ++corrupt_events;
  }
  ASSERT_GT(corrupt_events, 0u);
  EXPECT_EQ(corrupt_events % 2, 0u) << "episodes must open and close";

  env.RunFor(cfg.horizon + Milliseconds(50));
  EXPECT_EQ(starts, ends) << "every episode must end within the horizon";
  EXPECT_GT(starts, 0);
  EXPECT_EQ(probability, 0.0) << "probability restored after last episode";
}

TEST(FaultScheduleTest, HealStopsCorruption) {
  sim::SimEnvironment env;
  FaultScheduleConfig cfg;
  cfg.seed = 3;
  cfg.horizon = Milliseconds(500);
  cfg.mean_flap_interval = 0;
  cfg.mean_corrupt_interval = Milliseconds(20);
  cfg.corrupt_probability = 1.0;
  cfg.min_corrupt = Milliseconds(50);
  cfg.max_corrupt = Milliseconds(100);
  FaultSchedule schedule(&env, cfg);
  double probability = 0.0;
  schedule.AddCorruptionTarget([&](double p) { probability = p; });
  schedule.Arm();

  // Run into the middle of an episode, then heal: the knob must be reset
  // even though the episode's end event was cancelled.
  ASSERT_FALSE(schedule.events().empty());
  const SimTime first_start = schedule.events().front().at;
  env.RunFor(first_start + Milliseconds(1));
  ASSERT_EQ(probability, 1.0);
  schedule.Heal();
  EXPECT_EQ(probability, 0.0);
  env.RunFor(Seconds(1));
  EXPECT_EQ(probability, 0.0);
}

TEST(FaultScheduleTest, MediaLaneDrivesVolumeAndJournalTargets) {
  sim::SimEnvironment env;
  FaultScheduleConfig cfg;
  cfg.seed = 21;
  cfg.horizon = Milliseconds(500);
  cfg.mean_flap_interval = 0;  // Media lane only.
  cfg.mean_media_interval = Milliseconds(40);
  cfg.media_error_probability = 1.0;
  cfg.min_media = Milliseconds(2);
  cfg.max_media = Milliseconds(10);
  FaultSchedule schedule(&env, cfg);

  block::MemVolume volume(64);
  journal::JournalVolume journal(1 << 20);
  schedule.AddMediaTarget(&volume);
  schedule.AddMediaTarget(&journal);
  schedule.Arm();

  size_t starts = 0, ends = 0;
  for (const FaultEvent& event : schedule.events()) {
    ASSERT_TRUE(event.kind == FaultKind::kMediaErrorStart ||
                event.kind == FaultKind::kMediaErrorEnd)
        << FaultKindName(event.kind);
    if (event.kind == FaultKind::kMediaErrorStart) {
      EXPECT_NE(event.seed, 0u) << "episodes carry a replay seed";
      ++starts;
    } else {
      ++ends;
    }
  }
  ASSERT_GT(starts, 0u);
  EXPECT_EQ(starts, ends) << "every episode must close within the horizon";

  // Each target gets its own episode timeline; walk it and check both
  // injectors actually engaged at some point.
  bool volume_failed = false;
  bool journal_failed = false;
  for (const FaultEvent& event : schedule.events()) {
    env.RunUntil(event.at);
    env.RunFor(0);  // Let same-instant events fire.
    volume_failed |= volume.media_error_armed();
    journal_failed |= journal.media_failed();
  }
  EXPECT_TRUE(volume_failed);
  EXPECT_TRUE(journal_failed);

  // After the horizon every episode has closed: targets healthy again.
  env.RunUntilIdle();
  EXPECT_FALSE(volume.media_error_armed());
  EXPECT_FALSE(journal.media_failed());
}

TEST(FaultScheduleTest, RotLaneFlipsBitsOnlyInWrittenBlocks) {
  sim::SimEnvironment env;
  FaultScheduleConfig cfg;
  cfg.seed = 9;
  cfg.horizon = Milliseconds(500);
  cfg.mean_flap_interval = 0;
  cfg.mean_rot_interval = Milliseconds(10);  // Rot lane only.
  FaultSchedule schedule(&env, cfg);

  block::MemVolume volume(64);
  volume.EnableChecksums();
  // Half the volume written; rot events targeting holes are no-ops.
  for (block::Lba lba = 0; lba < 32; ++lba) {
    ASSERT_TRUE(
        volume.Write(lba, 1, std::string(volume.block_size(), 'x')).ok());
  }
  schedule.AddMediaTarget(&volume);
  schedule.Arm();

  size_t rot_events = 0;
  for (const FaultEvent& event : schedule.events()) {
    ASSERT_EQ(event.kind, FaultKind::kBitRot);
    EXPECT_LT(event.lba, 64u);
    ++rot_events;
  }
  ASSERT_GT(rot_events, 0u);

  env.RunUntilIdle();
  EXPECT_LE(volume.bit_flips(), rot_events);
  // Heal repairs injectors, never the damage: flips stay flipped, and the
  // sidecar still remembers the pre-rot content.
  schedule.Heal();
  if (volume.bit_flips() > 0) {
    EXPECT_EQ(volume.VerifyExtent(0, 64),
              block::MemVolume::ExtentHealth::kChecksumMismatch);
  }
}

}  // namespace
}  // namespace zerobak::fault
