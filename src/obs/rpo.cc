#include "obs/rpo.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

namespace zerobak::obs {

RpoTracker::RpoTracker(sim::SimEnvironment* env, Sampler sampler,
                       SimDuration interval, size_t points_capacity)
    : env_(env),
      sampler_(std::move(sampler)),
      points_capacity_(points_capacity == 0 ? 1 : points_capacity),
      task_(env, interval, [this] { SampleOnce(); }) {}

void RpoTracker::SampleOnce() {
  if (!sampler_) return;
  const SimTime now = env_->now();
  for (const GroupSample& s : sampler_()) {
    GroupRpoSeries& series = series_[s.group];
    series.points.push_back(RpoPoint{now, s.rpo});
    if (series.points.size() > points_capacity_) series.points.pop_front();
    series.histogram.Add(static_cast<uint64_t>(s.rpo));
    series.max_rpo = std::max(series.max_rpo, s.rpo);
    ++series.samples;
    if (s.rpo == 0) ++series.zero_samples;
  }
}

const GroupRpoSeries* RpoTracker::series(uint64_t group) const {
  auto it = series_.find(group);
  return it == series_.end() ? nullptr : &it->second;
}

std::vector<uint64_t> RpoTracker::Groups() const {
  std::vector<uint64_t> out;
  for (const auto& [group, s] : series_) out.push_back(group);
  return out;
}

void RpoTracker::BeginOutage(uint64_t group) {
  outage_start_[group] = env_->now();
}

void RpoTracker::CompleteRecovery(uint64_t group) {
  auto it = outage_start_.find(group);
  if (it == outage_start_.end()) return;
  rtos_[group].push_back(env_->now() - it->second);
  outage_start_.erase(it);
}

const std::vector<SimDuration>& RpoTracker::rtos(uint64_t group) const {
  static const std::vector<SimDuration> kEmpty;
  auto it = rtos_.find(group);
  return it == rtos_.end() ? kEmpty : it->second;
}

std::string RpoTracker::ToString() const {
  std::string out;
  char buf[256];
  for (const auto& [group, s] : series_) {
    const double zero_frac =
        s.samples == 0 ? 0.0
                       : static_cast<double>(s.zero_samples) /
                             static_cast<double>(s.samples);
    std::snprintf(buf, sizeof(buf),
                  "group %-3" PRIu64 " samples=%" PRIu64
                  " zero=%.1f%% mean=%s p99=%s max=%s",
                  group, s.samples, zero_frac * 100.0,
                  FormatDuration(static_cast<SimDuration>(s.histogram.Mean()))
                      .c_str(),
                  FormatDuration(
                      static_cast<SimDuration>(s.histogram.Percentile(99)))
                      .c_str(),
                  FormatDuration(s.max_rpo).c_str());
    out += buf;
    auto rit = rtos_.find(group);
    if (rit != rtos_.end() && !rit->second.empty()) {
      out += " rto=[";
      for (size_t i = 0; i < rit->second.size(); ++i) {
        if (i > 0) out += " ";
        out += FormatDuration(rit->second[i]);
      }
      out += "]";
    }
    out += "\n";
  }
  return out;
}

}  // namespace zerobak::obs
