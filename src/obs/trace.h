#ifndef ZEROBAK_OBS_TRACE_H_
#define ZEROBAK_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace zerobak::obs {

// Replication state-transition events. The trace is the narrative the
// metrics can't tell: WHEN the group suspended, WHY, and what happened
// around it. See DESIGN.md §5 for the per-event meaning of arg0/arg1.
enum class TraceEvent : uint8_t {
  kBatchShipped,     // arg0 = last sequence, arg1 = wire bytes.
  kBatchAcked,       // arg0 = acked sequence.
  kBatchNacked,      // arg0 = cumulative checksum rejects.
  kSuspend,          // arg0 = SuspendReason.
  kResyncStart,      // arg0 = extents captured, arg1 = blocks captured.
  kResyncDone,       // arg0 = resync epoch.
  kFailover,         // arg0 = recovery point sequence, arg1 = lost records.
  kFailback,         // arg0 = blocks shipped, arg1 = conflicts overwritten.
  kJournalOverflow,  // arg0 = journal used bytes at overflow.
  kLinkDown,         // Subject is the link id passed at attach time.
  kLinkUp,
  kSchedArm,         // Group left the idle set. arg0 = armed groups now.
  kSchedStarved,     // DRR deferred the group's turn. arg0 = its deficit
                     // magnitude in bytes.
  kScrubStart,       // Scrub cycle started. arg0 = cycle number.
  kScrubRepair,      // Divergent/corrupt extent queued for repair.
                     // arg0 = volume id, arg1 = extent start lba.
  kScrubDone,        // Scrub cycle finished. arg0 = extents scanned,
                     // arg1 = repairs scheduled this cycle.
};

inline const char* TraceEventName(TraceEvent event) {
  switch (event) {
    case TraceEvent::kBatchShipped:
      return "batch-shipped";
    case TraceEvent::kBatchAcked:
      return "batch-acked";
    case TraceEvent::kBatchNacked:
      return "batch-nacked";
    case TraceEvent::kSuspend:
      return "suspend";
    case TraceEvent::kResyncStart:
      return "resync-start";
    case TraceEvent::kResyncDone:
      return "resync-done";
    case TraceEvent::kFailover:
      return "failover";
    case TraceEvent::kFailback:
      return "failback";
    case TraceEvent::kJournalOverflow:
      return "journal-overflow";
    case TraceEvent::kLinkDown:
      return "link-down";
    case TraceEvent::kLinkUp:
      return "link-up";
    case TraceEvent::kSchedArm:
      return "sched-arm";
    case TraceEvent::kSchedStarved:
      return "sched-starved";
    case TraceEvent::kScrubStart:
      return "scrub-start";
    case TraceEvent::kScrubRepair:
      return "scrub-repair";
    case TraceEvent::kScrubDone:
      return "scrub-done";
  }
  return "?";
}

struct TraceRecord {
  SimTime time = 0;
  TraceEvent event = TraceEvent::kBatchShipped;
  // Group id for replication events; link id for kLinkDown/kLinkUp.
  uint64_t subject = 0;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
};

// Fixed-capacity ring of state-transition events with simulated
// timestamps. Recording is O(1) and allocation-free after construction;
// when the ring is full the oldest event is overwritten (and counted in
// dropped()). Header-only so even leaf libraries (sim, journal) can record
// without a link-time dependency on zb_obs.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 4096)
      : ring_(capacity == 0 ? 1 : capacity) {}

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void Record(SimTime time, TraceEvent event, uint64_t subject,
              uint64_t arg0 = 0, uint64_t arg1 = 0) {
    TraceRecord& slot = ring_[head_];
    slot.time = time;
    slot.event = event;
    slot.subject = subject;
    slot.arg0 = arg0;
    slot.arg1 = arg1;
    head_ = (head_ + 1) % ring_.size();
    if (size_ < ring_.size()) {
      ++size_;
    } else {
      ++dropped_;
    }
    ++total_recorded_;
  }

  size_t capacity() const { return ring_.size(); }
  size_t size() const { return size_; }
  // Every Record() call ever made, including overwritten ones.
  uint64_t total_recorded() const { return total_recorded_; }
  // Events overwritten because the ring was full.
  uint64_t dropped() const { return dropped_; }

  // Retained events, oldest first.
  std::vector<TraceRecord> Events() const {
    std::vector<TraceRecord> out;
    out.reserve(size_);
    const size_t start = (head_ + ring_.size() - size_) % ring_.size();
    for (size_t i = 0; i < size_; ++i) {
      out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
  }

  // Retained events for one subject (group/link), oldest first.
  std::vector<TraceRecord> EventsFor(uint64_t subject) const {
    std::vector<TraceRecord> out;
    for (const TraceRecord& r : Events()) {
      if (r.subject == subject) out.push_back(r);
    }
    return out;
  }

  void Clear() {
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
    total_recorded_ = 0;
  }

  // Human-readable dump of the newest `last_n` events (0 = all retained).
  std::string ToString(size_t last_n = 0) const;

 private:
  std::vector<TraceRecord> ring_;
  size_t head_ = 0;
  size_t size_ = 0;
  uint64_t dropped_ = 0;
  uint64_t total_recorded_ = 0;
};

}  // namespace zerobak::obs

#endif  // ZEROBAK_OBS_TRACE_H_
