#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace zerobak::obs {

std::string TraceRing::ToString(size_t last_n) const {
  std::vector<TraceRecord> events = Events();
  size_t start = 0;
  if (last_n > 0 && events.size() > last_n) {
    start = events.size() - last_n;
  }
  std::string out;
  char buf[160];
  for (size_t i = start; i < events.size(); ++i) {
    const TraceRecord& r = events[i];
    std::snprintf(buf, sizeof(buf),
                  "%12s  %-16s subject=%" PRIu64 " arg0=%" PRIu64
                  " arg1=%" PRIu64 "\n",
                  FormatDuration(r.time).c_str(), TraceEventName(r.event),
                  r.subject, r.arg0, r.arg1);
    out += buf;
  }
  return out;
}

}  // namespace zerobak::obs
