#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace zerobak::obs {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

MetricRegistry::Entry* MetricRegistry::FindOrCreate(const std::string& name,
                                                    MetricKind kind) {
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == kind ? &it->second : nullptr;
  }
  Entry& entry = entries_[name];
  entry.kind = kind;
  if (kind == MetricKind::kHistogram) {
    entry.histogram = std::make_unique<Histogram>();
  }
  return &entry;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  Entry* e = FindOrCreate(name, MetricKind::kCounter);
  return e == nullptr ? nullptr : &e->counter;
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  Entry* e = FindOrCreate(name, MetricKind::kGauge);
  return e == nullptr ? nullptr : &e->gauge;
}

Histogram* MetricRegistry::GetHistogram(const std::string& name) {
  Entry* e = FindOrCreate(name, MetricKind::kHistogram);
  return e == nullptr ? nullptr : e->histogram.get();
}

std::vector<MetricSample> MetricRegistry::Snapshot() const {
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    MetricSample s;
    s.name = name;
    s.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        s.value = static_cast<double>(entry.counter.value());
        break;
      case MetricKind::kGauge:
        s.value = static_cast<double>(entry.gauge.value());
        break;
      case MetricKind::kHistogram:
        s.value = entry.histogram->Mean();
        s.count = entry.histogram->count();
        s.p50 = entry.histogram->Percentile(50);
        s.p99 = entry.histogram->Percentile(99);
        s.max = entry.histogram->max();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

void MetricRegistry::Reset() {
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        entry.counter.Reset();
        break;
      case MetricKind::kGauge:
        entry.gauge.Reset();
        break;
      case MetricKind::kHistogram:
        entry.histogram->Clear();
        break;
    }
  }
}

std::string MetricRegistry::ToTable() const {
  size_t width = 0;
  for (const auto& [name, entry] : entries_) {
    width = std::max(width, name.size());
  }
  std::string out;
  char buf[512];
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        std::snprintf(buf, sizeof(buf), "%-*s %20" PRIu64 "\n",
                      static_cast<int>(width), name.c_str(),
                      entry.counter.value());
        break;
      case MetricKind::kGauge:
        std::snprintf(buf, sizeof(buf), "%-*s %20" PRId64 "\n",
                      static_cast<int>(width), name.c_str(),
                      entry.gauge.value());
        break;
      case MetricKind::kHistogram:
        std::snprintf(buf, sizeof(buf), "%-*s %s\n",
                      static_cast<int>(width), name.c_str(),
                      entry.histogram->ToString().c_str());
        break;
    }
    out += buf;
  }
  return out;
}

std::string MetricRegistry::ToJson() const {
  std::string out = "{";
  char buf[256];
  bool first = true;
  auto emit = [&](const std::string& key, const char* fmt, auto value) {
    std::snprintf(buf, sizeof(buf), fmt, value);
    if (!first) out += ",";
    first = false;
    out += "\n  \"" + key + "\": ";
    out += buf;
  };
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        emit(name, "%" PRIu64, entry.counter.value());
        break;
      case MetricKind::kGauge:
        emit(name, "%" PRId64, entry.gauge.value());
        break;
      case MetricKind::kHistogram: {
        const Histogram* h = entry.histogram.get();
        emit(name + ".count", "%" PRIu64, h->count());
        emit(name + ".mean", "%.3f", h->Mean());
        emit(name + ".p50", "%.1f", h->Percentile(50));
        emit(name + ".p99", "%.1f", h->Percentile(99));
        emit(name + ".max", "%" PRIu64, h->max());
        break;
      }
    }
  }
  out += "\n}";
  return out;
}

}  // namespace zerobak::obs
