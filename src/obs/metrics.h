#ifndef ZEROBAK_OBS_METRICS_H_
#define ZEROBAK_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace zerobak::obs {

// Dependency-free metrics layer. A MetricRegistry owns named instruments;
// instrumented code holds raw Counter/Gauge/Histogram pointers obtained
// once at attach time, so the hot path is a single inline add — no name
// lookup, no hashing, no allocation. Names are hierarchical dot-paths
// ("replication.batches_shipped", "link.main_to_backup.bytes"); see
// DESIGN.md §5 for the namespace conventions.

// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

// Point-in-time level (journal depth, batch size); may go down.
class Gauge {
 public:
  void Set(int64_t v) { value_ = v; }
  void Add(int64_t delta) { value_ += delta; }
  int64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  int64_t value_ = 0;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* MetricKindName(MetricKind kind);

// One row of a registry snapshot.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  // Counter/gauge value; for histograms, the mean.
  double value = 0;
  // Histogram-only summary (count == 0 for scalar metrics).
  uint64_t count = 0;
  double p50 = 0;
  double p99 = 0;
  uint64_t max = 0;
};

// Find-or-create registry of named instruments. Pointers returned by the
// Get* methods stay valid for the registry's lifetime (node-based map), so
// callers cache them once and update without any lookup. A name is bound
// to one kind forever; a kind-mismatched Get* returns nullptr instead of
// silently aliasing.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  bool Has(const std::string& name) const {
    return entries_.contains(name);
  }
  size_t size() const { return entries_.size(); }

  // All metrics in name order.
  std::vector<MetricSample> Snapshot() const;
  // Zeroes every instrument but keeps the registrations (cached pointers
  // stay valid and live).
  void Reset();

  // Aligned human-readable table, one metric per line.
  std::string ToTable() const;
  // Single JSON object: {"name": value, ...}; histograms expand into
  // .count/.mean/.p50/.p99/.max sub-keys. Machine-readable counterpart of
  // ToTable for scripts/.
  std::string ToJson() const;

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(const std::string& name, MetricKind kind);

  // std::map: stable Entry addresses across inserts + sorted iteration
  // for Snapshot/ToTable.
  std::map<std::string, Entry> entries_;
};

}  // namespace zerobak::obs

#endif  // ZEROBAK_OBS_METRICS_H_
