#ifndef ZEROBAK_OBS_RPO_H_
#define ZEROBAK_OBS_RPO_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/time.h"
#include "sim/environment.h"

namespace zerobak::obs {

// One RPO observation of one group.
struct RpoPoint {
  SimTime time = 0;
  SimDuration rpo = 0;
};

// Per-group time series + distribution of sampled RPO values.
struct GroupRpoSeries {
  // Newest-capacity points (older ones roll off the front).
  std::deque<RpoPoint> points;
  // Every sample ever taken feeds the histogram (ns), so percentiles do
  // not lose the rolled-off history.
  Histogram histogram;
  SimDuration max_rpo = 0;
  uint64_t samples = 0;
  // Samples where the group was fully caught up (rpo == 0).
  uint64_t zero_samples = 0;
};

// Samples each replication group's current RPO on an Environment timer to
// build a continuous time series, and records RTO across failovers.
//
// The RPO definition (DESIGN.md §5): zero when acked == written (nothing
// the backup has not confirmed), otherwise the age of the oldest unacked
// write — the data you would lose if the main site died right now.
// The tracker does not compute this itself; the sampler callback (usually
// a thin lambda over ReplicationEngine::GroupRpo) returns the per-group
// values so obs stays independent of the replication layer.
//
// RTO: the caller brackets an outage with BeginOutage (disaster instant)
// and CompleteRecovery (business resumed on the backup site); the elapsed
// simulated time is the recovery time objective actually achieved.
class RpoTracker {
 public:
  struct GroupSample {
    uint64_t group = 0;
    SimDuration rpo = 0;
  };
  using Sampler = std::function<std::vector<GroupSample>()>;

  RpoTracker(sim::SimEnvironment* env, Sampler sampler,
             SimDuration interval = Milliseconds(10),
             size_t points_capacity = 4096);

  RpoTracker(const RpoTracker&) = delete;
  RpoTracker& operator=(const RpoTracker&) = delete;

  // Starts/stops the periodic sampling task.
  void Start() { task_.Start(); }
  void Stop() { task_.Stop(); }
  bool running() const { return task_.running(); }
  SimDuration interval() const { return task_.interval(); }

  // Takes one sample immediately (also called by the timer).
  void SampleOnce();

  const GroupRpoSeries* series(uint64_t group) const;
  std::vector<uint64_t> Groups() const;

  // --- RTO bookkeeping ---
  void BeginOutage(uint64_t group);
  // Records now - outage_start as an achieved RTO; no-op without a
  // matching BeginOutage.
  void CompleteRecovery(uint64_t group);
  // Achieved recovery times, in completion order.
  const std::vector<SimDuration>& rtos(uint64_t group) const;

  // Per-group summary table: samples, zero fraction, mean/p99/max RPO,
  // recorded RTOs.
  std::string ToString() const;

 private:
  sim::SimEnvironment* env_;
  Sampler sampler_;
  size_t points_capacity_;
  sim::PeriodicTask task_;
  std::map<uint64_t, GroupRpoSeries> series_;
  std::map<uint64_t, SimTime> outage_start_;
  std::map<uint64_t, std::vector<SimDuration>> rtos_;
};

}  // namespace zerobak::obs

#endif  // ZEROBAK_OBS_RPO_H_
