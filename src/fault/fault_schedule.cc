#include "fault/fault_schedule.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace zerobak::fault {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown:
      return "link-down";
    case FaultKind::kLinkUp:
      return "link-up";
    case FaultKind::kLatencySpikeStart:
      return "latency-spike-start";
    case FaultKind::kLatencySpikeEnd:
      return "latency-spike-end";
    case FaultKind::kArrayFail:
      return "array-fail";
    case FaultKind::kArrayRepair:
      return "array-repair";
    case FaultKind::kCorruptStart:
      return "corrupt-start";
    case FaultKind::kCorruptEnd:
      return "corrupt-end";
    case FaultKind::kMediaErrorStart:
      return "media-error-start";
    case FaultKind::kMediaErrorEnd:
      return "media-error-end";
    case FaultKind::kBitRot:
      return "bit-rot";
  }
  return "unknown";
}

FaultSchedule::FaultSchedule(sim::SimEnvironment* env,
                             FaultScheduleConfig config)
    : env_(env), config_(config), rng_(config.seed) {}

FaultSchedule::~FaultSchedule() {
  for (sim::EventId id : pending_) env_->Cancel(id);
}

void FaultSchedule::AddLink(sim::NetworkLink* link) {
  ZB_CHECK(!armed_) << "AddLink after Arm()";
  links_.push_back(link);
}

void FaultSchedule::AddArray(storage::StorageArray* array) {
  ZB_CHECK(!armed_) << "AddArray after Arm()";
  arrays_.push_back(array);
}

void FaultSchedule::AddCorruptionTarget(
    std::function<void(double)> set_probability) {
  ZB_CHECK(!armed_) << "AddCorruptionTarget after Arm()";
  corruption_targets_.push_back(std::move(set_probability));
}

void FaultSchedule::AddMediaTarget(block::MemVolume* volume) {
  ZB_CHECK(!armed_) << "AddMediaTarget after Arm()";
  MediaTarget target;
  target.set_error = [volume](double p, uint64_t seed) {
    volume->SetMediaError(p, seed);
  };
  target.flip = [volume](uint64_t lba, uint32_t bit) {
    return volume->FlipBit(lba, bit);
  };
  target.block_count = volume->block_count();
  target.block_bits = volume->block_size() * 8;
  media_targets_.push_back(std::move(target));
}

void FaultSchedule::AddMediaTarget(block::FileVolume* volume) {
  ZB_CHECK(!armed_) << "AddMediaTarget after Arm()";
  MediaTarget target;
  target.set_error = [volume](double p, uint64_t seed) {
    volume->SetMediaError(p, seed);
  };
  target.flip = [volume](uint64_t lba, uint32_t bit) {
    return volume->FlipBit(lba, bit);
  };
  target.block_count = volume->block_count();
  target.block_bits = volume->block_size() * 8;
  media_targets_.push_back(std::move(target));
}

void FaultSchedule::AddMediaTarget(journal::JournalVolume* journal) {
  ZB_CHECK(!armed_) << "AddMediaTarget after Arm()";
  MediaTarget target;
  target.set_error = [journal](double p, uint64_t /*seed*/) {
    journal->SetMediaError(p > 0.0);
  };
  media_targets_.push_back(std::move(target));
}

void FaultSchedule::GenerateLane(SimTime from, SimTime until,
                                 SimDuration mean_gap, SimDuration min_len,
                                 SimDuration max_len, FaultKind begin,
                                 FaultKind end, size_t target,
                                 SimDuration latency) {
  if (mean_gap == 0) return;
  SimTime t = from;
  while (true) {
    t += static_cast<SimDuration>(
        rng_.Exponential(static_cast<double>(mean_gap)));
    if (t >= until) return;
    const SimDuration len = static_cast<SimDuration>(
        rng_.UniformInt(static_cast<int64_t>(min_len),
                        static_cast<int64_t>(max_len)));
    events_.push_back(FaultEvent{t, begin, target, latency});
    events_.push_back(FaultEvent{t + len, end, target, 0});
    // The next gap starts when this fault ends: no overlap within a lane.
    t += len;
  }
}

void FaultSchedule::GenerateMediaLane(SimTime from, SimTime until,
                                      size_t target) {
  if (config_.mean_media_interval == 0) return;
  SimTime t = from;
  while (true) {
    t += static_cast<SimDuration>(rng_.Exponential(
        static_cast<double>(config_.mean_media_interval)));
    if (t >= until) return;
    const SimDuration len = static_cast<SimDuration>(
        rng_.UniformInt(static_cast<int64_t>(config_.min_media),
                        static_cast<int64_t>(config_.max_media)));
    FaultEvent begin{t, FaultKind::kMediaErrorStart, target, 0};
    // A fresh seed per episode: the same schedule replays on the same bad
    // sectors, but distinct episodes degrade distinct sectors.
    begin.seed = rng_.Next();
    events_.push_back(begin);
    events_.push_back(FaultEvent{t + len, FaultKind::kMediaErrorEnd, target, 0});
    t += len;
  }
}

void FaultSchedule::GenerateRotLane(SimTime from, SimTime until,
                                    size_t target) {
  if (config_.mean_rot_interval == 0) return;
  const MediaTarget& media = media_targets_[target];
  if (!media.flip || media.block_count == 0) return;
  SimTime t = from;
  while (true) {
    t += static_cast<SimDuration>(
        rng_.Exponential(static_cast<double>(config_.mean_rot_interval)));
    if (t >= until) return;
    FaultEvent rot{t, FaultKind::kBitRot, target, 0};
    rot.lba = rng_.Uniform(media.block_count);
    rot.bit = static_cast<uint32_t>(rng_.Uniform(media.block_bits));
    events_.push_back(rot);
  }
}

void FaultSchedule::Arm() {
  ZB_CHECK(!armed_) << "Arm() called twice";
  armed_ = true;
  const SimTime from = env_->now();
  const SimTime until = from + config_.horizon;

  link_latency_.clear();
  for (sim::NetworkLink* link : links_) {
    link_latency_.push_back(link->config().base_latency);
  }

  for (size_t i = 0; i < links_.size(); ++i) {
    GenerateLane(from, until, config_.mean_flap_interval, config_.min_outage,
                 config_.max_outage, FaultKind::kLinkDown, FaultKind::kLinkUp,
                 i, 0);
    GenerateLane(from, until, config_.mean_spike_interval, config_.min_spike,
                 config_.max_spike, FaultKind::kLatencySpikeStart,
                 FaultKind::kLatencySpikeEnd, i, config_.spike_latency);
  }
  for (size_t i = 0; i < arrays_.size(); ++i) {
    GenerateLane(from, until, config_.mean_crash_interval, config_.min_repair,
                 config_.max_repair, FaultKind::kArrayFail,
                 FaultKind::kArrayRepair, i, 0);
  }
  for (size_t i = 0; i < corruption_targets_.size(); ++i) {
    GenerateLane(from, until, config_.mean_corrupt_interval,
                 config_.min_corrupt, config_.max_corrupt,
                 FaultKind::kCorruptStart, FaultKind::kCorruptEnd, i, 0);
  }
  for (size_t i = 0; i < media_targets_.size(); ++i) {
    GenerateMediaLane(from, until, i);
    GenerateRotLane(from, until, i);
  }

  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });

  pending_.reserve(events_.size());
  for (const FaultEvent& event : events_) {
    pending_.push_back(
        env_->ScheduleAt(event.at, [this, event] { Fire(event); }));
  }
}

void FaultSchedule::Fire(const FaultEvent& event) {
  ++fired_;
  switch (event.kind) {
    case FaultKind::kLinkDown:
      links_[event.target]->SetConnected(false);
      break;
    case FaultKind::kLinkUp:
      links_[event.target]->SetConnected(true);
      break;
    case FaultKind::kLatencySpikeStart:
      links_[event.target]->set_base_latency(event.latency);
      break;
    case FaultKind::kLatencySpikeEnd:
      links_[event.target]->set_base_latency(link_latency_[event.target]);
      break;
    case FaultKind::kArrayFail:
      arrays_[event.target]->SetFailed(true);
      break;
    case FaultKind::kArrayRepair:
      arrays_[event.target]->SetFailed(false);
      break;
    case FaultKind::kCorruptStart:
      corruption_targets_[event.target](config_.corrupt_probability);
      break;
    case FaultKind::kCorruptEnd:
      corruption_targets_[event.target](0.0);
      break;
    case FaultKind::kMediaErrorStart:
      media_targets_[event.target].set_error(
          config_.media_error_probability, event.seed);
      break;
    case FaultKind::kMediaErrorEnd:
      media_targets_[event.target].set_error(0.0, 0);
      break;
    case FaultKind::kBitRot:
      media_targets_[event.target].flip(event.lba, event.bit);
      break;
  }
}

void FaultSchedule::Heal() {
  for (sim::EventId id : pending_) env_->Cancel(id);
  pending_.clear();
  for (size_t i = 0; i < links_.size(); ++i) {
    if (i < link_latency_.size()) {
      links_[i]->set_base_latency(link_latency_[i]);
    }
    links_[i]->SetConnected(true);
  }
  for (storage::StorageArray* array : arrays_) array->SetFailed(false);
  for (auto& target : corruption_targets_) target(0.0);
  // Media-error episodes end; bit rot already written stays — Heal()
  // repairs the injectors, not the damage (that's the scrubber's job).
  for (MediaTarget& target : media_targets_) target.set_error(0.0, 0);
}

}  // namespace zerobak::fault
