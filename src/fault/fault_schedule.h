#ifndef ZEROBAK_FAULT_FAULT_SCHEDULE_H_
#define ZEROBAK_FAULT_FAULT_SCHEDULE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "block/file_volume.h"
#include "block/mem_volume.h"
#include "common/rng.h"
#include "common/time.h"
#include "journal/journal.h"
#include "sim/environment.h"
#include "sim/network.h"
#include "storage/array.h"

namespace zerobak::fault {

// One injected fault transition.
enum class FaultKind {
  kLinkDown,          // Partition a link (drops in-flight traffic).
  kLinkUp,            // Heal the partition.
  kLatencySpikeStart, // Raise a link's base latency.
  kLatencySpikeEnd,   // Restore the link's configured latency.
  kArrayFail,         // Crash a storage array (site disaster).
  kArrayRepair,       // Repair the array.
  kCorruptStart,      // Start flipping bits in in-flight wire frames.
  kCorruptEnd,        // Stop the bit flips.
  kMediaErrorStart,   // Begin a latent-sector-error episode on a volume.
  kMediaErrorEnd,     // Heal the volume's media.
  kBitRot,            // Silently flip one bit of one stored block.
};

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  SimTime at = 0;
  FaultKind kind = FaultKind::kLinkDown;
  // Index into the schedule's links()/arrays()/media-target registration
  // order (per fault class).
  size_t target = 0;
  // For kLatencySpikeStart: the spiked base latency.
  SimDuration latency = 0;
  // For kMediaErrorStart: the episode's per-LBA hash seed (drawn at
  // generation time so episodes replay on the same sectors).
  uint64_t seed = 0;
  // For kBitRot: the block and bit to flip.
  uint64_t lba = 0;
  uint32_t bit = 0;
};

// Tuning knobs for the generated fault mix. Every fault class draws its
// inter-arrival gaps from an exponential distribution (mean below) and its
// duration uniformly from [min, max]; a mean of 0 disables the class.
// Faults never overlap within one (class, target) lane: the next gap
// starts when the previous fault ends.
struct FaultScheduleConfig {
  uint64_t seed = 1;
  // Faults are generated in [arm time, arm time + horizon).
  SimDuration horizon = Seconds(1);

  // Link partitions ("flaps").
  SimDuration mean_flap_interval = Milliseconds(100);
  SimDuration min_outage = Milliseconds(2);
  SimDuration max_outage = Milliseconds(20);

  // Link latency spikes.
  SimDuration mean_spike_interval = 0;
  SimDuration spike_latency = Milliseconds(50);
  SimDuration min_spike = Milliseconds(2);
  SimDuration max_spike = Milliseconds(20);

  // Array crash/repair cycles.
  SimDuration mean_crash_interval = 0;
  SimDuration min_repair = Milliseconds(20);
  SimDuration max_repair = Milliseconds(100);

  // Wire-frame corruption episodes: while one is active, every registered
  // corruption target runs at `corrupt_probability` (bit flips on
  // in-flight batches, caught by the wire format's CRC).
  SimDuration mean_corrupt_interval = 0;
  double corrupt_probability = 0.2;
  SimDuration min_corrupt = Milliseconds(2);
  SimDuration max_corrupt = Milliseconds(20);

  // At-rest media-error episodes: while one is active, the affected
  // volume fails reads/writes per-LBA with `media_error_probability`
  // (journal targets fail every append instead — a journal LDEV error is
  // all-or-nothing for the write path). Each episode draws a fresh seed,
  // so distinct episodes hit distinct — but replayable — bad sectors.
  SimDuration mean_media_interval = 0;
  double media_error_probability = 0.01;
  SimDuration min_media = Milliseconds(2);
  SimDuration max_media = Milliseconds(20);

  // Silent bit rot: point events, each flipping one uniformly chosen bit
  // of one uniformly chosen block of a registered volume. Rot is never
  // auto-healed — Heal() ends error episodes but flipped bits stay until
  // the scrubber repairs them.
  SimDuration mean_rot_interval = 0;
};

// A deterministic fault injector: from a seeded RNG it pre-generates a
// timeline of link flaps, latency spikes and array crash/repair events
// over a finite horizon, then drives them off the simulation clock. The
// same (config, targets) always produces the identical fault sequence, so
// chaos experiments replay exactly — the property every regression test
// here leans on.
//
// Lifecycle: register targets with AddLink/AddArray, then Arm() once.
// Heal() cancels whatever has not fired yet and restores every target to
// healthy, marking the end of a chaos phase.
class FaultSchedule {
 public:
  FaultSchedule(sim::SimEnvironment* env, FaultScheduleConfig config);
  ~FaultSchedule();

  FaultSchedule(const FaultSchedule&) = delete;
  FaultSchedule& operator=(const FaultSchedule&) = delete;

  // Target registration; call before Arm().
  void AddLink(sim::NetworkLink* link);
  void AddArray(storage::StorageArray* array);
  // Registers a corruption knob: called with `corrupt_probability` when a
  // corruption episode starts and 0.0 when it ends (and on Heal). The
  // replication engine's SetFaultOptions is the usual target.
  void AddCorruptionTarget(std::function<void(double)> set_probability);

  // Registers a volume on the at-rest media lane: it receives seeded
  // media-error episodes (kMediaErrorStart/End) and, when
  // mean_rot_interval is set, silent bit flips (kBitRot).
  void AddMediaTarget(block::MemVolume* volume);
  void AddMediaTarget(block::FileVolume* volume);
  // Journal flavor: episodes toggle JournalVolume::SetMediaError, making
  // appends fail with kDataLoss for the duration. No bit rot (journal
  // payloads are CRC-protected end to end by the wire format).
  void AddMediaTarget(journal::JournalVolume* journal);

  // Generates the timeline starting at env->now() and schedules every
  // event. Call exactly once.
  void Arm();

  // Cancels all pending events and restores every target: links
  // reconnected at their configured latency, arrays repaired.
  void Heal();

  bool armed() const { return armed_; }
  // The full generated timeline (valid after Arm()).
  const std::vector<FaultEvent>& events() const { return events_; }
  // Events that actually fired so far.
  uint64_t faults_fired() const { return fired_; }

 private:
  // One registered media target, type-erased over MemVolume / FileVolume /
  // JournalVolume. `flip` is null for journals (no bit rot lane).
  struct MediaTarget {
    std::function<void(double, uint64_t)> set_error;
    std::function<bool(uint64_t, uint32_t)> flip;
    uint64_t block_count = 0;
    uint32_t block_bits = 0;
  };

  void Fire(const FaultEvent& event);
  // Appends an alternating begin/end event lane for one fault class.
  void GenerateLane(SimTime from, SimTime until, SimDuration mean_gap,
                    SimDuration min_len, SimDuration max_len,
                    FaultKind begin, FaultKind end, size_t target,
                    SimDuration latency);
  // Media-error episodes (per-episode seed) for media target `target`.
  void GenerateMediaLane(SimTime from, SimTime until, size_t target);
  // Bit-rot point events for media target `target`.
  void GenerateRotLane(SimTime from, SimTime until, size_t target);

  sim::SimEnvironment* env_;
  FaultScheduleConfig config_;
  Rng rng_;
  std::vector<sim::NetworkLink*> links_;
  // Configured base latency of each link at Arm() time, for restores.
  std::vector<SimDuration> link_latency_;
  std::vector<storage::StorageArray*> arrays_;
  std::vector<std::function<void(double)>> corruption_targets_;
  std::vector<MediaTarget> media_targets_;
  std::vector<FaultEvent> events_;
  std::vector<sim::EventId> pending_;
  bool armed_ = false;
  uint64_t fired_ = 0;
};

}  // namespace zerobak::fault

#endif  // ZEROBAK_FAULT_FAULT_SCHEDULE_H_
