#include "journal/journal.h"

#include <algorithm>

#include "common/logging.h"

namespace zerobak::journal {

JournalVolume::JournalVolume(uint64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

StatusOr<SequenceNumber> JournalVolume::Append(JournalRecord record) {
  const uint64_t size = record.EncodedSize();
  if (used_bytes_ + size > capacity_bytes_) {
    ++overflows_;
    return ResourceExhaustedError("journal overflow: used=" +
                                  std::to_string(used_bytes_) + " need=" +
                                  std::to_string(size) + " capacity=" +
                                  std::to_string(capacity_bytes_));
  }
  record.sequence = ++written_;
  if (records_.empty()) first_seq_ = record.sequence;
  used_bytes_ += size;
  peak_used_bytes_ = std::max(peak_used_bytes_, used_bytes_);
  ++appends_;
  records_.push_back(std::move(record));
  return written_;
}

Status JournalVolume::AppendWithSequence(JournalRecord record) {
  if (record.sequence != written_ + 1) {
    return DataLossError("non-contiguous journal sequence: got " +
                         std::to_string(record.sequence) + " expected " +
                         std::to_string(written_ + 1));
  }
  const uint64_t size = record.EncodedSize();
  if (used_bytes_ + size > capacity_bytes_) {
    ++overflows_;
    return ResourceExhaustedError("journal overflow (receive side)");
  }
  if (records_.empty()) first_seq_ = record.sequence;
  written_ = record.sequence;
  used_bytes_ += size;
  peak_used_bytes_ = std::max(peak_used_bytes_, used_bytes_);
  ++appends_;
  records_.push_back(std::move(record));
  return OkStatus();
}

size_t JournalVolume::Peek(SequenceNumber from, uint64_t max_bytes,
                           std::vector<JournalRecord>* out) const {
  out->clear();
  if (records_.empty() || from >= written_) return 0;
  // Records are dense, so the record with sequence s lives at index
  // s - first_seq_.
  SequenceNumber start = std::max(from + 1, first_seq_);
  uint64_t bytes = 0;
  for (size_t i = start - first_seq_; i < records_.size(); ++i) {
    const JournalRecord& rec = records_[i];
    const uint64_t size = rec.EncodedSize();
    if (!out->empty() && bytes + size > max_bytes) break;
    out->push_back(rec);
    bytes += size;
  }
  return out->size();
}

const JournalRecord* JournalVolume::Find(SequenceNumber seq) const {
  if (records_.empty() || seq < first_seq_ || seq > written_) return nullptr;
  return &records_[seq - first_seq_];
}

void JournalVolume::MarkShipped(SequenceNumber seq) {
  shipped_ = std::max(shipped_, std::min(seq, written_));
}

Status JournalVolume::TrimThrough(SequenceNumber seq) {
  if (seq > written_) {
    return InvalidArgumentError("trim beyond written watermark");
  }
  applied_ = std::max(applied_, seq);
  while (!records_.empty() && first_seq_ <= seq) {
    used_bytes_ -= records_.front().EncodedSize();
    records_.pop_front();
    ++first_seq_;
  }
  return OkStatus();
}

Status JournalVolume::FastForward(SequenceNumber seq) {
  if (!records_.empty()) {
    return FailedPreconditionError("FastForward on non-empty journal");
  }
  if (seq < written_) {
    return InvalidArgumentError("FastForward would move watermarks back");
  }
  written_ = shipped_ = applied_ = seq;
  return OkStatus();
}

void JournalVolume::Reset() {
  records_.clear();
  written_ = shipped_ = applied_ = kNoSequence;
  first_seq_ = kNoSequence;
  used_bytes_ = 0;
}

}  // namespace zerobak::journal
