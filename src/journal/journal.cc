#include "journal/journal.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"

namespace zerobak::journal {

namespace {
// Backing-buffer allocation counter; see PayloadBuffer::TotalAllocations.
std::atomic<uint64_t> g_payload_allocations{0};
}  // namespace

PayloadBuffer PayloadBuffer::Wrap(std::string data) {
  const size_t len = data.size();
  g_payload_allocations.fetch_add(1, std::memory_order_relaxed);
  return PayloadBuffer(
      std::make_shared<const std::string>(std::move(data)), 0, len);
}

PayloadBuffer PayloadBuffer::Slice(size_t offset, size_t length) const {
  ZB_CHECK(offset + length <= len_) << "PayloadBuffer::Slice out of range";
  return PayloadBuffer(buf_, offset_ + offset, length);
}

uint64_t PayloadBuffer::TotalAllocations() {
  return g_payload_allocations.load(std::memory_order_relaxed);
}

JournalVolume::JournalVolume(uint64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

StatusOr<SequenceNumber> JournalVolume::Append(JournalRecord record) {
  if (media_failed_) {
    ++media_errors_;
    return DataLossError("journal media write error");
  }
  const uint64_t size = record.EncodedSize();
  if (used_bytes_ + size > capacity_bytes_) {
    ++overflows_;
    if (instruments_.overflows != nullptr) {
      instruments_.overflows->Increment();
    }
    return ResourceExhaustedError("journal overflow: used=" +
                                  std::to_string(used_bytes_) + " need=" +
                                  std::to_string(size) + " capacity=" +
                                  std::to_string(capacity_bytes_));
  }
  record.sequence = ++written_;
  if (records_.empty()) first_seq_ = record.sequence;
  used_bytes_ += size;
  peak_used_bytes_ = std::max(peak_used_bytes_, used_bytes_);
  ++appends_;
  if (instruments_.appends != nullptr) instruments_.appends->Increment();
  if (instruments_.used_bytes != nullptr) {
    instruments_.used_bytes->Set(static_cast<int64_t>(used_bytes_));
  }
  records_.push_back(std::move(record));
  if (append_callback_) append_callback_(written_);
  return written_;
}

Status JournalVolume::AppendWithSequence(JournalRecord record) {
  if (record.sequence != written_ + 1) {
    return DataLossError("non-contiguous journal sequence: got " +
                         std::to_string(record.sequence) + " expected " +
                         std::to_string(written_ + 1));
  }
  const uint64_t size = record.EncodedSize();
  if (used_bytes_ + size > capacity_bytes_) {
    ++overflows_;
    if (instruments_.overflows != nullptr) {
      instruments_.overflows->Increment();
    }
    return ResourceExhaustedError("journal overflow (receive side)");
  }
  if (records_.empty()) first_seq_ = record.sequence;
  written_ = record.sequence;
  used_bytes_ += size;
  peak_used_bytes_ = std::max(peak_used_bytes_, used_bytes_);
  ++appends_;
  if (instruments_.appends != nullptr) instruments_.appends->Increment();
  if (instruments_.used_bytes != nullptr) {
    instruments_.used_bytes->Set(static_cast<int64_t>(used_bytes_));
  }
  records_.push_back(std::move(record));
  return OkStatus();
}

size_t JournalVolume::PeekViews(
    SequenceNumber from, uint64_t max_bytes,
    std::vector<const JournalRecord*>* out) const {
  out->clear();
  if (records_.empty() || from >= written_) return 0;
  // Records are dense, so the record with sequence s lives at index
  // s - first_seq_.
  SequenceNumber start = std::max(from + 1, first_seq_);
  uint64_t bytes = 0;
  for (size_t i = start - first_seq_; i < records_.size(); ++i) {
    const JournalRecord& rec = records_[i];
    const uint64_t size = rec.EncodedSize();
    if (!out->empty() && bytes + size > max_bytes) break;
    out->push_back(&rec);
    bytes += size;
  }
  return out->size();
}

JournalVolume::Cursor JournalVolume::ScanFrom(SequenceNumber seq) const {
  if (records_.empty() || seq > written_) {
    return Cursor(&records_, records_.size());
  }
  const SequenceNumber start = std::max(seq, first_seq_);
  return Cursor(&records_, start - first_seq_);
}

const JournalRecord* JournalVolume::Find(SequenceNumber seq) const {
  if (records_.empty() || seq < first_seq_ || seq > written_) return nullptr;
  return &records_[seq - first_seq_];
}

void JournalVolume::MarkShipped(SequenceNumber seq) {
  shipped_ = std::max(shipped_, std::min(seq, written_));
}

uint64_t JournalVolume::FoldPayload(SequenceNumber seq) {
  if (records_.empty() || seq < first_seq_ || seq > written_) return 0;
  JournalRecord& rec = records_[seq - first_seq_];
  if (rec.folded || rec.payload.empty()) return 0;
  const uint64_t freed = rec.payload.size();
  rec.payload = PayloadBuffer();
  rec.folded = true;
  used_bytes_ -= freed;
  ++folded_records_;
  folded_bytes_ += freed;
  if (instruments_.folded_records != nullptr) {
    instruments_.folded_records->Increment();
  }
  if (instruments_.used_bytes != nullptr) {
    instruments_.used_bytes->Set(static_cast<int64_t>(used_bytes_));
  }
  return freed;
}

Status JournalVolume::TrimThrough(SequenceNumber seq) {
  if (seq > written_) {
    return InvalidArgumentError("trim beyond written watermark");
  }
  applied_ = std::max(applied_, seq);
  while (!records_.empty() && first_seq_ <= seq) {
    used_bytes_ -= records_.front().EncodedSize();
    records_.pop_front();
    ++first_seq_;
  }
  if (instruments_.used_bytes != nullptr) {
    instruments_.used_bytes->Set(static_cast<int64_t>(used_bytes_));
  }
  return OkStatus();
}

Status JournalVolume::FastForward(SequenceNumber seq) {
  if (!records_.empty()) {
    return FailedPreconditionError("FastForward on non-empty journal");
  }
  if (seq < written_) {
    return InvalidArgumentError("FastForward would move watermarks back");
  }
  written_ = shipped_ = applied_ = seq;
  return OkStatus();
}

void JournalVolume::Reset() {
  records_.clear();
  written_ = shipped_ = applied_ = kNoSequence;
  first_seq_ = kNoSequence;
  used_bytes_ = 0;
  if (instruments_.used_bytes != nullptr) instruments_.used_bytes->Set(0);
}

}  // namespace zerobak::journal
