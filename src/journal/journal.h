#ifndef ZEROBAK_JOURNAL_JOURNAL_H_
#define ZEROBAK_JOURNAL_JOURNAL_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace zerobak::journal {

// Sequence number of an update record within one journal. Sequences are
// dense (no gaps): seq n+1 is appended right after seq n. Sequence 0 means
// "nothing".
using SequenceNumber = uint64_t;

inline constexpr SequenceNumber kNoSequence = 0;

// One journaled volume update: "volume `volume_id` wrote `data` at block
// `lba`". The order of records in a journal is exactly the order in which
// the array acknowledged the corresponding host writes — the property that
// consistency groups extend across multiple volumes (Section III-A-1).
struct JournalRecord {
  SequenceNumber sequence = kNoSequence;
  uint64_t volume_id = 0;
  uint64_t lba = 0;
  uint32_t block_count = 0;
  std::string data;
  // Array time at which the original host write was acknowledged; used to
  // compute replication lag and RPO.
  SimTime ack_time = 0;

  // Bytes this record occupies in the journal / on the wire.
  uint64_t EncodedSize() const { return kHeaderSize + data.size(); }

  static constexpr uint64_t kHeaderSize = 48;
};

// A journal volume: a bounded FIFO of update records with three
// watermarks, mirroring the paper's main/backup journal volumes (Fig. 1):
//
//   written  — highest sequence appended by the write path,
//   shipped  — highest sequence handed to the transfer engine (main site)
//              or received from it (backup site),
//   applied  — highest sequence applied to the target data volumes and
//              therefore safe to trim.
//
// Appending beyond `capacity_bytes` fails with RESOURCE_EXHAUSTED, which
// the replication layer turns into a pair suspension (journal overflow is
// the classic ADC failure mode under a slow or broken link).
class JournalVolume {
 public:
  explicit JournalVolume(uint64_t capacity_bytes);

  JournalVolume(const JournalVolume&) = delete;
  JournalVolume& operator=(const JournalVolume&) = delete;

  // Appends a record, assigning it the next sequence number. On success
  // returns the assigned sequence.
  StatusOr<SequenceNumber> Append(JournalRecord record);

  // Appends a record that already carries a sequence number (backup-site
  // journal receiving shipped records). Sequences must arrive densely.
  Status AppendWithSequence(JournalRecord record);

  // Copies up to `max_bytes` worth of records with sequence > `from` into
  // `out`. Returns the number of records copied.
  size_t Peek(SequenceNumber from, uint64_t max_bytes,
              std::vector<JournalRecord>* out) const;

  // Returns a pointer to the record with the given sequence, or nullptr if
  // it has been trimmed or not yet written.
  const JournalRecord* Find(SequenceNumber seq) const;

  // Marks records through `seq` as shipped (transfer watermark).
  void MarkShipped(SequenceNumber seq);

  // Marks records through `seq` as applied and trims them from memory.
  Status TrimThrough(SequenceNumber seq);

  SequenceNumber written() const { return written_; }
  SequenceNumber shipped() const { return shipped_; }
  SequenceNumber applied() const { return applied_; }

  uint64_t used_bytes() const { return used_bytes_; }
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  double utilization() const {
    return capacity_bytes_ == 0
               ? 0.0
               : static_cast<double>(used_bytes_) /
                     static_cast<double>(capacity_bytes_);
  }
  size_t record_count() const { return records_.size(); }

  uint64_t appends() const { return appends_; }
  uint64_t overflows() const { return overflows_; }
  uint64_t peak_used_bytes() const { return peak_used_bytes_; }

  // Drops all records and resets watermarks (journal re-initialization
  // after a pair is deleted/recreated).
  void Reset();

  // Advances all watermarks to `seq` without storing records. Used on the
  // receive side after a bitmap resync, which transfers data out-of-band:
  // the next shipped record will carry sequence `seq` + 1. Only valid when
  // the journal holds no records and `seq` >= the current written mark.
  Status FastForward(SequenceNumber seq);

 private:
  uint64_t capacity_bytes_;
  std::deque<JournalRecord> records_;
  SequenceNumber written_ = kNoSequence;
  SequenceNumber shipped_ = kNoSequence;
  SequenceNumber applied_ = kNoSequence;
  // Sequence of records_.front(), when non-empty.
  SequenceNumber first_seq_ = kNoSequence;
  uint64_t used_bytes_ = 0;
  uint64_t appends_ = 0;
  uint64_t overflows_ = 0;
  uint64_t peak_used_bytes_ = 0;
};

}  // namespace zerobak::journal

#endif  // ZEROBAK_JOURNAL_JOURNAL_H_
