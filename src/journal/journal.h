#ifndef ZEROBAK_JOURNAL_JOURNAL_H_
#define ZEROBAK_JOURNAL_JOURNAL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "obs/metrics.h"

namespace zerobak::journal {

// Sequence number of an update record within one journal. Sequences are
// dense (no gaps): seq n+1 is appended right after seq n. Sequence 0 means
// "nothing".
using SequenceNumber = uint64_t;

inline constexpr SequenceNumber kNoSequence = 0;

// A refcounted, immutable payload buffer with an offset/length view.
//
// The ADC write path allocates the payload exactly once, when the
// interceptor captures the host write; every downstream stage — primary
// journal, ship batch, secondary journal, apply — shares the same backing
// bytes by copying the (cheap) view. Copying a PayloadBuffer bumps a
// refcount; it never copies payload bytes. The backing buffer is freed
// when the last view drops, so trimming the primary journal cannot
// invalidate a batch that is still on the wire.
class PayloadBuffer {
 public:
  PayloadBuffer() = default;

  // Allocates a new backing buffer holding a copy of `data`. This is the
  // one allocation a replicated host write performs.
  static PayloadBuffer Copy(std::string_view data) {
    return Wrap(std::string(data));
  }

  // Takes ownership of `data` without copying its bytes.
  static PayloadBuffer Wrap(std::string data);

  // A sub-view sharing the same backing buffer (no allocation). `offset`
  // and `length` must lie within this view.
  PayloadBuffer Slice(size_t offset, size_t length) const;

  std::string_view view() const {
    return buf_ == nullptr
               ? std::string_view()
               : std::string_view(buf_->data() + offset_, len_);
  }
  size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }

  // Number of PayloadBuffer views sharing the backing buffer (0 for a
  // default-constructed, empty buffer).
  long use_count() const { return buf_.use_count(); }

  // Process-wide count of backing-buffer allocations (Copy/Wrap calls).
  // Tests use deltas of this to assert the zero-copy property of the
  // replication data path.
  static uint64_t TotalAllocations();

 private:
  PayloadBuffer(std::shared_ptr<const std::string> buf, size_t offset,
                size_t len)
      : buf_(std::move(buf)), offset_(offset), len_(len) {}

  std::shared_ptr<const std::string> buf_;
  size_t offset_ = 0;
  size_t len_ = 0;
};

// One journaled volume update: "volume `volume_id` wrote `payload` at
// block `lba`". The order of records in a journal is exactly the order in
// which the array acknowledged the corresponding host writes — the
// property that consistency groups extend across multiple volumes
// (Section III-A-1). Records share their payload bytes through
// PayloadBuffer, so copying a record is O(1) and never touches the data.
struct JournalRecord {
  SequenceNumber sequence = kNoSequence;
  uint64_t volume_id = 0;
  uint64_t lba = 0;
  uint32_t block_count = 0;
  PayloadBuffer payload;
  // Array time at which the original host write was acknowledged; used to
  // compute replication lag and RPO.
  SimTime ack_time = 0;

  // --- Transfer-pipeline metadata (set on shipped copies) -------------------
  // When non-zero, this record belongs to an atomically-applied batch: the
  // apply side may only apply it together with every record up to
  // `atomic_through`, and a recovery point can only cut at a batch
  // boundary. Write-folding depends on this: a folded record's newest
  // cover lands in the same atomic batch, so no recovery point can observe
  // the fold.
  SequenceNumber atomic_through = kNoSequence;
  // True when write-folding dropped this record's payload because newer
  // records in the same batch overwrite every block it touches. The record
  // ships as a header-only tombstone (its sequence keeps the stream dense)
  // and the apply side skips its volume write.
  bool folded = false;

  std::string_view data() const { return payload.view(); }

  // Bytes this record occupies in the journal / on the wire.
  uint64_t EncodedSize() const { return kHeaderSize + payload.size(); }

  static constexpr uint64_t kHeaderSize = 48;
};

// A journal volume: a bounded FIFO of update records with three
// watermarks, mirroring the paper's main/backup journal volumes (Fig. 1):
//
//   written  — highest sequence appended by the write path,
//   shipped  — highest sequence handed to the transfer engine (main site)
//              or received from it (backup site),
//   applied  — highest sequence applied to the target data volumes and
//              therefore safe to trim.
//
// Appending beyond `capacity_bytes` fails with RESOURCE_EXHAUSTED, which
// the replication layer turns into a pair suspension (journal overflow is
// the classic ADC failure mode under a slow or broken link).
class JournalVolume {
 public:
  // Forward scan cursor over live records, obtained from ScanFrom().
  // Iterates the deque-backed store directly, so a full apply pass is one
  // sweep instead of N find-by-sequence lookups. Invalidated by any
  // journal mutation (Append/TrimThrough/Reset).
  class Cursor {
   public:
    // Returns the next record, or nullptr when the scan ran past the
    // written watermark.
    const JournalRecord* Next() {
      if (records_ == nullptr || index_ >= records_->size()) return nullptr;
      return &(*records_)[index_++];
    }

   private:
    friend class JournalVolume;
    Cursor(const std::deque<JournalRecord>* records, size_t index)
        : records_(records), index_(index) {}
    const std::deque<JournalRecord>* records_;
    size_t index_;
  };

  explicit JournalVolume(uint64_t capacity_bytes);

  JournalVolume(const JournalVolume&) = delete;
  JournalVolume& operator=(const JournalVolume&) = delete;

  // Appends a record, assigning it the next sequence number. On success
  // returns the assigned sequence.
  StatusOr<SequenceNumber> Append(JournalRecord record);

  // Registers a callback fired after every successful Append (write-path
  // side only; AppendWithSequence — the receive side — does not notify).
  // The transfer scheduler uses this edge to arm a group the instant new
  // work exists instead of polling the journal on a timer. Pass an empty
  // function to detach. The callback runs inline inside Append, so it must
  // not mutate the journal.
  using AppendCallback = std::function<void(SequenceNumber)>;
  void SetAppendCallback(AppendCallback callback) {
    append_callback_ = std::move(callback);
  }

  // Appends a record that already carries a sequence number (backup-site
  // journal receiving shipped records). Sequences must arrive densely.
  Status AppendWithSequence(JournalRecord record);

  // Collects views of up to `max_bytes` worth of records with sequence >
  // `from` into `out` (cleared first); always returns at least one record
  // when any is pending (progress guarantee). Returns the number of
  // records collected.
  //
  // Pointer lifetime: records are immutable and stable while they live in
  // the journal (the deque never reallocates existing elements on
  // Append), but TrimThrough and Reset invalidate views of the trimmed
  // records. Callers that hold a batch across a trim boundary — e.g. a
  // ship batch in flight on a simulated link — must copy the records,
  // which shares the payload buffers and is O(1) per record.
  size_t PeekViews(SequenceNumber from, uint64_t max_bytes,
                   std::vector<const JournalRecord*>* out) const;

  // Returns a cursor positioned at the record with sequence `seq`
  // (clamped into the live range).
  Cursor ScanFrom(SequenceNumber seq) const;

  // Returns a pointer to the record with the given sequence, or nullptr if
  // it has been trimmed or not yet written.
  const JournalRecord* Find(SequenceNumber seq) const;

  // Marks records through `seq` as shipped (transfer watermark).
  void MarkShipped(SequenceNumber seq);

  // Write-folding support: drops the payload of record `seq`, freeing its
  // bytes from the journal's capacity accounting and marking the record
  // folded. Called by the transfer engine after it ships a batch in which
  // a newer record overwrites every block of `seq` — the payload can never
  // be needed again (re-ship never goes below the shipped watermark, and a
  // suspension only needs the header to dirty-mark the blocks). Returns
  // the payload bytes freed (0 if the record is gone or already folded).
  uint64_t FoldPayload(SequenceNumber seq);

  // Cumulative records folded / payload bytes freed by FoldPayload.
  uint64_t folded_records() const { return folded_records_; }
  uint64_t folded_bytes() const { return folded_bytes_; }

  // Marks records through `seq` as applied and trims them from memory.
  Status TrimThrough(SequenceNumber seq);

  SequenceNumber written() const { return written_; }
  SequenceNumber shipped() const { return shipped_; }
  SequenceNumber applied() const { return applied_; }
  // The acknowledged watermark. On a main-site journal this is the highest
  // sequence the backup site has confirmed applied (the primary trims on
  // apply-acks), which is the only watermark safe to recover from:
  // `shipped` only means "handed to the link" and a partition can drop
  // anything in (acked, shipped].
  SequenceNumber acked() const { return applied_; }

  // Ack-time of the oldest live (not yet trimmed) record, or -1 when the
  // journal holds none. On a main-site journal the primary trims exactly
  // on apply-acks, so the front record is the oldest *unacked* write —
  // its age is the group's RPO (see DESIGN.md §5).
  SimTime oldest_live_ack_time() const {
    return records_.empty() ? -1 : records_.front().ack_time;
  }

  uint64_t used_bytes() const { return used_bytes_; }
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  double utilization() const {
    return capacity_bytes_ == 0
               ? 0.0
               : static_cast<double>(used_bytes_) /
                     static_cast<double>(capacity_bytes_);
  }
  size_t record_count() const { return records_.size(); }

  uint64_t appends() const { return appends_; }
  uint64_t overflows() const { return overflows_; }
  uint64_t peak_used_bytes() const { return peak_used_bytes_; }

  // Drops all records and resets watermarks (journal re-initialization
  // after a pair is deleted/recreated).
  void Reset();

  // Advances all watermarks to `seq` without storing records. Used on the
  // receive side after a bitmap resync, which transfers data out-of-band:
  // the next shipped record will carry sequence `seq` + 1. Only valid when
  // the journal holds no records and `seq` >= the current written mark.
  Status FastForward(SequenceNumber seq);

  // Fault injection: while set, Append fails with kDataLoss (a latent
  // sector error on the journal LDEV). The replication engine maps this
  // to SuspendReason::kMediaError, dirty-marks from the acked watermark
  // and retries resync until the media heals — the journal-volume leg of
  // the at-rest fault lane. Already-stored records stay readable.
  void SetMediaError(bool failed) { media_failed_ = failed; }
  bool media_failed() const { return media_failed_; }
  uint64_t media_errors() const { return media_errors_; }

  // --- Observability ---------------------------------------------------------
  // Optional per-journal instruments, updated inline on the hot paths.
  // Null members are simply skipped; Attach with a default-constructed
  // struct to detach.
  struct Instruments {
    obs::Counter* appends = nullptr;
    obs::Counter* overflows = nullptr;
    obs::Counter* folded_records = nullptr;
    obs::Gauge* used_bytes = nullptr;
  };
  void AttachMetrics(const Instruments& instruments) {
    instruments_ = instruments;
    if (instruments_.used_bytes != nullptr) {
      instruments_.used_bytes->Set(static_cast<int64_t>(used_bytes_));
    }
  }

 private:
  uint64_t capacity_bytes_;
  std::deque<JournalRecord> records_;
  SequenceNumber written_ = kNoSequence;
  SequenceNumber shipped_ = kNoSequence;
  SequenceNumber applied_ = kNoSequence;
  // Sequence of records_.front(), when non-empty.
  SequenceNumber first_seq_ = kNoSequence;
  uint64_t used_bytes_ = 0;
  uint64_t appends_ = 0;
  uint64_t overflows_ = 0;
  uint64_t peak_used_bytes_ = 0;
  uint64_t folded_records_ = 0;
  uint64_t folded_bytes_ = 0;
  bool media_failed_ = false;
  uint64_t media_errors_ = 0;
  Instruments instruments_;
  AppendCallback append_callback_;
};

}  // namespace zerobak::journal

#endif  // ZEROBAK_JOURNAL_JOURNAL_H_
