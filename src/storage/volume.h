#ifndef ZEROBAK_STORAGE_VOLUME_H_
#define ZEROBAK_STORAGE_VOLUME_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "block/mem_volume.h"
#include "common/status.h"
#include "storage/pool.h"

namespace zerobak::storage {

// Array-local volume identifier (an LDEV number, in Hitachi terms).
using VolumeId = uint64_t;

// An array data volume: a sparse block store plus metadata and write-path
// hooks. Hooks enable the two array features the paper relies on:
//   * pre-overwrite observers — copy-on-write snapshots save the old block
//     content the instant before it is overwritten (Section III-A-2);
//   * the owning array's write interceptor — replication journals every
//     acknowledged host write (Section III-A-1).
class Volume : public block::BlockDevice {
 public:
  // Called just before block `lba` is overwritten, with its current
  // content. Registered by copy-on-write snapshots.
  using PreOverwriteHook =
      std::function<void(block::Lba lba, std::string_view old_block)>;

  Volume(VolumeId id, std::string name, uint64_t block_count,
         uint32_t block_size = block::kDefaultBlockSize,
         StoragePool* pool = nullptr);

  VolumeId id() const { return id_; }
  const std::string& name() const { return name_; }
  // The thin-provisioning pool backing this volume (nullptr: unpooled).
  StoragePool* pool() { return pool_; }
  const StoragePool* pool() const { return pool_; }

  uint32_t block_size() const override { return store_.block_size(); }
  uint64_t block_count() const override { return store_.block_count(); }

  Status Read(block::Lba lba, uint32_t count, std::string* out) override;

  // Writes through the pre-overwrite hooks (COW) and then the store.
  Status Write(block::Lba lba, uint32_t count,
               std::string_view data) override;

  // Applies a sorted multi-extent run in one call (the replication apply
  // path). Every extent is range-validated before any is applied; pool
  // accounting and pre-overwrite hooks fire exactly as they would for
  // per-extent Write calls.
  Status WriteRun(const block::BlockRun* runs, size_t n) override;

  // Two-phase variant of WriteRun for the parallel apply path, for runs
  // that are sorted and NON-OVERLAPPING. PrepareRun performs everything
  // that touches shared or ordering-sensitive state — range and payload
  // validation, thin-pool accounting, pre-overwrite hooks, store metadata
  // (chunk allocation, bitmaps, counters) — serially in run order, and
  // reports how many leading runs were admitted. CommitRun then stores
  // one admitted run's bytes as a pure memcpy; commits of distinct
  // admitted runs are safe from concurrent pool workers. PrepareRun
  // followed by CommitRun over runs [0, admitted) leaves the volume,
  // pool and hooks byte-identical to WriteRun over the same runs,
  // including the partial-apply-then-error semantics when the pool fills
  // mid-batch (the failing run's hooks never fire).
  Status PrepareRun(const block::BlockRun* runs, size_t n, size_t* admitted);
  void CommitRun(const block::BlockRun& run);

  // Registers a pre-overwrite hook; returns a token for removal.
  uint64_t AddPreOverwriteHook(PreOverwriteHook hook);
  void RemovePreOverwriteHook(uint64_t token);
  size_t pre_overwrite_hook_count() const { return hooks_.size(); }

  block::MemVolume& store() { return store_; }
  const block::MemVolume& store() const { return store_; }

  // Content equality against another volume, used to verify replication.
  bool ContentEquals(const Volume& other) const {
    return store_.ContentEquals(other.store_);
  }

 private:
  // Pool accounting + hooks + store write, after range validation.
  Status WriteChecked(block::Lba lba, uint32_t count, std::string_view data);

  VolumeId id_;
  std::string name_;
  block::MemVolume store_;
  StoragePool* pool_;
  std::vector<std::pair<uint64_t, PreOverwriteHook>> hooks_;
  uint64_t next_hook_token_ = 1;
};

}  // namespace zerobak::storage

#endif  // ZEROBAK_STORAGE_VOLUME_H_
