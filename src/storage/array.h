#ifndef ZEROBAK_STORAGE_ARRAY_H_
#define ZEROBAK_STORAGE_ARRAY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "block/async_device.h"
#include "block/block_device.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "journal/journal.h"
#include "sim/environment.h"
#include "storage/volume.h"

namespace zerobak::storage {

// Journal identifier within one array.
using JournalId = uint64_t;

// Write interceptor: the replication layer registers one per protected
// volume. It is invoked after a host write has been applied to the local
// volume and decides when the host ack fires:
//   - asynchronous data copy (ADC) journals the write and acks immediately;
//   - synchronous data copy (SDC) acks only after the remote site persisted
//     the write.
// The interceptor must call `ack` exactly once (inline calls are allowed).
class WriteInterceptor {
 public:
  virtual ~WriteInterceptor() = default;

  using AckFn = std::function<void(Status)>;

  // Called before the write touches the volume; a non-OK status rejects
  // the host write entirely. Used to write-protect S-VOLs while a pair is
  // active (the replication applier bypasses the host path).
  virtual Status PreCheck(Volume* volume, block::Lba lba, uint32_t count) {
    (void)volume;
    (void)lba;
    (void)count;
    return OkStatus();
  }

  virtual void OnHostWrite(Volume* volume, block::Lba lba, uint32_t count,
                           std::string_view data, AckFn ack) = 0;
};

// Array configuration. The media latency model applies to the front-end
// host IO path (cache-hit write latency of the array).
struct ArrayConfig {
  std::string serial = "G370-00000";
  block::DeviceLatencyModel media;
  // Front-end concurrency limit (port/processor credits): host IOs beyond
  // this queue and wait. 0 = unlimited. Note that a slot is held for the
  // full ack time — under SDC that includes the remote round trip, which
  // is exactly why SDC collapses throughput under load.
  uint32_t max_concurrent_ios = 0;
  uint64_t seed = 101;
};

// A simulated external storage system — the stand-in for the Hitachi VSP
// G370 in the demonstration (see DESIGN.md substitution table). It owns
// data volumes and journal volumes, runs the host IO front end with a
// latency model, dispatches write interceptors for replication, and can be
// failed wholesale to simulate a site disaster.
class StorageArray {
 public:
  StorageArray(sim::SimEnvironment* env, ArrayConfig config);

  StorageArray(const StorageArray&) = delete;
  StorageArray& operator=(const StorageArray&) = delete;

  const std::string& serial() const { return config_.serial; }
  const ArrayConfig& config() const { return config_; }
  sim::SimEnvironment* env() { return env_; }

  // --- Pool management ----------------------------------------------------
  // Creates a thin-provisioning pool; volumes created with a pool id
  // consume physical capacity only as they are written.
  StatusOr<PoolId> CreatePool(const std::string& name,
                              uint64_t capacity_blocks);
  StoragePool* GetPool(PoolId id);
  std::vector<PoolId> ListPools() const;

  // --- Volume management -------------------------------------------------
  StatusOr<VolumeId> CreateVolume(
      const std::string& name, uint64_t block_count,
      uint32_t block_size = block::kDefaultBlockSize);
  // Thin-provisioned variant backed by a pool.
  StatusOr<VolumeId> CreateVolumeInPool(const std::string& name,
                                        uint64_t block_count, PoolId pool,
                                        uint32_t block_size =
                                            block::kDefaultBlockSize);
  Status DeleteVolume(VolumeId id);
  // Returns nullptr when the volume does not exist.
  Volume* GetVolume(VolumeId id);
  const Volume* GetVolume(VolumeId id) const;
  StatusOr<Volume*> FindVolume(VolumeId id);
  Volume* FindVolumeByName(std::string_view name);
  std::vector<VolumeId> ListVolumes() const;
  size_t volume_count() const { return volumes_.size(); }

  // Globally unique volume handle ("<serial>:<id>"), used by the container
  // platform to reference array volumes from PV specs.
  std::string VolumeHandle(VolumeId id) const;
  static StatusOr<std::pair<std::string, VolumeId>> ParseVolumeHandle(
      std::string_view handle);

  // --- Journal management ------------------------------------------------
  StatusOr<JournalId> CreateJournal(uint64_t capacity_bytes);
  Status DeleteJournal(JournalId id);
  journal::JournalVolume* GetJournal(JournalId id);
  std::vector<JournalId> ListJournals() const;

  // --- Replication hook --------------------------------------------------
  Status RegisterInterceptor(VolumeId id, WriteInterceptor* interceptor);
  void UnregisterInterceptor(VolumeId id);
  bool HasInterceptor(VolumeId id) const;

  // --- Host IO front end ---------------------------------------------------
  // Asynchronous host write: applies to the volume after the media cost,
  // then routes through the interceptor (if any) which controls the ack.
  void SubmitHostWrite(VolumeId id, block::Lba lba, std::string data,
                       block::IoCallback callback);
  // Asynchronous host read (never intercepted).
  void SubmitHostRead(VolumeId id, block::Lba lba, uint32_t count,
                      block::IoCallback callback);

  // Synchronous functional write path used by correctness experiments: no
  // media latency is simulated, but interception (journaling) still
  // happens. Requires any registered interceptor to ack inline, which ADC
  // does; SDC does not and would be a programming error here.
  Status WriteSync(VolumeId id, block::Lba lba, std::string_view data);
  Status ReadSync(VolumeId id, block::Lba lba, uint32_t count,
                  std::string* out);

  // --- Failure injection ---------------------------------------------------
  // A failed array rejects all host and management IO (site disaster).
  void SetFailed(bool failed) { failed_ = failed; }
  bool failed() const { return failed_; }

  // --- Stats ---------------------------------------------------------------
  // Host write ack latency (ns): the paper's "system slowdown" metric.
  const Histogram& host_write_latency() const { return write_latency_; }
  const Histogram& host_read_latency() const { return read_latency_; }
  uint64_t host_writes() const { return host_writes_; }
  uint64_t host_reads() const { return host_reads_; }
  // IOs currently waiting for a front-end slot.
  size_t queued_ios() const { return admission_queue_.size(); }
  uint64_t peak_queued_ios() const { return peak_queued_; }
  void ResetStats();

 private:
  void CompleteWrite(SimTime start, Status status,
                     block::IoCallback callback);

  // Front-end admission control (max_concurrent_ios).
  void AdmitIo(std::function<void()> start);
  void ReleaseIo();

  sim::SimEnvironment* env_;
  ArrayConfig config_;
  Rng rng_;
  bool failed_ = false;

  std::map<PoolId, std::unique_ptr<StoragePool>> pools_;
  PoolId next_pool_id_ = 1;

  std::map<VolumeId, std::unique_ptr<Volume>> volumes_;
  VolumeId next_volume_id_ = 1;

  std::map<JournalId, std::unique_ptr<journal::JournalVolume>> journals_;
  JournalId next_journal_id_ = 1;

  std::map<VolumeId, WriteInterceptor*> interceptors_;

  Histogram write_latency_;
  Histogram read_latency_;
  uint64_t host_writes_ = 0;
  uint64_t host_reads_ = 0;

  uint32_t active_ios_ = 0;
  std::deque<std::function<void()>> admission_queue_;
  uint64_t peak_queued_ = 0;
};

}  // namespace zerobak::storage

#endif  // ZEROBAK_STORAGE_ARRAY_H_
