#ifndef ZEROBAK_STORAGE_ARRAY_DEVICE_H_
#define ZEROBAK_STORAGE_ARRAY_DEVICE_H_

#include <string>

#include "block/block_device.h"
#include "storage/array.h"

namespace zerobak::storage {

// Presents one array volume as a BlockDevice, routing IO through the
// array's host front end (synchronous functional path). This is how the
// mini-databases sit on array volumes: every block write they make is
// seen — and journaled — by the replication layer, exactly like a real
// database running on SAN storage.
class ArrayVolumeDevice : public block::BlockDevice {
 public:
  ArrayVolumeDevice(StorageArray* array, VolumeId volume_id)
      : array_(array), volume_id_(volume_id) {}

  uint32_t block_size() const override {
    const Volume* v = array_->GetVolume(volume_id_);
    return v == nullptr ? block::kDefaultBlockSize : v->block_size();
  }
  uint64_t block_count() const override {
    const Volume* v = array_->GetVolume(volume_id_);
    return v == nullptr ? 0 : v->block_count();
  }

  Status Read(block::Lba lba, uint32_t count, std::string* out) override {
    return array_->ReadSync(volume_id_, lba, count, out);
  }

  Status Write(block::Lba lba, uint32_t count,
               std::string_view data) override {
    (void)count;
    return array_->WriteSync(volume_id_, lba, data);
  }

  VolumeId volume_id() const { return volume_id_; }

 private:
  StorageArray* array_;
  VolumeId volume_id_;
};

}  // namespace zerobak::storage

#endif  // ZEROBAK_STORAGE_ARRAY_DEVICE_H_
