#include "storage/volume.h"

#include <utility>

namespace zerobak::storage {

Volume::Volume(VolumeId id, std::string name, uint64_t block_count,
               uint32_t block_size, StoragePool* pool)
    : id_(id),
      name_(std::move(name)),
      store_(block_count, block_size),
      pool_(pool) {
  // Every array LDEV carries the per-block CRC32C sidecar: silent at-rest
  // corruption surfaces as kDataLoss on read instead of bad data, and the
  // scrubber can fingerprint extents without a second source of truth.
  store_.EnableChecksums();
}

Status Volume::Read(block::Lba lba, uint32_t count, std::string* out) {
  return store_.Read(lba, count, out);
}

Status Volume::Write(block::Lba lba, uint32_t count, std::string_view data) {
  ZB_RETURN_IF_ERROR(store_.CheckRange(lba, count));
  return WriteChecked(lba, count, data);
}

Status Volume::WriteRun(const block::BlockRun* runs, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    ZB_RETURN_IF_ERROR(store_.CheckRange(runs[i].lba, runs[i].count));
  }
  for (size_t i = 0; i < n; ++i) {
    ZB_RETURN_IF_ERROR(
        WriteChecked(runs[i].lba, runs[i].count, runs[i].data));
  }
  return OkStatus();
}

Status Volume::PrepareRun(const block::BlockRun* runs, size_t n,
                          size_t* admitted) {
  *admitted = 0;
  for (size_t i = 0; i < n; ++i) {
    ZB_RETURN_IF_ERROR(store_.CheckRange(runs[i].lba, runs[i].count));
    if (runs[i].data.size() !=
        static_cast<size_t>(runs[i].count) * store_.block_size()) {
      return InvalidArgumentError("PrepareRun payload size mismatch");
    }
  }
  for (size_t i = 0; i < n; ++i) {
    const block::BlockRun& run = runs[i];
    // Identical admission order to WriteRun: pool accounting, then hooks,
    // then store metadata — a pool failure rejects the run before its
    // hooks see anything, leaving runs [0, i) admitted.
    if (pool_ != nullptr) {
      uint64_t fresh = 0;
      for (uint32_t b = 0; b < run.count; ++b) {
        if (!store_.IsAllocated(run.lba + b)) ++fresh;
      }
      if (fresh > 0 && !pool_->TryAllocate(fresh)) {
        return ResourceExhaustedError(
            "pool " + pool_->name() + " exhausted (" +
            std::to_string(pool_->used_blocks()) + "/" +
            std::to_string(pool_->capacity_blocks()) + " blocks used)");
      }
    }
    if (!hooks_.empty()) {
      for (uint32_t b = 0; b < run.count; ++b) {
        // For non-overlapping runs no earlier run in this batch touched
        // these blocks, so the view matches what a serial WriteRun's
        // hooks would have seen.
        const std::string_view old_block = store_.ReadBlockView(run.lba + b);
        for (auto& [token, hook] : hooks_) {
          hook(run.lba + b, old_block);
        }
      }
    }
    store_.PrepareWrite(run.lba, run.count);
    *admitted = i + 1;
  }
  return OkStatus();
}

void Volume::CommitRun(const block::BlockRun& run) {
  store_.CommitWrite(run.lba, run.count, run.data);
}

Status Volume::WriteChecked(block::Lba lba, uint32_t count,
                            std::string_view data) {
  // Thin provisioning: physical blocks are consumed on first write; a
  // full pool rejects the write before anything changes.
  if (pool_ != nullptr) {
    uint64_t fresh = 0;
    for (uint32_t i = 0; i < count; ++i) {
      if (!store_.IsAllocated(lba + i)) ++fresh;
    }
    if (fresh > 0 && !pool_->TryAllocate(fresh)) {
      return ResourceExhaustedError(
          "pool " + pool_->name() + " exhausted (" +
          std::to_string(pool_->used_blocks()) + "/" +
          std::to_string(pool_->capacity_blocks()) + " blocks used)");
    }
  }
  if (!hooks_.empty()) {
    for (uint32_t i = 0; i < count; ++i) {
      // Zero-copy: the view stays valid until store_.Write below, and
      // hooks that keep the content (COW snapshots) copy it themselves.
      const std::string_view old_block = store_.ReadBlockView(lba + i);
      for (auto& [token, hook] : hooks_) {
        hook(lba + i, old_block);
      }
    }
  }
  return store_.Write(lba, count, data);
}

uint64_t Volume::AddPreOverwriteHook(PreOverwriteHook hook) {
  const uint64_t token = next_hook_token_++;
  hooks_.emplace_back(token, std::move(hook));
  return token;
}

void Volume::RemovePreOverwriteHook(uint64_t token) {
  for (auto it = hooks_.begin(); it != hooks_.end(); ++it) {
    if (it->first == token) {
      hooks_.erase(it);
      return;
    }
  }
}

}  // namespace zerobak::storage
