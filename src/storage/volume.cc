#include "storage/volume.h"

#include <utility>

namespace zerobak::storage {

Volume::Volume(VolumeId id, std::string name, uint64_t block_count,
               uint32_t block_size, StoragePool* pool)
    : id_(id),
      name_(std::move(name)),
      store_(block_count, block_size),
      pool_(pool) {}

Status Volume::Read(block::Lba lba, uint32_t count, std::string* out) {
  return store_.Read(lba, count, out);
}

Status Volume::Write(block::Lba lba, uint32_t count, std::string_view data) {
  ZB_RETURN_IF_ERROR(store_.CheckRange(lba, count));
  return WriteChecked(lba, count, data);
}

Status Volume::WriteRun(const block::BlockRun* runs, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    ZB_RETURN_IF_ERROR(store_.CheckRange(runs[i].lba, runs[i].count));
  }
  for (size_t i = 0; i < n; ++i) {
    ZB_RETURN_IF_ERROR(
        WriteChecked(runs[i].lba, runs[i].count, runs[i].data));
  }
  return OkStatus();
}

Status Volume::WriteChecked(block::Lba lba, uint32_t count,
                            std::string_view data) {
  // Thin provisioning: physical blocks are consumed on first write; a
  // full pool rejects the write before anything changes.
  if (pool_ != nullptr) {
    uint64_t fresh = 0;
    for (uint32_t i = 0; i < count; ++i) {
      if (!store_.IsAllocated(lba + i)) ++fresh;
    }
    if (fresh > 0 && !pool_->TryAllocate(fresh)) {
      return ResourceExhaustedError(
          "pool " + pool_->name() + " exhausted (" +
          std::to_string(pool_->used_blocks()) + "/" +
          std::to_string(pool_->capacity_blocks()) + " blocks used)");
    }
  }
  if (!hooks_.empty()) {
    for (uint32_t i = 0; i < count; ++i) {
      // Zero-copy: the view stays valid until store_.Write below, and
      // hooks that keep the content (COW snapshots) copy it themselves.
      const std::string_view old_block = store_.ReadBlockView(lba + i);
      for (auto& [token, hook] : hooks_) {
        hook(lba + i, old_block);
      }
    }
  }
  return store_.Write(lba, count, data);
}

uint64_t Volume::AddPreOverwriteHook(PreOverwriteHook hook) {
  const uint64_t token = next_hook_token_++;
  hooks_.emplace_back(token, std::move(hook));
  return token;
}

void Volume::RemovePreOverwriteHook(uint64_t token) {
  for (auto it = hooks_.begin(); it != hooks_.end(); ++it) {
    if (it->first == token) {
      hooks_.erase(it);
      return;
    }
  }
}

}  // namespace zerobak::storage
