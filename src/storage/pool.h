#ifndef ZEROBAK_STORAGE_POOL_H_
#define ZEROBAK_STORAGE_POOL_H_

#include <cstdint>
#include <string>

namespace zerobak::storage {

using PoolId = uint64_t;

// A thin-provisioning capacity pool: volumes carved from a pool consume
// physical blocks only when first written, and writes fail with
// RESOURCE_EXHAUSTED once the pool is full. Real arrays work this way,
// and an exhausted pool on the backup array is a production incident this
// library can reproduce (a journal applies until the pool fills).
class StoragePool {
 public:
  StoragePool(PoolId id, std::string name, uint64_t capacity_blocks)
      : id_(id), name_(std::move(name)), capacity_blocks_(capacity_blocks) {}

  PoolId id() const { return id_; }
  const std::string& name() const { return name_; }
  uint64_t capacity_blocks() const { return capacity_blocks_; }
  uint64_t used_blocks() const { return used_blocks_; }
  uint64_t free_blocks() const { return capacity_blocks_ - used_blocks_; }
  double utilization() const {
    return capacity_blocks_ == 0
               ? 0.0
               : static_cast<double>(used_blocks_) /
                     static_cast<double>(capacity_blocks_);
  }

  // Reserves `n` physical blocks; false when the pool cannot hold them.
  bool TryAllocate(uint64_t n) {
    if (used_blocks_ + n > capacity_blocks_) {
      ++allocation_failures_;
      return false;
    }
    used_blocks_ += n;
    return true;
  }

  // Returns blocks to the pool (volume deletion).
  void Release(uint64_t n) {
    used_blocks_ = n > used_blocks_ ? 0 : used_blocks_ - n;
  }

  uint64_t allocation_failures() const { return allocation_failures_; }

 private:
  PoolId id_;
  std::string name_;
  uint64_t capacity_blocks_;
  uint64_t used_blocks_ = 0;
  uint64_t allocation_failures_ = 0;
};

}  // namespace zerobak::storage

#endif  // ZEROBAK_STORAGE_POOL_H_
