#include "storage/array.h"

#include <utility>

#include "common/logging.h"

namespace zerobak::storage {

StorageArray::StorageArray(sim::SimEnvironment* env, ArrayConfig config)
    : env_(env), config_(std::move(config)), rng_(config_.seed) {}

StatusOr<PoolId> StorageArray::CreatePool(const std::string& name,
                                          uint64_t capacity_blocks) {
  if (failed_) return UnavailableError("array " + serial() + " has failed");
  if (capacity_blocks == 0) {
    return InvalidArgumentError("zero-capacity pool");
  }
  const PoolId id = next_pool_id_++;
  pools_.emplace(id,
                 std::make_unique<StoragePool>(id, name, capacity_blocks));
  return id;
}

StoragePool* StorageArray::GetPool(PoolId id) {
  auto it = pools_.find(id);
  return it == pools_.end() ? nullptr : it->second.get();
}

std::vector<PoolId> StorageArray::ListPools() const {
  std::vector<PoolId> out;
  for (const auto& [id, pool] : pools_) out.push_back(id);
  return out;
}

StatusOr<VolumeId> StorageArray::CreateVolume(const std::string& name,
                                              uint64_t block_count,
                                              uint32_t block_size) {
  if (failed_) return UnavailableError("array " + serial() + " has failed");
  if (block_count == 0) return InvalidArgumentError("zero-sized volume");
  if (!name.empty() && FindVolumeByName(name) != nullptr) {
    return AlreadyExistsError("volume name in use: " + name);
  }
  const VolumeId id = next_volume_id_++;
  volumes_.emplace(
      id, std::make_unique<Volume>(id, name, block_count, block_size));
  return id;
}

StatusOr<VolumeId> StorageArray::CreateVolumeInPool(const std::string& name,
                                                    uint64_t block_count,
                                                    PoolId pool,
                                                    uint32_t block_size) {
  if (failed_) return UnavailableError("array " + serial() + " has failed");
  if (block_count == 0) return InvalidArgumentError("zero-sized volume");
  if (!name.empty() && FindVolumeByName(name) != nullptr) {
    return AlreadyExistsError("volume name in use: " + name);
  }
  StoragePool* p = GetPool(pool);
  if (p == nullptr) return NotFoundError("pool " + std::to_string(pool));
  const VolumeId id = next_volume_id_++;
  volumes_.emplace(
      id, std::make_unique<Volume>(id, name, block_count, block_size, p));
  return id;
}

Status StorageArray::DeleteVolume(VolumeId id) {
  if (failed_) return UnavailableError("array " + serial() + " has failed");
  auto it = volumes_.find(id);
  if (it == volumes_.end()) {
    return NotFoundError("volume " + std::to_string(id));
  }
  if (interceptors_.contains(id)) {
    return FailedPreconditionError(
        "volume " + std::to_string(id) +
        " is part of a replication pair; delete the pair first");
  }
  if (it->second->pre_overwrite_hook_count() > 0) {
    return FailedPreconditionError(
        "volume " + std::to_string(id) +
        " has attached snapshots; delete them first");
  }
  if (it->second->pool() != nullptr) {
    it->second->pool()->Release(it->second->store().allocated_blocks());
  }
  volumes_.erase(it);
  return OkStatus();
}

Volume* StorageArray::GetVolume(VolumeId id) {
  auto it = volumes_.find(id);
  return it == volumes_.end() ? nullptr : it->second.get();
}

const Volume* StorageArray::GetVolume(VolumeId id) const {
  auto it = volumes_.find(id);
  return it == volumes_.end() ? nullptr : it->second.get();
}

StatusOr<Volume*> StorageArray::FindVolume(VolumeId id) {
  Volume* v = GetVolume(id);
  if (v == nullptr) return NotFoundError("volume " + std::to_string(id));
  return v;
}

Volume* StorageArray::FindVolumeByName(std::string_view name) {
  for (auto& [id, vol] : volumes_) {
    if (vol->name() == name) return vol.get();
  }
  return nullptr;
}

std::vector<VolumeId> StorageArray::ListVolumes() const {
  std::vector<VolumeId> out;
  out.reserve(volumes_.size());
  for (const auto& [id, vol] : volumes_) out.push_back(id);
  return out;
}

std::string StorageArray::VolumeHandle(VolumeId id) const {
  return serial() + ":" + std::to_string(id);
}

StatusOr<std::pair<std::string, VolumeId>> StorageArray::ParseVolumeHandle(
    std::string_view handle) {
  const size_t colon = handle.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= handle.size()) {
    return InvalidArgumentError("malformed volume handle: " +
                                std::string(handle));
  }
  const std::string serial(handle.substr(0, colon));
  const std::string id_text(handle.substr(colon + 1));
  char* end = nullptr;
  const unsigned long long id = std::strtoull(id_text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return InvalidArgumentError("malformed volume id in handle: " +
                                std::string(handle));
  }
  return std::make_pair(serial, static_cast<VolumeId>(id));
}

StatusOr<JournalId> StorageArray::CreateJournal(uint64_t capacity_bytes) {
  if (failed_) return UnavailableError("array " + serial() + " has failed");
  if (capacity_bytes == 0) {
    return InvalidArgumentError("zero-capacity journal");
  }
  const JournalId id = next_journal_id_++;
  journals_.emplace(
      id, std::make_unique<journal::JournalVolume>(capacity_bytes));
  return id;
}

Status StorageArray::DeleteJournal(JournalId id) {
  if (journals_.erase(id) == 0) {
    return NotFoundError("journal " + std::to_string(id));
  }
  return OkStatus();
}

journal::JournalVolume* StorageArray::GetJournal(JournalId id) {
  auto it = journals_.find(id);
  return it == journals_.end() ? nullptr : it->second.get();
}

std::vector<JournalId> StorageArray::ListJournals() const {
  std::vector<JournalId> out;
  out.reserve(journals_.size());
  for (const auto& [id, j] : journals_) out.push_back(id);
  return out;
}

Status StorageArray::RegisterInterceptor(VolumeId id,
                                         WriteInterceptor* interceptor) {
  if (GetVolume(id) == nullptr) {
    return NotFoundError("volume " + std::to_string(id));
  }
  auto [it, inserted] = interceptors_.emplace(id, interceptor);
  if (!inserted) {
    return AlreadyExistsError("volume " + std::to_string(id) +
                              " already has a replication interceptor");
  }
  return OkStatus();
}

void StorageArray::UnregisterInterceptor(VolumeId id) {
  interceptors_.erase(id);
}

bool StorageArray::HasInterceptor(VolumeId id) const {
  return interceptors_.contains(id);
}

void StorageArray::AdmitIo(std::function<void()> start) {
  if (config_.max_concurrent_ios == 0) {
    start();  // Unlimited: no accounting.
    return;
  }
  if (active_ios_ < config_.max_concurrent_ios) {
    ++active_ios_;
    start();
    return;
  }
  admission_queue_.push_back(std::move(start));
  peak_queued_ = std::max(peak_queued_,
                          static_cast<uint64_t>(admission_queue_.size()));
}

void StorageArray::ReleaseIo() {
  if (config_.max_concurrent_ios == 0) return;
  ZB_CHECK(active_ios_ > 0);
  --active_ios_;
  if (!admission_queue_.empty()) {
    auto next = std::move(admission_queue_.front());
    admission_queue_.pop_front();
    ++active_ios_;
    next();
  }
}

void StorageArray::CompleteWrite(SimTime start, Status status,
                                 block::IoCallback callback) {
  ++host_writes_;
  write_latency_.Add(static_cast<uint64_t>(env_->now() - start));
  if (callback) callback(block::IoResult{std::move(status), {}});
  ReleaseIo();
}

void StorageArray::SubmitHostWrite(VolumeId id, block::Lba lba,
                                   std::string data,
                                   block::IoCallback callback) {
  const SimTime start = env_->now();
  if (failed_) {
    if (callback) {
      callback(block::IoResult{
          UnavailableError("array " + serial() + " has failed"), {}});
    }
    return;
  }
  Volume* volume = GetVolume(id);
  if (volume == nullptr) {
    if (callback) {
      callback(
          block::IoResult{NotFoundError("volume " + std::to_string(id)), {}});
    }
    return;
  }
  if (data.size() % volume->block_size() != 0 || data.empty()) {
    if (callback) {
      callback(block::IoResult{
          InvalidArgumentError("write payload not block-aligned"), {}});
    }
    return;
  }
  const uint32_t count =
      static_cast<uint32_t>(data.size() / volume->block_size());

  auto persist_and_ack = [this, volume, lba, count, start,
                          data = std::move(data),
                          callback = std::move(callback)]() mutable {
    if (failed_) {
      // The array died while the IO was in flight: no ack.
      CompleteWrite(start, UnavailableError("array failed mid-IO"),
                    std::move(callback));
      return;
    }
    auto it = interceptors_.find(volume->id());
    if (it != interceptors_.end()) {
      Status pre = it->second->PreCheck(volume, lba, count);
      if (!pre.ok()) {
        CompleteWrite(start, std::move(pre), std::move(callback));
        return;
      }
    }
    Status status = volume->Write(lba, count, data);
    if (!status.ok()) {
      CompleteWrite(start, std::move(status), std::move(callback));
      return;
    }
    if (it == interceptors_.end()) {
      CompleteWrite(start, OkStatus(), std::move(callback));
      return;
    }
    it->second->OnHostWrite(
        volume, lba, count, data,
        [this, start, callback = std::move(callback)](Status s) mutable {
          CompleteWrite(start, std::move(s), std::move(callback));
        });
  };

  const SimDuration cost =
      config_.media.Cost(block::IoType::kWrite, count, &rng_);
  AdmitIo([this, cost, persist_and_ack = std::move(persist_and_ack)]() mutable {
    if (cost == 0) {
      persist_and_ack();
    } else {
      env_->Schedule(cost, std::move(persist_and_ack));
    }
  });
}

void StorageArray::SubmitHostRead(VolumeId id, block::Lba lba,
                                  uint32_t count,
                                  block::IoCallback callback) {
  const SimTime start = env_->now();
  if (failed_) {
    if (callback) {
      callback(block::IoResult{
          UnavailableError("array " + serial() + " has failed"), {}});
    }
    return;
  }
  Volume* volume = GetVolume(id);
  if (volume == nullptr) {
    if (callback) {
      callback(
          block::IoResult{NotFoundError("volume " + std::to_string(id)), {}});
    }
    return;
  }
  auto do_read = [this, volume, lba, count, start,
                  callback = std::move(callback)]() mutable {
    block::IoResult result;
    if (failed_) {
      result.status = UnavailableError("array failed mid-IO");
    } else {
      result.status = volume->Read(lba, count, &result.data);
    }
    ++host_reads_;
    read_latency_.Add(static_cast<uint64_t>(env_->now() - start));
    if (callback) callback(std::move(result));
    ReleaseIo();
  };
  const SimDuration cost =
      config_.media.Cost(block::IoType::kRead, count, &rng_);
  AdmitIo([this, cost, do_read = std::move(do_read)]() mutable {
    if (cost == 0) {
      do_read();
    } else {
      env_->Schedule(cost, std::move(do_read));
    }
  });
}

Status StorageArray::WriteSync(VolumeId id, block::Lba lba,
                               std::string_view data) {
  if (failed_) return UnavailableError("array " + serial() + " has failed");
  Volume* volume = GetVolume(id);
  if (volume == nullptr) {
    return NotFoundError("volume " + std::to_string(id));
  }
  if (data.empty() || data.size() % volume->block_size() != 0) {
    return InvalidArgumentError("write payload not block-aligned");
  }
  const uint32_t count =
      static_cast<uint32_t>(data.size() / volume->block_size());
  auto it = interceptors_.find(id);
  if (it != interceptors_.end()) {
    ZB_RETURN_IF_ERROR(it->second->PreCheck(volume, lba, count));
  }
  ZB_RETURN_IF_ERROR(volume->Write(lba, count, data));

  Status final_status = OkStatus();
  if (it != interceptors_.end()) {
    bool acked = false;
    it->second->OnHostWrite(volume, lba, count, data,
                            [&acked, &final_status](Status s) {
                              acked = true;
                              final_status = std::move(s);
                            });
    ZB_CHECK(acked) << "WriteSync requires an inline-acking interceptor "
                       "(ADC); synchronous replication must use "
                       "SubmitHostWrite";
  }
  ++host_writes_;
  write_latency_.Add(0);
  return final_status;
}

Status StorageArray::ReadSync(VolumeId id, block::Lba lba, uint32_t count,
                              std::string* out) {
  if (failed_) return UnavailableError("array " + serial() + " has failed");
  Volume* volume = GetVolume(id);
  if (volume == nullptr) {
    return NotFoundError("volume " + std::to_string(id));
  }
  ++host_reads_;
  return volume->Read(lba, count, out);
}

void StorageArray::ResetStats() {
  write_latency_.Clear();
  read_latency_.Clear();
  host_writes_ = 0;
  host_reads_ = 0;
}

}  // namespace zerobak::storage
