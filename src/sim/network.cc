#include "sim/network.h"

#include <algorithm>
#include <utility>

namespace zerobak::sim {

NetworkLink::NetworkLink(SimEnvironment* env, NetworkLinkConfig config,
                         std::string name)
    : env_(env),
      config_(config),
      name_(std::move(name)),
      rng_(config.seed) {}

Status NetworkLink::SendOnChannel(uint64_t channel, uint64_t bytes,
                                  EventFn on_delivered) {
  if (!connected_) {
    ++send_failures_;
    return UnavailableError(name_ + " is disconnected");
  }
  const SimTime now = env_->now();
  // Serialization: the message occupies the wire for bytes/bandwidth.
  SimDuration serialization = 0;
  if (config_.bandwidth_bytes_per_sec > 0) {
    serialization = static_cast<SimDuration>(
        static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec *
        static_cast<double>(kSecond));
  }
  const SimTime start = std::max(now, wire_free_at_);
  wire_free_at_ = start + serialization;

  SimDuration jitter = 0;
  if (config_.jitter > 0) {
    jitter = static_cast<SimDuration>(
        rng_.Uniform(static_cast<uint64_t>(config_.jitter)));
  }
  SimTime arrival = wire_free_at_ + config_.base_latency + jitter;
  // FIFO within the channel: never deliver before an earlier message on
  // the same channel.
  SimTime& last = last_arrival_[channel];
  arrival = std::max(arrival, last);
  last = arrival;

  ++messages_sent_;
  bytes_sent_ += bytes;
  env_->ScheduleAt(arrival, std::move(on_delivered));
  return OkStatus();
}

SimTime NetworkLink::EstimateArrival(uint64_t bytes) const {
  const SimTime now = env_->now();
  SimDuration serialization = 0;
  if (config_.bandwidth_bytes_per_sec > 0) {
    serialization = static_cast<SimDuration>(
        static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec *
        static_cast<double>(kSecond));
  }
  const SimTime start = std::max(now, wire_free_at_);
  SimTime floor = start + serialization + config_.base_latency;
  auto it = last_arrival_.find(0);
  if (it != last_arrival_.end()) floor = std::max(floor, it->second);
  return floor;
}

}  // namespace zerobak::sim
