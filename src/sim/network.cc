#include "sim/network.h"

#include <algorithm>
#include <utility>

namespace zerobak::sim {

NetworkLink::NetworkLink(SimEnvironment* env, NetworkLinkConfig config,
                         std::string name)
    : env_(env),
      config_(config),
      name_(std::move(name)),
      rng_(config.seed) {}

Status NetworkLink::SendOnChannel(uint64_t channel, uint64_t bytes,
                                  uint64_t logical_bytes,
                                  EventFn on_delivered) {
  if (!connected_) {
    ++send_failures_;
    if (instruments_.send_failures != nullptr) {
      instruments_.send_failures->Increment();
    }
    return UnavailableError(name_ + " is disconnected");
  }
  const SimTime now = env_->now();
  // Serialization: the message occupies the wire for bytes/bandwidth.
  SimDuration serialization = 0;
  if (config_.bandwidth_bytes_per_sec > 0) {
    serialization = static_cast<SimDuration>(
        static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec *
        static_cast<double>(kSecond));
  }
  const SimTime start = std::max(now, wire_free_at_);
  wire_free_at_ = start + serialization;

  SimDuration jitter = 0;
  if (config_.jitter > 0) {
    jitter = static_cast<SimDuration>(
        rng_.Uniform(static_cast<uint64_t>(config_.jitter)));
  }
  SimTime arrival = wire_free_at_ + config_.base_latency + jitter;
  // FIFO within the channel: never deliver before an earlier message on
  // the same channel.
  SimTime& last = last_arrival_[channel];
  arrival = std::max(arrival, last);
  last = arrival;

  ++messages_sent_;
  bytes_sent_ += bytes;
  logical_bytes_sent_ += logical_bytes;
  if (instruments_.messages != nullptr) instruments_.messages->Increment();
  if (instruments_.wire_bytes != nullptr) {
    instruments_.wire_bytes->Increment(bytes);
  }
  if (config_.drop_probability > 0 &&
      rng_.Bernoulli(config_.drop_probability)) {
    // Random loss: the message occupied the wire and advanced the channel
    // floor, but its delivery never fires.
    ++messages_dropped_;
    if (instruments_.dropped != nullptr) instruments_.dropped->Increment();
    return OkStatus();
  }
  env_->ScheduleAt(arrival,
                   [this, send_epoch = epoch_, channel,
                    fn = std::move(on_delivered)]() mutable {
                     Deliver(send_epoch, channel, std::move(fn));
                   });
  return OkStatus();
}

void NetworkLink::Deliver(uint64_t send_epoch, uint64_t channel,
                          EventFn fn) {
  if (send_epoch == epoch_) {
    fn();
    return;
  }
  // The link partitioned while this message was in flight.
  if (config_.partition_policy == PartitionPolicy::kDropInFlight) {
    ++messages_dropped_;
    if (instruments_.dropped != nullptr) instruments_.dropped->Increment();
    return;
  }
  if (!connected_) {
    // Held at the partition; flushed on reconnect.
    held_.push_back(HeldMessage{channel, std::move(fn)});
    return;
  }
  // kDelayInFlight and the link reconnected before this message's arrival:
  // the buffering hop never had to hold it, so it arrives on schedule —
  // unless the outage pushed earlier channel traffic (held-and-flushed)
  // past this instant, in which case queue behind it to keep channel FIFO.
  auto it = last_arrival_.find(channel);
  if (it == last_arrival_.end() || env_->now() >= it->second) {
    fn();
    return;
  }
  ScheduleDelivery(env_->now(), channel, std::move(fn));
}

void NetworkLink::ScheduleDelivery(SimTime arrival, uint64_t channel,
                                   EventFn fn) {
  SimTime& last = last_arrival_[channel];
  arrival = std::max(arrival, last);
  last = arrival;
  env_->ScheduleAt(arrival,
                   [this, send_epoch = epoch_, channel,
                    fn = std::move(fn)]() mutable {
                     Deliver(send_epoch, channel, std::move(fn));
                   });
}

void NetworkLink::SetConnected(bool connected) {
  if (connected_ == connected) return;
  connected_ = connected;
  if (trace_ != nullptr) {
    trace_->Record(env_->now(),
                   connected ? obs::TraceEvent::kLinkUp
                             : obs::TraceEvent::kLinkDown,
                   trace_id_);
  }
  if (!connected) {
    // In-flight messages were sent in an older epoch and will be dropped
    // (or held) when their delivery event fires.
    ++epoch_;
    return;
  }
  // Reconnect: re-deliver messages held across the outage, in order, each
  // paying the propagation delay again from now.
  std::deque<HeldMessage> held;
  held.swap(held_);
  for (HeldMessage& msg : held) {
    ScheduleDelivery(env_->now() + config_.base_latency, msg.channel,
                     std::move(msg.fn));
  }
  if (ready_callback_) ready_callback_();
}

void NetworkLink::NotifyWhenDrained(EventFn fn) {
  const SimTime at = std::max(env_->now(), wire_free_at_);
  env_->ScheduleAt(at, std::move(fn));
}

SimTime NetworkLink::EstimateArrival(uint64_t bytes,
                                     uint64_t channel) const {
  const SimTime now = env_->now();
  SimDuration serialization = 0;
  if (config_.bandwidth_bytes_per_sec > 0) {
    serialization = static_cast<SimDuration>(
        static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec *
        static_cast<double>(kSecond));
  }
  const SimTime start = std::max(now, wire_free_at_);
  // Upper bound: full jitter, floored by the channel's FIFO ordering.
  SimTime bound =
      start + serialization + config_.base_latency + config_.jitter;
  auto it = last_arrival_.find(channel);
  if (it != last_arrival_.end()) bound = std::max(bound, it->second);
  return bound;
}

}  // namespace zerobak::sim
