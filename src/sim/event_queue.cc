#include "sim/event_queue.h"

#include <utility>

#include "common/logging.h"

namespace zerobak::sim {

EventId EventQueue::Push(SimTime t, EventFn fn) {
  const uint64_t id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id});
  functions_.emplace(id, std::move(fn));
  ++live_count_;
  return EventId{id};
}

bool EventQueue::Cancel(EventId id) {
  auto it = functions_.find(id.id);
  if (it == functions_.end()) return false;
  functions_.erase(it);
  --live_count_;
  return true;
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty() &&
         functions_.find(heap_.top().id) == functions_.end()) {
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() {
  SkipCancelled();
  ZB_CHECK(!heap_.empty()) << "NextTime() on empty queue";
  return heap_.top().time;
}

EventQueue::PoppedEvent EventQueue::Pop() {
  SkipCancelled();
  if (heap_.empty()) return {};
  const Entry top = heap_.top();
  heap_.pop();
  auto it = functions_.find(top.id);
  PoppedEvent out{top.time, std::move(it->second)};
  functions_.erase(it);
  --live_count_;
  return out;
}

}  // namespace zerobak::sim
