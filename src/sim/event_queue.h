#ifndef ZEROBAK_SIM_EVENT_QUEUE_H_
#define ZEROBAK_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/time.h"

namespace zerobak::sim {

using EventFn = std::function<void()>;

// Handle for a scheduled event; can be used to cancel it.
struct EventId {
  uint64_t id = 0;
  bool valid() const { return id != 0; }
};

// Time-ordered event queue with stable FIFO ordering for events scheduled
// at the same instant, and O(log n) cancellation via lazy deletion.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` at absolute time `t` (must be >= the last popped time).
  EventId Push(SimTime t, EventFn fn);

  // Cancels a pending event. Returns true if it was still pending.
  bool Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  // Time of the earliest pending event; undefined when empty().
  SimTime NextTime();

  // Pops the earliest event. Returns an empty function when empty.
  struct PoppedEvent {
    SimTime time = 0;
    EventFn fn;
  };
  PoppedEvent Pop();

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;  // Tie-break: FIFO among same-time events.
    uint64_t id;
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  // Drops cancelled entries from the head of the heap.
  void SkipCancelled();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_map<uint64_t, EventFn> functions_;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  size_t live_count_ = 0;
};

}  // namespace zerobak::sim

#endif  // ZEROBAK_SIM_EVENT_QUEUE_H_
