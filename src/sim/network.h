#ifndef ZEROBAK_SIM_NETWORK_H_
#define ZEROBAK_SIM_NETWORK_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"
#include "sim/environment.h"

namespace zerobak::sim {

// Configuration of a point-to-point inter-site link (e.g. the FC/IP line
// between the main and backup storage arrays in Fig. 1 of the paper).
struct NetworkLinkConfig {
  // One-way propagation delay.
  SimDuration base_latency = Milliseconds(5);
  // Additional uniform jitter in [0, jitter).
  SimDuration jitter = 0;
  // Serialization bandwidth; 0 disables the bandwidth model.
  double bandwidth_bytes_per_sec = 1.25e9;  // ~10 Gbit/s.
  // Seed for the jitter RNG.
  uint64_t seed = 7;
};

// A unidirectional inter-site link with propagation delay, jitter and a
// serialization (bandwidth) model. Messages are delivered by scheduling
// their callback on the simulation environment. The link can be
// disconnected to simulate a partition or site disaster.
//
// The link multiplexes independent ordered CHANNELS (like TCP connections
// over one physical line): delivery is FIFO within a channel, but two
// channels may be reordered against each other by jitter — exactly the
// asynchrony that lets per-volume ADC streams diverge and collapse the
// backup (Section I), while a consistency group's single stream stays
// totally ordered.
class NetworkLink {
 public:
  NetworkLink(SimEnvironment* env, NetworkLinkConfig config,
              std::string name = "link");

  NetworkLink(const NetworkLink&) = delete;
  NetworkLink& operator=(const NetworkLink&) = delete;

  // Sends on the default channel (0).
  Status Send(uint64_t bytes, EventFn on_delivered) {
    return SendOnChannel(0, bytes, std::move(on_delivered));
  }

  // Queues a message of `bytes` on `channel`; `on_delivered` fires at the
  // arrival time. FIFO within the channel; fails with UNAVAILABLE when
  // disconnected.
  Status SendOnChannel(uint64_t channel, uint64_t bytes,
                       EventFn on_delivered);

  // Expected time a message sent now would arrive, without sending it.
  SimTime EstimateArrival(uint64_t bytes) const;

  void SetConnected(bool connected) { connected_ = connected; }
  bool connected() const { return connected_; }

  const NetworkLinkConfig& config() const { return config_; }
  void set_base_latency(SimDuration latency) {
    config_.base_latency = latency;
  }

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t send_failures() const { return send_failures_; }

 private:
  SimEnvironment* env_;
  NetworkLinkConfig config_;
  std::string name_;
  Rng rng_;
  bool connected_ = true;

  // Serialization model: the wire is busy until this time (shared by all
  // channels — one physical line).
  SimTime wire_free_at_ = 0;
  // Per-channel in-order delivery: no message may arrive before the
  // previous one on the same channel.
  std::unordered_map<uint64_t, SimTime> last_arrival_;

  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t send_failures_ = 0;
};

}  // namespace zerobak::sim

#endif  // ZEROBAK_SIM_NETWORK_H_
