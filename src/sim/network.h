#ifndef ZEROBAK_SIM_NETWORK_H_
#define ZEROBAK_SIM_NETWORK_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/environment.h"

namespace zerobak::sim {

// What happens to messages already on the wire when the link partitions.
enum class PartitionPolicy {
  // A disconnect kills every in-flight message (a real fibre cut: frames
  // in transit are gone, even if the link is re-plugged before they would
  // have arrived). This is the default and the semantics the replication
  // engine's recovery machinery is built against.
  kDropInFlight,
  // In-flight messages are held at the partition and re-delivered (in
  // order) once the link reconnects — a store-and-forward WAN where an
  // intermediate hop buffers across the outage.
  kDelayInFlight,
};

// Configuration of a point-to-point inter-site link (e.g. the FC/IP line
// between the main and backup storage arrays in Fig. 1 of the paper).
struct NetworkLinkConfig {
  // One-way propagation delay.
  SimDuration base_latency = Milliseconds(5);
  // Additional uniform jitter in [0, jitter).
  SimDuration jitter = 0;
  // Serialization bandwidth; 0 disables the bandwidth model.
  double bandwidth_bytes_per_sec = 1.25e9;  // ~10 Gbit/s.
  // Seed for the jitter/loss RNG.
  uint64_t seed = 7;
  // Independent per-message loss probability in [0, 1]: the sender sees a
  // successful send, the callback simply never fires (like an unacked
  // datagram eaten by a flaky line).
  double drop_probability = 0.0;
  // Fate of in-flight messages across a disconnect.
  PartitionPolicy partition_policy = PartitionPolicy::kDropInFlight;
};

// A unidirectional inter-site link with propagation delay, jitter, a
// serialization (bandwidth) model and real failure semantics. Messages are
// delivered by scheduling their callback on the simulation environment.
//
// Failure model: SetConnected(false) makes subsequent sends fail AND
// advances the link's delivery epoch, so messages already scheduled are
// dropped (or held, see PartitionPolicy) when their delivery event fires —
// a partition loses in-flight traffic even if the link heals first.
// Independently, `drop_probability` loses individual messages on an
// otherwise healthy link.
//
// The link multiplexes independent ordered CHANNELS (like TCP connections
// over one physical line): delivery is FIFO within a channel, but two
// channels may be reordered against each other by jitter — exactly the
// asynchrony that lets per-volume ADC streams diverge and collapse the
// backup (Section I), while a consistency group's single stream stays
// totally ordered.
class NetworkLink {
 public:
  NetworkLink(SimEnvironment* env, NetworkLinkConfig config,
              std::string name = "link");

  NetworkLink(const NetworkLink&) = delete;
  NetworkLink& operator=(const NetworkLink&) = delete;

  // Sends on the default channel (0).
  Status Send(uint64_t bytes, EventFn on_delivered) {
    return SendOnChannel(0, bytes, std::move(on_delivered));
  }

  // Queues a message of `bytes` on `channel`; `on_delivered` fires at the
  // arrival time. FIFO within the channel; fails with UNAVAILABLE when
  // disconnected. A successful send does NOT guarantee delivery: the
  // message may still be lost to `drop_probability` or to a partition
  // while in flight.
  Status SendOnChannel(uint64_t channel, uint64_t bytes,
                       EventFn on_delivered) {
    return SendOnChannel(channel, bytes, bytes, std::move(on_delivered));
  }

  // As above, but with distinct wire and logical sizes for compressed
  // traffic: `bytes` (the wire size) drives the serialization model and
  // `bytes_sent`, while `logical_bytes` only feeds the
  // `logical_bytes_sent` counter so pre- and post-compression accounting
  // stay separable.
  Status SendOnChannel(uint64_t channel, uint64_t bytes,
                       uint64_t logical_bytes, EventFn on_delivered);

  // Latest time a message of `bytes` sent now on `channel` could arrive
  // (wire occupancy + serialization + propagation + full jitter, floored
  // by the channel's FIFO ordering). With zero jitter this is exact;
  // callers use it as an ack-deadline bound.
  SimTime EstimateArrival(uint64_t bytes, uint64_t channel = 0) const;

  // Connects or partitions the link. Disconnecting bumps the delivery
  // epoch: in-flight messages are dropped (or held under
  // kDelayInFlight). Reconnecting re-delivers held messages in order.
  void SetConnected(bool connected);
  bool connected() const { return connected_; }

  // Registers a callback fired whenever the link transitions to connected.
  // The transfer scheduler uses this edge to re-arm groups that went quiet
  // while the link was down. Pass an empty function to detach.
  void SetReadyCallback(EventFn callback) {
    ready_callback_ = std::move(callback);
  }

  // Time at which the wire finishes serializing everything accepted so
  // far: a message sent now starts serializing at
  // max(now, wire_busy_until()). The scheduler paces demand-driven pumps
  // with this instead of blind timers.
  SimTime wire_busy_until() const { return wire_free_at_; }

  // Schedules `fn` for the instant the wire has drained its current
  // serialization backlog (immediately if it is idle). Purely a scheduling
  // convenience — the callback fires even if the link has partitioned in
  // the meantime, so callers must re-check connected().
  void NotifyWhenDrained(EventFn fn);

  // Forgets the FIFO ordering state of `channel`. Call when the channel's
  // user (e.g. a replication pair) is torn down, otherwise the per-channel
  // state grows for every channel ever used.
  void ReleaseChannel(uint64_t channel) { last_arrival_.erase(channel); }
  size_t tracked_channels() const { return last_arrival_.size(); }

  const NetworkLinkConfig& config() const { return config_; }
  void set_base_latency(SimDuration latency) {
    config_.base_latency = latency;
  }
  void set_drop_probability(double p) { config_.drop_probability = p; }

  uint64_t messages_sent() const { return messages_sent_; }
  // Bytes that actually crossed the wire (post-compression frame sizes).
  uint64_t bytes_sent() const { return bytes_sent_; }
  // Pre-compression bytes the wire traffic represents. Equal to
  // bytes_sent() for uncompressed senders.
  uint64_t logical_bytes_sent() const { return logical_bytes_sent_; }
  uint64_t send_failures() const { return send_failures_; }
  // Messages accepted by a send but never delivered (random loss plus
  // partition-killed in-flight traffic).
  uint64_t messages_dropped() const { return messages_dropped_; }

  // --- Observability ---------------------------------------------------------
  // Optional instruments mirroring the counters above into a registry,
  // plus link up/down transitions into a trace ring (subject = trace_id).
  // All hooks are inline pointer checks — the obs layer costs nothing when
  // detached, and sim needs no link edge to zb_obs either way.
  struct Instruments {
    obs::Counter* messages = nullptr;
    obs::Counter* wire_bytes = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* send_failures = nullptr;
  };
  void AttachObservability(const Instruments& instruments,
                           obs::TraceRing* trace, uint64_t trace_id) {
    instruments_ = instruments;
    trace_ = trace;
    trace_id_ = trace_id;
  }

 private:
  // A message held at a partition under kDelayInFlight.
  struct HeldMessage {
    uint64_t channel;
    EventFn fn;
  };

  // Delivery-time gate: drops/holds the message if the link partitioned
  // since it was sent.
  void Deliver(uint64_t send_epoch, uint64_t channel, EventFn fn);
  // Schedules `fn` on `channel` respecting the channel's FIFO floor.
  void ScheduleDelivery(SimTime arrival, uint64_t channel, EventFn fn);

  SimEnvironment* env_;
  NetworkLinkConfig config_;
  std::string name_;
  Rng rng_;
  bool connected_ = true;
  // Incremented on every disconnect; messages carry the epoch they were
  // sent in and are not delivered across an epoch boundary.
  uint64_t epoch_ = 0;

  // Serialization model: the wire is busy until this time (shared by all
  // channels — one physical line).
  SimTime wire_free_at_ = 0;
  // Per-channel in-order delivery: no message may arrive before the
  // previous one on the same channel. Entries are erased by
  // ReleaseChannel when the channel's owner goes away.
  std::unordered_map<uint64_t, SimTime> last_arrival_;
  // Messages stranded by a partition under kDelayInFlight, FIFO.
  std::deque<HeldMessage> held_;

  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t logical_bytes_sent_ = 0;
  uint64_t send_failures_ = 0;
  uint64_t messages_dropped_ = 0;

  Instruments instruments_;
  obs::TraceRing* trace_ = nullptr;
  uint64_t trace_id_ = 0;
  EventFn ready_callback_;
};

}  // namespace zerobak::sim

#endif  // ZEROBAK_SIM_NETWORK_H_
