#include "sim/environment.h"

#include <utility>

#include "common/logging.h"

namespace zerobak::sim {

EventId SimEnvironment::Schedule(SimDuration delay, EventFn fn) {
  ZB_CHECK(delay >= 0) << "negative delay " << delay;
  return queue_.Push(now_ + delay, std::move(fn));
}

EventId SimEnvironment::ScheduleAt(SimTime t, EventFn fn) {
  ZB_CHECK(t >= now_) << "scheduling in the past: " << t << " < " << now_;
  return queue_.Push(t, std::move(fn));
}

bool SimEnvironment::RunOne() {
  if (queue_.empty()) return false;
  auto ev = queue_.Pop();
  if (!ev.fn) return false;
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

size_t SimEnvironment::RunUntil(SimTime t) {
  ZB_CHECK(t >= now_);
  size_t n = 0;
  while (!queue_.empty() && queue_.NextTime() <= t) {
    if (!RunOne()) break;
    ++n;
  }
  now_ = t;
  return n;
}

size_t SimEnvironment::RunUntilIdle(size_t max_events) {
  size_t n = 0;
  while (!queue_.empty()) {
    if (!RunOne()) break;
    ++n;
    if (max_events != 0 && n >= max_events) break;
  }
  return n;
}

PeriodicTask::PeriodicTask(SimEnvironment* env, SimDuration interval,
                           std::function<void()> fn)
    : env_(env), interval_(interval), fn_(std::move(fn)) {
  ZB_CHECK(interval_ > 0);
}

void PeriodicTask::Start() {
  if (running_) return;
  running_ = true;
  pending_ = env_->Schedule(interval_, [this] { Fire(); });
}

void PeriodicTask::Stop() {
  if (!running_) return;
  running_ = false;
  env_->Cancel(pending_);
  pending_ = EventId{};
}

void PeriodicTask::Fire() {
  if (!running_) return;
  // Reschedule before running so `fn_` may Stop() the task.
  pending_ = env_->Schedule(interval_, [this] { Fire(); });
  fn_();
}

}  // namespace zerobak::sim
