#ifndef ZEROBAK_SIM_ENVIRONMENT_H_
#define ZEROBAK_SIM_ENVIRONMENT_H_

#include <cstdint>
#include <functional>

#include "common/time.h"
#include "sim/event_queue.h"

namespace zerobak::sim {

// The discrete-event simulation environment: a virtual clock plus an event
// queue. Every asynchronous completion in the system (device IO, network
// delivery, journal transfer, controller reconciles) is an event scheduled
// here, which makes whole-system experiments deterministic and allows
// simulating hours of wall time in milliseconds.
class SimEnvironment {
 public:
  SimEnvironment() = default;
  SimEnvironment(const SimEnvironment&) = delete;
  SimEnvironment& operator=(const SimEnvironment&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run `delay` from now (delay >= 0).
  EventId Schedule(SimDuration delay, EventFn fn);

  // Schedules `fn` at absolute time `t` (>= now()).
  EventId ScheduleAt(SimTime t, EventFn fn);

  // Cancels a pending event; returns true if it had not yet fired.
  bool Cancel(EventId id) { return queue_.Cancel(id); }

  // Runs the next event, advancing the clock to its time. Returns false if
  // no events are pending.
  bool RunOne();

  // Runs all events with time <= t, then advances the clock to exactly t.
  // Returns the number of events executed.
  size_t RunUntil(SimTime t);

  // Runs for `d` of simulated time from now().
  size_t RunFor(SimDuration d) { return RunUntil(now_ + d); }

  // Runs until no events remain. `max_events` guards against runaway
  // self-rescheduling loops (0 means unlimited).
  size_t RunUntilIdle(size_t max_events = 0);

  size_t pending_events() const { return queue_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  SimTime now_ = 0;
  uint64_t executed_ = 0;
  EventQueue queue_;
};

// Repeating task helper: reschedules itself every `interval` until
// Stop()ped. Used for background engines (journal transfer, controller
// resync loops).
class PeriodicTask {
 public:
  PeriodicTask(SimEnvironment* env, SimDuration interval,
               std::function<void()> fn);
  ~PeriodicTask() { Stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Start();
  void Stop();
  bool running() const { return running_; }
  SimDuration interval() const { return interval_; }

 private:
  void Fire();

  SimEnvironment* env_;
  SimDuration interval_;
  std::function<void()> fn_;
  EventId pending_{};
  bool running_ = false;
};

}  // namespace zerobak::sim

#endif  // ZEROBAK_SIM_ENVIRONMENT_H_
