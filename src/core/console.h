#ifndef ZEROBAK_CORE_CONSOLE_H_
#define ZEROBAK_CORE_CONSOLE_H_

#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/demo_system.h"
#include "db/minidb.h"
#include "storage/array_device.h"
#include "workload/ecommerce.h"

namespace zerobak::core {

// A scriptable operations console over the demonstration system — the
// stand-in for the OpenShift web consoles the paper's users operate
// (Fig. 2). Every demo action is one command:
//
//   deploy <ns>                     create the business process
//   order <ns> <count>              place orders
//   run <ms>                        advance simulated time
//   tag <ns> | untag <ns>           demo step 1 (Figs. 3-4)
//   status <ns>                     replication health
//   snapshot <ns> <group>           demo step 2 (Fig. 5)
//   schedule <ns> <name> <ms> <n>   recurring snapshots, retain n
//   analytics <ns> <group>          demo step 3 (Fig. 6)
//   verify <ns> <group>             restorability check
//   verify-latest <ns> <schedule>
//   fail-main | repair-main         disaster injection
//   failover <ns>                   DR takeover
//   failback <ns> [force]           giveback
//   check <ns>                      recover backup DBs + consistency
//   help
//
// Lines starting with '#' and blank lines are ignored, so whole demo
// scripts can be replayed (see examples/console_demo.cpp).
class Console {
 public:
  Console(DemoSystem* system, std::ostream* out);

  Console(const Console&) = delete;
  Console& operator=(const Console&) = delete;

  // Executes one command line. Unknown commands and bad arguments return
  // INVALID_ARGUMENT; operational failures return the underlying status.
  Status Execute(const std::string& line);

  // Executes a multi-line script, stopping at the first failure.
  Status ExecuteScript(const std::string& script);

  uint64_t commands_executed() const { return commands_executed_; }

  // Splits a command line into whitespace-separated tokens.
  static std::vector<std::string> Tokenize(const std::string& line);

 private:
  // The business process state the console manages per namespace.
  struct Business {
    std::unique_ptr<storage::ArrayVolumeDevice> sales_dev;
    std::unique_ptr<storage::ArrayVolumeDevice> stock_dev;
    std::unique_ptr<db::MiniDb> sales_db;
    std::unique_ptr<db::MiniDb> stock_db;
    std::unique_ptr<workload::EcommerceApp> app;
  };

  Status Deploy(const std::string& ns);
  Status Order(const std::string& ns, int count);
  Status PrintStatus(const std::string& ns);
  Status Analytics(const std::string& ns, const std::string& group);
  Status CheckBackup(const std::string& ns);

  static db::DbOptions DbOpts();

  DemoSystem* system_;
  std::ostream* out_;
  std::map<std::string, Business> businesses_;
  uint64_t commands_executed_ = 0;
};

}  // namespace zerobak::core

#endif  // ZEROBAK_CORE_CONSOLE_H_
