#ifndef ZEROBAK_CORE_RESTORE_H_
#define ZEROBAK_CORE_RESTORE_H_

#include <string>

#include "common/status.h"
#include "core/demo_system.h"

namespace zerobak::core {

// Point-in-time restore: rolls the namespace's backup volumes back to a
// snapshot group's image. This is the recovery path for logical damage —
// the replicated image faithfully mirrors a ransomware scribble or a bad
// deployment, so after the takeover the operator rewinds to the last
// good scheduled backup instead.
struct RestoreReport {
  uint64_t volumes_restored = 0;
  uint64_t blocks_rewritten = 0;
};

// Restores every business PVC of the namespace (sales-db, stock-db) from
// the named snapshot group on the backup site.
//
// Precondition: the namespace must be failed over (FAILED_PRECONDITION
// otherwise) — rewinding volumes that the replication applier is still
// writing would immediately diverge again.
StatusOr<RestoreReport> RestoreNamespaceFromGroup(
    DemoSystem* system, const std::string& ns,
    const std::string& group_name);

}  // namespace zerobak::core

#endif  // ZEROBAK_CORE_RESTORE_H_
