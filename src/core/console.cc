#include "core/console.h"

#include <sstream>
#include <utility>

#include "core/inspect.h"
#include "core/restore.h"
#include "core/verify.h"
#include "workload/analytics.h"
#include "workload/invariants.h"

namespace zerobak::core {

namespace {

constexpr char kHelpText[] =
    "commands:\n"
    "  deploy <ns>                     create namespace, PVCs, databases\n"
    "  order <ns> <count>              place business orders\n"
    "  run <ms>                        advance simulated time\n"
    "  tag <ns> / untag <ns>           configure / remove backup\n"
    "  status <ns>                     replication health\n"
    "  snapshot <ns> <group>           snapshot group on backup site\n"
    "  schedule <ns> <name> <ms> <n>   recurring snapshots, retain n\n"
    "  analytics <ns> <group>          run analytics on a snapshot\n"
    "  verify <ns> <group>             verify a backup is restorable\n"
    "  verify-latest <ns> <schedule>   verify newest scheduled backup\n"
    "  fail-main / repair-main         disaster injection\n"
    "  failover <ns> / failback <ns> [force]\n"
    "  restore <ns> <group>            rewind backup volumes to a snapshot\n"
    "  check <ns>                      recover backup DBs, check consistency\n"
    "  inspect                         dump the whole system state\n"
    "  metrics                         metric registry + RPO/RTO tracker\n"
    "  metrics-json                    same data as one JSON object\n"
    "  scrub                           at-rest integrity scrub status\n"
    "  trace [n]                       newest n trace events (default 20)\n"
    "  help\n";

}  // namespace

Console::Console(DemoSystem* system, std::ostream* out)
    : system_(system), out_(out) {}

db::DbOptions Console::DbOpts() {
  db::DbOptions opts;
  opts.checkpoint_blocks = 256;
  opts.wal_blocks = 1024;
  return opts;
}

std::vector<std::string> Console::Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

Status Console::ExecuteScript(const std::string& script) {
  std::istringstream in(script);
  std::string line;
  while (std::getline(in, line)) {
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    ZB_RETURN_IF_ERROR(Execute(line));
  }
  return OkStatus();
}

Status Console::Execute(const std::string& line) {
  const std::vector<std::string> args = Tokenize(line);
  if (args.empty()) return OkStatus();
  const std::string& cmd = args[0];
  ++commands_executed_;

  auto need = [&](size_t n) -> Status {
    if (args.size() < n + 1) {
      return InvalidArgumentError(cmd + ": expected " + std::to_string(n) +
                                  " argument(s); try 'help'");
    }
    return OkStatus();
  };

  if (cmd == "help") {
    *out_ << kHelpText;
    return OkStatus();
  }
  if (cmd == "inspect") {
    *out_ << DescribeSystem(system_);
    return OkStatus();
  }
  if (cmd == "metrics") {
    *out_ << DescribeObservability(system_);
    return OkStatus();
  }
  if (cmd == "metrics-json") {
    *out_ << ObservabilityJson(system_) << "\n";
    return OkStatus();
  }
  if (cmd == "scrub") {
    const replication::Scrubber* scrub = system_->replication()->scrubber();
    if (scrub == nullptr) {
      *out_ << "scrubbing disabled\n";
      return OkStatus();
    }
    const replication::ScrubConfig& cfg = scrub->config();
    const replication::ScrubStats& st = scrub->stats();
    *out_ << "scrub: " << (scrub->cycle_active() ? "scanning" : "idle")
          << " extent=" << cfg.extent_blocks << " blocks, "
          << cfg.max_extents_per_step << " extents/step, repair="
          << (cfg.repair ? "on" : "off") << "\n"
          << "  cycles=" << st.cycles_completed
          << " extents=" << st.extents_scanned
          << " blocks=" << st.blocks_scanned << "\n"
          << "  checksum_mismatches=" << st.checksum_mismatches
          << " media_errors=" << st.media_errors
          << " divergent=" << st.divergent_extents << "\n"
          << "  repairs_scheduled=" << st.repairs_scheduled
          << " primary_restores=" << st.primary_restores
          << " deferred=" << st.deferred_repairs
          << " unrecoverable=" << st.unrecoverable_extents << "\n";
    return OkStatus();
  }
  if (cmd == "trace") {
    size_t n = 20;
    if (args.size() > 1) {
      const long v = std::atol(args[1].c_str());
      if (v <= 0) return InvalidArgumentError("trace: bad count");
      n = static_cast<size_t>(v);
    }
    *out_ << system_->trace()->ToString(n);
    return OkStatus();
  }
  if (cmd == "deploy") {
    ZB_RETURN_IF_ERROR(need(1));
    return Deploy(args[1]);
  }
  if (cmd == "order") {
    ZB_RETURN_IF_ERROR(need(2));
    return Order(args[1], std::atoi(args[2].c_str()));
  }
  if (cmd == "run") {
    ZB_RETURN_IF_ERROR(need(1));
    const long ms = std::atol(args[1].c_str());
    if (ms <= 0) return InvalidArgumentError("run: bad duration");
    system_->env()->RunFor(Milliseconds(ms));
    *out_ << "t=" << FormatDuration(system_->env()->now()) << "\n";
    return OkStatus();
  }
  if (cmd == "tag") {
    ZB_RETURN_IF_ERROR(need(1));
    ZB_RETURN_IF_ERROR(system_->TagNamespaceForBackup(args[1]));
    ZB_RETURN_IF_ERROR(system_->WaitForBackupConfigured(args[1]));
    *out_ << "namespace " << args[1]
          << " protected (ADC + consistency group)\n";
    return OkStatus();
  }
  if (cmd == "untag") {
    ZB_RETURN_IF_ERROR(need(1));
    ZB_RETURN_IF_ERROR(system_->UntagNamespace(args[1]));
    system_->env()->RunFor(Milliseconds(100));
    *out_ << "namespace " << args[1] << " unprotected\n";
    return OkStatus();
  }
  if (cmd == "status") {
    ZB_RETURN_IF_ERROR(need(1));
    return PrintStatus(args[1]);
  }
  if (cmd == "snapshot") {
    ZB_RETURN_IF_ERROR(need(2));
    ZB_RETURN_IF_ERROR(system_->CreateSnapshotGroupCr(args[1], args[2]));
    ZB_RETURN_IF_ERROR(system_->WaitForSnapshotGroup(args[1], args[2]));
    *out_ << "snapshot group " << args[2] << " ready\n";
    return OkStatus();
  }
  if (cmd == "schedule") {
    ZB_RETURN_IF_ERROR(need(4));
    const long ms = std::atol(args[3].c_str());
    const long retain = std::atol(args[4].c_str());
    if (ms <= 0 || retain <= 0) {
      return InvalidArgumentError("schedule: bad interval/retain");
    }
    ZB_RETURN_IF_ERROR(system_->CreateSnapshotSchedule(
        args[1], args[2], Milliseconds(ms), retain));
    *out_ << "schedule " << args[2] << " every " << ms << "ms retain "
          << retain << "\n";
    return OkStatus();
  }
  if (cmd == "analytics") {
    ZB_RETURN_IF_ERROR(need(2));
    return Analytics(args[1], args[2]);
  }
  if (cmd == "verify" || cmd == "verify-latest") {
    ZB_RETURN_IF_ERROR(need(2));
    auto report = cmd == "verify"
                      ? VerifySnapshotGroup(system_, args[1], args[2])
                      : VerifyLatestScheduled(system_, args[1], args[2]);
    if (!report.ok()) return report.status();
    *out_ << report->ToString() << "\n";
    return report->passed()
               ? OkStatus()
               : DataLossError("backup verification failed");
  }
  if (cmd == "fail-main") {
    system_->FailMainSite();
    *out_ << "MAIN SITE FAILED (array down, links cut)\n";
    return OkStatus();
  }
  if (cmd == "repair-main") {
    system_->RepairMainSite();
    *out_ << "main site repaired\n";
    return OkStatus();
  }
  if (cmd == "failover") {
    ZB_RETURN_IF_ERROR(need(1));
    auto report = system_->Failover(args[1]);
    if (!report.ok()) return report.status();
    *out_ << "failover complete: lost " << report->lost_records
          << " in-flight records\n";
    return OkStatus();
  }
  if (cmd == "failback") {
    ZB_RETURN_IF_ERROR(need(1));
    const bool force = args.size() > 2 && args[2] == "force";
    auto report = system_->Failback(args[1], force);
    if (!report.ok()) return report.status();
    *out_ << "failback complete: shipped " << report->blocks_shipped
          << " blocks";
    if (report->conflicts_overwritten > 0) {
      *out_ << " (" << report->conflicts_overwritten
            << " conflicts, backup won)";
    }
    *out_ << "\n";
    return OkStatus();
  }
  if (cmd == "restore") {
    ZB_RETURN_IF_ERROR(need(2));
    auto report = RestoreNamespaceFromGroup(system_, args[1], args[2]);
    if (!report.ok()) return report.status();
    *out_ << "restored " << report->volumes_restored << " volumes from "
          << args[2] << " (" << report->blocks_rewritten
          << " blocks rewritten)\n";
    return OkStatus();
  }
  if (cmd == "check") {
    ZB_RETURN_IF_ERROR(need(1));
    return CheckBackup(args[1]);
  }
  return InvalidArgumentError("unknown command '" + cmd +
                              "'; try 'help'");
}

Status Console::Deploy(const std::string& ns) {
  if (businesses_.contains(ns)) {
    return AlreadyExistsError("namespace " + ns + " already deployed");
  }
  ZB_RETURN_IF_ERROR(system_->CreateBusinessNamespace(ns));
  ZB_RETURN_IF_ERROR(system_->CreatePvc(ns, "sales-db", 8 << 20));
  ZB_RETURN_IF_ERROR(system_->CreatePvc(ns, "stock-db", 8 << 20));
  system_->env()->RunFor(Milliseconds(10));

  Business business;
  ZB_ASSIGN_OR_RETURN(storage::VolumeId sales_vol,
                      system_->ResolveMainVolume(ns, "sales-db"));
  ZB_ASSIGN_OR_RETURN(storage::VolumeId stock_vol,
                      system_->ResolveMainVolume(ns, "stock-db"));
  business.sales_dev = std::make_unique<storage::ArrayVolumeDevice>(
      system_->main_site()->array(), sales_vol);
  business.stock_dev = std::make_unique<storage::ArrayVolumeDevice>(
      system_->main_site()->array(), stock_vol);
  ZB_RETURN_IF_ERROR(db::MiniDb::Format(business.sales_dev.get(), DbOpts()));
  ZB_RETURN_IF_ERROR(db::MiniDb::Format(business.stock_dev.get(), DbOpts()));
  ZB_ASSIGN_OR_RETURN(business.sales_db,
                      db::MiniDb::Open(business.sales_dev.get(), DbOpts()));
  ZB_ASSIGN_OR_RETURN(business.stock_db,
                      db::MiniDb::Open(business.stock_dev.get(), DbOpts()));
  business.app = std::make_unique<workload::EcommerceApp>(
      business.sales_db.get(), business.stock_db.get());
  ZB_RETURN_IF_ERROR(business.app->InitializeCatalog());
  businesses_.emplace(ns, std::move(business));
  *out_ << "deployed " << ns
        << ": 2 PVCs bound, databases formatted, catalog loaded\n";
  return OkStatus();
}

Status Console::Order(const std::string& ns, int count) {
  auto it = businesses_.find(ns);
  if (it == businesses_.end()) {
    return NotFoundError("namespace " + ns + " is not deployed here");
  }
  if (count <= 0) return InvalidArgumentError("order: bad count");
  for (int i = 0; i < count; ++i) {
    ZB_RETURN_IF_ERROR(it->second.app->PlaceOrder().status());
    system_->env()->RunFor(Microseconds(200));
  }
  *out_ << count << " orders placed (total "
        << it->second.app->orders_placed() << ")\n";
  return OkStatus();
}

Status Console::PrintStatus(const std::string& ns) {
  auto groups = system_->ReplicationGroupsOf(ns);
  if (!groups.ok()) {
    *out_ << ns << ": not protected\n";
    return OkStatus();
  }
  for (replication::GroupId gid : *groups) {
    auto stats = system_->replication()->GetGroupStats(gid);
    if (!stats.ok()) continue;
    auto name = system_->replication()->GetGroupName(gid);
    *out_ << ns << ": group " << (name.ok() ? *name : "?") << " written="
          << stats->written << " shipped=" << stats->shipped
          << " applied=" << stats->applied
          << " lag=" << FormatDuration(stats->apply_lag)
          << " journal=" << stats->journal_used_bytes << "B";
    if (stats->journal_overflows > 0) {
      *out_ << " OVERFLOWS=" << stats->journal_overflows;
    }
    *out_ << "\n";
    for (replication::PairId pid :
         system_->replication()->ListGroupPairs(gid)) {
      const replication::Pair* pair = system_->replication()->GetPair(pid);
      if (pair == nullptr) continue;
      *out_ << "  pair " << pair->config().name << " ["
            << PairStateName(pair->state()) << "]\n";
    }
  }
  return OkStatus();
}

Status Console::Analytics(const std::string& ns, const std::string& group) {
  ZB_ASSIGN_OR_RETURN(snapshot::CowSnapshot * sales_snap,
                      system_->ResolveSnapshot(ns, group, "sales-db"));
  db::DbOptions opts = DbOpts();
  opts.read_only = true;
  ZB_ASSIGN_OR_RETURN(auto sales_db, db::MiniDb::Open(sales_snap, opts));
  auto summary = workload::SummarizeSales(sales_db.get());
  *out_ << "analytics on " << group << ": orders=" << summary.order_count
        << " revenue=$" << summary.revenue_cents / 100 << "."
        << (summary.revenue_cents % 100 < 10 ? "0" : "")
        << summary.revenue_cents % 100 << "\n";
  for (const auto& item : workload::TopItems(sales_db.get(), 3)) {
    *out_ << "  " << item.item << " orders=" << item.orders << "\n";
  }
  return OkStatus();
}

Status Console::CheckBackup(const std::string& ns) {
  ZB_ASSIGN_OR_RETURN(storage::VolumeId sales_vol,
                      system_->ResolveBackupVolume(ns, "sales-db"));
  ZB_ASSIGN_OR_RETURN(storage::VolumeId stock_vol,
                      system_->ResolveBackupVolume(ns, "stock-db"));
  storage::ArrayVolumeDevice sales_dev(system_->backup_site()->array(),
                                       sales_vol);
  storage::ArrayVolumeDevice stock_dev(system_->backup_site()->array(),
                                       stock_vol);
  db::DbOptions opts = DbOpts();
  opts.read_only = true;
  ZB_ASSIGN_OR_RETURN(auto sales_db, db::MiniDb::Open(&sales_dev, opts));
  ZB_ASSIGN_OR_RETURN(auto stock_db, db::MiniDb::Open(&stock_dev, opts));
  auto report = workload::CheckConsistency(sales_db.get(), stock_db.get());
  *out_ << ns << " backup image: " << report.ToString() << "\n";
  return report.collapsed() ? DataLossError("backup image collapsed")
                            : OkStatus();
}

}  // namespace zerobak::core
