#include "core/verify.h"

#include <cstdio>

#include "db/minidb.h"
#include "workload/ecommerce.h"

namespace zerobak::core {

std::string VerificationReport::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "group=%s recovered=%s orders=%llu movements=%llu "
                "business=%s => %s",
                group_name.c_str(), databases_recovered ? "yes" : "NO",
                static_cast<unsigned long long>(orders),
                static_cast<unsigned long long>(stock_movements),
                business.collapsed() ? "COLLAPSED" : "consistent",
                passed() ? "PASS" : "FAIL");
  return buf;
}

StatusOr<VerificationReport> VerifySnapshotGroup(
    DemoSystem* system, const std::string& ns,
    const std::string& group_name) {
  VerificationReport report;
  report.group_name = group_name;

  ZB_ASSIGN_OR_RETURN(snapshot::CowSnapshot * sales_snap,
                      system->ResolveSnapshot(ns, group_name, "sales-db"));
  ZB_ASSIGN_OR_RETURN(snapshot::CowSnapshot * stock_snap,
                      system->ResolveSnapshot(ns, group_name, "stock-db"));
  report.snapshot_time = sales_snap->created_at();

  // A verification must not disturb the snapshot: open read-only (any
  // recovery writes would be rejected; our recovery never writes).
  db::DbOptions opts;
  opts.checkpoint_blocks = 256;
  opts.wal_blocks = 1024;
  opts.read_only = true;
  auto sales = db::MiniDb::Open(sales_snap, opts);
  auto stock = db::MiniDb::Open(stock_snap, opts);
  if (!sales.ok() || !stock.ok()) {
    report.databases_recovered = false;
    return report;
  }
  report.databases_recovered = true;
  report.orders = (*sales)->RowCount(workload::kOrderTable);
  report.stock_movements = (*stock)->RowCount(workload::kMovementTable);
  report.business =
      workload::CheckConsistency(sales->get(), stock->get());
  return report;
}

StatusOr<VerificationReport> VerifyLatestScheduled(
    DemoSystem* system, const std::string& ns,
    const std::string& schedule_name) {
  // Newest Ready group carrying the schedule label.
  const container::Resource* newest = nullptr;
  int64_t newest_generation = -1;
  auto groups = system->backup_site()->api()->List(
      container::kKindVolumeSnapshotGroup, ns);
  const std::string prefix = schedule_name + "-g";
  for (const container::Resource& vsg : groups) {
    if (vsg.GetLabel("backup.zerobak.io/schedule") != schedule_name) {
      continue;
    }
    if (vsg.StatusPhase() != "Ready") continue;
    int64_t generation = 0;
    if (vsg.name.compare(0, prefix.size(), prefix) == 0) {
      generation = static_cast<int64_t>(
          std::strtoll(vsg.name.c_str() + prefix.size(), nullptr, 10));
    }
    if (generation > newest_generation) {
      newest_generation = generation;
      newest = &vsg;
    }
  }
  if (newest == nullptr) {
    return NotFoundError("schedule " + schedule_name +
                         " has no ready snapshot group in " + ns);
  }
  return VerifySnapshotGroup(system, ns, newest->name);
}

}  // namespace zerobak::core
