#ifndef ZEROBAK_CORE_SITE_H_
#define ZEROBAK_CORE_SITE_H_

#include <string>

#include "container/cluster.h"
#include "sim/environment.h"
#include "snapshot/snapshot.h"
#include "storage/array.h"

namespace zerobak::core {

// One site of the demonstration system (Fig. 1): a container platform
// plus an external storage system with its snapshot feature.
class Site {
 public:
  Site(sim::SimEnvironment* env, const std::string& name,
       storage::ArrayConfig array_config)
      : cluster_(env, name),
        array_(env, std::move(array_config)),
        snapshots_(&array_) {}

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  const std::string& name() const { return cluster_.name(); }
  container::Cluster* cluster() { return &cluster_; }
  container::ApiServer* api() { return cluster_.api(); }
  storage::StorageArray* array() { return &array_; }
  snapshot::SnapshotManager* snapshots() { return &snapshots_; }

 private:
  container::Cluster cluster_;
  storage::StorageArray array_;
  snapshot::SnapshotManager snapshots_;
};

}  // namespace zerobak::core

#endif  // ZEROBAK_CORE_SITE_H_
