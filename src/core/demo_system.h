#ifndef ZEROBAK_CORE_DEMO_SYSTEM_H_
#define ZEROBAK_CORE_DEMO_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/site.h"
#include "csi/provisioner.h"
#include "csi/replication_controller.h"
#include "csi/schedule_controller.h"
#include "csi/snapshot_controller.h"
#include "nso/namespace_operator.h"
#include "obs/metrics.h"
#include "obs/rpo.h"
#include "obs/trace.h"
#include "replication/replication.h"
#include "replication/scrubber.h"
#include "sim/network.h"

namespace zerobak::core {

struct DemoSystemConfig {
  storage::ArrayConfig main_array{.serial = "G370-MAIN", .media = {}};
  storage::ArrayConfig backup_array{.serial = "G370-BKUP", .media = {}};
  sim::NetworkLinkConfig link;
  nso::NamespaceOperatorConfig nso;
  // Controller resync interval (the level-triggered safety net).
  SimDuration resync_interval = Milliseconds(50);
  std::string storage_class = "zerobak-fast";
  // Continuous RPO sampling cadence; 0 leaves the tracker stopped (the
  // instruments stay attached either way).
  SimDuration rpo_sample_interval = Milliseconds(10);
  // Passed through to the replication engine (event-driven scheduler on
  // by default; flip off only for A/B comparisons against the legacy
  // per-group timers).
  replication::EngineOptions engine;
  // Background at-rest integrity scrubbing (DESIGN.md §4c). Off by
  // default: scrub is a robustness feature the demos opt into, and
  // leaving it off keeps scenarios that predate it bit-identical.
  bool enable_scrub = false;
  replication::ScrubConfig scrub;
};

// The complete demonstration system of Section IV: a main site and a
// backup site (container platform + storage array each), the inter-array
// replication links, the namespace operator and the storage plugins —
// wired exactly like Fig. 1. The public methods correspond to the actions
// a user performs on the web consoles.
class DemoSystem {
 public:
  DemoSystem(sim::SimEnvironment* env, DemoSystemConfig config = {});

  DemoSystem(const DemoSystem&) = delete;
  DemoSystem& operator=(const DemoSystem&) = delete;

  sim::SimEnvironment* env() { return env_; }
  Site* main_site() { return main_site_.get(); }
  Site* backup_site() { return backup_site_.get(); }
  replication::ReplicationEngine* replication() { return engine_.get(); }
  sim::NetworkLink* link_to_backup() { return to_backup_.get(); }
  sim::NetworkLink* link_to_main() { return to_main_.get(); }
  nso::NamespaceOperator* namespace_operator() { return nso_; }

  // --- Observability ---------------------------------------------------------
  // The system-wide metric registry, trace ring and RPO/RTO tracker; the
  // engine, both journals of every group and both links feed them.
  obs::MetricRegistry* metrics() { return metrics_.get(); }
  obs::TraceRing* trace() { return trace_.get(); }
  obs::RpoTracker* rpo_tracker() { return rpo_tracker_.get(); }
  // Trace subject ids of the inter-site links (kLinkUp/kLinkDown events).
  static constexpr uint64_t kTraceIdLinkToBackup = 1;
  static constexpr uint64_t kTraceIdLinkToMain = 2;

  // --- Deploying the business process (Section II) --------------------------
  Status CreateBusinessNamespace(const std::string& ns);
  // Creates a PVC in the namespace; the provisioner binds it.
  Status CreatePvc(const std::string& ns, const std::string& pvc_name,
                   uint64_t capacity_bytes);

  // --- Demo step 1: backup configuration (Figs. 3-4) -------------------------
  // The single user action: tag the namespace. The namespace operator
  // does everything else.
  Status TagNamespaceForBackup(const std::string& ns);
  Status UntagNamespace(const std::string& ns);

  // True once the VRG reports Replicating, every PVC of the namespace has
  // a pair, and all initial copies finished.
  bool BackupConfigured(const std::string& ns);
  // Pumps the simulation until BackupConfigured or the timeout elapses.
  Status WaitForBackupConfigured(const std::string& ns,
                                 SimDuration timeout = Seconds(30));
  // The consistency group protecting the namespace (the first one, in the
  // paper's configuration the only one).
  StatusOr<replication::GroupId> ReplicationGroupOf(const std::string& ns);
  // All groups protecting the namespace (one per volume in the perVolume
  // ablation).
  StatusOr<std::vector<replication::GroupId>> ReplicationGroupsOf(
      const std::string& ns);

  // --- Demo step 2: snapshot development (Fig. 5) ---------------------------
  // Creates a VolumeSnapshotGroup CR on the backup cluster covering every
  // replicated PVC of the namespace.
  Status CreateSnapshotGroupCr(const std::string& ns,
                               const std::string& group_name);
  // Declares a recurring snapshot policy on the backup cluster: every
  // `interval`, a snapshot group of the namespace's PVCs is taken and at
  // most `retain` generations are kept.
  Status CreateSnapshotSchedule(const std::string& ns,
                                const std::string& schedule_name,
                                SimDuration interval, int64_t retain);
  bool SnapshotGroupReady(const std::string& ns,
                          const std::string& group_name);
  Status WaitForSnapshotGroup(const std::string& ns,
                              const std::string& group_name,
                              SimDuration timeout = Seconds(30));

  // --- Volume resolution (for opening databases) -----------------------------
  StatusOr<storage::VolumeId> ResolveMainVolume(const std::string& ns,
                                                const std::string& pvc_name);
  StatusOr<storage::VolumeId> ResolveBackupVolume(
      const std::string& ns, const std::string& pvc_name);
  // The snapshot of a PVC's backup volume within a snapshot group.
  StatusOr<snapshot::CowSnapshot*> ResolveSnapshot(
      const std::string& ns, const std::string& group_name,
      const std::string& pvc_name);

  // --- Disaster recovery -----------------------------------------------------
  // Main site disaster: the array fails and the inter-site links drop.
  void FailMainSite();
  // Takes over the namespace's replication group(s) on the backup site.
  // With multiple groups (perVolume ablation) the report aggregates:
  // lost_records are summed and recovery_point_time is the oldest group's.
  StatusOr<replication::FailoverReport> Failover(const std::string& ns);

  // Repairs the main site (clears the array failure, reconnects links).
  void RepairMainSite();

  // Gives the namespace back to the repaired main site: ships the
  // backup-side delta, re-protects the backup volumes, resumes forward
  // replication. See ReplicationEngine::FailbackGroup for semantics.
  StatusOr<replication::FailbackReport> Failback(const std::string& ns,
                                                 bool force = false);

 private:
  sim::SimEnvironment* env_;
  DemoSystemConfig config_;
  std::unique_ptr<Site> main_site_;
  std::unique_ptr<Site> backup_site_;
  std::unique_ptr<sim::NetworkLink> to_backup_;
  std::unique_ptr<sim::NetworkLink> to_main_;
  std::unique_ptr<replication::ReplicationEngine> engine_;
  std::unique_ptr<obs::MetricRegistry> metrics_;
  std::unique_ptr<obs::TraceRing> trace_;
  std::unique_ptr<obs::RpoTracker> rpo_tracker_;
  nso::NamespaceOperator* nso_ = nullptr;  // Owned by the cluster manager.
};

}  // namespace zerobak::core

#endif  // ZEROBAK_CORE_DEMO_SYSTEM_H_
