#include "core/inspect.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <sstream>

namespace zerobak::core {

namespace {

void AppendLine(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
  out->push_back('\n');
}

}  // namespace

std::string DescribeSite(Site* site) {
  std::string out;
  AppendLine(&out, "site %s", site->name().c_str());

  // Cluster: object counts per kind.
  AppendLine(&out, "  cluster objects:");
  static const char* kKinds[] = {
      container::kKindNamespace,
      container::kKindPersistentVolumeClaim,
      container::kKindPersistentVolume,
      container::kKindStorageClass,
      container::kKindVolumeReplicationGroup,
      container::kKindVolumeSnapshotGroup,
      container::kKindVolumeSnapshot,
      container::kKindSnapshotSchedule,
  };
  for (const char* kind : kKinds) {
    const size_t n = site->api()->List(kind).size();
    if (n > 0) AppendLine(&out, "    %-26s %zu", kind, n);
  }

  // Array: volumes + journals + host IO.
  storage::StorageArray* array = site->array();
  AppendLine(&out, "  array %s%s: %zu volumes, %zu journals",
             array->serial().c_str(), array->failed() ? " [FAILED]" : "",
             array->volume_count(), array->ListJournals().size());
  for (storage::VolumeId id : array->ListVolumes()) {
    const storage::Volume* vol = array->GetVolume(id);
    AppendLine(&out, "    vol %-3" PRIu64 " %-24s %8" PRIu64
                     " blocks (%" PRIu64 " allocated)%s",
               id, vol->name().c_str(), vol->block_count(),
               vol->store().allocated_blocks(),
               array->HasInterceptor(id) ? " [replicated]" : "");
    const block::MemVolume& store = vol->store();
    if (store.blocks_verified() > 0 || store.media_errors() > 0 ||
        store.checksum_failures() > 0 || store.bit_flips() > 0) {
      AppendLine(&out,
                 "        integrity: scrubbed=%" PRIu64 " media_err=%" PRIu64
                 " crc_fail=%" PRIu64 " bit_flips=%" PRIu64,
                 store.blocks_verified(), store.media_errors(),
                 store.checksum_failures(), store.bit_flips());
    }
  }
  for (storage::PoolId pid : array->ListPools()) {
    const storage::StoragePool* pool = array->GetPool(pid);
    AppendLine(&out,
               "    pool %-3" PRIu64 " %-20s used=%" PRIu64 "/%" PRIu64
               " blocks%s",
               pid, pool->name().c_str(), pool->used_blocks(),
               pool->capacity_blocks(),
               pool->allocation_failures() > 0 ? " [EXHAUSTED]" : "");
  }
  for (storage::JournalId jid : array->ListJournals()) {
    const journal::JournalVolume* jnl =
        const_cast<storage::StorageArray*>(array)->GetJournal(jid);
    AppendLine(&out,
               "    jnl %-3" PRIu64 " used=%" PRIu64 "B/%" PRIu64
               "B written=%" PRIu64 " applied=%" PRIu64 "%s",
               jid, jnl->used_bytes(), jnl->capacity_bytes(),
               jnl->written(), jnl->applied(),
               jnl->overflows() > 0 ? " [OVERFLOWED]" : "");
  }
  AppendLine(&out,
             "    host IO: %" PRIu64 " writes (%s), %" PRIu64 " reads",
             array->host_writes(),
             array->host_write_latency().ToString().c_str(),
             array->host_reads());

  // Snapshots.
  const size_t snaps = site->snapshots()->snapshot_count();
  if (snaps > 0) {
    AppendLine(&out, "  snapshots: %zu in %zu groups", snaps,
               site->snapshots()->ListGroups().size());
  }
  return out;
}

std::string DescribeReplication(replication::ReplicationEngine* engine) {
  std::string out;
  AppendLine(&out, "replication: %zu groups, %zu pairs",
             engine->ListGroups().size(), engine->ListPairs().size());
  if (engine->event_driven()) {
    const auto sched = engine->scheduler_stats();
    AppendLine(&out,
               "  scheduler: %" PRIu64 "/%" PRIu64 " armed, arms=%" PRIu64
               " dispatches=%" PRIu64 " heartbeat_rescues=%" PRIu64
               " starved_turns=%" PRIu64,
               sched.armed_groups, sched.registered_groups, sched.arms,
               sched.dispatches, sched.heartbeat_rescues,
               sched.starved_turns);
  }
  for (replication::GroupId gid : engine->ListGroups()) {
    auto stats = engine->GetGroupStats(gid);
    auto name = engine->GetGroupName(gid);
    if (!stats.ok()) continue;
    AppendLine(&out,
               "  group %-3" PRIu64 " %-24s written=%" PRIu64
               " shipped=%" PRIu64 " applied=%" PRIu64
               " rpo=%s ratio=%.2f (window %.2f)",
               gid, name.ok() ? name->c_str() : "?", stats->written,
               stats->shipped, stats->applied,
               FormatDuration(stats->apply_lag).c_str(),
               stats->compression_ratio, stats->compression_ratio_window);
    for (replication::PairId pid : engine->ListGroupPairs(gid)) {
      const replication::Pair* pair = engine->GetPair(pid);
      if (pair == nullptr) continue;
      AppendLine(&out, "    pair %-3" PRIu64 " %-20s [%s] dirty=%zu", pid,
                 pair->config().name.c_str(), PairStateName(pair->state()),
                 pair->dirty_blocks());
    }
  }
  return out;
}

std::string DescribeObservability(DemoSystem* system, size_t trace_tail) {
  std::string out;
  AppendLine(&out, "=== observability @ t=%s ===",
             FormatDuration(system->env()->now()).c_str());
  out += system->metrics()->ToTable();
  out += system->rpo_tracker()->ToString();
  const replication::Scrubber* scrub = system->replication()->scrubber();
  if (scrub != nullptr) {
    const replication::ScrubStats& st = scrub->stats();
    AppendLine(&out,
               "scrub: cycles=%" PRIu64 " extents=%" PRIu64
               " blocks=%" PRIu64 " crc_fail=%" PRIu64 " media_err=%" PRIu64
               " divergent=%" PRIu64 " repairs=%" PRIu64
               " restores=%" PRIu64 " deferred=%" PRIu64
               " unrecoverable=%" PRIu64,
               st.cycles_completed, st.extents_scanned, st.blocks_scanned,
               st.checksum_mismatches, st.media_errors,
               st.divergent_extents, st.repairs_scheduled,
               st.primary_restores, st.deferred_repairs,
               st.unrecoverable_extents);
  }
  obs::TraceRing* trace = system->trace();
  if (trace->size() > 0) {
    AppendLine(&out, "trace (%zu of %" PRIu64 " events%s):", trace->size(),
               trace->total_recorded(),
               trace->dropped() > 0 ? ", older dropped" : "");
    out += trace->ToString(trace_tail);
  }
  return out;
}

std::string ObservabilityJson(DemoSystem* system) {
  std::string out = "{";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "\"time\": %" PRId64 ", ",
                system->env()->now());
  out += buf;
  out += "\"metrics\": ";
  out += system->metrics()->ToJson();
  out += ", \"rpo\": {";
  obs::RpoTracker* tracker = system->rpo_tracker();
  bool first_group = true;
  for (uint64_t gid : tracker->Groups()) {
    const obs::GroupRpoSeries* s = tracker->series(gid);
    if (s == nullptr) continue;
    if (!first_group) out += ", ";
    first_group = false;
    std::snprintf(buf, sizeof(buf),
                  "\"g%" PRIu64 "\": {\"samples\": %" PRIu64
                  ", \"zero_samples\": %" PRIu64 ", \"mean\": %.1f"
                  ", \"p99\": %.1f, \"max\": %" PRId64 ", \"rtos\": [",
                  gid, s->samples, s->zero_samples, s->histogram.Mean(),
                  s->histogram.Percentile(99),
                  static_cast<int64_t>(s->max_rpo));
    out += buf;
    const std::vector<SimDuration>& rtos = tracker->rtos(gid);
    for (size_t i = 0; i < rtos.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%s%" PRId64, i == 0 ? "" : ", ",
                    rtos[i]);
      out += buf;
    }
    out += "]}";
  }
  out += "}";
  const replication::Scrubber* scrub = system->replication()->scrubber();
  if (scrub != nullptr) {
    const replication::ScrubStats& st = scrub->stats();
    std::snprintf(buf, sizeof(buf),
                  ", \"scrub\": {\"cycles\": %" PRIu64
                  ", \"extents\": %" PRIu64 ", \"blocks\": %" PRIu64
                  ", \"checksum_mismatches\": %" PRIu64
                  ", \"media_errors\": %" PRIu64 ", \"divergent\": %" PRIu64
                  ", \"repairs\": %" PRIu64 ", \"restores\": %" PRIu64
                  ", \"deferred\": %" PRIu64 ", \"unrecoverable\": %" PRIu64
                  "}",
                  st.cycles_completed, st.extents_scanned,
                  st.blocks_scanned, st.checksum_mismatches,
                  st.media_errors, st.divergent_extents,
                  st.repairs_scheduled, st.primary_restores,
                  st.deferred_repairs, st.unrecoverable_extents);
    out += buf;
  }
  out += "}";
  return out;
}

std::string DescribeSystem(DemoSystem* system) {
  std::string out;
  AppendLine(&out, "=== demo system @ t=%s ===",
             FormatDuration(system->env()->now()).c_str());
  out += DescribeSite(system->main_site());
  out += DescribeSite(system->backup_site());
  out += DescribeReplication(system->replication());
  AppendLine(&out,
             "links: main->backup %s (%" PRIu64 " msgs, %" PRIu64
             "B), backup->main %s",
             system->link_to_backup()->connected() ? "up" : "DOWN",
             system->link_to_backup()->messages_sent(),
             system->link_to_backup()->bytes_sent(),
             system->link_to_main()->connected() ? "up" : "DOWN");
  return out;
}

}  // namespace zerobak::core
