#ifndef ZEROBAK_CORE_VERIFY_H_
#define ZEROBAK_CORE_VERIFY_H_

#include <string>

#include "common/status.h"
#include "core/demo_system.h"
#include "workload/invariants.h"

namespace zerobak::core {

// Backup verification: proves a snapshot group is actually restorable by
// doing what a restore would do — open the databases on the snapshot
// volumes, run crash recovery, and cross-check the business invariants.
// A backup that merely exists is not a backup; one that passes this is.
struct VerificationReport {
  std::string group_name;
  // Every member database opened and recovered.
  bool databases_recovered = false;
  // Business-level cross-database consistency (no orphan orders).
  workload::CollapseReport business;
  // Totals seen in the verified image.
  uint64_t orders = 0;
  uint64_t stock_movements = 0;
  SimTime snapshot_time = 0;

  bool passed() const {
    return databases_recovered && !business.collapsed() &&
           business.internally_consistent();
  }
  std::string ToString() const;
};

// Verifies the named snapshot group of the namespace's business process
// (sales-db + stock-db PVCs) on the backup site. Fails with NOT_FOUND if
// the group or its snapshots do not exist.
StatusOr<VerificationReport> VerifySnapshotGroup(
    DemoSystem* system, const std::string& ns,
    const std::string& group_name);

// Verifies the newest Ready snapshot group produced by a schedule.
StatusOr<VerificationReport> VerifyLatestScheduled(
    DemoSystem* system, const std::string& ns,
    const std::string& schedule_name);

}  // namespace zerobak::core

#endif  // ZEROBAK_CORE_VERIFY_H_
