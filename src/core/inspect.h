#ifndef ZEROBAK_CORE_INSPECT_H_
#define ZEROBAK_CORE_INSPECT_H_

#include <string>

#include "core/demo_system.h"

namespace zerobak::core {

// Human-readable state dump of the whole demonstration system: clusters
// (object counts per kind), arrays (volumes, journals, host IO stats),
// replication groups and pairs, snapshots. What an operator would check
// first — the `inspect` console command and the examples use it.
std::string DescribeSystem(DemoSystem* system);

// One-site variants.
std::string DescribeSite(Site* site);
std::string DescribeReplication(replication::ReplicationEngine* engine);

// Observability: the metric registry as an aligned table, the RPO/RTO
// tracker summary and the tail of the trace ring — the `metrics` and
// `trace` console commands.
std::string DescribeObservability(DemoSystem* system, size_t trace_tail = 20);

// The same data as one JSON object ({"time":..., "metrics":{...},
// "rpo":{...}}) for scripts/ to parse.
std::string ObservabilityJson(DemoSystem* system);

}  // namespace zerobak::core

#endif  // ZEROBAK_CORE_INSPECT_H_
