#include "core/demo_system.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace zerobak::core {

using container::Resource;

DemoSystem::DemoSystem(sim::SimEnvironment* env, DemoSystemConfig config)
    : env_(env), config_(std::move(config)) {
  main_site_ = std::make_unique<Site>(env_, "main", config_.main_array);
  backup_site_ =
      std::make_unique<Site>(env_, "backup", config_.backup_array);

  sim::NetworkLinkConfig forward = config_.link;
  sim::NetworkLinkConfig reverse = config_.link;
  reverse.seed = config_.link.seed + 1;
  to_backup_ = std::make_unique<sim::NetworkLink>(env_, forward,
                                                  "main->backup");
  to_main_ = std::make_unique<sim::NetworkLink>(env_, reverse,
                                                "backup->main");

  engine_ = std::make_unique<replication::ReplicationEngine>(
      env_, main_site_->array(), backup_site_->array(), to_backup_.get(),
      to_main_.get(), config_.engine);

  // Observability bundle: one registry + trace ring for the whole system,
  // fed by the engine, every group's journals and both links, plus the
  // continuous RPO/RTO sampler.
  metrics_ = std::make_unique<obs::MetricRegistry>();
  trace_ = std::make_unique<obs::TraceRing>();
  engine_->AttachObservability(metrics_.get(), trace_.get());
  if (config_.enable_scrub) {
    ZB_CHECK(engine_->EnableScrubbing(config_.scrub).ok());
  }
  auto wire_link = [this](sim::NetworkLink* link, const std::string& prefix,
                          uint64_t trace_id) {
    sim::NetworkLink::Instruments ins;
    ins.messages = metrics_->GetCounter(prefix + ".messages");
    ins.wire_bytes = metrics_->GetCounter(prefix + ".wire_bytes");
    ins.dropped = metrics_->GetCounter(prefix + ".dropped");
    ins.send_failures = metrics_->GetCounter(prefix + ".send_failures");
    link->AttachObservability(ins, trace_.get(), trace_id);
  };
  wire_link(to_backup_.get(), "link.to_backup", kTraceIdLinkToBackup);
  wire_link(to_main_.get(), "link.to_main", kTraceIdLinkToMain);
  rpo_tracker_ = std::make_unique<obs::RpoTracker>(
      env_,
      [this] {
        std::vector<obs::RpoTracker::GroupSample> samples;
        for (replication::GroupId id : engine_->ListGroups()) {
          auto rpo = engine_->GroupRpo(id);
          if (rpo.ok()) samples.push_back({id, *rpo});
        }
        return samples;
      },
      config_.rpo_sample_interval > 0 ? config_.rpo_sample_interval
                                      : Milliseconds(10));
  if (config_.rpo_sample_interval > 0) rpo_tracker_->Start();

  // Storage classes on both clusters.
  for (Site* site : {main_site_.get(), backup_site_.get()}) {
    Resource sc;
    sc.kind = container::kKindStorageClass;
    sc.name = config_.storage_class;
    sc.spec["provisioner"] = csi::kProvisionerName;
    sc.spec["arraySerial"] = site->array()->serial();
    ZB_CHECK(site->api()->Create(std::move(sc)).ok());
  }

  // Main-site controllers: CSI provisioner, the namespace operator, and
  // the replication plugin.
  auto* main_mgr = main_site_->cluster()->controllers();
  main_mgr->Register(
      std::make_unique<csi::Provisioner>(main_site_->array()));
  auto nso = std::make_unique<nso::NamespaceOperator>(config_.nso);
  nso_ = nso.get();
  main_mgr->Register(std::move(nso));
  main_mgr->Register(std::make_unique<csi::ReplicationGroupController>(
      engine_.get(), main_site_->array(), backup_site_->array(),
      backup_site_->api()));
  main_mgr->EnableResync(config_.resync_interval);

  // Backup-site controllers: provisioner (for analytics claims) and the
  // snapshot-group plugin.
  auto* backup_mgr = backup_site_->cluster()->controllers();
  backup_mgr->Register(
      std::make_unique<csi::Provisioner>(backup_site_->array()));
  backup_mgr->Register(std::make_unique<csi::SnapshotGroupController>(
      backup_site_->snapshots(), backup_site_->array()));
  backup_mgr->Register(
      std::make_unique<csi::SnapshotScheduleController>(env_));
  backup_mgr->EnableResync(config_.resync_interval);
}

Status DemoSystem::CreateBusinessNamespace(const std::string& ns) {
  Resource r;
  r.kind = container::kKindNamespace;
  r.name = ns;
  auto created = main_site_->api()->Create(std::move(r));
  return created.ok() ? OkStatus() : created.status();
}

Status DemoSystem::CreatePvc(const std::string& ns,
                             const std::string& pvc_name,
                             uint64_t capacity_bytes) {
  Resource pvc;
  pvc.kind = container::kKindPersistentVolumeClaim;
  pvc.ns = ns;
  pvc.name = pvc_name;
  pvc.spec["storageClassName"] = config_.storage_class;
  pvc.spec["capacityBytes"] = static_cast<int64_t>(capacity_bytes);
  pvc.status["phase"] = "Pending";
  auto created = main_site_->api()->Create(std::move(pvc));
  return created.ok() ? OkStatus() : created.status();
}

Status DemoSystem::TagNamespaceForBackup(const std::string& ns) {
  return main_site_->api()->Mutate(
      container::kKindNamespace, "", ns, [this](Resource* r) {
        r->annotations[config_.nso.policy_annotation] =
            config_.nso.trigger_value;
      });
}

Status DemoSystem::UntagNamespace(const std::string& ns) {
  return main_site_->api()->Mutate(
      container::kKindNamespace, "", ns, [this](Resource* r) {
        r->annotations.erase(config_.nso.policy_annotation);
      });
}

bool DemoSystem::BackupConfigured(const std::string& ns) {
  auto vrg = main_site_->api()->Get(container::kKindVolumeReplicationGroup,
                                    ns, nso::NamespaceOperator::VrgName(ns));
  if (!vrg.ok() || vrg->StatusPhase() != "Replicating") return false;
  const Value* pairs = vrg->status.Find("pairs");
  if (pairs == nullptr || !pairs->is_object()) return false;

  // Every bound PVC of the namespace must be covered by a pair.
  size_t bound_pvcs = 0;
  for (const Resource& pvc : main_site_->api()->List(
           container::kKindPersistentVolumeClaim, ns)) {
    if (pvc.spec.GetString("volumeName").empty()) continue;
    ++bound_pvcs;
  }
  if (bound_pvcs == 0 || pairs->AsObject().size() < bound_pvcs) {
    return false;
  }

  // And all initial copies must have completed.
  for (const auto& [handle, rec] : pairs->AsObject()) {
    const auto pair_id =
        static_cast<replication::PairId>(rec.GetInt("pairId"));
    const replication::Pair* pair = engine_->GetPair(pair_id);
    if (pair == nullptr ||
        pair->state() != replication::PairState::kPaired) {
      return false;
    }
  }
  return true;
}

Status DemoSystem::WaitForBackupConfigured(const std::string& ns,
                                           SimDuration timeout) {
  const SimTime deadline = env_->now() + timeout;
  while (env_->now() < deadline) {
    if (BackupConfigured(ns)) return OkStatus();
    env_->RunFor(Milliseconds(5));
  }
  return BackupConfigured(ns)
             ? OkStatus()
             : UnavailableError("backup configuration did not converge for "
                                "namespace " + ns);
}

StatusOr<std::vector<replication::GroupId>> DemoSystem::ReplicationGroupsOf(
    const std::string& ns) {
  ZB_ASSIGN_OR_RETURN(
      Resource vrg,
      main_site_->api()->Get(container::kKindVolumeReplicationGroup, ns,
                             nso::NamespaceOperator::VrgName(ns)));
  const Value* groups = vrg.status.Find("groups");
  if (groups == nullptr || !groups->is_array() ||
      groups->AsArray().empty()) {
    return NotFoundError("namespace " + ns + " has no consistency group");
  }
  std::vector<replication::GroupId> out;
  for (const Value& g : groups->AsArray()) {
    out.push_back(static_cast<replication::GroupId>(g.AsInt()));
  }
  return out;
}

StatusOr<replication::GroupId> DemoSystem::ReplicationGroupOf(
    const std::string& ns) {
  ZB_ASSIGN_OR_RETURN(auto groups, ReplicationGroupsOf(ns));
  return groups.front();
}

Status DemoSystem::CreateSnapshotGroupCr(const std::string& ns,
                                         const std::string& group_name) {
  Resource vsg;
  vsg.kind = container::kKindVolumeSnapshotGroup;
  vsg.ns = ns;
  vsg.name = group_name;
  vsg.spec["pvcNamespace"] = ns;
  auto created = backup_site_->api()->Create(std::move(vsg));
  return created.ok() ? OkStatus() : created.status();
}

Status DemoSystem::CreateSnapshotSchedule(const std::string& ns,
                                          const std::string& schedule_name,
                                          SimDuration interval,
                                          int64_t retain) {
  Resource schedule;
  schedule.kind = container::kKindSnapshotSchedule;
  schedule.ns = ns;
  schedule.name = schedule_name;
  schedule.spec["pvcNamespace"] = ns;
  schedule.spec["intervalMs"] = interval / kMillisecond;
  schedule.spec["retain"] = retain;
  auto created = backup_site_->api()->Create(std::move(schedule));
  return created.ok() ? OkStatus() : created.status();
}

bool DemoSystem::SnapshotGroupReady(const std::string& ns,
                                    const std::string& group_name) {
  auto vsg = backup_site_->api()->Get(container::kKindVolumeSnapshotGroup,
                                      ns, group_name);
  return vsg.ok() && vsg->StatusPhase() == "Ready";
}

Status DemoSystem::WaitForSnapshotGroup(const std::string& ns,
                                        const std::string& group_name,
                                        SimDuration timeout) {
  const SimTime deadline = env_->now() + timeout;
  while (env_->now() < deadline) {
    if (SnapshotGroupReady(ns, group_name)) return OkStatus();
    env_->RunFor(Milliseconds(5));
  }
  return SnapshotGroupReady(ns, group_name)
             ? OkStatus()
             : UnavailableError("snapshot group " + group_name +
                                " did not become ready");
}

StatusOr<storage::VolumeId> DemoSystem::ResolveMainVolume(
    const std::string& ns, const std::string& pvc_name) {
  ZB_ASSIGN_OR_RETURN(
      Resource pvc,
      main_site_->api()->Get(container::kKindPersistentVolumeClaim, ns,
                             pvc_name));
  const std::string pv_name = pvc.spec.GetString("volumeName");
  if (pv_name.empty()) {
    return FailedPreconditionError("PVC " + pvc_name + " is unbound");
  }
  ZB_ASSIGN_OR_RETURN(Resource pv,
                      main_site_->api()->Get(
                          container::kKindPersistentVolume, "", pv_name));
  ZB_ASSIGN_OR_RETURN(auto parsed,
                      storage::StorageArray::ParseVolumeHandle(
                          pv.spec.GetString("volumeHandle")));
  return parsed.second;
}

StatusOr<storage::VolumeId> DemoSystem::ResolveBackupVolume(
    const std::string& ns, const std::string& pvc_name) {
  ZB_ASSIGN_OR_RETURN(
      Resource pvc,
      backup_site_->api()->Get(container::kKindPersistentVolumeClaim, ns,
                               pvc_name));
  const std::string pv_name = pvc.spec.GetString("volumeName");
  if (pv_name.empty()) {
    return FailedPreconditionError("backup PVC " + pvc_name + " is unbound");
  }
  ZB_ASSIGN_OR_RETURN(Resource pv,
                      backup_site_->api()->Get(
                          container::kKindPersistentVolume, "", pv_name));
  ZB_ASSIGN_OR_RETURN(auto parsed,
                      storage::StorageArray::ParseVolumeHandle(
                          pv.spec.GetString("volumeHandle")));
  return parsed.second;
}

StatusOr<snapshot::CowSnapshot*> DemoSystem::ResolveSnapshot(
    const std::string& ns, const std::string& group_name,
    const std::string& pvc_name) {
  ZB_ASSIGN_OR_RETURN(storage::VolumeId backup_volume,
                      ResolveBackupVolume(ns, pvc_name));
  const std::string source_handle =
      backup_site_->array()->VolumeHandle(backup_volume);
  for (const Resource& vs : backup_site_->api()->List(
           container::kKindVolumeSnapshot, ns)) {
    if (vs.spec.GetString("groupName") != group_name) continue;
    if (vs.spec.GetString("sourceHandle") != source_handle) continue;
    ZB_ASSIGN_OR_RETURN(
        snapshot::SnapshotId sid,
        csi::SnapshotGroupController::ParseSnapshotHandle(
            backup_site_->array()->serial(),
            vs.status.GetString("snapshotHandle")));
    snapshot::CowSnapshot* snap =
        backup_site_->snapshots()->GetSnapshot(sid);
    if (snap == nullptr) {
      return NotFoundError("snapshot object vanished");
    }
    return snap;
  }
  return NotFoundError("no snapshot of " + pvc_name + " in group " +
                       group_name);
}

void DemoSystem::RepairMainSite() {
  main_site_->array()->SetFailed(false);
  to_backup_->SetConnected(true);
  to_main_->SetConnected(true);
}

StatusOr<replication::FailbackReport> DemoSystem::Failback(
    const std::string& ns, bool force) {
  ZB_ASSIGN_OR_RETURN(auto groups, ReplicationGroupsOf(ns));
  replication::FailbackReport merged;
  for (replication::GroupId group : groups) {
    ZB_ASSIGN_OR_RETURN(replication::FailbackReport report,
                        engine_->FailbackGroup(group, force));
    merged.blocks_shipped += report.blocks_shipped;
    merged.conflicts_overwritten += report.conflicts_overwritten;
  }
  return merged;
}

void DemoSystem::FailMainSite() {
  main_site_->array()->SetFailed(true);
  to_backup_->SetConnected(false);
  to_main_->SetConnected(false);
  // RTO clock: the disaster starts every group's outage; a later Failover
  // marks the service restored on the backup site.
  for (replication::GroupId id : engine_->ListGroups()) {
    rpo_tracker_->BeginOutage(id);
  }
}

StatusOr<replication::FailoverReport> DemoSystem::Failover(
    const std::string& ns) {
  ZB_ASSIGN_OR_RETURN(auto groups, ReplicationGroupsOf(ns));
  replication::FailoverReport merged;
  bool first = true;
  for (replication::GroupId group : groups) {
    ZB_ASSIGN_OR_RETURN(replication::FailoverReport report,
                        engine_->FailoverGroup(group));
    rpo_tracker_->CompleteRecovery(group);
    if (first) {
      merged = report;
      first = false;
    } else {
      merged.lost_records += report.lost_records;
      merged.recovery_point_time =
          std::min(merged.recovery_point_time, report.recovery_point_time);
      merged.recovery_point = 0;  // Meaningless across journals.
    }
  }
  return merged;
}

}  // namespace zerobak::core
