#include "core/restore.h"

namespace zerobak::core {

StatusOr<RestoreReport> RestoreNamespaceFromGroup(
    DemoSystem* system, const std::string& ns,
    const std::string& group_name) {
  // The group's pairs must have been swapped (failed over): restoring an
  // actively-replicated S-VOL would fight the applier.
  ZB_ASSIGN_OR_RETURN(auto groups, system->ReplicationGroupsOf(ns));
  for (replication::GroupId gid : groups) {
    for (replication::PairId pid :
         system->replication()->ListGroupPairs(gid)) {
      const replication::Pair* pair = system->replication()->GetPair(pid);
      if (pair != nullptr &&
          pair->state() != replication::PairState::kSwapped) {
        return FailedPreconditionError(
            "namespace " + ns + " is still replicating (pair " +
            pair->config().name + " is " + PairStateName(pair->state()) +
            "); fail over before restoring");
      }
    }
  }

  RestoreReport report;
  snapshot::SnapshotManager* snapshots = system->backup_site()->snapshots();
  for (const char* pvc : {"sales-db", "stock-db"}) {
    ZB_ASSIGN_OR_RETURN(snapshot::CowSnapshot * snap,
                        system->ResolveSnapshot(ns, group_name, pvc));
    ZB_ASSIGN_OR_RETURN(uint64_t rewritten,
                        snapshots->RestoreVolume(snap->id()));
    ++report.volumes_restored;
    report.blocks_rewritten += rewritten;
  }
  return report;
}

}  // namespace zerobak::core
