#include "common/time.h"

#include <cstdio>

namespace zerobak {

std::string FormatDuration(SimDuration d) {
  char buf[64];
  if (d < kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%ldns", static_cast<long>(d));
  } else if (d < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.2fus", ToMicroseconds(d));
  } else if (d < kSecond) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ToMilliseconds(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", ToSeconds(d));
  }
  return buf;
}

}  // namespace zerobak
