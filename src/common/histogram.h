#ifndef ZEROBAK_COMMON_HISTOGRAM_H_
#define ZEROBAK_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace zerobak {

// Latency/size histogram with exponential buckets, good for values spanning
// nanoseconds to seconds. Records exact min/max/sum and approximates
// percentiles by linear interpolation within a bucket (RocksDB-style).
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double sum() const { return sum_; }
  double Mean() const;

  // p in [0, 100].
  double Percentile(double p) const;
  double Median() const { return Percentile(50); }

  // One-line summary: count, mean, p50/p95/p99, max.
  std::string ToString() const;

  // Bucket scheme (public so tests can pin the BucketFor/BucketLimit
  // agreement): values 0..3 get exact buckets, then every power-of-two
  // range [2^k, 2^(k+1)) splits into 4 equal sub-buckets, so the relative
  // quantization error is bounded by 1/4 of the value.
  static constexpr int kNumBuckets = 252;

  // Index of the bucket containing `value`.
  static int BucketFor(uint64_t value);
  // Inclusive upper bound of bucket `b`.
  static uint64_t BucketLimit(int b);

 private:
  uint64_t count_;
  uint64_t min_;
  uint64_t max_;
  double sum_;
  std::vector<uint64_t> buckets_;
};

// Streaming mean/variance accumulator (Welford).
class MeanVar {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const;

 private:
  uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

}  // namespace zerobak

#endif  // ZEROBAK_COMMON_HISTOGRAM_H_
