#include "common/compress.h"

#include <cstdint>
#include <cstring>

#include "common/coding.h"

namespace zerobak {
namespace {

constexpr uint8_t kMethodStored = 0;
constexpr uint8_t kMethodLz = 1;

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
// Below this there is nothing worth matching; store verbatim.
constexpr size_t kMinLzInput = 16;
// Decoder refuses raw sizes beyond this, so corrupt headers cannot ask
// for arbitrarily large allocations. Far above any transfer batch.
constexpr size_t kMaxRawSize = size_t{1} << 30;

constexpr int kHashBits = 13;
constexpr size_t kHashSize = size_t{1} << kHashBits;

inline uint32_t Load32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint32_t Hash(uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

// Emits a nibble-with-extensions length as in LZ4: `nibble` already holds
// min(len, 15); the remainder follows as 0xff runs plus a final byte.
void PutLengthExtension(std::string* out, size_t len) {
  if (len < 15) return;
  size_t rest = len - 15;
  while (rest >= 255) {
    out->push_back(static_cast<char>(0xff));
    rest -= 255;
  }
  out->push_back(static_cast<char>(rest));
}

// Reads the extension of a length nibble. Returns false on truncation.
bool GetLengthExtension(std::string_view* in, size_t nibble, size_t* len) {
  *len = nibble;
  if (nibble < 15) return true;
  while (true) {
    if (in->empty()) return false;
    const uint8_t byte = static_cast<uint8_t>(in->front());
    in->remove_prefix(1);
    *len += byte;
    if (*len > kMaxRawSize) return false;  // Corrupt run of 0xff bytes.
    if (byte != 0xff) return true;
  }
}

void EmitSequence(std::string* out, const char* lit, size_t lit_len,
                  size_t match_len, size_t offset) {
  const size_t lit_nibble = lit_len < 15 ? lit_len : 15;
  const size_t match_code = match_len == 0 ? 0 : match_len - kMinMatch;
  const size_t match_nibble = match_code < 15 ? match_code : 15;
  out->push_back(static_cast<char>((lit_nibble << 4) | match_nibble));
  PutLengthExtension(out, lit_len);
  out->append(lit, lit_len);
  if (match_len == 0) return;  // Final literals-only sequence.
  out->push_back(static_cast<char>(offset & 0xff));
  out->push_back(static_cast<char>(offset >> 8));
  PutLengthExtension(out, match_code);
}

// Greedy LZ pass. Appends sequences to `*out` and returns true, or
// returns false (leaving `*out` untouched) when the input is too small
// to bother.
bool CompressLz(std::string_view input, std::string* out) {
  const size_t n = input.size();
  if (n < kMinLzInput) return false;
  const char* base = input.data();

  uint32_t table[kHashSize];
  std::memset(table, 0xff, sizeof(table));  // 0xffffffff = empty slot.

  size_t anchor = 0;
  size_t i = 0;
  // Leave room so Load32 and match extension never read past the end.
  const size_t limit = n - kMinMatch;
  while (i <= limit) {
    const uint32_t v = Load32(base + i);
    const uint32_t h = Hash(v);
    const uint32_t cand = table[h];
    table[h] = static_cast<uint32_t>(i);
    if (cand == 0xffffffffu || i - cand > kMaxOffset ||
        Load32(base + cand) != v) {
      ++i;
      continue;
    }
    // Extend the match forwards.
    size_t len = kMinMatch;
    while (i + len < n && base[cand + len] == base[i + len]) ++len;
    EmitSequence(out, base + anchor, i - anchor, len, i - cand);
    i += len;
    anchor = i;
  }
  if (anchor < n) {
    EmitSequence(out, base + anchor, n - anchor, 0, 0);
  }
  return true;
}

}  // namespace

void Compress(std::string_view input, std::string* out) {
  const size_t header_at = out->size();
  out->push_back(static_cast<char>(kMethodLz));
  PutVarint64(out, input.size());
  const size_t body_at = out->size();
  if (!CompressLz(input, out) ||
      out->size() - body_at >= input.size()) {
    // Incompressible (or too small): rewrite as a stored frame.
    out->resize(header_at);
    out->push_back(static_cast<char>(kMethodStored));
    PutVarint64(out, input.size());
    out->append(input.data(), input.size());
  }
}

Status Decompress(std::string_view input, std::string* out) {
  if (input.empty()) return DataLossError("compress: empty frame");
  const uint8_t method = static_cast<uint8_t>(input.front());
  input.remove_prefix(1);
  uint64_t raw_size = 0;
  if (!GetVarint64(&input, &raw_size)) {
    return DataLossError("compress: truncated frame header");
  }
  if (raw_size > kMaxRawSize) {
    return DataLossError("compress: implausible raw size");
  }

  if (method == kMethodStored) {
    if (input.size() != raw_size) {
      return DataLossError("compress: stored frame length mismatch");
    }
    out->append(input.data(), input.size());
    return OkStatus();
  }
  if (method != kMethodLz) {
    return DataLossError("compress: unknown method byte");
  }

  const size_t out_base = out->size();
  out->reserve(out_base + raw_size);
  size_t produced = 0;
  while (!input.empty()) {
    const uint8_t token = static_cast<uint8_t>(input.front());
    input.remove_prefix(1);

    size_t lit_len = 0;
    if (!GetLengthExtension(&input, token >> 4, &lit_len)) {
      return DataLossError("compress: truncated literal length");
    }
    if (lit_len > input.size()) {
      return DataLossError("compress: literal run past end of frame");
    }
    if (produced + lit_len > raw_size) {
      return DataLossError("compress: output overruns raw size");
    }
    out->append(input.data(), lit_len);
    input.remove_prefix(lit_len);
    produced += lit_len;

    if (input.empty()) break;  // Final literals-only sequence.

    if (input.size() < 2) {
      return DataLossError("compress: truncated match offset");
    }
    const size_t offset = static_cast<uint8_t>(input[0]) |
                          (static_cast<size_t>(static_cast<uint8_t>(input[1]))
                           << 8);
    input.remove_prefix(2);
    if (offset == 0 || offset > produced) {
      return DataLossError("compress: match offset out of range");
    }

    size_t match_code = 0;
    if (!GetLengthExtension(&input, token & 0x0f, &match_code)) {
      return DataLossError("compress: truncated match length");
    }
    const size_t match_len = match_code + kMinMatch;
    if (produced + match_len > raw_size) {
      return DataLossError("compress: match overruns raw size");
    }
    // Byte-wise copy: matches may overlap their own output (RLE-style).
    for (size_t k = 0; k < match_len; ++k) {
      out->push_back((*out)[out_base + produced - offset + k]);
    }
    produced += match_len;
  }

  if (produced != raw_size) {
    out->resize(out_base);
    return DataLossError("compress: frame shorter than raw size");
  }
  return OkStatus();
}

StatusOr<size_t> DecompressedSize(std::string_view input) {
  if (input.empty()) return DataLossError("compress: empty frame");
  const uint8_t method = static_cast<uint8_t>(input.front());
  if (method != kMethodStored && method != kMethodLz) {
    return DataLossError("compress: unknown method byte");
  }
  input.remove_prefix(1);
  uint64_t raw_size = 0;
  if (!GetVarint64(&input, &raw_size)) {
    return DataLossError("compress: truncated frame header");
  }
  if (raw_size > kMaxRawSize) {
    return DataLossError("compress: implausible raw size");
  }
  return static_cast<size_t>(raw_size);
}

}  // namespace zerobak
