#ifndef ZEROBAK_COMMON_CRC32C_H_
#define ZEROBAK_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace zerobak {

// CRC-32C (Castagnoli polynomial), the checksum used by the WAL, journal
// records and page headers to detect torn or corrupted writes.

// Extends `crc` with `data[0, n)` and returns the new checksum. Start a
// fresh computation with crc == 0.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

// Convenience wrapper for a single buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

// Masked CRC as used by LevelDB/RocksDB log formats: storing the raw CRC of
// data that itself contains CRCs is error-prone, so a stored checksum is
// rotated and offset.
uint32_t Crc32cMask(uint32_t crc);
uint32_t Crc32cUnmask(uint32_t masked);

}  // namespace zerobak

#endif  // ZEROBAK_COMMON_CRC32C_H_
