#ifndef ZEROBAK_COMMON_CRC32C_H_
#define ZEROBAK_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace zerobak {

// CRC-32C (Castagnoli polynomial), the checksum used by the WAL, journal
// records, page headers and the replication wire format to detect torn or
// corrupted writes.
//
// The implementation dispatches once, at first use, to the fastest kernel
// the host supports: the SSE4.2 CRC32 instruction on x86-64, a slice-by-8
// table kernel on little-endian hosts without it, and a byte-at-a-time
// table loop everywhere else. All kernels compute the identical function;
// tests/common/crc32c_test.cc holds them to the RFC 3720 vectors and to
// each other.

// Extends `crc` with `data[0, n)` and returns the new checksum. Start a
// fresh computation with crc == 0.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

// Convenience wrapper for a single buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

// Combines the CRCs of two adjacent buffers: given crc1 = Crc32c(A) and
// crc2 = Crc32c(B), returns Crc32c(A || B) where len2 = |B|, without
// touching the data. O(log len2) via GF(2) matrix squaring (zlib's
// crc32_combine construction). This is what lets a frame checksum be
// computed from independently-checksummed chunks in parallel and merged
// in order — bit-identical to a single sequential pass.
uint32_t Crc32cCombine(uint32_t crc1, uint32_t crc2, size_t len2);

// The "append len2 bytes" combine, precompiled to a single 32x32 GF(2)
// matrix at construction. Combine() is then one matrix-vector product
// (~32 xors) instead of Crc32cCombine's O(log len2) matrix SQUARINGS
// (tens of microseconds — more than CRCing a 64 KiB chunk takes with the
// hardware kernel). Build one op per fixed chunk size and reuse it for
// every join; fall back to Crc32cCombine for one-off tail lengths.
//   Crc32cCombineOp op(kChunkBytes);           // once
//   crc = op.Combine(crc, chunk_crc);          // per join, O(1)
class Crc32cCombineOp {
 public:
  explicit Crc32cCombineOp(size_t len2);
  uint32_t Combine(uint32_t crc1, uint32_t crc2) const;
  size_t len2() const { return len2_; }

 private:
  uint32_t mat_[32];
  size_t len2_;
};

// Masked CRC as used by LevelDB/RocksDB log formats: storing the raw CRC of
// data that itself contains CRCs is error-prone, so a stored checksum is
// rotated and offset.
uint32_t Crc32cMask(uint32_t crc);
uint32_t Crc32cUnmask(uint32_t masked);

namespace internal {

// The individual kernels behind Crc32cExtend, exposed so the dispatch
// test can assert they agree bit-for-bit on identical input. Each has the
// full Crc32cExtend contract.
uint32_t Crc32cPortable(uint32_t crc, const void* data, size_t n);
uint32_t Crc32cSlice8(uint32_t crc, const void* data, size_t n);
// Only callable when Crc32cHardwareSupported() returns true.
uint32_t Crc32cHardware(uint32_t crc, const void* data, size_t n);
bool Crc32cHardwareSupported();

// Name of the kernel Crc32cExtend dispatches to on this host:
// "sse4.2", "slice8" or "portable".
const char* Crc32cImplementation();

}  // namespace internal

}  // namespace zerobak

#endif  // ZEROBAK_COMMON_CRC32C_H_
