#ifndef ZEROBAK_COMMON_TIME_H_
#define ZEROBAK_COMMON_TIME_H_

#include <cstdint>
#include <string>

namespace zerobak {

// Simulated time, in nanoseconds since simulation start. All latency models
// and the discrete-event engine operate on this type. 64-bit nanoseconds
// cover ~292 years of simulated time, far beyond any experiment here.
using SimTime = int64_t;
using SimDuration = int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr SimDuration Nanoseconds(int64_t n) { return n * kNanosecond; }
constexpr SimDuration Microseconds(int64_t n) { return n * kMicrosecond; }
constexpr SimDuration Milliseconds(int64_t n) { return n * kMillisecond; }
constexpr SimDuration Seconds(int64_t n) { return n * kSecond; }

constexpr double ToMicroseconds(SimDuration d) {
  return static_cast<double>(d) / kMicrosecond;
}
constexpr double ToMilliseconds(SimDuration d) {
  return static_cast<double>(d) / kMillisecond;
}
constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / kSecond;
}

// Renders a duration with an adaptive unit, e.g. "1.50ms" or "730ns".
std::string FormatDuration(SimDuration d);

}  // namespace zerobak

#endif  // ZEROBAK_COMMON_TIME_H_
