#ifndef ZEROBAK_COMMON_STATUS_H_
#define ZEROBAK_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace zerobak {

// Canonical error space, modelled after absl::Status / google-cloud codes.
// The library does not use exceptions; every fallible operation returns a
// Status or a StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kResourceExhausted = 5,
  kUnavailable = 6,
  kAborted = 7,
  kOutOfRange = 8,
  kDataLoss = 9,
  kInternal = 10,
  kUnimplemented = 11,
};

// Returns the canonical name of `code`, e.g. "NOT_FOUND".
const char* StatusCodeName(StatusCode code);

// A Status carries a code and, when not OK, a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Returns "OK" or "<CODE_NAME>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Constructors for each canonical error.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnavailableError(std::string message);
Status AbortedError(std::string message);
Status OutOfRangeError(std::string message);
Status DataLossError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);

// StatusOr<T> holds either a value or a non-OK Status.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, mirroring absl::StatusOr ergonomics: functions
  // may `return value;` or `return SomeError(...)`.
  StatusOr(const T& value) : status_(OkStatus()), value_(value) {}
  StatusOr(T&& value) : status_(OkStatus()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace zerobak

// Evaluates `expr` (a Status expression) and returns it from the enclosing
// function if it is not OK.
#define ZB_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::zerobak::Status zb_status_ = (expr);        \
    if (!zb_status_.ok()) return zb_status_;      \
  } while (0)

// Evaluates `rexpr` (a StatusOr<T> expression); on error returns the status,
// otherwise moves the value into `lhs`.
#define ZB_ASSIGN_OR_RETURN(lhs, rexpr)             \
  ZB_ASSIGN_OR_RETURN_IMPL_(                        \
      ZB_STATUS_MACRO_CONCAT_(zb_statusor_, __LINE__), lhs, rexpr)

#define ZB_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                              \
  if (!statusor.ok()) return statusor.status();         \
  lhs = std::move(statusor).value()

#define ZB_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define ZB_STATUS_MACRO_CONCAT_(x, y) ZB_STATUS_MACRO_CONCAT_INNER_(x, y)

#endif  // ZEROBAK_COMMON_STATUS_H_
