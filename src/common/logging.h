#ifndef ZEROBAK_COMMON_LOGGING_H_
#define ZEROBAK_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace zerobak {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global log threshold; messages below it are dropped. Tests and benches
// default to kWarning so expected-failure paths stay quiet.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

// Stream-style log sink; emits on destruction. FATAL aborts the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace zerobak

#define ZB_LOG(level)                                                 \
  ::zerobak::internal_logging::LogMessage(                            \
      ::zerobak::LogLevel::k##level, __FILE__, __LINE__)              \
      .stream()

#define ZB_FATAL()                                                    \
  ::zerobak::internal_logging::LogMessage(                            \
      ::zerobak::LogLevel::kError, __FILE__, __LINE__, /*fatal=*/true) \
      .stream()

// Invariant check that is active in all build types (unlike assert).
#define ZB_CHECK(cond)                                           \
  if (!(cond)) ZB_FATAL() << "Check failed: " #cond << " "

#endif  // ZEROBAK_COMMON_LOGGING_H_
