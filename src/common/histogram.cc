#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace zerobak {

Histogram::Histogram()
    : count_(0),
      min_(std::numeric_limits<uint64_t>::max()),
      max_(0),
      sum_(0),
      buckets_(kNumBuckets, 0) {}

int Histogram::BucketFor(uint64_t value) {
  // Buckets: [0] [1] [2] [3] exact, then each power-of-two range
  // [2^k, 2^(k+1)) for k >= 2 split in 4 equal sub-buckets, selected by
  // the 2 bits below the MSB.
  if (value < 4) return static_cast<int>(value);
  const int log2 = 63 - __builtin_clzll(value);
  const int sub = static_cast<int>((value >> (log2 - 2)) & 0x3);
  return 4 + (log2 - 2) * 4 + sub;
}

uint64_t Histogram::BucketLimit(int b) {
  if (b < 4) return static_cast<uint64_t>(b);
  const int log2 = (b - 4) / 4 + 2;
  const int sub = (b - 4) % 4;
  const uint64_t base = 1ULL << log2;
  const uint64_t quarter = base / 4;
  // The top bucket's limit wraps to exactly UINT64_MAX, which is intended.
  return base + static_cast<uint64_t>(sub + 1) * quarter - 1;
}

void Histogram::Add(uint64_t value) {
  ++count_;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value);
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Clear() {
  count_ = 0;
  min_ = std::numeric_limits<uint64_t>::max();
  max_ = 0;
  sum_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double threshold = static_cast<double>(count_) * (p / 100.0);
  double cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    const double next = cumulative + static_cast<double>(buckets_[b]);
    if (next >= threshold) {
      const uint64_t lo = b == 0 ? 0 : BucketLimit(b - 1) + 1;
      const uint64_t hi = BucketLimit(b);
      double frac = buckets_[b] == 0
                        ? 0.0
                        : (threshold - cumulative) /
                              static_cast<double>(buckets_[b]);
      double v = static_cast<double>(lo) +
                 frac * static_cast<double>(hi - lo);
      v = std::max(v, static_cast<double>(min()));
      v = std::min(v, static_cast<double>(max_));
      return v;
    }
    cumulative = next;
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%.0f p95=%.0f p99=%.0f max=%llu",
                static_cast<unsigned long long>(count_), Mean(),
                Percentile(50), Percentile(95), Percentile(99),
                static_cast<unsigned long long>(max_));
  return buf;
}

double MeanVar::stddev() const { return std::sqrt(variance()); }

}  // namespace zerobak
