#include "common/crc32c.h"

#include <array>
#include <bit>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define ZEROBAK_CRC32C_X86 1
#include <nmmintrin.h>
#endif

namespace zerobak {
namespace {

// Castagnoli polynomial, reflected form.
constexpr uint32_t kPoly = 0x82f63b78u;

// Slice-by-8 table set. Table 0 is the classic byte-at-a-time table;
// table k folds a byte that sits k positions deeper in the input word, so
// eight table lookups retire eight input bytes per iteration instead of
// one. 8 KiB total, built at compile time.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 8> t;

  constexpr Crc32cTables() : t() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (int k = 1; k < 8; ++k) {
      for (uint32_t i = 0; i < 256; ++i) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xffu];
      }
    }
  }
};

constexpr Crc32cTables kTables;

}  // namespace

namespace internal {

uint32_t Crc32cPortable(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = kTables.t[0][(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32cSlice8(uint32_t crc, const void* data, size_t n) {
  // The 8-lane update below folds the running CRC into the low word of a
  // little-endian 64-bit load; on a big-endian host fall back to the
  // byte loop rather than byte-swapping every word.
  if constexpr (std::endian::native != std::endian::little) {
    return Crc32cPortable(crc, data, n);
  }
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Align to 8 so the main loop's loads never straddle a cache line
  // unaligned (memcpy below would still be correct either way).
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
    --n;
  }
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;
    const uint32_t lo = static_cast<uint32_t>(word);
    const uint32_t hi = static_cast<uint32_t>(word >> 32);
    crc = kTables.t[7][lo & 0xffu] ^ kTables.t[6][(lo >> 8) & 0xffu] ^
          kTables.t[5][(lo >> 16) & 0xffu] ^ kTables.t[4][lo >> 24] ^
          kTables.t[3][hi & 0xffu] ^ kTables.t[2][(hi >> 8) & 0xffu] ^
          kTables.t[1][(hi >> 16) & 0xffu] ^ kTables.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
    --n;
  }
  return ~crc;
}

#if defined(ZEROBAK_CRC32C_X86)

bool Crc32cHardwareSupported() { return __builtin_cpu_supports("sse4.2"); }

#if defined(__x86_64__)
namespace {

// Lane width for the 3-way interleaved kernel below. 3 * 1360 = 4080
// covers a default 4 KiB block in one pass with a 16-byte serial tail.
constexpr size_t kCrcLane = 1360;

// The advance-past-kCrcLane-zero-bytes operator of Crc32cCombine, baked
// into four byte-indexed tables so each per-chunk combine is 4 lookups
// instead of a 32-step GF(2) matrix-vector walk. Built once on first use.
struct CrcLaneShift {
  uint32_t t[4][256];
  CrcLaneShift() {
    const Crc32cCombineOp op(kCrcLane);
    for (int b = 0; b < 4; ++b) {
      for (uint32_t v = 0; v < 256; ++v) {
        // Combine is linear in crc1 (mat * crc1 ^ crc2), so tabulating
        // Combine(byte << 8b, 0) decomposes the matrix product.
        t[b][v] = op.Combine(v << (8 * b), 0);
      }
    }
  }
  uint32_t Shift(uint32_t crc) const {
    return t[0][crc & 0xffu] ^ t[1][(crc >> 8) & 0xffu] ^
           t[2][(crc >> 16) & 0xffu] ^ t[3][crc >> 24];
  }
};

}  // namespace
#endif  // __x86_64__

// Compiled for SSE4.2 regardless of the global -m flags; only ever called
// after the runtime check above.
__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(uint32_t crc,
                                                          const void* data,
                                                          size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
#if defined(__x86_64__)
  // _mm_crc32_u64 has ~3-cycle latency, so one chain retires ~2.7 B/cycle.
  // Large buffers are split into three independent lanes whose chains
  // interleave in the pipeline (~3x the throughput), then stitched with
  // the precomputed zero-advance operator:
  //   crc(X||A||B||C) = Shift(Shift(crc(X||A)) ^ crc(B)) ^ crc(C).
  if (n >= 3 * kCrcLane) {
    static const CrcLaneShift kShift;
    do {
      uint64_t s0 = crc ^ 0xffffffffu;
      uint64_t s1 = 0xffffffffu;
      uint64_t s2 = 0xffffffffu;
      const uint8_t* p1 = p + kCrcLane;
      const uint8_t* p2 = p + 2 * kCrcLane;
      for (size_t i = 0; i < kCrcLane; i += 8) {
        uint64_t w0, w1, w2;
        std::memcpy(&w0, p + i, 8);
        std::memcpy(&w1, p1 + i, 8);
        std::memcpy(&w2, p2 + i, 8);
        s0 = _mm_crc32_u64(s0, w0);
        s1 = _mm_crc32_u64(s1, w1);
        s2 = _mm_crc32_u64(s2, w2);
      }
      const uint32_t a = static_cast<uint32_t>(s0) ^ 0xffffffffu;
      const uint32_t b = static_cast<uint32_t>(s1) ^ 0xffffffffu;
      const uint32_t c = static_cast<uint32_t>(s2) ^ 0xffffffffu;
      crc = kShift.Shift(kShift.Shift(a) ^ b) ^ c;
      p += 3 * kCrcLane;
      n -= 3 * kCrcLane;
    } while (n >= 3 * kCrcLane);
  }
#endif
  crc = ~crc;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
#if defined(__x86_64__)
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = _mm_crc32_u64(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
#else
  while (n >= 4) {
    uint32_t word;
    std::memcpy(&word, p, 4);
    crc = _mm_crc32_u32(crc, word);
    p += 4;
    n -= 4;
  }
#endif
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  return ~crc;
}

#else  // !ZEROBAK_CRC32C_X86

bool Crc32cHardwareSupported() { return false; }

uint32_t Crc32cHardware(uint32_t crc, const void* data, size_t n) {
  return Crc32cSlice8(crc, data, n);
}

#endif  // ZEROBAK_CRC32C_X86

const char* Crc32cImplementation() {
  if (Crc32cHardwareSupported()) return "sse4.2";
  return std::endian::native == std::endian::little ? "slice8" : "portable";
}

}  // namespace internal

namespace {

using Crc32cKernel = uint32_t (*)(uint32_t, const void*, size_t);

Crc32cKernel PickKernel() {
  if (internal::Crc32cHardwareSupported()) return &internal::Crc32cHardware;
  return &internal::Crc32cSlice8;  // Falls through to portable on BE hosts.
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  // Resolved exactly once, thread-safely, on first use.
  static const Crc32cKernel kernel = PickKernel();
  return kernel(crc, data, n);
}

namespace {

// GF(2) 32x32 matrix times vector: each set bit of `vec` selects a row.
uint32_t Gf2MatrixTimes(const uint32_t* mat, uint32_t vec) {
  uint32_t sum = 0;
  while (vec != 0) {
    if (vec & 1u) sum ^= *mat;
    vec >>= 1;
    ++mat;
  }
  return sum;
}

// square = mat * mat over GF(2).
void Gf2MatrixSquare(uint32_t* square, const uint32_t* mat) {
  for (int i = 0; i < 32; ++i) square[i] = Gf2MatrixTimes(mat, mat[i]);
}

}  // namespace

uint32_t Crc32cCombine(uint32_t crc1, uint32_t crc2, size_t len2) {
  if (len2 == 0) return crc1;

  // zlib's crc32_combine, with the Castagnoli polynomial: advancing a CRC
  // past k zero bytes is a linear operator over GF(2), so build the
  // one-zero-bit matrix, square it up to per-bit-of-len2 operators, and
  // apply the ones selected by len2's bits. The pre/post conditioning in
  // Crc32cExtend cancels across the xor, so finalized CRCs combine
  // directly: Crc32c(A||B) == Crc32cCombine(Crc32c(A), Crc32c(B), |B|).
  uint32_t even[32];  // Operator for 2^(2k+1) zero bits.
  uint32_t odd[32];   // Operator for 2^(2k) zero bits.

  odd[0] = kPoly;  // One shifted-in zero bit, reflected form.
  uint32_t row = 1;
  for (int i = 1; i < 32; ++i) {
    odd[i] = row;
    row <<= 1;
  }
  Gf2MatrixSquare(even, odd);  // Two zero bits.
  Gf2MatrixSquare(odd, even);  // Four zero bits == half a zero byte.

  // Walk len2's bits, squaring the operator each step; apply it to crc1
  // for every set bit. even/odd alternate as source and destination.
  size_t len = len2;
  do {
    Gf2MatrixSquare(even, odd);
    if (len & 1u) crc1 = Gf2MatrixTimes(even, crc1);
    len >>= 1;
    if (len == 0) break;
    Gf2MatrixSquare(odd, even);
    if (len & 1u) crc1 = Gf2MatrixTimes(odd, crc1);
    len >>= 1;
  } while (len != 0);

  return crc1 ^ crc2;
}

Crc32cCombineOp::Crc32cCombineOp(size_t len2) : len2_(len2) {
  for (int i = 0; i < 32; ++i) mat_[i] = 1u << i;  // Identity.
  if (len2 == 0) return;

  // Same squaring walk as Crc32cCombine, but the selected per-bit
  // operators are composed into one matrix applied to the identity,
  // instead of being applied to a particular crc1. Paying the squarings
  // once here makes every subsequent Combine() a single matrix-vector
  // product.
  uint32_t even[32];
  uint32_t odd[32];
  uint32_t tmp[32];
  auto compose = [&](const uint32_t* op) {
    for (int i = 0; i < 32; ++i) tmp[i] = Gf2MatrixTimes(op, mat_[i]);
    for (int i = 0; i < 32; ++i) mat_[i] = tmp[i];
  };

  odd[0] = kPoly;
  uint32_t row = 1;
  for (int i = 1; i < 32; ++i) {
    odd[i] = row;
    row <<= 1;
  }
  Gf2MatrixSquare(even, odd);
  Gf2MatrixSquare(odd, even);

  size_t len = len2;
  do {
    Gf2MatrixSquare(even, odd);
    if (len & 1u) compose(even);
    len >>= 1;
    if (len == 0) break;
    Gf2MatrixSquare(odd, even);
    if (len & 1u) compose(odd);
    len >>= 1;
  } while (len != 0);
}

uint32_t Crc32cCombineOp::Combine(uint32_t crc1, uint32_t crc2) const {
  if (len2_ == 0) return crc1;
  return Gf2MatrixTimes(mat_, crc1) ^ crc2;
}

uint32_t Crc32cMask(uint32_t crc) {
  constexpr uint32_t kMaskDelta = 0xa282ead8u;
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

uint32_t Crc32cUnmask(uint32_t masked) {
  constexpr uint32_t kMaskDelta = 0xa282ead8u;
  const uint32_t rot = masked - kMaskDelta;
  return (rot << 15) | (rot >> 17);
}

}  // namespace zerobak
