#include "common/crc32c.h"

#include <array>

namespace zerobak {
namespace {

// Table-driven CRC-32C. The table is generated once at startup from the
// Castagnoli polynomial (reflected form 0x82f63b78).
struct Crc32cTable {
  std::array<uint32_t, 256> entries;

  constexpr Crc32cTable() : entries() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82f63b78u : 0u);
      }
      entries[i] = crc;
    }
  }
};

constexpr Crc32cTable kTable;

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable.entries[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32cMask(uint32_t crc) {
  constexpr uint32_t kMaskDelta = 0xa282ead8u;
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

uint32_t Crc32cUnmask(uint32_t masked) {
  constexpr uint32_t kMaskDelta = 0xa282ead8u;
  const uint32_t rot = masked - kMaskDelta;
  return (rot << 15) | (rot >> 17);
}

}  // namespace zerobak
