#include "common/logging.h"

namespace zerobak {
namespace {

LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal), enabled_(fatal || level >= g_level) {
  if (enabled_) {
    // Trim the path down to the basename for readability.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << std::endl;
  }
  if (fatal_) std::abort();
}

}  // namespace internal_logging
}  // namespace zerobak
