#include "common/rng.h"

#include <cmath>

namespace zerobak {

double Rng::Exponential(double mean) {
  assert(mean > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

uint64_t Rng::Zipf(uint64_t n, double theta) {
  assert(n > 0);
  assert(theta > 0 && theta < 1);
  // Gray et al., "Quickly generating billion-record synthetic databases".
  const double alpha = 1.0 / (1.0 - theta);
  double zetan = 0.0;
  // Exact zeta for small n; sampled approximation keeps large-n setup cheap
  // while preserving the distribution shape for workload purposes.
  const uint64_t kExactLimit = 10000;
  if (n <= kExactLimit) {
    for (uint64_t i = 1; i <= n; ++i) zetan += 1.0 / std::pow(i, theta);
  } else {
    for (uint64_t i = 1; i <= kExactLimit; ++i) {
      zetan += 1.0 / std::pow(i, theta);
    }
    // Integral tail approximation of the generalized harmonic number.
    zetan += (std::pow(static_cast<double>(n), 1 - theta) -
              std::pow(static_cast<double>(kExactLimit), 1 - theta)) /
             (1 - theta);
  }
  const double zeta2 = 1.0 + std::pow(0.5, theta);
  const double eta =
      (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
      (1.0 - zeta2 / zetan);
  const double u = NextDouble();
  const double uz = u * zetan;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  return static_cast<uint64_t>(
      static_cast<double>(n) *
      std::pow(eta * u - eta + 1.0, alpha));
}

}  // namespace zerobak
