#ifndef ZEROBAK_COMMON_RNG_H_
#define ZEROBAK_COMMON_RNG_H_

#include <cassert>
#include <cstdint>

namespace zerobak {

// Deterministic pseudo-random number generator (xoshiro256**). Every
// stochastic component in the simulator draws from an explicitly seeded Rng
// so that experiments and tests are exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  // Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). `bound` must be positive.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    return Next() % bound;
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // True with probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Exponentially distributed double with the given mean (> 0).
  double Exponential(double mean);

  // Zipf-distributed integer in [0, n) with skew parameter `theta` in
  // (0, 1). Uses the Gray et al. approximation common in YCSB-style
  // workload generators.
  uint64_t Zipf(uint64_t n, double theta);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace zerobak

#endif  // ZEROBAK_COMMON_RNG_H_
