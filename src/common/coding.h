#ifndef ZEROBAK_COMMON_CODING_H_
#define ZEROBAK_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace zerobak {

// Little-endian fixed-width and length-prefixed encodings used by the WAL,
// journal records, page formats and checkpoint images. All decoders take a
// string_view cursor and return false on underflow instead of reading past
// the end.

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline void EncodeFixed32(char* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline bool GetFixed32(std::string_view* in, uint32_t* v) {
  if (in->size() < 4) return false;
  *v = DecodeFixed32(in->data());
  in->remove_prefix(4);
  return true;
}

inline bool GetFixed64(std::string_view* in, uint64_t* v) {
  if (in->size() < 8) return false;
  *v = DecodeFixed64(in->data());
  in->remove_prefix(8);
  return true;
}

// Length-prefixed string: fixed32 length followed by the bytes.
inline void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutFixed32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

inline bool GetLengthPrefixed(std::string_view* in, std::string_view* value) {
  uint32_t len;
  if (!GetFixed32(in, &len)) return false;
  if (in->size() < len) return false;
  *value = in->substr(0, len);
  in->remove_prefix(len);
  return true;
}

inline bool GetLengthPrefixed(std::string_view* in, std::string* value) {
  std::string_view sv;
  if (!GetLengthPrefixed(in, &sv)) return false;
  value->assign(sv.data(), sv.size());
  return true;
}

}  // namespace zerobak

#endif  // ZEROBAK_COMMON_CODING_H_
