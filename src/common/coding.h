#ifndef ZEROBAK_COMMON_CODING_H_
#define ZEROBAK_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace zerobak {

// Little-endian fixed-width and length-prefixed encodings used by the WAL,
// journal records, page formats and checkpoint images. All decoders take a
// string_view cursor and return false on underflow instead of reading past
// the end.

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline void EncodeFixed32(char* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline bool GetFixed32(std::string_view* in, uint32_t* v) {
  if (in->size() < 4) return false;
  *v = DecodeFixed32(in->data());
  in->remove_prefix(4);
  return true;
}

inline bool GetFixed64(std::string_view* in, uint64_t* v) {
  if (in->size() < 8) return false;
  *v = DecodeFixed64(in->data());
  in->remove_prefix(8);
  return true;
}

// LEB128 varints, used where values are usually small (wire-format record
// headers, compressed-block sizes). 7 bits per byte, high bit = continue.

inline void PutVarint64(std::string* dst, uint64_t v) {
  char buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<char>(v | 0x80);
    v >>= 7;
  }
  buf[n++] = static_cast<char>(v);
  dst->append(buf, n);
}

inline void PutVarint32(std::string* dst, uint32_t v) {
  PutVarint64(dst, v);
}

inline bool GetVarint64(std::string_view* in, uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !in->empty(); shift += 7) {
    const uint8_t byte = static_cast<uint8_t>(in->front());
    in->remove_prefix(1);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
  }
  return false;  // Underflow or more than 10 continuation bytes.
}

inline bool GetVarint32(std::string_view* in, uint32_t* v) {
  uint64_t wide;
  if (!GetVarint64(in, &wide) || wide > UINT32_MAX) return false;
  *v = static_cast<uint32_t>(wide);
  return true;
}

inline int VarintLength(uint64_t v) {
  int n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

// Length-prefixed string: fixed32 length followed by the bytes.
inline void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutFixed32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

inline bool GetLengthPrefixed(std::string_view* in, std::string_view* value) {
  uint32_t len;
  if (!GetFixed32(in, &len)) return false;
  if (in->size() < len) return false;
  *value = in->substr(0, len);
  in->remove_prefix(len);
  return true;
}

inline bool GetLengthPrefixed(std::string_view* in, std::string* value) {
  std::string_view sv;
  if (!GetLengthPrefixed(in, &sv)) return false;
  value->assign(sv.data(), sv.size());
  return true;
}

}  // namespace zerobak

#endif  // ZEROBAK_COMMON_CODING_H_
