#ifndef ZEROBAK_COMMON_VALUE_H_
#define ZEROBAK_COMMON_VALUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/status.h"

namespace zerobak {

// A small dynamic value (JSON data model: null, bool, int64, double,
// string, array, object) used for container-platform resource specs and
// statuses, mirroring the untyped maps of the Kubernetes API machinery.
class Value {
 public:
  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;

  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() : data_(std::monostate{}) {}
  Value(std::nullptr_t) : data_(std::monostate{}) {}
  Value(bool b) : data_(b) {}
  Value(int i) : data_(static_cast<int64_t>(i)) {}
  Value(int64_t i) : data_(i) {}
  Value(uint64_t i) : data_(static_cast<int64_t>(i)) {}
  Value(double d) : data_(d) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(std::string_view s) : data_(std::string(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  static Value MakeArray() { return Value(Array{}); }
  static Value MakeObject() { return Value(Object{}); }

  Type type() const;
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  // Typed accessors; the caller must check the type first (checked via
  // ZB_CHECK in the implementation).
  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;  // Accepts int too.
  const std::string& AsString() const;
  const Array& AsArray() const;
  Array& MutableArray();
  const Object& AsObject() const;
  Object& MutableObject();

  // Object access. operator[] inserts a null member if missing (and
  // converts a null value into an object first, for fluent building).
  Value& operator[](const std::string& key);
  // Returns nullptr if this is not an object or the key is missing.
  const Value* Find(const std::string& key) const;

  // Lookup with defaults, tolerant of missing members/wrong types.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  // Array building; converts a null value into an array first.
  void Append(Value v);

  bool operator==(const Value& other) const { return data_ == other.data_; }

  // Compact JSON serialization (keys sorted by map order).
  std::string ToJson() const;

  // Strict JSON parser for the supported data model.
  static StatusOr<Value> FromJson(std::string_view json);

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string, Array,
               Object>
      data_;
};

}  // namespace zerobak

#endif  // ZEROBAK_COMMON_VALUE_H_
