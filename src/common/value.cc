#include "common/value.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace zerobak {

Value::Type Value::type() const {
  switch (data_.index()) {
    case 0:
      return Type::kNull;
    case 1:
      return Type::kBool;
    case 2:
      return Type::kInt;
    case 3:
      return Type::kDouble;
    case 4:
      return Type::kString;
    case 5:
      return Type::kArray;
    case 6:
      return Type::kObject;
  }
  return Type::kNull;
}

bool Value::AsBool() const {
  ZB_CHECK(is_bool()) << "Value is not a bool";
  return std::get<bool>(data_);
}

int64_t Value::AsInt() const {
  ZB_CHECK(is_int()) << "Value is not an int";
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  if (is_int()) return static_cast<double>(std::get<int64_t>(data_));
  ZB_CHECK(is_double()) << "Value is not a number";
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  ZB_CHECK(is_string()) << "Value is not a string";
  return std::get<std::string>(data_);
}

const Value::Array& Value::AsArray() const {
  ZB_CHECK(is_array()) << "Value is not an array";
  return std::get<Array>(data_);
}

Value::Array& Value::MutableArray() {
  if (is_null()) data_ = Array{};
  ZB_CHECK(is_array()) << "Value is not an array";
  return std::get<Array>(data_);
}

const Value::Object& Value::AsObject() const {
  ZB_CHECK(is_object()) << "Value is not an object";
  return std::get<Object>(data_);
}

Value::Object& Value::MutableObject() {
  if (is_null()) data_ = Object{};
  ZB_CHECK(is_object()) << "Value is not an object";
  return std::get<Object>(data_);
}

Value& Value::operator[](const std::string& key) {
  return MutableObject()[key];
}

const Value* Value::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto& obj = std::get<Object>(data_);
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

std::string Value::GetString(const std::string& key,
                             const std::string& fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->AsString() : fallback;
}

int64_t Value::GetInt(const std::string& key, int64_t fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_int()) ? v->AsInt() : fallback;
}

bool Value::GetBool(const std::string& key, bool fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->AsBool() : fallback;
}

void Value::Append(Value v) { MutableArray().push_back(std::move(v)); }

namespace {

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void SerializeTo(const Value& v, std::string* out) {
  switch (v.type()) {
    case Value::Type::kNull:
      out->append("null");
      break;
    case Value::Type::kBool:
      out->append(v.AsBool() ? "true" : "false");
      break;
    case Value::Type::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(v.AsInt()));
      out->append(buf);
      break;
    }
    case Value::Type::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
      out->append(buf);
      break;
    }
    case Value::Type::kString:
      AppendJsonString(v.AsString(), out);
      break;
    case Value::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Value& e : v.AsArray()) {
        if (!first) out->push_back(',');
        first = false;
        SerializeTo(e, out);
      }
      out->push_back(']');
      break;
    }
    case Value::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, val] : v.AsObject()) {
        if (!first) out->push_back(',');
        first = false;
        AppendJsonString(key, out);
        out->push_back(':');
        SerializeTo(val, out);
      }
      out->push_back('}');
      break;
    }
  }
}

// Recursive-descent JSON parser.
class Parser {
 public:
  explicit Parser(std::string_view in) : in_(in), pos_(0) {}

  StatusOr<Value> Parse() {
    SkipSpace();
    auto v = ParseValue();
    if (!v.ok()) return v;
    SkipSpace();
    if (pos_ != in_.size()) {
      return InvalidArgumentError("trailing characters after JSON value");
    }
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < in_.size() && in_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    if (in_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  StatusOr<Value> ParseValue() {
    if (pos_ >= in_.size()) return InvalidArgumentError("unexpected end");
    const char c = in_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      auto s = ParseString();
      if (!s.ok()) return s.status();
      return Value(std::move(s).value());
    }
    if (ConsumeWord("null")) return Value(nullptr);
    if (ConsumeWord("true")) return Value(true);
    if (ConsumeWord("false")) return Value(false);
    return ParseNumber();
  }

  StatusOr<std::string> ParseString() {
    if (!Consume('"')) return InvalidArgumentError("expected '\"'");
    std::string out;
    while (pos_ < in_.size()) {
      char c = in_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= in_.size()) break;
        char esc = in_[pos_++];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > in_.size()) {
              return InvalidArgumentError("bad \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = in_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                return InvalidArgumentError("bad hex digit in \\u escape");
              }
            }
            // Only Basic-Latin escapes are produced by our serializer;
            // encode others as UTF-8.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xc0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out.push_back(static_cast<char>(0xe0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default:
            return InvalidArgumentError("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return InvalidArgumentError("unterminated string");
  }

  StatusOr<Value> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    bool is_double = false;
    while (pos_ < in_.size()) {
      char c = in_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return InvalidArgumentError("expected a value");
    const std::string text(in_.substr(start, pos_ - start));
    if (is_double) {
      return Value(std::strtod(text.c_str(), nullptr));
    }
    return Value(static_cast<int64_t>(std::strtoll(text.c_str(), nullptr, 10)));
  }

  StatusOr<Value> ParseArray() {
    Consume('[');
    Value out = Value::MakeArray();
    SkipSpace();
    if (Consume(']')) return out;
    while (true) {
      SkipSpace();
      auto v = ParseValue();
      if (!v.ok()) return v;
      out.Append(std::move(v).value());
      SkipSpace();
      if (Consume(']')) return out;
      if (!Consume(',')) return InvalidArgumentError("expected ',' or ']'");
    }
  }

  StatusOr<Value> ParseObject() {
    Consume('{');
    Value out = Value::MakeObject();
    SkipSpace();
    if (Consume('}')) return out;
    while (true) {
      SkipSpace();
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipSpace();
      if (!Consume(':')) return InvalidArgumentError("expected ':'");
      SkipSpace();
      auto v = ParseValue();
      if (!v.ok()) return v;
      out[std::move(key).value()] = std::move(v).value();
      SkipSpace();
      if (Consume('}')) return out;
      if (!Consume(',')) return InvalidArgumentError("expected ',' or '}'");
    }
  }

  std::string_view in_;
  size_t pos_;
};

}  // namespace

std::string Value::ToJson() const {
  std::string out;
  SerializeTo(*this, &out);
  return out;
}

StatusOr<Value> Value::FromJson(std::string_view json) {
  return Parser(json).Parse();
}

}  // namespace zerobak
