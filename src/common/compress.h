#ifndef ZEROBAK_COMMON_COMPRESS_H_
#define ZEROBAK_COMMON_COMPRESS_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/status.h"

namespace zerobak {

// Self-contained LZ-style block compressor used by the replication wire
// format. Greedy 4-byte hash matching with literal runs, LZ4-like token
// encoding, no external dependencies. Every frame starts with a method
// byte and the varint raw size, so the decoder can validate lengths and
// incompressible input falls back to a "stored" escape — compression
// therefore never expands a block by more than the small frame header.
//
// Frame layout:
//   [method u8]  0 = stored, 1 = LZ
//   [varint raw_size]
//   stored: raw_size bytes verbatim
//   LZ:     sequences of {token, literal-length ext*, literals,
//            offset u16le, match-length ext*}; the final sequence may be
//            literals-only. Token = (lit_len << 4) | (match_len - 4),
//            nibble value 15 extended with 0xff runs as in LZ4.

// Upper bound on the encoded size of `n` input bytes (stored escape +
// frame header). Callers may reserve this much before Compress.
inline size_t CompressBound(size_t n) { return n + 16; }

// Compresses `input` and appends the frame to `*out`. Never fails: when
// the LZ encoding would not shrink the block the frame stores the input
// verbatim.
void Compress(std::string_view input, std::string* out);

// Decompresses one frame produced by Compress, appending the raw bytes to
// `*out`. Returns DataLoss on any malformed input — truncated frames,
// out-of-range match offsets, length mismatches — and never reads or
// writes out of bounds regardless of how corrupt the input is.
Status Decompress(std::string_view input, std::string* out);

// Returns the raw size recorded in a frame header without decompressing,
// or an error if the header is malformed.
StatusOr<size_t> DecompressedSize(std::string_view input);

}  // namespace zerobak

#endif  // ZEROBAK_COMMON_COMPRESS_H_
