#ifndef ZEROBAK_EXEC_THREAD_POOL_H_
#define ZEROBAK_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace zerobak::exec {

// A fixed-size compute pool for offloading pure data-parallel work —
// compression, checksumming, codec passes, sorted batch apply — from the
// single-threaded discrete-event simulator without giving up determinism.
//
// The contract that keeps the simulation bit-reproducible:
//
//   * Every parallel section is bracketed inside ONE simulator event: the
//     caller fans work out with ParallelFor and blocks until the join
//     barrier, so no sim-visible state changes while workers run and no
//     work outlives the event that spawned it.
//   * Workers compute into disjoint, pre-assigned output slots; the caller
//     merges results in canonical index order after the join. Scheduling
//     (which lane ran which block, steals, queue depths) can vary run to
//     run, but outputs are a pure function of the inputs.
//   * Sim-visible decisions (formats, sizes, thresholds) must never depend
//     on lanes(); the pool only changes *when* bytes get computed, not
//     which bytes.
//
// Topology: `lanes` is the total number of compute lanes INCLUDING the
// calling (simulator) thread, so lanes=1 means no worker threads and every
// ParallelFor runs inline — the legacy serial path, byte-for-byte. Each
// lane owns a sharded task deque; blocks are dealt round-robin at submit,
// a lane pops its own shard front-first and steals from other shards
// back-first when idle. The caller participates in draining its section,
// then parks on the section's join barrier until stragglers finish.
//
// Nested sections (a worker's block calling ParallelFor) run inline on the
// worker — the pool never deadlocks on itself.
class ThreadPool {
 public:
  // Host-side execution counters, aggregated since construction. These
  // describe scheduling on the machine running the simulation, NOT
  // simulated behavior: steals and queue depths legitimately differ
  // between runs and between lane counts. Anything comparing runs for
  // determinism must exclude them (the engine exports them under the
  // "exec." metric prefix for exactly that reason).
  struct Stats {
    uint64_t sections = 0;         // ParallelFor calls that fanned out.
    uint64_t inline_sections = 0;  // Ran inline (lanes=1, tiny n, nested).
    uint64_t tasks = 0;            // Blocks enqueued across all sections.
    uint64_t steals = 0;           // Blocks taken from a foreign shard.
    uint64_t max_queue_depth = 0;  // Deepest any shard ever got.
  };

  // Spawns lanes-1 worker threads. lanes==0 is treated as 1.
  explicit ThreadPool(unsigned lanes);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned lanes() const { return lanes_; }

  // Runs body(begin, end) over [0, n) split into blocks of at most `grain`
  // indices, in parallel across the pool, and returns only when every
  // block has completed (the join barrier). body must be safe to run
  // concurrently against itself on disjoint ranges and must not throw.
  // Runs inline when the section is too small to be worth fanning out,
  // when lanes()==1, or when called from inside a pool worker.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t begin, size_t end)>& body);

  Stats stats() const;

  // max(1, std::thread::hardware_concurrency()) — the default lane count
  // when a caller asks for "auto".
  static unsigned HardwareLanes();

 private:
  struct Job;
  struct Task {
    Job* job = nullptr;
    size_t begin = 0;
    size_t end = 0;
  };
  struct Shard {
    std::mutex mu;
    std::deque<Task> queue;
  };

  void WorkerLoop(unsigned self);
  // Pops one task (own shard front, else steal a foreign back) and runs
  // it. Returns false when every shard was empty.
  bool TryRunOne(unsigned self);
  void RunTask(const Task& task);

  const unsigned lanes_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<uint64_t> ready_{0};  // Enqueued-but-unclaimed tasks.
  bool stop_ = false;               // Guarded by wake_mu_.

  std::atomic<uint64_t> sections_{0};
  std::atomic<uint64_t> inline_sections_{0};
  std::atomic<uint64_t> tasks_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> max_queue_depth_{0};
};

}  // namespace zerobak::exec

#endif  // ZEROBAK_EXEC_THREAD_POOL_H_
