#include "exec/thread_pool.h"

#include <algorithm>

namespace zerobak::exec {
namespace {

// Set while a pool worker is executing a task, so a nested ParallelFor
// from inside a block runs inline instead of re-entering the queues (which
// could deadlock the join barrier on a full pool).
thread_local bool t_inside_pool_worker = false;

}  // namespace

// One parallel section in flight. Lives on the caller's stack for the
// duration of its ParallelFor; tasks hold a raw pointer, which is safe
// because the final pending decrement happens under mu (see RunTask), so
// the join barrier cannot release the caller before the last task is
// completely done with the Job.
struct ThreadPool::Job {
  const std::function<void(size_t, size_t)>* body = nullptr;
  std::atomic<size_t> pending{0};
  std::mutex mu;
  std::condition_variable cv;
};

ThreadPool::ThreadPool(unsigned lanes) : lanes_(lanes == 0 ? 1 : lanes) {
  shards_.reserve(lanes_);
  for (unsigned i = 0; i < lanes_; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  workers_.reserve(lanes_ - 1);
  for (unsigned i = 1; i < lanes_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

unsigned ThreadPool::HardwareLanes() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::ParallelFor(
    size_t n, size_t grain,
    const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const size_t blocks = (n + grain - 1) / grain;
  if (lanes_ == 1 || blocks <= 1 || t_inside_pool_worker) {
    inline_sections_.fetch_add(1, std::memory_order_relaxed);
    body(0, n);
    return;
  }

  sections_.fetch_add(1, std::memory_order_relaxed);
  tasks_.fetch_add(blocks, std::memory_order_relaxed);

  Job job;
  job.body = &body;
  job.pending.store(blocks, std::memory_order_relaxed);

  // Deal blocks round-robin across the shards (shard 0 is the caller's),
  // so every lane has local work before anyone needs to steal.
  for (size_t b = 0; b < blocks; ++b) {
    const size_t begin = b * grain;
    Task task{&job, begin, std::min(n, begin + grain)};
    Shard& shard = *shards_[b % lanes_];
    uint64_t depth;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.queue.push_back(task);
      depth = shard.queue.size();
      // Count the task before releasing the shard lock: it is claimable
      // the moment the lock drops, and an already-awake worker's
      // decrement must never outrun the increment (ready_ is unsigned).
      ready_.fetch_add(1, std::memory_order_relaxed);
    }
    uint64_t seen = max_queue_depth_.load(std::memory_order_relaxed);
    while (depth > seen && !max_queue_depth_.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed)) {
    }
  }
  {
    // Empty critical section ordering the ready_ increments against a
    // worker's wait predicate: a worker either sees the new count while
    // holding wake_mu_, or is already parked and the notify reaches it.
    std::lock_guard<std::mutex> lock(wake_mu_);
  }
  wake_cv_.notify_all();

  // The caller is lane 0: drain until no task is claimable anywhere, then
  // park on the join barrier for blocks still running on workers.
  while (TryRunOne(0)) {
  }
  std::unique_lock<std::mutex> lock(job.mu);
  job.cv.wait(lock, [&job] {
    return job.pending.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::WorkerLoop(unsigned self) {
  t_inside_pool_worker = true;
  for (;;) {
    if (TryRunOne(self)) continue;
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this] {
      return stop_ || ready_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_) {
      // Sections join before ~ThreadPool runs, so the queues are
      // necessarily empty here.
      return;
    }
  }
}

bool ThreadPool::TryRunOne(unsigned self) {
  // Own shard first, oldest task first.
  {
    Shard& own = *shards_[self];
    std::unique_lock<std::mutex> lock(own.mu);
    if (!own.queue.empty()) {
      Task task = own.queue.front();
      own.queue.pop_front();
      lock.unlock();
      ready_.fetch_sub(1, std::memory_order_relaxed);
      RunTask(task);
      return true;
    }
  }
  // Steal newest-first from the other shards: the back of a foreign deque
  // is the block its owner would reach last.
  for (unsigned i = 1; i < lanes_; ++i) {
    Shard& victim = *shards_[(self + i) % lanes_];
    std::unique_lock<std::mutex> lock(victim.mu);
    if (victim.queue.empty()) continue;
    Task task = victim.queue.back();
    victim.queue.pop_back();
    lock.unlock();
    ready_.fetch_sub(1, std::memory_order_relaxed);
    steals_.fetch_add(1, std::memory_order_relaxed);
    RunTask(task);
    return true;
  }
  return false;
}

void ThreadPool::RunTask(const Task& task) {
  // Mark the executing thread (worker OR the caller draining its shard)
  // as inside a task, so a nested ParallelFor from the body degrades to
  // an inline loop instead of re-entering the queues.
  const bool prev = t_inside_pool_worker;
  t_inside_pool_worker = true;
  (*task.job->body)(task.begin, task.end);
  t_inside_pool_worker = prev;
  // Decrement while holding job->mu. The Job lives on the caller's stack,
  // and the caller's wait predicate only reads pending under this mutex —
  // so it cannot observe zero, return, and destroy the Job while this
  // thread is still about to touch job->mu/cv. The release in fetch_sub
  // additionally pairs with the acquire load in the predicate, making the
  // task's writes visible to the caller.
  Job* job = task.job;
  std::lock_guard<std::mutex> lock(job->mu);
  if (job->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    job->cv.notify_all();
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.sections = sections_.load(std::memory_order_relaxed);
  s.inline_sections = inline_sections_.load(std::memory_order_relaxed);
  s.tasks = tasks_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace zerobak::exec
