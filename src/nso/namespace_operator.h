#ifndef ZEROBAK_NSO_NAMESPACE_OPERATOR_H_
#define ZEROBAK_NSO_NAMESPACE_OPERATOR_H_

#include <string>
#include <vector>

#include "container/controller.h"

namespace zerobak::nso {

// The annotation users put on a namespace to request protection, and the
// value used throughout the demonstration (Fig. 3).
inline constexpr char kPolicyAnnotation[] = "backup.zerobak.io/policy";
inline constexpr char kConsistentCopyToCloud[] = "ConsistentCopyToCloud";

struct NamespaceOperatorConfig {
  std::string policy_annotation = kPolicyAnnotation;
  std::string trigger_value = kConsistentCopyToCloud;
  // Ablation switch: per-volume journals instead of one consistency group
  // (reproduces the "collapsed backup" failure mode of Section I).
  bool per_volume = false;
  // Optional journal size override for the created replication group.
  int64_t journal_capacity_bytes = 0;
};

// The paper's own contribution on the container side (Section III-B-1):
// watches namespaces for the backup tag, extracts every persistent volume
// used inside the tagged namespace, and creates one
// VolumeReplicationGroup custom resource covering all of them — which the
// replication plugin then turns into an ADC configuration with a
// consistency group. Untagging tears the protection down.
//
// The operator removes the laborious, error-prone manual task of mapping
// applications to array volumes: the user performs exactly one action
// (tagging the namespace), independent of how many volumes the namespace
// uses — the property measured by bench_operator (E3).
class NamespaceOperator : public container::Controller {
 public:
  explicit NamespaceOperator(NamespaceOperatorConfig config = {});

  std::string name() const override { return "namespace-operator"; }
  std::vector<std::string> WatchedKinds() const override {
    return {container::kKindNamespace,
            container::kKindPersistentVolumeClaim};
  }
  void Reconcile(const container::WatchEvent& event) override;

  // Name of the replication group CR managed for a namespace.
  static std::string VrgName(const std::string& ns) { return "vrg-" + ns; }

  uint64_t namespaces_configured() const { return namespaces_configured_; }

 private:
  // Builds/refreshes the VRG for a tagged namespace.
  void EnsureReplicationGroup(const std::string& ns);
  // Removes the VRG when the namespace loses the tag.
  void RemoveReplicationGroup(const std::string& ns);
  bool NamespaceIsTagged(const std::string& ns) const;

  NamespaceOperatorConfig config_;
  uint64_t namespaces_configured_ = 0;
};

}  // namespace zerobak::nso

#endif  // ZEROBAK_NSO_NAMESPACE_OPERATOR_H_
