#include "nso/namespace_operator.h"

#include <utility>

#include "common/logging.h"

namespace zerobak::nso {

using container::kKindNamespace;
using container::kKindPersistentVolume;
using container::kKindPersistentVolumeClaim;
using container::kKindVolumeReplicationGroup;
using container::Resource;
using container::WatchEvent;
using container::WatchEventType;

NamespaceOperator::NamespaceOperator(NamespaceOperatorConfig config)
    : config_(std::move(config)) {}

void NamespaceOperator::Reconcile(const WatchEvent& event) {
  const Resource& r = event.resource;
  if (r.kind == kKindNamespace) {
    if (event.type == WatchEventType::kDeleted) {
      RemoveReplicationGroup(r.name);
      return;
    }
    if (r.GetAnnotation(config_.policy_annotation) ==
        config_.trigger_value) {
      EnsureReplicationGroup(r.name);
    } else {
      RemoveReplicationGroup(r.name);
    }
    return;
  }
  if (r.kind == kKindPersistentVolumeClaim) {
    // A volume appeared or changed inside a namespace that is already
    // protected: refresh the replication group so the new volume joins
    // the consistency group.
    if (event.type != WatchEventType::kDeleted &&
        NamespaceIsTagged(r.ns)) {
      EnsureReplicationGroup(r.ns);
    }
  }
}

bool NamespaceOperator::NamespaceIsTagged(const std::string& ns) const {
  auto obj = api_->Get(kKindNamespace, "", ns);
  if (!obj.ok()) return false;
  return obj->GetAnnotation(config_.policy_annotation) ==
         config_.trigger_value;
}

void NamespaceOperator::EnsureReplicationGroup(const std::string& ns) {
  // Extract every bound PVC of the namespace and resolve it to an array
  // volume handle through its PV.
  Value volumes = Value::MakeArray();
  for (const Resource& pvc : api_->List(kKindPersistentVolumeClaim, ns)) {
    const std::string pv_name = pvc.spec.GetString("volumeName");
    if (pv_name.empty()) continue;  // Unbound; a later event retries.
    auto pv = api_->Get(kKindPersistentVolume, "", pv_name);
    if (!pv.ok()) continue;
    const std::string handle = pv->spec.GetString("volumeHandle");
    if (handle.empty()) continue;
    Value entry = Value::MakeObject();
    entry["handle"] = handle;
    entry["pvcName"] = pvc.name;
    entry["capacityBytes"] = pv->spec.GetInt("capacityBytes");
    volumes.Append(std::move(entry));
  }
  if (volumes.AsArray().empty()) return;  // Nothing to protect yet.

  const std::string vrg_name = VrgName(ns);
  if (!api_->Exists(kKindVolumeReplicationGroup, ns, vrg_name)) {
    Resource vrg;
    vrg.kind = kKindVolumeReplicationGroup;
    vrg.ns = ns;
    vrg.name = vrg_name;
    vrg.labels["app.kubernetes.io/managed-by"] = name();
    vrg.spec["sourceNamespace"] = ns;
    vrg.spec["volumes"] = volumes;
    vrg.spec["perVolume"] = config_.per_volume;
    if (config_.journal_capacity_bytes > 0) {
      vrg.spec["journalCapacityBytes"] = config_.journal_capacity_bytes;
    }
    auto created = api_->Create(std::move(vrg));
    if (created.ok()) {
      ++namespaces_configured_;
    } else if (created.status().code() != StatusCode::kAlreadyExists) {
      ZB_LOG(Warning) << "VRG create failed: " << created.status();
    }
    return;
  }

  // Refresh the volume list if it changed (e.g. a new PVC was added to
  // the business process).
  Status st = api_->Mutate(
      kKindVolumeReplicationGroup, ns, vrg_name, [&](Resource* r) {
        r->spec["volumes"] = volumes;
      });
  if (!st.ok()) {
    ZB_LOG(Warning) << "VRG refresh failed: " << st;
  }
}

void NamespaceOperator::RemoveReplicationGroup(const std::string& ns) {
  const std::string vrg_name = VrgName(ns);
  if (!api_->Exists(kKindVolumeReplicationGroup, ns, vrg_name)) return;
  Status st = api_->Delete(kKindVolumeReplicationGroup, ns, vrg_name);
  if (!st.ok() && st.code() != StatusCode::kNotFound) {
    ZB_LOG(Warning) << "VRG delete failed: " << st;
  }
}

}  // namespace zerobak::nso
