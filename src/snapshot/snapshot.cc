#include "snapshot/snapshot.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/logging.h"

namespace zerobak::snapshot {

CowSnapshot::CowSnapshot(SnapshotId id, std::string name,
                         storage::Volume* source, SimTime created_at)
    : id_(id),
      name_(std::move(name)),
      source_(source),
      created_at_(created_at) {
  hook_token_ = source_->AddPreOverwriteHook(
      [this](block::Lba lba, std::string_view old_block) {
        OnSourcePreOverwrite(lba, old_block);
      });
}

CowSnapshot::~CowSnapshot() {
  source_->RemovePreOverwriteHook(hook_token_);
}

void CowSnapshot::OnSourcePreOverwrite(block::Lba lba,
                                       std::string_view old_block) {
  // First overwrite wins: the preserved copy is the content at snapshot
  // creation time.
  preserved_.try_emplace(lba, std::string(old_block));
}

std::string CowSnapshot::PointInTimeBlock(block::Lba lba) const {
  auto pit = preserved_.find(lba);
  if (pit != preserved_.end()) return pit->second;
  return source_->store().ReadBlock(lba);
}

Status CowSnapshot::Read(block::Lba lba, uint32_t count, std::string* out) {
  ZB_RETURN_IF_ERROR(CheckRange(lba, count));
  out->clear();
  out->reserve(static_cast<size_t>(count) * block_size());
  for (uint32_t i = 0; i < count; ++i) {
    auto dit = delta_.find(lba + i);
    if (dit != delta_.end()) {
      out->append(dit->second);
    } else {
      out->append(PointInTimeBlock(lba + i));
    }
  }
  return OkStatus();
}

Status CowSnapshot::Write(block::Lba lba, uint32_t count,
                          std::string_view data) {
  ZB_RETURN_IF_ERROR(CheckRange(lba, count));
  if (data.size() != static_cast<size_t>(count) * block_size()) {
    return InvalidArgumentError("snapshot write payload size mismatch");
  }
  for (uint32_t i = 0; i < count; ++i) {
    delta_[lba + i] = std::string(
        data.substr(static_cast<size_t>(i) * block_size(), block_size()));
  }
  return OkStatus();
}

SnapshotManager::SnapshotManager(storage::StorageArray* array)
    : array_(array) {}

StatusOr<SnapshotId> SnapshotManager::CreateSnapshot(
    storage::VolumeId source, const std::string& name) {
  if (array_->failed()) {
    return UnavailableError("array " + array_->serial() + " has failed");
  }
  ZB_ASSIGN_OR_RETURN(storage::Volume * vol, array_->FindVolume(source));
  const SnapshotId id = next_snapshot_id_++;
  snapshots_.emplace(id, std::make_unique<CowSnapshot>(
                             id, name, vol, array_->env()->now()));
  return id;
}

StatusOr<SnapshotGroupId> SnapshotManager::CreateSnapshotGroup(
    const std::vector<storage::VolumeId>& sources, const std::string& name) {
  if (array_->failed()) {
    return UnavailableError("array " + array_->serial() + " has failed");
  }
  if (sources.empty()) {
    return InvalidArgumentError("empty snapshot group");
  }
  // All-or-nothing: validate every source before creating anything.
  std::vector<storage::Volume*> vols;
  vols.reserve(sources.size());
  for (storage::VolumeId vid : sources) {
    ZB_ASSIGN_OR_RETURN(storage::Volume * vol, array_->FindVolume(vid));
    vols.push_back(vol);
  }
  SnapshotGroupInfo info;
  info.id = next_group_id_++;
  info.name = name;
  info.created_at = array_->env()->now();
  for (size_t i = 0; i < vols.size(); ++i) {
    const SnapshotId sid = next_snapshot_id_++;
    snapshots_.emplace(
        sid, std::make_unique<CowSnapshot>(
                 sid, name + "-" + vols[i]->name(), vols[i], info.created_at));
    info.members.push_back(sid);
  }
  const SnapshotGroupId gid = info.id;
  groups_.emplace(gid, std::move(info));
  return gid;
}

Status SnapshotManager::DeleteSnapshot(SnapshotId id) {
  auto it = snapshots_.find(id);
  if (it == snapshots_.end()) {
    return NotFoundError("snapshot " + std::to_string(id));
  }
  for (auto& [gid, info] : groups_) {
    std::erase(info.members, id);
  }
  snapshots_.erase(it);
  return OkStatus();
}

Status SnapshotManager::DeleteSnapshotGroup(SnapshotGroupId id) {
  auto it = groups_.find(id);
  if (it == groups_.end()) {
    return NotFoundError("snapshot group " + std::to_string(id));
  }
  for (SnapshotId sid : it->second.members) {
    snapshots_.erase(sid);
  }
  groups_.erase(it);
  return OkStatus();
}

CowSnapshot* SnapshotManager::GetSnapshot(SnapshotId id) {
  auto it = snapshots_.find(id);
  return it == snapshots_.end() ? nullptr : it->second.get();
}

StatusOr<SnapshotGroupInfo> SnapshotManager::GetGroup(
    SnapshotGroupId id) const {
  auto it = groups_.find(id);
  if (it == groups_.end()) {
    return NotFoundError("snapshot group " + std::to_string(id));
  }
  return it->second;
}

std::vector<SnapshotId> SnapshotManager::ListSnapshots() const {
  std::vector<SnapshotId> out;
  for (const auto& [id, s] : snapshots_) out.push_back(id);
  return out;
}

std::vector<SnapshotGroupId> SnapshotManager::ListGroups() const {
  std::vector<SnapshotGroupId> out;
  for (const auto& [id, g] : groups_) out.push_back(id);
  return out;
}

std::vector<SnapshotId> SnapshotManager::ListSnapshotsOfVolume(
    storage::VolumeId source) const {
  std::vector<SnapshotId> out;
  for (const auto& [id, s] : snapshots_) {
    if (s->source_volume() == source) out.push_back(id);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

StatusOr<uint64_t> SnapshotManager::RestoreVolume(SnapshotId id) {
  CowSnapshot* snap = GetSnapshot(id);
  if (snap == nullptr) {
    return NotFoundError("snapshot " + std::to_string(id));
  }
  ZB_ASSIGN_OR_RETURN(storage::Volume * vol,
                      array_->FindVolume(snap->source_volume()));
  // Restore = write the snapshot's logical image back over the source.
  // The source can differ from the image only at blocks the source
  // overwrote (preserved_) or the snapshot wrote locally (delta_), so
  // restore cost is proportional to the change set, not the volume size.
  std::unordered_set<block::Lba> touched;
  for (const auto& [lba, data] : snap->preserved_) touched.insert(lba);
  for (const auto& [lba, data] : snap->delta_) touched.insert(lba);
  std::string block;
  uint64_t rewritten = 0;
  for (block::Lba lba : touched) {
    ZB_RETURN_IF_ERROR(snap->Read(lba, 1, &block));
    if (block != vol->store().ReadBlock(lba)) {
      ZB_RETURN_IF_ERROR(vol->Write(lba, 1, block));
      ++rewritten;
    }
  }
  return rewritten;
}

}  // namespace zerobak::snapshot
