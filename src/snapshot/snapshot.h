#ifndef ZEROBAK_SNAPSHOT_SNAPSHOT_H_
#define ZEROBAK_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "block/block_device.h"
#include "common/status.h"
#include "common/time.h"
#include "storage/array.h"
#include "storage/volume.h"

namespace zerobak::snapshot {

using SnapshotId = uint64_t;
using SnapshotGroupId = uint64_t;

// A copy-on-write snapshot of an array volume (Section III-A-2): reading
// it yields the source volume's content at creation time, while the source
// keeps taking updates. Old block contents are preserved lazily, the
// instant before the source overwrites them, via the volume's
// pre-overwrite hook — so creating a snapshot is a metadata-only O(1)
// operation regardless of volume size.
//
// Snapshots are also writable (redirect-on-write into a private delta),
// which lets the backup site run databases directly on snapshot volumes
// for analytics (Fig. 6) without touching the replicated data.
class CowSnapshot : public block::BlockDevice {
 public:
  CowSnapshot(SnapshotId id, std::string name, storage::Volume* source,
              SimTime created_at);
  ~CowSnapshot() override;

  CowSnapshot(const CowSnapshot&) = delete;
  CowSnapshot& operator=(const CowSnapshot&) = delete;

  SnapshotId id() const { return id_; }
  const std::string& name() const { return name_; }
  storage::VolumeId source_volume() const { return source_->id(); }
  SimTime created_at() const { return created_at_; }

  uint32_t block_size() const override { return source_->block_size(); }
  uint64_t block_count() const override { return source_->block_count(); }

  // Reads the point-in-time image (plus any snapshot-local writes).
  Status Read(block::Lba lba, uint32_t count, std::string* out) override;

  // Writes into the snapshot's private delta; the source is untouched.
  Status Write(block::Lba lba, uint32_t count,
               std::string_view data) override;

  // Blocks preserved from the source because the source overwrote them.
  uint64_t preserved_blocks() const { return preserved_.size(); }
  // Blocks written into the snapshot's private delta.
  uint64_t delta_blocks() const { return delta_.size(); }

  // The logical point-in-time content of a single block (ignoring
  // snapshot-local writes). Used by restore and by consistency checks.
  std::string PointInTimeBlock(block::Lba lba) const;

 private:
  friend class SnapshotManager;
  void OnSourcePreOverwrite(block::Lba lba, std::string_view old_block);

  SnapshotId id_;
  std::string name_;
  storage::Volume* source_;
  SimTime created_at_;
  uint64_t hook_token_;
  // Old source blocks saved before overwrite (the COW pool).
  std::unordered_map<block::Lba, std::string> preserved_;
  // Snapshot-local writes (redirect-on-write delta).
  std::unordered_map<block::Lba, std::string> delta_;
};

// Metadata of a snapshot group: multiple snapshots created atomically at
// the same instant so that they form a cross-volume consistent image
// (Section III-A-2, "snapshot group technology").
struct SnapshotGroupInfo {
  SnapshotGroupId id = 0;
  std::string name;
  std::vector<SnapshotId> members;
  SimTime created_at = 0;
};

// Array-level snapshot feature: creates/deletes snapshots and atomic
// snapshot groups on one array, and can restore a volume from a snapshot.
class SnapshotManager {
 public:
  explicit SnapshotManager(storage::StorageArray* array);

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  // Creates a snapshot of one volume. Metadata-only; returns immediately.
  StatusOr<SnapshotId> CreateSnapshot(storage::VolumeId source,
                                      const std::string& name);

  // Creates snapshots of all `sources` atomically (one simulation event,
  // which models the array quiescing the journal-apply at a consistency
  // boundary). All-or-nothing: if any volume is missing, nothing happens.
  StatusOr<SnapshotGroupId> CreateSnapshotGroup(
      const std::vector<storage::VolumeId>& sources,
      const std::string& name);

  Status DeleteSnapshot(SnapshotId id);
  Status DeleteSnapshotGroup(SnapshotGroupId id);

  CowSnapshot* GetSnapshot(SnapshotId id);
  StatusOr<SnapshotGroupInfo> GetGroup(SnapshotGroupId id) const;
  std::vector<SnapshotId> ListSnapshots() const;
  std::vector<SnapshotGroupId> ListGroups() const;
  // Snapshot of `source` volumes, newest first.
  std::vector<SnapshotId> ListSnapshotsOfVolume(
      storage::VolumeId source) const;

  // Rolls the source volume back to the snapshot's point-in-time image
  // (including snapshot-local writes, which become real). Returns the
  // number of blocks rewritten.
  StatusOr<uint64_t> RestoreVolume(SnapshotId id);

  size_t snapshot_count() const { return snapshots_.size(); }

 private:
  storage::StorageArray* array_;
  std::map<SnapshotId, std::unique_ptr<CowSnapshot>> snapshots_;
  SnapshotId next_snapshot_id_ = 1;
  std::map<SnapshotGroupId, SnapshotGroupInfo> groups_;
  SnapshotGroupId next_group_id_ = 1;
};

}  // namespace zerobak::snapshot

#endif  // ZEROBAK_SNAPSHOT_SNAPSHOT_H_
