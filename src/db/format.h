#ifndef ZEROBAK_DB_FORMAT_H_
#define ZEROBAK_DB_FORMAT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace zerobak::db {

// On-disk layout of the mini transactional database (see db/minidb.h):
//
//   block 0                 superblock
//   [1, 1+C)                checkpoint slot A (C = checkpoint_blocks)
//   [1+C, 1+2C)             checkpoint slot B
//   [1+2C, 1+2C+W)          write-ahead log (W = wal_blocks)
//
// The database is redo-only (no steal): committed transactions are
// serialized into the WAL before being applied to the in-memory tables; a
// checkpoint atomically replaces the base image and starts a new WAL
// generation. Recovery = load checkpoint + replay the WAL prefix whose
// records carry the current generation and a valid CRC. Correctness
// depends only on the storage preserving the order of acknowledged block
// writes — the exact property the paper's consistency groups extend to
// the backup site.

inline constexpr uint32_t kSuperblockMagic = 0x5a424442;  // "ZBDB"
inline constexpr uint32_t kFormatVersion = 1;

// Superblock contents (stored CRC-checked in block 0).
struct Superblock {
  uint32_t magic = kSuperblockMagic;
  uint32_t version = kFormatVersion;
  uint64_t checkpoint_blocks = 0;
  uint64_t wal_blocks = 0;
  // WAL generation: bumped by every checkpoint; WAL records from older
  // generations are ignored by recovery.
  uint32_t generation = 0;
  // Which checkpoint slot (0 or 1) holds the current base image.
  uint32_t active_slot = 0;
  // LSN captured by the active checkpoint.
  uint64_t checkpoint_lsn = 0;
  // Byte length and checksum of the active checkpoint image.
  uint64_t checkpoint_length = 0;
  uint32_t checkpoint_crc = 0;

  // Serializes into exactly one block (padded with zeros).
  std::string Encode(uint32_t block_size) const;
  static StatusOr<Superblock> Decode(std::string_view block);
};

// One operation inside a committed transaction.
enum class OpType : uint8_t { kPut = 1, kDelete = 2 };

struct Op {
  OpType type = OpType::kPut;
  std::string table;
  std::string key;
  std::string value;  // Empty for deletes.
};

// A WAL record = one committed transaction.
struct WalRecord {
  uint64_t lsn = 0;
  uint64_t txn_id = 0;
  uint32_t generation = 0;
  std::vector<Op> ops;

  // Wire format: [fixed32 masked_crc][fixed32 payload_len][payload].
  std::string Encode() const;

  // Decodes the record at the start of `in`. Returns NOT_FOUND for a
  // clean end (zeroed header), DATA_LOSS for a torn/corrupt record, and
  // advances `in` past the record on success.
  static StatusOr<WalRecord> Decode(std::string_view* in);

  static constexpr uint32_t kHeaderBytes = 8;
};

// The full-table base image written by a checkpoint.
using TableData = std::map<std::string, std::map<std::string, std::string>>;

std::string EncodeCheckpoint(const TableData& tables);
StatusOr<TableData> DecodeCheckpoint(std::string_view image);

}  // namespace zerobak::db

#endif  // ZEROBAK_DB_FORMAT_H_
