#include "db/format.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace zerobak::db {

std::string Superblock::Encode(uint32_t block_size) const {
  std::string payload;
  PutFixed32(&payload, magic);
  PutFixed32(&payload, version);
  PutFixed64(&payload, checkpoint_blocks);
  PutFixed64(&payload, wal_blocks);
  PutFixed32(&payload, generation);
  PutFixed32(&payload, active_slot);
  PutFixed64(&payload, checkpoint_lsn);
  PutFixed64(&payload, checkpoint_length);
  PutFixed32(&payload, checkpoint_crc);
  std::string out;
  PutFixed32(&out, Crc32cMask(Crc32c(payload.data(), payload.size())));
  out += payload;
  out.resize(block_size, '\0');
  return out;
}

StatusOr<Superblock> Superblock::Decode(std::string_view block) {
  std::string_view in = block;
  uint32_t masked_crc;
  if (!GetFixed32(&in, &masked_crc)) {
    return DataLossError("superblock too short");
  }
  Superblock sb;
  std::string_view payload_start = in;
  if (!GetFixed32(&in, &sb.magic) || !GetFixed32(&in, &sb.version) ||
      !GetFixed64(&in, &sb.checkpoint_blocks) ||
      !GetFixed64(&in, &sb.wal_blocks) ||
      !GetFixed32(&in, &sb.generation) ||
      !GetFixed32(&in, &sb.active_slot) ||
      !GetFixed64(&in, &sb.checkpoint_lsn) ||
      !GetFixed64(&in, &sb.checkpoint_length) ||
      !GetFixed32(&in, &sb.checkpoint_crc)) {
    return DataLossError("superblock truncated");
  }
  const size_t payload_len = payload_start.size() - in.size();
  const uint32_t crc =
      Crc32c(payload_start.data(), payload_len);
  if (Crc32cUnmask(masked_crc) != crc) {
    return DataLossError("superblock checksum mismatch");
  }
  if (sb.magic != kSuperblockMagic) {
    return DataLossError("bad superblock magic");
  }
  if (sb.version != kFormatVersion) {
    return DataLossError("unsupported format version " +
                         std::to_string(sb.version));
  }
  return sb;
}

std::string WalRecord::Encode() const {
  std::string payload;
  PutFixed64(&payload, lsn);
  PutFixed64(&payload, txn_id);
  PutFixed32(&payload, generation);
  PutFixed32(&payload, static_cast<uint32_t>(ops.size()));
  for (const Op& op : ops) {
    payload.push_back(static_cast<char>(op.type));
    PutLengthPrefixed(&payload, op.table);
    PutLengthPrefixed(&payload, op.key);
    PutLengthPrefixed(&payload, op.value);
  }
  std::string out;
  PutFixed32(&out, Crc32cMask(Crc32c(payload.data(), payload.size())));
  PutFixed32(&out, static_cast<uint32_t>(payload.size()));
  out += payload;
  return out;
}

StatusOr<WalRecord> WalRecord::Decode(std::string_view* in) {
  if (in->size() < kHeaderBytes) {
    return NotFoundError("end of WAL");
  }
  uint32_t masked_crc = 0;
  uint32_t length = 0;
  std::string_view cursor = *in;
  GetFixed32(&cursor, &masked_crc);
  GetFixed32(&cursor, &length);
  if (masked_crc == 0 && length == 0) {
    return NotFoundError("end of WAL");  // Zeroed region: clean end.
  }
  if (length > cursor.size()) {
    return DataLossError("torn WAL record (length beyond region)");
  }
  std::string_view payload = cursor.substr(0, length);
  if (Crc32cUnmask(masked_crc) != Crc32c(payload.data(), payload.size())) {
    return DataLossError("WAL record checksum mismatch");
  }
  WalRecord rec;
  uint32_t op_count = 0;
  if (!GetFixed64(&payload, &rec.lsn) ||
      !GetFixed64(&payload, &rec.txn_id) ||
      !GetFixed32(&payload, &rec.generation) ||
      !GetFixed32(&payload, &op_count)) {
    return DataLossError("WAL record header truncated");
  }
  rec.ops.reserve(op_count);
  for (uint32_t i = 0; i < op_count; ++i) {
    if (payload.empty()) return DataLossError("WAL record op truncated");
    Op op;
    op.type = static_cast<OpType>(payload.front());
    payload.remove_prefix(1);
    if (op.type != OpType::kPut && op.type != OpType::kDelete) {
      return DataLossError("WAL record bad op type");
    }
    if (!GetLengthPrefixed(&payload, &op.table) ||
        !GetLengthPrefixed(&payload, &op.key) ||
        !GetLengthPrefixed(&payload, &op.value)) {
      return DataLossError("WAL record op fields truncated");
    }
    rec.ops.push_back(std::move(op));
  }
  in->remove_prefix(kHeaderBytes + length);
  return rec;
}

std::string EncodeCheckpoint(const TableData& tables) {
  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(tables.size()));
  for (const auto& [name, rows] : tables) {
    PutLengthPrefixed(&out, name);
    PutFixed32(&out, static_cast<uint32_t>(rows.size()));
    for (const auto& [key, value] : rows) {
      PutLengthPrefixed(&out, key);
      PutLengthPrefixed(&out, value);
    }
  }
  return out;
}

StatusOr<TableData> DecodeCheckpoint(std::string_view image) {
  TableData tables;
  uint32_t table_count = 0;
  if (!GetFixed32(&image, &table_count)) {
    return DataLossError("checkpoint image truncated (table count)");
  }
  for (uint32_t t = 0; t < table_count; ++t) {
    std::string name;
    uint32_t row_count = 0;
    if (!GetLengthPrefixed(&image, &name) ||
        !GetFixed32(&image, &row_count)) {
      return DataLossError("checkpoint image truncated (table header)");
    }
    auto& rows = tables[name];
    for (uint32_t r = 0; r < row_count; ++r) {
      std::string key, value;
      if (!GetLengthPrefixed(&image, &key) ||
          !GetLengthPrefixed(&image, &value)) {
        return DataLossError("checkpoint image truncated (row)");
      }
      rows.emplace(std::move(key), std::move(value));
    }
  }
  return tables;
}

}  // namespace zerobak::db
