#include "db/minidb.h"

#include <algorithm>
#include <utility>

#include "common/crc32c.h"
#include "common/logging.h"

namespace zerobak::db {

namespace {
const std::map<std::string, std::string>& EmptyTable() {
  static const auto* empty = new std::map<std::string, std::string>();
  return *empty;
}
}  // namespace

Status MiniDb::Format(block::BlockDevice* device, const DbOptions& options) {
  const uint64_t needed =
      1 + 2 * options.checkpoint_blocks + options.wal_blocks;
  if (device->block_count() < needed) {
    return InvalidArgumentError(
        "device too small: need " + std::to_string(needed) + " blocks, have " +
        std::to_string(device->block_count()));
  }
  // Empty checkpoint image in slot 0.
  const std::string image = EncodeCheckpoint(TableData{});
  Superblock sb;
  sb.checkpoint_blocks = options.checkpoint_blocks;
  sb.wal_blocks = options.wal_blocks;
  sb.generation = 1;
  sb.active_slot = 0;
  sb.checkpoint_lsn = 0;
  sb.checkpoint_length = image.size();
  sb.checkpoint_crc = Crc32c(image.data(), image.size());

  const uint32_t bs = device->block_size();
  std::string padded = image;
  padded.resize(((image.size() + bs - 1) / bs) * bs, '\0');
  for (uint64_t i = 0; i < padded.size() / bs; ++i) {
    ZB_RETURN_IF_ERROR(
        device->Write(1 + i, 1, std::string_view(padded).substr(i * bs, bs)));
  }
  // Zero the first WAL block so recovery of a freshly formatted database
  // sees a clean end-of-log.
  ZB_RETURN_IF_ERROR(device->Write(1 + 2 * options.checkpoint_blocks, 1,
                                   std::string(bs, '\0')));
  return device->Write(0, 1, sb.Encode(bs));
}

StatusOr<std::unique_ptr<MiniDb>> MiniDb::Open(block::BlockDevice* device,
                                               const DbOptions& options) {
  std::unique_ptr<MiniDb> db(new MiniDb(device, options));
  ZB_RETURN_IF_ERROR(db->Recover());
  return db;
}

MiniDb::MiniDb(block::BlockDevice* device, DbOptions options)
    : device_(device),
      options_(options),
      block_size_(device->block_size()) {}

Status MiniDb::Recover() {
  std::string block0;
  ZB_RETURN_IF_ERROR(device_->Read(0, 1, &block0));
  ZB_ASSIGN_OR_RETURN(superblock_, Superblock::Decode(block0));

  // Load the active checkpoint image.
  const uint64_t slot_start = SlotStartBlock(superblock_.active_slot);
  const uint64_t image_blocks =
      (superblock_.checkpoint_length + block_size_ - 1) / block_size_;
  if (image_blocks > superblock_.checkpoint_blocks) {
    return DataLossError("checkpoint image larger than its slot");
  }
  std::string image;
  if (image_blocks > 0) {
    ZB_RETURN_IF_ERROR(device_->Read(
        slot_start, static_cast<uint32_t>(image_blocks), &image));
    image.resize(superblock_.checkpoint_length);
  }
  if (Crc32c(image.data(), image.size()) != superblock_.checkpoint_crc) {
    return DataLossError("checkpoint image checksum mismatch");
  }
  ZB_ASSIGN_OR_RETURN(tables_, DecodeCheckpoint(image));
  last_lsn_ = superblock_.checkpoint_lsn;

  // Replay the WAL: records of the current generation, in order, stopping
  // at the first hole, torn record or stale-generation record.
  std::string wal;
  ZB_RETURN_IF_ERROR(device_->Read(
      WalStartBlock(), static_cast<uint32_t>(superblock_.wal_blocks), &wal));
  std::string_view cursor(wal);
  while (true) {
    auto rec_or = WalRecord::Decode(&cursor);
    if (!rec_or.ok()) break;  // Clean end or torn record: stop replay.
    const WalRecord& rec = rec_or.value();
    if (rec.generation != superblock_.generation) break;  // Stale log.
    if (rec.lsn <= last_lsn_) break;  // Non-monotonic: stale leftovers.
    for (const Op& op : rec.ops) {
      if (op.type == OpType::kPut) {
        tables_[op.table][op.key] = op.value;
      } else {
        auto tit = tables_.find(op.table);
        if (tit != tables_.end()) tit->second.erase(op.key);
      }
    }
    last_lsn_ = std::max(last_lsn_, rec.lsn);
    next_txn_id_ = std::max(next_txn_id_, rec.txn_id + 1);
    ++recovered_txns_;
  }
  wal_offset_ = static_cast<uint64_t>(wal.size() - cursor.size());

  // Cache the tail block for partial-block appends.
  const uint64_t tail_index = wal_offset_ / block_size_;
  if (tail_index < superblock_.wal_blocks) {
    tail_block_ = wal.substr(tail_index * block_size_, block_size_);
  } else {
    tail_block_.assign(block_size_, '\0');
  }
  return OkStatus();
}

Status MiniDb::Commit(Transaction&& txn) {
  if (options_.read_only) {
    return FailedPreconditionError("database opened read-only");
  }
  if (txn.ops_.empty()) return OkStatus();

  WalRecord rec;
  rec.lsn = last_lsn_ + 1;
  rec.txn_id = next_txn_id_;
  rec.generation = superblock_.generation;
  rec.ops = std::move(txn.ops_);
  std::string bytes = rec.Encode();

  if (wal_offset_ + bytes.size() > wal_capacity_bytes()) {
    if (!options_.auto_checkpoint) {
      return ResourceExhaustedError("WAL full");
    }
    ZB_RETURN_IF_ERROR(Checkpoint());
    // The generation changed; re-encode under the new one.
    rec.generation = superblock_.generation;
    bytes = rec.Encode();
    if (wal_offset_ + bytes.size() > wal_capacity_bytes()) {
      return ResourceExhaustedError("transaction larger than the WAL");
    }
  }

  ZB_RETURN_IF_ERROR(AppendToWal(bytes));

  // Apply to memory only after the log reached the device (write-ahead).
  for (const Op& op : rec.ops) {
    if (op.type == OpType::kPut) {
      tables_[op.table][op.key] = op.value;
    } else {
      auto tit = tables_.find(op.table);
      if (tit != tables_.end()) tit->second.erase(op.key);
    }
  }
  last_lsn_ = rec.lsn;
  ++next_txn_id_;
  ++committed_txns_;
  return OkStatus();
}

Status MiniDb::AppendToWal(const std::string& bytes) {
  uint64_t offset = wal_offset_;
  size_t written = 0;
  while (written < bytes.size()) {
    const uint64_t block_index = offset / block_size_;
    const uint32_t in_block = static_cast<uint32_t>(offset % block_size_);
    const size_t chunk =
        std::min<size_t>(block_size_ - in_block, bytes.size() - written);
    if (in_block == 0 && tail_block_.size() == block_size_) {
      // Entering a fresh block: start from zeros so stale bytes past the
      // record do not survive within this block.
      std::fill(tail_block_.begin(), tail_block_.end(), '\0');
    }
    tail_block_.replace(in_block, chunk, bytes, written, chunk);
    ZB_RETURN_IF_ERROR(
        device_->Write(WalStartBlock() + block_index, 1, tail_block_));
    offset += chunk;
    written += chunk;
  }
  wal_offset_ = offset;
  // If the append ended exactly on a block boundary, the next append
  // starts a fresh block.
  if (wal_offset_ % block_size_ == 0) {
    std::fill(tail_block_.begin(), tail_block_.end(), '\0');
  }
  return OkStatus();
}

Status MiniDb::Checkpoint() {
  if (options_.read_only) {
    return FailedPreconditionError("database opened read-only");
  }
  const std::string image = EncodeCheckpoint(tables_);
  const uint64_t image_blocks =
      (image.size() + block_size_ - 1) / block_size_;
  if (image_blocks > superblock_.checkpoint_blocks) {
    return ResourceExhaustedError(
        "database too large for the checkpoint region (" +
        std::to_string(image.size()) + " bytes)");
  }
  const uint32_t slot = superblock_.active_slot == 0 ? 1 : 0;
  ZB_RETURN_IF_ERROR(WriteCheckpointImage(slot, image));

  Superblock sb = superblock_;
  sb.generation = superblock_.generation + 1;
  sb.active_slot = slot;
  sb.checkpoint_lsn = last_lsn_;
  sb.checkpoint_length = image.size();
  sb.checkpoint_crc = Crc32c(image.data(), image.size());
  // The superblock write is the atomic commit point of the checkpoint: a
  // crash before it recovers from the old image + old WAL; after it, from
  // the new image with an empty (new-generation) log.
  ZB_RETURN_IF_ERROR(device_->Write(0, 1, sb.Encode(block_size_)));
  superblock_ = sb;

  wal_offset_ = 0;
  tail_block_.assign(block_size_, '\0');
  // Zero the first WAL block so the old generation's leading record never
  // parses again.
  return device_->Write(WalStartBlock(), 1, std::string(block_size_, '\0'));
}

Status MiniDb::WriteCheckpointImage(uint32_t slot, const std::string& image) {
  std::string padded = image;
  padded.resize(((image.size() + block_size_ - 1) / block_size_) *
                    block_size_,
                '\0');
  const uint64_t start = SlotStartBlock(slot);
  for (uint64_t i = 0; i < padded.size() / block_size_; ++i) {
    ZB_RETURN_IF_ERROR(device_->Write(
        start + i, 1,
        std::string_view(padded).substr(i * block_size_, block_size_)));
  }
  return OkStatus();
}

StatusOr<std::string> MiniDb::Get(const std::string& table,
                                  const std::string& key) const {
  auto tit = tables_.find(table);
  if (tit == tables_.end()) {
    return NotFoundError("table " + table);
  }
  auto rit = tit->second.find(key);
  if (rit == tit->second.end()) {
    return NotFoundError(table + "/" + key);
  }
  return rit->second;
}

bool MiniDb::Exists(const std::string& table, const std::string& key) const {
  auto tit = tables_.find(table);
  return tit != tables_.end() && tit->second.contains(key);
}

const std::map<std::string, std::string>& MiniDb::Scan(
    const std::string& table) const {
  auto tit = tables_.find(table);
  return tit == tables_.end() ? EmptyTable() : tit->second;
}

std::vector<std::pair<std::string, std::string>> MiniDb::ScanPrefix(
    const std::string& table, const std::string& prefix) const {
  std::vector<std::pair<std::string, std::string>> out;
  const auto& rows = Scan(table);
  for (auto it = rows.lower_bound(prefix); it != rows.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first, it->second);
  }
  return out;
}

std::vector<std::string> MiniDb::ListTables() const {
  std::vector<std::string> out;
  for (const auto& [name, rows] : tables_) out.push_back(name);
  return out;
}

size_t MiniDb::RowCount(const std::string& table) const {
  auto tit = tables_.find(table);
  return tit == tables_.end() ? 0 : tit->second.size();
}

}  // namespace zerobak::db
