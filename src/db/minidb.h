#ifndef ZEROBAK_DB_MINIDB_H_
#define ZEROBAK_DB_MINIDB_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "block/block_device.h"
#include "common/status.h"
#include "db/format.h"

namespace zerobak::db {

struct DbOptions {
  // Blocks reserved per checkpoint slot (two slots exist).
  uint64_t checkpoint_blocks = 1024;  // 4 MiB at 4 KiB blocks.
  // Blocks reserved for the write-ahead log.
  uint64_t wal_blocks = 2048;  // 8 MiB.
  // Checkpoint automatically when a commit would overflow the WAL.
  bool auto_checkpoint = true;
  // Open without ever writing (snapshot analytics).
  bool read_only = false;
};

// A buffered transaction: operations are staged in memory and atomically
// committed through MiniDb::Commit.
class Transaction {
 public:
  void Put(std::string table, std::string key, std::string value) {
    ops_.push_back(Op{OpType::kPut, std::move(table), std::move(key),
                      std::move(value)});
  }
  void Delete(std::string table, std::string key) {
    ops_.push_back(Op{OpType::kDelete, std::move(table), std::move(key), ""});
  }
  size_t op_count() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

 private:
  friend class MiniDb;
  std::vector<Op> ops_;
};

// A small write-ahead-logging transactional database with full crash
// recovery — the stand-in for the Oracle instances of the demonstration
// (DESIGN.md substitution table). It runs on any BlockDevice: an array
// volume on the main site, a replicated volume on the backup site, or a
// copy-on-write snapshot (Fig. 6 analytics).
//
// Design: redo-only (no-steal) WAL; see db/format.h for the layout. The
// essential property for the paper's argument is that MiniDb recovers a
// transaction-consistent state from ANY volume image that preserves the
// order of acknowledged block writes — so a prefix-consistent replica
// (consistency-group ADC) always recovers, while a cross-volume-reordered
// replica (per-volume ADC) can expose business-level inconsistency.
class MiniDb {
 public:
  // Initializes a fresh database on the device (destroys existing data).
  static Status Format(block::BlockDevice* device,
                       const DbOptions& options = {});

  // Opens an existing database, running crash recovery (checkpoint load +
  // WAL replay). Fails with DATA_LOSS if no valid superblock is found.
  static StatusOr<std::unique_ptr<MiniDb>> Open(
      block::BlockDevice* device, const DbOptions& options = {});

  MiniDb(const MiniDb&) = delete;
  MiniDb& operator=(const MiniDb&) = delete;

  // --- Transactions ---------------------------------------------------------
  Transaction Begin() const { return Transaction(); }

  // Durably commits: the WAL record is fully written to the device before
  // this returns; then the ops are applied to the in-memory tables.
  Status Commit(Transaction&& txn);

  // --- Reads ------------------------------------------------------------------
  StatusOr<std::string> Get(const std::string& table,
                            const std::string& key) const;
  bool Exists(const std::string& table, const std::string& key) const;
  // Full-table scan (analytics path). Returns an empty map for a missing
  // table.
  const std::map<std::string, std::string>& Scan(
      const std::string& table) const;
  // Rows whose key starts with `prefix`, in key order (range query over
  // the sorted table).
  std::vector<std::pair<std::string, std::string>> ScanPrefix(
      const std::string& table, const std::string& prefix) const;
  std::vector<std::string> ListTables() const;
  size_t RowCount(const std::string& table) const;

  // --- Maintenance -------------------------------------------------------------
  // Writes a new base image and starts a fresh WAL generation.
  Status Checkpoint();

  // --- Introspection -------------------------------------------------------------
  uint64_t last_lsn() const { return last_lsn_; }
  uint64_t committed_txns() const { return committed_txns_; }
  uint64_t wal_bytes_used() const { return wal_offset_; }
  uint64_t wal_capacity_bytes() const {
    return superblock_.wal_blocks * block_size_;
  }
  uint32_t generation() const { return superblock_.generation; }
  uint64_t recovered_txns() const { return recovered_txns_; }

 private:
  MiniDb(block::BlockDevice* device, DbOptions options);

  Status Recover();
  // Appends encoded bytes to the WAL, updating the tail-block cache.
  Status AppendToWal(const std::string& bytes);
  Status WriteCheckpointImage(uint32_t slot, const std::string& image);

  uint64_t WalStartBlock() const {
    return 1 + 2 * superblock_.checkpoint_blocks;
  }
  uint64_t SlotStartBlock(uint32_t slot) const {
    return 1 + static_cast<uint64_t>(slot) * superblock_.checkpoint_blocks;
  }

  block::BlockDevice* device_;
  DbOptions options_;
  uint32_t block_size_;
  Superblock superblock_;

  TableData tables_;
  uint64_t last_lsn_ = 0;
  uint64_t next_txn_id_ = 1;
  uint64_t committed_txns_ = 0;
  uint64_t recovered_txns_ = 0;

  // WAL write cursor (bytes from the start of the WAL region) and the
  // cached content of the block containing it.
  uint64_t wal_offset_ = 0;
  std::string tail_block_;
};

}  // namespace zerobak::db

#endif  // ZEROBAK_DB_MINIDB_H_
