#include "block/file_volume.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace zerobak::block {

namespace {
std::string Errno(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

// splitmix64 finalizer (same gate as MemVolume's media lane).
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

FileVolume::FileVolume(std::string path, int fd, uint64_t block_count,
                       uint32_t block_size)
    : path_(std::move(path)),
      fd_(fd),
      block_count_(block_count),
      block_size_(block_size) {}

FileVolume::~FileVolume() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::unique_ptr<FileVolume>> FileVolume::Create(
    const std::string& path, uint64_t block_count, uint32_t block_size) {
  if (block_count == 0 || block_size == 0) {
    return InvalidArgumentError("zero-sized file volume");
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return InternalError(Errno("open", path));
  const off_t size =
      static_cast<off_t>(block_count) * static_cast<off_t>(block_size);
  if (::ftruncate(fd, size) != 0) {
    ::close(fd);
    return InternalError(Errno("ftruncate", path));
  }
  // Persist the initial sizing: without this a crash right after Create
  // can leave a short (or empty) file that Open then rejects.
  if (::fdatasync(fd) != 0) {
    ::close(fd);
    return InternalError(Errno("fdatasync", path));
  }
  return std::unique_ptr<FileVolume>(
      new FileVolume(path, fd, block_count, block_size));
}

StatusOr<std::unique_ptr<FileVolume>> FileVolume::Open(
    const std::string& path, uint32_t block_size) {
  if (block_size == 0) return InvalidArgumentError("zero block size");
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return NotFoundError(Errno("open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return InternalError(Errno("fstat", path));
  }
  if (st.st_size % block_size != 0 || st.st_size == 0) {
    ::close(fd);
    return InvalidArgumentError(
        path + ": size " + std::to_string(st.st_size) +
        " is not a positive multiple of the block size");
  }
  return std::unique_ptr<FileVolume>(new FileVolume(
      path, fd, static_cast<uint64_t>(st.st_size) / block_size,
      block_size));
}

Status FileVolume::Read(Lba lba, uint32_t count, std::string* out) {
  ZB_RETURN_IF_ERROR(CheckRange(lba, count));
  if (media_threshold_ != 0) {
    ZB_RETURN_IF_ERROR(MediaCheck(lba, count, "read"));
  }
  const size_t bytes = static_cast<size_t>(count) * block_size_;
  out->resize(bytes);
  size_t done = 0;
  while (done < bytes) {
    const ssize_t n = ::pread(
        fd_, out->data() + done, bytes - done,
        static_cast<off_t>(lba) * block_size_ + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return InternalError(Errno("pread", path_));
    }
    if (n == 0) return DataLossError(path_ + ": unexpected EOF");
    done += static_cast<size_t>(n);
  }
  return OkStatus();
}

Status FileVolume::Write(Lba lba, uint32_t count, std::string_view data) {
  ZB_RETURN_IF_ERROR(CheckRange(lba, count));
  if (data.size() != static_cast<size_t>(count) * block_size_) {
    return InvalidArgumentError("write payload size mismatch");
  }
  if (media_threshold_ != 0) {
    ZB_RETURN_IF_ERROR(MediaCheck(lba, count, "write"));
  }
  size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::pwrite(
        fd_, data.data() + done, data.size() - done,
        static_cast<off_t>(lba) * block_size_ + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return InternalError(Errno("pwrite", path_));
    }
    done += static_cast<size_t>(n);
  }
  return OkStatus();
}

Status FileVolume::Sync() {
  if (::fdatasync(fd_) != 0) {
    return InternalError(Errno("fdatasync", path_));
  }
  return OkStatus();
}

void FileVolume::SetMediaError(double probability, uint64_t seed) {
  if (probability <= 0.0) {
    media_threshold_ = 0;
    return;
  }
  media_seed_ = seed;
  media_threshold_ =
      probability >= 1.0
          ? ~0ull
          : static_cast<uint64_t>(probability * 18446744073709551616.0);
  if (media_threshold_ == 0) media_threshold_ = 1;
}

bool FileVolume::MediaBad(Lba lba) const {
  return Mix64(media_seed_ ^ (lba * 0x100000001b3ull)) < media_threshold_;
}

Status FileVolume::MediaCheck(Lba lba, uint32_t count, const char* op) {
  for (uint32_t i = 0; i < count; ++i) {
    if (MediaBad(lba + i)) {
      ++media_errors_;
      return DataLossError(std::string("media ") + op + " error at lba " +
                           std::to_string(lba + i));
    }
  }
  return OkStatus();
}

bool FileVolume::FlipBit(Lba lba, uint32_t bit) {
  if (lba >= block_count_) return false;
  const uint32_t byte = (bit / 8) % block_size_;
  const off_t off =
      static_cast<off_t>(lba) * block_size_ + static_cast<off_t>(byte);
  char c;
  ssize_t n;
  do {
    n = ::pread(fd_, &c, 1, off);
  } while (n < 0 && errno == EINTR);
  if (n != 1) return false;
  c ^= static_cast<char>(1u << (bit % 8));
  do {
    n = ::pwrite(fd_, &c, 1, off);
  } while (n < 0 && errno == EINTR);
  if (n != 1) return false;
  ++bit_flips_;
  return true;
}

}  // namespace zerobak::block
