#include "block/file_volume.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace zerobak::block {

namespace {
std::string Errno(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}
}  // namespace

FileVolume::FileVolume(std::string path, int fd, uint64_t block_count,
                       uint32_t block_size)
    : path_(std::move(path)),
      fd_(fd),
      block_count_(block_count),
      block_size_(block_size) {}

FileVolume::~FileVolume() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::unique_ptr<FileVolume>> FileVolume::Create(
    const std::string& path, uint64_t block_count, uint32_t block_size) {
  if (block_count == 0 || block_size == 0) {
    return InvalidArgumentError("zero-sized file volume");
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return InternalError(Errno("open", path));
  const off_t size =
      static_cast<off_t>(block_count) * static_cast<off_t>(block_size);
  if (::ftruncate(fd, size) != 0) {
    ::close(fd);
    return InternalError(Errno("ftruncate", path));
  }
  return std::unique_ptr<FileVolume>(
      new FileVolume(path, fd, block_count, block_size));
}

StatusOr<std::unique_ptr<FileVolume>> FileVolume::Open(
    const std::string& path, uint32_t block_size) {
  if (block_size == 0) return InvalidArgumentError("zero block size");
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return NotFoundError(Errno("open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return InternalError(Errno("fstat", path));
  }
  if (st.st_size % block_size != 0 || st.st_size == 0) {
    ::close(fd);
    return InvalidArgumentError(
        path + ": size " + std::to_string(st.st_size) +
        " is not a positive multiple of the block size");
  }
  return std::unique_ptr<FileVolume>(new FileVolume(
      path, fd, static_cast<uint64_t>(st.st_size) / block_size,
      block_size));
}

Status FileVolume::Read(Lba lba, uint32_t count, std::string* out) {
  ZB_RETURN_IF_ERROR(CheckRange(lba, count));
  const size_t bytes = static_cast<size_t>(count) * block_size_;
  out->resize(bytes);
  size_t done = 0;
  while (done < bytes) {
    const ssize_t n = ::pread(
        fd_, out->data() + done, bytes - done,
        static_cast<off_t>(lba) * block_size_ + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return InternalError(Errno("pread", path_));
    }
    if (n == 0) return DataLossError(path_ + ": unexpected EOF");
    done += static_cast<size_t>(n);
  }
  return OkStatus();
}

Status FileVolume::Write(Lba lba, uint32_t count, std::string_view data) {
  ZB_RETURN_IF_ERROR(CheckRange(lba, count));
  if (data.size() != static_cast<size_t>(count) * block_size_) {
    return InvalidArgumentError("write payload size mismatch");
  }
  size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::pwrite(
        fd_, data.data() + done, data.size() - done,
        static_cast<off_t>(lba) * block_size_ + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return InternalError(Errno("pwrite", path_));
    }
    done += static_cast<size_t>(n);
  }
  return OkStatus();
}

Status FileVolume::Sync() {
  if (::fdatasync(fd_) != 0) {
    return InternalError(Errno("fdatasync", path_));
  }
  return OkStatus();
}

}  // namespace zerobak::block
