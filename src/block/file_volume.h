#ifndef ZEROBAK_BLOCK_FILE_VOLUME_H_
#define ZEROBAK_BLOCK_FILE_VOLUME_H_

#include <memory>
#include <string>

#include "block/block_device.h"

namespace zerobak::block {

// File-backed block device: the persistent sibling of MemVolume. Lets a
// MiniDb (or a whole exported volume image) live on the host filesystem
// and survive process restarts — useful for examples and for inspecting
// experiment artefacts with external tools.
//
// IO is positional (pread/pwrite); Sync() forces the file contents to
// stable storage. Note that simulated crash experiments still use
// MemVolume: the simulator's ack-ordering semantics are what those tests
// rely on, not host-OS durability.
class FileVolume : public BlockDevice {
 public:
  // Creates (or truncates) a file sized block_count * block_size.
  static StatusOr<std::unique_ptr<FileVolume>> Create(
      const std::string& path, uint64_t block_count,
      uint32_t block_size = kDefaultBlockSize);

  // Opens an existing file; its size must be a multiple of block_size.
  static StatusOr<std::unique_ptr<FileVolume>> Open(
      const std::string& path, uint32_t block_size = kDefaultBlockSize);

  ~FileVolume() override;

  FileVolume(const FileVolume&) = delete;
  FileVolume& operator=(const FileVolume&) = delete;

  uint32_t block_size() const override { return block_size_; }
  uint64_t block_count() const override { return block_count_; }
  const std::string& path() const { return path_; }

  Status Read(Lba lba, uint32_t count, std::string* out) override;
  Status Write(Lba lba, uint32_t count, std::string_view data) override;

  // Flushes written data to stable storage (fdatasync).
  Status Sync();

  // Deterministic media-fault injection, mirroring MemVolume: each LBA is
  // independently bad with the given probability (stateless seeded hash);
  // reads and writes that touch a bad LBA fail with kDataLoss.
  // probability <= 0 heals the media.
  void SetMediaError(double probability, uint64_t seed);
  bool media_error_armed() const { return media_threshold_ != 0; }
  uint64_t media_errors() const { return media_errors_; }

  // Flips one bit of the stored block in place — silent bit rot on the
  // backing file. Returns false when the IO fails or lba is out of range.
  bool FlipBit(Lba lba, uint32_t bit);
  uint64_t bit_flips() const { return bit_flips_; }

 private:
  FileVolume(std::string path, int fd, uint64_t block_count,
             uint32_t block_size);

  bool MediaBad(Lba lba) const;
  Status MediaCheck(Lba lba, uint32_t count, const char* op);

  std::string path_;
  int fd_;
  uint64_t block_count_;
  uint32_t block_size_;
  uint64_t media_threshold_ = 0;
  uint64_t media_seed_ = 0;
  uint64_t media_errors_ = 0;
  uint64_t bit_flips_ = 0;
};

}  // namespace zerobak::block

#endif  // ZEROBAK_BLOCK_FILE_VOLUME_H_
