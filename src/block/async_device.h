#ifndef ZEROBAK_BLOCK_ASYNC_DEVICE_H_
#define ZEROBAK_BLOCK_ASYNC_DEVICE_H_

#include <cstdint>
#include <memory>

#include "block/block_device.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/time.h"
#include "sim/environment.h"

namespace zerobak::block {

// Latency model of a storage medium: fixed per-IO cost plus a per-block
// transfer cost and optional uniform jitter. Defaults approximate an
// enterprise all-flash array cache-hit path.
struct DeviceLatencyModel {
  SimDuration read_latency = Microseconds(150);
  SimDuration write_latency = Microseconds(200);
  SimDuration per_block = Microseconds(5);
  SimDuration jitter = Microseconds(20);
  uint64_t seed = 11;

  SimDuration Cost(IoType type, uint32_t blocks, Rng* rng) const;
};

// Per-device IO accounting.
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t blocks_read = 0;
  uint64_t blocks_written = 0;
  Histogram read_latency_ns;
  Histogram write_latency_ns;
};

// Wraps a synchronous BlockDevice with a simulated completion delay.
// Semantics are intentionally strict about durability: a write mutates the
// backing device only at completion (ack) time, so a request whose
// callback has not fired is not durable — exactly the property the
// paper's ack-ordering argument relies on (Section I).
class AsyncBlockDevice {
 public:
  AsyncBlockDevice(sim::SimEnvironment* env, BlockDevice* backing,
                   DeviceLatencyModel model = {});

  AsyncBlockDevice(const AsyncBlockDevice&) = delete;
  AsyncBlockDevice& operator=(const AsyncBlockDevice&) = delete;

  // Submits a request; the callback fires after the modelled latency.
  void Submit(IoRequest request);

  BlockDevice* backing() { return backing_; }
  const IoStats& stats() const { return stats_; }
  sim::SimEnvironment* env() { return env_; }
  const DeviceLatencyModel& latency_model() const { return model_; }

 private:
  sim::SimEnvironment* env_;
  BlockDevice* backing_;
  DeviceLatencyModel model_;
  Rng rng_;
  IoStats stats_;
};

}  // namespace zerobak::block

#endif  // ZEROBAK_BLOCK_ASYNC_DEVICE_H_
