#ifndef ZEROBAK_BLOCK_BLOCK_DEVICE_H_
#define ZEROBAK_BLOCK_BLOCK_DEVICE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace zerobak::block {

// Logical block addressing. Devices are fixed-block-size (4 KiB by
// default), matching the unit at which the array journals, replicates and
// copy-on-writes data.
using Lba = uint64_t;

inline constexpr uint32_t kDefaultBlockSize = 4096;

enum class IoType { kRead, kWrite };

// One extent of a multi-write run handed to BlockDevice::WriteRun:
// `count` blocks at `lba`, with `data` carrying count * block_size()
// bytes. Runs in one call are applied in array order.
struct BlockRun {
  Lba lba = 0;
  uint32_t count = 0;
  std::string_view data;
};

// Synchronous block-device interface. The functional layers (mini-DB,
// recovery, invariant checkers) use this; the timing-sensitive paths go
// through AsyncBlockDevice which adds a latency model on top.
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual uint32_t block_size() const = 0;
  virtual uint64_t block_count() const = 0;
  uint64_t size_bytes() const {
    return static_cast<uint64_t>(block_size()) * block_count();
  }

  // Reads `count` blocks starting at `lba` into `out` (resized to
  // count * block_size()).
  virtual Status Read(Lba lba, uint32_t count, std::string* out) = 0;

  // Writes `data` (must be count * block_size() bytes) at `lba`.
  virtual Status Write(Lba lba, uint32_t count, std::string_view data) = 0;

  // Applies `n` writes in one call, in array order. The replication apply
  // and resync paths sort records by LBA and hand the whole run here, so
  // stores that override it (MemVolume) amortize per-call overhead and see
  // sequential access. Every run is validated before any is applied; on a
  // bad run the whole call fails without partial effects. The default
  // implementation loops over Write.
  virtual Status WriteRun(const BlockRun* runs, size_t n);

  // Validates an IO range against the device geometry.
  Status CheckRange(Lba lba, uint32_t count) const;
};

// A single async IO request. `data` carries the payload for writes and
// receives the payload for reads. The callback fires exactly once, at the
// simulated completion ("ack") time.
struct IoResult {
  Status status;
  std::string data;  // Read payload; empty for writes.
};

using IoCallback = std::function<void(IoResult)>;

struct IoRequest {
  IoType type = IoType::kRead;
  Lba lba = 0;
  uint32_t block_count = 1;
  std::string data;  // Write payload.
  IoCallback callback;
};

}  // namespace zerobak::block

#endif  // ZEROBAK_BLOCK_BLOCK_DEVICE_H_
