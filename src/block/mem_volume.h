#ifndef ZEROBAK_BLOCK_MEM_VOLUME_H_
#define ZEROBAK_BLOCK_MEM_VOLUME_H_

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "block/block_device.h"

namespace zerobak::block {

// In-memory, sparse block device. Blocks never written read back as
// zeros. This is the backing store for every simulated array volume
// (LDEV), journal region and snapshot pool.
//
// Storage layout: fixed-size slabs ("chunks") of kBlocksPerChunk blocks,
// allocated lazily as contiguous zero-filled arrays the first time any
// block inside them is written. Compared to a per-block hash map this
// gives O(1) indexed access with no hashing, one allocation per chunk
// (4 MiB at the default geometry) instead of one per 4 KiB block, and
// cache-friendly sequential scans for apply/resync/snapshot paths. An
// allocation bitmap per chunk tracks which blocks were ever written, so
// sparse-footprint accounting (thin provisioning) is preserved exactly.
class MemVolume : public BlockDevice {
 public:
  static constexpr uint64_t kBlocksPerChunk = 1024;

  MemVolume(uint64_t block_count, uint32_t block_size = kDefaultBlockSize);

  uint32_t block_size() const override { return block_size_; }
  uint64_t block_count() const override { return block_count_; }

  Status Read(Lba lba, uint32_t count, std::string* out) override;
  Status Write(Lba lba, uint32_t count, std::string_view data) override;
  // Validates every extent, then applies them in one pass (one virtual
  // call and one range-check sweep for a whole sorted apply batch).
  Status WriteRun(const BlockRun* runs, size_t n) override;

  // Returns true if the block has been written at least once.
  bool IsAllocated(Lba lba) const;
  // Number of distinct blocks ever written (sparse footprint).
  uint64_t allocated_blocks() const { return allocated_blocks_; }

  // Reads one block without range checking overhead; returns a zero block
  // if never written.
  std::string ReadBlock(Lba lba) const {
    return std::string(ReadBlockView(lba));
  }

  // Zero-copy variant: a view of the block's current content, valid until
  // the next Write/CloneFrom/Reset of this volume. Never-written blocks
  // yield a view of a shared zero block.
  std::string_view ReadBlockView(Lba lba) const;

  // Zero-copy multi-block variant: a view of [lba, lba+count) when the
  // run lies inside one allocated chunk, an empty (nullptr-data) view
  // otherwise — callers fall back to a copying Read. Valid until the next
  // Write to the range, or CloneFrom/Reset.
  std::string_view TryReadView(Lba lba, uint32_t count) const;

  // Copies [lba, lba+count) into `dst` (count * block_size() bytes,
  // holes as zeros) without touching the read counter. Const and free of
  // any shared-state mutation, so concurrent ReadInto calls are safe and
  // the parallel resync capture produces bytes identical to the serial
  // path at any lane count. The caller must have range-checked.
  void ReadInto(Lba lba, uint32_t count, char* dst) const;

  // Two-phase write for the parallel apply path. PrepareWrite performs
  // every shared-state mutation of a Write — chunk allocation, bitmap
  // marking, footprint and write counters — without copying data;
  // CommitWrite then does the pure memcpy into slabs PrepareWrite
  // guaranteed exist. CommitWrite calls on disjoint prepared ranges are
  // safe from concurrent threads; PrepareWrite is caller-thread only.
  // PrepareWrite-then-CommitWrite over a range is byte- and
  // counter-identical to one Write. Ranges must be pre-validated.
  void PrepareWrite(Lba lba, uint32_t count);
  void CommitWrite(Lba lba, uint32_t count, std::string_view data);

  // Copies every allocated block of `src` into this volume (same
  // geometry required). Used by replication initial copy and tests.
  Status CloneFrom(const MemVolume& src);

  // Byte-level content equality with another volume (zero-filled holes
  // compare equal to explicit zero blocks).
  bool ContentEquals(const MemVolume& other) const;

  // Drops all data (simulates re-formatting).
  void Reset() {
    chunks_.clear();
    chunks_.resize(ChunkCount());
    allocated_blocks_ = 0;
  }

  uint64_t writes() const { return writes_; }
  uint64_t reads() const { return reads_; }

  // --- At-rest integrity ---------------------------------------------------

  // Enables the per-block CRC32C sidecar: every write updates the stored
  // block's checksum and every Read verifies what it copies out, so silent
  // corruption (FlipBit, a stray poke at the slab) surfaces as a typed
  // kDataLoss status instead of bad data. Off by default — journal staging
  // buffers and raw benches pay nothing — and enabled by storage::Volume
  // for every array LDEV. Zero-copy views (ReadBlockView/TryReadView) and
  // ReadInto stay unverified by design; the scrubber covers those paths.
  void EnableChecksums();
  bool checksums_enabled() const { return checksums_enabled_; }

  // Arms deterministic media errors: each LBA is independently "bad" with
  // probability `probability`, decided by a stateless seeded hash, so one
  // (seed, probability) episode always hits the same sectors — the
  // in-memory model of a latent sector error burst. Reads and writes that
  // touch a bad LBA fail with kDataLoss. probability <= 0 heals the
  // media. The two-phase PrepareWrite/CommitWrite path bypasses the gate
  // (the parallel applier pre-validates its batches).
  void SetMediaError(double probability, uint64_t seed);
  bool media_error_armed() const { return media_threshold_ != 0; }

  // Flips one bit of a stored block in place *without* updating its
  // checksum sidecar — silent bit rot. Returns false when the block was
  // never written (a hole has no media to rot).
  bool FlipBit(Lba lba, uint32_t bit);

  // Scrub-side health check of [lba, lba+count): the media-error gate
  // first, then the checksum of every resident block. Does not touch the
  // read counter, but media errors / checksum mismatches it finds are
  // counted. `bad_lba` (optional) receives the first failing block.
  enum class ExtentHealth { kClean, kMediaError, kChecksumMismatch };
  ExtentHealth VerifyExtent(Lba lba, uint32_t count, Lba* bad_lba = nullptr);

  // True when any block of [lba, lba+count) has ever been written.
  bool AnyAllocated(Lba lba, uint32_t count) const;

  // Combined fingerprint of [lba, lba+count) built from the per-block
  // CRC sidecar (holes contribute the zero-block CRC). Two volumes whose
  // extents verify clean and fingerprint equal hold identical bytes
  // (modulo CRC32C collision). O(count) words of sidecar traffic instead
  // of O(count * block_size) data bytes — this is what lets the scrubber
  // compare sites without copying megabytes. Requires checksums_enabled.
  uint64_t ExtentFingerprint(Lba lba, uint32_t count) const;

  uint64_t media_errors() const { return media_errors_; }
  uint64_t checksum_failures() const { return checksum_failures_; }
  uint64_t bit_flips() const { return bit_flips_; }
  // Blocks examined by VerifyExtent over the volume's lifetime.
  uint64_t blocks_verified() const { return blocks_verified_; }

 private:
  struct FreeDeleter {
    void operator()(char* p) const { std::free(p); }
  };

  struct Chunk {
    // blocks * block_size bytes, zero on allocation. Allocated with
    // calloc so large chunks get lazily-zeroed pages from the kernel:
    // a sparse chunk only faults in the pages actually written, instead
    // of paying an eager memset of the whole slab.
    std::unique_ptr<char[], FreeDeleter> data;
    // One bit per block: set once the block has been written.
    std::vector<uint64_t> bitmap;
    // Per-block CRC32C sidecar; empty unless checksums are enabled.
    std::vector<uint32_t> crcs;
  };

  size_t ChunkCount() const {
    return static_cast<size_t>((block_count_ + kBlocksPerChunk - 1) /
                               kBlocksPerChunk);
  }
  // Number of blocks covered by chunk `ci` (the last chunk may be short).
  uint64_t ChunkBlocks(size_t ci) const {
    const uint64_t base = static_cast<uint64_t>(ci) * kBlocksPerChunk;
    return std::min<uint64_t>(kBlocksPerChunk, block_count_ - base);
  }
  // Returns the chunk holding `lba`, allocating it zero-filled on demand.
  Chunk& EnsureChunk(Lba lba);
  // The copy loop of Write, after range/size validation.
  void WriteUnchecked(Lba lba, uint32_t count, std::string_view data);
  // Stateless per-LBA media gate (only meaningful while armed).
  bool MediaBad(Lba lba) const;
  // Scans [lba, lba+count) through the media gate; kDataLoss on the
  // first bad sector. `op` names the IO direction for the message.
  Status MediaCheck(Lba lba, uint32_t count, const char* op);

  uint64_t block_count_;
  uint32_t block_size_;
  std::vector<Chunk> chunks_;
  std::string zero_block_;
  uint64_t allocated_blocks_ = 0;
  uint64_t writes_ = 0;
  uint64_t reads_ = 0;

  bool checksums_enabled_ = false;
  uint32_t zero_crc_ = 0;
  // Media-error gate: 0 = healthy; otherwise the per-LBA hash threshold
  // (probability scaled to the full 64-bit range).
  uint64_t media_threshold_ = 0;
  uint64_t media_seed_ = 0;
  uint64_t media_errors_ = 0;
  uint64_t checksum_failures_ = 0;
  uint64_t bit_flips_ = 0;
  uint64_t blocks_verified_ = 0;
};

}  // namespace zerobak::block

#endif  // ZEROBAK_BLOCK_MEM_VOLUME_H_
