#ifndef ZEROBAK_BLOCK_MEM_VOLUME_H_
#define ZEROBAK_BLOCK_MEM_VOLUME_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "block/block_device.h"

namespace zerobak::block {

// In-memory, sparse block device. Blocks never written read back as
// zeros. This is the backing store for every simulated array volume
// (LDEV), journal region and snapshot pool.
class MemVolume : public BlockDevice {
 public:
  MemVolume(uint64_t block_count, uint32_t block_size = kDefaultBlockSize);

  uint32_t block_size() const override { return block_size_; }
  uint64_t block_count() const override { return block_count_; }

  Status Read(Lba lba, uint32_t count, std::string* out) override;
  Status Write(Lba lba, uint32_t count, std::string_view data) override;

  // Returns true if the block has been written at least once.
  bool IsAllocated(Lba lba) const { return blocks_.contains(lba); }
  // Number of distinct blocks ever written (sparse footprint).
  uint64_t allocated_blocks() const { return blocks_.size(); }

  // Reads one block without range checking overhead; returns a zero block
  // if never written.
  std::string ReadBlock(Lba lba) const;

  // Copies every allocated block of `src` into this volume (same
  // geometry required). Used by replication initial copy and tests.
  Status CloneFrom(const MemVolume& src);

  // Byte-level content equality with another volume (zero-filled holes
  // compare equal to explicit zero blocks).
  bool ContentEquals(const MemVolume& other) const;

  // Drops all data (simulates re-formatting).
  void Reset() { blocks_.clear(); }

  uint64_t writes() const { return writes_; }
  uint64_t reads() const { return reads_; }

 private:
  uint64_t block_count_;
  uint32_t block_size_;
  std::unordered_map<Lba, std::string> blocks_;
  uint64_t writes_ = 0;
  uint64_t reads_ = 0;
};

}  // namespace zerobak::block

#endif  // ZEROBAK_BLOCK_MEM_VOLUME_H_
