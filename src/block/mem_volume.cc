#include "block/mem_volume.h"

#include <cstring>

namespace zerobak::block {

Status BlockDevice::CheckRange(Lba lba, uint32_t count) const {
  if (count == 0) return InvalidArgumentError("zero-length IO");
  if (lba + count > block_count() || lba + count < lba) {
    return OutOfRangeError("IO beyond device end: lba=" +
                           std::to_string(lba) +
                           " count=" + std::to_string(count) +
                           " device_blocks=" + std::to_string(block_count()));
  }
  return OkStatus();
}

MemVolume::MemVolume(uint64_t block_count, uint32_t block_size)
    : block_count_(block_count), block_size_(block_size) {}

Status MemVolume::Read(Lba lba, uint32_t count, std::string* out) {
  ZB_RETURN_IF_ERROR(CheckRange(lba, count));
  out->clear();
  out->reserve(static_cast<size_t>(count) * block_size_);
  for (uint32_t i = 0; i < count; ++i) {
    auto it = blocks_.find(lba + i);
    if (it == blocks_.end()) {
      out->append(block_size_, '\0');
    } else {
      out->append(it->second);
    }
  }
  ++reads_;
  return OkStatus();
}

Status MemVolume::Write(Lba lba, uint32_t count, std::string_view data) {
  ZB_RETURN_IF_ERROR(CheckRange(lba, count));
  if (data.size() != static_cast<size_t>(count) * block_size_) {
    return InvalidArgumentError(
        "write payload size mismatch: got " + std::to_string(data.size()) +
        " want " + std::to_string(static_cast<size_t>(count) * block_size_));
  }
  for (uint32_t i = 0; i < count; ++i) {
    blocks_[lba + i] =
        std::string(data.substr(static_cast<size_t>(i) * block_size_,
                                block_size_));
  }
  ++writes_;
  return OkStatus();
}

std::string MemVolume::ReadBlock(Lba lba) const {
  auto it = blocks_.find(lba);
  if (it == blocks_.end()) return std::string(block_size_, '\0');
  return it->second;
}

Status MemVolume::CloneFrom(const MemVolume& src) {
  if (src.block_size_ != block_size_ || src.block_count_ != block_count_) {
    return InvalidArgumentError("clone geometry mismatch");
  }
  blocks_ = src.blocks_;
  return OkStatus();
}

bool MemVolume::ContentEquals(const MemVolume& other) const {
  if (other.block_size_ != block_size_ ||
      other.block_count_ != block_count_) {
    return false;
  }
  const std::string zeros(block_size_, '\0');
  auto block_of = [&](const MemVolume& v, Lba lba) -> const std::string& {
    auto it = v.blocks_.find(lba);
    return it == v.blocks_.end() ? zeros : it->second;
  };
  // Check union of allocated blocks from both sides.
  for (const auto& [lba, data] : blocks_) {
    if (block_of(other, lba) != data) return false;
  }
  for (const auto& [lba, data] : other.blocks_) {
    if (block_of(*this, lba) != data) return false;
  }
  return true;
}

}  // namespace zerobak::block
