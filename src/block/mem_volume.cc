#include "block/mem_volume.h"

#include <cstring>

#include "common/crc32c.h"
#include "common/logging.h"

namespace zerobak::block {

namespace {

// splitmix64 finalizer: the stateless hash behind the media-error gate.
// Full-avalanche, so adjacent LBAs land independently.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Status BlockDevice::WriteRun(const BlockRun* runs, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    ZB_RETURN_IF_ERROR(CheckRange(runs[i].lba, runs[i].count));
    if (runs[i].data.size() !=
        static_cast<size_t>(runs[i].count) * block_size()) {
      return InvalidArgumentError("WriteRun payload size mismatch");
    }
  }
  for (size_t i = 0; i < n; ++i) {
    ZB_RETURN_IF_ERROR(Write(runs[i].lba, runs[i].count, runs[i].data));
  }
  return OkStatus();
}

Status BlockDevice::CheckRange(Lba lba, uint32_t count) const {
  if (count == 0) return InvalidArgumentError("zero-length IO");
  if (lba + count > block_count() || lba + count < lba) {
    return OutOfRangeError("IO beyond device end: lba=" +
                           std::to_string(lba) +
                           " count=" + std::to_string(count) +
                           " device_blocks=" + std::to_string(block_count()));
  }
  return OkStatus();
}

MemVolume::MemVolume(uint64_t block_count, uint32_t block_size)
    : block_count_(block_count),
      block_size_(block_size),
      chunks_(ChunkCount()),
      zero_block_(block_size, '\0') {}

MemVolume::Chunk& MemVolume::EnsureChunk(Lba lba) {
  const size_t ci = static_cast<size_t>(lba / kBlocksPerChunk);
  Chunk& chunk = chunks_[ci];
  if (chunk.data == nullptr) {
    const uint64_t blocks = ChunkBlocks(ci);
    // calloc zero-fills, so unwritten blocks inside an allocated chunk
    // still read back as zeros (lazily, via kernel zero pages).
    chunk.data.reset(static_cast<char*>(std::calloc(blocks, block_size_)));
    ZB_CHECK(chunk.data != nullptr) << "MemVolume chunk allocation failed";
    chunk.bitmap.assign((blocks + 63) / 64, 0);
    if (checksums_enabled_) chunk.crcs.assign(blocks, zero_crc_);
  }
  return chunk;
}

bool MemVolume::IsAllocated(Lba lba) const {
  const size_t ci = static_cast<size_t>(lba / kBlocksPerChunk);
  if (ci >= chunks_.size() || chunks_[ci].data == nullptr) return false;
  const uint64_t slot = lba % kBlocksPerChunk;
  return (chunks_[ci].bitmap[slot / 64] >> (slot % 64)) & 1;
}

std::string_view MemVolume::TryReadView(Lba lba, uint32_t count) const {
  if (count == 0 || !CheckRange(lba, count).ok()) return {};
  const size_t ci = static_cast<size_t>(lba / kBlocksPerChunk);
  const uint64_t slot = lba % kBlocksPerChunk;
  if (slot + count > ChunkBlocks(ci)) return {};  // Crosses a chunk.
  if (chunks_[ci].data == nullptr) return {};     // No slab to point into.
  return std::string_view(chunks_[ci].data.get() + slot * block_size_,
                          static_cast<size_t>(count) * block_size_);
}

std::string_view MemVolume::ReadBlockView(Lba lba) const {
  const size_t ci = static_cast<size_t>(lba / kBlocksPerChunk);
  if (ci >= chunks_.size() || chunks_[ci].data == nullptr) {
    return zero_block_;
  }
  const uint64_t slot = lba % kBlocksPerChunk;
  return std::string_view(chunks_[ci].data.get() + slot * block_size_,
                          block_size_);
}

Status MemVolume::Read(Lba lba, uint32_t count, std::string* out) {
  ZB_RETURN_IF_ERROR(CheckRange(lba, count));
  if (media_threshold_ != 0) {
    ZB_RETURN_IF_ERROR(MediaCheck(lba, count, "read"));
  }
  // reserve + append instead of resize + copy: resize would zero-fill the
  // buffer only for every byte to be overwritten right after, a second
  // pass over the data that dominates large extent reads.
  out->clear();
  out->reserve(static_cast<size_t>(count) * block_size_);
  uint32_t i = 0;
  while (i < count) {
    const Lba cur = lba + i;
    const size_t ci = static_cast<size_t>(cur / kBlocksPerChunk);
    const uint64_t slot = cur % kBlocksPerChunk;
    // Copy the longest run that stays inside this chunk.
    const uint32_t run = static_cast<uint32_t>(
        std::min<uint64_t>(count - i, ChunkBlocks(ci) - slot));
    if (chunks_[ci].data == nullptr) {
      out->append(static_cast<size_t>(run) * block_size_, '\0');
    } else {
      const char* base = chunks_[ci].data.get() + slot * block_size_;
      if (checksums_enabled_) {
        // Verify every resident block before handing its bytes out. An
        // unwritten block inside an allocated chunk holds zeros and a
        // zero-CRC sidecar slot, so the uniform compare stays correct.
        const Chunk& chunk = chunks_[ci];
        for (uint32_t j = 0; j < run; ++j) {
          if (Crc32c(base + static_cast<size_t>(j) * block_size_,
                     block_size_) != chunk.crcs[slot + j]) {
            ++checksum_failures_;
            return DataLossError("block checksum mismatch at lba " +
                                 std::to_string(cur + j));
          }
        }
      }
      out->append(base, static_cast<size_t>(run) * block_size_);
    }
    i += run;
  }
  ++reads_;
  return OkStatus();
}

Status MemVolume::Write(Lba lba, uint32_t count, std::string_view data) {
  ZB_RETURN_IF_ERROR(CheckRange(lba, count));
  if (data.size() != static_cast<size_t>(count) * block_size_) {
    return InvalidArgumentError(
        "write payload size mismatch: got " + std::to_string(data.size()) +
        " want " + std::to_string(static_cast<size_t>(count) * block_size_));
  }
  if (media_threshold_ != 0) {
    ZB_RETURN_IF_ERROR(MediaCheck(lba, count, "write"));
  }
  WriteUnchecked(lba, count, data);
  ++writes_;
  return OkStatus();
}

Status MemVolume::WriteRun(const BlockRun* runs, size_t n) {
  // Validate the whole run up front so a bad extent cannot leave a
  // half-applied run behind.
  for (size_t i = 0; i < n; ++i) {
    ZB_RETURN_IF_ERROR(CheckRange(runs[i].lba, runs[i].count));
    if (runs[i].data.size() !=
        static_cast<size_t>(runs[i].count) * block_size_) {
      return InvalidArgumentError("WriteRun payload size mismatch");
    }
    if (media_threshold_ != 0) {
      ZB_RETURN_IF_ERROR(MediaCheck(runs[i].lba, runs[i].count, "write"));
    }
  }
  for (size_t i = 0; i < n; ++i) {
    WriteUnchecked(runs[i].lba, runs[i].count, runs[i].data);
  }
  writes_ += n;
  return OkStatus();
}

void MemVolume::WriteUnchecked(Lba lba, uint32_t count,
                               std::string_view data) {
  const char* src = data.data();
  uint32_t i = 0;
  while (i < count) {
    const Lba cur = lba + i;
    const size_t ci = static_cast<size_t>(cur / kBlocksPerChunk);
    const uint64_t slot = cur % kBlocksPerChunk;
    const uint32_t run = static_cast<uint32_t>(
        std::min<uint64_t>(count - i, ChunkBlocks(ci) - slot));
    Chunk& chunk = EnsureChunk(cur);
    std::memcpy(chunk.data.get() + slot * block_size_, src,
                static_cast<size_t>(run) * block_size_);
    if (checksums_enabled_) {
      for (uint32_t j = 0; j < run; ++j) {
        chunk.crcs[slot + j] = Crc32c(
            src + static_cast<size_t>(j) * block_size_, block_size_);
      }
    }
    // Mark the run allocated a 64-bit word at a time; a per-bit loop is
    // measurable on multi-block extent applies.
    uint64_t b = slot;
    const uint64_t end = slot + run;
    while (b < end) {
      const uint64_t lo = b % 64;
      const uint64_t span = std::min<uint64_t>(64 - lo, end - b);
      const uint64_t mask =
          (span == 64 ? ~0ull : ((1ull << span) - 1)) << lo;
      uint64_t& word = chunk.bitmap[b / 64];
      allocated_blocks_ +=
          static_cast<uint64_t>(__builtin_popcountll(mask & ~word));
      word |= mask;
      b += span;
    }
    src += static_cast<size_t>(run) * block_size_;
    i += run;
  }
}

void MemVolume::ReadInto(Lba lba, uint32_t count, char* dst) const {
  uint32_t i = 0;
  while (i < count) {
    const Lba cur = lba + i;
    const size_t ci = static_cast<size_t>(cur / kBlocksPerChunk);
    const uint64_t slot = cur % kBlocksPerChunk;
    const uint32_t run = static_cast<uint32_t>(
        std::min<uint64_t>(count - i, ChunkBlocks(ci) - slot));
    const size_t bytes = static_cast<size_t>(run) * block_size_;
    if (chunks_[ci].data == nullptr) {
      std::memset(dst, 0, bytes);
    } else {
      std::memcpy(dst, chunks_[ci].data.get() + slot * block_size_, bytes);
    }
    dst += bytes;
    i += run;
  }
}

void MemVolume::PrepareWrite(Lba lba, uint32_t count) {
  uint32_t i = 0;
  while (i < count) {
    const Lba cur = lba + i;
    const size_t ci = static_cast<size_t>(cur / kBlocksPerChunk);
    const uint64_t slot = cur % kBlocksPerChunk;
    const uint32_t run = static_cast<uint32_t>(
        std::min<uint64_t>(count - i, ChunkBlocks(ci) - slot));
    Chunk& chunk = EnsureChunk(cur);
    uint64_t b = slot;
    const uint64_t end = slot + run;
    while (b < end) {
      const uint64_t lo = b % 64;
      const uint64_t span = std::min<uint64_t>(64 - lo, end - b);
      const uint64_t mask =
          (span == 64 ? ~0ull : ((1ull << span) - 1)) << lo;
      uint64_t& word = chunk.bitmap[b / 64];
      allocated_blocks_ +=
          static_cast<uint64_t>(__builtin_popcountll(mask & ~word));
      word |= mask;
      b += span;
    }
    i += run;
  }
  ++writes_;
}

void MemVolume::CommitWrite(Lba lba, uint32_t count, std::string_view data) {
  const char* src = data.data();
  uint32_t i = 0;
  while (i < count) {
    const Lba cur = lba + i;
    const size_t ci = static_cast<size_t>(cur / kBlocksPerChunk);
    const uint64_t slot = cur % kBlocksPerChunk;
    const uint32_t run = static_cast<uint32_t>(
        std::min<uint64_t>(count - i, ChunkBlocks(ci) - slot));
    // PrepareWrite allocated the chunk; nothing here touches shared
    // metadata (each block's CRC slot belongs to exactly one prepared
    // range), so disjoint commits can run on pool workers concurrently.
    std::memcpy(chunks_[ci].data.get() + slot * block_size_, src,
                static_cast<size_t>(run) * block_size_);
    if (checksums_enabled_) {
      Chunk& chunk = chunks_[ci];
      for (uint32_t j = 0; j < run; ++j) {
        chunk.crcs[slot + j] = Crc32c(
            src + static_cast<size_t>(j) * block_size_, block_size_);
      }
    }
    src += static_cast<size_t>(run) * block_size_;
    i += run;
  }
}

Status MemVolume::CloneFrom(const MemVolume& src) {
  if (src.block_size_ != block_size_ || src.block_count_ != block_count_) {
    return InvalidArgumentError("clone geometry mismatch");
  }
  chunks_.clear();
  chunks_.resize(ChunkCount());
  for (size_t ci = 0; ci < chunks_.size(); ++ci) {
    if (src.chunks_[ci].data == nullptr) continue;
    const uint64_t blocks = ChunkBlocks(ci);
    // malloc, not calloc: the full chunk is overwritten by the copy.
    chunks_[ci].data.reset(
        static_cast<char*>(std::malloc(blocks * block_size_)));
    ZB_CHECK(chunks_[ci].data != nullptr) << "MemVolume clone alloc failed";
    std::memcpy(chunks_[ci].data.get(), src.chunks_[ci].data.get(),
                blocks * block_size_);
    chunks_[ci].bitmap = src.chunks_[ci].bitmap;
    if (checksums_enabled_) {
      if (src.checksums_enabled_) {
        // Copying the source sidecar (not recomputing) preserves any
        // latent mismatch in the source, so cloned rot stays detectable.
        chunks_[ci].crcs = src.chunks_[ci].crcs;
      } else {
        chunks_[ci].crcs.resize(blocks);
        for (uint64_t b = 0; b < blocks; ++b) {
          chunks_[ci].crcs[b] =
              Crc32c(chunks_[ci].data.get() + b * block_size_, block_size_);
        }
      }
    }
  }
  allocated_blocks_ = src.allocated_blocks_;
  return OkStatus();
}

void MemVolume::EnableChecksums() {
  if (checksums_enabled_) return;
  checksums_enabled_ = true;
  zero_crc_ = Crc32c(zero_block_.data(), zero_block_.size());
  for (size_t ci = 0; ci < chunks_.size(); ++ci) {
    Chunk& chunk = chunks_[ci];
    if (chunk.data == nullptr) continue;
    const uint64_t blocks = ChunkBlocks(ci);
    chunk.crcs.resize(blocks);
    for (uint64_t b = 0; b < blocks; ++b) {
      chunk.crcs[b] =
          Crc32c(chunk.data.get() + b * block_size_, block_size_);
    }
  }
}

void MemVolume::SetMediaError(double probability, uint64_t seed) {
  if (probability <= 0.0) {
    media_threshold_ = 0;
    return;
  }
  media_seed_ = seed;
  media_threshold_ =
      probability >= 1.0
          ? ~0ull
          : static_cast<uint64_t>(probability * 18446744073709551616.0);
  if (media_threshold_ == 0) media_threshold_ = 1;
}

bool MemVolume::MediaBad(Lba lba) const {
  return Mix64(media_seed_ ^ (lba * 0x100000001b3ull)) < media_threshold_;
}

Status MemVolume::MediaCheck(Lba lba, uint32_t count, const char* op) {
  for (uint32_t i = 0; i < count; ++i) {
    if (MediaBad(lba + i)) {
      ++media_errors_;
      return DataLossError(std::string("media ") + op + " error at lba " +
                           std::to_string(lba + i));
    }
  }
  return OkStatus();
}

bool MemVolume::FlipBit(Lba lba, uint32_t bit) {
  if (lba >= block_count_) return false;
  const size_t ci = static_cast<size_t>(lba / kBlocksPerChunk);
  Chunk& chunk = chunks_[ci];
  if (chunk.data == nullptr) return false;
  const uint64_t slot = lba % kBlocksPerChunk;
  if (((chunk.bitmap[slot / 64] >> (slot % 64)) & 1) == 0) return false;
  const uint32_t byte = (bit / 8) % block_size_;
  chunk.data.get()[slot * block_size_ + byte] ^=
      static_cast<char>(1u << (bit % 8));
  ++bit_flips_;
  return true;
}

MemVolume::ExtentHealth MemVolume::VerifyExtent(Lba lba, uint32_t count,
                                                Lba* bad_lba) {
  for (uint32_t i = 0; i < count; ++i) {
    const Lba cur = lba + i;
    if (cur >= block_count_) break;
    ++blocks_verified_;
    if (media_threshold_ != 0 && MediaBad(cur)) {
      ++media_errors_;
      if (bad_lba != nullptr) *bad_lba = cur;
      return ExtentHealth::kMediaError;
    }
    if (!checksums_enabled_) continue;
    const size_t ci = static_cast<size_t>(cur / kBlocksPerChunk);
    const Chunk& chunk = chunks_[ci];
    if (chunk.data == nullptr) continue;
    const uint64_t slot = cur % kBlocksPerChunk;
    if (Crc32c(chunk.data.get() + slot * block_size_, block_size_) !=
        chunk.crcs[slot]) {
      ++checksum_failures_;
      if (bad_lba != nullptr) *bad_lba = cur;
      return ExtentHealth::kChecksumMismatch;
    }
  }
  return ExtentHealth::kClean;
}

bool MemVolume::AnyAllocated(Lba lba, uint32_t count) const {
  uint32_t i = 0;
  while (i < count) {
    const Lba cur = lba + i;
    if (cur >= block_count_) return false;
    const size_t ci = static_cast<size_t>(cur / kBlocksPerChunk);
    const uint64_t slot = cur % kBlocksPerChunk;
    const uint32_t run = static_cast<uint32_t>(
        std::min<uint64_t>(count - i, ChunkBlocks(ci) - slot));
    if (chunks_[ci].data != nullptr) {
      const Chunk& chunk = chunks_[ci];
      for (uint64_t b = slot; b < slot + run; ++b) {
        if ((chunk.bitmap[b / 64] >> (b % 64)) & 1) return true;
      }
    }
    i += run;
  }
  return false;
}

uint64_t MemVolume::ExtentFingerprint(Lba lba, uint32_t count) const {
  ZB_CHECK(checksums_enabled_) << "ExtentFingerprint needs the sidecar";
  uint64_t fp = 0;
  for (uint32_t i = 0; i < count; ++i) {
    const Lba cur = lba + i;
    if (cur >= block_count_) break;
    const size_t ci = static_cast<size_t>(cur / kBlocksPerChunk);
    const Chunk& chunk = chunks_[ci];
    const uint32_t crc = chunk.data == nullptr
                             ? zero_crc_
                             : chunk.crcs[cur % kBlocksPerChunk];
    fp = Mix64(fp ^ crc);
  }
  return fp;
}

bool MemVolume::ContentEquals(const MemVolume& other) const {
  if (other.block_size_ != block_size_ ||
      other.block_count_ != block_count_) {
    return false;
  }
  auto all_zero = [](const char* p, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      if (p[i] != '\0') return false;
    }
    return true;
  };
  for (size_t ci = 0; ci < chunks_.size(); ++ci) {
    const char* a = chunks_[ci].data.get();
    const char* b = other.chunks_[ci].data.get();
    const size_t bytes = ChunkBlocks(ci) * block_size_;
    if (a == nullptr && b == nullptr) continue;
    // A missing chunk reads as zeros, so compare against zeros (a block
    // explicitly written with zeros equals a hole).
    if (a == nullptr) {
      if (!all_zero(b, bytes)) return false;
    } else if (b == nullptr) {
      if (!all_zero(a, bytes)) return false;
    } else if (std::memcmp(a, b, bytes) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace zerobak::block
