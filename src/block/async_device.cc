#include "block/async_device.h"

#include <utility>

namespace zerobak::block {

SimDuration DeviceLatencyModel::Cost(IoType type, uint32_t blocks,
                                     Rng* rng) const {
  SimDuration cost =
      (type == IoType::kRead ? read_latency : write_latency) +
      static_cast<SimDuration>(blocks) * per_block;
  if (jitter > 0 && rng != nullptr) {
    cost += static_cast<SimDuration>(
        rng->Uniform(static_cast<uint64_t>(jitter)));
  }
  return cost;
}

AsyncBlockDevice::AsyncBlockDevice(sim::SimEnvironment* env,
                                   BlockDevice* backing,
                                   DeviceLatencyModel model)
    : env_(env), backing_(backing), model_(model), rng_(model.seed) {}

void AsyncBlockDevice::Submit(IoRequest request) {
  const SimDuration cost =
      model_.Cost(request.type, request.block_count, &rng_);
  const SimTime start = env_->now();
  // The backing device is touched at completion time: an un-acked write is
  // not durable, and a read observes the state at ack time.
  env_->Schedule(cost, [this, start,
                        request = std::move(request)]() mutable {
    IoResult result;
    if (request.type == IoType::kRead) {
      result.status =
          backing_->Read(request.lba, request.block_count, &result.data);
      ++stats_.reads;
      stats_.blocks_read += request.block_count;
      stats_.read_latency_ns.Add(
          static_cast<uint64_t>(env_->now() - start));
    } else {
      result.status =
          backing_->Write(request.lba, request.block_count, request.data);
      ++stats_.writes;
      stats_.blocks_written += request.block_count;
      stats_.write_latency_ns.Add(
          static_cast<uint64_t>(env_->now() - start));
    }
    if (request.callback) request.callback(std::move(result));
  });
}

}  // namespace zerobak::block
