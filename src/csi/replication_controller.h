#ifndef ZEROBAK_CSI_REPLICATION_CONTROLLER_H_
#define ZEROBAK_CSI_REPLICATION_CONTROLLER_H_

#include <string>
#include <vector>

#include "container/api_server.h"
#include "container/controller.h"
#include "replication/replication.h"
#include "storage/array.h"

namespace zerobak::csi {

// CSI-style replication plugin ("Replication Plug-in for Containers",
// Section III-B-2): watches VolumeReplicationGroup custom resources on the
// main cluster and configures the arrays' asynchronous data copy with a
// consistency group — plus mirrors the protected PV(C)s into the backup
// cluster so they "appear in the backup site" (Fig. 4).
//
// VolumeReplicationGroup spec:
//   {
//     "sourceNamespace": str,
//     "volumes": [ {"handle": "<serial>:<id>", "pvcName": str,
//                   "capacityBytes": int}, ... ],
//     "perVolume": bool,          // ablation: per-volume journals (no CG)
//     "journalCapacityBytes": int // optional
//   }
// status:
//   { "phase": "Replicating",
//     "groups": [groupId, ...],
//     "pairs": { "<handle>": {"pairId": int, "backupHandle": str,
//                              "group": int}, ... } }
class ReplicationGroupController : public container::Controller {
 public:
  ReplicationGroupController(replication::ReplicationEngine* engine,
                             storage::StorageArray* main_array,
                             storage::StorageArray* backup_array,
                             container::ApiServer* backup_api,
                             std::string backup_storage_class = "zerobak-backup");

  std::string name() const override { return "csi-replication"; }
  std::vector<std::string> WatchedKinds() const override {
    return {container::kKindVolumeReplicationGroup};
  }
  void Reconcile(const container::WatchEvent& event) override;

  uint64_t pairs_created() const { return pairs_created_; }

 private:
  void Configure(const container::Resource& vrg);
  void Teardown(const container::Resource& vrg);

  // Creates the PV and a pre-bound PVC for a protected volume on the
  // backup cluster (idempotent).
  void MirrorBackupObjects(const std::string& source_namespace,
                           const std::string& pvc_name,
                           const std::string& backup_handle,
                           int64_t capacity_bytes);

  replication::ReplicationEngine* engine_;
  storage::StorageArray* main_array_;
  storage::StorageArray* backup_array_;
  container::ApiServer* backup_api_;
  std::string backup_storage_class_;
  uint64_t pairs_created_ = 0;
};

}  // namespace zerobak::csi

#endif  // ZEROBAK_CSI_REPLICATION_CONTROLLER_H_
