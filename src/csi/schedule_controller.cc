#include "csi/schedule_controller.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace zerobak::csi {

using container::kKindSnapshotSchedule;
using container::kKindVolumeSnapshotGroup;
using container::Resource;
using container::WatchEvent;
using container::WatchEventType;

SnapshotScheduleController::SnapshotScheduleController(
    sim::SimEnvironment* env)
    : env_(env) {}

void SnapshotScheduleController::Reconcile(const WatchEvent& event) {
  const Resource& schedule = event.resource;
  if (schedule.kind != kKindSnapshotSchedule) return;
  const std::string key = schedule.ns + "/" + schedule.name;

  if (event.type == WatchEventType::kDeleted) {
    active_.erase(key);  // Stops the periodic task.
    return;
  }

  const auto interval =
      static_cast<SimDuration>(schedule.spec.GetInt("intervalMs")) *
      kMillisecond;
  if (interval <= 0) {
    ZB_LOG(Warning) << "schedule " << key << " has no interval";
    return;
  }

  auto it = active_.find(key);
  if (it != active_.end() && it->second.interval == interval) {
    return;  // Already running with the right cadence.
  }
  // (Re)arm the schedule; an interval change replaces the task.
  ActiveSchedule entry;
  if (it != active_.end()) entry.counter = it->second.counter;
  entry.interval = interval;
  const std::string ns = schedule.ns;
  const std::string name = schedule.name;
  entry.task = std::make_unique<sim::PeriodicTask>(
      env_, interval, [this, ns, name] { Fire(ns, name); });
  entry.task->Start();
  active_[key] = std::move(entry);

  Status st = api_->Mutate(kKindSnapshotSchedule, ns, name,
                           [](Resource* r) {
                             r->status["phase"] = "Active";
                           });
  if (!st.ok() && st.code() != StatusCode::kAborted) {
    ZB_LOG(Warning) << "schedule status update failed: " << st;
  }
}

void SnapshotScheduleController::Fire(const std::string& ns,
                                      const std::string& name) {
  auto schedule = api_->Get(kKindSnapshotSchedule, ns, name);
  if (!schedule.ok()) {
    active_.erase(ns + "/" + name);  // Object vanished: stop firing.
    return;
  }
  const std::string pvc_ns = schedule->spec.GetString("pvcNamespace");
  const int64_t retain = std::max<int64_t>(
      schedule->spec.GetInt("retain", 3), 1);

  ActiveSchedule& entry = active_[ns + "/" + name];
  const std::string group_name =
      name + "-g" + std::to_string(++entry.counter);
  Resource vsg;
  vsg.kind = kKindVolumeSnapshotGroup;
  vsg.ns = ns;
  vsg.name = group_name;
  vsg.labels["backup.zerobak.io/schedule"] = name;
  vsg.spec["pvcNamespace"] = pvc_ns;
  auto created = api_->Create(std::move(vsg));
  if (!created.ok()) {
    ZB_LOG(Warning) << "scheduled snapshot group failed: "
                    << created.status();
    return;
  }
  ++groups_created_;

  Status st = api_->Mutate(
      kKindSnapshotSchedule, ns, name, [&](Resource* r) {
        r->status["phase"] = "Active";
        r->status["generations"] = static_cast<int64_t>(entry.counter);
        r->status["lastGroup"] = group_name;
      });
  if (!st.ok()) {
    ZB_LOG(Warning) << "schedule status update failed: " << st;
  }
  Prune(ns, name, retain);
}

void SnapshotScheduleController::Prune(const std::string& ns,
                                       const std::string& name,
                                       int64_t retain) {
  // Collect this schedule's groups, oldest first. The generation counter
  // is embedded in the name ("<schedule>-g<counter>"); resource versions
  // cannot be used because status updates bump them.
  auto generation_of = [&](const Resource& vsg) {
    const std::string prefix = name + "-g";
    if (vsg.name.compare(0, prefix.size(), prefix) != 0) return int64_t{0};
    return static_cast<int64_t>(
        std::strtoll(vsg.name.c_str() + prefix.size(), nullptr, 10));
  };
  std::vector<Resource> groups;
  for (const Resource& vsg : api_->List(kKindVolumeSnapshotGroup, ns)) {
    if (vsg.GetLabel("backup.zerobak.io/schedule") == name) {
      groups.push_back(vsg);
    }
  }
  std::sort(groups.begin(), groups.end(),
            [&](const Resource& a, const Resource& b) {
              return generation_of(a) < generation_of(b);
            });
  while (groups.size() > static_cast<size_t>(retain)) {
    const Resource& victim = groups.front();
    Status st = api_->Delete(kKindVolumeSnapshotGroup, victim.ns,
                             victim.name);
    if (st.ok()) {
      ++groups_pruned_;
    } else {
      ZB_LOG(Warning) << "prune failed: " << st;
      break;
    }
    groups.erase(groups.begin());
  }
}

}  // namespace zerobak::csi
