#ifndef ZEROBAK_CSI_PROVISIONER_H_
#define ZEROBAK_CSI_PROVISIONER_H_

#include <string>
#include <vector>

#include "container/controller.h"
#include "storage/array.h"

namespace zerobak::csi {

// Default provisioner name used by the storage classes in this repo.
inline constexpr char kProvisionerName[] = "csi.zerobak.io";

// CSI-style dynamic provisioner ("Storage Plug-in for Containers",
// Section III-B-2): watches PersistentVolumeClaims, carves volumes out of
// its storage array and binds them via PersistentVolume objects — so that
// applications consume array storage without any array knowledge.
//
// Resource conventions:
//   StorageClass (cluster-scoped) spec:
//     { "provisioner": "csi.zerobak.io", "arraySerial": "<serial>" }
//   PVC spec:  { "storageClassName": str, "capacityBytes": int }
//     on bind: { ..., "volumeName": str }, status.phase = "Bound"
//   PV (cluster-scoped) spec:
//     { "volumeHandle": "<serial>:<id>", "capacityBytes": int,
//       "storageClassName": str,
//       "claimRef": {"namespace": str, "name": str} }
class Provisioner : public container::Controller {
 public:
  Provisioner(storage::StorageArray* array,
              std::string provisioner_name = kProvisionerName);

  std::string name() const override { return "csi-provisioner"; }
  std::vector<std::string> WatchedKinds() const override {
    return {container::kKindPersistentVolumeClaim};
  }
  void Reconcile(const container::WatchEvent& event) override;

  uint64_t provisioned_volumes() const { return provisioned_; }

 private:
  void ProvisionAndBind(const container::Resource& pvc);
  void ReleaseVolume(const container::Resource& pvc);

  storage::StorageArray* array_;
  std::string provisioner_name_;
  uint64_t provisioned_ = 0;
};

}  // namespace zerobak::csi

#endif  // ZEROBAK_CSI_PROVISIONER_H_
