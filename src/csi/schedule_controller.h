#ifndef ZEROBAK_CSI_SCHEDULE_CONTROLLER_H_
#define ZEROBAK_CSI_SCHEDULE_CONTROLLER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "container/controller.h"
#include "sim/environment.h"

namespace zerobak::csi {

// Protection-schedule controller: turns a declarative SnapshotSchedule
// custom resource into a recurring stream of VolumeSnapshotGroup CRs with
// retention-based pruning — the "nightly backups" layer enterprise
// products add on top of the paper's snapshot-group primitive.
//
// SnapshotSchedule spec:
//   { "pvcNamespace": str,   // what to snapshot (all bound PVCs)
//     "intervalMs": int,     // how often
//     "retain": int }        // how many generations to keep
// status:
//   { "phase": "Active", "generations": int, "lastGroup": str }
//
// Each firing creates a VolumeSnapshotGroup named
// "<schedule>-g<counter>"; once more than `retain` groups exist, the
// oldest are deleted (the snapshot plugin's teardown removes the array
// snapshots and the member VolumeSnapshot objects).
class SnapshotScheduleController : public container::Controller {
 public:
  explicit SnapshotScheduleController(sim::SimEnvironment* env);

  std::string name() const override { return "snapshot-scheduler"; }
  std::vector<std::string> WatchedKinds() const override {
    return {container::kKindSnapshotSchedule};
  }
  void Reconcile(const container::WatchEvent& event) override;

  uint64_t groups_created() const { return groups_created_; }
  uint64_t groups_pruned() const { return groups_pruned_; }

 private:
  struct ActiveSchedule {
    std::unique_ptr<sim::PeriodicTask> task;
    SimDuration interval = 0;
    uint64_t counter = 0;
  };

  void Fire(const std::string& ns, const std::string& name);
  void Prune(const std::string& ns, const std::string& name,
             int64_t retain);

  sim::SimEnvironment* env_;
  // Keyed by "ns/name".
  std::map<std::string, ActiveSchedule> active_;
  uint64_t groups_created_ = 0;
  uint64_t groups_pruned_ = 0;
};

}  // namespace zerobak::csi

#endif  // ZEROBAK_CSI_SCHEDULE_CONTROLLER_H_
