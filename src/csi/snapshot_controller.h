#ifndef ZEROBAK_CSI_SNAPSHOT_CONTROLLER_H_
#define ZEROBAK_CSI_SNAPSHOT_CONTROLLER_H_

#include <string>
#include <vector>

#include "container/controller.h"
#include "snapshot/snapshot.h"
#include "storage/array.h"

namespace zerobak::csi {

// Snapshot-group plugin for the backup cluster. The paper notes that the
// CSI volume-group-snapshot API was still alpha and unsupported, forcing
// users to operate the storage system directly (Section II); this
// controller implements exactly the missing piece — the "technical
// advancement in the CSI and the storage plugin" the paper anticipates —
// so snapshot development completes on the container platform console.
//
// VolumeSnapshotGroup spec (either field):
//   { "volumeHandles": [ "<serial>:<id>", ... ] }
//   { "pvcNamespace": str }   // snapshot every bound PVC in the namespace
// status:
//   { "phase": "Ready", "groupId": int,
//     "snapshots": { "<sourceHandle>": {"snapshotId": int,
//                                        "snapshotHandle": str}, ... } }
//
// For each member, a VolumeSnapshot object is also created in the group's
// namespace, carrying the snapshot handle for consumers.
class SnapshotGroupController : public container::Controller {
 public:
  SnapshotGroupController(snapshot::SnapshotManager* snapshots,
                          storage::StorageArray* array);

  std::string name() const override { return "csi-snapshot-group"; }
  std::vector<std::string> WatchedKinds() const override {
    // Standalone VolumeSnapshot objects (user-created, no group) are also
    // reconciled here, mirroring the classic CSI snapshotter.
    return {container::kKindVolumeSnapshotGroup,
            container::kKindVolumeSnapshot};
  }
  void Reconcile(const container::WatchEvent& event) override;

  // Snapshot handles look like "<serial>:snap:<id>".
  static std::string SnapshotHandle(const std::string& serial,
                                    snapshot::SnapshotId id);
  static StatusOr<snapshot::SnapshotId> ParseSnapshotHandle(
      const std::string& serial, const std::string& handle);

  uint64_t groups_created() const { return groups_created_; }

 private:
  void Configure(const container::Resource& vsg);
  void Teardown(const container::Resource& vsg);
  // Standalone VolumeSnapshot handling (spec.sourceHandle, no groupName).
  void ConfigureSingle(const container::Resource& vs);
  void TeardownSingle(const container::Resource& vs);

  // Resolves the member volume ids from the spec.
  std::vector<storage::VolumeId> ResolveSources(
      const container::Resource& vsg) const;

  snapshot::SnapshotManager* snapshots_;
  storage::StorageArray* array_;
  uint64_t groups_created_ = 0;
};

}  // namespace zerobak::csi

#endif  // ZEROBAK_CSI_SNAPSHOT_CONTROLLER_H_
