#include "csi/snapshot_controller.h"

#include <utility>

#include "common/logging.h"

namespace zerobak::csi {

using container::kKindPersistentVolume;
using container::kKindPersistentVolumeClaim;
using container::kKindVolumeSnapshot;
using container::kKindVolumeSnapshotGroup;
using container::Resource;
using container::WatchEvent;
using container::WatchEventType;

SnapshotGroupController::SnapshotGroupController(
    snapshot::SnapshotManager* snapshots, storage::StorageArray* array)
    : snapshots_(snapshots), array_(array) {}

std::string SnapshotGroupController::SnapshotHandle(
    const std::string& serial, snapshot::SnapshotId id) {
  return serial + ":snap:" + std::to_string(id);
}

StatusOr<snapshot::SnapshotId> SnapshotGroupController::ParseSnapshotHandle(
    const std::string& serial, const std::string& handle) {
  const std::string prefix = serial + ":snap:";
  if (handle.compare(0, prefix.size(), prefix) != 0) {
    return InvalidArgumentError("foreign snapshot handle: " + handle);
  }
  char* end = nullptr;
  const unsigned long long id =
      std::strtoull(handle.c_str() + prefix.size(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return InvalidArgumentError("malformed snapshot handle: " + handle);
  }
  return static_cast<snapshot::SnapshotId>(id);
}

void SnapshotGroupController::Reconcile(const WatchEvent& event) {
  if (event.resource.kind == kKindVolumeSnapshot) {
    // Group members are owned by their group (spec.groupName set); only
    // standalone snapshots are reconciled individually.
    if (!event.resource.spec.GetString("groupName").empty()) return;
    if (event.type == WatchEventType::kDeleted) {
      TeardownSingle(event.resource);
    } else if (event.resource.StatusPhase() != "Ready") {
      ConfigureSingle(event.resource);
    }
    return;
  }
  if (event.resource.kind != kKindVolumeSnapshotGroup) return;
  if (event.type == WatchEventType::kDeleted) {
    Teardown(event.resource);
    return;
  }
  if (event.resource.StatusPhase() == "Ready") return;  // Done.
  Configure(event.resource);
}

void SnapshotGroupController::ConfigureSingle(const Resource& vs) {
  const std::string source = vs.spec.GetString("sourceHandle");
  if (source.empty()) return;
  auto parsed = storage::StorageArray::ParseVolumeHandle(source);
  if (!parsed.ok() || parsed->first != array_->serial()) {
    ZB_LOG(Warning) << "VolumeSnapshot " << vs.name << ": foreign handle "
                    << source;
    return;
  }
  auto sid = snapshots_->CreateSnapshot(parsed->second, vs.name);
  if (!sid.ok()) {
    ZB_LOG(Warning) << "snapshot creation failed: " << sid.status();
    return;
  }
  Status st = api_->Mutate(vs.kind, vs.ns, vs.name, [&](Resource* r) {
    r->status["phase"] = "Ready";
    r->status["snapshotHandle"] = SnapshotHandle(array_->serial(), *sid);
  });
  if (!st.ok()) {
    ZB_LOG(Warning) << "VolumeSnapshot status update failed: " << st;
    (void)snapshots_->DeleteSnapshot(*sid);  // Avoid an orphan.
  }
}

void SnapshotGroupController::TeardownSingle(const Resource& vs) {
  auto sid = ParseSnapshotHandle(array_->serial(),
                                 vs.status.GetString("snapshotHandle"));
  if (!sid.ok()) return;  // Never realized.
  Status st = snapshots_->DeleteSnapshot(*sid);
  if (!st.ok() && st.code() != StatusCode::kNotFound) {
    ZB_LOG(Warning) << "snapshot teardown failed: " << st;
  }
}

std::vector<storage::VolumeId> SnapshotGroupController::ResolveSources(
    const Resource& vsg) const {
  std::vector<storage::VolumeId> out;
  auto add_handle = [&](const std::string& handle) {
    auto parsed = storage::StorageArray::ParseVolumeHandle(handle);
    if (!parsed.ok() || parsed->first != array_->serial()) {
      ZB_LOG(Warning) << "snapshot group " << vsg.name
                      << ": foreign handle " << handle;
      return;
    }
    out.push_back(parsed->second);
  };

  if (const Value* handles = vsg.spec.Find("volumeHandles");
      handles != nullptr && handles->is_array()) {
    for (const Value& h : handles->AsArray()) {
      if (h.is_string()) add_handle(h.AsString());
    }
  }
  const std::string pvc_ns = vsg.spec.GetString("pvcNamespace");
  if (!pvc_ns.empty()) {
    for (const Resource& pvc :
         api_->List(kKindPersistentVolumeClaim, pvc_ns)) {
      const std::string pv_name = pvc.spec.GetString("volumeName");
      if (pv_name.empty()) continue;
      auto pv = api_->Get(kKindPersistentVolume, "", pv_name);
      if (!pv.ok()) continue;
      add_handle(pv->spec.GetString("volumeHandle"));
    }
  }
  return out;
}

void SnapshotGroupController::Configure(const Resource& vsg) {
  std::vector<storage::VolumeId> sources = ResolveSources(vsg);
  if (sources.empty()) return;  // Nothing resolvable yet; resync retries.

  auto group = snapshots_->CreateSnapshotGroup(sources, vsg.name);
  if (!group.ok()) {
    ZB_LOG(Warning) << "snapshot group creation failed: " << group.status();
    return;
  }
  ++groups_created_;
  auto info = snapshots_->GetGroup(*group);
  ZB_CHECK(info.ok());

  Value members = Value::MakeObject();
  for (snapshot::SnapshotId sid : info->members) {
    snapshot::CowSnapshot* snap = snapshots_->GetSnapshot(sid);
    if (snap == nullptr) continue;
    const std::string source_handle =
        array_->VolumeHandle(snap->source_volume());
    const std::string snap_handle = SnapshotHandle(array_->serial(), sid);
    Value rec = Value::MakeObject();
    rec["snapshotId"] = static_cast<int64_t>(sid);
    rec["snapshotHandle"] = snap_handle;
    members[source_handle] = std::move(rec);

    // A VolumeSnapshot object per member, for consumers (Fig. 5 lists
    // these in the backup-site console).
    Resource vs;
    vs.kind = kKindVolumeSnapshot;
    vs.ns = vsg.ns;
    vs.name = vsg.name + "-" + std::to_string(sid);
    vs.spec["sourceHandle"] = source_handle;
    vs.spec["groupName"] = vsg.name;
    vs.status["phase"] = "Ready";
    vs.status["snapshotHandle"] = snap_handle;
    auto created = api_->Create(std::move(vs));
    if (!created.ok() &&
        created.status().code() != StatusCode::kAlreadyExists) {
      ZB_LOG(Warning) << "VolumeSnapshot create failed: " << created.status();
    }
  }

  Status st = api_->Mutate(vsg.kind, vsg.ns, vsg.name, [&](Resource* r) {
    r->status["phase"] = "Ready";
    r->status["groupId"] = static_cast<int64_t>(*group);
    r->status["snapshots"] = members;
  });
  if (!st.ok()) {
    ZB_LOG(Warning) << "snapshot group status update failed: " << st;
  }
}

void SnapshotGroupController::Teardown(const Resource& vsg) {
  const int64_t group_id = vsg.status.GetInt("groupId");
  if (group_id != 0) {
    Status st = snapshots_->DeleteSnapshotGroup(
        static_cast<snapshot::SnapshotGroupId>(group_id));
    if (!st.ok() && st.code() != StatusCode::kNotFound) {
      ZB_LOG(Warning) << "snapshot group teardown failed: " << st;
    }
  }
  // Remove the member VolumeSnapshot objects.
  for (const Resource& vs : api_->List(kKindVolumeSnapshot, vsg.ns)) {
    if (vs.spec.GetString("groupName") == vsg.name) {
      (void)api_->Delete(kKindVolumeSnapshot, vs.ns, vs.name);
    }
  }
}

}  // namespace zerobak::csi
