#include "csi/replication_controller.h"

#include <utility>

#include "common/logging.h"

namespace zerobak::csi {

using container::kKindPersistentVolume;
using container::kKindPersistentVolumeClaim;
using container::kKindVolumeReplicationGroup;
using container::Resource;
using container::WatchEvent;
using container::WatchEventType;

ReplicationGroupController::ReplicationGroupController(
    replication::ReplicationEngine* engine, storage::StorageArray* main_array,
    storage::StorageArray* backup_array, container::ApiServer* backup_api,
    std::string backup_storage_class)
    : engine_(engine),
      main_array_(main_array),
      backup_array_(backup_array),
      backup_api_(backup_api),
      backup_storage_class_(std::move(backup_storage_class)) {}

void ReplicationGroupController::Reconcile(const WatchEvent& event) {
  if (event.resource.kind != kKindVolumeReplicationGroup) return;
  if (event.type == WatchEventType::kDeleted) {
    Teardown(event.resource);
    return;
  }
  Configure(event.resource);
}

void ReplicationGroupController::Configure(const Resource& vrg) {
  const Value* volumes = vrg.spec.Find("volumes");
  if (volumes == nullptr || !volumes->is_array()) return;
  const std::string source_ns = vrg.spec.GetString("sourceNamespace");
  const bool per_volume = vrg.spec.GetBool("perVolume");
  const int64_t journal_capacity = vrg.spec.GetInt(
      "journalCapacityBytes",
      static_cast<int64_t>(replication::ConsistencyGroupConfig{}
                               .journal_capacity_bytes));

  // Re-read current status for idempotency.
  Value pairs_status = Value::MakeObject();
  Value groups_status = Value::MakeArray();
  {
    auto current = api_->Get(vrg.kind, vrg.ns, vrg.name);
    if (current.ok()) {
      if (const Value* p = current->status.Find("pairs"); p != nullptr) {
        pairs_status = *p;
      }
      if (const Value* g = current->status.Find("groups"); g != nullptr) {
        groups_status = *g;
      }
    }
  }

  // Shared consistency group (the paper's configuration): one journal for
  // every volume of the business process.
  replication::GroupId shared_group = 0;
  if (!per_volume) {
    if (!groups_status.AsArray().empty()) {
      shared_group = static_cast<replication::GroupId>(
          groups_status.AsArray().front().AsInt());
    } else {
      replication::ConsistencyGroupConfig cfg;
      cfg.name = "cg-" + vrg.ns + "-" + vrg.name;
      cfg.journal_capacity_bytes = static_cast<uint64_t>(journal_capacity);
      auto group = engine_->CreateConsistencyGroup(cfg);
      if (!group.ok()) {
        ZB_LOG(Warning) << "consistency group creation failed: "
                        << group.status();
        return;
      }
      shared_group = *group;
      groups_status.Append(static_cast<int64_t>(shared_group));
    }
  }

  bool changed = false;
  for (const Value& entry : volumes->AsArray()) {
    const std::string handle = entry.GetString("handle");
    const std::string pvc_name = entry.GetString("pvcName");
    const int64_t capacity = entry.GetInt("capacityBytes");
    if (handle.empty()) continue;
    if (pairs_status.Find(handle) != nullptr) continue;  // Already paired.

    auto parsed = storage::StorageArray::ParseVolumeHandle(handle);
    if (!parsed.ok() || parsed->first != main_array_->serial()) {
      ZB_LOG(Warning) << "VRG " << vrg.name << ": foreign handle " << handle;
      continue;
    }
    storage::Volume* pvol = main_array_->GetVolume(parsed->second);
    if (pvol == nullptr) {
      ZB_LOG(Warning) << "VRG " << vrg.name << ": missing volume " << handle;
      continue;
    }

    // Secondary volume on the backup array (idempotent by name).
    const std::string svol_name = "r-" + pvol->name();
    storage::Volume* svol = backup_array_->FindVolumeByName(svol_name);
    storage::VolumeId svol_id;
    if (svol != nullptr) {
      svol_id = svol->id();
    } else {
      auto created = backup_array_->CreateVolume(svol_name,
                                                 pvol->block_count(),
                                                 pvol->block_size());
      if (!created.ok()) {
        ZB_LOG(Warning) << "backup volume creation failed: "
                        << created.status();
        continue;
      }
      svol_id = *created;
    }

    // Group for this pair.
    replication::GroupId group = shared_group;
    if (per_volume) {
      replication::ConsistencyGroupConfig cfg;
      cfg.name = "cg-" + vrg.ns + "-" + vrg.name + "-" + pvol->name();
      cfg.journal_capacity_bytes = static_cast<uint64_t>(journal_capacity);
      auto created = engine_->CreateConsistencyGroup(cfg);
      if (!created.ok()) {
        ZB_LOG(Warning) << "per-volume group creation failed: "
                        << created.status();
        continue;
      }
      group = *created;
      groups_status.Append(static_cast<int64_t>(group));
    }

    replication::PairConfig pc;
    pc.name = "pair-" + pvol->name();
    pc.primary = pvol->id();
    pc.secondary = svol_id;
    pc.mode = replication::ReplicationMode::kAsynchronous;
    pc.group = group;
    auto pair = engine_->CreatePair(pc);
    replication::PairId pair_id = 0;
    if (pair.ok()) {
      pair_id = *pair;
      ++pairs_created_;
    } else if (pair.status().code() == StatusCode::kAlreadyExists) {
      pair_id = engine_->FindPairByPrimary(pvol->id());
    } else {
      ZB_LOG(Warning) << "pair creation failed: " << pair.status();
      continue;
    }

    const std::string backup_handle = backup_array_->VolumeHandle(svol_id);
    Value rec = Value::MakeObject();
    rec["pairId"] = static_cast<int64_t>(pair_id);
    rec["backupHandle"] = backup_handle;
    rec["group"] = static_cast<int64_t>(group);
    pairs_status[handle] = std::move(rec);
    changed = true;

    MirrorBackupObjects(source_ns, pvc_name, backup_handle, capacity);
  }

  if (changed || vrg.StatusPhase() != "Replicating") {
    Status st = api_->Mutate(
        vrg.kind, vrg.ns, vrg.name,
        [&](Resource* r) {
          r->status["phase"] = "Replicating";
          r->status["pairs"] = pairs_status;
          r->status["groups"] = groups_status;
          r->status["observedGeneration"] =
              static_cast<int64_t>(vrg.generation);
        });
    if (!st.ok() && st.code() != StatusCode::kNotFound) {
      ZB_LOG(Warning) << "VRG status update failed: " << st;
    }
  }
}

void ReplicationGroupController::MirrorBackupObjects(
    const std::string& source_namespace, const std::string& pvc_name,
    const std::string& backup_handle, int64_t capacity_bytes) {
  if (backup_api_ == nullptr || pvc_name.empty()) return;

  // Namespace on the backup cluster.
  if (!backup_api_->Exists(container::kKindNamespace, "",
                           source_namespace)) {
    Resource ns;
    ns.kind = container::kKindNamespace;
    ns.name = source_namespace;
    ns.annotations["backup.zerobak.io/mirrored-from"] = "main";
    (void)backup_api_->Create(std::move(ns));
  }

  auto parsed = storage::StorageArray::ParseVolumeHandle(backup_handle);
  const std::string pv_name =
      "backup-" + source_namespace + "-" + pvc_name;
  if (!backup_api_->Exists(kKindPersistentVolume, "", pv_name)) {
    Resource pv;
    pv.kind = kKindPersistentVolume;
    pv.name = pv_name;
    pv.spec["volumeHandle"] = backup_handle;
    pv.spec["capacityBytes"] = capacity_bytes;
    pv.spec["storageClassName"] = backup_storage_class_;
    pv.spec["claimRef"]["namespace"] = source_namespace;
    pv.spec["claimRef"]["name"] = pvc_name;
    pv.status["phase"] = "Bound";
    (void)parsed;
    (void)backup_api_->Create(std::move(pv));
  }

  if (!backup_api_->Exists(kKindPersistentVolumeClaim, source_namespace,
                           pvc_name)) {
    Resource pvc;
    pvc.kind = kKindPersistentVolumeClaim;
    pvc.ns = source_namespace;
    pvc.name = pvc_name;
    pvc.spec["storageClassName"] = backup_storage_class_;
    pvc.spec["capacityBytes"] = capacity_bytes;
    pvc.spec["volumeName"] = pv_name;  // Statically pre-bound.
    pvc.status["phase"] = "Bound";
    pvc.annotations["backup.zerobak.io/replicated"] = "true";
    (void)backup_api_->Create(std::move(pvc));
  }
}

void ReplicationGroupController::Teardown(const Resource& vrg) {
  const Value* pairs = vrg.status.Find("pairs");
  if (pairs != nullptr && pairs->is_object()) {
    for (const auto& [handle, rec] : pairs->AsObject()) {
      const auto pair_id =
          static_cast<replication::PairId>(rec.GetInt("pairId"));
      if (pair_id != 0) {
        Status st = engine_->DeletePair(pair_id);
        if (!st.ok() && st.code() != StatusCode::kNotFound) {
          ZB_LOG(Warning) << "pair teardown failed: " << st;
        }
      }
    }
  }
  const Value* groups = vrg.status.Find("groups");
  if (groups != nullptr && groups->is_array()) {
    for (const Value& g : groups->AsArray()) {
      Status st = engine_->DeleteConsistencyGroup(
          static_cast<replication::GroupId>(g.AsInt()));
      if (!st.ok() && st.code() != StatusCode::kNotFound) {
        ZB_LOG(Warning) << "group teardown failed: " << st;
      }
    }
  }
  // The backup-site PV(C)s and volumes are intentionally retained: they
  // hold the last replicated image of the business data.
}

}  // namespace zerobak::csi
