#include "csi/provisioner.h"

#include <utility>

#include "common/logging.h"

namespace zerobak::csi {

using container::kKindPersistentVolume;
using container::kKindPersistentVolumeClaim;
using container::kKindStorageClass;
using container::Resource;
using container::WatchEvent;
using container::WatchEventType;

Provisioner::Provisioner(storage::StorageArray* array,
                         std::string provisioner_name)
    : array_(array), provisioner_name_(std::move(provisioner_name)) {}

void Provisioner::Reconcile(const WatchEvent& event) {
  const Resource& pvc = event.resource;
  if (event.type == WatchEventType::kDeleted) {
    ReleaseVolume(pvc);
    return;
  }
  // Already bound (possibly statically, by the replication plugin on the
  // backup site): nothing to do.
  if (pvc.StatusPhase() == "Bound" ||
      !pvc.spec.GetString("volumeName").empty()) {
    return;
  }
  ProvisionAndBind(pvc);
}

void Provisioner::ProvisionAndBind(const Resource& pvc) {
  // Is this PVC ours? Resolve its storage class.
  const std::string sc_name = pvc.spec.GetString("storageClassName");
  if (sc_name.empty()) return;
  auto sc = api_->Get(kKindStorageClass, "", sc_name);
  if (!sc.ok()) return;  // Class not created yet; resync will retry.
  if (sc->spec.GetString("provisioner") != provisioner_name_ ||
      sc->spec.GetString("arraySerial") != array_->serial()) {
    return;  // Another plugin's class.
  }

  const int64_t capacity = pvc.spec.GetInt("capacityBytes");
  if (capacity <= 0) {
    ZB_LOG(Warning) << "PVC " << pvc.Key() << " has no capacity";
    return;
  }
  const std::string volume_name = "pvc-" + pvc.ns + "-" + pvc.name;
  // Idempotency: a previous partially-completed reconcile may have created
  // the volume already.
  storage::Volume* existing = array_->FindVolumeByName(volume_name);
  storage::VolumeId volume_id;
  if (existing != nullptr) {
    volume_id = existing->id();
  } else {
    const uint64_t blocks =
        (static_cast<uint64_t>(capacity) + block::kDefaultBlockSize - 1) /
        block::kDefaultBlockSize;
    auto created = array_->CreateVolume(volume_name, blocks);
    if (!created.ok()) {
      ZB_LOG(Warning) << "provisioning " << volume_name
                      << " failed: " << created.status();
      return;
    }
    volume_id = *created;
    ++provisioned_;
  }

  const std::string pv_name = volume_name;
  if (!api_->Exists(kKindPersistentVolume, "", pv_name)) {
    Resource pv;
    pv.kind = kKindPersistentVolume;
    pv.name = pv_name;
    pv.spec["volumeHandle"] = array_->VolumeHandle(volume_id);
    pv.spec["capacityBytes"] = capacity;
    pv.spec["storageClassName"] = sc_name;
    pv.spec["claimRef"]["namespace"] = pvc.ns;
    pv.spec["claimRef"]["name"] = pvc.name;
    pv.status["phase"] = "Bound";
    auto created_pv = api_->Create(std::move(pv));
    if (!created_pv.ok() &&
        created_pv.status().code() != StatusCode::kAlreadyExists) {
      ZB_LOG(Warning) << "PV create failed: " << created_pv.status();
      return;
    }
  }

  // Bind the claim.
  Status bound = api_->Mutate(
      kKindPersistentVolumeClaim, pvc.ns, pvc.name, [&](Resource* r) {
        r->spec["volumeName"] = pv_name;
        r->status["phase"] = "Bound";
      });
  if (!bound.ok()) {
    ZB_LOG(Warning) << "PVC bind failed: " << bound;
  }
}

void Provisioner::ReleaseVolume(const Resource& pvc) {
  const std::string pv_name = pvc.spec.GetString("volumeName");
  if (pv_name.empty()) return;
  auto pv = api_->Get(kKindPersistentVolume, "", pv_name);
  if (!pv.ok()) return;
  const std::string handle = pv->spec.GetString("volumeHandle");
  auto parsed = storage::StorageArray::ParseVolumeHandle(handle);
  if (parsed.ok() && parsed->first == array_->serial()) {
    Status st = array_->DeleteVolume(parsed->second);
    if (!st.ok() && st.code() != StatusCode::kNotFound) {
      // Replicated or snapshotted volumes cannot be deleted; keep the PV
      // as "Released" so an operator can clean up.
      ZB_LOG(Warning) << "volume release blocked: " << st;
      (void)api_->Mutate(kKindPersistentVolume, "", pv_name,
                         [](Resource* r) {
                           r->status["phase"] = "Released";
                         });
      return;
    }
  } else {
    return;  // Not our volume.
  }
  (void)api_->Delete(kKindPersistentVolume, "", pv_name);
}

}  // namespace zerobak::csi
