#include "replication/scrubber.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace zerobak::replication {

namespace {

// Bumps a cumulative stat and its attached counter in one place, so the
// stats struct and the registry can never drift apart.
inline void Bump(uint64_t* stat, obs::Counter* counter, uint64_t n = 1) {
  *stat += n;
  if (counter != nullptr) counter->Increment(n);
}

}  // namespace

Scrubber::Scrubber(ReplicationEngine* engine, ScrubConfig config)
    : engine_(engine), config_(config) {
  if (config_.extent_blocks == 0) config_.extent_blocks = 1;
  if (config_.max_extents_per_step == 0) config_.max_extents_per_step = 1;
  if (config_.step_interval <= 0) config_.step_interval = Milliseconds(5);
  if (config_.cycle_interval <= 0) config_.cycle_interval = Milliseconds(200);
}

Scrubber::~Scrubber() {
  if (restart_pending_) engine_->env_->Cancel(restart_event_);
  if (engine_->scheduler_ != nullptr) {
    engine_->scheduler_->Unregister(ReplicationEngine::kScrubSchedBase);
  }
}

void Scrubber::Start() {
  if (engine_->scheduler_ != nullptr) {
    // One scheduler slot for the whole scrubber: ticks at step_interval,
    // ships zero wire bytes, so it can never crowd a group's DRR turn.
    engine_->scheduler_->Register(ReplicationEngine::kScrubSchedBase,
                                  config_.step_interval, /*quantum=*/1);
    StartCycle();
    if (cycle_active_) {
      engine_->scheduler_->Arm(ReplicationEngine::kScrubSchedBase);
    }
  } else {
    tick_task_ = std::make_unique<sim::PeriodicTask>(
        engine_->env_, config_.step_interval, [this] {
          if (cycle_active_) PumpStep(UINT64_MAX);
        });
    tick_task_->Start();
    StartCycle();
  }
}

PumpOutcome Scrubber::PumpStep(uint64_t /*max_bytes*/) {
  if (!cycle_active_) return PumpOutcome{};
  for (uint32_t i = 0; i < config_.max_extents_per_step; ++i) {
    if (!ScrubNextExtent()) {
      FinishCycle();
      return PumpOutcome{};  // All-false: the slot disarms until restart.
    }
  }
  PumpOutcome out;
  out.keep_alive = true;  // Next tick, please — never "drain immediately".
  out.quantum = 1;
  return out;
}

void Scrubber::StartCycle() {
  work_.clear();
  work_index_ = 0;
  next_lba_ = 0;
  extents_this_cycle_ = 0;
  repairs_this_cycle_ = 0;
  for (auto& [gid, group] : engine_->groups_) {
    if (group->failed_over) continue;
    for (PairId pid : group->pairs) {
      Pair* pair = engine_->FindPair(pid);
      if (pair == nullptr) continue;
      storage::Volume* pvol =
          engine_->primary_->GetVolume(pair->config_.primary);
      if (pvol == nullptr) continue;
      work_.push_back(WorkItem{gid, pid, pvol->block_count()});
    }
  }
  cycle_active_ = !work_.empty();
  if (ins_.cycle_active != nullptr) {
    ins_.cycle_active->Set(cycle_active_ ? 1 : 0);
  }
  if (cycle_active_) {
    if (trace_ != nullptr) {
      trace_->Record(engine_->env_->now(), obs::TraceEvent::kScrubStart, 0,
                     stats_.cycles_completed + 1);
    }
  } else {
    // Nothing to scrub yet (no pairs): look again after the cycle gap.
    ScheduleRestart();
  }
}

void Scrubber::FinishCycle() {
  cycle_active_ = false;
  Bump(&stats_.cycles_completed, ins_.cycles);
  if (ins_.cycle_active != nullptr) ins_.cycle_active->Set(0);
  if (trace_ != nullptr) {
    trace_->Record(engine_->env_->now(), obs::TraceEvent::kScrubDone, 0,
                   extents_this_cycle_, repairs_this_cycle_);
  }
  ScheduleRestart();
}

void Scrubber::ScheduleRestart() {
  if (restart_pending_) return;
  restart_pending_ = true;
  restart_event_ = engine_->env_->ScheduleAt(
      engine_->env_->now() + config_.cycle_interval, [this] {
        restart_pending_ = false;
        StartCycle();
        if (cycle_active_ && engine_->scheduler_ != nullptr) {
          engine_->scheduler_->Arm(ReplicationEngine::kScrubSchedBase);
        }
      });
}

bool Scrubber::ScrubNextExtent() {
  while (work_index_ < work_.size()) {
    const WorkItem& item = work_[work_index_];
    if (next_lba_ >= item.block_count) {
      ++work_index_;
      next_lba_ = 0;
      continue;
    }
    const uint64_t lba = next_lba_;
    const uint32_t count = static_cast<uint32_t>(std::min<uint64_t>(
        config_.extent_blocks, item.block_count - lba));
    next_lba_ += count;
    ScrubExtent(item, lba, count);
    return true;
  }
  return false;
}

void Scrubber::ScrubExtent(const WorkItem& item, uint64_t lba,
                           uint32_t count) {
  auto git = engine_->groups_.find(item.group);
  if (git == engine_->groups_.end()) return;
  auto* group = git->second.get();
  if (group->failed_over) return;
  Pair* pair = engine_->FindPair(item.pair);
  if (pair == nullptr) return;
  // Initial copy still running (the S-VOL is not a replica yet) or the
  // pair is dissolved: nothing to compare against.
  if (pair->state_ != PairState::kPaired &&
      pair->state_ != PairState::kSuspended) {
    return;
  }
  storage::Volume* pvol = engine_->primary_->GetVolume(pair->config_.primary);
  storage::Volume* svol =
      engine_->secondary_->GetVolume(pair->config_.secondary);
  if (pvol == nullptr || svol == nullptr) return;
  block::MemVolume& pstore = pvol->store();
  block::MemVolume& sstore = svol->store();

  ++extents_this_cycle_;
  Bump(&stats_.extents_scanned, ins_.extents_scanned);
  Bump(&stats_.blocks_scanned, ins_.blocks_scanned, count);

  // Holes on both sides have no media to rot and nothing to diverge.
  const bool p_alloc = pstore.AnyAllocated(lba, count);
  const bool s_alloc = sstore.AnyAllocated(lba, count);
  if (!p_alloc && !s_alloc) return;

  block::Lba bad = 0;
  const auto pv = pstore.VerifyExtent(lba, count, &bad);
  const auto sv = sstore.VerifyExtent(lba, count, &bad);

  // Fingerprints are only comparable at a write-order-consistent point:
  // with acked == written nothing is in flight, on the wire or pending
  // apply, so a byte difference is corruption, not replication lag.
  auto* pj = engine_->primary_->GetJournal(group->primary_journal);
  const bool quiescent =
      !group->suspended && !group->giveback_in_flight &&
      group->inflight_resync == nullptr && !group->resync_retry_pending &&
      pj != nullptr && pj->acked() == pj->written() &&
      pair->dirty_.count() == 0;
  // A repair is already in motion (resync batch on the wire, or a retry
  // scheduled): suspending again now would supersede and kill it, and the
  // extent it carries still verifies bad until the batch lands. Leave the
  // group alone; the next cycle re-checks whatever the resync missed.
  const bool repair_in_motion = group->inflight_resync != nullptr ||
                                group->resync_retry_pending;
  // Already queued for repair by an earlier pass or a suspension.
  const bool already_marked = pair->dirty_.NextDirty(lba) < lba + count;

  using Health = block::MemVolume::ExtentHealth;
  if (pv == Health::kMediaError || sv == Health::kMediaError) {
    Bump(&stats_.media_errors, ins_.media_errors);
  }
  if (pv == Health::kChecksumMismatch || sv == Health::kChecksumMismatch) {
    Bump(&stats_.checksum_mismatches, ins_.checksum_mismatches);
  }

  // Secondary-side repair: dirty-mark the extent and lean on the existing
  // suspend -> backoff -> resync machinery, which ships exactly the
  // marked blocks from the (clean) primary and re-pairs.
  auto mark_for_resync = [&] {
    if (!config_.repair || repair_in_motion || already_marked) return;
    pair->dirty_.SetRange(lba, count);
    ReplicationEngine::NoteUnsynced(group, engine_->env_->now());
    Bump(&stats_.repairs_scheduled, ins_.repairs_scheduled);
    RecordRepair(item.group, pair->config_.secondary, lba);
    if (!group->suspended) {
      engine_->SuspendOnFailure(group, SuspendReason::kScrubRepair);
    }
  };

  if (pv == Health::kClean && sv != Health::kClean) {
    mark_for_resync();
    return;
  }

  if (pv != Health::kClean && sv == Health::kClean) {
    // Primary-side damage with a trustworthy replica. Restoring is only
    // safe when no un-replicated writes exist — otherwise the (older)
    // secondary bytes could clobber data the journal has not shipped yet.
    if (!config_.repair) return;
    if (!quiescent) {
      Bump(&stats_.deferred_repairs, ins_.deferred_repairs);
      return;
    }
    const size_t bytes = static_cast<size_t>(count) * pvol->block_size();
    scratch_secondary_.resize(bytes);
    sstore.ReadInto(lba, count, scratch_secondary_.data());
    Status restored = pvol->Write(lba, count, scratch_secondary_);
    if (restored.ok()) {
      Bump(&stats_.primary_restores, ins_.primary_restores);
      RecordRepair(item.group, pair->config_.primary, lba);
    } else {
      // Media still failing (an active error episode): retry next cycle.
      Bump(&stats_.deferred_repairs, ins_.deferred_repairs);
    }
    return;
  }

  if (pv != Health::kClean && sv != Health::kClean) {
    // No clean side to heal from. Count it; never resync a corrupt
    // primary extent onto the secondary (that would propagate the rot).
    Bump(&stats_.unrecoverable_extents, ins_.unrecoverable);
    return;
  }

  // Both sides clean: compare content, but only at a quiescent point.
  // Each side just verified against its own CRC sidecar, so comparing
  // sidecar fingerprints is byte-comparison (modulo CRC collision) at
  // ~1/1000th of the memory traffic — this is what keeps scrub overhead
  // on a clean busy group inside the E15a acceptance.
  if (!quiescent) return;
  bool divergent;
  if (pstore.checksums_enabled() && sstore.checksums_enabled()) {
    divergent = pstore.ExtentFingerprint(lba, count) !=
                sstore.ExtentFingerprint(lba, count);
  } else {
    const size_t bytes = static_cast<size_t>(count) * pvol->block_size();
    scratch_primary_.resize(bytes);
    scratch_secondary_.resize(bytes);
    pstore.ReadInto(lba, count, scratch_primary_.data());
    sstore.ReadInto(lba, count, scratch_secondary_.data());
    divergent = std::memcmp(scratch_primary_.data(),
                            scratch_secondary_.data(), bytes) != 0;
  }
  if (divergent) {
    Bump(&stats_.divergent_extents, ins_.divergent_extents);
    mark_for_resync();
  }
}

void Scrubber::RecordRepair(GroupId group, storage::VolumeId volume,
                            uint64_t lba) {
  ++repairs_this_cycle_;
  if (trace_ != nullptr) {
    trace_->Record(engine_->env_->now(), obs::TraceEvent::kScrubRepair,
                   group, volume, lba);
  }
}

void Scrubber::AttachObservability(obs::MetricRegistry* registry,
                                   obs::TraceRing* trace) {
  trace_ = trace;
  if (registry == nullptr) {
    ins_ = Instruments{};
    return;
  }
  ins_.cycles = registry->GetCounter("scrub.cycles");
  ins_.extents_scanned = registry->GetCounter("scrub.extents_scanned");
  ins_.blocks_scanned = registry->GetCounter("scrub.blocks_scanned");
  ins_.checksum_mismatches =
      registry->GetCounter("scrub.checksum_mismatches");
  ins_.media_errors = registry->GetCounter("scrub.media_errors");
  ins_.divergent_extents = registry->GetCounter("scrub.divergent_extents");
  ins_.repairs_scheduled = registry->GetCounter("scrub.repairs_scheduled");
  ins_.primary_restores = registry->GetCounter("scrub.primary_restores");
  ins_.deferred_repairs = registry->GetCounter("scrub.deferred_repairs");
  ins_.unrecoverable = registry->GetCounter("scrub.unrecoverable_extents");
  ins_.cycle_active = registry->GetGauge("scrub.cycle_active");
  ins_.cycle_active->Set(cycle_active_ ? 1 : 0);
}

}  // namespace zerobak::replication
