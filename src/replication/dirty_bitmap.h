#ifndef ZEROBAK_REPLICATION_DIRTY_BITMAP_H_
#define ZEROBAK_REPLICATION_DIRTY_BITMAP_H_

#include <cstdint>
#include <vector>

namespace zerobak::replication {

// Two-level hierarchical dirty-block bitmap.
//
// Replaces the hash-set dirty tracking of the pair state machine: one bit
// per block in a flat leaf array, plus a summary level with one bit per
// 64-bit leaf word (set iff the leaf word is non-zero). This gives
//   * O(1) Set/Clear/Test with dense memory (1 bit per block instead of
//     ~48 bytes of unordered_set node per dirty block),
//   * LBA-ordered iteration — scans skip clean regions 4096 blocks at a
//     time through the summary level, so resync ships a *canonical sorted*
//     delta instead of hash-order (which made seeded replays bit-exact
//     only by luck of the stdlib), and
//   * cheap extent-run merging: NextRun() returns maximal runs of
//     adjacent dirty blocks, which the resync path turns into one
//     multi-block record per run.
class DirtyBitmap {
 public:
  // Sentinel LBA returned by NextDirty when no dirty block remains.
  static constexpr uint64_t kNone = UINT64_MAX;

  DirtyBitmap() = default;
  explicit DirtyBitmap(uint64_t block_count) { Reset(block_count); }

  // Re-sizes the bitmap to `block_count` blocks, all clean.
  void Reset(uint64_t block_count);

  uint64_t block_count() const { return block_count_; }
  // Number of dirty blocks (maintained incrementally; O(1)).
  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  // Marks `lba` dirty; returns true if it was clean before.
  bool Set(uint64_t lba);
  // Marks `lba` clean; returns true if it was dirty before.
  bool Clear(uint64_t lba);
  bool Test(uint64_t lba) const;

  void SetRange(uint64_t lba, uint64_t n);
  void ClearRange(uint64_t lba, uint64_t n);
  // Marks every block clean without releasing the geometry.
  void ClearAll();

  // Bitwise-ORs `other` (same block_count) into this bitmap.
  void UnionWith(const DirtyBitmap& other);

  // First dirty LBA >= `from`, or kNone. Skips fully-clean 4096-block
  // regions via the summary level.
  uint64_t NextDirty(uint64_t from) const;

  // A maximal run of consecutive dirty blocks.
  struct Run {
    uint64_t lba = kNone;
    uint64_t count = 0;
  };

  // The run starting at the first dirty LBA >= `from`, truncated to
  // `max_len` blocks. Run{kNone, 0} when nothing is dirty at or after
  // `from`.
  Run NextRun(uint64_t from, uint64_t max_len = UINT64_MAX) const;

  // Invokes `fn(Run)` for every dirty extent in ascending LBA order,
  // splitting runs longer than `max_len`.
  template <typename Fn>
  void ForEachRun(Fn&& fn, uint64_t max_len = UINT64_MAX) const {
    uint64_t from = 0;
    while (from < block_count_) {
      Run run = NextRun(from, max_len);
      if (run.count == 0) return;
      fn(run);
      from = run.lba + run.count;
    }
  }

 private:
  // First clean LBA >= `from`, or block_count_ when the tail is solid.
  uint64_t NextClean(uint64_t from) const;

  uint64_t block_count_ = 0;
  uint64_t count_ = 0;
  std::vector<uint64_t> leaves_;   // One bit per block.
  std::vector<uint64_t> summary_;  // Bit i set iff leaves_[i] != 0.
};

}  // namespace zerobak::replication

#endif  // ZEROBAK_REPLICATION_DIRTY_BITMAP_H_
