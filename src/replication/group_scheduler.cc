#include "replication/group_scheduler.h"

#include <algorithm>

namespace zerobak::replication {

GroupScheduler::GroupScheduler(sim::SimEnvironment* env,
                               sim::NetworkLink* link,
                               SimDuration heartbeat_interval, PumpFn pump,
                               HeartbeatFn heartbeat)
    : env_(env),
      link_(link),
      pump_(std::move(pump)),
      heartbeat_(std::move(heartbeat)) {
  heartbeat_task_ = std::make_unique<sim::PeriodicTask>(
      env_, heartbeat_interval, [this]() {
        ++stats_.heartbeats;
        if (instruments_.heartbeats != nullptr) {
          instruments_.heartbeats->Increment();
        }
        if (heartbeat_) stats_.heartbeat_rescues += heartbeat_();
      });
}

GroupScheduler::~GroupScheduler() {
  if (dispatch_pending_) env_->Cancel(dispatch_event_);
}

void GroupScheduler::Register(GroupSchedulerId id, SimDuration interval,
                              uint64_t quantum) {
  GroupState& g = groups_[id];
  g.interval = std::max<SimDuration>(interval, 1);
  g.origin = env_->now();
  g.quantum = std::max<uint64_t>(quantum, 1);
  stats_.registered_groups = groups_.size();
  // The heartbeat only runs while there is something to rescue.
  if (!heartbeat_task_->running()) heartbeat_task_->Start();
}

void GroupScheduler::Unregister(GroupSchedulerId id) {
  auto it = groups_.find(id);
  if (it == groups_.end()) return;
  Disarm(id);
  groups_.erase(it);
  stats_.registered_groups = groups_.size();
  if (groups_.empty() && heartbeat_task_->running()) {
    heartbeat_task_->Stop();
  }
}

void GroupScheduler::Arm(GroupSchedulerId id) {
  auto it = groups_.find(id);
  if (it == groups_.end()) return;
  GroupState& g = it->second;
  if (g.armed) return;
  g.armed = true;
  // Due at the next interval tick, never immediately: writes landing
  // within one batching window still coalesce into a single batch.
  g.due = NextTick(g, env_->now());
  ++stats_.arms;
  if (instruments_.arms != nullptr) instruments_.arms->Increment();
  SetArmedCount(stats_.armed_groups + 1);
  if (trace_ != nullptr) {
    trace_->Record(env_->now(), obs::TraceEvent::kSchedArm, id,
                   stats_.armed_groups);
  }
  if (!g.in_queue) {
    g.in_queue = true;
    run_queue_.push_back(id);
  }
  ScheduleDispatchAt(g.due);
}

void GroupScheduler::Disarm(GroupSchedulerId id) {
  auto it = groups_.find(id);
  if (it == groups_.end()) return;
  GroupState& g = it->second;
  if (!g.armed) return;
  g.armed = false;
  g.deficit = 0;
  // The run_queue_ entry (if any) is dropped lazily by RunRound.
  SetArmedCount(stats_.armed_groups - 1);
}

bool GroupScheduler::armed(GroupSchedulerId id) const {
  auto it = groups_.find(id);
  return it != groups_.end() && it->second.armed;
}

void GroupScheduler::SetArmedCount(uint64_t count) {
  stats_.armed_groups = count;
  if (instruments_.armed_groups != nullptr) {
    instruments_.armed_groups->Set(static_cast<int64_t>(count));
  }
}

void GroupScheduler::ScheduleDispatchAt(SimTime t) {
  t = std::max(t, env_->now());
  if (dispatch_pending_) {
    if (t >= dispatch_at_) return;
    env_->Cancel(dispatch_event_);
  }
  dispatch_pending_ = true;
  dispatch_at_ = t;
  dispatch_event_ = env_->ScheduleAt(t, [this]() { RunRound(); });
}

void GroupScheduler::RunRound() {
  dispatch_pending_ = false;
  ++stats_.wakeups;
  if (instruments_.wakeups != nullptr) instruments_.wakeups->Increment();
  const SimTime now = env_->now();

  // One round visits each queued group at most once; groups that stay
  // armed are re-appended and picked up by the next round.
  size_t budget = run_queue_.size();
  while (budget-- > 0 && !run_queue_.empty()) {
    const GroupSchedulerId id = run_queue_.front();
    run_queue_.pop_front();
    auto it = groups_.find(id);
    if (it == groups_.end()) continue;
    GroupState* g = &it->second;
    if (!g->armed) {
      g->in_queue = false;
      continue;
    }
    if (g->due > now) {
      run_queue_.push_back(id);
      continue;
    }
    // Deficit round-robin: the turn earns a quantum; a group whose last
    // batch overshot skips turns until its balance recovers, which is
    // what bounds the share of a link hog. Because the credit is added
    // before the skip check, every deferred turn strictly increases the
    // deficit — starvation is always finite.
    g->deficit += static_cast<int64_t>(g->quantum);
    if (g->deficit <= 0) {
      ++stats_.starved_turns;
      if (instruments_.starved_turns != nullptr) {
        instruments_.starved_turns->Increment();
      }
      if (trace_ != nullptr) {
        trace_->Record(now, obs::TraceEvent::kSchedStarved, id,
                       static_cast<uint64_t>(-g->deficit));
      }
      g->due = now;
      run_queue_.push_back(id);
      continue;
    }
    ++stats_.dispatches;
    if (instruments_.dispatches != nullptr) {
      instruments_.dispatches->Increment();
    }
    const PumpOutcome out =
        pump_(id, static_cast<uint64_t>(g->deficit));
    // The pump may have suspended or deleted the group reentrantly.
    it = groups_.find(id);
    if (it == groups_.end()) continue;
    g = &it->second;
    g->quantum = std::max<uint64_t>(out.quantum, 1);
    if (out.sent) {
      g->deficit -= static_cast<int64_t>(out.wire_bytes);
    } else {
      g->deficit = 0;
    }
    if (!g->armed) {
      g->in_queue = false;
      continue;
    }
    if (out.sent && out.backlog) {
      // Drain mode: chase the wire. On an idle link the next pump runs
      // the moment this batch finishes serializing; on a saturated link
      // the interval tick comes first and paces us (preserving the
      // adaptive controller's backlog signal).
      g->due = std::min(NextTick(*g, now),
                        std::max(now, link_->wire_busy_until()));
      run_queue_.push_back(id);
    } else if (out.keep_alive) {
      // Nothing to ship but unacked data in flight: tick at the interval
      // so adaptive resizing keeps observing the link. Idle groups must
      // not bank credit they did not use.
      g->deficit = std::min(g->deficit, static_cast<int64_t>(g->quantum));
      g->due = NextTick(*g, now);
      run_queue_.push_back(id);
    } else {
      g->armed = false;
      g->deficit = 0;
      g->in_queue = false;
      SetArmedCount(stats_.armed_groups - 1);
    }
  }

  // Sleep until the earliest armed group is due.
  bool have_next = false;
  SimTime next = 0;
  for (const GroupSchedulerId id : run_queue_) {
    auto it = groups_.find(id);
    if (it == groups_.end() || !it->second.armed) continue;
    if (!have_next || it->second.due < next) {
      have_next = true;
      next = it->second.due;
    }
  }
  if (have_next) ScheduleDispatchAt(next);
}

}  // namespace zerobak::replication
