#include "replication/dirty_bitmap.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace zerobak::replication {

namespace {
inline uint64_t WordsFor(uint64_t bits) { return (bits + 63) / 64; }
}  // namespace

void DirtyBitmap::Reset(uint64_t block_count) {
  block_count_ = block_count;
  count_ = 0;
  leaves_.assign(WordsFor(block_count), 0);
  summary_.assign(WordsFor(leaves_.size()), 0);
}

bool DirtyBitmap::Set(uint64_t lba) {
  ZB_CHECK(lba < block_count_) << "DirtyBitmap::Set out of range";
  const uint64_t wi = lba / 64;
  const uint64_t bit = 1ull << (lba % 64);
  if (leaves_[wi] & bit) return false;
  leaves_[wi] |= bit;
  summary_[wi / 64] |= 1ull << (wi % 64);
  ++count_;
  return true;
}

bool DirtyBitmap::Clear(uint64_t lba) {
  if (lba >= block_count_) return false;
  const uint64_t wi = lba / 64;
  const uint64_t bit = 1ull << (lba % 64);
  if ((leaves_[wi] & bit) == 0) return false;
  leaves_[wi] &= ~bit;
  if (leaves_[wi] == 0) summary_[wi / 64] &= ~(1ull << (wi % 64));
  --count_;
  return true;
}

bool DirtyBitmap::Test(uint64_t lba) const {
  if (lba >= block_count_) return false;
  return (leaves_[lba / 64] >> (lba % 64)) & 1;
}

void DirtyBitmap::SetRange(uint64_t lba, uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) Set(lba + i);
}

void DirtyBitmap::ClearRange(uint64_t lba, uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) Clear(lba + i);
}

void DirtyBitmap::ClearAll() {
  std::fill(leaves_.begin(), leaves_.end(), 0);
  std::fill(summary_.begin(), summary_.end(), 0);
  count_ = 0;
}

void DirtyBitmap::UnionWith(const DirtyBitmap& other) {
  ZB_CHECK(other.block_count_ == block_count_)
      << "DirtyBitmap::UnionWith geometry mismatch";
  count_ = 0;
  for (size_t wi = 0; wi < leaves_.size(); ++wi) {
    leaves_[wi] |= other.leaves_[wi];
    count_ += static_cast<uint64_t>(std::popcount(leaves_[wi]));
    if (leaves_[wi] != 0) summary_[wi / 64] |= 1ull << (wi % 64);
  }
}

uint64_t DirtyBitmap::NextDirty(uint64_t from) const {
  if (from >= block_count_) return kNone;
  uint64_t wi = from / 64;
  // Tail of the word containing `from`.
  const uint64_t head = leaves_[wi] & (~0ull << (from % 64));
  if (head != 0) {
    return wi * 64 + static_cast<uint64_t>(std::countr_zero(head));
  }
  // Skip clean leaf words through the summary level.
  ++wi;
  uint64_t si = wi / 64;
  if (si >= summary_.size()) return kNone;
  uint64_t sword = summary_[si] & (wi % 64 == 0 ? ~0ull : ~0ull << (wi % 64));
  while (sword == 0) {
    if (++si >= summary_.size()) return kNone;
    sword = summary_[si];
  }
  const uint64_t li = si * 64 + static_cast<uint64_t>(std::countr_zero(sword));
  return li * 64 + static_cast<uint64_t>(std::countr_zero(leaves_[li]));
}

uint64_t DirtyBitmap::NextClean(uint64_t from) const {
  uint64_t lba = from;
  while (lba < block_count_) {
    const uint64_t wi = lba / 64;
    const uint64_t inverted = ~leaves_[wi] & (~0ull << (lba % 64));
    if (inverted != 0) {
      return std::min<uint64_t>(
          block_count_, wi * 64 + static_cast<uint64_t>(std::countr_zero(
                                      inverted)));
    }
    lba = (wi + 1) * 64;
  }
  return block_count_;
}

DirtyBitmap::Run DirtyBitmap::NextRun(uint64_t from, uint64_t max_len) const {
  const uint64_t start = NextDirty(from);
  if (start == kNone) return Run{};
  uint64_t end = NextClean(start);
  if (max_len != UINT64_MAX && end - start > max_len) end = start + max_len;
  return Run{start, end - start};
}

}  // namespace zerobak::replication
