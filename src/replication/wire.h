#ifndef ZEROBAK_REPLICATION_WIRE_H_
#define ZEROBAK_REPLICATION_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "journal/journal.h"

namespace zerobak::replication::wire {

// Wire format for shipped journal batches: the transfer engine serializes
// each batch (record headers, folded tombstones and payloads) into ONE
// framed, optionally compressed, CRC-protected buffer, and the secondary
// verifies the checksum before anything touches its journal. A mismatch is
// indistinguishable from a dropped message by design — the caller nacks
// and the existing backoff/resync machinery reships the data.
//
// Frame layout (all multi-byte fields little-endian):
//
//   +----------+---------+---------------+-----------+------------------+
//   | magic u32| flags u8| masked CRC u32| body_len  | body (body_len)  |
//   | "ZBW1"   | bit0 =  | of the stored | u32       |                  |
//   |          | LZ body | body bytes    |           |                  |
//   +----------+---------+---------------+-----------+------------------+
//
// The CRC covers the body exactly as stored on the wire (compressed when
// bit0 is set), so a corrupt frame is rejected before decompression; the
// decompressor is separately hardened against garbage. The CRC is masked
// (LevelDB-style) because journal payloads may themselves contain CRCs.
//
// Body layout (before compression):
//
//   varint record_count
//   record_count x header:
//     varint sequence-delta   (from the previous record; first is absolute)
//     varint volume_id
//     varint lba
//     varint block_count
//     varint flags            (bit0 = folded tombstone)
//     varint payload_len
//     varint ack_time-delta   (zigzag, from the previous record)
//     varint atomic_through-delta (zigzag, from this record's sequence)
//   concatenation of all payloads, in record order
//
// Decoding allocates exactly one PayloadBuffer for the whole batch and
// hands every record a Slice of it, preserving the journal pipeline's
// one-allocation-per-batch property on the receive side.

// A serialized batch ready for the link.
struct EncodedBatch {
  // The frame to put on the wire.
  std::string frame;
  // Journal bytes the frame represents (sum of JournalRecord::
  // EncodedSize()); feeds logical-byte accounting.
  uint64_t logical_bytes = 0;
  // Whether the body was actually compressed (false when the compressor's
  // stored escape fired or compression was disabled).
  bool compressed = false;
};

// Serializes `records` into one frame. When `compress` is set the body is
// run through the block compressor and kept only if it shrank.
EncodedBatch EncodeBatch(const std::vector<journal::JournalRecord>& records,
                         bool compress);

// Verifies and deserializes one frame. Returns DataLoss on a bad magic,
// checksum mismatch, or any malformed/truncated content — never crashes,
// never applies a partial batch.
StatusOr<std::vector<journal::JournalRecord>> DecodeBatch(
    std::string_view frame);

}  // namespace zerobak::replication::wire

#endif  // ZEROBAK_REPLICATION_WIRE_H_
