#ifndef ZEROBAK_REPLICATION_WIRE_H_
#define ZEROBAK_REPLICATION_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "journal/journal.h"

namespace zerobak::exec {
class ThreadPool;
}  // namespace zerobak::exec

namespace zerobak::replication::wire {

// Wire format for shipped journal batches: the transfer engine serializes
// each batch (record headers, folded tombstones and payloads) into ONE
// framed, optionally compressed, CRC-protected buffer, and the secondary
// verifies the checksum before anything touches its journal. A mismatch is
// indistinguishable from a dropped message by design — the caller nacks
// and the existing backoff/resync machinery reships the data.
//
// Frame layout (all multi-byte fields little-endian):
//
//   +----------+---------+---------------+-----------+------------------+
//   | magic u32| flags u8| masked CRC u32| body_len  | body (body_len)  |
//   | "ZBW1"   | bit0 =  | of the stored | u32       |                  |
//   |          | LZ body | body bytes    |           |                  |
//   |          | bit1 =  |               |           |                  |
//   |          | chunked |               |           |                  |
//   +----------+---------+---------------+-----------+------------------+
//
// The CRC covers the body exactly as stored on the wire (compressed when
// bit0 or bit1 is set), so a corrupt frame is rejected before
// decompression; the decompressor is separately hardened against garbage.
// The CRC is masked (LevelDB-style) because journal payloads may
// themselves contain CRCs.
//
// Body layout (plain, before compression):
//
//   varint record_count
//   record_count x header:
//     varint sequence-delta   (from the previous record; first is absolute)
//     varint volume_id
//     varint lba
//     varint block_count
//     varint flags            (bit0 = folded tombstone)
//     varint payload_len
//     varint ack_time-delta   (zigzag, from the previous record)
//     varint atomic_through-delta (zigzag, from this record's sequence)
//   concatenation of all payloads, in record order
//
// Stored-body variants, selected by the frame flags:
//
//   flags=0 (stored):  the plain body verbatim.
//   bit0 (LZ):         one Compress() frame of the whole plain body; used
//                      when the plain body fits in a single chunk.
//   bit1 (chunked):    the plain body split at FIXED kChunkBytes
//                      boundaries, each chunk compressed independently:
//                        varint chunk_count (>= 2)
//                        chunk_count x varint encoded_len
//                        concatenation of the chunks' Compress() frames
//
// Chunk boundaries are a property of the FORMAT (fixed byte offsets into
// the plain body), never of the encoder's thread count: a frame encoded
// with 1 lane and with N lanes is byte-identical, which is what lets the
// compute pool parallelize per-chunk compression, checksumming (merged
// with Crc32cCombine) and decompression inside one sim event without
// perturbing the deterministic simulation — wire byte counts drive link
// serialization timing. Which variant gets shipped depends only on sizes:
// the compressed body is kept only if it shrank.
//
// Decoding allocates exactly one PayloadBuffer for the whole batch and
// hands every record a Slice of it, preserving the journal pipeline's
// one-allocation-per-batch property on the receive side.

// Fixed chunking granularity of the bit1 variant. Also the split used for
// parallel CRC computation; both are format/implementation constants that
// must not vary with lane count.
inline constexpr size_t kChunkBytes = 64 * 1024;

// A serialized batch ready for the link.
struct EncodedBatch {
  // The frame to put on the wire.
  std::string frame;
  // Journal bytes the frame represents (sum of JournalRecord::
  // EncodedSize()); feeds logical-byte accounting.
  uint64_t logical_bytes = 0;
  // Whether the body was actually compressed (false when the compressor's
  // stored escape fired or compression was disabled).
  bool compressed = false;
};

// Serializes `records` into one frame. When `compress` is set the body is
// run through the block compressor (whole-body for small batches, chunked
// for bodies over kChunkBytes) and kept only if it shrank. `pool`, when
// non-null, parallelizes per-chunk compression and the body CRC; the
// output frame is byte-identical with or without it.
EncodedBatch EncodeBatch(const std::vector<journal::JournalRecord>& records,
                         bool compress, exec::ThreadPool* pool = nullptr);

// Verifies and deserializes one frame. Returns DataLoss on a bad magic,
// checksum mismatch, or any malformed/truncated content — never crashes,
// never applies a partial batch. `pool`, when non-null, parallelizes the
// CRC verify and per-chunk decompression; the result is identical.
StatusOr<std::vector<journal::JournalRecord>> DecodeBatch(
    std::string_view frame, exec::ThreadPool* pool = nullptr);

// Crc32c over `data`, split at kChunkBytes boundaries across `pool` and
// merged in order with Crc32cCombine — bit-identical to the single-pass
// checksum. Inline single-pass when `pool` is null or the data is one
// chunk. Exposed for the resync path, which checksums captured extents
// with the same discipline.
uint32_t ParallelCrc32c(std::string_view data, exec::ThreadPool* pool);

}  // namespace zerobak::replication::wire

#endif  // ZEROBAK_REPLICATION_WIRE_H_
