#include "replication/replication.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/crc32c.h"
#include "common/logging.h"
#include "replication/scrubber.h"
#include "replication/wire.h"

namespace zerobak::replication {

const char* PairStateName(PairState state) {
  switch (state) {
    case PairState::kCopy:
      return "COPY";
    case PairState::kPaired:
      return "PAIR";
    case PairState::kSuspended:
      return "PSUS";
    case PairState::kSwapped:
      return "SSWS";
  }
  return "?";
}

const char* ReplicationModeName(ReplicationMode mode) {
  return mode == ReplicationMode::kSynchronous ? "sync" : "async";
}

const char* SuspendReasonName(SuspendReason reason) {
  switch (reason) {
    case SuspendReason::kNone:
      return "none";
    case SuspendReason::kOperator:
      return "operator";
    case SuspendReason::kJournalOverflow:
      return "journal-overflow";
    case SuspendReason::kAckTimeout:
      return "ack-timeout";
    case SuspendReason::kResyncTimeout:
      return "resync-timeout";
    case SuspendReason::kWireReject:
      return "wire-reject";
    case SuspendReason::kMediaError:
      return "media-error";
    case SuspendReason::kScrubRepair:
      return "scrub-repair";
  }
  return "?";
}

ConsistencyGroupConfig ConsistencyGroupConfig::Normalized() const {
  ConsistencyGroupConfig out = *this;
  // A batch always has room for at least one default-sized record, so a
  // zero (or absurdly small) sweep value can never wedge the engine.
  const uint64_t one_record =
      journal::JournalRecord::kHeaderSize + (4ull << 10);
  out.transfer_batch_min_bytes =
      std::max(out.transfer_batch_min_bytes, one_record);
  out.transfer_batch_max_bytes =
      std::max(out.transfer_batch_max_bytes, out.transfer_batch_min_bytes);
  out.transfer_batch_bytes =
      std::max(out.transfer_batch_bytes, one_record);
  if (out.enable_adaptive_batching) {
    // The fixed-batch ablation sweeps values outside [min, max]; only the
    // adaptive controller is confined to its own bounds.
    out.transfer_batch_bytes =
        std::clamp(out.transfer_batch_bytes, out.transfer_batch_min_bytes,
                   out.transfer_batch_max_bytes);
  }
  if (out.resync_max_extent_blocks == 0) out.resync_max_extent_blocks = 1;
  return out;
}

Status ConsistencyGroupConfig::Validate() const {
  if (transfer_interval <= 0) {
    return InvalidArgumentError("transfer_interval must be positive");
  }
  if (journal_capacity_bytes == 0) {
    return InvalidArgumentError("journal_capacity_bytes must be nonzero");
  }
  if (transfer_batch_bytes == 0) {
    return InvalidArgumentError("transfer_batch_bytes must be nonzero");
  }
  if (resync_max_extent_blocks == 0) {
    return InvalidArgumentError("resync_max_extent_blocks must be nonzero");
  }
  if (ack_timeout < 0) {
    return InvalidArgumentError("ack_timeout must be >= 0 (0 disables)");
  }
  if (enable_adaptive_batching) {
    // The bounds only govern the adaptive controller; a fixed-batch
    // ablation sweep may pin transfer_batch_bytes anywhere it likes.
    if (transfer_batch_min_bytes == 0) {
      return InvalidArgumentError("transfer_batch_min_bytes must be nonzero");
    }
    if (transfer_batch_max_bytes < transfer_batch_min_bytes) {
      return InvalidArgumentError(
          "transfer_batch_max_bytes < transfer_batch_min_bytes");
    }
    if (transfer_batch_bytes < transfer_batch_min_bytes ||
        transfer_batch_bytes > transfer_batch_max_bytes) {
      return InvalidArgumentError(
          "transfer_batch_bytes outside [transfer_batch_min_bytes, "
          "transfer_batch_max_bytes]");
    }
  }
  if (auto_resync) {
    if (resync_backoff_initial <= 0) {
      return InvalidArgumentError("resync_backoff_initial must be positive");
    }
    if (resync_backoff_max < resync_backoff_initial) {
      return InvalidArgumentError(
          "resync_backoff_max < resync_backoff_initial");
    }
  }
  return OkStatus();
}

namespace internal {

// Interceptor installed on an async P-VOL: journals the write, acks.
class AdcInterceptor : public storage::WriteInterceptor {
 public:
  AdcInterceptor(ReplicationEngine* engine, Pair* pair)
      : engine_(engine), pair_(pair) {}

  void OnHostWrite(storage::Volume* volume, block::Lba lba, uint32_t count,
                   std::string_view data, AckFn ack) override {
    engine_->OnAsyncHostWrite(pair_, volume, lba, count, data,
                              std::move(ack));
  }

 private:
  ReplicationEngine* engine_;
  Pair* pair_;
};

// Interceptor installed on a sync P-VOL: ships the write and delays the
// host ack until the remote site persisted it.
class SyncInterceptor : public storage::WriteInterceptor {
 public:
  SyncInterceptor(ReplicationEngine* engine, Pair* pair)
      : engine_(engine), pair_(pair) {}

  void OnHostWrite(storage::Volume* volume, block::Lba lba, uint32_t count,
                   std::string_view data, AckFn ack) override {
    engine_->OnSyncHostWrite(pair_, volume, lba, count, data,
                             std::move(ack));
  }

 private:
  ReplicationEngine* engine_;
  Pair* pair_;
};

// Interceptor installed on an S-VOL: rejects host writes while the pair is
// active. The replication applier writes to the volume directly and is
// therefore unaffected.
class SecondaryGuard : public storage::WriteInterceptor {
 public:
  explicit SecondaryGuard(Pair* pair) : pair_(pair) {}

  Status PreCheck(storage::Volume* volume, block::Lba, uint32_t) override {
    return FailedPreconditionError(
        "volume " + volume->name() +
        " is an S-VOL of pair " + pair_->config().name +
        " (state " + PairStateName(pair_->state()) + "); host writes are "
        "disabled until failover");
  }

  void OnHostWrite(storage::Volume*, block::Lba, uint32_t, std::string_view,
                   AckFn ack) override {
    // PreCheck always rejects, so this is unreachable; ack defensively.
    ack(InternalError("SecondaryGuard::OnHostWrite reached"));
  }

 private:
  Pair* pair_;
};

// Interceptor installed on a promoted S-VOL after failover: the business
// writes freely, but every touched block is recorded so a later failback
// ships only the delta back to the main site.
class ReverseDirtyTracker : public storage::WriteInterceptor {
 public:
  explicit ReverseDirtyTracker(Pair* pair) : pair_(pair) {}

  void OnHostWrite(storage::Volume*, block::Lba lba, uint32_t count,
                   std::string_view, AckFn ack) override {
    pair_->reverse_dirty_.SetRange(lba, count);
    ack(OkStatus());
  }

 private:
  Pair* pair_;
};

}  // namespace internal

ReplicationEngine::ReplicationEngine(sim::SimEnvironment* env,
                                     storage::StorageArray* primary,
                                     storage::StorageArray* secondary,
                                     sim::NetworkLink* to_secondary,
                                     sim::NetworkLink* to_primary,
                                     EngineOptions options)
    : env_(env),
      primary_(primary),
      secondary_(secondary),
      to_secondary_(to_secondary),
      to_primary_(to_primary),
      options_(options) {
  // compute_threads: 0 = auto (one lane per hardware thread), 1 = inline.
  // A 1-lane pool would behave identically but still construct machinery,
  // so inline mode simply has no pool and every call site passes nullptr.
  const unsigned lanes = options_.compute_threads == 0
                             ? exec::ThreadPool::HardwareLanes()
                             : options_.compute_threads;
  if (lanes > 1) {
    compute_pool_ = std::make_unique<exec::ThreadPool>(lanes);
  }
  if (options_.event_driven_scheduler) {
    scheduler_ = std::make_unique<GroupScheduler>(
        env_, to_secondary_, options_.scheduler_heartbeat,
        [this](GroupSchedulerId id, uint64_t max_bytes) {
          if (id >= kScrubSchedBase) {
            return scrubber_ != nullptr ? scrubber_->PumpStep(max_bytes)
                                        : PumpOutcome{};
          }
          Group* group = FindGroup(static_cast<GroupId>(id));
          if (group == nullptr) return PumpOutcome{};
          return PumpGroup(group, max_bytes);
        },
        [this] { return HeartbeatScan(); });
    // Link reconnect is an arm edge: groups with backlog resume without
    // waiting for the heartbeat.
    to_secondary_->SetReadyCallback([this] { OnLinkReady(); });
  }
}

ReplicationEngine::~ReplicationEngine() {
  if (scheduler_ != nullptr) to_secondary_->SetReadyCallback({});
  for (auto& [id, group] : groups_) {
    if (group->transfer_task) group->transfer_task->Stop();
    CancelResyncRetry(group.get());
    UnprotectInflightResync(group.get());
    // The arrays (and their journals) may outlive the engine; detach the
    // arm hooks pointed at us.
    auto* pj = primary_->GetJournal(group->primary_journal);
    if (pj != nullptr) pj->SetAppendCallback({});
  }
  // Unregister interceptors so arrays outliving the engine behave.
  for (auto& [vid, ic] : primary_interceptors_) {
    primary_->UnregisterInterceptor(vid);
  }
  for (auto& [vid, ic] : secondary_guards_) {
    secondary_->UnregisterInterceptor(vid);
  }
}

StatusOr<GroupId> ReplicationEngine::CreateConsistencyGroup(
    ConsistencyGroupConfig config) {
  ZB_RETURN_IF_ERROR(config.Validate());
  ZB_ASSIGN_OR_RETURN(storage::JournalId pj,
                      primary_->CreateJournal(config.journal_capacity_bytes));
  auto sj_or = secondary_->CreateJournal(config.journal_capacity_bytes);
  if (!sj_or.ok()) {
    (void)primary_->DeleteJournal(pj);
    return sj_or.status();
  }
  const GroupId id = next_group_id_++;
  auto group = std::make_unique<Group>();
  group->id = id;
  group->config = std::move(config);
  group->primary_journal = pj;
  group->secondary_journal = *sj_or;
  group->batch_bytes_now = group->config.transfer_batch_bytes;
  Group* raw = group.get();
  if (scheduler_ != nullptr) {
    // Event-driven transfer: the group idles until a journal append (the
    // hook below), an apply-ack, a link reconnect or a resync completion
    // arms it.
    scheduler_->Register(id, raw->config.transfer_interval,
                         raw->batch_bytes_now);
    auto* pjv = primary_->GetJournal(pj);
    ZB_CHECK(pjv != nullptr);
    pjv->SetAppendCallback(
        [this, id](journal::SequenceNumber) { OnPrimaryJournalAppend(id); });
  } else {
    group->transfer_task = std::make_unique<sim::PeriodicTask>(
        env_, raw->config.transfer_interval, [this, raw] { PumpGroup(raw); });
    group->transfer_task->Start();
  }
  groups_.emplace(id, std::move(group));
  if (registry_ != nullptr) InstrumentGroupJournals(raw);
  return id;
}

Status ReplicationEngine::DeleteConsistencyGroup(GroupId id) {
  Group* group = FindGroup(id);
  if (group == nullptr) return NotFoundError("group " + std::to_string(id));
  if (!group->pairs.empty()) {
    return FailedPreconditionError("group still has pairs");
  }
  if (group->transfer_task) group->transfer_task->Stop();
  if (scheduler_ != nullptr) {
    scheduler_->Unregister(id);
    auto* pjv = primary_->GetJournal(group->primary_journal);
    if (pjv != nullptr) pjv->SetAppendCallback({});
  }
  CancelResyncRetry(group);
  (void)primary_->DeleteJournal(group->primary_journal);
  (void)secondary_->DeleteJournal(group->secondary_journal);
  // Forget the group's ordered stream on both links, or the per-channel
  // FIFO state lives forever.
  to_secondary_->ReleaseChannel(id);
  to_primary_->ReleaseChannel(id);
  groups_.erase(id);
  return OkStatus();
}

std::vector<GroupId> ReplicationEngine::ListGroups() const {
  std::vector<GroupId> out;
  for (const auto& [id, g] : groups_) out.push_back(id);
  return out;
}

StatusOr<GroupStats> ReplicationEngine::GetGroupStats(GroupId id) const {
  const Group* group = FindGroup(id);
  if (group == nullptr) return NotFoundError("group " + std::to_string(id));
  GroupStats stats;
  // The engine keeps handles to the journal objects through the arrays.
  auto* pj = const_cast<storage::StorageArray*>(primary_)->GetJournal(
      group->primary_journal);
  auto* sj = const_cast<storage::StorageArray*>(secondary_)->GetJournal(
      group->secondary_journal);
  if (pj != nullptr) {
    stats.written = pj->written();
    stats.shipped = pj->shipped();
    stats.acked = pj->acked();
    stats.journal_used_bytes = pj->used_bytes();
    stats.journal_capacity_bytes = pj->capacity_bytes();
    stats.journal_overflows = pj->overflows();
  }
  if (sj != nullptr) stats.applied = sj->applied();
  stats.suspended = group->suspended;
  stats.suspend_reason = group->suspend_reason;
  stats.ack_timeouts = group->ack_timeouts;
  stats.resync_timeouts = group->resync_timeouts;
  stats.auto_resync_attempts = group->auto_resync_attempts;
  stats.apply_lag = ComputeGroupRpo(group);
  stats.records_folded = group->records_folded;
  stats.folded_bytes_saved = group->folded_bytes_saved;
  stats.resync_extents = group->resync_extents;
  stats.resync_blocks = group->resync_blocks;
  stats.transfer_batch_bytes_now = group->batch_bytes_now;
  stats.wire_bytes_shipped = group->wire_bytes_shipped;
  stats.logical_bytes_shipped = group->logical_bytes_shipped;
  stats.compression_ratio =
      group->wire_bytes_shipped == 0
          ? 1.0
          : static_cast<double>(group->logical_bytes_shipped) /
                static_cast<double>(group->wire_bytes_shipped);
  stats.checksum_rejects = group->checksum_rejects;
  stats.compression_ratio_window =
      group->window_wire_bytes == 0
          ? 1.0
          : static_cast<double>(group->window_logical_bytes) /
                static_cast<double>(group->window_wire_bytes);
  stats.compression_window_batches = group->recent_batches.size();
  return stats;
}

SimDuration ReplicationEngine::ComputeGroupRpo(const Group* group) const {
  // Two sources of unsynchronized data, take the older:
  //  - the primary journal's backlog (its front record is the oldest
  //    write the backup site has not acknowledged), and
  //  - dirty-bitmap backlog from suspensions/divergence, whose oldest
  //    host-ack instant is tracked in oldest_unsynced_time.
  // Neither present -> everything the host ever wrote is acknowledged by
  // the backup site and the RPO is exactly zero.
  SimTime oldest = group->oldest_unsynced_time;
  auto* pj = primary_->GetJournal(group->primary_journal);
  if (pj != nullptr && pj->acked() < pj->written()) {
    const SimTime front = pj->oldest_live_ack_time();
    if (front >= 0 && (oldest < 0 || front < oldest)) oldest = front;
  }
  if (oldest < 0) return 0;
  return env_->now() - oldest;
}

StatusOr<SimDuration> ReplicationEngine::GroupRpo(GroupId id) const {
  const Group* group = FindGroup(id);
  if (group == nullptr) return NotFoundError("group " + std::to_string(id));
  return ComputeGroupRpo(group);
}

Status ReplicationEngine::SetGroupCompression(GroupId id, bool compress) {
  Group* group = FindGroup(id);
  if (group == nullptr) return NotFoundError("group " + std::to_string(id));
  group->config.compress_transfers = compress;
  return OkStatus();
}

void ReplicationEngine::AttachObservability(obs::MetricRegistry* registry,
                                            obs::TraceRing* trace) {
  registry_ = registry;
  trace_ = trace;
  if (scrubber_ != nullptr) scrubber_->AttachObservability(registry, trace);
  if (registry == nullptr) {
    ins_ = EngineInstruments{};
    if (scheduler_ != nullptr) {
      scheduler_->AttachObservability(GroupScheduler::Instruments{}, trace);
    }
    return;
  }
  ins_.batches_shipped = registry->GetCounter("replication.batches_shipped");
  ins_.records_shipped = registry->GetCounter("replication.records_shipped");
  ins_.wire_bytes_shipped =
      registry->GetCounter("replication.wire_bytes_shipped");
  ins_.logical_bytes_shipped =
      registry->GetCounter("replication.logical_bytes_shipped");
  ins_.batches_acked = registry->GetCounter("replication.batches_acked");
  ins_.batches_nacked = registry->GetCounter("replication.batches_nacked");
  ins_.apply_batches = registry->GetCounter("replication.apply_batches");
  ins_.records_applied = registry->GetCounter("replication.records_applied");
  ins_.suspends = registry->GetCounter("replication.suspends");
  ins_.resyncs = registry->GetCounter("replication.resyncs");
  ins_.failovers = registry->GetCounter("replication.failovers");
  ins_.failbacks = registry->GetCounter("replication.failbacks");
  ins_.batch_wire_bytes =
      registry->GetHistogram("replication.batch_wire_bytes");
  ins_.batch_records = registry->GetHistogram("replication.batch_records");
  if (compute_pool_ != nullptr) {
    ins_.exec_sections = registry->GetCounter("exec.sections");
    ins_.exec_inline_sections = registry->GetCounter("exec.inline_sections");
    ins_.exec_tasks = registry->GetCounter("exec.tasks");
    ins_.exec_steals = registry->GetCounter("exec.steals");
    ins_.exec_queue_depth_max = registry->GetGauge("exec.max_queue_depth");
    // Baseline the delta source so a re-attach does not double-count
    // sections that ran while detached.
    exec_synced_ = compute_pool_->stats();
  }
  if (scheduler_ != nullptr) {
    GroupScheduler::Instruments sins;
    sins.arms = registry->GetCounter("sched.arms");
    sins.wakeups = registry->GetCounter("sched.wakeups");
    sins.dispatches = registry->GetCounter("sched.dispatches");
    sins.heartbeats = registry->GetCounter("sched.heartbeats");
    sins.starved_turns = registry->GetCounter("sched.starved_turns");
    sins.armed_groups = registry->GetGauge("sched.armed_groups");
    scheduler_->AttachObservability(sins, trace);
  }
  for (auto& [id, group] : groups_) InstrumentGroupJournals(group.get());
}

Status ReplicationEngine::EnableScrubbing(const ScrubConfig& config) {
  if (scrubber_ != nullptr) {
    return FailedPreconditionError("scrubbing already enabled");
  }
  scrubber_ = std::make_unique<Scrubber>(this, config);
  scrubber_->AttachObservability(registry_, trace_);
  scrubber_->Start();
  return OkStatus();
}

void ReplicationEngine::SyncExecStats() {
  if (compute_pool_ == nullptr || ins_.exec_sections == nullptr) return;
  const exec::ThreadPool::Stats now = compute_pool_->stats();
  ins_.exec_sections->Increment(now.sections - exec_synced_.sections);
  ins_.exec_inline_sections->Increment(now.inline_sections -
                                       exec_synced_.inline_sections);
  ins_.exec_tasks->Increment(now.tasks - exec_synced_.tasks);
  ins_.exec_steals->Increment(now.steals - exec_synced_.steals);
  ins_.exec_queue_depth_max->Set(
      static_cast<int64_t>(now.max_queue_depth));
  exec_synced_ = now;
}

void ReplicationEngine::InstrumentGroupJournals(Group* group) {
  if (registry_ == nullptr) return;
  const std::string prefix = "journal.g" + std::to_string(group->id);
  auto wire = [&](journal::JournalVolume* jnl, const std::string& side) {
    if (jnl == nullptr) return;
    journal::JournalVolume::Instruments ins;
    ins.appends = registry_->GetCounter(prefix + "." + side + ".appends");
    ins.overflows = registry_->GetCounter(prefix + "." + side + ".overflows");
    ins.folded_records =
        registry_->GetCounter(prefix + "." + side + ".folded_records");
    ins.used_bytes = registry_->GetGauge(prefix + "." + side + ".used_bytes");
    jnl->AttachMetrics(ins);
  };
  wire(primary_->GetJournal(group->primary_journal), "main");
  wire(secondary_->GetJournal(group->secondary_journal), "backup");
}

StatusOr<std::string> ReplicationEngine::GetGroupName(GroupId id) const {
  const Group* group = FindGroup(id);
  if (group == nullptr) return NotFoundError("group " + std::to_string(id));
  return group->config.name;
}

StatusOr<PairId> ReplicationEngine::CreatePair(const PairConfig& config) {
  const bool synchronous = config.mode == ReplicationMode::kSynchronous;
  Group* group = nullptr;
  if (synchronous) {
    if (config.group != 0) {
      return InvalidArgumentError(
          "synchronous pairs are standalone; config.group must be 0");
    }
  } else {
    if (config.group == 0) {
      return InvalidArgumentError(
          "asynchronous pairs require a consistency group (config.group)");
    }
    group = FindGroup(config.group);
    if (group == nullptr) {
      return NotFoundError("group " + std::to_string(config.group));
    }
    if (group->failed_over) {
      return FailedPreconditionError("group has been failed over");
    }
  }
  ZB_ASSIGN_OR_RETURN(storage::Volume * pvol,
                      primary_->FindVolume(config.primary));
  ZB_ASSIGN_OR_RETURN(storage::Volume * svol,
                      secondary_->FindVolume(config.secondary));
  if (pvol->block_size() != svol->block_size() ||
      pvol->block_count() != svol->block_count()) {
    return InvalidArgumentError("pair volume geometry mismatch");
  }
  if (primary_->HasInterceptor(config.primary)) {
    return AlreadyExistsError("P-VOL already replicated");
  }
  if (secondary_->HasInterceptor(config.secondary)) {
    return AlreadyExistsError("S-VOL already in use");
  }

  const PairId id = next_pair_id_++;
  auto pair = std::make_unique<Pair>();
  pair->id_ = id;
  pair->config_ = config;
  pair->group_ = synchronous ? 0 : config.group;
  pair->state_ = PairState::kCopy;
  pair->dirty_.Reset(pvol->block_count());
  pair->reverse_dirty_.Reset(pvol->block_count());
  Pair* raw = pair.get();

  std::unique_ptr<storage::WriteInterceptor> interceptor;
  if (synchronous) {
    interceptor = std::make_unique<internal::SyncInterceptor>(this, raw);
  } else {
    interceptor = std::make_unique<internal::AdcInterceptor>(this, raw);
  }
  ZB_RETURN_IF_ERROR(
      primary_->RegisterInterceptor(config.primary, interceptor.get()));
  auto guard = std::make_unique<internal::SecondaryGuard>(raw);
  Status gs = secondary_->RegisterInterceptor(config.secondary, guard.get());
  if (!gs.ok()) {
    primary_->UnregisterInterceptor(config.primary);
    return gs;
  }
  primary_interceptors_.emplace(config.primary, std::move(interceptor));
  secondary_guards_.emplace(config.secondary, std::move(guard));

  if (group != nullptr) {
    group->pairs.push_back(id);
    group->by_primary.emplace(config.primary, id);
  }
  pairs_.emplace(id, std::move(pair));

  StartInitialCopy(raw, group);
  return id;
}

Status ReplicationEngine::DeletePair(PairId id) {
  Pair* pair = FindPair(id);
  if (pair == nullptr) return NotFoundError("pair " + std::to_string(id));
  primary_->UnregisterInterceptor(pair->config_.primary);
  secondary_->UnregisterInterceptor(pair->config_.secondary);
  primary_interceptors_.erase(pair->config_.primary);
  secondary_guards_.erase(pair->config_.secondary);
  if (pair->group_ == 0) {
    // A sync pair owns its per-pair channel on both links; drop the FIFO
    // state or every pair ever created leaks an entry.
    to_secondary_->ReleaseChannel(SyncChannel(id));
    to_primary_->ReleaseChannel(SyncChannel(id));
  }
  if (pair->group_ != 0) {
    Group* group = FindGroup(pair->group_);
    if (group != nullptr) {
      std::erase(group->pairs, id);
      group->by_primary.erase(pair->config_.primary);
    }
  }
  pairs_.erase(id);
  return OkStatus();
}

const Pair* ReplicationEngine::GetPair(PairId id) const {
  auto it = pairs_.find(id);
  return it == pairs_.end() ? nullptr : it->second.get();
}

PairId ReplicationEngine::FindPairByPrimary(
    storage::VolumeId primary) const {
  for (const auto& [id, pair] : pairs_) {
    if (pair->config_.primary == primary) return id;
  }
  return 0;
}

std::vector<PairId> ReplicationEngine::ListPairs() const {
  std::vector<PairId> out;
  for (const auto& [id, p] : pairs_) out.push_back(id);
  return out;
}

std::vector<PairId> ReplicationEngine::ListGroupPairs(GroupId id) const {
  const Group* group = FindGroup(id);
  return group == nullptr ? std::vector<PairId>{} : group->pairs;
}

void ReplicationEngine::OnAsyncHostWrite(
    Pair* pair, storage::Volume* volume, uint64_t lba, uint32_t count,
    std::string_view data, storage::WriteInterceptor::AckFn ack) {
  Group* group = FindGroup(pair->group_);
  ZB_CHECK(group != nullptr) << "async pair without group";
  if (group->failed_over) {
    // The group was taken over by the backup site; stop copying but keep
    // serving the host (main-site survivors see no error). Track the
    // divergence so failback can detect a split brain.
    pair->dirty_.SetRange(lba, count);
    NoteUnsynced(group, env_->now());
    ack(OkStatus());
    return;
  }
  if (group->suspended) {
    pair->dirty_.SetRange(lba, count);
    NoteUnsynced(group, env_->now());
    ack(OkStatus());
    return;
  }
  if (group->giveback_in_flight) {
    // Remember what the main site rewrites while the giveback batch is on
    // the wire; those blocks are newer than the batch and must win.
    pair->dirty_.SetRange(lba, count);
  }
  journal::JournalRecord record;
  record.volume_id = volume->id();
  record.lba = lba;
  record.block_count = count;
  // The single payload allocation of the ADC path: every downstream stage
  // (ship batch, secondary journal, apply) shares this buffer.
  record.payload = journal::PayloadBuffer::Copy(data);
  record.ack_time = env_->now();
  auto* jnl = primary_->GetJournal(group->primary_journal);
  ZB_CHECK(jnl != nullptr);
  auto seq_or = jnl->Append(std::move(record));
  if (!seq_or.ok()) {
    // The two ADC journal failure modes: a full journal (classic
    // overflow) or a journal-LDEV media error (kDataLoss). Either way the
    // whole group suspends (it shares the journal) and the host keeps
    // getting acks; the reason steers observability and, for media
    // errors, tells operators the resync retries are waiting on hardware.
    const bool media =
        seq_or.status().code() == StatusCode::kDataLoss;
    ZB_LOG(Warning) << "group " << group->id
                    << (media ? " journal media error; suspending: "
                              : " journal overflow; suspending: ")
                    << seq_or.status();
    if (trace_ != nullptr && !media) {
      trace_->Record(env_->now(), obs::TraceEvent::kJournalOverflow,
                     group->id, jnl->used_bytes());
    }
    SuspendOnFailure(group, media ? SuspendReason::kMediaError
                                  : SuspendReason::kJournalOverflow);
    pair->dirty_.SetRange(lba, count);
    NoteUnsynced(group, env_->now());
  }
  // The ADC ack does not wait for anything remote: this is the paper's
  // "no system slowdown" property.
  ack(OkStatus());
}

void ReplicationEngine::OnSyncHostWrite(
    Pair* pair, storage::Volume* volume, uint64_t lba, uint32_t count,
    std::string_view data, storage::WriteInterceptor::AckFn ack) {
  (void)volume;
  if (pair->state_ == PairState::kSwapped) {
    ack(OkStatus());
    return;
  }
  if (pair->state_ == PairState::kSuspended) {
    pair->dirty_.SetRange(lba, count);
    ack(OkStatus());
    return;
  }
  const uint64_t bytes =
      journal::JournalRecord::kHeaderSize +
      static_cast<uint64_t>(count) * volume->block_size();
  // One payload allocation; the nested send/persist lambdas share it by
  // refcount instead of re-copying the bytes at each hop.
  journal::PayloadBuffer payload = journal::PayloadBuffer::Copy(data);
  const PairId pair_id = pair->id_;
  ++pair->inflight_;
  Status sent = to_secondary_->SendOnChannel(
      SyncChannel(pair_id), bytes,
      [this, pair_id, lba, count, payload = std::move(payload),
              ack]() mutable {
        Pair* p = FindPair(pair_id);
        if (p == nullptr || p->state_ == PairState::kSwapped) {
          ack(OkStatus());
          return;
        }
        --p->inflight_;
        // Remote persist: model the backup array's media write cost.
        const SimDuration cost = secondary_->config().media.Cost(
            block::IoType::kWrite, count, nullptr);
        env_->Schedule(cost, [this, pair_id, lba, count,
                              payload = std::move(payload), ack]() mutable {
          Pair* p2 = FindPair(pair_id);
          if (p2 == nullptr || p2->state_ == PairState::kSwapped) {
            ack(OkStatus());
            return;
          }
          storage::Volume* svol =
              secondary_->GetVolume(p2->config_.secondary);
          if (svol != nullptr && !secondary_->failed()) {
            Status ws = svol->Write(lba, count, payload.view());
            if (!ws.ok()) {
              ZB_LOG(Warning) << "sync apply failed: " << ws;
            }
          }
          // Remote ack travels back over the reverse link.
          Status back = to_primary_->SendOnChannel(
              SyncChannel(pair_id), kAckMessageBytes,
              [ack]() mutable { ack(OkStatus()); });
          if (!back.ok()) {
            // Reverse link is down: the pair suspends; the host write is
            // acknowledged locally (fence level "never").
            p2->state_ = PairState::kSuspended;
            p2->dirty_.SetRange(lba, count);
            ack(OkStatus());
          }
        });
      });
  if (!sent.ok()) {
    --pair->inflight_;
    pair->state_ = PairState::kSuspended;
    pair->dirty_.SetRange(lba, count);
    ack(OkStatus());
  }
}

PumpOutcome ReplicationEngine::PumpGroup(Group* group, uint64_t max_bytes) {
  PumpOutcome out;
  if (group->suspended || group->failed_over) return out;
  if (primary_->failed()) return out;
  auto* jnl = primary_->GetJournal(group->primary_journal);
  if (jnl == nullptr) return out;
  if (group->config.enable_adaptive_batching) AdaptBatchSize(group, jnl);
  // The scheduler's DRR quantum tracks the (possibly just adapted) batch
  // size, so a group's fair share follows its own pacing decisions.
  out.quantum = group->batch_bytes_now;
  // An adaptive group keeps its interval tick while shipped data awaits
  // its ack: that is the only window where link backlog is observable, so
  // going fully idle would freeze the controller at its last size.
  auto adaptive_keep_alive = [&] {
    return group->config.enable_adaptive_batching &&
           jnl->acked() < jnl->written();
  };
  const uint64_t cap = std::min(group->batch_bytes_now, max_bytes);
  std::vector<const journal::JournalRecord*> views;
  if (jnl->PeekViews(jnl->shipped(), cap, &views) == 0) {
    out.keep_alive = adaptive_keep_alive();
    return out;
  }
  const journal::SequenceNumber last = views.back()->sequence;

  // Write-folding: a record whose every block is overwritten by later
  // records of this same batch ships as a header-only tombstone (the
  // sequence stays, the payload does not). Safe because the batch applies
  // atomically — every record carries atomic_through == last, so no
  // recovery point can cut between a tombstone and its newer cover.
  std::vector<bool> fold(views.size(), false);
  size_t fold_count = 0;
  if (group->config.enable_write_folding && views.size() > 1) {
    // Newest -> oldest; a block is "covered" once any newer record of the
    // same volume wrote it.
    std::unordered_map<uint64_t, std::unordered_set<uint64_t>> covered;
    for (size_t i = views.size(); i-- > 0;) {
      const journal::JournalRecord* rec = views[i];
      auto& vol_cov = covered[rec->volume_id];
      if (i + 1 < views.size() && !rec->payload.empty()) {
        bool all = true;
        for (uint32_t b = 0; b < rec->block_count; ++b) {
          if (!vol_cov.contains(rec->lba + b)) {
            all = false;
            break;
          }
        }
        if (all) {
          fold[i] = true;
          ++fold_count;
        }
      }
      for (uint32_t b = 0; b < rec->block_count; ++b) {
        vol_cov.insert(rec->lba + b);
      }
    }
  }

  // Build the batch to serialize: record headers are copied, payload bytes
  // are shared views (a tombstone carries no payload at all). The encoder
  // then folds everything into one self-contained wire frame, so the
  // in-flight data no longer pins the primary journal's buffers.
  std::vector<journal::JournalRecord> batch;
  batch.reserve(views.size());
  std::vector<std::pair<journal::SequenceNumber, uint64_t>> folds;
  folds.reserve(fold_count);
  for (size_t i = 0; i < views.size(); ++i) {
    journal::JournalRecord rec = *views[i];
    rec.atomic_through = last;
    if (fold[i]) {
      folds.emplace_back(rec.sequence, rec.payload.size());
      rec.payload = journal::PayloadBuffer();
      rec.folded = true;
    }
    batch.push_back(std::move(rec));
  }
  wire::EncodedBatch enc = wire::EncodeBatch(
      batch, group->config.compress_transfers, compute_pool_.get());
  SyncExecStats();
  const uint64_t wire_bytes = enc.frame.size();
  const GroupId group_id = group->id;
  // The link serializes the (smaller) wire frame but accounts the logical
  // bytes too, so E10-style comparisons keep a pre-compression baseline.
  Status sent = to_secondary_->SendOnChannel(
      group_id, wire_bytes, enc.logical_bytes,
      [this, group_id, frame = std::move(enc.frame)]() mutable {
        Group* g = FindGroup(group_id);
        if (g == nullptr || g->failed_over) return;
        auto* sj = secondary_->GetJournal(g->secondary_journal);
        if (sj == nullptr || secondary_->failed()) return;
        MaybeCorruptFrame(&frame);
        auto decoded = wire::DecodeBatch(frame, compute_pool_.get());
        SyncExecStats();
        if (!decoded.ok()) {
          // Integrity gate: a corrupt batch never touches the journal.
          // Treat it exactly like a dropped message — nack so the primary
          // suspends and reships via the resync machinery (the armed ack
          // deadline is the fallback if the nack itself is lost).
          ++g->checksum_rejects;
          if (ins_.batches_nacked != nullptr) {
            ins_.batches_nacked->Increment();
          }
          if (trace_ != nullptr) {
            trace_->Record(env_->now(), obs::TraceEvent::kBatchNacked,
                           group_id, g->checksum_rejects);
          }
          ZB_LOG(Warning) << "group " << group_id
                          << " rejected wire frame: " << decoded.status();
          SendWireNack(g);
          return;
        }
        for (auto& rec : *decoded) {
          Status as = sj->AppendWithSequence(std::move(rec));
          if (!as.ok()) {
            ZB_LOG(Warning) << "backup journal append failed: " << as;
            return;
          }
        }
        ApplyPending(g);
      });
  if (sent.ok()) {
    // Fold only after the send succeeded: a failed send re-peeks later
    // with possibly different batch boundaries, and a tombstone whose
    // cover is not in the same atomic batch would break the write-order
    // prefix. After success the payloads can never be needed again
    // (shipping never re-reads below the shipped watermark; a suspension
    // dirty-marks from headers alone).
    for (const auto& [seq, payload_bytes] : folds) {
      ++group->records_folded;
      group->folded_bytes_saved += payload_bytes;
      (void)jnl->FoldPayload(seq);
    }
    jnl->MarkShipped(last);
    records_shipped_ += views.size();
    group->wire_bytes_shipped += wire_bytes;
    group->logical_bytes_shipped += enc.logical_bytes;
    // Windowed compression accounting: keep the last
    // kCompressionWindowBatches batches so operators see the ratio the
    // *current* workload achieves, not a lifetime average diluted by
    // history.
    group->recent_batches.emplace_back(wire_bytes, enc.logical_bytes);
    group->window_wire_bytes += wire_bytes;
    group->window_logical_bytes += enc.logical_bytes;
    while (group->recent_batches.size() > kCompressionWindowBatches) {
      group->window_wire_bytes -= group->recent_batches.front().first;
      group->window_logical_bytes -= group->recent_batches.front().second;
      group->recent_batches.pop_front();
    }
    // The instruments are attached (or left null) as one block, so a
    // single null check covers the whole update.
    if (ins_.batches_shipped != nullptr) {
      ins_.batches_shipped->Increment();
      ins_.records_shipped->Increment(views.size());
      ins_.wire_bytes_shipped->Increment(wire_bytes);
      ins_.logical_bytes_shipped->Increment(enc.logical_bytes);
      ins_.batch_wire_bytes->Add(wire_bytes);
      ins_.batch_records->Add(views.size());
    }
    if (trace_ != nullptr) {
      trace_->Record(env_->now(), obs::TraceEvent::kBatchShipped, group->id,
                     last, wire_bytes);
    }
    // "Shipped" only means handed to the link; the batch (or its ack) can
    // still be lost to a partition. Arm a deadline so a silent loss
    // surfaces as a suspension instead of a stalled watermark.
    ArmAckDeadline(group, last);
    out.sent = true;
    out.wire_bytes = wire_bytes;
    out.backlog = jnl->shipped() < jnl->written();
    out.keep_alive = adaptive_keep_alive();
  }
  // On failure (link down) the records stay unshipped and the outcome
  // reports neither progress nor keep-alive, so the scheduler disarms the
  // group instead of hot-retrying a dead link; the heartbeat or the
  // link-ready edge re-arms it. The journal absorbs the backlog until it
  // overflows and the group suspends.
  return out;
}

void ReplicationEngine::OnPrimaryJournalAppend(GroupId id) {
  if (scheduler_ == nullptr) return;
  Group* group = FindGroup(id);
  if (group == nullptr || group->suspended || group->failed_over) return;
  scheduler_->Arm(id);
}

void ReplicationEngine::OnLinkReady() {
  if (scheduler_ == nullptr) return;
  for (const auto& [id, group] : groups_) ArmIfPending(id);
}

void ReplicationEngine::ArmIfPending(GroupId id) {
  if (scheduler_ == nullptr) return;
  Group* group = FindGroup(id);
  if (group == nullptr || group->suspended || group->failed_over) return;
  auto* jnl = primary_->GetJournal(group->primary_journal);
  if (jnl == nullptr) return;
  if (jnl->shipped() < jnl->written() ||
      (group->config.enable_adaptive_batching &&
       jnl->acked() < jnl->written())) {
    scheduler_->Arm(id);
  }
}

uint64_t ReplicationEngine::HeartbeatScan() {
  // Rescue scan: a group can lose its arm edge without losing its backlog
  // (the pump failed while the link was down and the reconnect callback
  // is not attached, or the arming append happened mid-failure). One slow
  // walk re-arms them; steady state never depends on it.
  uint64_t rescued = 0;
  for (const auto& [id, group] : groups_) {
    if (group->suspended || group->failed_over) continue;
    if (scheduler_->armed(id)) continue;
    auto* jnl = primary_->GetJournal(group->primary_journal);
    if (jnl == nullptr) continue;
    if (jnl->shipped() < jnl->written()) {
      scheduler_->Arm(id);
      ++rescued;
    }
  }
  return rescued;
}

void ReplicationEngine::AdaptBatchSize(Group* group,
                                       journal::JournalVolume* jnl) {
  const ConsistencyGroupConfig& cfg = group->config;
  // Link backlog: how long past one unloaded trip the next message on the
  // group's channel would take to arrive. Growth means the link cannot
  // absorb the current rate — halve the batch so serialization bursts
  // shrink and the ack deadline stays honest. Journal pressure: a journal
  // filling past a quarter means ingest outruns the drain — double the
  // batch to raise wire efficiency (fewer header/latency round-trips per
  // byte, and bigger batches fold better).
  const SimDuration backlog =
      to_secondary_->EstimateArrival(0, group->id) - env_->now() -
      to_secondary_->config().base_latency - to_secondary_->config().jitter;
  uint64_t next = group->batch_bytes_now;
  if (backlog > 4 * cfg.transfer_interval) {
    next /= 2;
  } else if (jnl->used_bytes() * 4 > jnl->capacity_bytes()) {
    next *= 2;
  }
  group->batch_bytes_now = std::clamp(next, cfg.transfer_batch_min_bytes,
                                      cfg.transfer_batch_max_bytes);
}

void ReplicationEngine::ArmAckDeadline(Group* group,
                                       journal::SequenceNumber expect) {
  if (group->config.ack_timeout == 0) return;
  // The batch just sent is the newest message on the group's channel, so
  // EstimateArrival bounds its arrival; the ack must be back within
  // ack_timeout of that (covering the apply and the reverse trip).
  const SimTime deadline =
      to_secondary_->EstimateArrival(0, group->id) + group->config.ack_timeout;
  const GroupId group_id = group->id;
  const uint64_t epoch = group->ship_epoch;
  env_->ScheduleAt(deadline, [this, group_id, expect, epoch] {
    Group* g = FindGroup(group_id);
    if (g == nullptr || g->failed_over || g->suspended) return;
    if (g->ship_epoch != epoch) return;  // Journal sequence space restarted.
    auto* pj = primary_->GetJournal(g->primary_journal);
    if (pj == nullptr || pj->acked() >= expect) return;
    ++g->ack_timeouts;
    ZB_LOG(Warning) << "group " << group_id << " missed ack for seq "
                    << expect << " (acked " << pj->acked()
                    << "); suspending";
    SuspendOnFailure(g, SuspendReason::kAckTimeout);
  });
}

void ReplicationEngine::ArmResyncDeadline(Group* group, uint64_t resync_id) {
  if (group->config.ack_timeout == 0) return;
  const SimTime deadline =
      to_secondary_->EstimateArrival(0, group->id) + group->config.ack_timeout;
  const GroupId group_id = group->id;
  env_->ScheduleAt(deadline, [this, group_id, resync_id] {
    Group* g = FindGroup(group_id);
    if (g == nullptr || g->failed_over || g->suspended) return;
    if (g->resync_epoch != resync_id) return;
    if (g->inflight_resync == nullptr) return;  // Delivered.
    ++g->resync_timeouts;
    ZB_LOG(Warning) << "group " << group_id
                    << " resync batch lost in flight; re-suspending";
    SuspendOnFailure(g, SuspendReason::kResyncTimeout);
  });
}

void ReplicationEngine::SuspendOnFailure(Group* group, SuspendReason reason) {
  MarkGroupSuspended(group);
  group->suspend_reason = reason;
  if (ins_.suspends != nullptr) ins_.suspends->Increment();
  if (trace_ != nullptr) {
    trace_->Record(env_->now(), obs::TraceEvent::kSuspend, group->id,
                   static_cast<uint64_t>(reason));
  }
  ScheduleResyncRetry(group, /*reset_backoff=*/true);
}

void ReplicationEngine::ScheduleResyncRetry(Group* group, bool reset_backoff) {
  if (!group->config.auto_resync || group->failed_over) return;
  if (reset_backoff) {
    group->resync_backoff = group->config.resync_backoff_initial;
  } else {
    group->resync_backoff = std::min(group->resync_backoff * 2,
                                     group->config.resync_backoff_max);
  }
  CancelResyncRetry(group);
  const GroupId group_id = group->id;
  group->resync_retry_pending = true;
  group->resync_retry_event = env_->Schedule(
      group->resync_backoff, [this, group_id] { TryAutoResync(group_id); });
}

void ReplicationEngine::CancelResyncRetry(Group* group) {
  if (group->resync_retry_pending) {
    env_->Cancel(group->resync_retry_event);
    group->resync_retry_pending = false;
  }
}

void ReplicationEngine::TryAutoResync(GroupId id) {
  Group* group = FindGroup(id);
  if (group == nullptr) return;
  group->resync_retry_pending = false;
  if (!group->suspended || group->failed_over) return;
  if (group->suspend_reason == SuspendReason::kOperator) return;
  if (group->suspend_reason == SuspendReason::kMediaError) {
    // A resync would succeed (it bypasses the journal), but the next host
    // write hits the broken journal LDEV and re-suspends immediately.
    // Stay suspended and keep backing off until the hardware heals.
    auto* jnl = primary_->GetJournal(group->primary_journal);
    if (jnl != nullptr && jnl->media_failed()) {
      ScheduleResyncRetry(group, /*reset_backoff=*/false);
      return;
    }
  }
  ++group->auto_resync_attempts;
  Status rs = ResyncGroup(id);
  if (!rs.ok()) {
    // Typically the link is still down; retry with doubled backoff.
    ScheduleResyncRetry(group, /*reset_backoff=*/false);
  }
}

void ReplicationEngine::ApplyPending(Group* group) {
  auto* sj = secondary_->GetJournal(group->secondary_journal);
  if (sj == nullptr) return;
  journal::SequenceNumber applied = sj->applied();
  bool progressed = false;
  while (applied < sj->written()) {
    const journal::JournalRecord* first = sj->Find(applied + 1);
    if (first == nullptr) break;
    // A shipped batch applies atomically: the apply watermark only moves
    // in whole batches. Write-folding depends on this — a *partial*
    // folded batch is not a write-order prefix, because a tombstone's
    // newer cover could be in the unapplied remainder.
    const journal::SequenceNumber end =
        std::max(first->atomic_through, first->sequence);
    if (end > sj->written()) break;  // Batch tail still in flight.
    // The whole batch must be applicable before any of it is: a pair
    // still in initial copy stalls the group at this batch boundary to
    // preserve the cross-volume total order.
    bool stalled = false;
    journal::JournalVolume::Cursor scan = sj->ScanFrom(applied + 1);
    for (journal::SequenceNumber s = applied + 1; s <= end; ++s) {
      const journal::JournalRecord* rec = scan.Next();
      if (rec == nullptr) {
        stalled = true;
        break;
      }
      auto pit = group->by_primary.find(rec->volume_id);
      if (pit == group->by_primary.end()) continue;
      Pair* pair = FindPair(pit->second);
      if (pair != nullptr && pair->state_ == PairState::kCopy) {
        stalled = true;
        break;
      }
    }
    if (stalled) break;
    ApplyBatch(group, applied + 1, end);
    applied = end;
    progressed = true;
  }
  if (progressed) {
    ZB_CHECK(sj->TrimThrough(applied).ok());
    SendApplyAck(group, applied);
  }
}

void ReplicationEngine::ApplyBatch(Group* group,
                                   journal::SequenceNumber first,
                                   journal::SequenceNumber last) {
  auto* sj = secondary_->GetJournal(group->secondary_journal);
  ZB_CHECK(sj != nullptr);
  if (ins_.apply_batches != nullptr) {
    ins_.apply_batches->Increment();
    ins_.records_applied->Increment(last - first + 1);
  }
  // Bucket the batch per volume. std::map keeps the volume order (and so
  // the whole apply) deterministic across runs and stdlibs.
  std::map<uint64_t, std::vector<const journal::JournalRecord*>> by_volume;
  journal::JournalVolume::Cursor scan = sj->ScanFrom(first);
  for (journal::SequenceNumber s = first; s <= last; ++s) {
    const journal::JournalRecord* rec = scan.Next();
    ZB_CHECK(rec != nullptr) << "atomic batch not contiguous in journal";
    group->last_applied_ack_time = rec->ack_time;
    ++records_applied_;
    // A tombstone's blocks are fully rewritten by a newer record of this
    // same batch; it only advances the watermark.
    if (rec->folded) continue;
    by_volume[rec->volume_id].push_back(rec);
  }
  for (auto& [volume_id, recs] : by_volume) {
    auto pit = group->by_primary.find(volume_id);
    if (pit == group->by_primary.end()) continue;
    Pair* pair = FindPair(pit->second);
    if (pair == nullptr) continue;
    storage::Volume* svol = secondary_->GetVolume(pair->config_.secondary);
    if (svol == nullptr) continue;
    bool sorted_ok = group->config.enable_sorted_apply && recs.size() > 1;
    if (sorted_ok) {
      // Scan order is sequence order, so the stable sort keeps same-LBA
      // records in write order — but any overlap (folding only removes
      // *fully* covered records, partial overlaps survive) makes
      // reordering unsafe; that volume falls back to sequence order.
      std::stable_sort(recs.begin(), recs.end(),
                       [](const journal::JournalRecord* a,
                          const journal::JournalRecord* b) {
                         return a->lba < b->lba;
                       });
      for (size_t i = 0; i + 1 < recs.size(); ++i) {
        if (recs[i]->lba + recs[i]->block_count > recs[i + 1]->lba) {
          sorted_ok = false;
          break;
        }
      }
      if (!sorted_ok) {
        std::sort(recs.begin(), recs.end(),
                  [](const journal::JournalRecord* a,
                     const journal::JournalRecord* b) {
                    return a->sequence < b->sequence;
                  });
      }
    }
    if (sorted_ok) {
      std::vector<block::BlockRun> runs;
      runs.reserve(recs.size());
      for (const journal::JournalRecord* rec : recs) {
        runs.push_back(block::BlockRun{rec->lba, rec->block_count,
                                       rec->data()});
      }
      Status ws;
      if (compute_pool_ != nullptr && runs.size() > 1) {
        // Two-phase parallel apply, valid exactly because sorted_ok means
        // the runs are non-overlapping: PrepareRun does every shared-state
        // mutation (pool accounting, COW hooks, store metadata) serially
        // in run order, then the admitted runs' payload stores are pure
        // disjoint memcpys fanned out across the pool. Final volume, pool
        // and hook state match WriteRun byte for byte.
        size_t admitted = 0;
        ws = svol->PrepareRun(runs.data(), runs.size(), &admitted);
        const size_t grain = std::max<size_t>(
            1, admitted / (size_t{compute_pool_->lanes()} * 4));
        compute_pool_->ParallelFor(
            admitted, grain, [&](size_t begin, size_t end) {
              for (size_t i = begin; i < end; ++i) svol->CommitRun(runs[i]);
            });
        SyncExecStats();
      } else {
        ws = svol->WriteRun(runs.data(), runs.size());
      }
      if (!ws.ok()) ZB_LOG(Warning) << "journal apply failed: " << ws;
    } else {
      for (const journal::JournalRecord* rec : recs) {
        Status ws = svol->Write(rec->lba, rec->block_count, rec->data());
        if (!ws.ok()) ZB_LOG(Warning) << "journal apply failed: " << ws;
      }
    }
  }
}

void ReplicationEngine::SendApplyAck(Group* group,
                                     journal::SequenceNumber seq) {
  const GroupId group_id = group->id;
  Status sent = to_primary_->SendOnChannel(
      group_id, kAckMessageBytes, [this, group_id, seq] {
        Group* g = FindGroup(group_id);
        if (g == nullptr) return;
        auto* pj = primary_->GetJournal(g->primary_journal);
        if (pj == nullptr) return;
        // Records applied remotely are safe to trim from the main journal.
        if (seq <= pj->written()) {
          (void)pj->TrimThrough(seq);
          if (ins_.batches_acked != nullptr) ins_.batches_acked->Increment();
          if (trace_ != nullptr) {
            trace_->Record(env_->now(), obs::TraceEvent::kBatchAcked,
                           group_id, seq);
          }
        }
        // The trim freed journal capacity; if records queued up behind the
        // in-flight window, this ack is their arm edge.
        ArmIfPending(group_id);
      });
  (void)sent;  // A lost ack only delays trimming.
}

void ReplicationEngine::SendWireNack(Group* group) {
  const GroupId group_id = group->id;
  Status sent = to_primary_->SendOnChannel(
      group_id, kAckMessageBytes, [this, group_id] {
        Group* g = FindGroup(group_id);
        if (g == nullptr || g->failed_over || g->suspended) return;
        ZB_LOG(Warning) << "group " << group_id
                        << " nacked a corrupt batch; suspending for resync";
        SuspendOnFailure(g, SuspendReason::kWireReject);
      });
  // If the nack is lost too, the armed ack deadline catches the stall.
  (void)sent;
}

void ReplicationEngine::MaybeCorruptFrame(std::string* frame) {
  const double p = fault_options_.wire_corrupt_probability;
  if (p <= 0.0 || frame->empty()) return;
  if (!wire_corrupt_rng_.Bernoulli(p)) return;
  const size_t byte = wire_corrupt_rng_.Uniform(frame->size());
  (*frame)[byte] ^= static_cast<char>(1u << wire_corrupt_rng_.Uniform(8));
  ++wire_frames_corrupted_;
}

void ReplicationEngine::StartInitialCopy(Pair* pair, Group* group) {
  storage::Volume* pvol = primary_->GetVolume(pair->config_.primary);
  ZB_CHECK(pvol != nullptr);
  const uint64_t bytes =
      pvol->store().allocated_blocks() * pvol->block_size();
  if (bytes == 0) {
    pair->state_ = PairState::kPaired;
    if (group != nullptr) ApplyPending(group);
    return;
  }
  // Freeze the P-VOL image at this instant; updates from now on are
  // journaled (async) or shipped inline (sync) and applied on top.
  auto frozen = std::make_shared<block::MemVolume>(pvol->block_count(),
                                                   pvol->block_size());
  ZB_CHECK(frozen->CloneFrom(pvol->store()).ok());
  const PairId pair_id = pair->id_;
  const GroupId group_id = group == nullptr ? 0 : group->id;
  // Use the same channel as the pair's subsequent traffic so the base
  // image is guaranteed to arrive before any update shipped after it.
  const uint64_t channel =
      group == nullptr ? SyncChannel(pair_id) : group_id;
  Status sent = to_secondary_->SendOnChannel(channel, bytes,
                                             [this, pair_id, group_id,
                                              frozen] {
    Pair* p = FindPair(pair_id);
    if (p == nullptr || p->state_ == PairState::kSwapped) return;
    if (group_id != 0) {
      // A base image arriving after the group failed over (delayed across
      // a partition) must not clobber the promoted, live S-VOL.
      Group* g = FindGroup(group_id);
      if (g == nullptr || g->failed_over) return;
    }
    storage::Volume* svol = secondary_->GetVolume(p->config_.secondary);
    if (svol == nullptr || secondary_->failed()) {
      p->state_ = PairState::kSuspended;
      return;
    }
    ZB_CHECK(svol->store().CloneFrom(*frozen).ok());
    if (p->state_ == PairState::kCopy) p->state_ = PairState::kPaired;
    if (group_id != 0) {
      Group* g = FindGroup(group_id);
      if (g != nullptr) ApplyPending(g);
    }
  });
  if (!sent.ok()) {
    // The link is down: the pair starts suspended with every allocated
    // block dirty; a later resync performs the initial copy.
    pair->state_ = PairState::kSuspended;
    for (uint64_t lba = 0; lba < pvol->block_count(); ++lba) {
      if (pvol->store().IsAllocated(lba)) pair->dirty_.Set(lba);
    }
    if (group != nullptr) NoteUnsynced(group, env_->now());
  }
}

void ReplicationEngine::ProtectInflightResync(Group* group) {
  auto extents = group->inflight_resync;
  if (extents == nullptr || extents->empty()) return;
  // Extents are ordered by pair (capture iterates group->pairs) and by
  // ascending LBA within a pair, so each pair owns one contiguous,
  // sorted subrange — which the hook binary-searches per write.
  size_t i = 0;
  while (i < extents->size()) {
    const PairId pid = (*extents)[i].pair;
    size_t j = i;
    bool any_view = false;
    while (j < extents->size() && (*extents)[j].pair == pid) {
      if ((*extents)[j].view.data() != nullptr) any_view = true;
      ++j;
    }
    Pair* pair = FindPair(pid);
    storage::Volume* pvol =
        pair == nullptr ? nullptr : primary_->GetVolume(pair->config_.primary);
    if (any_view && pvol != nullptr) {
      const size_t lo = i;
      const size_t hi = j;
      // The lambda keeps the extents alive on its own; it never touches
      // engine state, so a hook outliving the engine stays safe.
      const uint64_t token = pvol->AddPreOverwriteHook(
          [extents, lo, hi](block::Lba lba, std::string_view /*old*/) {
            auto begin = extents->begin() + static_cast<ptrdiff_t>(lo);
            auto end = extents->begin() + static_cast<ptrdiff_t>(hi);
            auto it = std::upper_bound(
                begin, end, lba,
                [](block::Lba l, const ResyncExtent& e) { return l < e.lba; });
            if (it == begin) return;
            --it;
            if (it->view.data() == nullptr) return;  // Already owned.
            if (lba >= it->lba + it->count) return;  // In a gap.
            // Hooks run before the store write lands, so the view still
            // shows the captured image: materialize it now.
            it->data.assign(it->view.data(), it->view.size());
            it->view = {};
          });
      group->resync_cow_hooks.emplace_back(pair->config_.primary, token);
    }
    i = j;
  }
}

void ReplicationEngine::UnprotectInflightResync(Group* group) {
  for (const auto& [vid, token] : group->resync_cow_hooks) {
    storage::Volume* vol = primary_->GetVolume(vid);
    if (vol != nullptr) vol->RemovePreOverwriteHook(token);
  }
  group->resync_cow_hooks.clear();
}

void ReplicationEngine::MarkGroupSuspended(Group* group) {
  group->suspended = true;
  // A suspended group ships nothing; it re-arms on resync completion.
  if (scheduler_ != nullptr) scheduler_->Disarm(group->id);
  // A suspension supersedes any resync in flight: its batch can no longer
  // be trusted to land, so put the captured blocks back into the dirty
  // bitmaps and invalidate its delivery/deadline by bumping the epoch.
  ++group->resync_epoch;
  if (group->inflight_resync != nullptr) {
    UnprotectInflightResync(group);
    for (const ResyncExtent& ext : *group->inflight_resync) {
      Pair* pair = FindPair(ext.pair);
      if (pair != nullptr) pair->dirty_.SetRange(ext.lba, ext.count);
    }
    group->inflight_resync.reset();
  }
  auto* jnl = primary_->GetJournal(group->primary_journal);
  // Unacknowledged journal records become dirty blocks and are dropped;
  // the sequence watermarks are preserved so post-resync shipping stays
  // dense. Dirty-marking must start at the *acked* watermark, not the
  // shipped one: "shipped" only means handed to the link, and a partition
  // drops in-flight traffic, losing everything in (acked, shipped].
  if (jnl != nullptr) {
    // The backlog's front record is the oldest write the backup never
    // acknowledged; its host-ack instant dates the dirty blocks it is
    // about to become, keeping the RPO honest across the suspension.
    const SimTime front_time = jnl->oldest_live_ack_time();
    if (jnl->acked() < jnl->written() && front_time >= 0) {
      NoteUnsynced(group, front_time);
    }
    std::vector<const journal::JournalRecord*> rest;
    jnl->PeekViews(jnl->acked(), UINT64_MAX, &rest);
    for (const journal::JournalRecord* rec : rest) {
      auto pit = group->by_primary.find(rec->volume_id);
      if (pit == group->by_primary.end()) continue;
      Pair* pair = FindPair(pit->second);
      if (pair == nullptr) continue;
      // Headers suffice here: even a folded (tombstoned) record still
      // names the blocks that must be re-shipped.
      pair->dirty_.SetRange(rec->lba, rec->block_count);
    }
    (void)jnl->TrimThrough(jnl->written());
    jnl->MarkShipped(jnl->written());
  }
  for (PairId pid : group->pairs) {
    Pair* pair = FindPair(pid);
    if (pair == nullptr || pair->state_ == PairState::kSwapped) continue;
    if (pair->state_ == PairState::kCopy) {
      // The base image may still be in flight (and dropped): treat every
      // allocated P-VOL block as dirty so the resync re-creates it.
      storage::Volume* pvol = primary_->GetVolume(pair->config_.primary);
      if (pvol != nullptr) {
        for (uint64_t lba = 0; lba < pvol->block_count(); ++lba) {
          if (pvol->store().IsAllocated(lba)) pair->dirty_.Set(lba);
        }
      }
    }
    pair->state_ = PairState::kSuspended;
  }
  if (group->oldest_unsynced_time < 0) {
    // Dirty blocks of unknown age (restored resync extents, initial-copy
    // backlog): date them now — an under-estimate, but it keeps the RPO
    // nonzero while data is provably unsynchronized.
    for (PairId pid : group->pairs) {
      Pair* pair = FindPair(pid);
      if (pair != nullptr && !pair->dirty_.empty()) {
        NoteUnsynced(group, env_->now());
        break;
      }
    }
  }
}

Status ReplicationEngine::SuspendGroup(GroupId id) {
  Group* group = FindGroup(id);
  if (group == nullptr) return NotFoundError("group " + std::to_string(id));
  if (group->failed_over) {
    return FailedPreconditionError("group has been failed over");
  }
  if (group->suspended) {
    // Upgrade a failure suspension to an operator one: the operator takes
    // over and auto-resync must stand down.
    group->suspend_reason = SuspendReason::kOperator;
    CancelResyncRetry(group);
    return OkStatus();
  }
  MarkGroupSuspended(group);
  group->suspend_reason = SuspendReason::kOperator;
  if (ins_.suspends != nullptr) ins_.suspends->Increment();
  if (trace_ != nullptr) {
    trace_->Record(env_->now(), obs::TraceEvent::kSuspend, group->id,
                   static_cast<uint64_t>(SuspendReason::kOperator));
  }
  CancelResyncRetry(group);
  return OkStatus();
}

Status ReplicationEngine::SuspendSyncPair(PairId id) {
  Pair* pair = FindPair(id);
  if (pair == nullptr) return NotFoundError("pair " + std::to_string(id));
  if (pair->config_.mode != ReplicationMode::kSynchronous) {
    return InvalidArgumentError("pair is not synchronous");
  }
  if (pair->state_ == PairState::kSwapped) {
    return FailedPreconditionError("pair has been swapped");
  }
  pair->state_ = PairState::kSuspended;
  return OkStatus();
}

Status ReplicationEngine::ResyncGroup(GroupId id) {
  Group* group = FindGroup(id);
  if (group == nullptr) return NotFoundError("group " + std::to_string(id));
  if (group->failed_over) {
    return FailedPreconditionError("group has been failed over");
  }
  if (!group->suspended) return OkStatus();
  if (!to_secondary_->connected()) {
    return UnavailableError("replication link is down");
  }
  CancelResyncRetry(group);

  // Capture the dirty contents now; journaling resumes immediately, and
  // the FIFO link guarantees the resync batch applies first. The bitmaps
  // are NOT cleared here: the clear is deferred to delivery, so a failed
  // send — or a batch lost in flight — loses no part of the delta. The
  // bitmap walk is in ascending LBA order, so the batch is canonical
  // (deterministic across runs) and adjacent dirty blocks merge into one
  // multi-block extent each.
  auto extents = std::make_shared<std::vector<ResyncExtent>>();
  // Per-extent source store for copy-fallback captures (null = zero-copy
  // view); indexed alongside *extents, consumed by the parallel fill.
  std::vector<const block::MemVolume*> read_src;
  uint64_t bytes = 0;
  uint64_t total_blocks = 0;
  const uint64_t max_len = group->config.enable_extent_resync
                               ? group->config.resync_max_extent_blocks
                               : 1;
  for (PairId pid : group->pairs) {
    Pair* pair = FindPair(pid);
    if (pair == nullptr || pair->state_ == PairState::kSwapped) continue;
    storage::Volume* pvol = primary_->GetVolume(pair->config_.primary);
    if (pvol == nullptr) continue;
    pair->dirty_.ForEachRun(
        [&](DirtyBitmap::Run run) {
          ResyncExtent ext;
          ext.pair = pid;
          ext.lba = run.lba;
          ext.count = static_cast<uint32_t>(run.count);
          // Zero-copy capture: borrow a view of the slab when the run
          // sits inside one chunk; the pre-overwrite hooks registered on
          // send materialize the extent if the host writes into it while
          // the batch is on the wire. Runs crossing a chunk size their
          // buffer here and fill it in the parallel pass below.
          ext.view = pvol->store().TryReadView(run.lba, ext.count);
          const block::MemVolume* src = nullptr;
          if (ext.view.data() == nullptr) {
            ext.data.resize(static_cast<size_t>(ext.count) *
                            pvol->store().block_size());
            src = &pvol->store();
          }
          bytes += ext.payload().size() + journal::JournalRecord::kHeaderSize;
          total_blocks += run.count;
          extents->push_back(std::move(ext));
          read_src.push_back(src);
        },
        max_len);
  }
  // Fill the copy-fallback buffers and compute every extent's capture
  // checksum off the serial path: each extent is a disjoint output slot
  // (its own data buffer and crc field), ReadInto is const and
  // counter-free, so the captured bytes and checksums are identical at
  // any lane count.
  if (!extents->empty()) {
    auto capture = [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        ResyncExtent& ext = (*extents)[i];
        if (read_src[i] != nullptr) {
          read_src[i]->ReadInto(ext.lba, ext.count, ext.data.data());
        }
        const std::string_view payload = ext.payload();
        ext.crc = Crc32c(payload.data(), payload.size());
      }
    };
    if (compute_pool_ != nullptr) {
      const size_t grain = std::max<size_t>(
          1, extents->size() / (size_t{compute_pool_->lanes()} * 4));
      compute_pool_->ParallelFor(extents->size(), grain, capture);
      SyncExecStats();
    } else {
      capture(0, extents->size());
    }
  }

  auto* pj = primary_->GetJournal(group->primary_journal);
  const journal::SequenceNumber resume_seq =
      pj == nullptr ? 0 : pj->written();
  const uint64_t resync_id = ++group->resync_epoch;

  const GroupId group_id = id;
  Status sent = to_secondary_->SendOnChannel(
      group_id, std::max<uint64_t>(bytes, kAckMessageBytes),
      [this, group_id, extents, resume_seq, resync_id] {
        Group* g = FindGroup(group_id);
        if (g == nullptr || g->failed_over) return;
        // A newer suspension or resync superseded this batch; its blocks
        // were already put back into the dirty bitmaps.
        if (g->resync_epoch != resync_id) return;
        UnprotectInflightResync(g);
        g->inflight_resync.reset();
        // Re-checksum every payload against its capture CRC before any of
        // it lands, fanned out across the pool (read-only over disjoint
        // extents). The writes below stay serial, in canonical extent
        // order.
        std::vector<uint8_t> crc_ok(extents->size(), 1);
        auto verify = [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            const std::string_view payload = (*extents)[i].payload();
            crc_ok[i] = Crc32c(payload.data(), payload.size()) ==
                        (*extents)[i].crc;
          }
        };
        if (compute_pool_ != nullptr && !extents->empty()) {
          const size_t grain = std::max<size_t>(
              1, extents->size() / (size_t{compute_pool_->lanes()} * 4));
          compute_pool_->ParallelFor(extents->size(), grain, verify);
          SyncExecStats();
        } else {
          verify(0, extents->size());
        }
        for (size_t i = 0; i < extents->size(); ++i) {
          const auto& ext = (*extents)[i];
          Pair* pair = FindPair(ext.pair);
          if (pair == nullptr) continue;
          if (!crc_ok[i]) {
            // Corrupted between capture and delivery: leave the blocks
            // dirty so the next resync round reships them.
            ZB_LOG(Warning) << "resync extent checksum mismatch, lba="
                            << ext.lba << " count=" << ext.count;
            continue;
          }
          // Only the captured extents are cleared; blocks dirtied after
          // the capture stay dirty for the next round.
          pair->dirty_.ClearRange(ext.lba, ext.count);
          storage::Volume* svol =
              secondary_->GetVolume(pair->config_.secondary);
          if (svol == nullptr) continue;
          Status ws = svol->Write(ext.lba, ext.count, ext.payload());
          if (!ws.ok()) ZB_LOG(Warning) << "resync apply failed: " << ws;
        }
        auto* sj = secondary_->GetJournal(g->secondary_journal);
        if (sj != nullptr && sj->written() < resume_seq) {
          Status ff = sj->FastForward(resume_seq);
          if (!ff.ok()) ZB_LOG(Warning) << "resync fast-forward: " << ff;
        }
        for (PairId pid : g->pairs) {
          Pair* pair = FindPair(pid);
          if (pair != nullptr && pair->state_ == PairState::kSuspended) {
            pair->state_ = PairState::kPaired;
          }
        }
        // The bitmap backlog is drained: the primary journal's front
        // record takes over as the group's oldest-unsynced bound. Any
        // residual dirty blocks (captured after this batch) keep the old
        // bound, which can only over-estimate the RPO.
        bool residue = false;
        for (PairId pid : g->pairs) {
          Pair* pair = FindPair(pid);
          if (pair != nullptr && !pair->dirty_.empty()) {
            residue = true;
            break;
          }
        }
        if (!residue) g->oldest_unsynced_time = -1;
        if (trace_ != nullptr) {
          trace_->Record(env_->now(), obs::TraceEvent::kResyncDone, group_id,
                         resync_id);
        }
        g->suspend_reason = SuspendReason::kNone;
        ApplyPending(g);
        // Records journaled while the resync batch was in flight are an
        // existing backlog with no future arm edge; resume shipping now.
        ArmIfPending(group_id);
      });
  if (!sent.ok()) {
    // Dirty bitmaps are untouched; the group simply stays suspended.
    return sent;
  }
  group->suspended = false;
  group->inflight_resync = extents;
  ProtectInflightResync(group);
  group->resync_extents += extents->size();
  group->resync_blocks += total_blocks;
  if (ins_.resyncs != nullptr) ins_.resyncs->Increment();
  if (trace_ != nullptr) {
    trace_->Record(env_->now(), obs::TraceEvent::kResyncStart, id,
                   extents->size(), total_blocks);
  }
  // The resync batch itself can be dropped by a partition; watch for it.
  ArmResyncDeadline(group, resync_id);
  return OkStatus();
}

Status ReplicationEngine::ResyncSyncPair(PairId id) {
  Pair* pair = FindPair(id);
  if (pair == nullptr) return NotFoundError("pair " + std::to_string(id));
  if (pair->config_.mode != ReplicationMode::kSynchronous) {
    return InvalidArgumentError("pair is not synchronous");
  }
  if (pair->state_ != PairState::kSuspended) {
    return FailedPreconditionError("pair is not suspended");
  }
  storage::Volume* pvol = primary_->GetVolume(pair->config_.primary);
  if (pvol == nullptr) return NotFoundError("P-VOL vanished");

  // Deferred clear, as in ResyncGroup: the dirty bitmap survives a failed
  // or lost send; delivery clears exactly the captured extents.
  auto extents = std::make_shared<std::vector<ResyncExtent>>();
  uint64_t bytes = 0;
  pair->dirty_.ForEachRun(
      [&](DirtyBitmap::Run run) {
        ResyncExtent ext;
        ext.pair = id;
        ext.lba = run.lba;
        ext.count = static_cast<uint32_t>(run.count);
        ZB_CHECK(pvol->store().Read(run.lba, ext.count, &ext.data).ok());
        bytes += ext.data.size() + journal::JournalRecord::kHeaderSize;
        extents->push_back(std::move(ext));
      },
      kSyncResyncMaxExtentBlocks);
  const PairId pair_id = id;
  Status sent = to_secondary_->SendOnChannel(
      SyncChannel(pair_id), std::max<uint64_t>(bytes, kAckMessageBytes),
      [this, pair_id, extents] {
        Pair* p = FindPair(pair_id);
        if (p == nullptr || p->state_ == PairState::kSwapped) return;
        storage::Volume* svol = secondary_->GetVolume(p->config_.secondary);
        for (const auto& ext : *extents) {
          p->dirty_.ClearRange(ext.lba, ext.count);
          if (svol == nullptr) continue;
          Status ws = svol->Write(ext.lba, ext.count, ext.data);
          if (!ws.ok()) ZB_LOG(Warning) << "resync apply failed: " << ws;
        }
        // Writes intercepted while the batch was in flight stay dirty; the
        // pair only returns to kPaired once the delta is fully drained
        // (previously it went kPaired immediately and silently diverged).
        if (p->state_ == PairState::kSuspended && p->dirty_.empty()) {
          p->state_ = PairState::kPaired;
        }
      });
  if (!sent.ok()) return sent;
  return OkStatus();
}

StatusOr<FailoverReport> ReplicationEngine::FailoverGroup(GroupId id) {
  Group* group = FindGroup(id);
  if (group == nullptr) return NotFoundError("group " + std::to_string(id));
  if (group->failed_over) {
    return FailedPreconditionError("group already failed over");
  }
  group->failed_over = true;
  if (group->transfer_task) group->transfer_task->Stop();
  if (scheduler_ != nullptr) scheduler_->Disarm(id);
  // Recovery machinery stands down: no auto-resync on a failed-over group,
  // and a resync batch still in flight is moot (its target volumes are
  // about to be promoted).
  CancelResyncRetry(group);
  ++group->resync_epoch;
  UnprotectInflightResync(group);
  group->inflight_resync.reset();
  group->suspend_reason = SuspendReason::kNone;

  // Apply everything that reached the backup site (Section I: "DR systems
  // recover the backup site under the condition of data consistency").
  ApplyPending(group);

  FailoverReport report;
  auto* sj = secondary_->GetJournal(group->secondary_journal);
  report.recovery_point = sj == nullptr ? 0 : sj->applied();
  report.recovery_point_time = group->last_applied_ack_time;
  auto* pj = primary_->GetJournal(group->primary_journal);
  if (pj != nullptr && pj->written() >= report.recovery_point) {
    report.lost_records = pj->written() - report.recovery_point;
  }
  // Divergence tracking restarts from the takeover instant.
  group->oldest_unsynced_time = -1;
  if (ins_.failovers != nullptr) ins_.failovers->Increment();
  if (trace_ != nullptr) {
    trace_->Record(env_->now(), obs::TraceEvent::kFailover, id,
                   report.recovery_point, report.lost_records);
  }

  // Promote the S-VOLs: swap the write guards for dirty trackers so the
  // business can run on the backup site while failback stays possible.
  for (PairId pid : group->pairs) {
    Pair* pair = FindPair(pid);
    if (pair == nullptr) continue;
    secondary_->UnregisterInterceptor(pair->config_.secondary);
    secondary_guards_.erase(pair->config_.secondary);
    auto tracker = std::make_unique<internal::ReverseDirtyTracker>(pair);
    if (secondary_->RegisterInterceptor(pair->config_.secondary,
                                        tracker.get())
            .ok()) {
      secondary_guards_.emplace(pair->config_.secondary,
                                std::move(tracker));
    }
    pair->state_ = PairState::kSwapped;
    pair->dirty_.ClearAll();
    pair->reverse_dirty_.ClearAll();
  }
  return report;
}

StatusOr<FailbackReport> ReplicationEngine::FailbackGroup(GroupId id,
                                                          bool force) {
  Group* group = FindGroup(id);
  if (group == nullptr) return NotFoundError("group " + std::to_string(id));
  if (!group->failed_over) {
    return FailedPreconditionError("group has not been failed over");
  }
  if (primary_->failed()) {
    return FailedPreconditionError("main array is still failed");
  }
  if (!to_primary_->connected() || !to_secondary_->connected()) {
    return UnavailableError("inter-site links are down");
  }

  // Split-brain check: the main volumes must not have diverged.
  FailbackReport report;
  for (PairId pid : group->pairs) {
    Pair* pair = FindPair(pid);
    if (pair == nullptr) continue;
    if (!pair->dirty_.empty()) {
      if (!force) {
        return FailedPreconditionError(
            "pair " + pair->config_.name + " diverged on the main site (" +
            std::to_string(pair->dirty_.count()) +
            " blocks); quiesce and retry with force to let the backup "
            "side win");
      }
      report.conflicts_overwritten += pair->dirty_.count();
    }
  }

  // Capture the giveback delta NOW: all blocks the backup business wrote,
  // plus (under force) the main-side diverged blocks, at their current
  // backup-site content, merged into sorted extents.
  auto extents = std::make_shared<std::vector<ResyncExtent>>();
  std::vector<const block::MemVolume*> read_src;
  uint64_t bytes = 0;
  for (PairId pid : group->pairs) {
    Pair* pair = FindPair(pid);
    if (pair == nullptr) continue;
    storage::Volume* svol = secondary_->GetVolume(pair->config_.secondary);
    if (svol == nullptr) continue;
    DirtyBitmap to_ship = pair->reverse_dirty_;
    if (force) to_ship.UnionWith(pair->dirty_);
    to_ship.ForEachRun(
        [&](DirtyBitmap::Run run) {
          ResyncExtent ext;
          ext.pair = pid;
          ext.lba = run.lba;
          ext.count = static_cast<uint32_t>(run.count);
          ext.data.resize(static_cast<size_t>(ext.count) *
                          svol->store().block_size());
          bytes += ext.data.size() + journal::JournalRecord::kHeaderSize;
          report.blocks_shipped += run.count;
          extents->push_back(std::move(ext));
          read_src.push_back(&svol->store());
        },
        kSyncResyncMaxExtentBlocks);
  }
  // Fill the captured buffers in parallel before anything below mutates
  // the S-VOLs: ReadInto is const and each extent is a disjoint slot, so
  // the giveback image is identical at any lane count.
  if (!extents->empty()) {
    auto fill = [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        ResyncExtent& ext = (*extents)[i];
        read_src[i]->ReadInto(ext.lba, ext.count, ext.data.data());
      }
    };
    if (compute_pool_ != nullptr) {
      const size_t grain = std::max<size_t>(
          1, extents->size() / (size_t{compute_pool_->lanes()} * 4));
      compute_pool_->ParallelFor(extents->size(), grain, fill);
      SyncExecStats();
    } else {
      fill(0, extents->size());
    }
  }

  // Resume the forward direction immediately: re-protect the S-VOLs,
  // clear the dirty state, reset both journals (a fresh sequence space)
  // and restart the transfer engine. Host writes to the P-VOLs from this
  // instant are journaled again; the giveback batch skips any block the
  // main site rewrites in the meantime, so newer data always wins.
  for (PairId pid : group->pairs) {
    Pair* pair = FindPair(pid);
    if (pair == nullptr) continue;
    secondary_->UnregisterInterceptor(pair->config_.secondary);
    secondary_guards_.erase(pair->config_.secondary);
    auto guard = std::make_unique<internal::SecondaryGuard>(pair);
    if (secondary_->RegisterInterceptor(pair->config_.secondary,
                                        guard.get())
            .ok()) {
      secondary_guards_.emplace(pair->config_.secondary, std::move(guard));
    }
    pair->state_ = PairState::kPaired;
    pair->dirty_.ClearAll();
    pair->reverse_dirty_.ClearAll();
  }
  auto* pj = primary_->GetJournal(group->primary_journal);
  auto* sj = secondary_->GetJournal(group->secondary_journal);
  if (pj != nullptr) pj->Reset();
  if (sj != nullptr) sj->Reset();
  group->failed_over = false;
  group->suspended = false;
  group->suspend_reason = SuspendReason::kNone;
  // The journals restart their sequence space: ack deadlines armed against
  // the old space would misread the fresh acked watermark as a loss.
  ++group->ship_epoch;
  group->giveback_in_flight = true;
  group->last_applied_ack_time = env_->now();
  // Giveback writes are dirty-marked AND journaled forward, so the dirty
  // bits do not represent unsynced data; the journal bound covers them.
  group->oldest_unsynced_time = -1;
  // Scheduler mode needs no explicit restart: the journals were Reset in
  // place, so the append hook survives and the next P-VOL write (or the
  // giveback's forward-journaled blocks) arms the group.
  if (group->transfer_task) group->transfer_task->Start();

  const GroupId group_id = id;
  Status sent = to_primary_->SendOnChannel(
      group_id, std::max<uint64_t>(bytes, kAckMessageBytes),
      [this, group_id, extents] {
        Group* g = FindGroup(group_id);
        if (g == nullptr) return;
        for (const auto& ext : *extents) {
          Pair* pair = FindPair(ext.pair);
          if (pair == nullptr) continue;
          storage::Volume* pvol = primary_->GetVolume(pair->config_.primary);
          if (pvol == nullptr) continue;
          const uint32_t bs = pvol->block_size();
          // A block the main site rewrote after failback started is newer
          // than the giveback copy: skip it (it is journaled forward).
          // Surviving blocks are applied as contiguous sub-runs.
          uint32_t i = 0;
          while (i < ext.count) {
            if (pair->dirty_.Test(ext.lba + i)) {
              ++i;
              continue;
            }
            uint32_t j = i + 1;
            while (j < ext.count && !pair->dirty_.Test(ext.lba + j)) ++j;
            const std::string_view slice(
                ext.data.data() + static_cast<size_t>(i) * bs,
                static_cast<size_t>(j - i) * bs);
            Status ws = pvol->Write(ext.lba + i, j - i, slice);
            if (!ws.ok()) ZB_LOG(Warning) << "failback apply failed: " << ws;
            i = j;
          }
        }
        g->giveback_in_flight = false;
        for (PairId pid : g->pairs) {
          Pair* pair = FindPair(pid);
          if (pair != nullptr) pair->dirty_.ClearAll();
        }
      });
  if (!sent.ok()) {
    group->giveback_in_flight = false;
    return sent;
  }
  if (ins_.failbacks != nullptr) ins_.failbacks->Increment();
  if (trace_ != nullptr) {
    trace_->Record(env_->now(), obs::TraceEvent::kFailback, id,
                   report.blocks_shipped, report.conflicts_overwritten);
  }
  return report;
}

bool ReplicationEngine::GroupInitialCopyDone(GroupId id) const {
  const Group* group = FindGroup(id);
  if (group == nullptr) return false;
  for (PairId pid : group->pairs) {
    auto it = pairs_.find(pid);
    if (it == pairs_.end()) continue;
    if (it->second->state_ == PairState::kCopy) return false;
  }
  return true;
}

journal::JournalVolume* ReplicationEngine::primary_journal(GroupId id) {
  Group* group = FindGroup(id);
  return group == nullptr ? nullptr
                          : primary_->GetJournal(group->primary_journal);
}

journal::JournalVolume* ReplicationEngine::secondary_journal(GroupId id) {
  Group* group = FindGroup(id);
  return group == nullptr ? nullptr
                          : secondary_->GetJournal(group->secondary_journal);
}

ReplicationEngine::Group* ReplicationEngine::FindGroup(GroupId id) {
  auto it = groups_.find(id);
  return it == groups_.end() ? nullptr : it->second.get();
}

const ReplicationEngine::Group* ReplicationEngine::FindGroup(
    GroupId id) const {
  auto it = groups_.find(id);
  return it == groups_.end() ? nullptr : it->second.get();
}

Pair* ReplicationEngine::FindPair(PairId id) {
  auto it = pairs_.find(id);
  return it == pairs_.end() ? nullptr : it->second.get();
}

}  // namespace zerobak::replication
