#include "replication/wire.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <utility>

#include "common/coding.h"
#include "common/compress.h"
#include "common/crc32c.h"
#include "exec/thread_pool.h"

namespace zerobak::replication::wire {
namespace {

constexpr uint32_t kMagic = 0x3157425au;  // "ZBW1", little-endian.
constexpr uint8_t kFlagCompressed = 0x01;
constexpr uint8_t kFlagChunked = 0x02;
constexpr uint8_t kKnownFlags = kFlagCompressed | kFlagChunked;
constexpr uint8_t kFlagFolded = 0x01;  // Per-record flags, bit0.
// 5 fixed header bytes before the CRC, 8 after it.
constexpr size_t kFrameHeaderSize = 4 + 1 + 4 + 4;
// A frame claiming more records than could fit a real batch is corrupt;
// reject before reserving memory for it.
constexpr uint64_t kMaxRecords = 1u << 22;
// body_len is a u32, so a valid chunked body can never need more chunks
// than this; a count above it is corrupt.
constexpr uint64_t kMaxChunks = (uint64_t{1} << 32) / kChunkBytes + 1;

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

// Runs body(begin, end) over [0, n) — fanned out across `pool` when one
// is attached, a plain inline loop otherwise. Either way the caller
// resumes only after every index ran.
void ForEachChunk(exec::ThreadPool* pool, size_t n,
                  const std::function<void(size_t, size_t)>& body) {
  if (pool != nullptr) {
    pool->ParallelFor(n, 1, body);
  } else if (n > 0) {
    body(0, n);
  }
}

}  // namespace

uint32_t ParallelCrc32c(std::string_view data, exec::ThreadPool* pool) {
  const size_t chunks = (data.size() + kChunkBytes - 1) / kChunkBytes;
  if (pool == nullptr || chunks <= 1) {
    return Crc32c(data.data(), data.size());
  }
  std::vector<uint32_t> partial(chunks, 0);
  pool->ParallelFor(chunks, 1, [&](size_t begin, size_t end) {
    for (size_t c = begin; c < end; ++c) {
      const size_t off = c * kChunkBytes;
      const size_t len = std::min(kChunkBytes, data.size() - off);
      partial[c] = Crc32c(data.data() + off, len);
    }
  });
  // Fold in canonical chunk order — bit-identical to one sequential pass
  // over the whole buffer. Every join but the last advances past exactly
  // kChunkBytes, so the precompiled operator (built once per process)
  // makes each of those joins ~32 xors; only a ragged tail pays the
  // general O(log len2) combine.
  static const Crc32cCombineOp chunk_op(kChunkBytes);
  uint32_t crc = partial[0];
  for (size_t c = 1; c < chunks; ++c) {
    const size_t off = c * kChunkBytes;
    const size_t len = std::min(kChunkBytes, data.size() - off);
    crc = len == kChunkBytes ? chunk_op.Combine(crc, partial[c])
                             : Crc32cCombine(crc, partial[c], len);
  }
  return crc;
}

EncodedBatch EncodeBatch(const std::vector<journal::JournalRecord>& records,
                         bool compress, exec::ThreadPool* pool) {
  EncodedBatch out;

  std::string body;
  PutVarint64(&body, records.size());
  uint64_t payload_total = 0;
  journal::SequenceNumber prev_seq = 0;
  SimTime prev_ack = 0;
  for (const journal::JournalRecord& rec : records) {
    out.logical_bytes += rec.EncodedSize();
    payload_total += rec.payload.size();
    PutVarint64(&body, rec.sequence - prev_seq);
    PutVarint64(&body, rec.volume_id);
    PutVarint64(&body, rec.lba);
    PutVarint64(&body, rec.block_count);
    PutVarint64(&body, rec.folded ? kFlagFolded : 0);
    PutVarint64(&body, rec.payload.size());
    PutVarint64(&body, ZigZag(rec.ack_time - prev_ack));
    PutVarint64(&body, ZigZag(static_cast<int64_t>(rec.atomic_through) -
                              static_cast<int64_t>(rec.sequence)));
    prev_seq = rec.sequence;
    prev_ack = rec.ack_time;
  }
  body.reserve(body.size() + payload_total);
  for (const journal::JournalRecord& rec : records) {
    const std::string_view payload = rec.payload.view();
    body.append(payload.data(), payload.size());
  }

  uint8_t flags = 0;
  if (compress) {
    // The single-chunk/chunked split depends only on the plain body size —
    // never on the pool — so the shipped frame is byte-identical at any
    // lane count.
    if (body.size() <= kChunkBytes) {
      std::string packed;
      packed.reserve(CompressBound(body.size()));
      Compress(body, &packed);
      if (packed.size() < body.size()) {
        body = std::move(packed);
        flags |= kFlagCompressed;
        out.compressed = true;
      }
    } else {
      const size_t chunks = (body.size() + kChunkBytes - 1) / kChunkBytes;
      std::vector<std::string> packed(chunks);
      ForEachChunk(pool, chunks, [&](size_t begin, size_t end) {
        for (size_t c = begin; c < end; ++c) {
          const size_t off = c * kChunkBytes;
          const size_t len = std::min(kChunkBytes, body.size() - off);
          packed[c].reserve(CompressBound(len));
          Compress(std::string_view(body).substr(off, len), &packed[c]);
        }
      });
      std::string chunked;
      PutVarint64(&chunked, chunks);
      size_t frames_total = 0;
      for (const std::string& p : packed) {
        PutVarint64(&chunked, p.size());
        frames_total += p.size();
      }
      chunked.reserve(chunked.size() + frames_total);
      for (const std::string& p : packed) chunked += p;
      if (chunked.size() < body.size()) {
        body = std::move(chunked);
        flags |= kFlagChunked;
        out.compressed = true;
      }
    }
  }

  out.frame.reserve(kFrameHeaderSize + body.size());
  PutFixed32(&out.frame, kMagic);
  out.frame.push_back(static_cast<char>(flags));
  PutFixed32(&out.frame, Crc32cMask(ParallelCrc32c(body, pool)));
  PutFixed32(&out.frame, static_cast<uint32_t>(body.size()));
  out.frame += body;
  return out;
}

namespace {

// Parses and decompresses a chunked (bit1) stored body into the plain
// body. Every length is validated against the chunked container before a
// byte of it is trusted; the CRC gate already ran, so failures here mean
// a malformed-but-checksummed frame and return DataLoss like any other
// corruption.
Status DecodeChunkedBody(std::string_view in, exec::ThreadPool* pool,
                         std::string* out) {
  std::string_view cursor = in;
  uint64_t chunks = 0;
  if (!GetVarint64(&cursor, &chunks) || chunks < 2 || chunks > kMaxChunks ||
      chunks > cursor.size()) {
    return DataLossError("wire: bad chunk count");
  }
  std::vector<size_t> enc_len(chunks, 0);
  uint64_t enc_total = 0;
  for (uint64_t c = 0; c < chunks; ++c) {
    uint64_t len = 0;
    if (!GetVarint64(&cursor, &len) || len > cursor.size() ||
        enc_total + len > cursor.size()) {
      return DataLossError("wire: bad chunk length");
    }
    enc_len[c] = static_cast<size_t>(len);
    enc_total += len;
  }
  if (cursor.size() != enc_total) {
    return DataLossError("wire: chunk section length mismatch");
  }

  // Raw sizes come from each chunk's own frame header; the encoder fills
  // every chunk but the last to exactly kChunkBytes, which pins each
  // chunk's output offset without decompressing anything yet.
  std::vector<std::string_view> frames(chunks);
  uint64_t raw_total = 0;
  size_t off = 0;
  for (uint64_t c = 0; c < chunks; ++c) {
    frames[c] = cursor.substr(off, enc_len[c]);
    off += enc_len[c];
    StatusOr<size_t> raw = DecompressedSize(frames[c]);
    if (!raw.ok()) return raw.status();
    const bool last = (c == chunks - 1);
    if ((last && (*raw == 0 || *raw > kChunkBytes)) ||
        (!last && *raw != kChunkBytes)) {
      return DataLossError("wire: bad chunk raw size");
    }
    raw_total += *raw;
  }

  out->resize(raw_total);
  std::atomic<bool> ok{true};
  ForEachChunk(pool, chunks, [&](size_t begin, size_t end) {
    for (size_t c = begin; c < end; ++c) {
      const size_t raw_off = c * kChunkBytes;
      const size_t want =
          (c == chunks - 1) ? raw_total - raw_off : kChunkBytes;
      // Decompress appends to a scratch string, then the bytes land in
      // this chunk's disjoint [raw_off, raw_off + want) slot.
      std::string scratch;
      scratch.reserve(want);
      if (!Decompress(frames[c], &scratch).ok() || scratch.size() != want) {
        ok.store(false, std::memory_order_relaxed);
        continue;
      }
      std::memcpy(out->data() + raw_off, scratch.data(), want);
    }
  });
  if (!ok.load(std::memory_order_relaxed)) {
    return DataLossError("wire: chunk decompression failed");
  }
  return OkStatus();
}

}  // namespace

StatusOr<std::vector<journal::JournalRecord>> DecodeBatch(
    std::string_view frame, exec::ThreadPool* pool) {
  std::string_view in = frame;
  uint32_t magic = 0, masked_crc = 0, body_len = 0;
  if (!GetFixed32(&in, &magic) || magic != kMagic) {
    return DataLossError("wire: bad magic");
  }
  if (in.empty()) return DataLossError("wire: truncated header");
  const uint8_t flags = static_cast<uint8_t>(in.front());
  in.remove_prefix(1);
  if ((flags & ~kKnownFlags) != 0 ||
      (flags & kKnownFlags) == kKnownFlags) {
    return DataLossError("wire: unknown flag bits");
  }
  if (!GetFixed32(&in, &masked_crc) || !GetFixed32(&in, &body_len)) {
    return DataLossError("wire: truncated header");
  }
  if (in.size() != body_len) {
    return DataLossError("wire: body length mismatch");
  }
  // Integrity gate: the CRC covers the stored body, so corruption is
  // caught here, before decompression or any journal mutation.
  if (Crc32cMask(ParallelCrc32c(in, pool)) != masked_crc) {
    return DataLossError("wire: checksum mismatch");
  }

  std::string body;
  if ((flags & kFlagChunked) != 0) {
    Status s = DecodeChunkedBody(in, pool, &body);
    if (!s.ok()) return s;
  } else if ((flags & kFlagCompressed) != 0) {
    Status s = Decompress(in, &body);
    if (!s.ok()) return s;
  } else {
    body.assign(in.data(), in.size());
  }

  std::string_view cursor = body;
  uint64_t count = 0;
  // Each header is at least 8 varint bytes, so a count the remaining body
  // cannot possibly hold is corrupt — rejecting it here also bounds the
  // reserve below by the actual body size.
  if (!GetVarint64(&cursor, &count) || count > kMaxRecords ||
      count > cursor.size() / 8) {
    return DataLossError("wire: bad record count");
  }

  struct Header {
    journal::JournalRecord rec;
    uint64_t payload_len = 0;
  };
  std::vector<Header> headers;
  headers.reserve(count);
  uint64_t payload_total = 0;
  journal::SequenceNumber prev_seq = 0;
  SimTime prev_ack = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t seq_delta, volume_id, lba, block_count, rec_flags, payload_len,
        ack_zz, atomic_zz;
    if (!GetVarint64(&cursor, &seq_delta) ||
        !GetVarint64(&cursor, &volume_id) || !GetVarint64(&cursor, &lba) ||
        !GetVarint64(&cursor, &block_count) ||
        !GetVarint64(&cursor, &rec_flags) ||
        !GetVarint64(&cursor, &payload_len) ||
        !GetVarint64(&cursor, &ack_zz) || !GetVarint64(&cursor, &atomic_zz)) {
      return DataLossError("wire: truncated record header");
    }
    if ((rec_flags & ~uint64_t{kFlagFolded}) != 0) {
      return DataLossError("wire: unknown record flags");
    }
    Header h;
    h.rec.sequence = prev_seq + seq_delta;
    h.rec.volume_id = volume_id;
    h.rec.lba = lba;
    h.rec.block_count = static_cast<uint32_t>(block_count);
    h.rec.folded = (rec_flags & kFlagFolded) != 0;
    h.rec.ack_time = prev_ack + UnZigZag(ack_zz);
    h.rec.atomic_through = static_cast<journal::SequenceNumber>(
        static_cast<int64_t>(h.rec.sequence) + UnZigZag(atomic_zz));
    h.payload_len = payload_len;
    // Checked before the add so a huge length cannot wrap payload_total.
    if (payload_len > body.size() || payload_total + payload_len > body.size()) {
      return DataLossError("wire: payloads overrun body");
    }
    payload_total += payload_len;
    prev_seq = h.rec.sequence;
    prev_ack = h.rec.ack_time;
    headers.push_back(std::move(h));
  }
  if (cursor.size() != payload_total) {
    return DataLossError("wire: payload section length mismatch");
  }

  // One backing allocation for the whole batch: wrap the decoded body and
  // slice each record's payload out of it.
  const size_t payload_base = body.size() - payload_total;
  journal::PayloadBuffer backing =
      journal::PayloadBuffer::Wrap(std::move(body));
  std::vector<journal::JournalRecord> records;
  records.reserve(headers.size());
  size_t offset = payload_base;
  for (Header& h : headers) {
    if (h.payload_len > 0) {
      h.rec.payload = backing.Slice(offset, h.payload_len);
      offset += h.payload_len;
    }
    records.push_back(std::move(h.rec));
  }
  return records;
}

}  // namespace zerobak::replication::wire
