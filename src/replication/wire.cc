#include "replication/wire.h"

#include <utility>

#include "common/coding.h"
#include "common/compress.h"
#include "common/crc32c.h"

namespace zerobak::replication::wire {
namespace {

constexpr uint32_t kMagic = 0x3157425au;  // "ZBW1", little-endian.
constexpr uint8_t kFlagCompressed = 0x01;
constexpr uint8_t kFlagFolded = 0x01;  // Per-record flags, bit0.
// 5 fixed header bytes before the CRC, 8 after it.
constexpr size_t kFrameHeaderSize = 4 + 1 + 4 + 4;
// A frame claiming more records than could fit a real batch is corrupt;
// reject before reserving memory for it.
constexpr uint64_t kMaxRecords = 1u << 22;

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace

EncodedBatch EncodeBatch(const std::vector<journal::JournalRecord>& records,
                         bool compress) {
  EncodedBatch out;

  std::string body;
  PutVarint64(&body, records.size());
  uint64_t payload_total = 0;
  journal::SequenceNumber prev_seq = 0;
  SimTime prev_ack = 0;
  for (const journal::JournalRecord& rec : records) {
    out.logical_bytes += rec.EncodedSize();
    payload_total += rec.payload.size();
    PutVarint64(&body, rec.sequence - prev_seq);
    PutVarint64(&body, rec.volume_id);
    PutVarint64(&body, rec.lba);
    PutVarint64(&body, rec.block_count);
    PutVarint64(&body, rec.folded ? kFlagFolded : 0);
    PutVarint64(&body, rec.payload.size());
    PutVarint64(&body, ZigZag(rec.ack_time - prev_ack));
    PutVarint64(&body, ZigZag(static_cast<int64_t>(rec.atomic_through) -
                              static_cast<int64_t>(rec.sequence)));
    prev_seq = rec.sequence;
    prev_ack = rec.ack_time;
  }
  body.reserve(body.size() + payload_total);
  for (const journal::JournalRecord& rec : records) {
    const std::string_view payload = rec.payload.view();
    body.append(payload.data(), payload.size());
  }

  uint8_t flags = 0;
  if (compress) {
    std::string packed;
    packed.reserve(CompressBound(body.size()));
    Compress(body, &packed);
    if (packed.size() < body.size()) {
      body = std::move(packed);
      flags |= kFlagCompressed;
      out.compressed = true;
    }
  }

  out.frame.reserve(kFrameHeaderSize + body.size());
  PutFixed32(&out.frame, kMagic);
  out.frame.push_back(static_cast<char>(flags));
  PutFixed32(&out.frame, Crc32cMask(Crc32c(body.data(), body.size())));
  PutFixed32(&out.frame, static_cast<uint32_t>(body.size()));
  out.frame += body;
  return out;
}

StatusOr<std::vector<journal::JournalRecord>> DecodeBatch(
    std::string_view frame) {
  std::string_view in = frame;
  uint32_t magic = 0, masked_crc = 0, body_len = 0;
  if (!GetFixed32(&in, &magic) || magic != kMagic) {
    return DataLossError("wire: bad magic");
  }
  if (in.empty()) return DataLossError("wire: truncated header");
  const uint8_t flags = static_cast<uint8_t>(in.front());
  in.remove_prefix(1);
  if ((flags & ~kFlagCompressed) != 0) {
    return DataLossError("wire: unknown flag bits");
  }
  if (!GetFixed32(&in, &masked_crc) || !GetFixed32(&in, &body_len)) {
    return DataLossError("wire: truncated header");
  }
  if (in.size() != body_len) {
    return DataLossError("wire: body length mismatch");
  }
  // Integrity gate: the CRC covers the stored body, so corruption is
  // caught here, before decompression or any journal mutation.
  if (Crc32cMask(Crc32c(in.data(), in.size())) != masked_crc) {
    return DataLossError("wire: checksum mismatch");
  }

  std::string body;
  if ((flags & kFlagCompressed) != 0) {
    Status s = Decompress(in, &body);
    if (!s.ok()) return s;
  } else {
    body.assign(in.data(), in.size());
  }

  std::string_view cursor = body;
  uint64_t count = 0;
  // Each header is at least 8 varint bytes, so a count the remaining body
  // cannot possibly hold is corrupt — rejecting it here also bounds the
  // reserve below by the actual body size.
  if (!GetVarint64(&cursor, &count) || count > kMaxRecords ||
      count > cursor.size() / 8) {
    return DataLossError("wire: bad record count");
  }

  struct Header {
    journal::JournalRecord rec;
    uint64_t payload_len = 0;
  };
  std::vector<Header> headers;
  headers.reserve(count);
  uint64_t payload_total = 0;
  journal::SequenceNumber prev_seq = 0;
  SimTime prev_ack = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t seq_delta, volume_id, lba, block_count, rec_flags, payload_len,
        ack_zz, atomic_zz;
    if (!GetVarint64(&cursor, &seq_delta) ||
        !GetVarint64(&cursor, &volume_id) || !GetVarint64(&cursor, &lba) ||
        !GetVarint64(&cursor, &block_count) ||
        !GetVarint64(&cursor, &rec_flags) ||
        !GetVarint64(&cursor, &payload_len) ||
        !GetVarint64(&cursor, &ack_zz) || !GetVarint64(&cursor, &atomic_zz)) {
      return DataLossError("wire: truncated record header");
    }
    if ((rec_flags & ~uint64_t{kFlagFolded}) != 0) {
      return DataLossError("wire: unknown record flags");
    }
    Header h;
    h.rec.sequence = prev_seq + seq_delta;
    h.rec.volume_id = volume_id;
    h.rec.lba = lba;
    h.rec.block_count = static_cast<uint32_t>(block_count);
    h.rec.folded = (rec_flags & kFlagFolded) != 0;
    h.rec.ack_time = prev_ack + UnZigZag(ack_zz);
    h.rec.atomic_through = static_cast<journal::SequenceNumber>(
        static_cast<int64_t>(h.rec.sequence) + UnZigZag(atomic_zz));
    h.payload_len = payload_len;
    // Checked before the add so a huge length cannot wrap payload_total.
    if (payload_len > body.size() || payload_total + payload_len > body.size()) {
      return DataLossError("wire: payloads overrun body");
    }
    payload_total += payload_len;
    prev_seq = h.rec.sequence;
    prev_ack = h.rec.ack_time;
    headers.push_back(std::move(h));
  }
  if (cursor.size() != payload_total) {
    return DataLossError("wire: payload section length mismatch");
  }

  // One backing allocation for the whole batch: wrap the decoded body and
  // slice each record's payload out of it.
  const size_t payload_base = body.size() - payload_total;
  journal::PayloadBuffer backing =
      journal::PayloadBuffer::Wrap(std::move(body));
  std::vector<journal::JournalRecord> records;
  records.reserve(headers.size());
  size_t offset = payload_base;
  for (Header& h : headers) {
    if (h.payload_len > 0) {
      h.rec.payload = backing.Slice(offset, h.payload_len);
      offset += h.payload_len;
    }
    records.push_back(std::move(h.rec));
  }
  return records;
}

}  // namespace zerobak::replication::wire
