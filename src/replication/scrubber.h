#ifndef ZEROBAK_REPLICATION_SCRUBBER_H_
#define ZEROBAK_REPLICATION_SCRUBBER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/time.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "replication/group_scheduler.h"
#include "replication/replication.h"
#include "sim/environment.h"

namespace zerobak::replication {

// Scrub pacing and policy knobs. The defaults make one full pass over a
// demo-sized group every simulated second while staying far below the
// transfer engine's event rate (the scrubber holds one scheduler slot,
// examines a bounded number of extents per tick, and spends most of its
// life in the inter-cycle gap — E15a holds the always-on overhead on a
// busy group under 2%).
struct ScrubConfig {
  // Blocks fingerprinted per extent (the scrub and repair granularity).
  uint32_t extent_blocks = 256;
  // Extents examined per scheduler tick — the low-priority budget.
  uint32_t max_extents_per_step = 8;
  // Gap between ticks within a cycle.
  SimDuration step_interval = Milliseconds(5);
  // Idle gap between the end of one full pass and the start of the next.
  // This is the duty-cycle dial: scanning is a double-sided CRC pass
  // over resident data, so back-to-back cycles would tax a busy group.
  SimDuration cycle_interval = Milliseconds(1000);
  // Self-heal what scrub finds (dirty-mark + resync / direct restore).
  // false = detect-and-count only, the ablation arm of E15.
  bool repair = true;
};

// Cumulative scrub outcomes (engine lifetime).
struct ScrubStats {
  uint64_t cycles_completed = 0;
  uint64_t extents_scanned = 0;
  uint64_t blocks_scanned = 0;
  // Silent corruption caught by the per-block CRC sidecar.
  uint64_t checksum_mismatches = 0;
  // Extents unreadable because of an active media-error episode.
  uint64_t media_errors = 0;
  // Quiescent-group extents whose primary/secondary bytes differ.
  uint64_t divergent_extents = 0;
  // Extents dirty-marked for targeted resync (secondary-side repair).
  uint64_t repairs_scheduled = 0;
  // Extents restored secondary -> primary (primary-side rot repair).
  uint64_t primary_restores = 0;
  // Repairs postponed (journal backlog / media still failing); they are
  // retried on the next cycle.
  uint64_t deferred_repairs = 0;
  // Both sides bad — nothing trustworthy to heal from.
  uint64_t unrecoverable_extents = 0;
};

// Background at-rest integrity scrubber. Walks every consistency group's
// pairs in extent runs, verifies the per-block CRC sidecar on both sites,
// fingerprints primary against secondary when the group is quiescent, and
// self-heals what it finds:
//   * bad/divergent secondary extent -> dirty-mark + SuspendOnFailure
//     (kScrubRepair) -> the existing auto-resync ships just those extents;
//   * bad primary extent with a clean secondary -> direct secondary ->
//     primary restore (deferred while un-replicated writes exist, so a
//     restore can never clobber newer data);
//   * both bad -> counted unrecoverable, left alone.
// Scheduling: in event-driven mode the scrubber occupies one
// GroupScheduler slot (pseudo-id kScrubSchedBase) armed at step_interval
// ticks; in legacy mode a PeriodicTask provides the same cadence. Either
// way each tick scans at most max_extents_per_step extents, which is what
// keeps scrub overhead invisible next to replication traffic.
class Scrubber {
 public:
  Scrubber(ReplicationEngine* engine, ScrubConfig config);
  ~Scrubber();

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  // Begins the first cycle (called by ReplicationEngine::EnableScrubbing).
  void Start();

  // One scheduler tick: scans up to max_extents_per_step extents.
  // `max_bytes` is the DRR budget — unused, scrub ships nothing — and the
  // returned outcome keeps the slot armed while a cycle is in progress.
  PumpOutcome PumpStep(uint64_t max_bytes);

  const ScrubConfig& config() const { return config_; }
  const ScrubStats& stats() const { return stats_; }
  // True while a pass is walking volumes (false in the inter-cycle gap).
  bool cycle_active() const { return cycle_active_; }

  // Metrics ("scrub.*") and trace events; null pointers detach.
  void AttachObservability(obs::MetricRegistry* registry,
                           obs::TraceRing* trace);

 private:
  // One pair's scrub work for the current cycle, snapshotted at cycle
  // start (pairs created later are picked up next cycle; deleted pairs
  // are skipped when they no longer resolve).
  struct WorkItem {
    GroupId group = 0;
    PairId pair = 0;
    uint64_t block_count = 0;
  };

  void StartCycle();
  void FinishCycle();
  // Arms the inter-cycle gap timer that kicks off the next pass.
  void ScheduleRestart();
  // Scans the extent under the cursor and advances it. Returns false when
  // the cycle is exhausted.
  bool ScrubNextExtent();
  // Verifies + (optionally) repairs one extent of one pair.
  void ScrubExtent(const WorkItem& item, uint64_t lba, uint32_t count);
  void RecordRepair(GroupId group, storage::VolumeId volume, uint64_t lba);

  ReplicationEngine* engine_;
  ScrubConfig config_;

  std::vector<WorkItem> work_;
  size_t work_index_ = 0;
  uint64_t next_lba_ = 0;
  bool cycle_active_ = false;
  uint64_t extents_this_cycle_ = 0;
  uint64_t repairs_this_cycle_ = 0;

  // Legacy-mode driver; null when the engine runs the event scheduler.
  std::unique_ptr<sim::PeriodicTask> tick_task_;
  // Pending inter-cycle restart event (event-driven mode).
  sim::EventId restart_event_{};
  bool restart_pending_ = false;

  ScrubStats stats_;
  // Scratch buffers reused across fingerprint comparisons.
  std::string scratch_primary_;
  std::string scratch_secondary_;

  obs::TraceRing* trace_ = nullptr;
  struct Instruments {
    obs::Counter* cycles = nullptr;
    obs::Counter* extents_scanned = nullptr;
    obs::Counter* blocks_scanned = nullptr;
    obs::Counter* checksum_mismatches = nullptr;
    obs::Counter* media_errors = nullptr;
    obs::Counter* divergent_extents = nullptr;
    obs::Counter* repairs_scheduled = nullptr;
    obs::Counter* primary_restores = nullptr;
    obs::Counter* deferred_repairs = nullptr;
    obs::Counter* unrecoverable = nullptr;
    obs::Gauge* cycle_active = nullptr;
  };
  Instruments ins_;
};

}  // namespace zerobak::replication

#endif  // ZEROBAK_REPLICATION_SCRUBBER_H_
