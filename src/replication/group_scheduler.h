#ifndef ZEROBAK_REPLICATION_GROUP_SCHEDULER_H_
#define ZEROBAK_REPLICATION_GROUP_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "common/time.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/environment.h"
#include "sim/network.h"

namespace zerobak::replication {

using GroupSchedulerId = uint64_t;

// What one demand-driven pump of a consistency group did, reported by the
// engine back to the scheduler so it can decide whether — and when — the
// group runs again.
struct PumpOutcome {
  // A batch was handed to the link.
  bool sent = false;
  // Wire size of that batch (deficit-round-robin accounting).
  uint64_t wire_bytes = 0;
  // Unshipped records remain in the primary journal after the pump.
  bool backlog = false;
  // Re-arm at the group's next interval tick even without backlog: the
  // adaptive batch controller needs its tick cadence while shipped data
  // is still unacknowledged (that is when link backlog is measurable).
  bool keep_alive = false;
  // The group's current batch size; becomes the group's DRR quantum.
  uint64_t quantum = 0;
};

// Counters of the event-driven transfer scheduler; all cumulative except
// armed_groups/registered_groups, which are instantaneous.
struct SchedulerStats {
  uint64_t arms = 0;           // Idle -> armed transitions.
  uint64_t wakeups = 0;        // Dispatch events fired.
  uint64_t dispatches = 0;     // Pump callbacks invoked.
  uint64_t heartbeats = 0;     // Slow housekeeping ticks.
  uint64_t heartbeat_rescues = 0;  // Groups the heartbeat re-armed.
  uint64_t starved_turns = 0;  // DRR turns deferred on exhausted deficit.
  uint64_t armed_groups = 0;
  uint64_t registered_groups = 0;
};

// Demand-driven replacement for the per-group transfer timers.
//
// Every consistency group registers once; *edges* — a journal append, an
// apply-ack, a link reconnect, a resync completion — arm it, and a single
// dispatch loop pumps the armed set. An idle group costs zero simulation
// events: nothing fires until an edge arms it again.
//
// Arming preserves the batching window of the old periodic engine: a
// group armed at time t is due at the next multiple of its
// transfer_interval (counted from registration), so same-window writes
// still coalesce and fold exactly as they did under the timer. A pumped
// group with remaining backlog is rescheduled at
// min(next tick, wire drain): on an idle wire it drains the journal
// immediately instead of waiting out the interval, while a saturated wire
// falls back to tick cadence — which is what keeps the adaptive batch
// controller's backlog signal intact.
//
// Fairness across groups sharing the link is deficit round-robin: each
// due group's turn adds its quantum (its current batch size) to a byte
// deficit, the pump is capped by that deficit, and a group whose last
// batch overshot (PeekViews guarantees one record of progress even past
// the cap) skips turns until its deficit recovers.
//
// A single slow heartbeat — one event per engine, not per group — is the
// safety net: it re-arms any group that has unshipped backlog but lost
// its edge (e.g. the arming append happened while the primary array was
// failed). Determinism: dispatch order is the arm order, all times are
// pure functions of simulation state, and the event queue breaks
// same-instant ties FIFO.
class GroupScheduler {
 public:
  // Pumps one batch for the group, shipping at most `max_bytes`.
  using PumpFn = std::function<PumpOutcome(GroupSchedulerId, uint64_t)>;
  // Housekeeping scan: re-arm stragglers; returns how many were rescued.
  using HeartbeatFn = std::function<uint64_t()>;

  GroupScheduler(sim::SimEnvironment* env, sim::NetworkLink* link,
                 SimDuration heartbeat_interval, PumpFn pump,
                 HeartbeatFn heartbeat);
  ~GroupScheduler();

  GroupScheduler(const GroupScheduler&) = delete;
  GroupScheduler& operator=(const GroupScheduler&) = delete;

  // Adds a group to the schedulable set (initially idle). `interval` is
  // its batching window; `quantum` its starting DRR quantum.
  void Register(GroupSchedulerId id, SimDuration interval, uint64_t quantum);
  void Unregister(GroupSchedulerId id);

  // Demand edge: the group has (or may have) work. Due at its next
  // interval tick; a no-op if already armed.
  void Arm(GroupSchedulerId id);
  // Removes the group from the armed set (suspension, failover).
  void Disarm(GroupSchedulerId id);
  bool armed(GroupSchedulerId id) const;

  const SchedulerStats& stats() const { return stats_; }

  // --- Observability --------------------------------------------------------
  struct Instruments {
    obs::Counter* arms = nullptr;
    obs::Counter* wakeups = nullptr;
    obs::Counter* dispatches = nullptr;
    obs::Counter* heartbeats = nullptr;
    obs::Counter* starved_turns = nullptr;
    obs::Gauge* armed_groups = nullptr;
  };
  void AttachObservability(const Instruments& instruments,
                           obs::TraceRing* trace) {
    instruments_ = instruments;
    trace_ = trace;
    if (instruments_.armed_groups != nullptr) {
      instruments_.armed_groups->Set(
          static_cast<int64_t>(stats_.armed_groups));
    }
  }

 private:
  struct GroupState {
    SimDuration interval = 0;
    SimTime origin = 0;  // Tick phase anchor (registration instant).
    bool armed = false;
    bool in_queue = false;
    SimTime due = 0;
    int64_t deficit = 0;
    uint64_t quantum = 0;
  };

  // First interval tick strictly after `now`.
  static SimTime NextTick(const GroupState& g, SimTime now) {
    return g.origin + ((now - g.origin) / g.interval + 1) * g.interval;
  }

  void ScheduleDispatchAt(SimTime t);
  void RunRound();
  void SetArmedCount(uint64_t count);

  sim::SimEnvironment* env_;
  sim::NetworkLink* link_;
  PumpFn pump_;
  HeartbeatFn heartbeat_;
  std::unique_ptr<sim::PeriodicTask> heartbeat_task_;

  std::map<GroupSchedulerId, GroupState> groups_;
  // Armed groups in arm order; disarmed entries are dropped lazily.
  std::deque<GroupSchedulerId> run_queue_;

  bool dispatch_pending_ = false;
  SimTime dispatch_at_ = 0;
  sim::EventId dispatch_event_{};

  SchedulerStats stats_;
  Instruments instruments_;
  obs::TraceRing* trace_ = nullptr;
};

}  // namespace zerobak::replication

#endif  // ZEROBAK_REPLICATION_GROUP_SCHEDULER_H_
